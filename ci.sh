#!/bin/sh
# CI gate for accelproc.  Order matters: cheap static checks first, the
# tier-1 gate (go build ./... && go test ./..., per ROADMAP.md) next, the
# race-detector pass over the concurrent packages last.
set -eu

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:"
	echo "$unformatted"
	exit 1
fi

echo "== go vet =="
go vet ./...

echo "== build =="
go build ./...

echo "== test =="
go test ./...

echo "== bench smoke (every benchmark compiles and runs once) =="
go test -bench . -benchtime=1x -run '^$' ./...

echo "== fuzz smoke (format + ingest + recovery-state parsers, ~5s each) =="
go test -run '^$' -fuzz 'FuzzV1RoundTrip' -fuzztime 5s ./internal/smformat/
go test -run '^$' -fuzz 'FuzzGEMRoundTrip' -fuzztime 5s ./internal/smformat/
go test -run '^$' -fuzz 'FuzzV1ADecode' -fuzztime 5s ./internal/ingest/
go test -run '^$' -fuzz 'FuzzCSVDecode' -fuzztime 5s ./internal/ingest/
go test -run '^$' -fuzz 'FuzzJournalParse' -fuzztime 5s ./internal/pipeline/
go test -run '^$' -fuzz 'FuzzActionManifest' -fuzztime 5s ./internal/artifact/

echo "== race (parallel runtime + dataflow scheduler + fleet scheduler + pipeline drivers + ingest plane + artifact store + storage plane + streaming chunk plane) =="
go test -race ./internal/parallel/... ./internal/dataflow/... ./internal/fleet/... ./internal/pipeline/... ./internal/ingest/... ./internal/artifact/... ./internal/storage/... ./internal/stream/...

echo "== chaos (seeded fault-injection soak, artifact cache enabled) =="
go test -race -count=1 -run 'Chaos|Partial|Quarantine|RetryOp|StageMove' ./internal/pipeline/... ./internal/faults/...

echo "== cache ablation smoke (cached vs uncached outputs byte-identical, hits observed) =="
go test -count=1 -run 'ArtifactCache' ./internal/pipeline/...

echo "== cache persistence (warm restarts skip unchanged records; corrupted entries degrade to misses) =="
go test -count=1 -run 'WarmRestart|PersistentCache|ActionCache' ./internal/pipeline/... ./internal/artifact/...

echo "== crash/resume (kill -9 matrix, journal replay, cache scrub) =="
go test -count=1 -run 'CrashResume|CrashKills|CrashUnarmed|Resume|Journal|Scrub' ./internal/pipeline/... ./internal/faults/... ./internal/artifact/...

echo "== fleet saturation smoke (shared-pool scheduler criteria on a tiny queue) =="
go run ./cmd/benchtables -fleet -smoke -check

echo "== ingest check (format registry round-trips; byte-identity, QC gate, rotation across the pipeline) =="
go test -count=1 ./internal/ingest/
go test -count=1 -run 'TestFormats|TestFormatOverride|TestQCGate|TestAzimuth|TestCorruptInput' ./internal/pipeline/

echo "== streaming memory-ablation smoke (flat StorageBytesPeak, byte-identical outputs) =="
go run ./cmd/benchtables -streambench -smoke -check

echo "CI gate passed."
