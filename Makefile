# Development targets.  `make ci` is the full gate (see ci.sh); the tier-1
# gate the project must always keep green is `make build test`
# (= go build ./... && go test ./..., per ROADMAP.md).

GO ?= go

.PHONY: all fmt vet build test race chaos cache-ablation cache-persist crash-resume fleet-bench stream-bench fuzz-smoke ingest-check bench ci

all: build

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel runtime, the dataflow scheduler, the fleet scheduler, and
# the pipeline drivers carry the concurrency and the occupancy
# instrumentation; they must stay race-clean, and so must the shared
# artifact store, the ingest plane, the storage plane, and the streaming
# chunk plane under them.
race:
	$(GO) test -race ./internal/parallel/... ./internal/dataflow/... ./internal/fleet/... ./internal/pipeline/... ./internal/ingest/... ./internal/artifact/... ./internal/storage/... ./internal/stream/...

# Seeded chaos soak: the fault-injection suite (rate sweep, poisoned-record
# batch, retry/quarantine engine) under the race detector, with the artifact
# cache enabled as in production.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Partial|Quarantine|RetryOp|StageMove' ./internal/pipeline/... ./internal/faults/...

# Cache-ablation smoke: every variant on a small event, artifact cache on
# and off, must produce byte-identical outputs, with cache hits observed on
# the cached run.
cache-ablation:
	$(GO) test -count=1 -run 'ArtifactCache' ./internal/pipeline/...

# Persistent action-cache suite: warm restarts must skip unchanged records
# with byte-identical outputs on both storage backends, and a corrupted
# cache entry (truncated blob) must degrade to recomputation, never error.
cache-persist:
	$(GO) test -count=1 -run 'WarmRestart|PersistentCache|ActionCache' ./internal/pipeline/... ./internal/artifact/...

# Crash-safety suite: the kill -9 crash matrix (subprocess SIGKILLs itself
# at each durability point, resume must restore byte-identical outputs
# re-executing only unfinished subgraphs), journal replay/parse, and the
# .smcache integrity scrubber.
crash-resume:
	$(GO) test -count=1 -run 'CrashResume|CrashKills|CrashUnarmed|Resume|Journal|Scrub' ./internal/pipeline/... ./internal/faults/... ./internal/artifact/...

# Short fuzz smoke over the format round-trip fuzzers, the foreign-format
# ingest decoders, and the crash-recovery state parsers (run journal,
# action-cache manifest); the CI gate runs the same targets for ~5s each.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz 'FuzzV1RoundTrip' -fuzztime 5s ./internal/smformat/
	$(GO) test -run '^$$' -fuzz 'FuzzGEMRoundTrip' -fuzztime 5s ./internal/smformat/
	$(GO) test -run '^$$' -fuzz 'FuzzV1ADecode' -fuzztime 5s ./internal/ingest/
	$(GO) test -run '^$$' -fuzz 'FuzzCSVDecode' -fuzztime 5s ./internal/ingest/
	$(GO) test -run '^$$' -fuzz 'FuzzJournalParse' -fuzztime 5s ./internal/pipeline/
	$(GO) test -run '^$$' -fuzz 'FuzzActionManifest' -fuzztime 5s ./internal/artifact/

# Fleet saturation smoke: the multi-event scheduler benchmark on a tiny
# queue, with the acceptance criteria evaluated (throughput gain, p99
# latency bound, no policy slower than sequential).
fleet-bench:
	$(GO) run ./cmd/benchtables -fleet -smoke -check

# Streaming-plane memory-ablation smoke: materialized vs streaming Pipelined
# runs on the mem backend, with the acceptance criteria evaluated (flat
# StorageBytesPeak within the chunk budget, byte-identical outputs).
stream-bench:
	$(GO) run ./cmd/benchtables -streambench -smoke -check

# Ingest-plane suite: the format registry round-trip/sniffing/QC unit
# tests, plus the pipeline-level acceptance tests — every registered format
# (and a mixed-format event) must produce byte-identical products, the
# -format override must win over sniffing, the QC gate must quarantine each
# defect class with its typed reason (materialized and streaming, and
# across -resume), and azimuth rotation must match native products.
ingest-check:
	$(GO) test -count=1 ./internal/ingest/
	$(GO) test -count=1 -run 'TestFormats|TestFormatOverride|TestQCGate|TestAzimuth|TestCorruptInput' ./internal/pipeline/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: fmt vet build test fuzz-smoke race chaos cache-ablation cache-persist crash-resume fleet-bench stream-bench ingest-check
