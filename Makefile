# Development targets.  `make ci` is the full gate (see ci.sh); the tier-1
# gate the project must always keep green is `make build test`
# (= go build ./... && go test ./..., per ROADMAP.md).

GO ?= go

.PHONY: all fmt vet build test race chaos bench ci

all: build

fmt:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel runtime and the pipeline drivers carry the concurrency and
# the occupancy instrumentation; they must stay race-clean.
race:
	$(GO) test -race ./internal/parallel/... ./internal/pipeline/...

# Seeded chaos soak: the fault-injection suite (rate sweep, poisoned-record
# batch, retry/quarantine engine) under the race detector.
chaos:
	$(GO) test -race -count=1 -run 'Chaos|Partial|Quarantine|RetryOp|StageMove' ./internal/pipeline/... ./internal/faults/...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

ci: fmt vet build test race chaos
