// Spectra: the single-record scientific walk-through behind the paper's
// Figures 2-4.  One synthetic strong-motion component is band-pass
// corrected, integrated to velocity and displacement (Figure 2), Fourier
// transformed with the FPL/FSL corners picked from the velocity spectrum
// (Figure 3), and turned into elastic response spectra (Figure 4).  The
// three PostScript plots are written to the output directory.
//
// Run with:
//
//	go run ./examples/spectra [-out plots/]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"accelproc/internal/dsp"
	"accelproc/internal/fourier"
	"accelproc/internal/plotps"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spectra: ")
	out := flag.String("out", ".", "directory for the generated .ps plots")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	// A moderate M5.6 record at 25 km, 100 Hz sampling, 80 s long, with
	// instrument noise and baseline drift for the correction to remove.
	rec, err := synth.Record(synth.Params{
		Station:    "DEMO",
		Seed:       7,
		DT:         0.01,
		Samples:    8000,
		Magnitude:  5.6,
		Distance:   25,
		NoiseFloor: 0.03,
	})
	if err != nil {
		log.Fatal(err)
	}
	tr := rec.Accel[0] // longitudinal component

	// --- Correction: default band-pass, then integration (Figure 2). ---
	defSpec := fourier.DefaultSpec()
	accel, err := dsp.BandPass(tr.Data, tr.DT, defSpec, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	dsp.Detrend(accel)
	vel := dsp.Integrate(accel, tr.DT)
	disp := dsp.Integrate(vel, tr.DT)
	v2 := smformat.V2{
		Station: rec.Station, Component: seismic.Longitudinal, DT: tr.DT,
		Filter: defSpec, Accel: accel, Vel: vel, Disp: disp,
	}
	peaks, err := seismic.Peaks(seismic.Trace{DT: tr.DT, Data: accel})
	if err != nil {
		log.Fatal(err)
	}
	v2.Peaks = peaks
	fmt.Printf("corrected record %s: PGA %.2f gal at %.2f s, PGV %.3f cm/s, PGD %.4f cm\n",
		rec.Station, peaks.PGA, peaks.TimePGA, peaks.PGV, peaks.PGD)

	ia, err := seismic.AriasIntensity(seismic.Trace{DT: tr.DT, Data: accel})
	if err != nil {
		log.Fatal(err)
	}
	d595, err := seismic.SignificantDuration(seismic.Trace{DT: tr.DT, Data: accel}, 0.05, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Arias intensity %.3f cm/s, significant duration D5-95 %.1f s\n", ia, d595)

	if err := writePlot(filepath.Join(*out, "figure2-accelerogram.ps"), func(f *os.File) error {
		return plotps.AccelPage(f, v2)
	}); err != nil {
		log.Fatal(err)
	}

	// --- Fourier spectra and FPL/FSL picking (Figure 3). ---
	spec, err := fourier.Spectra(v2)
	if err != nil {
		log.Fatal(err)
	}
	picked, err := fourier.CalculateInflectionPoint(spec, fourier.PickConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("picked corners from the velocity spectrum: FSL %.3f Hz, FPL %.3f Hz\n",
		picked.FSL, picked.FPL)
	if err := writePlot(filepath.Join(*out, "figure3-fourier.ps"), func(f *os.File) error {
		return plotps.FourierPage(f, spec, picked)
	}); err != nil {
		log.Fatal(err)
	}

	// --- Definitive correction and response spectra (Figure 4). ---
	accel2, err := dsp.BandPass(tr.Data, tr.DT, picked, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	dsp.Detrend(accel2)
	v2.Filter = picked
	v2.Accel = accel2
	v2.Vel = dsp.Integrate(accel2, tr.DT)
	v2.Disp = dsp.Integrate(v2.Vel, tr.DT)

	rs, err := response.Spectrum(v2, response.Config{Method: response.NigamJennings})
	if err != nil {
		log.Fatal(err)
	}
	// Report the spectral peak, the quantity structural engineers read off
	// first.
	maxSA, maxT := 0.0, 0.0
	for i, sa := range rs.SA {
		if sa > maxSA {
			maxSA, maxT = sa, rs.Periods[i]
		}
	}
	fmt.Printf("response spectrum peak: SA %.1f gal at T = %.2f s (%.0f%% damping)\n",
		maxSA, maxT, rs.Damping*100)
	if err := writePlot(filepath.Join(*out, "figure4-response.ps"), func(f *os.File) error {
		return plotps.ResponsePage(f, rs)
	}); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrote figure2-accelerogram.ps, figure3-fourier.ps, figure4-response.ps to %s\n", *out)
}

func writePlot(path string, render func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	rerr := render(f)
	cerr := f.Close()
	if rerr != nil {
		return rerr
	}
	return cerr
}
