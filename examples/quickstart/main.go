// Quickstart: generate a small synthetic seismic event, run the fully
// parallelized processing chain on it, and show what was produced.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Generate a synthetic event: 4 stations, ~60k data points.
	ev, err := synth.Event(synth.EventSpec{
		Name:        "demo",
		Files:       4,
		TotalPoints: 60000,
		Magnitude:   5.4,
		Seed:        2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated event %q: %d stations, %d data points per component set\n",
		ev.Name, len(ev.Records), ev.TotalDataPoints())

	// 2. Write the V1 input files into a work directory.
	dir, err := os.MkdirTemp("", "accelproc-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
		log.Fatal(err)
	}

	// 3. Process with the fully parallelized implementation.  The fast
	// Nigam-Jennings response method on the standard period grid is the
	// right choice for production use.
	res, err := pipeline.Run(context.Background(), dir, pipeline.FullParallel, pipeline.Options{
		Response: response.Config{Method: response.NigamJennings},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("processed %d stations in %.2f s with the %s pipeline\n",
		len(res.Stations), res.Timings.Total.Seconds(), res.Variant)

	// 4. Show the per-stage timing profile and the product inventory.
	fmt.Println("\nper-stage times:")
	for _, st := range pipeline.Stages {
		fmt.Printf("  stage %-5v %8.3f s\n", st.ID, res.Timings.Stage[st.ID].Seconds())
	}
	inv, err := pipeline.Inventory(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nproducts: %d corrected records (V2), %d Fourier spectra, %d response spectra,\n"+
		"          %d GEM exports, %d PostScript plots\n",
		inv.V2, inv.Fourier, inv.Response, inv.GEM, inv.Plots)
}
