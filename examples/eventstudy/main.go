// Eventstudy: process one of the paper's seismic events with all five
// pipeline implementations and compare them — a single-event slice of the
// paper's Table I.
//
// Run with:
//
//	go run ./examples/eventstudy               # Jul-10-2019 at reduced scale
//	go run ./examples/eventstudy -preset Apr-02-2018 -scale 0.25
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"accelproc/internal/bench"
	"accelproc/internal/pipeline"
	"accelproc/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("eventstudy: ")
	preset := flag.String("preset", "Jul-10-2019", "paper event preset to study")
	scale := flag.Float64("scale", bench.ReferenceScale, "workload scale factor")
	flag.Parse()

	var spec synth.EventSpec
	found := false
	for _, s := range synth.PaperEvents() {
		if s.Name == *preset {
			spec, found = s, true
			break
		}
	}
	if !found {
		log.Printf("unknown preset %q; available presets:", *preset)
		for _, s := range synth.PaperEvents() {
			log.Printf("  %s", s.Name)
		}
		os.Exit(2)
	}

	cfg := bench.Config{Scale: *scale}
	fmt.Printf("event %s: %d stations, %d data points (scale %g)\n\n",
		spec.Name, spec.Files, spec.Scale(*scale).TotalPoints, *scale)

	res, err := bench.RunEvent(context.Background(), spec, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-26s %10s %10s\n", "implementation", "time (s)", "vs. SeqOri")
	base := res.Times[pipeline.SeqOriginal].Seconds()
	for _, v := range pipeline.Variants {
		t := res.Times[v].Seconds()
		fmt.Printf("%-26s %10.2f %9.2fx\n", v, t, base/t)
	}

	fmt.Printf("\nstage profile (sequential-original vs fully-parallelized):\n")
	seq := res.Timings[pipeline.SeqOriginal]
	par := res.Timings[pipeline.FullParallel]
	for _, st := range pipeline.Stages {
		s, p := seq.Stage[st.ID].Seconds(), par.Stage[st.ID].Seconds()
		speedup := 0.0
		if p > 0 {
			speedup = s / p
		}
		fmt.Printf("  stage %-5v %8.3f s -> %8.3f s  (%.2fx)\n", st.ID, s, p, speedup)
	}
	fmt.Printf("\noverall speedup: %.2fx, throughput %0.f points/s\n",
		res.Speedup(), res.PointsPerSecond())
}
