// Filterdesign: explore the Hamming band-pass filters that the correction
// processes apply.  Designs filters for several FSL/FPL corner choices,
// prints their frequency responses, and shows the effect of each on a noisy
// synthetic record's peak values — why picking the corners from the Fourier
// analysis (process #10) matters.
//
// Run with:
//
//	go run ./examples/filterdesign
package main

import (
	"fmt"
	"log"

	"accelproc/internal/dsp"
	"accelproc/internal/fourier"
	"accelproc/internal/seismic"
	"accelproc/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("filterdesign: ")

	dt := 0.01 // 100 Hz sampling

	// Candidate low-side corners; the high side stays at the default
	// 23-25 Hz anti-alias transition.
	candidates := []dsp.BandPassSpec{
		{FSL: 0.02, FPL: 0.05, FPH: 23, FSH: 25}, // very permissive
		{FSL: 0.05, FPL: 0.125, FPH: 23, FSH: 25},
		fourier.DefaultSpec(),                    // the pipeline default
		{FSL: 0.25, FPL: 0.50, FPH: 23, FSH: 25}, // aggressive
	}

	fmt.Println("designed Hamming band-pass filters (100 Hz sampling):")
	fmt.Printf("%-28s %6s %22s\n", "corners (FSL-FPL / FPH-FSH)", "taps", "response @ .05/.5/5/30 Hz")
	for _, spec := range candidates {
		fir, err := dsp.DesignBandPass(spec, dt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.3f-%5.3f / %4.1f-%4.1f Hz %6d     %5.3f %5.3f %5.3f %5.3f\n",
			spec.FSL, spec.FPL, spec.FPH, spec.FSH, len(fir.Taps),
			fir.Response(0.05, dt), fir.Response(0.5, dt),
			fir.Response(5, dt), fir.Response(30, dt))
	}

	// A record with deliberate long-period drift: the uncorrected peaks
	// are badly contaminated, and the displacement most of all (double
	// integration amplifies low-frequency noise).
	rec, err := synth.Record(synth.Params{
		Station: "DRFT", Seed: 3, DT: dt, Samples: 12000,
		Magnitude: 5.2, Distance: 35, NoiseFloor: 0.08,
	})
	if err != nil {
		log.Fatal(err)
	}
	raw := rec.Accel[0]

	rawPeaks, err := seismic.Peaks(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuncorrected record: PGA %.2f gal, PGV %.3f cm/s, PGD %.4f cm\n",
		rawPeaks.PGA, rawPeaks.PGV, rawPeaks.PGD)

	fmt.Println("\npeaks after each correction:")
	fmt.Printf("%-28s %10s %12s %12s\n", "corners", "PGA (gal)", "PGV (cm/s)", "PGD (cm)")
	for _, spec := range candidates {
		corrected, err := dsp.BandPass(raw.Data, dt, spec, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		dsp.Detrend(corrected)
		p, err := seismic.Peaks(seismic.Trace{DT: dt, Data: corrected})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.3f-%5.3f / %4.1f-%4.1f Hz %10.2f %12.3f %12.4f\n",
			spec.FSL, spec.FPL, spec.FPH, spec.FSH, p.PGA, p.PGV, p.PGD)
	}
	fmt.Println("\nNote how PGD keeps shrinking as the low corner rises: the long-period")
	fmt.Println("noise double-integrates into displacement, which is exactly why the")
	fmt.Println("pipeline picks FSL/FPL per signal from the velocity Fourier spectrum.")
}
