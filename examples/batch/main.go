// Batch: process a whole catalog of seismic events concurrently — the
// paper's future-work direction of scaling to larger accelerographic
// datasets.  Several synthetic events are generated into separate work
// directories and pushed through the fully parallelized pipeline with
// event-level concurrency on top.
//
// Run with:
//
//	go run ./examples/batch [-events 4] [-workers 0]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("batch: ")
	events := flag.Int("events", 4, "number of synthetic events in the catalog")
	workers := flag.Int("workers", 0, "concurrent events (0 = all processors)")
	flag.Parse()
	if *events < 1 {
		log.Fatal("-events must be >= 1")
	}

	root, err := os.MkdirTemp("", "accelproc-batch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// A small catalog: magnitudes and sizes vary across events the way a
	// monthly bulletin's do (cf. the 241 events of December 2023 the paper
	// cites for the Salvadoran network).
	dirs := make([]string, *events)
	for i := range dirs {
		spec := synth.EventSpec{
			Name:        fmt.Sprintf("catalog-%02d", i+1),
			Files:       2 + i%4,
			TotalPoints: (2 + i%4) * (8000 + 3000*(i%3)),
			Magnitude:   4.2 + 0.4*float64(i%5),
			Seed:        int64(1000 + i),
		}
		ev, err := synth.Event(spec)
		if err != nil {
			log.Fatal(err)
		}
		dirs[i] = filepath.Join(root, spec.Name)
		if err := pipeline.PrepareWorkDir(dirs[i], ev); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("prepared %s: %d stations, %d points\n", spec.Name, spec.Files, ev.TotalDataPoints())
	}

	opts := pipeline.Options{
		Response:     response.Config{Method: response.NigamJennings, Periods: response.LogPeriods(0.05, 10, 31)},
		EventWorkers: *workers,
	}
	results, err := pipeline.RunBatch(context.Background(), dirs, pipeline.FullParallel, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nbatch results:")
	var total float64
	for _, r := range results {
		fmt.Printf("  %-40s %2d stations  %6.2f s\n",
			filepath.Base(r.Dir), len(r.Result.Stations), r.Result.Timings.Total.Seconds())
		total += r.Result.Timings.Total.Seconds()
	}
	fmt.Printf("catalog of %d events processed; %d distinct stations; %.2f s summed pipeline time\n",
		len(results), len(pipeline.BatchStations(results)), total)
}
