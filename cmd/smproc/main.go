// Command smproc processes strong-motion V1 files with one of the five
// pipeline implementations, reporting per-stage timings and the produced
// file inventory.
//
// Usage:
//
//	smproc -dir work/ [-variant full] [-workers 0] [-method nj]
//	       [-periods 91] [-clean] [-trace run.jsonl] [-metrics metrics.txt]
//	smproc -batch "ev1,ev2,ev3" [-variant full] [-event-workers 0]
//	smproc -batch "ev1,ev2,ev3" -fleet [-fleet-policy balanced] [-admit 0]
//
// A directory must contain one record file per station in any registered
// ingest format — native V1 (.v1), GeoNet-style V1A (.v1a), the
// miniSEED-like binary (.ms), or CSV (.csv); generate synthetic ones with
// the synthgen command.  Formats are sniffed per file by magic bytes, so a
// single event may mix formats; -format forces one registry key for every
// input instead.  -qc arms the record QC gate: records that are too short,
// clipped, gappy, or structurally inconsistent are quarantined with a
// typed reason instead of poisoning the run (see README "Ingest formats").
// -variant selects seq-original, seq-optimized, partial, full, or
// pipelined (the barrier-free record-level dataflow schedule).  -clean
// removes all pipeline products first so the run starts from a pristine
// directory.
// -batch processes several event directories concurrently.  -fleet switches
// batch mode to the fleet scheduler (pipeline.RunFleet): every event runs
// the pipelined variant and their record-level task graphs share one worker
// pool, with -fleet-policy choosing the dispatch order (latency = oldest
// event first, throughput = global packing, balanced = the default
// compromise) and -admit capping concurrently-open events (0 = the policy
// default); per-event queue wait and latency are reported.  -trace,
// -metrics, and -pprof capture the run's span tree, metrics exposition,
// and CPU profile (see README "Observability").  -chaos injects seeded
// faults into the temp-folder protocol (-chaos-seed makes runs
// reproducible); failing records are retried per -retries and then
// quarantined under <dir>/quarantine.  -cache selects the caching layers:
// off (none), mem (the default in-process memo), or disk[:dir] (memo plus
// the persistent content-addressed action cache under <dir>/.smcache or
// the given directory, so a warm re-run redoes only changed records;
// outputs are byte-identical in every mode — see README "The artifact
// cache").  -no-artifact-cache is the deprecated spelling of -cache=off.
// -storage selects the storage plane: fs (default, plain filesystem) or
// mem (inter-stage files held in memory, final products materialized to
// disk at the end of the run; outputs byte-identical — see README
// "The storage plane").  -stream enables the streaming execution plane
// (pipelined variant only): records flow through the hot stages a
// fixed-size chunk at a time and every product is written incrementally,
// so peak memory stays flat no matter how long the records are; outputs
// remain byte-identical (see README "Streaming mode").  Interrupting the
// process (SIGINT/SIGTERM) cancels the run cleanly, including scratch
// folders.
//
// Crash safety: journaled runs (-journal, on by default) append a
// write-ahead record to <dir>/.smrun after every durability point, and
// -resume replays a surviving journal after kill -9 so only unfinished
// work re-executes (see README "Crash-safe runs").  -cache-fsck scrubs a
// persistent action cache instead of processing: manifests are verified
// against blob digests, damaged entries and orphan blobs deleted, and a
// machine-readable JSON summary printed.
//
// Exit codes: 0 on a fully healthy run, 1 on a fatal error, and 3 when
// the run completed but quarantined at least one record.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"accelproc/internal/artifact"
	"accelproc/internal/cliobs"
	"accelproc/internal/dsp"
	"accelproc/internal/faults"
	"accelproc/internal/fleet"
	"accelproc/internal/ingest"
	"accelproc/internal/obs"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/storage"
)

// errQuarantined marks a run that completed end to end but gave up on at
// least one record; main maps it to exit code 3 so schedulers can tell
// "done with losses" from "failed" (exit 1) without parsing output.
var errQuarantined = errors.New("completed with quarantined records")

// exitCode maps a run error to the documented process exit code.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errQuarantined):
		return 3
	default:
		return 1
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "smproc:", err)
	}
	os.Exit(exitCode(err))
}

func parseInstrument(s string) (*dsp.Instrument, error) {
	var f0, damping float64
	if _, err := fmt.Sscanf(s, "%f,%f", &f0, &damping); err != nil {
		return nil, fmt.Errorf("bad -instrument %q (want \"f0,damping\"): %v", s, err)
	}
	in := &dsp.Instrument{F0: f0, Damping: damping}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smproc", flag.ContinueOnError)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	var (
		dir          = fs.String("dir", "", "work directory of <station> record inputs (any registered ingest format)")
		batch        = fs.String("batch", "", "comma-separated list of work directories to process concurrently")
		variant      = fs.String("variant", "full", "implementation: seq-original, seq-optimized, partial, full, or pipelined")
		workers      = fs.Int("workers", 0, "worker budget for parallel stages (0 = all processors)")
		eventWorkers = fs.Int("event-workers", 0, "concurrent events in batch mode (0 = all processors)")
		fleetMode    = fs.Bool("fleet", false, "schedule the batch on one shared worker pool (pipelined variant, see -fleet-policy)")
		fleetPolicy  = fs.String("fleet-policy", "", "fleet dispatch policy: latency, balanced (default), or throughput")
		admit        = fs.Int("admit", 0, "max concurrently-open events in fleet mode (0 = policy default)")
		method       = fs.String("method", "nj", "response-spectrum method: duhamel (legacy) or nj (fast)")
		periods      = fs.Int("periods", 91, "response-spectrum period count")
		clean        = fs.Bool("clean", false, "remove previous pipeline products before running")
		instr        = fs.String("instrument", "", "deconvolve an instrument response first: \"f0,damping\" (e.g. \"25,0.7\" for an SMA-1 style sensor)")
		verbose      = fs.Bool("verbose", false, "print each process as it completes")
		chaos        = fs.Float64("chaos", 0, "fault-injection rate in [0,1] for the temp-folder protocol (0 = off); failing records are retried, then quarantined")
		chaosSeed    = fs.Int64("chaos-seed", 1, "seed for the deterministic fault injector (same seed = same faults)")
		maxAttempts  = fs.Int("retries", 0, "max attempts per staging operation before quarantining the record (0 = default 3)")
		noCache      = fs.Bool("no-artifact-cache", false, "deprecated alias of -cache=off")
		cacheFlag    = fs.String("cache", "", "cache layers: off, mem (default), or disk[:dir] (persistent action cache; dir defaults to <workdir>/.smcache)")
		cacheVerify  = fs.Bool("cache-verify", false, "re-hash every restored action-cache blob against its recorded checksum")
		cacheMax     = fs.Int64("cache-max-bytes", 0, "action-cache size bound in bytes (0 = 256 MiB default, negative = unbounded)")
		formatName   = fs.String("format", "", "force the ingest format of every input file: "+strings.Join(ingest.Names(), ", ")+" (default: sniff each file by magic, then extension)")
		qcGate       = fs.Bool("qc", false, "enable the record QC gate thresholds (duration, clip, gap); rejects are quarantined with their typed reason")
		storageName  = fs.String("storage", "fs", "storage backend: fs (plain filesystem) or mem (in-memory inter-stage files, final products written to disk)")
		streaming    = fs.Bool("stream", false, "streaming execution plane: process records chunk-at-a-time with bounded memory (pipelined variant only)")
		journal      = fs.Bool("journal", true, "write a crash-recovery run journal under <dir>/.smrun")
		resume       = fs.Bool("resume", false, "replay a surviving run journal: skip finished work, restore quarantine verdicts, sweep stale scratch (implies -journal)")
		cacheFsck    = fs.Bool("cache-fsck", false, "scrub the persistent action cache instead of processing: verify digests, drop damaged entries, collect orphan blobs, print a JSON summary")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*dir == "") == (*batch == "") {
		return fmt.Errorf("exactly one of -dir or -batch is required")
	}
	if *fleetMode && *batch == "" {
		return fmt.Errorf("-fleet requires -batch")
	}
	policy, err := fleet.ParsePolicy(*fleetPolicy)
	if err != nil {
		return err
	}

	v, err := pipeline.ParseVariant(*variant)
	if err != nil {
		return err
	}
	m, err := response.ParseMethod(*method)
	if err != nil {
		return err
	}
	backend, err := storage.ParseBackend(*storageName)
	if err != nil {
		return err
	}
	var renderer obs.Sink
	if *verbose {
		renderer = obs.NewProgressRenderer(stdout)
	}
	session, err := obsFlags.Start(renderer)
	if err != nil {
		return err
	}
	defer session.Close()
	cacheCfg, err := pipeline.ParseCacheFlag(*cacheFlag)
	if err != nil {
		return err
	}
	cacheCfg.VerifyOnHit = *cacheVerify
	cacheCfg.MaxBytes = *cacheMax

	if *cacheFsck {
		if *batch != "" {
			return fmt.Errorf("-cache-fsck works on one cache: use -dir or -cache disk:dir")
		}
		root := cacheCfg.Dir
		if root == "" {
			root = filepath.Join(*dir, pipeline.CacheDirName)
		}
		rep, err := artifact.Scrub(storage.Disk(), root)
		if err != nil {
			return err
		}
		out := struct {
			Root string `json:"root"`
			artifact.ScrubReport
			Clean bool `json:"clean"`
		}{Root: root, ScrubReport: rep, Clean: rep.Clean()}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
		return session.Close()
	}

	opts := pipeline.Options{
		Workers:         *workers,
		EventWorkers:    *eventWorkers,
		Cache:           cacheCfg,
		NoArtifactCache: *noCache,
		Storage:         backend,
		Response: response.Config{
			Method:  m,
			Periods: response.LogPeriods(0.02, 20, *periods),
		},
		Observer:  session.Observer,
		Journal:   *journal,
		Resume:    *resume,
		Streaming: *streaming,
		Format:    *formatName,
	}
	if *qcGate {
		opts.QC = ingest.DefaultQC()
	}
	if *instr != "" {
		in, err := parseInstrument(*instr)
		if err != nil {
			return err
		}
		opts.Instrument = in
	}
	if *chaos < 0 || *chaos > 1 {
		return fmt.Errorf("-chaos %v out of range [0,1]", *chaos)
	}
	if *chaos > 0 {
		opts.Chaos = &faults.Config{Seed: *chaosSeed, Rate: *chaos}
	}
	opts.Retry = pipeline.RetryPolicy{MaxAttempts: *maxAttempts, JitterSeed: *chaosSeed}

	if *batch != "" {
		dirs := strings.Split(*batch, ",")
		for i := range dirs {
			dirs[i] = strings.TrimSpace(dirs[i])
		}
		if *clean {
			for _, d := range dirs {
				if err := pipeline.CleanOutputs(d); err != nil {
					return err
				}
			}
		}
		var results []pipeline.BatchResult
		var err error
		if *fleetMode {
			results, err = pipeline.RunFleet(ctx, dirs, pipeline.FleetOptions{
				Options: opts, Policy: policy, Admit: *admit,
			})
		} else {
			results, err = pipeline.RunBatch(ctx, dirs, v, opts)
		}
		for _, r := range results {
			if r.Err != nil {
				fmt.Fprintf(stdout, "%-30s FAILED: %v\n", r.Dir, r.Err)
				continue
			}
			if *fleetMode {
				fmt.Fprintf(stdout, "%-30s %3d stations in %.2f s (queued %.2f s)\n",
					r.Dir, len(r.Result.Stations), r.Latency.Seconds(), r.Wait.Seconds())
				continue
			}
			fmt.Fprintf(stdout, "%-30s %3d stations in %.2f s\n",
				r.Dir, len(r.Result.Stations), r.Result.Timings.Total.Seconds())
		}
		if *fleetMode {
			fmt.Fprintf(stdout, "fleet: %d events on one shared pool, policy %s, %d distinct stations\n",
				len(results), policy, len(pipeline.BatchStations(results)))
		} else {
			fmt.Fprintf(stdout, "batch: %d events, %d distinct stations\n",
				len(results), len(pipeline.BatchStations(results)))
		}
		rep := pipeline.BatchReport(results)
		if opts.Chaos != nil || len(rep.Quarantined) > 0 {
			fmt.Fprintf(stdout, "report: %s\n", rep)
			for _, q := range rep.Quarantined {
				fmt.Fprintf(stdout, "  quarantined %s/%s at stage %s after %d attempts: %v\n",
					q.Dir, q.Station, q.Stage, q.Attempts, q.Err)
			}
		}
		if err != nil {
			return err
		}
		if err := session.Close(); err != nil {
			return err
		}
		if rep.Degraded() {
			return errQuarantined
		}
		return nil
	}

	if *clean {
		if err := pipeline.CleanOutputs(*dir); err != nil {
			return err
		}
	}
	res, err := pipeline.Run(ctx, *dir, v, opts)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "processed %d stations with %s in %.2f s\n",
		len(res.Stations), res.Variant, res.Timings.Total.Seconds())
	if res.Resume.Resumed {
		fmt.Fprintf(stdout, "resumed: %d journaled nodes skipped, %d quarantine verdicts replayed, %d stale scratch entries swept\n",
			res.Resume.NodesSkipped, res.Resume.QuarantinesReplayed, res.Resume.ScratchSwept)
	} else if res.Resume.ScratchSwept > 0 {
		fmt.Fprintf(stdout, "startup sweep: removed %d stale scratch entries\n", res.Resume.ScratchSwept)
	}
	if cacheCfg.Mode == pipeline.CachePersistent {
		fmt.Fprintf(stdout, "action cache: %d hits, %d misses, %d evictions, %d bytes resident\n",
			res.Cache.ActionHits, res.Cache.ActionMisses, res.Cache.ActionEvictions, res.Cache.ActionBytes)
	}
	if opts.Chaos != nil || len(res.Quarantined) > 0 {
		fmt.Fprintf(stdout, "chaos: %d faults injected, %d retries, %d records quarantined\n",
			res.FaultsInjected, res.Retries, len(res.Quarantined))
		for _, q := range res.Quarantined {
			fmt.Fprintf(stdout, "  quarantined %s at stage %s after %d attempts: %v\n",
				q.Station, q.Stage, q.Attempts, q.Err)
		}
	}
	fmt.Fprintln(stdout, "\nper-stage wall times:")
	for _, st := range pipeline.Stages {
		fmt.Fprintf(stdout, "  stage %-5s %10.3f s  (processes", st.ID, res.Timings.Stage[st.ID].Seconds())
		for _, p := range st.Processes {
			fmt.Fprintf(stdout, " #%d", p)
		}
		fmt.Fprintln(stdout, ")")
	}

	inv, err := pipeline.Inventory(*dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "\nproducts: %d V2, %d Fourier, %d response, %d GEM, %d plots\n",
		inv.V2, inv.Fourier, inv.Response, inv.GEM, inv.Plots)
	if err := session.Close(); err != nil {
		return err
	}
	if len(res.Quarantined) > 0 {
		return errQuarantined
	}
	return nil
}
