package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

func makeWorkDir(t *testing.T, seed int64) string {
	t.Helper()
	ev, err := synth.Event(synth.EventSpec{
		Name: "t", Files: 2, TotalPoints: 1600, Magnitude: 4.8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "work")
	if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestParseVariant(t *testing.T) {
	good := map[string]pipeline.Variant{
		"seq-original":  pipeline.SeqOriginal,
		"seq-optimized": pipeline.SeqOptimized,
		"partial":       pipeline.PartialParallel,
		"full":          pipeline.FullParallel,
	}
	for in, want := range good {
		got, err := parseVariant(in)
		if err != nil || got != want {
			t.Errorf("parseVariant(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseVariant("bogus"); err == nil {
		t.Error("bogus variant accepted")
	}
}

func TestParseMethod(t *testing.T) {
	if m, err := parseMethod("duhamel"); err != nil || m != response.Duhamel {
		t.Errorf("duhamel: %v, %v", m, err)
	}
	if m, err := parseMethod("nj"); err != nil || m != response.NigamJennings {
		t.Errorf("nj: %v, %v", m, err)
	}
	if _, err := parseMethod("x"); err == nil {
		t.Error("bogus method accepted")
	}
}

func TestRunSingleDirectory(t *testing.T) {
	dir := makeWorkDir(t, 1)
	var out bytes.Buffer
	err := run([]string{"-dir", dir, "-variant", "full", "-periods", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"processed 2 stations", "stage IX", "products: 6 V2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCleanRerun(t *testing.T) {
	dir := makeWorkDir(t, 2)
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-periods", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"-dir", dir, "-clean", "-variant", "seq-optimized", "-periods", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sequential-optimized") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunBatchMode(t *testing.T) {
	d1 := makeWorkDir(t, 3)
	d2 := makeWorkDir(t, 4)
	var out bytes.Buffer
	err := run([]string{"-batch", d1 + ", " + d2, "-periods", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "batch: 2 events") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -dir and -batch accepted")
	}
	if err := run([]string{"-dir", "a", "-batch", "b"}, &out); err == nil {
		t.Error("both -dir and -batch accepted")
	}
	if err := run([]string{"-dir", "x", "-variant", "bogus"}, &out); err == nil {
		t.Error("bogus variant accepted")
	}
	if err := run([]string{"-dir", "x", "-method", "bogus"}, &out); err == nil {
		t.Error("bogus method accepted")
	}
	if err := run([]string{"-dir", filepath.Join(t.TempDir(), "missing")}, &out); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestParseInstrument(t *testing.T) {
	in, err := parseInstrument("25,0.7")
	if err != nil || in.F0 != 25 || in.Damping != 0.7 {
		t.Errorf("parseInstrument = %+v, %v", in, err)
	}
	for _, bad := range []string{"", "25", "x,y", "0,0.7", "25,3"} {
		if _, err := parseInstrument(bad); err == nil {
			t.Errorf("parseInstrument(%q) accepted", bad)
		}
	}
}

func TestRunWithInstrumentFlag(t *testing.T) {
	dir := makeWorkDir(t, 5)
	var out bytes.Buffer
	err := run([]string{"-dir", dir, "-periods", "8", "-instrument", "25,0.7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "processed 2 stations") {
		t.Errorf("output = %q", out.String())
	}
	if err := run([]string{"-dir", dir, "-instrument", "garbage"}, &out); err == nil {
		t.Error("bad instrument flag accepted")
	}
}

func TestRunVerbose(t *testing.T) {
	dir := makeWorkDir(t, 6)
	var out bytes.Buffer
	if err := run([]string{"-dir", dir, "-periods", "8", "-verbose", "-variant", "seq-optimized"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#1 ", "gather input data files", "response spectrum calculation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}
