package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
	"accelproc/internal/synth"
)

func makeWorkDir(t *testing.T, seed int64) string {
	t.Helper()
	ev, err := synth.Event(synth.EventSpec{
		Name: "t", Files: 2, TotalPoints: 1600, Magnitude: 4.8, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "work")
	if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunSingleDirectory(t *testing.T) {
	dir := makeWorkDir(t, 1)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-dir", dir, "-variant", "full", "-periods", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"processed 2 stations", "stage IX", "products: 6 V2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCleanRerun(t *testing.T) {
	dir := makeWorkDir(t, 2)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-dir", dir, "-periods", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run(context.Background(), []string{"-dir", dir, "-clean", "-variant", "seq-optimized", "-periods", "8"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sequential-optimized") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunBatchMode(t *testing.T) {
	d1 := makeWorkDir(t, 3)
	d2 := makeWorkDir(t, 4)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-batch", d1 + ", " + d2, "-periods", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "batch: 2 events") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, nil, &out); err == nil {
		t.Error("missing -dir and -batch accepted")
	}
	if err := run(ctx, []string{"-dir", "a", "-batch", "b"}, &out); err == nil {
		t.Error("both -dir and -batch accepted")
	}
	if err := run(ctx, []string{"-dir", "x", "-variant", "bogus"}, &out); err == nil {
		t.Error("bogus variant accepted")
	}
	if err := run(ctx, []string{"-dir", "x", "-method", "bogus"}, &out); err == nil {
		t.Error("bogus method accepted")
	}
	if err := run(ctx, []string{"-dir", filepath.Join(t.TempDir(), "missing")}, &out); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestParseInstrument(t *testing.T) {
	in, err := parseInstrument("25,0.7")
	if err != nil || in.F0 != 25 || in.Damping != 0.7 {
		t.Errorf("parseInstrument = %+v, %v", in, err)
	}
	for _, bad := range []string{"", "25", "x,y", "0,0.7", "25,3"} {
		if _, err := parseInstrument(bad); err == nil {
			t.Errorf("parseInstrument(%q) accepted", bad)
		}
	}
}

func TestRunWithInstrumentFlag(t *testing.T) {
	dir := makeWorkDir(t, 5)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-dir", dir, "-periods", "8", "-instrument", "25,0.7"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "processed 2 stations") {
		t.Errorf("output = %q", out.String())
	}
	if err := run(context.Background(), []string{"-dir", dir, "-instrument", "garbage"}, &out); err == nil {
		t.Error("bad instrument flag accepted")
	}
}

func TestRunVerbose(t *testing.T) {
	dir := makeWorkDir(t, 6)
	var out bytes.Buffer
	if err := run(context.Background(), []string{"-dir", dir, "-periods", "8", "-verbose", "-variant", "seq-optimized"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"#1 ", "gather input data files", "response spectrum calculation"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}

// TestRunTraceAndMetrics is the acceptance check of the observability
// layer's CLI wiring: -trace writes a span tree whose stage durations sum
// to within 5% of the run total, and -metrics writes a Prometheus
// exposition with the pipeline counters.
func TestRunTraceAndMetrics(t *testing.T) {
	dir := makeWorkDir(t, 7)
	tracePath := filepath.Join(t.TempDir(), "out.jsonl")
	metricsPath := filepath.Join(t.TempDir(), "metrics.txt")
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-dir", dir, "-variant", "full", "-periods", "8",
		"-trace", tracePath, "-metrics", metricsPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	type line struct {
		ID     int64  `json:"id"`
		Parent int64  `json:"parent"`
		Kind   string `json:"kind"`
		DurUS  int64  `json:"dur_us"`
	}
	var runDur, stageSum int64
	runs, stages := 0, 0
	for _, raw := range bytes.Split(bytes.TrimSpace(data), []byte("\n")) {
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("bad trace line %s: %v", raw, err)
		}
		switch l.Kind {
		case "run":
			runs++
			runDur = l.DurUS
		case "stage":
			stages++
			stageSum += l.DurUS
		}
	}
	if runs != 1 {
		t.Fatalf("trace has %d run spans, want 1", runs)
	}
	if stages != pipeline.NumStages {
		t.Fatalf("trace has %d stage spans, want %d", stages, pipeline.NumStages)
	}
	if runDur <= 0 {
		t.Fatalf("run span duration %d", runDur)
	}
	ratio := float64(stageSum) / float64(runDur)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("stage durations sum to %.1f%% of the run span, want within 5%%", ratio*100)
	}

	metrics, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE records_processed_total counter",
		"bytes_staged_in_total",
		"bytes_staged_out_total",
		"pipeline_worker_occupancy",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition missing %q:\n%s", want, metrics)
		}
	}
}

func TestRunWithChaosFlags(t *testing.T) {
	dir := makeWorkDir(t, 9)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-dir", dir, "-variant", "full", "-periods", "8", "-chaos", "0.05", "-chaos-seed", "3",
	}, &out)
	// A chaotic run may quarantine records; that is the documented
	// exit-code-3 outcome, not a failure.
	if err != nil && !errors.Is(err, errQuarantined) {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "chaos:") {
		t.Errorf("output missing the chaos report:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-dir", dir, "-chaos", "1.5"}, &out); err == nil {
		t.Error("out-of-range -chaos accepted")
	}
	if err := run(context.Background(), []string{"-dir", dir, "-chaos", "-0.1"}, &out); err == nil {
		t.Error("negative -chaos accepted")
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
	if got := exitCode(errQuarantined); got != 3 {
		t.Errorf("exitCode(errQuarantined) = %d, want 3", got)
	}
	if got := exitCode(fmt.Errorf("run: %w", errQuarantined)); got != 3 {
		t.Errorf("exitCode(wrapped errQuarantined) = %d, want 3", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("exitCode(fatal) = %d, want 1", got)
	}
}

// TestRunQuarantinedExitCode drives the chaos rate high enough that records
// are quarantined: the run must complete (not fail), report the losses, and
// return the sentinel main maps to exit code 3.
func TestRunQuarantinedExitCode(t *testing.T) {
	dir := makeWorkDir(t, 13)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-dir", dir, "-variant", "full", "-periods", "8",
		"-chaos", "0.8", "-chaos-seed", "5", "-retries", "2",
	}, &out)
	if !errors.Is(err, errQuarantined) {
		t.Fatalf("err = %v, want errQuarantined:\n%s", err, out.String())
	}
	if exitCode(err) != 3 {
		t.Errorf("exit code = %d, want 3", exitCode(err))
	}
	if !strings.Contains(out.String(), "records quarantined") {
		t.Errorf("output missing the quarantine report:\n%s", out.String())
	}
}

// TestRunResumeFlow drives -resume end to end through the CLI: a journaled
// run whose finish record is erased (the state a kill -9 after the last
// node leaves) resumes with every dataflow node skipped.
func TestRunResumeFlow(t *testing.T) {
	dir := makeWorkDir(t, 14)
	var out bytes.Buffer
	if err := run(context.Background(), []string{
		"-dir", dir, "-variant", "pipelined", "-periods", "8",
	}, &out); err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, pipeline.RunJournalDir, "journal")
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatalf("journaled run left no journal: %v", err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	trimmed := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(jpath, []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run(context.Background(), []string{
		"-dir", dir, "-variant", "pipelined", "-periods", "8", "-resume",
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "resumed: 20 journaled nodes skipped") {
		t.Errorf("output missing the resume summary:\n%s", out.String())
	}
}

// TestRunCacheFsck seeds a persistent cache, plants an orphan blob, and
// asserts -cache-fsck reports and removes it — and that a second scrub of
// the repaired cache comes back clean.
func TestRunCacheFsck(t *testing.T) {
	dir := makeWorkDir(t, 15)
	var out bytes.Buffer
	if err := run(context.Background(), []string{
		"-dir", dir, "-variant", "pipelined", "-periods", "8", "-cache", "disk",
	}, &out); err != nil {
		t.Fatal(err)
	}
	orphan := []byte("orphaned blob bytes")
	sum := sha256.Sum256(orphan)
	blobPath := filepath.Join(dir, pipeline.CacheDirName, "blobs", hex.EncodeToString(sum[:]))
	if err := os.WriteFile(blobPath, orphan, 0o644); err != nil {
		t.Fatal(err)
	}

	scrub := func() map[string]any {
		t.Helper()
		out.Reset()
		if err := run(context.Background(), []string{"-dir", dir, "-cache-fsck"}, &out); err != nil {
			t.Fatalf("cache-fsck: %v\n%s", err, out.String())
		}
		var rep map[string]any
		if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
			t.Fatalf("cache-fsck output is not JSON: %v\n%s", err, out.String())
		}
		return rep
	}

	rep := scrub()
	if rep["orphan_blobs"] != float64(1) || rep["clean"] != false {
		t.Errorf("first scrub = %v, want 1 orphan and clean=false", rep)
	}
	if _, err := os.Stat(blobPath); !os.IsNotExist(err) {
		t.Errorf("orphan blob survived the scrub (err=%v)", err)
	}
	if rep := scrub(); rep["clean"] != true {
		t.Errorf("second scrub = %v, want clean=true", rep)
	}

	if err := run(context.Background(), []string{"-batch", dir, "-cache-fsck"}, &out); err == nil {
		t.Error("-cache-fsck with -batch accepted")
	}
}

func TestRunBatchChaosReport(t *testing.T) {
	d1, d2 := makeWorkDir(t, 11), makeWorkDir(t, 12)
	var out bytes.Buffer
	err := run(context.Background(), []string{
		"-batch", d1 + "," + d2, "-periods", "8", "-chaos", "0.05", "-chaos-seed", "4",
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "report: events 2 (ok 2, failed 0)") {
		t.Errorf("output missing the batch report:\n%s", out.String())
	}
}

func TestRunFleetMode(t *testing.T) {
	d1 := makeWorkDir(t, 7)
	d2 := makeWorkDir(t, 8)
	var out bytes.Buffer
	err := run(context.Background(), []string{"-batch", d1 + "," + d2, "-fleet", "-fleet-policy", "latency", "-periods", "8"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fleet: 2 events", "policy latency", "queued"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	for _, d := range []string{d1, d2} {
		inv, err := pipeline.Inventory(d)
		if err != nil {
			t.Fatal(err)
		}
		if inv.V2 != 6 {
			t.Errorf("dir %s inventory %+v, want 6 V2 products", d, inv)
		}
	}
}

func TestRunFleetFlagValidation(t *testing.T) {
	ctx := context.Background()
	var out bytes.Buffer
	if err := run(ctx, []string{"-dir", "x", "-fleet"}, &out); err == nil {
		t.Error("-fleet without -batch accepted")
	}
	if err := run(ctx, []string{"-batch", "a,b", "-fleet", "-fleet-policy", "bogus"}, &out); err == nil {
		t.Error("bogus -fleet-policy accepted")
	}
}
