// Command benchtables regenerates the paper's evaluation — Table I and
// Figures 11, 12, and 13 — on synthetic reproductions of the six seismic
// events, printing each in a layout comparable to the publication.
//
// Usage:
//
//	benchtables [-scale 0.16] [-workers 0] [-method duhamel|nj]
//	            [-periods 8] [-repeat 1] [-variants seq-original,full]
//	            [-table1] [-fig11] [-fig12] [-fig13] [-check]
//	            [-fleet] [-fleet-events 8] [-fleet-policy p] [-admit 0]
//	            [-cache off|mem|disk[:dir]] [-storage fs|mem] [-stream]
//	            [-streambench [-stream-npts 35000,250000,1000000]]
//	            [-ingestbench] [-json BENCH_label.json]
//	            [-compare old.json [-threshold 0.1]] [new.json]
//	            [-trace spans.jsonl] [-metrics metrics.txt] [-pprof cpu.out]
//
// With no selection flags, everything is produced.  -scale sets the
// workload size (1.0 = the paper's data-point counts; the default is the
// calibrated reference scale, see EXPERIMENTS.md); -check evaluates the
// reproduction-shape assertions and exits non-zero if any fails.  -json
// writes a machine-readable report of the Table I run — per-variant and
// per-stage timings, derived speedups, host info, and any -check results —
// to the given file; the repo commits such reports as BENCH_<label>.json
// baselines (see EXPERIMENTS.md "Machine-readable reports").
// -fleet runs the multi-event saturation benchmark instead of (or alongside)
// the paper tables: a queue of -fleet-events identical-shape events is
// offered to one shared worker pool under each fleet scheduling policy
// (or just -fleet-policy), reporting per-event latency quantiles and
// aggregate throughput against a sequential-RunBatch baseline; -admit caps
// concurrently-open events (0 = policy default).  With -check, the fleet
// acceptance criteria are evaluated; with -json, the report gains a "fleet"
// block plus a synthetic fleet event whose variants are the per-policy queue
// makespans, so -compare gates fleet baselines like any other.
// -fleet is excluded from the no-flag default selection.
// -stream runs every measured pipelined variant with the streaming execution
// plane (Options.Streaming; other variants are unaffected).  -streambench
// runs the streaming-plane memory ablation instead: for each per-record
// length in -stream-npts, a materialized and a streaming pipelined run on
// the mem backend, reporting peak residency and output identity; with
// -check, the flat-StorageBytesPeak acceptance criteria are evaluated, and
// with -json the report gains a "stream" block plus synthetic per-NPTS
// event rows so -compare gates streaming baselines like any other.
// -streambench is excluded from the no-flag default selection.
// -ingestbench runs the ingest-plane decode microbenchmark: every
// registered input format decodes the same synthetic record, fastest of
// -repeat kept.  Any -json run attaches it automatically as an "ingest"
// block plus a synthetic "ingest-decode" event row whose variants are the
// per-format decode times, so -compare gates decode-path regressions
// against the committed baselines like any other cell.
// -cache selects the caching layers of every measured run: off, mem (the
// default in-process memo), or disk[:dir] (the persistent action cache —
// the cold-vs-warm ablation endpoint; see -ablations).  -no-artifact-cache
// is the deprecated spelling of -cache=off (the cached-vs-uncached ablation
// endpoint; outputs are byte-identical in every mode).  -storage selects the
// storage plane for every
// measured run: fs (default) or mem, the disk-vs-memory ablation endpoints;
// the report's host block records the backend and, on mem, the peak
// in-memory residency.  -compare runs no benchmarks: it diffs two
// committed reports — the old baseline named by the flag, the new one as
// the positional argument — printing per-event, per-variant deltas and
// exiting non-zero when any variant slowed down by more than -threshold
// (relative, default 0.10).  -trace captures every measured run's span
// tree — the Figure 11 rows are derived from the same spans — and
// -metrics/-pprof write the metrics exposition and a CPU profile (see
// README "Observability").
//
// Exit codes: 0 when every measured run was fully healthy, 1 on a fatal
// error (including failed -check assertions or -compare regressions), and
// 3 when the evaluation completed but some measured run quarantined
// records (only possible under -chaos).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"

	"accelproc/internal/bench"
	"accelproc/internal/cliobs"
	"accelproc/internal/fleet"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// errQuarantined marks an evaluation that completed but lost records to
// quarantine in some measured run; main maps it to exit code 3.
var errQuarantined = errors.New("completed with quarantined records")

// exitCode maps a run error to the documented process exit code.
func exitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, errQuarantined):
		return 3
	default:
		return 1
	}
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
	}
	os.Exit(exitCode(err))
}

// parseVariants splits a comma-separated -variants value.
func parseVariants(s string) ([]pipeline.Variant, error) {
	if s == "" {
		return nil, nil
	}
	var out []pipeline.Variant
	for _, part := range strings.Split(s, ",") {
		v, err := pipeline.ParseVariant(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts splits a comma-separated list of positive integers.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%d", &n); err != nil || n <= 0 {
			return nil, fmt.Errorf("bad value %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}

// errChecksFailed marks a completed run whose shape checks did not pass.
var errChecksFailed = fmt.Errorf("reproduction shape checks failed")

// runCompare implements -compare: diff two committed reports and fail on
// regressions beyond the threshold.
func runCompare(stdout io.Writer, oldPath, newPath string, threshold float64) error {
	if threshold < 0 {
		return fmt.Errorf("-threshold %g must be non-negative", threshold)
	}
	oldRep, err := bench.ReadReportFile(oldPath)
	if err != nil {
		return err
	}
	newRep, err := bench.ReadReportFile(newPath)
	if err != nil {
		return err
	}
	c := bench.Compare(oldRep, newRep)
	fmt.Fprint(stdout, c.Format(threshold))
	if n := len(c.Regressions(threshold)); n > 0 {
		return fmt.Errorf("%d variant(s) regressed beyond %.1f%%", n, 100*threshold)
	}
	return nil
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	var (
		scale      = fs.Float64("scale", bench.ReferenceScale, "workload scale factor (1.0 = paper data sizes; default is the calibrated reference scale)")
		workers    = fs.Int("workers", 0, "worker budget for parallel variants (0 = all processors)")
		method     = fs.String("method", "duhamel", "stage IX method: duhamel (legacy O(D^2)) or nj (Nigam-Jennings O(D))")
		periods    = fs.Int("periods", bench.ShapePeriods, "response-spectrum period count")
		repeat     = fs.Int("repeat", 1, "repetitions per measurement (fastest kept)")
		variants   = fs.String("variants", "", "comma-separated variants to measure (default: all five)")
		jsonPath   = fs.String("json", "", "write a machine-readable report of the Table I run to this file")
		table1     = fs.Bool("table1", false, "produce Table I")
		fig11      = fs.Bool("fig11", false, "produce Figure 11 (per-stage, largest event)")
		fig12      = fs.Bool("fig12", false, "produce Figure 12 (per-event bars)")
		fig13      = fs.Bool("fig13", false, "produce Figure 13 (speedup/throughput vs size)")
		check      = fs.Bool("check", false, "evaluate reproduction-shape assertions")
		fleetSel   = fs.Bool("fleet", false, "run the multi-event saturation benchmark (fleet scheduler)")
		fleetEvs   = fs.Int("fleet-events", 8, "queue length for the fleet benchmark")
		fleetPol   = fs.String("fleet-policy", "", "measure only this fleet policy (default: latency, balanced, and throughput)")
		admit      = fs.Int("admit", 0, "fleet admission cap: max concurrently-open events (0 = policy default)")
		ablations  = fs.Bool("ablations", false, "run the design-choice ablations on the mid-size event")
		smoke      = fs.Bool("smoke", false, "self-test mode: two tiny synthetic events instead of the paper's six")
		chaos      = fs.Float64("chaos", 0, "fault-injection rate in [0,1] for the temp-folder protocol: measure the degraded mode")
		chaosSeed  = fs.Int64("chaos-seed", 1, "seed for the deterministic fault injector")
		noCache    = fs.Bool("no-artifact-cache", false, "deprecated alias of -cache=off")
		cacheFlag  = fs.String("cache", "", "cache layers for every measured run: off, mem (default), or disk[:dir]")
		storageNm  = fs.String("storage", "fs", "storage backend for every measured run: fs (plain filesystem) or mem (in-memory inter-stage files)")
		streaming  = fs.Bool("stream", false, "run measured pipelined variants with the streaming execution plane")
		streamSel  = fs.Bool("streambench", false, "run the streaming-plane memory ablation (NPTS sweep on the mem backend)")
		streamNPTS = fs.String("stream-npts", "", "comma-separated per-record NPTS sweep for -streambench (default 35000,250000,1000000)")
		ingestSel  = fs.Bool("ingestbench", false, "run the per-format ingest decode microbenchmark (always attached to -json reports)")
		compare    = fs.String("compare", "", "diff this baseline report against the report given as positional argument, then exit")
		threshold  = fs.Float64("threshold", 0.10, "relative slowdown treated as a regression by -compare (0.10 = 10%)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *compare != "" {
		if fs.NArg() != 1 {
			return fmt.Errorf("-compare needs exactly one positional argument (the new report), got %d", fs.NArg())
		}
		return runCompare(stdout, *compare, fs.Arg(0), *threshold)
	}

	all := !*table1 && !*fig11 && !*fig12 && !*fig13 && !*check && !*ablations && !*fleetSel && !*streamSel && !*ingestSel
	// -check applies to whatever ran: the classic tables (always, unless the
	// run is fleet- or streambench-only) and the fleet/stream benchmarks
	// when their flags are set.
	classic := *table1 || *fig11 || *fig12 || *fig13 || *ablations
	shapeCheck := *check && ((!*fleetSel && !*streamSel) || classic)

	m, err := response.ParseMethod(*method)
	if err != nil {
		return err
	}
	vs, err := parseVariants(*variants)
	if err != nil {
		return err
	}
	backend, err := storage.ParseBackend(*storageNm)
	if err != nil {
		return err
	}
	cacheCfg, err := pipeline.ParseCacheFlag(*cacheFlag)
	if err != nil {
		return err
	}
	session, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer session.Close()
	cfg := bench.Config{
		Scale:           *scale,
		Workers:         *workers,
		Repeat:          *repeat,
		Variants:        vs,
		Observer:        session.Observer,
		ChaosRate:       *chaos,
		ChaosSeed:       *chaosSeed,
		Cache:           cacheCfg,
		NoArtifactCache: *noCache,
		Storage:         backend,
		Streaming:       *streaming,
		Response: response.Config{
			Method:  m,
			Periods: response.LogPeriods(0.05, 10, *periods),
		},
	}
	fig11Spec := synth.PaperEvents()[5]    // Jul-31-2019: 19 files, 384K points
	ablationSpec := synth.PaperEvents()[2] // Jul-10-2019: 9 files, mid-size
	if *smoke {
		cfg.Events = []synth.EventSpec{
			{Name: "smoke-1", Files: 2, TotalPoints: 2000, Magnitude: 4.5, Seed: 1},
			{Name: "smoke-2", Files: 3, TotalPoints: 4500, Magnitude: 5.0, Seed: 2},
		}
		cfg.Scale = 1.0
		fig11Spec = cfg.Events[1]
		ablationSpec = cfg.Events[0]
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "accelproc evaluation: scale=%g workers=%d method=%s periods=%d repeat=%d storage=%s GOMAXPROCS=%d\n\n",
		cfg.Scale, *workers, m, *periods, *repeat, backend, runtime.GOMAXPROCS(0))

	progress := func(s string) { fmt.Fprintln(stderr, "running "+s) }

	var results []bench.EventResult
	if all || *table1 || *fig12 || *fig13 || shapeCheck || (*jsonPath != "" && (all || classic)) {
		var err error
		results, err = bench.RunTable1(ctx, cfg, progress)
		if err != nil {
			return err
		}
	}
	var f11 bench.Fig11Result
	if all || *fig11 || shapeCheck {
		progress(fmt.Sprintf("figure 11 on %s", fig11Spec.Name))
		var err error
		f11, err = bench.RunFig11(ctx, fig11Spec, cfg)
		if err != nil {
			return err
		}
	}

	if all || *table1 {
		fmt.Fprintln(stdout, bench.FormatTable1(results))
	}
	if all || *fig11 {
		fmt.Fprintln(stdout, bench.FormatFig11(f11))
	}
	if all || *fig12 {
		fmt.Fprintln(stdout, bench.FormatFig12(results))
	}
	if all || *fig13 {
		fmt.Fprintln(stdout, bench.FormatFig13(results))
	}
	if all || *ablations {
		progress(fmt.Sprintf("ablations on %s", ablationSpec.Name))
		abl, err := bench.RunAblations(ctx, ablationSpec, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, bench.FormatAblations(abl))
	}

	var fleetRes *bench.FleetResult
	if *fleetSel {
		fcfg := bench.FleetConfig{
			Queue:    *fleetEvs,
			Scale:    cfg.Scale,
			Workers:  cfg.Workers,
			Admit:    *admit,
			Repeat:   cfg.Repeat,
			Response: cfg.Response,
			Storage:  cfg.Storage,
			Observer: cfg.Observer,
		}
		if *fleetPol != "" {
			p, err := fleet.ParsePolicy(*fleetPol)
			if err != nil {
				return err
			}
			fcfg.Policies = []fleet.Policy{p}
		}
		if *smoke {
			fcfg.Queue = 3
			fcfg.Scale = 1.0
			fcfg.Spec = synth.EventSpec{Name: "fleet-smoke", Files: 2, TotalPoints: 1200, Magnitude: 4.6, Seed: 3}
		}
		if err := fcfg.Validate(); err != nil {
			return err
		}
		progress(fmt.Sprintf("fleet saturation: %d-event queue", fcfg.Queue))
		fr, err := bench.RunFleetBench(ctx, fcfg, progress)
		if err != nil {
			return err
		}
		fleetRes = &fr
		fmt.Fprintln(stdout, bench.FormatFleet(fr))
	}

	var streamRes *bench.StreamResults
	if *streamSel {
		scfg := bench.StreamConfig{
			Workers:  cfg.Workers,
			Observer: cfg.Observer,
		}
		if *streamNPTS != "" {
			npts, err := parseInts(*streamNPTS)
			if err != nil {
				return fmt.Errorf("-stream-npts: %w", err)
			}
			scfg.NPTS = npts
		}
		if *smoke && scfg.NPTS == nil {
			scfg.NPTS = []int{4000, 16000}
		}
		if err := scfg.Validate(); err != nil {
			return err
		}
		progress("stream ablation: NPTS sweep on the mem backend")
		sr, err := bench.RunStreamBench(ctx, scfg, progress)
		if err != nil {
			return err
		}
		streamRes = &sr
		fmt.Fprintln(stdout, bench.FormatStreamBench(sr))
	}

	var ingestRes *bench.IngestResult
	if *ingestSel || *jsonPath != "" {
		progress("ingest decode microbenchmark")
		ir, err := bench.RunIngestBench(ctx, bench.IngestConfig{Repeat: cfg.Repeat})
		if err != nil {
			return err
		}
		ingestRes = &ir
		if *ingestSel {
			fmt.Fprintln(stdout, bench.FormatIngest(ir))
		}
	}

	var checkLines []string
	checksFailed := false
	if all || shapeCheck {
		checkLines = bench.ShapeChecks(results, f11)
		fmt.Fprintln(stdout, "REPRODUCTION SHAPE CHECKS")
		for _, line := range checkLines {
			fmt.Fprintln(stdout, line)
			if strings.HasPrefix(line, "[FAIL]") {
				checksFailed = true
			}
		}
	}
	// The fleet criteria compare the policies against each other, so they
	// are only meaningful when the full default policy set was measured.
	if *fleetSel && *check && *fleetPol == "" {
		fleetLines := bench.FleetChecks(*fleetRes)
		fmt.Fprintln(stdout, "FLEET SCHEDULER CHECKS")
		for _, line := range fleetLines {
			fmt.Fprintln(stdout, line)
			if strings.HasPrefix(line, "[FAIL]") {
				checksFailed = true
			}
		}
		checkLines = append(checkLines, fleetLines...)
	}
	if *streamSel && *check {
		streamLines := bench.StreamChecks(*streamRes)
		fmt.Fprintln(stdout, "STREAMING PLANE CHECKS")
		for _, line := range streamLines {
			fmt.Fprintln(stdout, line)
			if strings.HasPrefix(line, "[FAIL]") {
				checksFailed = true
			}
		}
		checkLines = append(checkLines, streamLines...)
	}
	// The JSON report is written even when checks fail: a failing baseline
	// is evidence worth keeping.
	if *jsonPath != "" {
		label := strings.TrimSuffix(filepath.Base(*jsonPath), filepath.Ext(*jsonPath))
		label = strings.TrimPrefix(label, "BENCH_")
		rep := bench.NewReport(label, cfg, results, checkLines)
		if fleetRes != nil {
			rep.AttachFleet(*fleetRes)
		}
		if streamRes != nil {
			rep.AttachStream(*streamRes)
		}
		if ingestRes != nil {
			rep.AttachIngest(*ingestRes)
		}
		if err := rep.WriteFile(*jsonPath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %s\n", *jsonPath)
	}
	if checksFailed {
		return errChecksFailed
	}
	if err := session.Close(); err != nil {
		return err
	}
	var quarantined int64
	for _, r := range results {
		quarantined += r.Quarantined
	}
	if quarantined > 0 {
		fmt.Fprintf(stdout, "quarantined records across measured runs: %d\n", quarantined)
		return errQuarantined
	}
	return nil
}
