package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/bench"
	"accelproc/internal/pipeline"
)

func TestRunSmokeTable1(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-smoke", "-table1", "-periods", "6"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE I", "smoke-1", "smoke-2", "SpeedUp"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if !strings.Contains(errBuf.String(), "running event smoke-1") {
		t.Errorf("progress output = %q", errBuf.String())
	}
}

func TestRunSmokeFigures(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-smoke", "-fig11", "-fig12", "-fig13", "-periods", "6", "-method", "nj"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FIGURE 11", "FIGURE 12", "FIGURE 13"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunSmokeCheckReportsOutcome(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-smoke", "-check", "-periods", "6"}, &out, &errBuf)
	// At smoke scale the ordering checks may legitimately fail; what must
	// hold is that checks were evaluated and a failure maps to the
	// sentinel error rather than a crash.
	if err != nil && !errors.Is(err, errChecksFailed) {
		t.Fatalf("unexpected error: %v", err)
	}
	if !strings.Contains(out.String(), "REPRODUCTION SHAPE CHECKS") {
		t.Error("check section missing")
	}
}

func TestExitCodeMapping(t *testing.T) {
	if got := exitCode(nil); got != 0 {
		t.Errorf("exitCode(nil) = %d, want 0", got)
	}
	if got := exitCode(errQuarantined); got != 3 {
		t.Errorf("exitCode(errQuarantined) = %d, want 3", got)
	}
	if got := exitCode(errChecksFailed); got != 1 {
		t.Errorf("exitCode(errChecksFailed) = %d, want 1", got)
	}
	if got := exitCode(errors.New("boom")); got != 1 {
		t.Errorf("exitCode(fatal) = %d, want 1", got)
	}
}

// TestRunSmokeChaosQuarantineExitCode runs the smoke evaluation under heavy
// chaos: records get quarantined, the evaluation still completes, and the
// run reports the exit-code-3 sentinel with the loss total printed.
func TestRunSmokeChaosQuarantineExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{
		"-smoke", "-table1", "-periods", "6", "-variants", "full",
		"-chaos", "0.8", "-chaos-seed", "5",
	}, &out, &errBuf)
	if !errors.Is(err, errQuarantined) {
		t.Fatalf("err = %v, want errQuarantined:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "quarantined records across measured runs:") {
		t.Errorf("output missing the quarantine total:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-method", "bogus"}, &out, &errBuf); err == nil {
		t.Error("bogus method accepted")
	}
	if err := run(context.Background(), []string{"-scale", "-2", "-table1"}, &out, &errBuf); err == nil {
		t.Error("negative scale accepted")
	}
	if err := run(context.Background(), []string{"-no-such-flag"}, &out, &errBuf); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunSmokeAblations(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-smoke", "-ablations", "-periods", "6", "-method", "nj"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ABLATIONS", "processor sweep"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunCompareReports(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	oldRep := bench.Report{Label: "old", Events: []bench.EventReport{
		{Event: "ev", Variants: map[string]bench.VariantReport{"full": {Seconds: 10}}},
	}}
	newRep := bench.Report{Label: "new", Events: []bench.EventReport{
		{Event: "ev", Variants: map[string]bench.VariantReport{"full": {Seconds: 13}}},
	}}
	if err := oldRep.WriteFile(oldPath); err != nil {
		t.Fatal(err)
	}
	if err := newRep.WriteFile(newPath); err != nil {
		t.Fatal(err)
	}

	// +30% against a 10% threshold: regression, non-nil error.
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-compare", oldPath, newPath}, &out, &errBuf)
	if err == nil {
		t.Error("regression did not produce an error")
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Errorf("comparison output missing REGRESSED marker:\n%s", out.String())
	}

	// Same diff under a 50% threshold: in the noise, clean exit.
	out.Reset()
	if err := run(context.Background(), []string{"-compare", oldPath, "-threshold", "0.5", newPath}, &out, &errBuf); err != nil {
		t.Fatalf("within-threshold compare failed: %v", err)
	}
	if !strings.Contains(out.String(), "no regressions") {
		t.Errorf("comparison output missing summary:\n%s", out.String())
	}

	// Missing the positional new-report argument is a usage error.
	if err := run(context.Background(), []string{"-compare", oldPath}, &out, &errBuf); err == nil {
		t.Error("missing positional argument accepted")
	}
}

func TestRunSmokeJSONReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_smoke.json")
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-smoke", "-table1", "-periods", "6", "-method", "nj", "-json", path}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Label != "smoke" {
		t.Errorf("label = %q, want smoke (derived from the file name)", rep.Label)
	}
	// Two smoke events plus the ingest-decode microbenchmark row every
	// -json run attaches so -compare gates decode-path regressions too.
	if len(rep.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(rep.Events))
	}
	if rep.Ingest == nil || len(rep.Ingest.Formats) == 0 {
		t.Error("ingest block missing from -json report")
	}
	for _, ev := range rep.Events {
		if ev.Event == "ingest-decode" {
			continue
		}
		for _, v := range pipeline.Variants {
			vr, ok := ev.Variants[v.String()]
			if !ok || vr.Seconds <= 0 {
				t.Errorf("event %s: variant %v missing or zero", ev.Event, v)
			}
		}
		if ev.SpeedupPipelined <= 0 || ev.PipelinedVsFull <= 0 {
			t.Errorf("event %s: dataflow ratios not derived", ev.Event)
		}
	}
	if rep.Host.NumCPU <= 0 || rep.Host.GoVersion == "" {
		t.Errorf("host info incomplete: %+v", rep.Host)
	}
}

func TestRunSmokeFleet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_fleet-smoke.json")
	var out, errBuf bytes.Buffer
	err := run(context.Background(), []string{"-smoke", "-fleet", "-check", "-json", path}, &out, &errBuf)
	// The fleet criteria are ratio-based and robust at smoke scale, but a
	// noisy host may still trip them; either way the sections must render.
	if err != nil && !errors.Is(err, errChecksFailed) {
		t.Fatal(err)
	}
	for _, want := range []string{"FLEET SATURATION", "FLEET SCHEDULER CHECKS", "fleet-smoke"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "TABLE I") {
		t.Error("fleet-only run produced the paper tables")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep bench.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Fleet == nil || rep.Fleet.Events != 3 || len(rep.Fleet.Policies) != 3 {
		t.Fatalf("fleet block = %+v", rep.Fleet)
	}
	if rep.Fleet.SingleEventSeconds <= 0 || rep.Fleet.Sequential.MakespanSeconds <= 0 {
		t.Errorf("fleet baselines missing: %+v", rep.Fleet)
	}
	var fleetEv *bench.EventReport
	for i := range rep.Events {
		if rep.Events[i].Event == "fleet-3ev" {
			fleetEv = &rep.Events[i]
		}
	}
	if fleetEv == nil {
		t.Fatalf("no fleet event row for -compare: %+v", rep.Events)
	}
	for _, v := range []string{"batch-sequential", "fleet-latency", "fleet-balanced", "fleet-throughput"} {
		if vr, ok := fleetEv.Variants[v]; !ok || vr.Seconds <= 0 {
			t.Errorf("fleet event variant %s missing or zero", v)
		}
	}
}

func TestRunFleetSinglePolicy(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(context.Background(), []string{"-smoke", "-fleet", "-fleet-policy", "throughput"}, &out, &errBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "throughput") || strings.Contains(out.String(), "FLEET SCHEDULER CHECKS") {
		t.Errorf("single-policy output wrong:\n%s", out.String())
	}
	if err := run(context.Background(), []string{"-smoke", "-fleet", "-fleet-policy", "bogus"}, &out, &errBuf); err == nil {
		t.Error("bogus -fleet-policy accepted")
	}
}
