package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Jul-31-2019", "384000", "Nov-24-2018"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunGeneratesCustomEvent(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "work")
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-files", "3", "-points", "4800", "-magnitude", "5", "-seed", "9"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := pipeline.Inventory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if inv.V1Inputs != 3 {
		t.Errorf("inventory = %+v, want 3 V1 inputs", inv)
	}
	if !strings.Contains(out.String(), "wrote 3 V1 record files (4800 total data points)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunGeneratesPreset(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "work")
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-preset", "Nov-24-2018", "-scale", "0.05"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := pipeline.Inventory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if inv.V1Inputs != 5 {
		t.Errorf("inventory = %+v, want 5 V1 inputs", inv)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-preset", "no-such-event"}, &out); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-files", "0"}, &out); err == nil {
		t.Error("zero files accepted")
	}
	if err := run([]string{"-bogus-flag"}, &out); err == nil {
		t.Error("bogus flag accepted")
	}
}

func TestRunGeneratesExactNPTS(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "work")
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-files", "2", "-npts", "1000", "-magnitude", "5", "-seed", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 2 V1 record files (2000 total data points)") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunListsMegaEvent(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "megaevent") {
		t.Errorf("list output missing megaevent scenario: %q", out.String())
	}
}

func TestRunGeneratesMegaEventScaled(t *testing.T) {
	// The full million-point scenario is a benchmark workload; generating it
	// at 1% still exercises the preset + NPTS plumbing end to end.
	dir := filepath.Join(t.TempDir(), "work")
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-preset", "megaevent", "-scale", "0.01"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 3 V1 record files (30000 total data points)") {
		t.Errorf("output = %q", out.String())
	}
}
