// Command synthgen generates synthetic strong-motion datasets: multiplexed
// <station>.v1 files ready for processing by smproc.
//
// Usage:
//
//	synthgen -out work/ -preset Jul-31-2019     # one of the paper's events
//	synthgen -out work/ -files 8 -points 120000 -magnitude 5.6 -seed 42
//	synthgen -out work/ -files 2 -npts 250000   # exact per-record length
//	synthgen -out work/ -preset megaevent       # million-point records
//	synthgen -list                              # show the presets
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"accelproc/internal/pipeline"
	"accelproc/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output directory (required unless -list)")
		preset    = fs.String("preset", "", "paper event preset name (see -list)")
		files     = fs.Int("files", 5, "number of station records")
		points    = fs.Int("points", 100000, "total data points across all records")
		npts      = fs.Int("npts", 0, "exact per-record sample count (> 0 overrides -points)")
		magnitude = fs.Float64("magnitude", 5.5, "scenario magnitude")
		seed      = fs.Int64("seed", 1, "generator seed")
		scale     = fs.Float64("scale", 1.0, "scale factor applied to the data-point count")
		list      = fs.Bool("list", false, "list the paper's event presets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "paper event presets (Table I):")
		for _, spec := range synth.PaperEvents() {
			fmt.Fprintf(stdout, "  %-12s %2d files, %7d data points, M%.1f\n",
				spec.Name, spec.Files, spec.TotalPoints, spec.Magnitude)
		}
		mega := synth.MegaEvent()
		fmt.Fprintln(stdout, "stress scenarios:")
		fmt.Fprintf(stdout, "  %-12s %2d files, %7d points each, M%.1f\n",
			mega.Name, mega.Files, mega.NPTS, mega.Magnitude)
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	var spec synth.EventSpec
	if *preset != "" {
		found := false
		for _, s := range append(synth.PaperEvents(), synth.MegaEvent()) {
			if s.Name == *preset {
				spec, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown preset %q (use -list)", *preset)
		}
		if *npts > 0 {
			spec.NPTS = *npts
		}
	} else {
		spec = synth.EventSpec{
			Name:        "custom",
			Files:       *files,
			TotalPoints: *points,
			Magnitude:   *magnitude,
			Seed:        *seed,
			NPTS:        *npts,
		}
	}
	spec = spec.Scale(*scale)

	ev, err := synth.Event(spec)
	if err != nil {
		return err
	}
	if err := pipeline.PrepareWorkDir(*out, ev); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d V1 files (%d total data points) to %s\n",
		len(ev.Records), ev.TotalDataPoints(), *out)
	return nil
}
