// Command synthgen generates synthetic strong-motion datasets: station
// record files in any registered ingest format, ready for processing by
// smproc.
//
// Usage:
//
//	synthgen -out work/ -preset Jul-31-2019     # one of the paper's events
//	synthgen -out work/ -files 8 -points 120000 -magnitude 5.6 -seed 42
//	synthgen -out work/ -files 2 -npts 250000   # exact per-record length
//	synthgen -out work/ -preset megaevent       # million-point records
//	synthgen -out work/ -format v1a             # GeoNet-style fixed-width
//	synthgen -out work/ -format mix -corrupt mix  # every format + defect
//	synthgen -out work/ -preset nasty           # the hostile-ingest soak
//	synthgen -list                              # show the presets
//
// -format selects the on-disk encoding (v1, v1a, mseed, csv, or mix to
// cycle through all of them); -corrupt injects record defects (clip, gap,
// azimuth, short, dt, length, missing, or mix) that the ingest QC gate
// quarantines — except azimuth, which encodes a rotated sensor frame the
// decode plane must rotate back.  The nasty preset defaults both to mix.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"accelproc/internal/ingest"
	"accelproc/internal/synth"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "synthgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synthgen", flag.ContinueOnError)
	var (
		out       = fs.String("out", "", "output directory (required unless -list)")
		preset    = fs.String("preset", "", "paper event preset name (see -list)")
		files     = fs.Int("files", 5, "number of station records")
		points    = fs.Int("points", 100000, "total data points across all records")
		npts      = fs.Int("npts", 0, "exact per-record sample count (> 0 overrides -points)")
		magnitude = fs.Float64("magnitude", 5.5, "scenario magnitude")
		seed      = fs.Int64("seed", 1, "generator seed")
		scale     = fs.Float64("scale", 1.0, "scale factor applied to the data-point count")
		format    = fs.String("format", "", "record encoding: "+strings.Join(ingest.Names(), ", ")+", or mix (default v1)")
		corrupt   = fs.String("corrupt", "", "inject record defects: "+strings.Join(synth.CorruptKinds, ", ")+", or mix")
		list      = fs.Bool("list", false, "list the paper's event presets and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		fmt.Fprintln(stdout, "paper event presets (Table I):")
		for _, spec := range synth.PaperEvents() {
			fmt.Fprintf(stdout, "  %-12s %2d files, %7d data points, M%.1f\n",
				spec.Name, spec.Files, spec.TotalPoints, spec.Magnitude)
		}
		mega := synth.MegaEvent()
		nasty := synth.NastyEvent()
		fmt.Fprintln(stdout, "stress scenarios:")
		fmt.Fprintf(stdout, "  %-12s %2d files, %7d points each, M%.1f\n",
			mega.Name, mega.Files, mega.NPTS, mega.Magnitude)
		fmt.Fprintf(stdout, "  %-12s %2d files, %7d data points, M%.1f (mixed formats + defects)\n",
			nasty.Name, nasty.Files, nasty.TotalPoints, nasty.Magnitude)
		return nil
	}
	if *out == "" {
		return fmt.Errorf("-out is required")
	}

	emit := synth.EmitOptions{Format: *format, Corrupt: *corrupt, Seed: *seed}
	var spec synth.EventSpec
	if *preset != "" {
		found := false
		for _, s := range append(synth.PaperEvents(), synth.MegaEvent(), synth.NastyEvent()) {
			if s.Name == *preset {
				spec, found = s, true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown preset %q (use -list)", *preset)
		}
		if *npts > 0 {
			spec.NPTS = *npts
		}
		// The nasty preset is the mixed-format, mixed-defect soak unless
		// the flags narrow it.
		if spec.Name == "nasty" {
			if emit.Format == "" {
				emit.Format = "mix"
			}
			if emit.Corrupt == "" {
				emit.Corrupt = "mix"
			}
			emit.Seed = spec.Seed
		}
	} else {
		spec = synth.EventSpec{
			Name:        "custom",
			Files:       *files,
			TotalPoints: *points,
			Magnitude:   *magnitude,
			Seed:        *seed,
			NPTS:        *npts,
		}
	}
	spec = spec.Scale(*scale)

	ev, err := synth.Event(spec)
	if err != nil {
		return err
	}
	if err := synth.EmitEvent(*out, ev, emit); err != nil {
		return err
	}
	kind := "V1"
	if emit.Format != "" && emit.Format != "v1" {
		kind = emit.Format
	}
	fmt.Fprintf(stdout, "wrote %d %s record files (%d total data points) to %s\n",
		len(ev.Records), kind, ev.TotalDataPoints(), *out)
	return nil
}
