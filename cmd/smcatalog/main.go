// Command smcatalog aggregates processed event directories into a
// strong-motion catalog and answers repository queries: the role the
// Salvadoran Accelerographic Repository plays for the observatory.
//
// Usage:
//
//	smcatalog -root processed/                   # summary report
//	smcatalog -root processed/ -station SS01     # one station's history
//	smcatalog -root processed/ -exceed 100       # records with PGA >= 100 gal
//	smcatalog -root new/ -merge old.json -save all.json   # accumulate runs
//
// Every immediate subdirectory of -root that has been processed by smproc
// is ingested, named after the subdirectory.  -trace, -metrics, and -pprof
// capture the ingest's span tree, metrics, and CPU profile (see README
// "Observability").
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"accelproc/internal/catalog"
	"accelproc/internal/cliobs"
	"accelproc/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "smcatalog:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("smcatalog", flag.ContinueOnError)
	var obsFlags cliobs.Flags
	obsFlags.Register(fs)
	var (
		root    = fs.String("root", "", "directory whose subdirectories are processed events (required)")
		station = fs.String("station", "", "print the record history of one station")
		exceed  = fs.Float64("exceed", 0, "count records with PGA at or above this threshold (gal)")
		save    = fs.String("save", "", "also write the catalog to this JSON file")
		merge   = fs.String("merge", "", "merge a previously saved catalog JSON before querying")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *root == "" {
		return fmt.Errorf("-root is required")
	}
	session, err := obsFlags.Start()
	if err != nil {
		return err
	}
	defer session.Close()
	o := session.Observer

	c := catalog.New()
	ingest := o.Root("catalog:ingest", obs.KindRun, obs.String("root", *root))
	n, err := c.IngestAll(*root)
	if err != nil {
		ingest.End(obs.String("error", err.Error()))
		return err
	}
	ingest.End(obs.Int("events", int64(n)), obs.Int("entries", int64(c.Len())))
	o.Counter("catalog_entries_total").Add(float64(c.Len()))
	if n == 0 {
		return fmt.Errorf("no processed event directories under %s", *root)
	}
	if *merge != "" {
		mergeSpan := ingest.Child("catalog:merge", obs.KindTask, obs.String("file", *merge))
		prev, err := catalog.Load(*merge)
		if err != nil {
			mergeSpan.End(obs.String("error", err.Error()))
			return err
		}
		if err := c.Merge(prev); err != nil {
			mergeSpan.End(obs.String("error", err.Error()))
			return err
		}
		mergeSpan.End()
	}
	if *save != "" {
		if err := c.Save(*save); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved catalog (%d entries) to %s\n", c.Len(), *save)
	}

	switch {
	case *station != "":
		hist := c.StationHistory(*station)
		if len(hist) == 0 {
			return fmt.Errorf("station %q not in catalog", *station)
		}
		fmt.Fprintf(stdout, "station %s: %d records\n", *station, len(hist))
		fmt.Fprintf(stdout, "%-16s %-4s %12s %12s %12s %12s\n",
			"event", "comp", "PGA (gal)", "PGV (cm/s)", "PGD (cm)", "peak SA")
		for _, e := range hist {
			fmt.Fprintf(stdout, "%-16s %-4s %12.2f %12.3f %12.4f %12.1f\n",
				e.Event, e.Component.Suffix(), e.Peaks.PGA, e.Peaks.PGV, e.Peaks.PGD, e.PeakSA)
		}
	case *exceed > 0:
		count := c.ExceedanceCount(*exceed)
		fmt.Fprintf(stdout, "%d of %d records have PGA >= %.1f gal\n", count, c.Len(), *exceed)
	default:
		fmt.Fprint(stdout, c.Report())
	}
	return session.Close()
}
