package main

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

func processedRoot(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	for i, name := range []string{"2019-07-31", "2018-11-24"} {
		ev, err := synth.Event(synth.EventSpec{
			Name: name, Files: 2, TotalPoints: 1600, Magnitude: 5.0, Seed: int64(10 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		dir := filepath.Join(root, name)
		if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
			t.Fatal(err)
		}
		opts := pipeline.Options{Response: response.Config{
			Method:  response.NigamJennings,
			Periods: response.LogPeriods(0.05, 5, 8),
		}}
		if _, err := pipeline.Run(context.Background(), dir, pipeline.SeqOptimized, opts); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestRunReport(t *testing.T) {
	root := processedRoot(t)
	var out bytes.Buffer
	if err := run([]string{"-root", root}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"2 events", "largest PGA", "SS01", "SS02"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunStationQuery(t *testing.T) {
	root := processedRoot(t)
	var out bytes.Buffer
	if err := run([]string{"-root", root, "-station", "SS02"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "station SS02: 6 records") {
		t.Errorf("output = %q", out.String())
	}
	if err := run([]string{"-root", root, "-station", "NOPE"}, &out); err == nil {
		t.Error("unknown station accepted")
	}
}

func TestRunExceedQuery(t *testing.T) {
	root := processedRoot(t)
	var out bytes.Buffer
	if err := run([]string{"-root", root, "-exceed", "0.001"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "12 of 12 records") {
		t.Errorf("output = %q", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -root accepted")
	}
	if err := run([]string{"-root", t.TempDir()}, &out); err == nil {
		t.Error("root without processed events accepted")
	}
}

func TestRunSaveAndMerge(t *testing.T) {
	root := processedRoot(t)
	saved := filepath.Join(t.TempDir(), "cat.json")
	var out bytes.Buffer
	if err := run([]string{"-root", root, "-save", saved}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved catalog (12 entries)") {
		t.Errorf("output = %q", out.String())
	}
	// Merging the same events back is a duplicate and must fail loudly.
	out.Reset()
	if err := run([]string{"-root", root, "-merge", saved}, &out); err == nil {
		t.Error("duplicate merge accepted")
	}
}
