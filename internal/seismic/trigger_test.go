package seismic

import (
	"math"
	"math/rand"
	"testing"
)

// quietThenStrong builds a record with low-level noise followed by strong
// shaking starting at onsetSec.
func quietThenStrong(n int, dt, onsetSec float64, seed int64) Trace {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	onset := int(onsetSec / dt)
	for i := range data {
		if i < onset {
			data[i] = 0.1 * rng.NormFloat64()
		} else {
			data[i] = 20 * rng.NormFloat64()
		}
	}
	return Trace{DT: dt, Data: data}
}

func TestSTALTAShape(t *testing.T) {
	tr := quietThenStrong(8000, 0.01, 40, 1)
	ratios, err := STALTA(tr, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != 8000 {
		t.Fatalf("len = %d", len(ratios))
	}
	// Zero before the LTA window fills.
	for i := 0; i < 1000; i++ {
		if ratios[i] != 0 {
			t.Fatalf("ratio[%d] = %g before LTA filled", i, ratios[i])
		}
	}
	// Near 1 during stationary noise, large right after onset.
	if r := ratios[3000]; r < 0.2 || r > 5 {
		t.Errorf("stationary ratio = %g, want ~1", r)
	}
	onsetIdx := 4000
	peak := 0.0
	for i := onsetIdx; i < onsetIdx+100; i++ {
		if ratios[i] > peak {
			peak = ratios[i]
		}
	}
	if peak < 10 {
		t.Errorf("onset ratio peak = %g, want >> 1", peak)
	}
}

func TestSTALTAErrors(t *testing.T) {
	tr := quietThenStrong(1000, 0.01, 5, 2)
	if _, err := STALTA(Trace{}, 10, 100); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := STALTA(tr, 0, 100); err == nil {
		t.Error("zero STA accepted")
	}
	if _, err := STALTA(tr, 100, 100); err == nil {
		t.Error("STA == LTA accepted")
	}
	if _, err := STALTA(tr, 10, 1000); err == nil {
		t.Error("LTA >= record length accepted")
	}
}

func TestDetectOnset(t *testing.T) {
	tr := quietThenStrong(8000, 0.01, 40, 3)
	onset, err := DetectOnset(tr, TriggerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(onset-40) > 1.0 {
		t.Errorf("onset = %g s, want ~40 s", onset)
	}
}

func TestDetectOnsetNoTrigger(t *testing.T) {
	// Pure stationary noise never triggers at ratio 3.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 4000)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	tr := Trace{DT: 0.01, Data: data}
	if _, err := DetectOnset(tr, TriggerConfig{}); err == nil {
		t.Error("stationary noise triggered")
	}
}

func TestDetectOnsetCustomConfig(t *testing.T) {
	tr := quietThenStrong(8000, 0.01, 20, 5)
	onset, err := DetectOnset(tr, TriggerConfig{STASeconds: 0.2, LTASeconds: 5, On: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(onset-20) > 1.0 {
		t.Errorf("onset = %g s, want ~20 s", onset)
	}
	if _, err := DetectOnset(Trace{}, TriggerConfig{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestDetectOnsetOnSyntheticArrival(t *testing.T) {
	// The synthetic generator delays the arrival with distance; the
	// trigger must find an onset in the first quarter of the record.
	tr := quietThenStrong(4000, 0.01, 8, 6)
	onset, err := DetectOnset(tr, TriggerConfig{LTASeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if onset < 5 || onset > 12 {
		t.Errorf("onset = %g s, want ~8 s", onset)
	}
}
