package seismic

import (
	"fmt"
	"math"
)

// STALTA computes the classic short-term-average / long-term-average ratio
// of the squared signal, the trigger function observatories use for event
// detection and P-wave onset picking.  staWin and ltaWin are window lengths
// in samples (staWin < ltaWin); the output has one ratio per sample, zero
// until the LTA window is filled.
func STALTA(accel Trace, staWin, ltaWin int) ([]float64, error) {
	if err := accel.Validate(); err != nil {
		return nil, err
	}
	if staWin < 1 || ltaWin <= staWin {
		return nil, fmt.Errorf("seismic: STA/LTA windows must satisfy 1 <= sta < lta, got %d, %d", staWin, ltaWin)
	}
	n := len(accel.Data)
	if ltaWin >= n {
		return nil, fmt.Errorf("seismic: LTA window %d exceeds record length %d", ltaWin, n)
	}
	// Prefix sums of the squared signal give O(1) window averages.
	prefix := make([]float64, n+1)
	for i, v := range accel.Data {
		prefix[i+1] = prefix[i] + v*v
	}
	out := make([]float64, n)
	for i := ltaWin; i < n; i++ {
		sta := (prefix[i+1] - prefix[i+1-staWin]) / float64(staWin)
		lta := (prefix[i+1] - prefix[i+1-ltaWin]) / float64(ltaWin)
		if lta > 0 {
			out[i] = sta / lta
		}
	}
	return out, nil
}

// TriggerConfig parameterizes onset detection.
type TriggerConfig struct {
	// STASeconds and LTASeconds are the window lengths (typical strong-
	// motion values: 0.5 s and 10 s).  Zero selects those defaults.
	STASeconds float64
	LTASeconds float64
	// On is the STA/LTA ratio that declares a trigger; zero selects 3.0.
	On float64
}

func (c TriggerConfig) withDefaults() TriggerConfig {
	if c.STASeconds == 0 {
		c.STASeconds = 0.5
	}
	if c.LTASeconds == 0 {
		c.LTASeconds = 10
	}
	if c.On == 0 {
		c.On = 3.0
	}
	return c
}

// DetectOnset returns the time (s) of the first STA/LTA trigger — the
// event onset pick — or an error if the record never triggers.
func DetectOnset(accel Trace, cfg TriggerConfig) (float64, error) {
	cfg = cfg.withDefaults()
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	staWin := int(math.Round(cfg.STASeconds / accel.DT))
	ltaWin := int(math.Round(cfg.LTASeconds / accel.DT))
	if staWin < 1 {
		staWin = 1
	}
	if ltaWin <= staWin {
		ltaWin = staWin + 1
	}
	ratios, err := STALTA(accel, staWin, ltaWin)
	if err != nil {
		return 0, err
	}
	for i, r := range ratios {
		if r >= cfg.On {
			return float64(i) * accel.DT, nil
		}
	}
	return 0, fmt.Errorf("seismic: no STA/LTA trigger at ratio %.1f", cfg.On)
}
