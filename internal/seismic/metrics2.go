package seismic

import (
	"fmt"
	"math"

	"accelproc/internal/dsp"
)

// CAV computes the cumulative absolute velocity of an acceleration trace in
// cm/s: the integral of |a(t)| dt.  CAV is the damage-potential metric used
// in nuclear-plant exceedance criteria (cf. the paper's motivation of
// ground-motion databases for plant safety).
func CAV(accel Trace) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, a := range accel.Data {
		sum += math.Abs(a)
	}
	return sum * accel.DT, nil
}

// RMSAcceleration returns the root-mean-square acceleration in gal over the
// whole record.
func RMSAcceleration(accel Trace) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, a := range accel.Data {
		sum += a * a
	}
	return math.Sqrt(sum / float64(len(accel.Data))), nil
}

// HusidCurve returns the normalized cumulative Arias intensity at every
// sample: h[i] = Ia(0..t_i) / Ia(total), a monotone curve from ~0 to 1.
// Significant durations are read directly off this curve.
func HusidCurve(accel Trace) ([]float64, error) {
	if err := accel.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, len(accel.Data))
	var cum float64
	for i, a := range accel.Data {
		cum += a * a
		out[i] = cum
	}
	if cum == 0 {
		return nil, fmt.Errorf("seismic: zero-energy trace has no Husid curve")
	}
	for i := range out {
		out[i] /= cum
	}
	return out, nil
}

// PredominantPeriod returns the period (s) of the largest Fourier amplitude
// of the acceleration trace, the simplest spectral characterization used in
// site-effect screening.  DC is excluded.
func PredominantPeriod(accel Trace) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	amps, df, err := dsp.AmplitudeSpectrum(accel.Data, accel.DT)
	if err != nil {
		return 0, err
	}
	best, bestAmp := 0, 0.0
	for k := 1; k < len(amps); k++ {
		if amps[k] > bestAmp {
			best, bestAmp = k, amps[k]
		}
	}
	if best == 0 {
		return 0, fmt.Errorf("seismic: trace has no spectral peak")
	}
	return 1 / (float64(best) * df), nil
}

// Summary aggregates the standard engineering metrics of one component in a
// single call — what a catalog entry for the record would hold.
type Summary struct {
	Peaks             PeakValues
	AriasIntensity    float64 // cm/s
	CAV               float64 // cm/s
	RMS               float64 // gal
	Duration595       float64 // s, D5-95
	BracketedDuration float64 // s at the 50 gal threshold (0 if never)
	PredominantPeriod float64 // s
}

// Summarize computes the full metric summary of an acceleration trace.
func Summarize(accel Trace) (Summary, error) {
	var s Summary
	var err error
	if s.Peaks, err = Peaks(accel); err != nil {
		return Summary{}, err
	}
	if s.AriasIntensity, err = AriasIntensity(accel); err != nil {
		return Summary{}, err
	}
	if s.CAV, err = CAV(accel); err != nil {
		return Summary{}, err
	}
	if s.RMS, err = RMSAcceleration(accel); err != nil {
		return Summary{}, err
	}
	if s.Duration595, err = SignificantDuration(accel, 0.05, 0.95); err != nil {
		return Summary{}, err
	}
	if s.BracketedDuration, err = BracketedDuration(accel, 50); err != nil {
		return Summary{}, err
	}
	if s.PredominantPeriod, err = PredominantPeriod(accel); err != nil {
		return Summary{}, err
	}
	return s, nil
}
