package seismic

import (
	"math"
	"testing"
)

// mlTrace builds a band-limited burst with the given peak acceleration.
func mlTrace(peakGal float64) Trace {
	n, dt := 8000, 0.01
	data := make([]float64, n)
	for i := range data {
		ti := float64(i) * dt
		env := math.Exp(-math.Pow(ti-40, 2) / 100)
		data[i] = peakGal * env * math.Sin(2*math.Pi*1.5*ti)
	}
	return Trace{DT: dt, Data: data}
}

func TestLocalMagnitudeMonotonicInAmplitude(t *testing.T) {
	small, err := LocalMagnitude(mlTrace(10), 50)
	if err != nil {
		t.Fatal(err)
	}
	big, err := LocalMagnitude(mlTrace(100), 50)
	if err != nil {
		t.Fatal(err)
	}
	// A 10x amplitude increase is +1 magnitude unit by definition.
	if math.Abs((big-small)-1) > 0.01 {
		t.Errorf("ML(10x amplitude) - ML = %g, want 1.0", big-small)
	}
}

func TestLocalMagnitudeMonotonicInDistance(t *testing.T) {
	near, err := LocalMagnitude(mlTrace(50), 20)
	if err != nil {
		t.Fatal(err)
	}
	far, err := LocalMagnitude(mlTrace(50), 150)
	if err != nil {
		t.Fatal(err)
	}
	// The same recorded amplitude at a larger distance implies a larger
	// source.
	if far <= near {
		t.Errorf("ML at 150 km (%g) <= ML at 20 km (%g)", far, near)
	}
}

func TestLocalMagnitudePlausibleRange(t *testing.T) {
	// A 100 gal record at 30 km is a strong local event: ML should land
	// somewhere in the 4.5-7 range, not 0 or 15.
	ml, err := LocalMagnitude(mlTrace(100), 30)
	if err != nil {
		t.Fatal(err)
	}
	if ml < 4 || ml > 8 {
		t.Errorf("ML = %g, outside the plausible 4-8 band", ml)
	}
}

func TestLocalMagnitudeAnchor(t *testing.T) {
	// Definition anchor: a Wood-Anderson amplitude of 1 mm at 100 km is
	// ML 3.0.  Verify via the attenuation term directly: at R=100 the
	// Hutton-Boore term is exactly 3.
	logA0 := 1.11*math.Log10(100.0/100) + 0.00189*(100-100) + 3.0
	if logA0 != 3.0 {
		t.Errorf("-log10(A0) at 100 km = %g, want 3", logA0)
	}
}

func TestLocalMagnitudeErrors(t *testing.T) {
	if _, err := LocalMagnitude(Trace{}, 50); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := LocalMagnitude(mlTrace(10), 0); err == nil {
		t.Error("zero distance accepted")
	}
	if _, err := LocalMagnitude(mlTrace(10), -5); err == nil {
		t.Error("negative distance accepted")
	}
}
