package seismic

import (
	"fmt"
	"math"
	"sort"
)

// RotateHorizontal rotates the two horizontal components of a record by the
// given azimuth (degrees, counterclockwise): the instrument's L/T axes are
// re-expressed in a new orthogonal horizontal frame, e.g. to align with the
// source's radial/transverse directions.  The vertical component is
// untouched.  A new record is returned; the input is not modified.
func RotateHorizontal(rec Record, azimuthDeg float64) (Record, error) {
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	rad := azimuthDeg * math.Pi / 180
	c, s := math.Cos(rad), math.Sin(rad)
	n := rec.Samples()
	out := Record{Station: rec.Station}
	out.Accel[Longitudinal] = Trace{DT: rec.Accel[Longitudinal].DT, Data: make([]float64, n)}
	out.Accel[Transversal] = Trace{DT: rec.Accel[Transversal].DT, Data: make([]float64, n)}
	out.Accel[Vertical] = rec.Accel[Vertical].Clone()
	l := rec.Accel[Longitudinal].Data
	tr := rec.Accel[Transversal].Data
	for i := 0; i < n; i++ {
		out.Accel[Longitudinal].Data[i] = c*l[i] + s*tr[i]
		out.Accel[Transversal].Data[i] = -s*l[i] + c*tr[i]
	}
	return out, nil
}

// RotD computes orientation-independent horizontal peak measures: the
// record's horizontals are rotated through 180 one-degree steps, the peak
// absolute acceleration is taken at each angle, and the requested
// percentiles of those 180 peaks are returned (RotD0 = minimum, RotD50 =
// median, RotD100 = maximum — the measures modern ground-motion models are
// calibrated to).  Percentiles are given in [0, 100].
func RotD(rec Record, percentiles []float64) ([]float64, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	if len(percentiles) == 0 {
		return nil, fmt.Errorf("seismic: no percentiles requested")
	}
	for _, p := range percentiles {
		if p < 0 || p > 100 {
			return nil, fmt.Errorf("seismic: percentile %g outside [0, 100]", p)
		}
	}
	l := rec.Accel[Longitudinal].Data
	t := rec.Accel[Transversal].Data
	peaks := make([]float64, 180)
	for deg := 0; deg < 180; deg++ {
		rad := float64(deg) * math.Pi / 180
		c, s := math.Cos(rad), math.Sin(rad)
		var peak float64
		for i := range l {
			v := math.Abs(c*l[i] + s*t[i])
			if v > peak {
				peak = v
			}
		}
		peaks[deg] = peak
	}
	sort.Float64s(peaks)
	out := make([]float64, len(percentiles))
	for i, p := range percentiles {
		// Nearest-rank percentile over the 180 sorted peaks.
		rank := int(math.Ceil(p/100*180)) - 1
		if rank < 0 {
			rank = 0
		}
		if rank > 179 {
			rank = 179
		}
		out[i] = peaks[rank]
	}
	return out, nil
}

// GeometricMeanPGA returns the geometric mean of the two horizontal peak
// accelerations, the classic (orientation-dependent) predecessor of RotD50.
func GeometricMeanPGA(rec Record) (float64, error) {
	if err := rec.Validate(); err != nil {
		return 0, err
	}
	pl, _ := absPeak(rec.Accel[Longitudinal].Data)
	pt, _ := absPeak(rec.Accel[Transversal].Data)
	return math.Sqrt(pl * pt), nil
}

func absPeak(x []float64) (float64, int) {
	peak, idx := 0.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > peak || idx == -1 {
			peak, idx = a, i
		}
	}
	return peak, idx
}
