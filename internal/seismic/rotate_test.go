package seismic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randRecord(seed int64, n int) Record {
	rng := rand.New(rand.NewSource(seed))
	var rec Record
	rec.Station = "RT01"
	for ci := range rec.Accel {
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64() * 10
		}
		rec.Accel[ci] = Trace{DT: 0.01, Data: data}
	}
	return rec
}

func TestRotateHorizontalIdentity(t *testing.T) {
	rec := randRecord(1, 500)
	for _, deg := range []float64{0, 360, -360} {
		got, err := RotateHorizontal(rec, deg)
		if err != nil {
			t.Fatal(err)
		}
		for ci := range rec.Accel {
			for i := range rec.Accel[ci].Data {
				if math.Abs(got.Accel[ci].Data[i]-rec.Accel[ci].Data[i]) > 1e-9 {
					t.Fatalf("deg=%g comp %d sample %d changed", deg, ci, i)
				}
			}
		}
	}
}

func TestRotateHorizontalInverse(t *testing.T) {
	rec := randRecord(2, 400)
	fwd, err := RotateHorizontal(rec, 37)
	if err != nil {
		t.Fatal(err)
	}
	back, err := RotateHorizontal(fwd, -37)
	if err != nil {
		t.Fatal(err)
	}
	for ci := range rec.Accel {
		for i := range rec.Accel[ci].Data {
			if math.Abs(back.Accel[ci].Data[i]-rec.Accel[ci].Data[i]) > 1e-9 {
				t.Fatalf("comp %d sample %d not restored", ci, i)
			}
		}
	}
}

// Property: rotation preserves per-sample horizontal vector magnitude and
// leaves the vertical untouched.
func TestRotateHorizontalPreservesEnergy(t *testing.T) {
	f := func(seed int64, degRaw int16) bool {
		rec := randRecord(seed, 100)
		deg := float64(degRaw % 720)
		got, err := RotateHorizontal(rec, deg)
		if err != nil {
			return false
		}
		for i := range rec.Accel[0].Data {
			m0 := math.Hypot(rec.Accel[0].Data[i], rec.Accel[1].Data[i])
			m1 := math.Hypot(got.Accel[0].Data[i], got.Accel[1].Data[i])
			if math.Abs(m0-m1) > 1e-9*(m0+1) {
				return false
			}
			if got.Accel[2].Data[i] != rec.Accel[2].Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRotateHorizontalRejectsInvalid(t *testing.T) {
	if _, err := RotateHorizontal(Record{}, 30); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestRotDOnLinearlyPolarizedSignal(t *testing.T) {
	// All motion on one axis: RotD100 = PGA of that axis, RotD0 ~ 0
	// (the 90-degree rotation nulls it).
	n := 2000
	var rec Record
	rec.Station = "POL"
	data := make([]float64, n)
	for i := range data {
		data[i] = 50 * math.Sin(2*math.Pi*2*float64(i)*0.01)
	}
	rec.Accel[Longitudinal] = Trace{DT: 0.01, Data: data}
	rec.Accel[Transversal] = Trace{DT: 0.01, Data: make([]float64, n)}
	rec.Accel[Vertical] = Trace{DT: 0.01, Data: make([]float64, n)}
	// Avoid the all-zero validation failure for T/V by adding a tiny value.
	rec.Accel[Transversal].Data[0] = 1e-9
	rec.Accel[Vertical].Data[0] = 1e-9

	rot, err := RotD(rec, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rot[2]-50) > 0.1 {
		t.Errorf("RotD100 = %g, want ~50", rot[2])
	}
	if rot[0] > 2 {
		t.Errorf("RotD0 = %g, want ~0 for linear polarization", rot[0])
	}
	if !(rot[0] <= rot[1] && rot[1] <= rot[2]) {
		t.Errorf("percentiles not ordered: %v", rot)
	}
}

func TestRotDOnCircularlyPolarizedSignal(t *testing.T) {
	// Circular polarization: every rotation angle sees the same peak, so
	// RotD0 == RotD50 == RotD100.
	n := 4000
	var rec Record
	rec.Station = "CIR"
	l := make([]float64, n)
	tr := make([]float64, n)
	for i := range l {
		ph := 2 * math.Pi * 2 * float64(i) * 0.01
		l[i] = 30 * math.Cos(ph)
		tr[i] = 30 * math.Sin(ph)
	}
	rec.Accel[Longitudinal] = Trace{DT: 0.01, Data: l}
	rec.Accel[Transversal] = Trace{DT: 0.01, Data: tr}
	v := make([]float64, n)
	v[0] = 1e-9
	rec.Accel[Vertical] = Trace{DT: 0.01, Data: v}

	rot, err := RotD(rec, []float64{0, 50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rot[0]-rot[2]) > 0.5 {
		t.Errorf("circular polarization: RotD0 %g != RotD100 %g", rot[0], rot[2])
	}
	if math.Abs(rot[1]-30) > 0.5 {
		t.Errorf("RotD50 = %g, want ~30", rot[1])
	}
}

func TestRotDErrors(t *testing.T) {
	rec := randRecord(3, 100)
	if _, err := RotD(rec, nil); err == nil {
		t.Error("empty percentiles accepted")
	}
	if _, err := RotD(rec, []float64{-1}); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := RotD(rec, []float64{101}); err == nil {
		t.Error("percentile > 100 accepted")
	}
	if _, err := RotD(Record{}, []float64{50}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestGeometricMeanPGA(t *testing.T) {
	rec := randRecord(4, 300)
	gm, err := GeometricMeanPGA(rec)
	if err != nil {
		t.Fatal(err)
	}
	pl, _ := absPeak(rec.Accel[Longitudinal].Data)
	pt, _ := absPeak(rec.Accel[Transversal].Data)
	if math.Abs(gm-math.Sqrt(pl*pt)) > 1e-12 {
		t.Errorf("GM = %g", gm)
	}
	// GM lies between the two component peaks... between min and max.
	lo, hi := math.Min(pl, pt), math.Max(pl, pt)
	if gm < lo-1e-12 || gm > hi+1e-12 {
		t.Errorf("GM %g outside [%g, %g]", gm, lo, hi)
	}
	if _, err := GeometricMeanPGA(Record{}); err == nil {
		t.Error("invalid record accepted")
	}
}
