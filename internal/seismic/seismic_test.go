package seismic

import (
	"math"
	"strings"
	"testing"
)

func validTrace(n int) Trace {
	data := make([]float64, n)
	for i := range data {
		data[i] = math.Sin(float64(i) / 7)
	}
	return Trace{DT: 0.01, Data: data}
}

func validRecord(station string, n int) Record {
	return Record{
		Station: station,
		Accel:   [3]Trace{validTrace(n), validTrace(n), validTrace(n)},
	}
}

func TestComponentSuffixAndString(t *testing.T) {
	cases := []struct {
		c      Component
		suffix string
		name   string
	}{
		{Longitudinal, "l", "longitudinal"},
		{Transversal, "t", "transversal"},
		{Vertical, "v", "vertical"},
	}
	for _, c := range cases {
		if got := c.c.Suffix(); got != c.suffix {
			t.Errorf("%v.Suffix() = %q, want %q", c.c, got, c.suffix)
		}
		if got := c.c.String(); got != c.name {
			t.Errorf("String() = %q, want %q", got, c.name)
		}
	}
	if Component(9).Suffix() != "?" {
		t.Error("invalid component suffix")
	}
	if !strings.Contains(Component(9).String(), "9") {
		t.Error("invalid component String should embed the value")
	}
}

func TestParseComponent(t *testing.T) {
	good := map[string]Component{
		"l": Longitudinal, "T": Transversal, "v": Vertical,
		"Longitudinal": Longitudinal, " transversal ": Transversal, "VERTICAL": Vertical,
	}
	for in, want := range good {
		got, err := ParseComponent(in)
		if err != nil || got != want {
			t.Errorf("ParseComponent(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "x", "lt", "long"} {
		if _, err := ParseComponent(in); err == nil {
			t.Errorf("ParseComponent(%q): want error", in)
		}
	}
}

func TestTraceValidate(t *testing.T) {
	if err := validTrace(10).Validate(); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
	bad := []Trace{
		{DT: 0, Data: []float64{1}},
		{DT: -0.01, Data: []float64{1}},
		{DT: 0.01, Data: nil},
		{DT: 0.01, Data: []float64{1, math.NaN()}},
		{DT: 0.01, Data: []float64{math.Inf(1)}},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: invalid trace accepted", i)
		}
	}
}

func TestTraceDurationAndClone(t *testing.T) {
	tr := validTrace(101)
	if d := tr.Duration(); math.Abs(d-1.0) > 1e-12 {
		t.Errorf("Duration = %g, want 1.0", d)
	}
	if (Trace{}).Duration() != 0 {
		t.Error("empty trace duration != 0")
	}
	c := tr.Clone()
	c.Data[0] = 999
	if tr.Data[0] == 999 {
		t.Error("Clone shares backing array")
	}
}

func TestRecordValidate(t *testing.T) {
	if err := validRecord("SS01", 100).Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	r := validRecord("", 100)
	if err := r.Validate(); err == nil {
		t.Error("empty station accepted")
	}
	r = validRecord("SS01", 100)
	r.Accel[1].DT = 0.02
	if err := r.Validate(); err == nil {
		t.Error("mismatched DT accepted")
	}
	r = validRecord("SS01", 100)
	r.Accel[2].Data = r.Accel[2].Data[:50]
	if err := r.Validate(); err == nil {
		t.Error("mismatched length accepted")
	}
	r = validRecord("SS01", 100)
	r.Accel[0].Data[3] = math.NaN()
	if err := r.Validate(); err == nil {
		t.Error("NaN sample accepted")
	}
}

func TestEventValidateAndTotals(t *testing.T) {
	e := Event{
		Name:    "test",
		Records: []Record{validRecord("A", 100), validRecord("B", 200)},
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("valid event rejected: %v", err)
	}
	if got := e.TotalDataPoints(); got != 300 {
		t.Errorf("TotalDataPoints = %d, want 300", got)
	}
	e.Records = append(e.Records, validRecord("A", 50))
	if err := e.Validate(); err == nil {
		t.Error("duplicate station accepted")
	}
}

func TestPeaksConstantAcceleration(t *testing.T) {
	// a(t) = 1 gal for 1 s: PGA=1 at t~0 (any index with |a|=1; first wins),
	// PGV = v(end) ~ 1 cm/s, PGD = d(end) ~ 0.5 cm.
	n := 1001
	tr := Trace{DT: 0.001, Data: make([]float64, n)}
	for i := range tr.Data {
		tr.Data[i] = 1
	}
	p, err := Peaks(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.PGA != 1 || p.TimePGA != 0 {
		t.Errorf("PGA = %g at %g, want 1 at 0", p.PGA, p.TimePGA)
	}
	if math.Abs(p.PGV-1.0005) > 1e-3 {
		t.Errorf("PGV = %g, want ~1", p.PGV)
	}
	if math.Abs(p.PGD-0.5) > 2e-3 {
		t.Errorf("PGD = %g, want ~0.5", p.PGD)
	}
	if p.TimePGV < 0.99 || p.TimePGD < 0.99 {
		t.Errorf("monotone integrals must peak at the end: tv=%g td=%g", p.TimePGV, p.TimePGD)
	}
}

func TestPeaksRejectsInvalid(t *testing.T) {
	if _, err := Peaks(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestAriasIntensity(t *testing.T) {
	// Constant a = 2 gal over 10 s: Ia = pi/(2g) * 4 * 10.
	n := 10001
	tr := Trace{DT: 0.001, Data: make([]float64, n)}
	for i := range tr.Data {
		tr.Data[i] = 2
	}
	ia, err := AriasIntensity(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi / (2 * GravityGal) * 4 * 10.001
	if math.Abs(ia-want) > 1e-9 {
		t.Errorf("Ia = %g, want %g", ia, want)
	}
	if _, err := AriasIntensity(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSignificantDuration(t *testing.T) {
	// Energy uniformly distributed: D(5,95) = 0.9 * T.
	n := 10000
	tr := Trace{DT: 0.01, Data: make([]float64, n)}
	for i := range tr.Data {
		tr.Data[i] = 1
	}
	d, err := SignificantDuration(tr, 0.05, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	total := float64(n-1) * 0.01
	if math.Abs(d-0.9*total) > 0.05 {
		t.Errorf("D(5-95) = %g, want ~%g", d, 0.9*total)
	}
	// hiFrac = 1 reaches the last sample.
	if _, err := SignificantDuration(tr, 0.05, 1); err != nil {
		t.Errorf("hiFrac=1: %v", err)
	}
}

func TestSignificantDurationErrors(t *testing.T) {
	tr := validTrace(100)
	for _, c := range []struct{ lo, hi float64 }{{-0.1, 0.5}, {0.5, 0.5}, {0.9, 0.1}, {0.1, 1.1}} {
		if _, err := SignificantDuration(tr, c.lo, c.hi); err == nil {
			t.Errorf("fractions (%g,%g) accepted", c.lo, c.hi)
		}
	}
	zero := Trace{DT: 0.01, Data: make([]float64, 10)}
	if _, err := SignificantDuration(zero, 0.05, 0.95); err == nil {
		t.Error("zero-energy trace accepted")
	}
	if _, err := SignificantDuration(Trace{}, 0.05, 0.95); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestBracketedDuration(t *testing.T) {
	tr := Trace{DT: 0.1, Data: []float64{0, 0.5, -3, 0.1, 2.5, 0.2, 0}}
	d, err := BracketedDuration(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	// First exceedance at i=2, last at i=4: (4-2)*0.1 = 0.2.
	if math.Abs(d-0.2) > 1e-12 {
		t.Errorf("bracketed duration = %g, want 0.2", d)
	}
	d, err = BracketedDuration(tr, 10)
	if err != nil || d != 0 {
		t.Errorf("never exceeded: got %g, %v", d, err)
	}
	if _, err := BracketedDuration(tr, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := BracketedDuration(Trace{}, 1); err == nil {
		t.Error("invalid trace accepted")
	}
}
