package seismic

import (
	"fmt"
	"math"

	"accelproc/internal/dsp"
)

// GravityGal is standard gravity expressed in gal (cm/s²).
const GravityGal = 980.665

// PeakValues holds the peak ground motion of one component: acceleration
// (gal), velocity (cm/s), and displacement (cm), with the times (s) at which
// each peak occurs.  These are the "max values" the pipeline's filter
// processes archive alongside the corrected signals.
type PeakValues struct {
	PGA, PGV, PGD             float64
	TimePGA, TimePGV, TimePGD float64
}

// Peaks derives velocity and displacement from the acceleration trace by
// trapezoidal integration and returns the three peak values.
func Peaks(accel Trace) (PeakValues, error) {
	if err := accel.Validate(); err != nil {
		return PeakValues{}, err
	}
	vel := dsp.Integrate(accel.Data, accel.DT)
	disp := dsp.Integrate(vel, accel.DT)
	var p PeakValues
	var idx int
	p.PGA, idx = dsp.AbsMax(accel.Data)
	p.TimePGA = float64(idx) * accel.DT
	p.PGV, idx = dsp.AbsMax(vel)
	p.TimePGV = float64(idx) * accel.DT
	p.PGD, idx = dsp.AbsMax(disp)
	p.TimePGD = float64(idx) * accel.DT
	return p, nil
}

// AriasIntensity computes the Arias intensity of an acceleration trace in
// cm/s: Ia = (pi / 2g) * integral a(t)^2 dt, with g in gal to keep the
// centimeter unit system.
func AriasIntensity(accel Trace) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	var sum float64
	for _, a := range accel.Data {
		sum += a * a
	}
	return math.Pi / (2 * GravityGal) * sum * accel.DT, nil
}

// SignificantDuration returns the Husid significant duration of the record:
// the time between reaching loFrac and hiFrac of the total Arias intensity
// (conventionally 5% and 75% or 5% and 95%).
func SignificantDuration(accel Trace, loFrac, hiFrac float64) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	if !(0 <= loFrac && loFrac < hiFrac && hiFrac <= 1) {
		return 0, fmt.Errorf("seismic: invalid Husid fractions %g, %g", loFrac, hiFrac)
	}
	var total float64
	for _, a := range accel.Data {
		total += a * a
	}
	if total == 0 {
		return 0, fmt.Errorf("seismic: zero-energy trace has no significant duration")
	}
	var cum float64
	tLo, tHi := -1.0, -1.0
	for i, a := range accel.Data {
		cum += a * a
		frac := cum / total
		if tLo < 0 && frac >= loFrac {
			tLo = float64(i) * accel.DT
		}
		if tHi < 0 && frac >= hiFrac {
			tHi = float64(i) * accel.DT
			break
		}
	}
	if tHi < 0 { // hiFrac == 1 can land exactly on the last sample
		tHi = float64(len(accel.Data)-1) * accel.DT
	}
	return tHi - tLo, nil
}

// BracketedDuration returns the time between the first and last excursion of
// |a| above the threshold (gal), or 0 if the threshold is never exceeded.
func BracketedDuration(accel Trace, threshold float64) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	if threshold <= 0 {
		return 0, fmt.Errorf("seismic: bracketed duration threshold %g must be positive", threshold)
	}
	first, last := -1, -1
	for i, a := range accel.Data {
		if math.Abs(a) >= threshold {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, nil
	}
	return float64(last-first) * accel.DT, nil
}
