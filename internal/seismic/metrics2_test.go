package seismic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCAVConstant(t *testing.T) {
	// |a| = 3 gal for 10 s: CAV = 30 cm/s (10001 samples at 1 ms).
	n := 10001
	tr := Trace{DT: 0.001, Data: make([]float64, n)}
	for i := range tr.Data {
		if i%2 == 0 {
			tr.Data[i] = 3
		} else {
			tr.Data[i] = -3
		}
	}
	cav, err := CAV(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cav-3*0.001*float64(n)) > 1e-9 {
		t.Errorf("CAV = %g, want %g", cav, 3*0.001*float64(n))
	}
	if _, err := CAV(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestRMSAcceleration(t *testing.T) {
	tr := Trace{DT: 0.01, Data: []float64{3, -4, 0, 5, 0, 0}}
	// mean square = (9+16+0+25)/6 = 50/6.
	rms, err := RMSAcceleration(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(50.0 / 6)
	if math.Abs(rms-want) > 1e-12 {
		t.Errorf("RMS = %g, want %g", rms, want)
	}
	if _, err := RMSAcceleration(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestHusidCurveProperties(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%200 + 2
		rng := rand.New(rand.NewSource(seed))
		tr := Trace{DT: 0.01, Data: make([]float64, n)}
		for i := range tr.Data {
			tr.Data[i] = rng.NormFloat64()
		}
		h, err := HusidCurve(tr)
		if err != nil {
			return false
		}
		if len(h) != n {
			return false
		}
		// Monotone non-decreasing from >= 0 to 1.
		prev := 0.0
		for _, v := range h {
			if v < prev-1e-15 || v < 0 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return math.Abs(h[n-1]-1) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHusidCurveErrors(t *testing.T) {
	if _, err := HusidCurve(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := HusidCurve(Trace{DT: 0.01, Data: make([]float64, 5)}); err == nil {
		t.Error("zero-energy trace accepted")
	}
}

func TestPredominantPeriod(t *testing.T) {
	// A 2 Hz sine: predominant period 0.5 s.
	n, dt := 4000, 0.01
	tr := Trace{DT: dt, Data: make([]float64, n)}
	for i := range tr.Data {
		tr.Data[i] = math.Sin(2 * math.Pi * 2 * float64(i) * dt)
	}
	p, err := PredominantPeriod(tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.5) > 0.02 {
		t.Errorf("predominant period = %g, want 0.5", p)
	}
	if _, err := PredominantPeriod(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestSummarize(t *testing.T) {
	n, dt := 8000, 0.01
	tr := Trace{DT: dt, Data: make([]float64, n)}
	for i := range tr.Data {
		ti := float64(i) * dt
		env := math.Exp(-math.Pow(ti-40, 2) / 200)
		tr.Data[i] = 120 * env * math.Sin(2*math.Pi*1.5*ti)
	}
	s, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.Peaks.PGA < 100 || s.Peaks.PGA > 121 {
		t.Errorf("PGA = %g", s.Peaks.PGA)
	}
	if s.AriasIntensity <= 0 || s.CAV <= 0 || s.RMS <= 0 {
		t.Error("non-positive energy metrics")
	}
	if s.Duration595 <= 0 || s.Duration595 > 80 {
		t.Errorf("D5-95 = %g", s.Duration595)
	}
	if s.BracketedDuration <= 0 {
		t.Error("bracketed duration should trigger at 50 gal for a 120 gal record")
	}
	if math.Abs(s.PredominantPeriod-1/1.5) > 0.05 {
		t.Errorf("predominant period = %g, want ~0.667", s.PredominantPeriod)
	}
}

func TestSummarizeInvalid(t *testing.T) {
	if _, err := Summarize(Trace{}); err == nil {
		t.Error("invalid trace accepted")
	}
	// A quiet record below the 50 gal threshold still summarizes, with a
	// zero bracketed duration.
	n := 512
	tr := Trace{DT: 0.01, Data: make([]float64, n)}
	for i := range tr.Data {
		tr.Data[i] = math.Sin(float64(i) / 5)
	}
	s, err := Summarize(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.BracketedDuration != 0 {
		t.Errorf("bracketed duration = %g, want 0", s.BracketedDuration)
	}
}
