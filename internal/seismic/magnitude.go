package seismic

import (
	"fmt"
	"math"

	"accelproc/internal/dsp"
)

// WoodAnderson is the reference torsion seismometer that defines local
// magnitude: natural period 0.8 s (1.25 Hz), damping 0.8, static
// magnification 2080 (the modern consensus value for the nominal 2800).
var WoodAnderson = struct {
	F0            float64
	Damping       float64
	Magnification float64
}{F0: 1.25, Damping: 0.8, Magnification: 2080}

// LocalMagnitude estimates Richter local magnitude ML from one horizontal
// acceleration component (gal) at hypocentral distance km:
//
//	ML = log10(A_WA) − log10(A0(R))
//
// where A_WA is the peak Wood-Anderson displacement in millimetres obtained
// by double-integrating the acceleration and convolving with the
// Wood-Anderson displacement response, and −log10(A0) is the Hutton-Boore
// (1987) attenuation term 1.11 log10(R/100) + 0.00189 (R−100) + 3.
//
// Strong-motion ML estimates carry a few tenths of a unit of scatter; the
// value here is the single-component estimate (network practice averages
// the horizontals of all stations).
func LocalMagnitude(accel Trace, distanceKM float64) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	if distanceKM <= 0 {
		return 0, fmt.Errorf("seismic: non-positive distance %g km", distanceKM)
	}
	// Ground displacement in cm: demean + taper to keep the double
	// integration stable, as the correction processes do.
	work := append([]float64(nil), accel.Data...)
	dsp.Demean(work)
	dsp.CosineTaper(work, 0.05)
	vel := dsp.Integrate(work, accel.DT)
	dsp.Detrend(vel)
	disp := dsp.Integrate(vel, accel.DT)
	dsp.Detrend(disp)

	// Wood-Anderson response applied to displacement: the instrument is a
	// damped oscillator whose transfer (relative to ground displacement)
	// has the same SDOF shape used for accelerographs.
	wa := dsp.Instrument{F0: WoodAnderson.F0, Damping: WoodAnderson.Damping}
	waDisp, err := wa.Simulate(disp, accel.DT)
	if err != nil {
		return 0, err
	}
	peakCM, _ := dsp.AbsMax(waDisp)
	peakMM := peakCM * 10 * WoodAnderson.Magnification
	if peakMM <= 0 {
		return 0, fmt.Errorf("seismic: zero Wood-Anderson amplitude")
	}

	// Hutton-Boore southern-California -log10(A0); the Salvadoran network
	// uses regionally calibrated coefficients of the same form.
	logA0 := 1.11*math.Log10(distanceKM/100) + 0.00189*(distanceKM-100) + 3.0
	return math.Log10(peakMM) + logA0, nil
}
