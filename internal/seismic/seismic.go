// Package seismic defines the domain model for strong-motion records: the
// three-component accelerograph record, its traces, stations, and events,
// together with the standard engineering ground-motion metrics (peak values,
// Arias intensity, significant duration).
//
// Units follow the conventions of the legacy Salvadoran processing chain the
// paper describes: acceleration in cm/s² (gal), velocity in cm/s,
// displacement in cm, time in seconds.
package seismic

import (
	"fmt"
	"math"
	"strings"
)

// Component identifies one of the three orthogonal sensor axes recorded by
// a strong-motion accelerograph.
type Component int

const (
	// Longitudinal is the horizontal axis aligned with the instrument.
	Longitudinal Component = iota
	// Transversal is the horizontal axis perpendicular to Longitudinal.
	Transversal
	// Vertical is the up-down axis.
	Vertical
	numComponents
)

// Components lists the three axes in canonical order (L, T, V), the order in
// which the pipeline's per-component files are generated.
var Components = [3]Component{Longitudinal, Transversal, Vertical}

// Suffix returns the single-letter file-name suffix used in per-component
// file names such as "ST01l.v1" ("l", "t", or "v").
func (c Component) Suffix() string {
	switch c {
	case Longitudinal:
		return "l"
	case Transversal:
		return "t"
	case Vertical:
		return "v"
	default:
		return "?"
	}
}

// String returns the full component name.
func (c Component) String() string {
	switch c {
	case Longitudinal:
		return "longitudinal"
	case Transversal:
		return "transversal"
	case Vertical:
		return "vertical"
	default:
		return fmt.Sprintf("Component(%d)", int(c))
	}
}

// ParseComponent recognizes a component from its suffix letter or full name,
// case-insensitively.
func ParseComponent(s string) (Component, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "l", "longitudinal":
		return Longitudinal, nil
	case "t", "transversal":
		return Transversal, nil
	case "v", "vertical":
		return Vertical, nil
	default:
		return 0, fmt.Errorf("seismic: unknown component %q", s)
	}
}

// Trace is a uniformly sampled time series of one physical quantity on one
// component.
type Trace struct {
	DT   float64   // sample interval in seconds
	Data []float64 // samples
}

// Duration returns the time spanned by the trace in seconds.
func (t Trace) Duration() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return float64(len(t.Data)-1) * t.DT
}

// Validate checks that the trace has a positive sample interval, at least
// one sample, and no NaN or infinite values.
func (t Trace) Validate() error {
	if t.DT <= 0 {
		return fmt.Errorf("seismic: trace sample interval %g must be positive", t.DT)
	}
	if len(t.Data) == 0 {
		return fmt.Errorf("seismic: trace has no samples")
	}
	for i, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("seismic: trace sample %d is not finite (%g)", i, v)
		}
	}
	return nil
}

// Clone returns a deep copy of the trace.
func (t Trace) Clone() Trace {
	data := make([]float64, len(t.Data))
	copy(data, t.Data)
	return Trace{DT: t.DT, Data: data}
}

// Record is the full uncorrected or corrected recording of one station: an
// acceleration trace per component (velocity and displacement are derived
// downstream by integration).
type Record struct {
	Station string // station code, e.g. "SS01"
	Accel   [3]Trace
}

// Validate checks the station code and every component trace, and that all
// components share one sample interval and length (the instrument samples
// all three axes synchronously).
func (r Record) Validate() error {
	if r.Station == "" {
		return fmt.Errorf("seismic: record has empty station code")
	}
	for ci, tr := range r.Accel {
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("station %s component %s: %w", r.Station, Components[ci], err)
		}
	}
	dt, n := r.Accel[0].DT, len(r.Accel[0].Data)
	for ci := 1; ci < 3; ci++ {
		if r.Accel[ci].DT != dt || len(r.Accel[ci].Data) != n {
			return fmt.Errorf("seismic: station %s components disagree on sampling (%g s/%d samples vs %g s/%d samples)",
				r.Station, dt, n, r.Accel[ci].DT, len(r.Accel[ci].Data))
		}
	}
	return nil
}

// Samples returns the per-component sample count of the record.
func (r Record) Samples() int { return len(r.Accel[0].Data) }

// Event is a set of station records produced by one seismic event, the unit
// of work the pipeline processes.
type Event struct {
	Name    string // e.g. "2019-07-31"
	Records []Record
}

// TotalDataPoints returns the total number of per-component samples across
// all station records, the "data points" measure used in the paper's
// Table I and Figure 13.
func (e Event) TotalDataPoints() int {
	var total int
	for _, r := range e.Records {
		total += r.Samples()
	}
	return total
}

// Validate checks every record and that station codes are unique.
func (e Event) Validate() error {
	seen := make(map[string]bool, len(e.Records))
	for _, r := range e.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("event %s: %w", e.Name, err)
		}
		if seen[r.Station] {
			return fmt.Errorf("event %s: duplicate station %s", e.Name, r.Station)
		}
		seen[r.Station] = true
	}
	return nil
}
