// Package faults is a deterministic, seed-driven fault-injection layer for
// the pipeline's staged temp-folder protocol.  The paper's fully
// parallelized variant runs unmodifiable binaries concurrently in
// per-instance scratch folders with data staged in and out — exactly the
// kind of I/O-heavy, subprocess-shaped protocol that fails *partially* in
// production: a disk fills mid-copy, a child process is killed, one record
// out of 71 stages back a truncated product.  This package makes those
// failures reproducible so the recovery machinery (retry policies, record
// quarantine, cleanup accounting in internal/pipeline) can be exercised
// under the race detector with a fixed seed.
//
// Injection has two modes, composable in one Config:
//
//   - probabilistic: every eligible operation draws a deterministic hash of
//     (seed, site, attempt) and faults with probability Rate.  Random
//     faults target only record-scoped sites (Site.Record != ""), so chaos
//     degrades individual records rather than killing whole events;
//   - targeted: Rules match (stage, record, op) patterns and force a
//     specific fault kind, optionally a bounded number of times — the tool
//     for "poison exactly this record at exactly this step" tests.
//
// Determinism does not depend on goroutine scheduling: each site keeps its
// own attempt counter, and a record's operations execute sequentially, so
// the decision sequence per site is a pure function of the seed.
package faults

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindNone is the no-fault decision.
	KindNone Kind = iota
	// KindTransient is a one-shot I/O error: the operation fails without
	// side effects and succeeds if retried.
	KindTransient
	// KindPermanent is a persistent error that retrying cannot fix (a
	// corrupt record, a removed volume).
	KindPermanent
	// KindSlow delays the operation (a contended disk, a throttled NFS
	// mount) but lets it succeed.
	KindSlow
	// KindTruncate lets a write deliver only part of its payload before
	// failing, the ENOSPC shape: the destination exists but is short.
	KindTruncate
	// KindCrash simulates the mid-stage death of the executed program (a
	// killed child); meaningful only for "exec" operations.
	KindCrash
)

// kindNames indexes Kind for String and metric labels.
var kindNames = [...]string{"none", "transient", "permanent", "slow", "truncate", "crash"}

// String returns the lower-case fault-kind name.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Sentinel errors carried by injected faults.  ErrTransient, ErrTruncated,
// and ErrCrash are retryable; ErrPermanent is not.
var (
	ErrTransient = errors.New("faults: injected transient I/O error")
	ErrPermanent = errors.New("faults: injected permanent I/O error")
	ErrTruncated = errors.New("faults: injected truncated write")
	ErrCrash     = errors.New("faults: injected program crash")
)

// Site identifies one injectable operation: the pipeline stage tag ("def",
// "cor", "fou"; "" for event-scoped work), the record (station code; "" for
// event-scoped work), the operation kind ("mkdir", "read", "write", "move",
// "remove", "stat", "exec"), and the file's base name.  Sites never embed
// absolute paths, so the same seed reproduces the same faults regardless of
// where the work directory lives.
type Site struct {
	Stage  string
	Record string
	Op     string
	Path   string
}

func (s Site) String() string {
	return fmt.Sprintf("%s/%s/%s/%s", s.Stage, s.Record, s.Op, s.Path)
}

// Rule is a targeted injection: every site matching the non-empty fields
// suffers the given fault kind, at most Count times (0 = unlimited).
type Rule struct {
	Stage  string // "" matches any stage tag
	Record string // "" matches any record
	Op     string // "" matches any operation
	Kind   Kind
	Count  int
}

func (r Rule) matches(s Site) bool {
	return (r.Stage == "" || r.Stage == s.Stage) &&
		(r.Record == "" || r.Record == s.Record) &&
		(r.Op == "" || r.Op == s.Op)
}

// Config parameterizes an Injector.
type Config struct {
	// Seed drives every probabilistic decision; the same seed over the same
	// operation sequence injects the same faults.
	Seed int64
	// Rate is the per-operation fault probability in [0, 1] for
	// record-scoped sites.  0 disables probabilistic injection.
	Rate float64
	// Weights of the random fault kinds; all-zero selects the defaults
	// (60% transient, 15% slow, 10% truncate, 10% crash, 5% permanent).
	PTransient, PSlow, PTruncate, PCrash, PPermanent float64
	// SlowDelay is the latency added by KindSlow faults; 0 selects 2ms.
	SlowDelay time.Duration
	// Rules are targeted injections, checked before the probabilistic draw.
	Rules []Rule
}

// withDefaults resolves the zero weights and delay.
func (c Config) withDefaults() Config {
	if c.PTransient == 0 && c.PSlow == 0 && c.PTruncate == 0 && c.PCrash == 0 && c.PPermanent == 0 {
		c.PTransient, c.PSlow, c.PTruncate, c.PCrash, c.PPermanent = 0.60, 0.15, 0.10, 0.10, 0.05
	}
	if c.SlowDelay == 0 {
		c.SlowDelay = 2 * time.Millisecond
	}
	return c
}

// Injector makes deterministic fault decisions.  All methods are safe for
// concurrent use; a nil *Injector never injects.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[Site]uint64
	fired    []int // per-rule injection counts
	byKind   map[Kind]uint64
	injected uint64
}

// NewInjector builds an injector from cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{
		cfg:      cfg.withDefaults(),
		attempts: make(map[Site]uint64),
		fired:    make([]int, len(cfg.Rules)),
		byKind:   make(map[Kind]uint64),
	}
}

// Decide returns the fault (or KindNone) for the next attempt at site.
// Calling Decide again for the same site advances its attempt counter, so a
// retried operation re-rolls rather than repeating its last decision.
func (in *Injector) Decide(site Site) Kind {
	if in == nil {
		return KindNone
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.attempts[site]
	in.attempts[site] = n + 1

	for i, r := range in.cfg.Rules {
		if !r.matches(site) {
			continue
		}
		if r.Count > 0 && in.fired[i] >= r.Count {
			continue
		}
		in.fired[i]++
		return in.record(normalize(r.Kind, site.Op))
	}
	// Probabilistic chaos targets only record-scoped sites: event-scoped
	// operations (the shared executable image, abort-path cleanup) degrade
	// a whole event, which is the job of targeted rules, not random noise.
	if in.cfg.Rate <= 0 || site.Record == "" {
		return KindNone
	}
	if draw(in.cfg.Seed, site, n, 0) >= in.cfg.Rate {
		return KindNone
	}
	return in.record(normalize(in.pickKind(site, n), site.Op))
}

// record tallies an injected fault.
func (in *Injector) record(k Kind) Kind {
	if k != KindNone {
		in.injected++
		in.byKind[k]++
	}
	return k
}

// pickKind selects the random fault kind by the configured weights.
func (in *Injector) pickKind(site Site, attempt uint64) Kind {
	c := in.cfg
	total := c.PTransient + c.PSlow + c.PTruncate + c.PCrash + c.PPermanent
	u := draw(c.Seed, site, attempt, 1) * total
	switch {
	case u < c.PTransient:
		return KindTransient
	case u < c.PTransient+c.PSlow:
		return KindSlow
	case u < c.PTransient+c.PSlow+c.PTruncate:
		return KindTruncate
	case u < c.PTransient+c.PSlow+c.PTruncate+c.PCrash:
		return KindCrash
	default:
		return KindPermanent
	}
}

// normalize downgrades fault kinds that make no sense for the operation:
// only writes can truncate, only executions can crash.
func normalize(k Kind, op string) Kind {
	switch k {
	case KindTruncate:
		if op != "write" {
			return KindTransient
		}
	case KindCrash:
		if op != "exec" {
			return KindTransient
		}
	}
	return k
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected
}

// Counts returns the injected-fault tally by kind.
func (in *Injector) Counts() map[Kind]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]uint64, len(in.byKind))
	for k, v := range in.byKind {
		out[k] = v
	}
	return out
}

// draw hashes (seed, site, attempt, salt) to a uniform float64 in [0, 1).
func draw(seed int64, site Site, attempt uint64, salt byte) float64 {
	h := fnv.New64a()
	var b [8]byte
	putUint64(&b, uint64(seed))
	h.Write(b[:])
	h.Write([]byte(site.Stage))
	h.Write([]byte{0})
	h.Write([]byte(site.Record))
	h.Write([]byte{0})
	h.Write([]byte(site.Op))
	h.Write([]byte{0})
	h.Write([]byte(site.Path))
	h.Write([]byte{0, salt})
	putUint64(&b, attempt)
	h.Write(b[:])
	// splitmix64 finalizer spreads FNV's low-entropy tail bits.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

func putUint64(b *[8]byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
