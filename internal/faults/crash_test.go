package faults

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"syscall"
	"testing"
)

// crashChildEnv gates the sacrificial subprocess of TestCrashKillsAtArmedPoint.
const crashChildEnv = "ACCELPROC_CRASH_TEST_CHILD"

// TestCrashUnarmedIsNoOp pins the production contract: without CrashEnv in
// the environment, Crash never kills, whatever point it is given.
func TestCrashUnarmedIsNoOp(t *testing.T) {
	if os.Getenv(CrashEnv) != "" {
		t.Skip("CrashEnv set in the outer environment")
	}
	for _, p := range CrashPoints {
		Crash(p) // surviving this loop is the assertion
	}
	Crash("no-such-point")
}

// TestCrashKillsAtArmedPoint re-execs the test binary with CrashEnv armed at
// the second hit of one point: the child must survive the first hit, die by
// SIGKILL on the second, and never reach the code after it.
func TestCrashKillsAtArmedPoint(t *testing.T) {
	if os.Getenv(crashChildEnv) == "1" {
		Crash(CrashStageMove)  // hit 1: survives
		Crash(CrashStageMoved) // different point: ignored
		Crash(CrashStageMove)  // hit 2: SIGKILL, no deferred funcs, no flushes
		t.Log("SURVIVED-PAST-CRASH-POINT")
		return
	}

	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashKillsAtArmedPoint$", "-test.v")
	cmd.Env = append(os.Environ(),
		crashChildEnv+"=1",
		CrashEnv+"="+CrashStageMove+":2",
	)
	out, err := cmd.CombinedOutput()
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("child was not killed (err=%v):\n%s", err, out)
	}
	ws, ok := ee.Sys().(syscall.WaitStatus)
	killed := (ok && ws.Signaled() && ws.Signal() == syscall.SIGKILL) || ee.ExitCode() == 137
	if !killed {
		t.Fatalf("child exited %v, want SIGKILL:\n%s", err, out)
	}
	if bytes.Contains(out, []byte("SURVIVED-PAST-CRASH-POINT")) {
		t.Fatalf("child ran past the armed crash point:\n%s", out)
	}
}
