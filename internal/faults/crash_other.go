//go:build !unix

package faults

import "os"

// killSelf approximates SIGKILL on platforms without self-signaling: exit
// immediately with the conventional killed status, skipping all deferred
// functions and flushes.
func killSelf() { os.Exit(137) }
