package faults

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// decisions replays seq through a fresh injector and returns the kinds.
func decisions(cfg Config, seq []Site) []Kind {
	in := NewInjector(cfg)
	out := make([]Kind, len(seq))
	for i, s := range seq {
		out[i] = in.Decide(s)
	}
	return out
}

func sampleSites() []Site {
	var seq []Site
	for _, st := range []string{"SS01", "SS02", "SS03"} {
		for _, op := range []string{"mkdir", "move", "write", "exec"} {
			for a := 0; a < 4; a++ {
				seq = append(seq, Site{Stage: "def", Record: st, Op: op, Path: st + ".v1"})
			}
		}
	}
	return seq
}

func TestInjectorIsDeterministicBySeed(t *testing.T) {
	seq := sampleSites()
	cfg := Config{Seed: 42, Rate: 0.5}
	a := decisions(cfg, seq)
	b := decisions(cfg, seq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs between identical injectors: %v vs %v", i, a[i], b[i])
		}
	}
	c := decisions(Config{Seed: 43, Rate: 0.5}, seq)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical decision sequences")
	}
}

func TestInjectorRateZeroNeverFires(t *testing.T) {
	for _, k := range decisions(Config{Seed: 7, Rate: 0}, sampleSites()) {
		if k != KindNone {
			t.Fatalf("rate 0 injected %v", k)
		}
	}
}

func TestInjectorRateIsApproximatelyHonored(t *testing.T) {
	in := NewInjector(Config{Seed: 3, Rate: 0.2})
	n := 4000
	for i := 0; i < n; i++ {
		in.Decide(Site{Stage: "def", Record: "SS01", Op: "move", Path: "f"})
	}
	got := float64(in.Injected()) / float64(n)
	if got < 0.15 || got > 0.25 {
		t.Errorf("empirical fault rate %.3f, want ~0.2", got)
	}
}

func TestInjectorSparesEventScopedSites(t *testing.T) {
	in := NewInjector(Config{Seed: 5, Rate: 1.0})
	for i := 0; i < 100; i++ {
		if k := in.Decide(Site{Stage: "def", Op: "write", Path: "_filter.exe"}); k != KindNone {
			t.Fatalf("record-less site injected %v at rate 1.0", k)
		}
	}
}

func TestRulesTargetAndCount(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Rules: []Rule{
		{Stage: "cor", Record: "SS02", Op: "move", Kind: KindPermanent, Count: 2},
	}})
	hit := Site{Stage: "cor", Record: "SS02", Op: "move", Path: "SS02L.v2"}
	miss := []Site{
		{Stage: "def", Record: "SS02", Op: "move", Path: "x"},
		{Stage: "cor", Record: "SS01", Op: "move", Path: "x"},
		{Stage: "cor", Record: "SS02", Op: "write", Path: "x"},
	}
	if k := in.Decide(hit); k != KindPermanent {
		t.Errorf("first match = %v, want permanent", k)
	}
	for _, s := range miss {
		if k := in.Decide(s); k != KindNone {
			t.Errorf("non-matching site %v injected %v", s, k)
		}
	}
	if k := in.Decide(hit); k != KindPermanent {
		t.Errorf("second match = %v, want permanent", k)
	}
	if k := in.Decide(hit); k != KindNone {
		t.Errorf("rule fired beyond its count: %v", k)
	}
	if got := in.Injected(); got != 2 {
		t.Errorf("Injected() = %d, want 2", got)
	}
	if c := in.Counts(); c[KindPermanent] != 2 {
		t.Errorf("Counts()[permanent] = %d, want 2", c[KindPermanent])
	}
}

func TestNormalizeDowngradesImpossibleKinds(t *testing.T) {
	in := NewInjector(Config{Seed: 1, Rules: []Rule{
		{Op: "move", Kind: KindTruncate},
		{Op: "read", Kind: KindCrash},
	}})
	if k := in.Decide(Site{Record: "SS01", Op: "move", Path: "x"}); k != KindTransient {
		t.Errorf("truncate on move = %v, want transient", k)
	}
	if k := in.Decide(Site{Record: "SS01", Op: "read", Path: "x"}); k != KindTransient {
		t.Errorf("crash on read = %v, want transient", k)
	}
}

func TestNilInjectorAndChaosAreSafe(t *testing.T) {
	var in *Injector
	if k := in.Decide(Site{Record: "SS01", Op: "move"}); k != KindNone {
		t.Errorf("nil injector decided %v", k)
	}
	if in.Injected() != 0 || in.Counts() != nil {
		t.Error("nil injector reported activity")
	}
	var c *Chaos
	if c.Injected() != 0 {
		t.Error("nil chaos reported injections")
	}
	if err := c.Exec("def", "SS01"); err != nil {
		t.Errorf("nil chaos exec failed: %v", err)
	}
	if _, ok := c.At("def", "SS01").(OS); !ok {
		t.Error("nil chaos did not hand out the plain OS filesystem")
	}
}

func TestChaosFSInjectsSentinels(t *testing.T) {
	dir := t.TempDir()
	mk := func(rules ...Rule) FS {
		return NewChaos(NewInjector(Config{Seed: 1, Rules: rules}), OS{}, nil).At("def", "SS01")
	}

	f := mk(Rule{Op: "read", Kind: KindTransient, Count: 1})
	if _, err := f.ReadFile(filepath.Join(dir, "absent")); !errors.Is(err, ErrTransient) {
		t.Errorf("read fault = %v, want ErrTransient", err)
	}
	// The injected failure is pre-op: the next attempt reaches the real
	// filesystem (and fails with its genuine not-exist error).
	if _, err := f.ReadFile(filepath.Join(dir, "absent")); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("second read = %v, want the real fs.ErrNotExist", err)
	}

	f = mk(Rule{Op: "exec", Kind: KindCrash})
	c := NewChaos(NewInjector(Config{Seed: 1, Rules: []Rule{{Op: "exec", Kind: KindCrash}}}), OS{}, nil)
	if err := c.Exec("def", "SS01"); !errors.Is(err, ErrCrash) {
		t.Errorf("exec fault = %v, want ErrCrash", err)
	}

	f = mk(Rule{Op: "move", Kind: KindPermanent})
	if err := f.Rename(filepath.Join(dir, "a"), filepath.Join(dir, "b")); !errors.Is(err, ErrPermanent) {
		t.Errorf("move fault = %v, want ErrPermanent", err)
	}
}

func TestChaosWriteTruncates(t *testing.T) {
	dir := t.TempDir()
	f := NewChaos(NewInjector(Config{Seed: 1, Rules: []Rule{
		{Op: "write", Kind: KindTruncate, Count: 1},
	}}), OS{}, nil).At("def", "SS01")
	payload := make([]byte, 4*truncatePoint)
	for i := range payload {
		payload[i] = byte(i)
	}
	path := filepath.Join(dir, "SS01L.v2")
	err := f.WriteFile(path, payload, 0o644)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("truncating write = %v, want ErrTruncated", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != truncatePoint {
		t.Errorf("truncated file has %d bytes, want %d", len(got), truncatePoint)
	}
	// The retry overwrites the partial file completely.
	if err := f.WriteFile(path, payload, 0o644); err != nil {
		t.Fatalf("retried write failed: %v", err)
	}
	got, rerr = os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if len(got) != len(payload) {
		t.Errorf("retried file has %d bytes, want %d", len(got), len(payload))
	}
}

func TestChaosSlowDelaysViaSleeper(t *testing.T) {
	var slept time.Duration
	sleep := func(d time.Duration) error { slept += d; return nil }
	c := NewChaos(NewInjector(Config{Seed: 1, SlowDelay: 7 * time.Millisecond, Rules: []Rule{
		{Op: "stat", Kind: KindSlow, Count: 1},
	}}), OS{}, sleep)
	dir := t.TempDir()
	if _, err := c.At("def", "SS01").Stat(dir); err != nil {
		t.Fatalf("slow stat failed: %v", err)
	}
	if slept != 7*time.Millisecond {
		t.Errorf("slept %v, want 7ms", slept)
	}
}

func TestCopyFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := CopyFile(OS{}, dst, src); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "payload" {
		t.Errorf("copied %q, %v", got, err)
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindNone: "none", KindTransient: "transient", KindPermanent: "permanent",
		KindSlow: "slow", KindTruncate: "truncate", KindCrash: "crash",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
