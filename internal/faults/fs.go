package faults

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"accelproc/internal/storage"
)

// FS is the file-operation surface the pipeline's staging protocol runs on —
// an alias for the storage plane's Workspace, so any backend (fs, mem) can
// sit under the chaos decorator.  The production implementation is
// storage.OS; chaos runs interpose a fault-deciding wrapper obtained from
// Chaos.At.
type FS = storage.Workspace

// OS is the passthrough FS backed by the real filesystem (an alias for the
// storage plane's disk backend).
type OS = storage.OS

// truncatePoint is how many bytes of a payload a KindTruncate fault lets
// through before failing: enough that the destination file exists and looks
// plausible, short enough that any real product is visibly cut.
const truncatePoint = 512

// Chaos binds an Injector to a base FS and hands out stage/record-scoped
// views whose every operation consults the injector first.  A nil *Chaos
// yields passthrough behavior everywhere.
type Chaos struct {
	inj   *Injector
	base  FS
	sleep func(time.Duration) error
	delay time.Duration
}

// NewChaos wraps base with injector-driven faults.  sleep implements
// KindSlow delays and may return early with an error on cancellation; nil
// selects time.Sleep.
func NewChaos(inj *Injector, base FS, sleep func(time.Duration) error) *Chaos {
	if base == nil {
		base = storage.Disk()
	}
	if sleep == nil {
		sleep = func(d time.Duration) error { time.Sleep(d); return nil }
	}
	delay := inj.cfgDelay()
	return &Chaos{inj: inj, base: base, sleep: sleep, delay: delay}
}

// cfgDelay exposes the resolved slow-op delay (nil-safe).
func (in *Injector) cfgDelay() time.Duration {
	if in == nil {
		return 0
	}
	return in.cfg.SlowDelay
}

// Injected reports the total faults injected so far (nil-safe).
func (c *Chaos) Injected() uint64 {
	if c == nil {
		return 0
	}
	return c.inj.Injected()
}

// At returns an FS whose operations are attributed to (stage, record).
// Event-scoped work passes "" for both.  A nil *Chaos returns the plain
// disk workspace.
func (c *Chaos) At(stage, record string) FS {
	if c == nil {
		return storage.Disk()
	}
	return chaosFS{c: c, stage: stage, record: record}
}

// Exec asks the injector whether the simulated binary execution for
// (stage, record) should fail.  KindCrash and KindTransient surface as
// their sentinel errors, KindPermanent as ErrPermanent, KindSlow delays and
// then succeeds.  A nil *Chaos never fails.
func (c *Chaos) Exec(stage, record string) error {
	if c == nil {
		return nil
	}
	return c.fault(Site{Stage: stage, Record: record, Op: "exec", Path: record})
}

// fault turns the injector's decision for site into an error (or a delay,
// or nothing).  KindTruncate is handled by the write path, not here.
func (c *Chaos) fault(site Site) error {
	switch c.inj.Decide(site) {
	case KindTransient, KindTruncate:
		return &injectedError{site: site, err: ErrTransient}
	case KindPermanent:
		return &injectedError{site: site, err: ErrPermanent}
	case KindCrash:
		return &injectedError{site: site, err: ErrCrash}
	case KindSlow:
		return c.sleep(c.delay)
	}
	return nil
}

// injectedError ties a sentinel fault to the site it hit.
type injectedError struct {
	site Site
	err  error
}

func (e *injectedError) Error() string { return e.err.Error() + " at " + e.site.String() }
func (e *injectedError) Unwrap() error { return e.err }

// chaosFS consults the injector before delegating to the base FS.  Faults
// are injected *before* the underlying operation runs (the op is not
// performed), so op-granularity retries stay idempotent; KindTruncate is
// the one exception — WriteFile delivers a prefix and then fails, modeling
// a partial write that a retry must overwrite.
//
// Only the seven staging operations are fault sites.  The Workspace
// extensions (Open, List, Generation, Materialize, ResidentBytes) pass
// through untouched, and Link always refuses so chaos runs take the real
// read+write copy path the injector can see — keeping the set of decisions
// per seed identical to the pre-storage-plane protocol.
type chaosFS struct {
	c             *Chaos
	stage, record string
}

func (f chaosFS) site(op, path string) Site {
	return Site{Stage: f.stage, Record: f.record, Op: op, Path: filepath.Base(path)}
}

func (f chaosFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.c.fault(f.site("mkdir", path)); err != nil {
		return err
	}
	return f.c.base.MkdirAll(path, perm)
}

func (f chaosFS) Rename(oldpath, newpath string) error {
	if err := f.c.fault(f.site("move", oldpath)); err != nil {
		return err
	}
	return f.c.base.Rename(oldpath, newpath)
}

func (f chaosFS) Remove(path string) error {
	if err := f.c.fault(f.site("remove", path)); err != nil {
		return err
	}
	return f.c.base.Remove(path)
}

func (f chaosFS) RemoveAll(path string) error {
	if err := f.c.fault(f.site("remove", path)); err != nil {
		return err
	}
	return f.c.base.RemoveAll(path)
}

func (f chaosFS) Stat(path string) (fs.FileInfo, error) {
	if err := f.c.fault(f.site("stat", path)); err != nil {
		return nil, err
	}
	return f.c.base.Stat(path)
}

func (f chaosFS) ReadFile(path string) ([]byte, error) {
	if err := f.c.fault(f.site("read", path)); err != nil {
		return nil, err
	}
	return f.c.base.ReadFile(path)
}

func (f chaosFS) WriteFile(path string, data []byte, perm os.FileMode) error {
	site := f.site("write", path)
	switch f.c.inj.Decide(site) {
	case KindTransient:
		return &injectedError{site: site, err: ErrTransient}
	case KindPermanent:
		return &injectedError{site: site, err: ErrPermanent}
	case KindCrash:
		return &injectedError{site: site, err: ErrCrash}
	case KindSlow:
		if err := f.c.sleep(f.c.delay); err != nil {
			return err
		}
	case KindTruncate:
		n := truncatePoint
		if n > len(data) {
			n = len(data) / 2
		}
		if err := f.c.base.WriteFile(path, data[:n], perm); err != nil {
			return err
		}
		return &injectedError{site: site, err: ErrTruncated}
	}
	return f.c.base.WriteFile(path, data, perm)
}

// Append passes through untouched, like the other Workspace extensions:
// the run journal is recovery machinery, not part of the staged protocol,
// and faulting it would perturb the per-seed decision sequences the chaos
// suite pins.  Chaos runs journal; only the seven staging ops are faulted.
func (f chaosFS) Append(path string, data []byte, perm os.FileMode) error {
	return f.c.base.Append(path, data, perm)
}

// Link always refuses under chaos: the copy fallback issues a read+write
// pair the injector can fault, whereas a hardlink would be an invisible
// zero-copy shortcut that changed the decision sequence per seed.
func (f chaosFS) Link(oldpath, newpath string) error { return storage.ErrLinkUnsupported }

func (f chaosFS) Open(path string) (io.ReadCloser, error) { return f.c.base.Open(path) }

// Create passes through untouched: streaming mode is rejected under chaos
// (see pipeline.Options validation), so streamed writes are never fault
// sites and the per-seed decision sequences stay pinned.
func (f chaosFS) Create(path string) (io.WriteCloser, error) { return f.c.base.Create(path) }

func (f chaosFS) List(dir string) ([]fs.DirEntry, error) { return f.c.base.List(dir) }

func (f chaosFS) Generation(path string) (any, int64, bool) { return f.c.base.Generation(path) }

func (f chaosFS) Materialize(dir string) error { return f.c.base.Materialize(dir) }

func (f chaosFS) ResidentBytes() (current, peak int64) { return f.c.base.ResidentBytes() }

// CopyFile copies src to dst through fsys, so chaos runs can fault either
// side of the copy.  It exists here because io.Copy-style streaming through
// an interposed FS reduces to read-then-write for the pipeline's small
// products.
func CopyFile(fsys FS, dst, src string) error {
	data, err := fsys.ReadFile(src)
	if err != nil {
		return err
	}
	return fsys.WriteFile(dst, data, 0o644)
}

// Interface satisfaction check.
var _ FS = chaosFS{}
