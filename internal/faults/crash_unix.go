//go:build unix

package faults

import (
	"os"
	"syscall"
)

// killSelf delivers SIGKILL to the current process: no deferred functions,
// no atexit, no buffered writes — the closest a process can come to being
// unplugged.  The Exit fallback only runs if the signal could not be sent.
func killSelf() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}
