package faults

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Crash-point injection: where the Injector simulates errors an operation
// can *return*, crash points simulate the one failure no error path covers —
// the process dying (kill -9, OOM, power loss) between two instructions.
// Durability-sensitive code brackets its commit points with Crash calls; a
// test harness re-execs the binary with CrashEnv armed, lets the child
// SIGKILL itself at the chosen point, and then verifies that recovery
// (journal replay, cache sweep, resume) restores a consistent state.
//
// Unarmed (the production case, and every process without the environment
// variable), Crash is a single atomic load — cheap enough to leave in the
// hot staging paths.

// CrashEnv is the environment variable arming crash-point injection in a
// process: its value is "<point>[:<nth>]", naming one of the crash points
// below and the 1-based hit at which the process kills itself (default 1).
// The kill is SIGKILL — no deferred functions, no flushes — so the process
// dies exactly as hard as the failure being modeled.
const CrashEnv = "ACCELPROC_CRASHPOINT"

// The instrumented crash points: immediately before and immediately after
// each durability boundary, so the crash matrix covers both "the record was
// lost" and "the record survived but nothing after it ran".
const (
	// CrashJournalAppend / CrashJournalAppended bracket one write-ahead run
	// journal append (internal/pipeline).
	CrashJournalAppend   = "journal-append"
	CrashJournalAppended = "journal-appended"
	// CrashManifestPut / CrashManifestPutDone bracket the manifest write
	// that commits one action-cache Put (internal/artifact); a crash between
	// blob writes and the manifest leaves sweepable orphan blobs.
	CrashManifestPut     = "manifest-put"
	CrashManifestPutDone = "manifest-put-done"
	// CrashStageMove / CrashStageMoved bracket one stage-move rename of the
	// temp-folder protocol (internal/pipeline).
	CrashStageMove  = "stage-move"
	CrashStageMoved = "stage-moved"
	// CrashStreamNode fires inside a streamed per-record node of the
	// streaming execution plane (internal/pipeline): after upstream chunks
	// have been consumed and scratch spills written, but before the node's
	// durable output commits — so the crash matrix can prove resume
	// re-executes streamed work instead of trusting half-written artifacts.
	CrashStreamNode = "stream-node"
)

// CrashPoints lists every instrumented point, for harnesses that iterate
// the whole crash matrix.
var CrashPoints = []string{
	CrashJournalAppend, CrashJournalAppended,
	CrashManifestPut, CrashManifestPutDone,
	CrashStageMove, CrashStageMoved,
	CrashStreamNode,
}

var (
	crashOnce  sync.Once
	crashPoint atomic.Pointer[string]
	crashNth   int64
	crashHits  atomic.Int64
)

// armCrash parses CrashEnv once per process.
func armCrash() {
	v := os.Getenv(CrashEnv)
	if v == "" {
		return
	}
	point, nthStr, ok := strings.Cut(v, ":")
	nth := int64(1)
	if ok {
		n, err := strconv.ParseInt(nthStr, 10, 64)
		if err != nil || n < 1 {
			return // malformed arming disarms rather than killing at random
		}
		nth = n
	}
	if point == "" {
		return
	}
	crashNth = nth
	crashPoint.Store(&point)
}

// Crash kills the process with SIGKILL if crash-point injection is armed
// for the named point and this is its nth hit.  Unarmed it is a no-op.
func Crash(point string) {
	crashOnce.Do(armCrash)
	p := crashPoint.Load()
	if p == nil || *p != point {
		return
	}
	if crashHits.Add(1) == crashNth {
		killSelf()
	}
}
