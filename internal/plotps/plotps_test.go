package plotps

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

func linSeries(n int) Series {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.01
		y[i] = math.Sin(float64(i) / 9)
	}
	return Series{Label: "sig", X: x, Y: y}
}

func TestWritePageProducesValidPostScript(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "test doc", []Plot{
		{Axes: Axes{Title: "panel 1", XLabel: "t", YLabel: "v"}, Series: []Series{linSeries(100)}},
		{Axes: Axes{Title: "panel 2", XLabel: "t", YLabel: "v"}, Series: []Series{linSeries(50)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"%!PS-Adobe-3.0", "%%Title: test doc", "%%Page: 1 1", "showpage", "%%EOF",
		"(panel 1) show", "(panel 2) show", " L\n", " M\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Balanced stroke commands: every polyline ends in S.
	if !strings.Contains(out, "S\n") {
		t.Error("no strokes emitted")
	}
}

func TestWritePageNoPanels(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePage(&buf, "x", nil); err == nil {
		t.Error("zero panels accepted")
	}
}

func TestWritePageEmptySeriesDrawsFrameOnly(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "empty", []Plot{{Axes: Axes{Title: "none"}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(none) show") {
		t.Error("frame/title not drawn for empty panel")
	}
}

func TestWritePageRejectsMismatchedSeries(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "bad", []Plot{{
		Axes:   Axes{Title: "bad"},
		Series: []Series{{Label: "b", X: []float64{1, 2}, Y: []float64{1}}},
	}})
	if err == nil {
		t.Error("mismatched series lengths accepted")
	}
}

func TestLogAxisSkipsNonPositive(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "log", []Plot{{
		Axes: Axes{Title: "log", XLog: true, YLog: true},
		Series: []Series{{
			Label: "s",
			X:     []float64{0.1, 1, 10, -5, 100},
			Y:     []float64{1, 0, 10, 5, 100}, // zero/negative y dropped
		}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "showpage") {
		t.Error("page not completed")
	}
}

func TestMarkersDrawnAndLabelled(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "m", []Plot{{
		Axes:    Axes{Title: "with markers"},
		Series:  []Series{linSeries(10)},
		Markers: []Marker{{Label: "FPL", X: 0.05}, {Label: "FSL", X: 0.02}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(FPL) show") || !strings.Contains(out, "(FSL) show") {
		t.Error("marker labels missing")
	}
	if !strings.Contains(out, "setdash") {
		t.Error("markers not dashed")
	}
}

func TestPSEscape(t *testing.T) {
	if got := psEscape(`a(b)c\d`); got != `a\(b\)c\\d` {
		t.Errorf("psEscape = %q", got)
	}
}

func TestTicksLinear(t *testing.T) {
	got := ticks(axisRange{lo: 0, hi: 10})
	if len(got) < 4 || len(got) > 12 {
		t.Errorf("tick count %d for [0,10]: %v", len(got), got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("ticks not increasing: %v", got)
		}
	}
}

func TestTicksLog(t *testing.T) {
	got := ticks(axisRange{lo: 0.02, hi: 20, log: true})
	want := []float64{0.01, 0.1, 1, 10, 100}
	if len(got) != len(want) {
		t.Fatalf("log ticks = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12*want[i] {
			t.Errorf("tick %d = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestFormatTick(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		1:      "1",
		2.5:    "2.5",
		0.25:   "0.25",
		1e-5:   "1e-05",
		123456: "1e+05",
	}
	for in, want := range cases {
		if got := formatTick(in); got != want {
			t.Errorf("formatTick(%g) = %q, want %q", in, got, want)
		}
	}
}

func sampleV2() smformat.V2 {
	n := 500
	v := smformat.V2{
		Station:   "SS01",
		Component: seismic.Longitudinal,
		DT:        0.01,
		Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		Accel:     make([]float64, n),
		Vel:       make([]float64, n),
		Disp:      make([]float64, n),
	}
	for i := 0; i < n; i++ {
		ti := float64(i) * v.DT
		v.Accel[i] = 50 * math.Sin(2*math.Pi*3*ti)
		v.Vel[i] = 3 * math.Cos(2*math.Pi*3*ti)
		v.Disp[i] = 0.2 * math.Sin(2*math.Pi*3*ti)
	}
	return v
}

func TestAccelPage(t *testing.T) {
	var buf bytes.Buffer
	if err := AccelPage(&buf, sampleV2()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SS01l acceleration", "SS01l velocity", "SS01l displacement", "showpage"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if err := AccelPage(&buf, smformat.V2{}); err == nil {
		t.Error("invalid V2 accepted")
	}
}

func TestFourierPage(t *testing.T) {
	n := 257
	f := smformat.Fourier{
		Station: "SS01", Component: seismic.Vertical, DF: 0.05,
		Accel: make([]float64, n), Vel: make([]float64, n), Disp: make([]float64, n),
	}
	for k := 1; k < n; k++ {
		fk := float64(k) * f.DF
		f.Accel[k] = fk
		f.Vel[k] = fk + 0.04/fk
		f.Disp[k] = 1 / fk
	}
	var buf bytes.Buffer
	spec := dsp.BandPassSpec{FSL: 0.1, FPL: 0.2, FPH: 23, FSH: 25}
	if err := FourierPage(&buf, f, spec); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fourier velocity", "(FPL) show", "(FSL) show"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if err := FourierPage(&buf, smformat.Fourier{}, spec); err == nil {
		t.Error("invalid Fourier accepted")
	}
}

func TestResponsePage(t *testing.T) {
	n := 31
	r := smformat.Response{
		Station: "SS01", Component: seismic.Transversal, Damping: 0.05,
		Periods: make([]float64, n), SA: make([]float64, n), SV: make([]float64, n), SD: make([]float64, n),
	}
	for i := 0; i < n; i++ {
		r.Periods[i] = 0.05 * math.Pow(1.2, float64(i))
		r.SA[i] = 100 / (1 + r.Periods[i])
		r.SV[i] = 10 * r.Periods[i]
		r.SD[i] = r.Periods[i] * r.Periods[i]
	}
	var buf bytes.Buffer
	if err := ResponsePage(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"response spectra", "(SA) show", "(SV) show", "(SD) show"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if err := ResponsePage(&buf, smformat.Response{}); err == nil {
		t.Error("invalid Response accepted")
	}
}

// validatePS performs a structural sanity check of emitted PostScript:
// balanced parentheses and at least one stroked path per panel.
func validatePS(t *testing.T, ps string) {
	t.Helper()
	depth := 0
	escaped := false
	for i := 0; i < len(ps); i++ {
		c := ps[i]
		if escaped {
			escaped = false
			continue
		}
		switch c {
		case '\\':
			escaped = true
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				t.Fatalf("unbalanced ')' at byte %d", i)
			}
		}
	}
	if depth != 0 {
		t.Fatalf("unbalanced '(' depth %d at end", depth)
	}
	if !strings.HasPrefix(ps, "%!PS-Adobe-3.0") {
		t.Error("missing PS header")
	}
	if !strings.HasSuffix(strings.TrimSpace(ps), "%%EOF") {
		t.Error("missing EOF trailer")
	}
}

func TestEmittedPostScriptIsStructurallyValid(t *testing.T) {
	var buf bytes.Buffer
	err := WritePage(&buf, "structural (test) with \\ specials", []Plot{
		{Axes: Axes{Title: "panel (one)"}, Series: []Series{linSeries(64)}},
		{Axes: Axes{Title: "log", XLog: true, YLog: true}, Series: []Series{{
			Label: "s", X: []float64{0.1, 1, 10}, Y: []float64{1, 2, 3},
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	validatePS(t, buf.String())
}

func BenchmarkAccelPage(b *testing.B) {
	v := sampleV2()
	var buf bytes.Buffer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := AccelPage(&buf, v); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}
