package plotps

import (
	"fmt"
	"io"

	"accelproc/internal/dsp"
	"accelproc/internal/smformat"
)

// AccelPage renders the [station].ps product of process #15: corrected
// acceleration, velocity, and displacement time histories of one component,
// stacked in three panels (the paper's Figure 2).
func AccelPage(w io.Writer, v smformat.V2) error {
	if err := v.Validate(); err != nil {
		return err
	}
	t := make([]float64, len(v.Accel))
	for i := range t {
		t[i] = float64(i) * v.DT
	}
	name := v.Station + v.Component.Suffix()
	panels := []Plot{
		{
			Axes:   Axes{Title: name + " acceleration", XLabel: "Time (s)", YLabel: "cm/s^2"},
			Series: []Series{{Label: "acc", X: t, Y: v.Accel}},
		},
		{
			Axes:   Axes{Title: name + " velocity", XLabel: "Time (s)", YLabel: "cm/s"},
			Series: []Series{{Label: "vel", X: t, Y: v.Vel}},
		},
		{
			Axes:   Axes{Title: name + " displacement", XLabel: "Time (s)", YLabel: "cm"},
			Series: []Series{{Label: "disp", X: t, Y: v.Disp}},
		},
	}
	return WritePage(w, "Accelerogram "+name, panels)
}

// FourierPage renders the [station]f.ps product of process #9: the Fourier
// amplitude spectra of one component on log-log period axes, with the
// picked FPL and FSL corners marked (the paper's Figure 3).
func FourierPage(w io.Writer, f smformat.Fourier, picked dsp.BandPassSpec) error {
	if err := f.Validate(); err != nil {
		return err
	}
	// Convert the frequency grid to periods, skipping DC.
	n := len(f.Accel)
	periods := make([]float64, 0, n-1)
	acc := make([]float64, 0, n-1)
	vel := make([]float64, 0, n-1)
	disp := make([]float64, 0, n-1)
	for k := n - 1; k >= 1; k-- {
		periods = append(periods, 1/f.Frequency(k))
		acc = append(acc, f.Accel[k])
		vel = append(vel, f.Vel[k])
		disp = append(disp, f.Disp[k])
	}
	var markers []Marker
	if picked.FPL > 0 {
		markers = append(markers, Marker{Label: "FPL", X: 1 / picked.FPL})
	}
	if picked.FSL > 0 {
		markers = append(markers, Marker{Label: "FSL", X: 1 / picked.FSL})
	}
	name := f.Station + f.Component.Suffix()
	panels := []Plot{
		{
			Axes:   Axes{Title: name + " Fourier acceleration", XLabel: "Period (s)", YLabel: "gal*s", XLog: true, YLog: true},
			Series: []Series{{Label: "acc", X: periods, Y: acc}},
		},
		{
			Axes:    Axes{Title: name + " Fourier velocity", XLabel: "Period (s)", YLabel: "cm", XLog: true, YLog: true},
			Series:  []Series{{Label: "vel", X: periods, Y: vel}},
			Markers: markers,
		},
		{
			Axes:   Axes{Title: name + " Fourier displacement", XLabel: "Period (s)", YLabel: "cm*s", XLog: true, YLog: true},
			Series: []Series{{Label: "disp", X: periods, Y: disp}},
		},
	}
	return WritePage(w, "Fourier spectra "+name, panels)
}

// ResponsePage renders the [station]r.ps product of process #18: SA, SV,
// and SD versus period on log-log axes in a single panel (the paper's
// Figure 4).
func ResponsePage(w io.Writer, r smformat.Response) error {
	if err := r.Validate(); err != nil {
		return err
	}
	name := r.Station + r.Component.Suffix()
	title := fmt.Sprintf("%s response spectra (%.0f%% damping)", name, r.Damping*100)
	panels := []Plot{
		{
			Axes: Axes{Title: title, XLabel: "Period (s)", YLabel: "SA gal / SV cm/s / SD cm", XLog: true, YLog: true},
			Series: []Series{
				{Label: "SA", X: r.Periods, Y: r.SA},
				{Label: "SV", X: r.Periods, Y: r.SV},
				{Label: "SD", X: r.Periods, Y: r.SD},
			},
		},
	}
	return WritePage(w, "Response spectra "+name, panels)
}
