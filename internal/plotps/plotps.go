// Package plotps writes the PostScript plot files of the pipeline's
// plotting processes (#9, #15, #18): [station].ps with the corrected
// accelerogram, [station]f.ps with the Fourier spectra, and [station]r.ps
// with the response spectra.
//
// The legacy chain renders these through gnuplot-style tooling; here a
// small self-contained PostScript generator reproduces the same products —
// real vector plot files with axes, tick labels, and data polylines — so
// the plotting stages keep their "heavy I/O plus formatting" cost profile
// from the paper.
package plotps

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// Page dimensions in PostScript points (US letter).
const (
	pageWidth  = 612
	pageHeight = 792
)

// Series is one polyline to draw.
type Series struct {
	Label string
	X, Y  []float64
}

// Axes configures one plot panel.
type Axes struct {
	Title  string
	XLabel string
	YLabel string
	XLog   bool // logarithmic x axis
	YLog   bool // logarithmic y axis
}

// Plot is a single panel with any number of series.
type Plot struct {
	Axes   Axes
	Series []Series
	// Markers are vertical reference lines (e.g. the FPL and FSL corner
	// frequencies on a Fourier plot), drawn dashed with a label.
	Markers []Marker
}

// Marker is a labelled vertical line at X.
type Marker struct {
	Label string
	X     float64
}

// grayLevels cycles line shades for successive series (monochrome
// PostScript, like the legacy plots).
var grayLevels = []float64{0.0, 0.45, 0.7}

// WritePage renders a stack of panels onto one PostScript page.  Every
// panel gets an equal share of the page height.  Series with fewer than two
// points, or with non-positive values on logarithmic axes, are skipped
// gracefully (an empty panel still draws its axes).
func WritePage(w io.Writer, docTitle string, plots []Plot) error {
	if len(plots) == 0 {
		return fmt.Errorf("plotps: no panels to draw")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "%!PS-Adobe-3.0")
	fmt.Fprintf(bw, "%%%%Title: %s\n", docTitle)
	bw.WriteString("%%Pages: 1\n")
	bw.WriteString("%%EndComments\n")
	fmt.Fprintln(bw, "/L { lineto } def")
	fmt.Fprintln(bw, "/M { moveto } def")
	fmt.Fprintln(bw, "/S { stroke } def")
	fmt.Fprintln(bw, "/F { /Helvetica findfont exch scalefont setfont } def")
	bw.WriteString("%%Page: 1 1\n")

	margin := 54.0
	panelH := (pageHeight - 2*margin) / float64(len(plots))
	for i, p := range plots {
		y0 := pageHeight - margin - float64(i+1)*panelH
		frame := frameRect{
			x:      margin + 36,
			y:      y0 + 28,
			width:  pageWidth - 2*margin - 48,
			height: panelH - 52,
		}
		if err := drawPanel(bw, p, frame); err != nil {
			return fmt.Errorf("plotps: panel %d (%s): %w", i, p.Axes.Title, err)
		}
	}
	fmt.Fprintln(bw, "showpage")
	bw.WriteString("%%EOF\n")
	return bw.Flush()
}

type frameRect struct{ x, y, width, height float64 }

// axisRange holds the data-to-page transform for one axis.
type axisRange struct {
	lo, hi float64
	log    bool
}

func (a axisRange) norm(v float64) (float64, bool) {
	if a.log {
		if v <= 0 {
			return 0, false
		}
		return (math.Log10(v) - math.Log10(a.lo)) / (math.Log10(a.hi) - math.Log10(a.lo)), true
	}
	return (v - a.lo) / (a.hi - a.lo), true
}

// dataRange scans the plot's series for finite (and, on log axes, positive)
// values and returns padded bounds.
func dataRange(p Plot, getY bool) (lo, hi float64, ok bool) {
	lo, hi = math.Inf(1), math.Inf(-1)
	log := p.Axes.XLog
	if getY {
		log = p.Axes.YLog
	}
	consider := func(v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		if log && v <= 0 {
			return
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	for _, s := range p.Series {
		vals := s.X
		if getY {
			vals = s.Y
		}
		for _, v := range vals {
			consider(v)
		}
	}
	if !getY {
		for _, m := range p.Markers {
			consider(m.X)
		}
	}
	if math.IsInf(lo, 1) {
		return 0, 0, false
	}
	if lo == hi {
		if log {
			lo, hi = lo/2, hi*2
		} else {
			lo, hi = lo-1, hi+1
		}
	}
	if !log {
		pad := 0.05 * (hi - lo)
		lo, hi = lo-pad, hi+pad
	}
	return lo, hi, true
}

func drawPanel(w *bufio.Writer, p Plot, f frameRect) error {
	// Frame.
	fmt.Fprintln(w, "0 setgray 0.8 setlinewidth")
	fmt.Fprintf(w, "%.2f %.2f M %.2f %.2f L %.2f %.2f L %.2f %.2f L closepath S\n",
		f.x, f.y, f.x+f.width, f.y, f.x+f.width, f.y+f.height, f.x, f.y+f.height)

	// Title and axis labels.
	fmt.Fprintln(w, "10 F")
	fmt.Fprintf(w, "%.2f %.2f M (%s) show\n", f.x, f.y+f.height+6, psEscape(p.Axes.Title))
	fmt.Fprintln(w, "8 F")
	fmt.Fprintf(w, "%.2f %.2f M (%s) show\n", f.x+f.width/2-20, f.y-16, psEscape(p.Axes.XLabel))
	fmt.Fprintf(w, "gsave %.2f %.2f translate 90 rotate 0 0 M (%s) show grestore\n",
		f.x-28, f.y+f.height/2-20, psEscape(p.Axes.YLabel))

	xlo, xhi, xok := dataRange(p, false)
	ylo, yhi, yok := dataRange(p, true)
	if !xok || !yok {
		// Nothing plottable; the empty frame is the degenerate product.
		return nil
	}
	xr := axisRange{lo: xlo, hi: xhi, log: p.Axes.XLog}
	yr := axisRange{lo: ylo, hi: yhi, log: p.Axes.YLog}

	drawTicks(w, f, xr, yr)

	// Series polylines.
	for si, s := range p.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("series %q: x/y lengths differ (%d vs %d)", s.Label, len(s.X), len(s.Y))
		}
		gray := grayLevels[si%len(grayLevels)]
		fmt.Fprintf(w, "%.2f setgray 0.5 setlinewidth\n", gray)
		drawPolyline(w, f, xr, yr, s)
		// Legend entry.
		fmt.Fprintf(w, "%.2f %.2f M (%s) show\n",
			f.x+f.width-80, f.y+f.height-10-float64(si)*10, psEscape(s.Label))
	}

	// Markers: dashed vertical lines.
	fmt.Fprintln(w, "0 setgray [3 3] 0 setdash 0.5 setlinewidth")
	for _, m := range p.Markers {
		nx, ok := xr.norm(m.X)
		if !ok || nx < 0 || nx > 1 {
			continue
		}
		px := f.x + nx*f.width
		fmt.Fprintf(w, "%.2f %.2f M %.2f %.2f L S\n", px, f.y, px, f.y+f.height)
		fmt.Fprintf(w, "%.2f %.2f M (%s) show\n", px+2, f.y+f.height-10, psEscape(m.Label))
	}
	fmt.Fprintln(w, "[] 0 setdash")
	return nil
}

func drawPolyline(w *bufio.Writer, f frameRect, xr, yr axisRange, s Series) {
	started := false
	for i := range s.X {
		nx, okx := xr.norm(s.X[i])
		ny, oky := yr.norm(s.Y[i])
		if !okx || !oky {
			if started {
				fmt.Fprintln(w, "S")
				started = false
			}
			continue
		}
		px := f.x + clamp01(nx)*f.width
		py := f.y + clamp01(ny)*f.height
		if !started {
			fmt.Fprintf(w, "%.2f %.2f M\n", px, py)
			started = true
		} else {
			fmt.Fprintf(w, "%.2f %.2f L\n", px, py)
		}
	}
	if started {
		fmt.Fprintln(w, "S")
	}
}

func drawTicks(w *bufio.Writer, f frameRect, xr, yr axisRange) {
	fmt.Fprintln(w, "0 setgray 0.4 setlinewidth 6 F")
	for _, t := range ticks(xr) {
		n, ok := xr.norm(t)
		if !ok || n < -1e-9 || n > 1+1e-9 {
			continue
		}
		px := f.x + clamp01(n)*f.width
		fmt.Fprintf(w, "%.2f %.2f M %.2f %.2f L S\n", px, f.y, px, f.y+4)
		fmt.Fprintf(w, "%.2f %.2f M (%s) show\n", px-8, f.y-8, formatTick(t))
	}
	for _, t := range ticks(yr) {
		n, ok := yr.norm(t)
		if !ok || n < -1e-9 || n > 1+1e-9 {
			continue
		}
		py := f.y + clamp01(n)*f.height
		fmt.Fprintf(w, "%.2f %.2f M %.2f %.2f L S\n", f.x, py, f.x+4, py)
		fmt.Fprintf(w, "%.2f %.2f M (%s) show\n", f.x-26, py-2, formatTick(t))
	}
}

// ticks picks 4-6 round tick values for an axis.
func ticks(a axisRange) []float64 {
	var out []float64
	if a.log {
		dlo := math.Floor(math.Log10(a.lo))
		dhi := math.Ceil(math.Log10(a.hi))
		for d := dlo; d <= dhi; d++ {
			out = append(out, math.Pow(10, d))
		}
		return out
	}
	span := a.hi - a.lo
	if span <= 0 {
		return nil
	}
	step := math.Pow(10, math.Floor(math.Log10(span/4)))
	for _, m := range []float64{5, 2, 1} {
		if span/(step*m) >= 4 {
			step *= m
			break
		}
	}
	start := math.Ceil(a.lo/step) * step
	for v := start; v <= a.hi+1e-9*span; v += step {
		out = append(out, v)
	}
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case v == 0:
		return "0"
	case av >= 0.01 && av < 10000:
		return trimZeros(fmt.Sprintf("%.3f", v))
	default:
		return fmt.Sprintf("%.0e", v)
	}
}

func trimZeros(s string) string {
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// psEscape escapes PostScript string delimiters.
func psEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(', ')', '\\':
			out = append(out, '\\', s[i])
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
