package storage

import (
	"bytes"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Mem is the in-memory Workspace.  Directories are real — MkdirAll,
// RemoveAll, and the quarantine renames keep their os semantics, so the
// scratch-folder lifecycle and every directory-level assertion behave
// exactly as on disk — but file bytes live in a map shadowing the tree.
// Reads fall through to real disk for paths never written through the
// workspace (the V1 inputs a prepared work directory starts with);
// tombstones shadow disk files the protocol has deleted or moved away.
//
// Two paths hardlinked via Link share one *memFile and therefore one
// generation, mirroring inode sharing on the fs backend.  Rename moves the
// *memFile without touching its generation, mirroring inode preservation.
//
// All methods are safe for concurrent use.
type Mem struct {
	mu       sync.Mutex
	files    map[string]*memFile
	tombs    map[string]bool // deleted/moved-away paths that still exist on real disk
	seq      uint64
	resident int64
	peak     int64
}

// memFile is one in-memory file.  Aliased (hardlinked) paths share the same
// *memFile; seq is its content generation, bumped on every write and
// preserved across rename and link.
type memFile struct {
	data []byte
	mode os.FileMode
	seq  uint64
}

// NewMem returns an empty in-memory workspace.
func NewMem() *Mem {
	return &Mem{files: make(map[string]*memFile), tombs: make(map[string]bool)}
}

// charge adjusts the resident-byte account by delta, tracking the peak.
// Callers hold m.mu.
func (m *Mem) charge(delta int64) {
	m.resident += delta
	if m.resident > m.peak {
		m.peak = m.resident
	}
}

func (m *Mem) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (m *Mem) WriteFile(path string, data []byte, perm os.FileMode) error {
	path = filepath.Clean(path)
	cp := make([]byte, len(data))
	copy(cp, data)
	m.mu.Lock()
	defer m.mu.Unlock()
	if old, ok := m.files[path]; ok {
		m.charge(-int64(len(old.data)))
	}
	m.seq++
	m.files[path] = &memFile{data: cp, mode: perm, seq: m.seq}
	delete(m.tombs, path)
	m.charge(int64(len(cp)))
	return nil
}

// Append extends path's in-memory bytes, hoisting a disk-backed file into
// memory first so the appended content shadows (and on Materialize,
// overwrites) the real file.  Memory is the durability domain of this
// backend, so no fsync analogue applies.
func (m *Mem) Append(path string, data []byte, perm os.FileMode) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		var init []byte
		if !m.tombs[path] {
			if disk, err := os.ReadFile(path); err == nil {
				init = append([]byte(nil), disk...)
			}
		}
		f = &memFile{data: init, mode: perm}
		m.files[path] = f
		delete(m.tombs, path)
		m.charge(int64(len(init)))
	}
	m.seq++
	f.data = append(f.data, data...)
	f.seq = m.seq
	m.charge(int64(len(data)))
	return nil
}

func (m *Mem) ReadFile(path string) ([]byte, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	f, ok := m.files[path]
	tomb := m.tombs[path]
	m.mu.Unlock()
	if ok {
		// The stored slice is immutable by contract (WriteFile copies on
		// store and readers never mutate their inputs), so no copy out.
		return f.data, nil
	}
	if tomb {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	return os.ReadFile(path)
}

func (m *Mem) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		if m.tombs[oldpath] {
			return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
		}
		// Disk-backed source: hoist the bytes into memory under the new name
		// and tombstone the original, leaving real disk untouched.
		data, err := os.ReadFile(oldpath)
		if err != nil {
			return err
		}
		m.seq++
		f = &memFile{data: data, mode: 0o644, seq: m.seq}
		m.charge(int64(len(data)))
		m.tombs[oldpath] = true
	} else {
		delete(m.files, oldpath)
		// Shadow any real disk file left under the old name; harmless when
		// none exists.
		m.tombs[oldpath] = true
	}
	if prev, ok := m.files[newpath]; ok {
		m.charge(-int64(len(prev.data)))
	}
	m.files[newpath] = f
	delete(m.tombs, newpath)
	return nil
}

func (m *Mem) Remove(path string) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	if f, ok := m.files[path]; ok {
		m.charge(-int64(len(f.data)))
		delete(m.files, path)
		m.tombs[path] = true
		m.mu.Unlock()
		return nil
	}
	if m.tombs[path] {
		m.mu.Unlock()
		return &fs.PathError{Op: "remove", Path: path, Err: fs.ErrNotExist}
	}
	m.mu.Unlock()
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() {
		return os.Remove(path)
	}
	m.mu.Lock()
	m.tombs[path] = true
	m.mu.Unlock()
	return nil
}

func (m *Mem) RemoveAll(dir string) error {
	dir = filepath.Clean(dir)
	prefix := dir + string(os.PathSeparator)
	m.mu.Lock()
	for p, f := range m.files {
		if p == dir || strings.HasPrefix(p, prefix) {
			m.charge(-int64(len(f.data)))
			delete(m.files, p)
		}
	}
	for p := range m.tombs {
		if p == dir || strings.HasPrefix(p, prefix) {
			delete(m.tombs, p)
		}
	}
	m.mu.Unlock()
	return os.RemoveAll(dir)
}

func (m *Mem) Stat(path string) (fs.FileInfo, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	f, ok := m.files[path]
	tomb := m.tombs[path]
	m.mu.Unlock()
	if ok {
		return memInfo{name: filepath.Base(path), f: f}, nil
	}
	if tomb {
		return nil, &fs.PathError{Op: "stat", Path: path, Err: fs.ErrNotExist}
	}
	return os.Stat(path)
}

func (m *Mem) Open(path string) (io.ReadCloser, error) {
	path = filepath.Clean(path)
	m.mu.Lock()
	f, ok := m.files[path]
	tomb := m.tombs[path]
	m.mu.Unlock()
	if ok {
		return io.NopCloser(bytes.NewReader(f.data)), nil
	}
	if tomb {
		return nil, &fs.PathError{Op: "open", Path: path, Err: fs.ErrNotExist}
	}
	return os.Open(path)
}

// Create writes through to real disk (temp + rename on Close, like the fs
// backend) instead of accumulating bytes in memory: streaming producers
// exist precisely so whole artifacts never become resident, so charging
// them here would defeat the backpressure contract.  On Close the path's
// tombstone and any stale in-memory shadow are cleared, so reads fall
// through to the fresh disk file.
func (m *Mem) Create(path string) (io.WriteCloser, error) {
	path = filepath.Clean(path)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &memStreamWriter{m: m, f: f, tmp: tmp, path: path}, nil
}

// memStreamWriter is the io.WriteCloser behind Mem.Create.
type memStreamWriter struct {
	m    *Mem
	f    *os.File
	tmp  string
	path string
}

func (w *memStreamWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

// Abort discards the write: the temp file is removed and the destination —
// on disk or in memory — is never touched.
func (w *memStreamWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

func (w *memStreamWriter) Close() error {
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	m := w.m
	m.mu.Lock()
	if old, ok := m.files[w.path]; ok {
		m.charge(-int64(len(old.data)))
		delete(m.files, w.path)
	}
	delete(m.tombs, w.path)
	m.mu.Unlock()
	return nil
}

func (m *Mem) List(dir string) ([]fs.DirEntry, error) {
	dir = filepath.Clean(dir)
	real, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	merged := make(map[string]fs.DirEntry, len(real))
	for _, e := range real {
		if m.tombs[filepath.Join(dir, e.Name())] {
			continue
		}
		merged[e.Name()] = e
	}
	for p, f := range m.files {
		if filepath.Dir(p) == dir {
			name := filepath.Base(p)
			merged[name] = memEntry{name: name, f: f}
		}
	}
	m.mu.Unlock()
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, len(names))
	for i, name := range names {
		out[i] = merged[name]
	}
	return out, nil
}

func (m *Mem) Link(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldpath]
	if !ok {
		// Disk-backed or missing source: let the caller fall back to a copy
		// rather than linking real disk into the in-memory namespace.
		return ErrLinkUnsupported
	}
	if _, exists := m.files[newpath]; exists {
		return &os.LinkError{Op: "link", Old: oldpath, New: newpath, Err: fs.ErrExist}
	}
	if !m.tombs[newpath] {
		if _, err := os.Stat(newpath); err == nil {
			return &os.LinkError{Op: "link", Old: oldpath, New: newpath, Err: fs.ErrExist}
		}
	}
	// Both names alias the same *memFile, sharing content and generation —
	// the in-memory analogue of sharing an inode.  The alias is charged to
	// the resident account like a real copy, keeping the gauge conservative.
	m.files[newpath] = f
	delete(m.tombs, newpath)
	m.charge(int64(len(f.data)))
	return nil
}

func (m *Mem) Generation(path string) (any, int64, bool) {
	path = filepath.Clean(path)
	m.mu.Lock()
	f, ok := m.files[path]
	tomb := m.tombs[path]
	m.mu.Unlock()
	if ok {
		return f.seq, int64(len(f.data)), true
	}
	if tomb {
		return nil, 0, false
	}
	return diskGeneration(path)
}

// Materialize flushes every in-memory file under dir to real disk (each via
// write-temp + rename, like the fs backend) and removes shadowed disk files
// the tombstones mark as deleted.  Flushed entries leave memory; the peak
// resident count is retained.
func (m *Mem) Materialize(dir string) error {
	dir = filepath.Clean(dir)
	prefix := dir + string(os.PathSeparator)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p, f := range m.files {
		if p != dir && !strings.HasPrefix(p, prefix) {
			continue
		}
		tmp := p + ".tmp"
		if err := os.WriteFile(tmp, f.data, f.mode); err != nil {
			return err
		}
		if err := os.Rename(tmp, p); err != nil {
			os.Remove(tmp)
			return err
		}
		m.charge(-int64(len(f.data)))
		delete(m.files, p)
	}
	for p := range m.tombs {
		if p != dir && !strings.HasPrefix(p, prefix) {
			continue
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return err
		}
		delete(m.tombs, p)
	}
	return nil
}

func (m *Mem) ResidentBytes() (current, peak int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resident, m.peak
}

// memInfo is the fs.FileInfo of an in-memory file.  ModTime is synthesized
// from the write sequence number, so it is deterministic and strictly
// increasing across writes.
type memInfo struct {
	name string
	f    *memFile
}

func (i memInfo) Name() string       { return i.name }
func (i memInfo) Size() int64        { return int64(len(i.f.data)) }
func (i memInfo) Mode() fs.FileMode  { return i.f.mode }
func (i memInfo) ModTime() time.Time { return time.Unix(0, int64(i.f.seq)) }
func (i memInfo) IsDir() bool        { return false }
func (i memInfo) Sys() any           { return nil }

// memEntry is the fs.DirEntry of an in-memory file.
type memEntry struct {
	name string
	f    *memFile
}

func (e memEntry) Name() string               { return e.name }
func (e memEntry) IsDir() bool                { return false }
func (e memEntry) Type() fs.FileMode          { return 0 }
func (e memEntry) Info() (fs.FileInfo, error) { return memInfo{name: e.name, f: e.f}, nil }

var _ Workspace = (*Mem)(nil)
