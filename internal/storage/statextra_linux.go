//go:build linux

package storage

import (
	"io/fs"
	"syscall"
)

// statExtra extracts the inode number and ctime (status-change time) from a
// stat result: the fingerprint fields an in-place rewrite cannot forge —
// user code can pin mtime with Chtimes, but every write and chtimes call
// bumps ctime, and only the kernel sets it.
func statExtra(info fs.FileInfo) (ino uint64, ctimeNano int64) {
	if st, ok := info.Sys().(*syscall.Stat_t); ok {
		return st.Ino, st.Ctim.Nano()
	}
	return 0, 0
}
