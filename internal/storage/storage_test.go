package storage

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBackend(t *testing.T) {
	cases := []struct {
		in   string
		want Backend
		ok   bool
	}{
		{"", BackendFS, true},
		{"fs", BackendFS, true},
		{"disk", BackendFS, true},
		{"mem", BackendMem, true},
		{"memory", BackendMem, true},
		{"s3", "", false},
	}
	for _, c := range cases {
		got, err := ParseBackend(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseBackend(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseBackend(%q) succeeded; want error", c.in)
		}
	}
}

func TestNewSelectsBackend(t *testing.T) {
	ws, err := New(BackendFS)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ws.(OS); !ok {
		t.Errorf("New(fs) = %T; want storage.OS", ws)
	}
	ws, err = New(BackendMem)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ws.(*Mem); !ok {
		t.Errorf("New(mem) = %T; want *storage.Mem", ws)
	}
	if _, err := New("tape"); err == nil {
		t.Error("New(tape) succeeded; want error")
	}
}

func TestOSWriteFileIsAtomicRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.v2")
	if err := (OS{}).WriteFile(path, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}
	// An overwrite must bind the path to a fresh inode, leaving hardlink
	// aliases of the old content untouched.
	alias := filepath.Join(dir, "alias.v2")
	if err := os.Link(path, alias); err != nil {
		t.Skipf("hardlinks unsupported here: %v", err)
	}
	if err := (OS{}).WriteFile(path, []byte("fresh"), 0o644); err != nil {
		t.Fatal(err)
	}
	if data, _ := os.ReadFile(alias); string(data) != "payload" {
		t.Errorf("alias mutated by overwrite: %q", data)
	}
}

func TestMemWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	path := filepath.Join(dir, "a.v1")
	if err := m.WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// Nothing on real disk until materialized.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("blob leaked to disk: %v", err)
	}
	info, err := m.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name() != "a.v1" || info.Size() != 5 || info.IsDir() {
		t.Errorf("Stat = %q size=%d dir=%v", info.Name(), info.Size(), info.IsDir())
	}
	rc, err := m.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	streamed, _ := io.ReadAll(rc)
	rc.Close()
	if string(streamed) != "hello" {
		t.Errorf("Open streamed %q", streamed)
	}
}

func TestMemFallsThroughToDisk(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	path := filepath.Join(dir, "seed.v1")
	if err := os.WriteFile(path, []byte("from-disk"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := m.ReadFile(path)
	if err != nil || string(data) != "from-disk" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	if _, err := m.Stat(path); err != nil {
		t.Errorf("Stat fell through: %v", err)
	}
	// Removing a disk-backed file tombstones it without touching disk...
	if err := m.Remove(path); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("tombstoned read err = %v; want ErrNotExist", err)
	}
	if _, err := m.Stat(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("tombstoned stat err = %v; want ErrNotExist", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("physical file disturbed: %v", err)
	}
	// ...and a second remove reports not-exist, like the real fs.
	if err := m.Remove(path); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("double remove err = %v; want ErrNotExist", err)
	}
}

func TestMemRenameSemantics(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	src := filepath.Join(dir, "src.v2")
	dst := filepath.Join(dir, "dst.v2")
	if err := m.WriteFile(src, []byte("body"), 0o644); err != nil {
		t.Fatal(err)
	}
	gBefore, _, _ := m.Generation(src)
	if err := m.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile(src); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("source survives rename: %v", err)
	}
	if data, err := m.ReadFile(dst); err != nil || string(data) != "body" {
		t.Fatalf("dest after rename = %q, %v", data, err)
	}
	gAfter, _, ok := m.Generation(dst)
	if !ok || gAfter != gBefore {
		t.Errorf("rename changed generation: %v -> %v", gBefore, gAfter)
	}
	// Missing source must satisfy errors.Is(err, fs.ErrNotExist) — the
	// stage-move error path keys on it.
	if err := m.Rename(src, dst); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("rename of missing src err = %v; want ErrNotExist", err)
	}
	// Disk-backed source: bytes hoisted into memory, original shadowed.
	seeded := filepath.Join(dir, "seed.v1")
	if err := os.WriteFile(seeded, []byte("disk-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "moved.v1")
	if err := m.Rename(seeded, moved); err != nil {
		t.Fatal(err)
	}
	if data, err := m.ReadFile(moved); err != nil || string(data) != "disk-bytes" {
		t.Fatalf("hoisted rename = %q, %v", data, err)
	}
	if _, err := m.ReadFile(seeded); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("disk source not shadowed: %v", err)
	}
}

func TestMemLinkAliasesAndRefuses(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	src := filepath.Join(dir, "src.f")
	dst := filepath.Join(dir, "dst.f")
	if err := m.WriteFile(src, []byte("spectrum"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Link(src, dst); err != nil {
		t.Fatal(err)
	}
	gs, _, _ := m.Generation(src)
	gd, _, _ := m.Generation(dst)
	if gs != gd {
		t.Errorf("link generations differ: %v vs %v", gs, gd)
	}
	// Existing destination must satisfy errors.Is(err, fs.ErrExist).
	if err := m.Link(src, dst); !errors.Is(err, fs.ErrExist) {
		t.Errorf("link onto existing err = %v; want ErrExist", err)
	}
	// Disk-backed sources are not linkable: callers fall back to a copy.
	seeded := filepath.Join(dir, "seed.v1")
	if err := os.WriteFile(seeded, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Link(seeded, filepath.Join(dir, "other.v1")); !errors.Is(err, ErrLinkUnsupported) {
		t.Errorf("disk-source link err = %v; want ErrLinkUnsupported", err)
	}
}

func TestMemListOverlaysAndShadows(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	if err := os.WriteFile(filepath.Join(dir, "disk.v1"), []byte("d"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gone.v1"), []byte("g"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile(filepath.Join(dir, "blob.v2"), []byte("b"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(filepath.Join(dir, "gone.v1")); err != nil {
		t.Fatal(err)
	}
	entries, err := m.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	want := []string{"blob.v2", "disk.v1"}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Errorf("List = %v; want %v", names, want)
	}
}

func TestMemMaterializeFlushesAndApplesTombstones(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	blob := filepath.Join(dir, "out.v2")
	doomed := filepath.Join(dir, "doomed.v1")
	if err := os.WriteFile(doomed, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile(blob, []byte("final-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(doomed); err != nil {
		t.Fatal(err)
	}
	if err := m.Materialize(dir); err != nil {
		t.Fatal(err)
	}
	if data, err := os.ReadFile(blob); err != nil || string(data) != "final-bytes" {
		t.Fatalf("materialized blob = %q, %v", data, err)
	}
	if _, err := os.Stat(doomed); !os.IsNotExist(err) {
		t.Errorf("tombstoned file survived materialize: %v", err)
	}
	cur, peak := m.ResidentBytes()
	if cur != 0 {
		t.Errorf("resident after materialize = %d; want 0", cur)
	}
	if peak != int64(len("final-bytes")) {
		t.Errorf("peak = %d; want %d", peak, len("final-bytes"))
	}
}

func TestMemResidentAccounting(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	a := filepath.Join(dir, "a")
	b := filepath.Join(dir, "b")
	if err := m.WriteFile(a, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteFile(b, make([]byte, 50), 0o644); err != nil {
		t.Fatal(err)
	}
	if cur, peak := m.ResidentBytes(); cur != 150 || peak != 150 {
		t.Fatalf("after writes: cur=%d peak=%d", cur, peak)
	}
	// Overwrite shrinks current, keeps peak.
	if err := m.WriteFile(a, make([]byte, 10), 0o644); err != nil {
		t.Fatal(err)
	}
	if cur, peak := m.ResidentBytes(); cur != 60 || peak != 150 {
		t.Fatalf("after overwrite: cur=%d peak=%d", cur, peak)
	}
	if err := m.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if cur, peak := m.ResidentBytes(); cur != 0 || peak != 150 {
		t.Fatalf("after RemoveAll: cur=%d peak=%d", cur, peak)
	}
}

func TestMemRemoveAllPurgesSubtree(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	scratch := filepath.Join(dir, "tmp_def_01_SS01")
	if err := m.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	inner := filepath.Join(scratch, "part.v1")
	if err := m.WriteFile(inner, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	outer := filepath.Join(dir, "keep.v1")
	if err := m.WriteFile(outer, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.RemoveAll(scratch); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(scratch); !os.IsNotExist(err) {
		t.Errorf("scratch dir survived: %v", err)
	}
	if _, err := m.ReadFile(inner); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("inner blob survived: %v", err)
	}
	if _, err := m.ReadFile(outer); err != nil {
		t.Errorf("sibling blob purged: %v", err)
	}
}

// TestOSGenerationDetectsSameSizeSameMtimeRewrite is the mtime-aliasing
// regression test: an in-place rewrite of identical size with the mtime
// pinned back to the original (the worst case of two writes inside one
// filesystem timestamp tick) must still change the generation, because the
// token carries the content hash and the hash memo revalidates on ctime.
func TestOSGenerationDetectsSameSizeSameMtimeRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gen.v2")
	if err := os.WriteFile(path, []byte("12345678"), 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	g1, size, ok := (OS{}).Generation(path)
	if !ok || size != 8 {
		t.Fatalf("Generation = %v, %d, %v", g1, size, ok)
	}
	// Probe twice: the second must come from the hash memo and agree.
	if g1b, _, _ := (OS{}).Generation(path); g1 != g1b {
		t.Fatal("memoized generation differs from the fresh one")
	}
	if err := os.WriteFile(path, []byte("87654321"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, info.ModTime(), info.ModTime()); err != nil {
		t.Fatal(err)
	}
	g2, _, _ := (OS{}).Generation(path)
	if g1 == g2 {
		t.Error("generation unchanged across same-size same-mtime rewrite")
	}
	if _, _, ok := (OS{}).Generation(dir); ok {
		t.Error("Generation of a directory reported ok")
	}
}

func TestMemGenerationChangesOnWrite(t *testing.T) {
	dir := t.TempDir()
	m := NewMem()
	path := filepath.Join(dir, "gen.v2")
	if err := m.WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	g1, size, ok := m.Generation(path)
	if !ok || size != 3 {
		t.Fatalf("Generation = %v, %d, %v", g1, size, ok)
	}
	if err := m.WriteFile(path, []byte("two"), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, _, _ := m.Generation(path)
	if g1 == g2 {
		t.Error("generation unchanged across rewrite of same-size content")
	}
	if _, _, ok := m.Generation(filepath.Join(dir, "absent")); ok {
		t.Error("Generation of missing path reported ok")
	}
}

func TestAppendBothBackends(t *testing.T) {
	for _, tc := range []struct {
		name string
		ws   func() Workspace
	}{
		{"os", func() Workspace { return OS{} }},
		{"mem", func() Workspace { return NewMem() }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ws := tc.ws()
			dir := t.TempDir()
			path := filepath.Join(dir, "journal")
			if err := ws.Append(path, []byte("one\n"), 0o644); err != nil {
				t.Fatalf("Append (create): %v", err)
			}
			if err := ws.Append(path, []byte("two\n"), 0o644); err != nil {
				t.Fatalf("Append (extend): %v", err)
			}
			got, err := ws.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != "one\ntwo\n" {
				t.Errorf("content = %q; want %q", got, "one\ntwo\n")
			}
			if err := ws.Materialize(dir); err != nil {
				t.Fatal(err)
			}
			disk, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(disk) != "one\ntwo\n" {
				t.Errorf("materialized content = %q; want %q", disk, "one\ntwo\n")
			}
		})
	}
}

func TestMemAppendHoistsDiskFile(t *testing.T) {
	m := NewMem()
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	if err := os.WriteFile(path, []byte("disk\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Append(path, []byte("mem\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "disk\nmem\n" {
		t.Errorf("content = %q; want %q", got, "disk\nmem\n")
	}
	// Hoisting must shadow the real file until Materialize overwrites it.
	disk, _ := os.ReadFile(path)
	if string(disk) != "disk\n" {
		t.Errorf("pre-materialize disk = %q; want untouched %q", disk, "disk\n")
	}
	if err := m.Materialize(dir); err != nil {
		t.Fatal(err)
	}
	disk, _ = os.ReadFile(path)
	if string(disk) != "disk\nmem\n" {
		t.Errorf("post-materialize disk = %q; want %q", disk, "disk\nmem\n")
	}
}

func TestMemAppendAfterRemoveStartsEmpty(t *testing.T) {
	m := NewMem()
	dir := t.TempDir()
	path := filepath.Join(dir, "journal")
	if err := os.WriteFile(path, []byte("stale\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(path); err != nil {
		t.Fatal(err)
	}
	// The tombstoned disk bytes must not resurface through Append.
	if err := m.Append(path, []byte("fresh\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "fresh\n" {
		t.Errorf("content = %q; want %q", got, "fresh\n")
	}
	if err := m.Materialize(dir); err != nil {
		t.Fatal(err)
	}
	disk, _ := os.ReadFile(path)
	if string(disk) != "fresh\n" {
		t.Errorf("materialized = %q; want %q", disk, "fresh\n")
	}
}
