package storage

import (
	"io"
	"io/fs"
	"os"
)

// OS is the filesystem-backed Workspace: every operation is the
// corresponding os call.  It is stateless; the zero value is ready to use.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error                     { return os.Remove(path) }
func (OS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OS) Stat(path string) (fs.FileInfo, error)        { return os.Stat(path) }
func (OS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }

// WriteFile lands the bytes in a sibling temp file that is renamed into
// place, so the destination only ever holds a complete file and an
// overwrite binds the path to a fresh inode — never truncating an inode the
// destination may share with a staged hardlink.
func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (OS) Link(oldpath, newpath string) error      { return os.Link(oldpath, newpath) }
func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }
func (OS) List(dir string) ([]fs.DirEntry, error)  { return os.ReadDir(dir) }

// diskGen is the filesystem content generation: size + mtime as observed by
// stat, the same coherence token the artifact cache has always used.
type diskGen struct {
	size      int64
	mtimeNano int64
}

// diskGeneration stats path and returns its generation token; shared with
// the mem backend's fallback for files that still live on real disk.
func diskGeneration(path string) (any, int64, bool) {
	info, err := os.Stat(path)
	if err != nil || info.IsDir() {
		return nil, 0, false
	}
	return diskGen{size: info.Size(), mtimeNano: info.ModTime().UnixNano()}, info.Size(), true
}

func (OS) Generation(path string) (any, int64, bool) { return diskGeneration(path) }

// Materialize is a no-op: everything already lives on disk.
func (OS) Materialize(dir string) error { return nil }

// ResidentBytes is zero: the disk backend holds nothing in memory.
func (OS) ResidentBytes() (current, peak int64) { return 0, 0 }

var _ Workspace = OS{}
