package storage

import (
	"crypto/sha256"
	"hash"
	"io"
	"io/fs"
	"os"
	"sync"
)

// OS is the filesystem-backed Workspace: every operation is the
// corresponding os call.  It is stateless; the zero value is ready to use.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// Rename carries the source's memoized content hash to the destination: the
// bytes are unchanged, only the stat fingerprint (ctime) moved.
func (OS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if e, ok := hashMemo.LoadAndDelete(oldpath); ok {
		seedHashMemo(newpath, e.(hashMemoEntry).sum)
	}
	return nil
}

func (OS) Remove(path string) error {
	hashMemo.Delete(path)
	return os.Remove(path)
}

func (OS) RemoveAll(path string) error           { return os.RemoveAll(path) }
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }
func (OS) ReadFile(path string) ([]byte, error)  { return os.ReadFile(path) }

// WriteFile lands the bytes in a sibling temp file that is renamed into
// place, so the destination only ever holds a complete file and an
// overwrite binds the path to a fresh inode — never truncating an inode the
// destination may share with a staged hardlink.
func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The data is in hand: hash it now and seed the memo, so the first
	// generation probe of this product pays a stat instead of a re-read.
	seedHashMemo(path, sha256.Sum256(data))
	return nil
}

// Append opens path in append mode, writes data, and fsyncs before closing:
// the journal's guarantee that an acknowledged record survives kill -9.
// Append-mode files are not artifacts, so their hash memo entry (if any) is
// simply dropped.
func (OS) Append(path string, data []byte, perm os.FileMode) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, perm)
	if err != nil {
		return err
	}
	hashMemo.Delete(path)
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Link seeds the destination's memo from the source's — a hardlink shares
// the inode, so the content hash is identical — and re-seeds the source,
// whose fingerprint link(2) just invalidated by bumping the inode's ctime.
func (OS) Link(oldpath, newpath string) error {
	if err := os.Link(oldpath, newpath); err != nil {
		return err
	}
	if e, ok := hashMemo.Load(oldpath); ok {
		sum := e.(hashMemoEntry).sum
		seedHashMemo(oldpath, sum)
		seedHashMemo(newpath, sum)
	}
	return nil
}
func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }
func (OS) List(dir string) ([]fs.DirEntry, error)  { return os.ReadDir(dir) }

// Create streams to a sibling temp file and renames it into place on Close,
// hashing the bytes as they pass so the destination's generation memo is
// seeded without a re-read — the incremental analogue of WriteFile.
func (OS) Create(path string) (io.WriteCloser, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &osStreamWriter{f: f, tmp: tmp, path: path, h: sha256.New()}, nil
}

// osStreamWriter is the io.WriteCloser behind OS.Create.
type osStreamWriter struct {
	f    *os.File
	tmp  string
	path string
	h    hash.Hash
}

func (w *osStreamWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	w.h.Write(p[:n])
	return n, err
}

// Abort discards the write: the temp file is removed and the destination is
// never touched.  Used by producers that fail mid-stream so a truncated
// artifact can never be renamed into place.
func (w *osStreamWriter) Abort() {
	w.f.Close()
	os.Remove(w.tmp)
}

func (w *osStreamWriter) Close() error {
	if err := w.f.Close(); err != nil {
		os.Remove(w.tmp)
		return err
	}
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	var sum [sha256.Size]byte
	w.h.Sum(sum[:0])
	seedHashMemo(w.path, sum)
	return nil
}

// diskGen is the filesystem content generation: size plus content hash.
// Hashing (rather than stat size + mtime) closes the mtime-granularity
// window where two same-size rewrites within one clock tick would alias to
// the same token and serve a stale decode.
type diskGen struct {
	size int64
	sum  [sha256.Size]byte
}

// statIdentity is the full stat fingerprint of one file version, the
// revalidation key of the hash memo below: size, mtime, and — on unix —
// inode number and ctime.  An in-place rewrite cannot leave ctime
// untouched (even Chtimes bumps it), and this backend's own WriteFile
// always binds a fresh inode, so a matching identity means the content
// hash on record is still the file's.
type statIdentity struct {
	size      int64
	mtimeNano int64
	ino       uint64
	ctimeNano int64
}

// hashMemo caches path -> (statIdentity, content hash) so unchanged files
// pay one os.Stat per generation probe instead of a full read + SHA-256.
// Entries are tiny (~100 B) and replaced in place on change; the map only
// grows with the number of distinct paths probed by this process.
var hashMemo sync.Map

type hashMemoEntry struct {
	ident statIdentity
	sum   [sha256.Size]byte
}

// seedHashMemo records a known content hash for path under its current stat
// fingerprint.  Callers pass a sum they know matches the bytes on disk (they
// just wrote, linked, or renamed them); the pipeline's file protocol writes
// each product path at most once per run, so no concurrent rewrite can slip
// different bytes under the fingerprint between that operation and the stat.
func seedHashMemo(path string, sum [sha256.Size]byte) {
	info, err := os.Stat(path)
	if err != nil || !info.Mode().IsRegular() {
		return
	}
	ident := statIdentity{size: info.Size(), mtimeNano: info.ModTime().UnixNano()}
	ident.ino, ident.ctimeNano = statExtra(info)
	hashMemo.Store(path, hashMemoEntry{ident: ident, sum: sum})
}

// diskGeneration returns path's generation token, hashing its content only
// when the stat fingerprint changed since the last probe; shared with the
// mem backend's fallback for files that still live on real disk.  Stat'ing
// a directory succeeds but is not a regular file, so directories report
// ok=false.
func diskGeneration(path string) (any, int64, bool) {
	info, err := os.Stat(path)
	if err != nil || !info.Mode().IsRegular() {
		return nil, 0, false
	}
	ident := statIdentity{size: info.Size(), mtimeNano: info.ModTime().UnixNano()}
	ident.ino, ident.ctimeNano = statExtra(info)
	if e, ok := hashMemo.Load(path); ok {
		if he := e.(hashMemoEntry); he.ident == ident {
			return diskGen{size: ident.size, sum: he.sum}, ident.size, true
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false
	}
	sum := sha256.Sum256(data)
	// Memoize under the pre-read fingerprint: a write racing the read makes
	// the next probe's fingerprint differ and re-hash, never serve this sum.
	hashMemo.Store(path, hashMemoEntry{ident: ident, sum: sum})
	return diskGen{size: int64(len(data)), sum: sum}, int64(len(data)), true
}

func (OS) Generation(path string) (any, int64, bool) { return diskGeneration(path) }

// Materialize is a no-op: everything already lives on disk.
func (OS) Materialize(dir string) error { return nil }

// ResidentBytes is zero: the disk backend holds nothing in memory.
func (OS) ResidentBytes() (current, peak int64) { return 0, 0 }

var _ Workspace = OS{}
