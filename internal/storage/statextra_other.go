//go:build !linux

package storage

import "io/fs"

// statExtra has no portable inode/ctime source off linux; the hash memo
// then revalidates on (size, mtime) alone, which still re-hashes on every
// normal rewrite (this backend's WriteFile is temp + rename, advancing
// mtime) and degrades no worse than the historical (size, mtime) key for
// adversarial in-place same-tick rewrites.
func statExtra(info fs.FileInfo) (ino uint64, ctimeNano int64) { return 0, 0 }
