// Package storage is the pipeline's pluggable storage plane: the file
// protocol the 20 processes communicate through, lifted behind a Workspace
// interface so the same staging code can run against the real filesystem
// (the legacy chain's behavior, byte for byte) or an in-memory blob store
// that materializes to disk only where the protocol demands real files.
//
// Two backends implement Workspace here:
//
//   - OS: every operation is the corresponding os call, with WriteFile
//     hardened to write-temp + rename so a destination path only ever holds
//     a complete file (load-bearing for hardlink staging: an overwrite binds
//     a fresh inode instead of truncating a shared one).
//   - Mem: directories stay real (the scratch-folder lifecycle, the
//     quarantine moves, and the work-dir listings keep their os semantics),
//     but file bytes live in memory, shadowing the directory tree, until
//     Materialize flushes them under a requested subtree.
//
// A third implementation lives in internal/faults: the chaos decorator
// wraps any Workspace and interposes the fault injector on the seven
// staging operations, so retry, quarantine, and scratch cleanup behave
// identically on every backend.
package storage

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
)

// Workspace is the storage surface the pipeline's inter-stage file protocol
// runs on.  The first seven methods are the staging operations the fault
// injector interposes (see internal/faults); the rest are the read-side and
// lifecycle extensions the backends need: hardlink staging, streamed header
// peeks, directory listings, cache generations, and the on-demand flush of
// in-memory state to real disk.
type Workspace interface {
	MkdirAll(path string, perm os.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Stat(path string) (fs.FileInfo, error)
	ReadFile(path string) ([]byte, error)
	WriteFile(path string, data []byte, perm os.FileMode) error

	// Append appends data to path, creating the file if absent.  On
	// disk-backed workspaces the write is fsync'd before returning: Append
	// is the durability primitive of the write-ahead run journal, and a
	// record it reports as written must survive the process dying
	// immediately afterwards.
	Append(path string, data []byte, perm os.FileMode) error

	// Link makes newpath a second name for oldpath's current content, the
	// zero-copy stage-in fast path.  Backends that cannot link (or decorators
	// that must keep the copy visible to a fault injector) return
	// ErrLinkUnsupported and callers fall back to a real copy; an existing
	// newpath reports an error satisfying errors.Is(err, fs.ErrExist).
	Link(oldpath, newpath string) error
	// Open streams path for incremental reads (header peeks on multi-MB
	// payloads that must not be slurped whole).
	Open(path string) (io.ReadCloser, error)
	// Create streams path for incremental writes: the streaming-mode dual of
	// Open, for producers whose payload must never be resident in full.  The
	// destination is written atomically — bytes accumulate in a sibling temp
	// file that only a successful Close renames into place, so path either
	// holds the complete payload or does not exist (load-bearing for the
	// journal plane: an unfinished streamed product is invisible, and resume
	// simply re-executes its node).  Every backend streams to real disk;
	// in-memory workspaces deliberately write through, so chunked producers
	// never inflate ResidentBytes with whole artifacts.
	Create(path string) (io.WriteCloser, error)
	// List returns the directory entries of dir, sorted by name.
	List(dir string) ([]fs.DirEntry, error)
	// Generation returns an opaque comparable token identifying path's
	// current content, plus its size in bytes: the artifact cache's
	// coherence check.  ok is false when the path does not currently hold a
	// regular file.
	Generation(path string) (gen any, size int64, ok bool)
	// Materialize flushes every in-memory file under dir to real disk (and
	// applies pending deletions of shadowed disk files), so plain-os
	// consumers see the backend's state.  A no-op on disk-backed workspaces.
	Materialize(dir string) error
	// ResidentBytes reports the bytes currently held in memory and the peak
	// held at any point, for the storage_bytes_resident gauges.  Zero on
	// disk-backed workspaces.
	ResidentBytes() (current, peak int64)
}

// ErrLinkUnsupported is returned by Link when the backend cannot alias the
// two paths; callers must fall back to a real copy.
var ErrLinkUnsupported = errors.New("storage: hardlink not supported")

// Backend names a Workspace implementation for options and CLI flags.
type Backend string

// The built-in backends.
const (
	// BackendFS is the real filesystem (the default): current behavior,
	// byte-identical on disk.
	BackendFS Backend = "fs"
	// BackendMem holds file bytes in memory over a real directory tree,
	// materializing to disk on demand.
	BackendMem Backend = "mem"
)

// ParseBackend maps a command-line spelling to a Backend.
func ParseBackend(name string) (Backend, error) {
	switch name {
	case "", "fs", "disk":
		return BackendFS, nil
	case "mem", "memory":
		return BackendMem, nil
	default:
		return "", fmt.Errorf("storage: unknown backend %q (want fs or mem)", name)
	}
}

// New returns a fresh Workspace for the backend.  The empty Backend selects
// BackendFS, so a zero-valued options struct keeps today's behavior.
func New(b Backend) (Workspace, error) {
	switch b {
	case "", BackendFS:
		return OS{}, nil
	case BackendMem:
		return NewMem(), nil
	default:
		return nil, fmt.Errorf("storage: unknown backend %q (want fs or mem)", string(b))
	}
}

// Disk returns the plain filesystem workspace: the stateless OS backend,
// shared freely.
func Disk() Workspace { return OS{} }
