package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDemean(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	mean := Demean(x)
	if math.Abs(mean-2.5) > 1e-15 {
		t.Errorf("mean = %g, want 2.5", mean)
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("residual sum = %g, want 0", sum)
	}
	if Demean(nil) != 0 {
		t.Error("Demean(nil) != 0")
	}
}

func TestDetrendRemovesExactLine(t *testing.T) {
	const n = 500
	x := make([]float64, n)
	for i := range x {
		x[i] = 3.5 - 0.02*float64(i)
	}
	intercept, slope := Detrend(x)
	if math.Abs(intercept-3.5) > 1e-9 || math.Abs(slope+0.02) > 1e-12 {
		t.Errorf("intercept, slope = %g, %g; want 3.5, -0.02", intercept, slope)
	}
	for i, v := range x {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("residual[%d] = %g, want 0", i, v)
		}
	}
}

func TestDetrendEdgeCases(t *testing.T) {
	if i, s := Detrend(nil); i != 0 || s != 0 {
		t.Errorf("Detrend(nil) = %g, %g", i, s)
	}
	one := []float64{7}
	if i, s := Detrend(one); i != 7 || s != 0 || one[0] != 0 {
		t.Errorf("Detrend(single) = %g, %g, residual %g", i, s, one[0])
	}
}

// Property: detrending leaves data with (numerically) zero mean and zero
// linear correlation with the index.
func TestDetrendResidualOrthogonality(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%250 + 2
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()*5 + 0.3*float64(i)
		}
		Detrend(x)
		var sum, tsum float64
		for i, v := range x {
			sum += v
			tsum += float64(i) * v
		}
		return math.Abs(sum) < 1e-6*float64(n) && math.Abs(tsum) < 1e-5*float64(n*n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegrateConstantAcceleration(t *testing.T) {
	// Integrating a == 1 gives v(t) = t.
	n, dt := 100, 0.01
	a := make([]float64, n)
	for i := range a {
		a[i] = 1
	}
	v := Integrate(a, dt)
	for i := range v {
		// Trapezoid against implicit leading zero: v[i] = (i+0.5)*dt.
		want := (float64(i) + 0.5) * dt
		if math.Abs(v[i]-want) > 1e-12 {
			t.Fatalf("v[%d] = %g, want %g", i, v[i], want)
		}
	}
}

func TestIntegrateSineGivesCosine(t *testing.T) {
	// d/dt [-cos(wt)/w] = sin(wt): integral of sin from 0 is (1-cos(wt))/w.
	n, dt, w := 10000, 0.001, 2*math.Pi
	a := make([]float64, n)
	for i := range a {
		a[i] = math.Sin(w * float64(i+1) * dt)
	}
	v := Integrate(a, dt)
	for i := 100; i < n; i += 500 {
		ti := float64(i+1) * dt
		want := (1 - math.Cos(w*ti)) / w
		if math.Abs(v[i]-want) > 1e-4 {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want)
		}
	}
}

func TestIntegrateEmpty(t *testing.T) {
	if got := Integrate(nil, 0.01); len(got) != 0 {
		t.Errorf("Integrate(nil) len = %d", len(got))
	}
	if got := Differentiate(nil, 0.01); len(got) != 0 {
		t.Errorf("Differentiate(nil) len = %d", len(got))
	}
}

// Property: Differentiate approximately inverts Integrate for smooth
// band-limited signals.
func TestDifferentiateInvertsIntegrate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dt := 500, 0.01
		// Smooth random signal: a few random low-frequency sines.
		x := make([]float64, n)
		for h := 0; h < 4; h++ {
			amp, freq, ph := rng.NormFloat64(), rng.Float64()*2+0.1, rng.Float64()*2*math.Pi
			for i := range x {
				x[i] += amp * math.Sin(2*math.Pi*freq*float64(i)*dt+ph)
			}
		}
		back := Differentiate(Integrate(x, dt), dt)
		// First-difference of a trapezoid integral equals the midpoint
		// average (x[i]+x[i-1])/2, so compare against that.
		for i := 1; i < n; i++ {
			want := (x[i] + x[i-1]) / 2
			if math.Abs(back[i]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsMax(t *testing.T) {
	cases := []struct {
		x    []float64
		peak float64
		idx  int
	}{
		{nil, 0, -1},
		{[]float64{0}, 0, 0},
		{[]float64{1, -3, 2}, 3, 1},
		{[]float64{-1, -1, -5, 4}, 5, 2},
		{[]float64{2, 2}, 2, 0}, // first occurrence wins
	}
	for i, c := range cases {
		peak, idx := AbsMax(c.x)
		if peak != c.peak || idx != c.idx {
			t.Errorf("case %d: AbsMax = (%g, %d), want (%g, %d)", i, peak, idx, c.peak, c.idx)
		}
	}
}

func TestPolynomialDetrendRemovesExactPolynomial(t *testing.T) {
	// x(t) = 2 - 3t + 5t^2 on t in [0,1] plus a sine: the fit removes the
	// polynomial part exactly and leaves the sine (which is orthogonal
	// enough over many cycles).
	n := 2000
	x := make([]float64, n)
	for i := range x {
		tt := float64(i) / float64(n-1)
		x[i] = 2 - 3*tt + 5*tt*tt
	}
	coef, err := PolynomialDetrend(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, -3, 5}
	for i := range want {
		if math.Abs(coef[i]-want[i]) > 1e-6 {
			t.Errorf("coef[%d] = %g, want %g", i, coef[i], want[i])
		}
	}
	for i, v := range x {
		if math.Abs(v) > 1e-6 {
			t.Fatalf("residual[%d] = %g, want 0", i, v)
		}
	}
}

func TestPolynomialDetrendOrderZeroIsDemean(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{1, 2, 3, 4}
	coef, err := PolynomialDetrend(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean := Demean(b)
	if math.Abs(coef[0]-mean) > 1e-12 {
		t.Errorf("order-0 coefficient %g != mean %g", coef[0], mean)
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Errorf("order-0 residual differs from demean at %d", i)
		}
	}
}

func TestPolynomialDetrendErrors(t *testing.T) {
	if _, err := PolynomialDetrend([]float64{1, 2}, -1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := PolynomialDetrend([]float64{1, 2}, 7); err == nil {
		t.Error("huge order accepted")
	}
	if _, err := PolynomialDetrend([]float64{1, 2}, 2); err == nil {
		t.Error("underdetermined fit accepted")
	}
	coef, err := PolynomialDetrend(nil, 2)
	if err != nil || len(coef) != 3 {
		t.Errorf("empty input: %v, %v", coef, err)
	}
}

// Property: residual after PolynomialDetrend is orthogonal to all fitted
// powers of t (normal equations satisfied).
func TestPolynomialDetrendOrthogonality(t *testing.T) {
	f := func(seed int64, orderRaw uint8) bool {
		order := int(orderRaw) % 4
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		x := make([]float64, n)
		for i := range x {
			tt := float64(i) / float64(n-1)
			x[i] = rng.NormFloat64() + 3*tt*tt - tt
		}
		if _, err := PolynomialDetrend(x, order); err != nil {
			return false
		}
		for p := 0; p <= order; p++ {
			var dot float64
			for i, v := range x {
				tt := float64(i) / float64(n-1)
				dot += v * math.Pow(tt, float64(p))
			}
			if math.Abs(dot) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
