package dsp

import (
	"math"
	"testing"
)

func testInstrument() Instrument {
	return Instrument{F0: 25, Damping: 0.7} // SMA-1 style analog sensor
}

func TestInstrumentValidate(t *testing.T) {
	if err := testInstrument().Validate(); err != nil {
		t.Fatalf("valid instrument rejected: %v", err)
	}
	bad := []Instrument{
		{F0: 0, Damping: 0.7},
		{F0: -5, Damping: 0.7},
		{F0: 25, Damping: 0},
		{F0: 25, Damping: 2.5},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, in)
		}
	}
}

func TestInstrumentTransferShape(t *testing.T) {
	in := testInstrument()
	// Flat (gain ~1) well below the corner.
	for _, f := range []float64{0.1, 1, 5} {
		if g := cmplxAbs(in.transfer(f)); math.Abs(g-1) > 0.1 {
			t.Errorf("gain at %g Hz = %g, want ~1", f, g)
		}
	}
	// Attenuating above the corner.
	if g := cmplxAbs(in.transfer(100)); g > 0.1 {
		t.Errorf("gain at 100 Hz = %g, want << 1", g)
	}
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestInstrumentSimulateAttenuatesHighFrequency(t *testing.T) {
	in := testInstrument()
	dt := 0.002 // 500 Hz sampling so 100 Hz is well resolved
	n := 8192
	low := make([]float64, n)
	high := make([]float64, n)
	for i := range low {
		ti := float64(i) * dt
		low[i] = math.Sin(2 * math.Pi * 2 * ti)
		high[i] = math.Sin(2 * math.Pi * 100 * ti)
	}
	recLow, err := in.Simulate(low, dt)
	if err != nil {
		t.Fatal(err)
	}
	recHigh, err := in.Simulate(high, dt)
	if err != nil {
		t.Fatal(err)
	}
	rms := func(x []float64) float64 {
		var s float64
		for _, v := range x[1000 : n-1000] {
			s += v * v
		}
		return math.Sqrt(s / float64(n-2000))
	}
	// RMS of a unit sine is 0.707; the 2 Hz tone passes ~unchanged.
	if r := rms(recLow); math.Abs(r-0.707) > 0.1 {
		t.Errorf("low-frequency RMS after instrument = %g, want ~0.707", r)
	}
	if rms(recHigh) > 0.15 {
		t.Errorf("100 Hz RMS after 25 Hz instrument = %g, want strong attenuation", rms(recHigh))
	}
}

func TestInstrumentCorrectInvertsSimulate(t *testing.T) {
	in := testInstrument()
	dt := 0.005
	n := 8192
	// Band-limited ground motion (2-10 Hz content, well below F0).
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) * dt
		env := math.Exp(-math.Pow(ti-20, 2) / 50)
		x[i] = env * (math.Sin(2*math.Pi*3*ti) + 0.5*math.Sin(2*math.Pi*8*ti))
	}
	recorded, err := in.Simulate(x, dt)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := in.Correct(recorded, dt, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var num, den float64
	for i := 500; i < n-500; i++ {
		d := restored[i] - x[i]
		num += d * d
		den += x[i] * x[i]
	}
	if rel := math.Sqrt(num / den); rel > 0.02 {
		t.Errorf("relative restoration error = %g, want < 2%%", rel)
	}
}

func TestInstrumentCorrectErrors(t *testing.T) {
	in := testInstrument()
	if _, err := in.Correct([]float64{1, 2}, 0, 0.05); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := in.Correct([]float64{1, 2}, 0.01, -0.1); err == nil {
		t.Error("negative water level accepted")
	}
	if _, err := in.Correct([]float64{1, 2}, 0.01, 1.5); err == nil {
		t.Error("water level >= 1 accepted")
	}
	if _, err := (Instrument{}).Correct([]float64{1}, 0.01, 0.05); err == nil {
		t.Error("invalid instrument accepted")
	}
	out, err := in.Correct(nil, 0.01, 0.05)
	if err != nil || out != nil {
		t.Errorf("empty input: %v, %v", out, err)
	}
}

func TestInstrumentWaterLevelBoundsNoiseAmplification(t *testing.T) {
	// Correcting broadband noise must not blow up the out-of-band part by
	// more than 1/waterLevel.
	in := testInstrument()
	dt := 0.002
	x := randSignal(8192)
	corrected, err := in.Correct(x, dt, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rmsIn, rmsOut := 0.0, 0.0
	for i := range x {
		rmsIn += x[i] * x[i]
		rmsOut += corrected[i] * corrected[i]
	}
	if rmsOut > rmsIn/(0.05*0.05)*1.1 {
		t.Errorf("correction amplified noise beyond the water-level bound: %g vs %g", rmsOut, rmsIn)
	}
}
