package dsp

import (
	"math"
	"testing"
)

func lowFreqSine(n int, dt, freq float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * freq * float64(i) * dt)
	}
	return x
}

func TestDecimatePreservesLowFrequencySignal(t *testing.T) {
	// A 2 Hz sine sampled at 200 Hz decimated to 100 Hz must match the
	// directly sampled 100 Hz version away from the edges.
	n := 8000
	x := lowFreqSine(n, 0.005, 2)
	got, err := Decimate(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n/2 {
		t.Fatalf("len = %d, want %d", len(got), n/2)
	}
	want := lowFreqSine(n/2, 0.01, 2)
	for i := 200; i < len(got)-200; i++ {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestDecimateRemovesAliasedContent(t *testing.T) {
	// 45 Hz content at 200 Hz sampling would alias to 5 Hz after naive
	// 2x decimation; the anti-alias filter must suppress it.
	n := 8000
	x := lowFreqSine(n, 0.005, 45)
	got, err := Decimate(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	var rms float64
	for i := 200; i < len(got)-200; i++ {
		rms += got[i] * got[i]
	}
	rms = math.Sqrt(rms / float64(len(got)-400))
	if rms > 0.02 {
		t.Errorf("aliased RMS = %g, want ~0 (45 Hz must not survive 100 Hz Nyquist*0.8)", rms)
	}
}

func TestDecimateEdgeCases(t *testing.T) {
	if _, err := Decimate([]float64{1, 2}, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	if _, err := Decimate([]float64{1, 2}, -3); err == nil {
		t.Error("negative factor accepted")
	}
	got, err := Decimate([]float64{1, 2, 3}, 1)
	if err != nil || len(got) != 3 || got[0] != 1 {
		t.Errorf("identity decimation: %v, %v", got, err)
	}
	empty, err := Decimate(nil, 2)
	if err != nil || empty != nil {
		t.Errorf("empty input: %v, %v", empty, err)
	}
}

func TestInterpolatePreservesSignal(t *testing.T) {
	// A 2 Hz sine at 100 Hz interpolated 2x must match the directly
	// sampled 200 Hz version away from the edges.
	n := 4000
	x := lowFreqSine(n, 0.01, 2)
	got, err := Interpolate(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2*n {
		t.Fatalf("len = %d, want %d", len(got), 2*n)
	}
	want := lowFreqSine(2*n, 0.005, 2)
	for i := 400; i < len(got)-400; i++ {
		if math.Abs(got[i]-want[i]) > 0.01 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestInterpolateEdgeCases(t *testing.T) {
	if _, err := Interpolate([]float64{1}, 0); err == nil {
		t.Error("factor 0 accepted")
	}
	got, err := Interpolate([]float64{5, 6}, 1)
	if err != nil || len(got) != 2 || got[1] != 6 {
		t.Errorf("identity interpolation: %v, %v", got, err)
	}
	empty, err := Interpolate(nil, 3)
	if err != nil || empty != nil {
		t.Errorf("empty input: %v, %v", empty, err)
	}
}

func TestResampleTrace(t *testing.T) {
	// 200 Hz -> 100 Hz (ratio 2).
	n := 8000
	x := lowFreqSine(n, 0.005, 3)
	got, err := ResampleTrace(x, 0.005, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want := lowFreqSine(n/2, 0.01, 3)
	for i := 300; i < len(got)-300; i++ {
		if math.Abs(got[i]-want[i]) > 0.02 {
			t.Fatalf("sample %d: %g vs %g", i, got[i], want[i])
		}
	}
	// 100 Hz -> 250 Hz (ratio 2/5): interpolate 5, decimate 2.
	y := lowFreqSine(2000, 0.01, 3)
	up, err := ResampleTrace(y, 0.01, 0.004)
	if err != nil {
		t.Fatal(err)
	}
	wantUp := lowFreqSine(5000, 0.004, 3)
	if math.Abs(float64(len(up)-len(wantUp))) > 3 {
		t.Fatalf("len = %d, want ~%d", len(up), len(wantUp))
	}
	for i := 1000; i < len(up)-1000 && i < len(wantUp); i++ {
		if math.Abs(up[i]-wantUp[i]) > 0.03 {
			t.Fatalf("sample %d: %g vs %g", i, up[i], wantUp[i])
		}
	}
}

func TestResampleTraceErrors(t *testing.T) {
	if _, err := ResampleTrace([]float64{1}, 0, 0.01); err == nil {
		t.Error("zero dtIn accepted")
	}
	if _, err := ResampleTrace([]float64{1}, 0.01, -1); err == nil {
		t.Error("negative dtOut accepted")
	}
	if _, err := ResampleTrace([]float64{1}, 0.01, 0.01*math.Pi); err == nil {
		t.Error("irrational ratio accepted")
	}
}
