package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Instrument models an accelerograph transducer as a single-degree-of-
// freedom system with natural frequency F0 (Hz) and damping ratio Damping.
// Force-balance accelerometers are flat well below F0 (typically 50-200 Hz)
// and attenuate above it; analog SMA-1 style instruments, which recorded a
// large part of the Salvadoran archive, have F0 near 25 Hz where the
// response already distorts engineering frequencies.
type Instrument struct {
	F0      float64 // natural frequency, Hz
	Damping float64 // fraction of critical, e.g. 0.6-0.7 for analog sensors
}

// Validate reports physically impossible instruments.
func (in Instrument) Validate() error {
	if in.F0 <= 0 {
		return fmt.Errorf("dsp: instrument natural frequency %g must be positive", in.F0)
	}
	if in.Damping <= 0 || in.Damping >= 2 {
		return fmt.Errorf("dsp: instrument damping %g outside (0,2)", in.Damping)
	}
	return nil
}

// transfer evaluates the transducer's frequency response at f Hz: the
// normalized acceleration response H(f) = -f0² / (f² - f0² - 2i ξ f f0),
// which tends to 1 for f << f0.
func (in Instrument) transfer(f float64) complex128 {
	f0 := in.F0
	den := complex(f*f-f0*f0, 2*in.Damping*f*f0)
	return complex(-f0*f0, 0) / den
}

// Simulate applies the instrument's transfer function to a true ground
// acceleration, producing what the transducer would record.
func (in Instrument) Simulate(x []float64, dt float64) ([]float64, error) {
	return in.applyTransfer(x, dt, false)
}

// Correct removes the instrument response from a recorded signal,
// recovering true ground acceleration.  Deconvolution is regularized with a
// water level: spectral bins where |H| falls below waterLevel·max|H| are
// clamped, so the correction does not blow up noise far above the sensor
// corner.  A waterLevel of 0 selects the conventional 0.05.
func (in Instrument) Correct(x []float64, dt, waterLevel float64) ([]float64, error) {
	if waterLevel == 0 {
		waterLevel = 0.05
	}
	if waterLevel < 0 || waterLevel >= 1 {
		return nil, fmt.Errorf("dsp: water level %g outside [0,1)", waterLevel)
	}
	return in.applyTransfer(x, dt, true, waterLevel)
}

func (in Instrument) applyTransfer(x []float64, dt float64, inverse bool, waterLevel ...float64) ([]float64, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if dt <= 0 {
		return nil, fmt.Errorf("dsp: non-positive sample interval %g", dt)
	}
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	m := NextPow2(2 * n) // zero padding halves circular wrap-around
	buf := make([]complex128, m)
	for i, v := range x {
		buf[i] = complex(v, 0)
	}
	spec := FFT(buf)
	df := 1 / (float64(m) * dt)

	var wl float64
	if inverse {
		wl = waterLevel[0]
	}
	for k := 0; k <= m/2; k++ {
		f := float64(k) * df
		h := in.transfer(f)
		var g complex128
		if !inverse {
			g = h
		} else {
			// Water-level regularized inverse: |H| is clamped from below
			// at wl (the DC gain is 1, so max|H| ~ 1 for realistic
			// dampings).
			if cmplx.Abs(h) < wl {
				h = h * complex(wl/cmplx.Abs(h), 0)
			}
			g = 1 / h
		}
		spec[k] *= g
		if k > 0 && k < m/2 {
			spec[m-k] *= cmplx.Conj(g)
		}
	}
	out := IFFT(spec)
	res := make([]float64, n)
	for i := range res {
		res[i] = real(out[i])
	}
	// Guard against numerical blow-up from an ill-conditioned inverse.
	for i, v := range res {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("dsp: instrument correction produced non-finite sample %d", i)
		}
	}
	return res, nil
}
