package dsp

import (
	"fmt"
	"math"
)

// Demean subtracts the arithmetic mean from x in place and returns the mean
// that was removed.
func Demean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum float64
	for _, v := range x {
		sum += v
	}
	mean := sum / float64(len(x))
	for i := range x {
		x[i] -= mean
	}
	return mean
}

// Detrend removes the least-squares straight line from x in place and
// returns the removed intercept and slope (slope per sample).  Baseline
// correction of accelerograms starts with exactly this operation.
func Detrend(x []float64) (intercept, slope float64) {
	n := len(x)
	if n == 0 {
		return 0, 0
	}
	if n == 1 {
		c := x[0]
		x[0] = 0
		return c, 0
	}
	// Closed-form simple linear regression against t = 0..n-1.
	var sumY, sumTY float64
	for i, v := range x {
		sumY += v
		sumTY += float64(i) * v
	}
	fn := float64(n)
	sumT := fn * (fn - 1) / 2
	sumT2 := (fn - 1) * fn * (2*fn - 1) / 6
	den := fn*sumT2 - sumT*sumT
	slope = (fn*sumTY - sumT*sumY) / den
	intercept = (sumY - slope*sumT) / fn
	for i := range x {
		x[i] -= intercept + slope*float64(i)
	}
	return intercept, slope
}

// Integrate computes the cumulative trapezoidal integral of x with sample
// interval dt, assuming the signal is zero before the first sample.  The
// result has the same length as x; result[0] is x[0]*dt/2 (the first
// half-trapezoid from the implicit leading zero).  Applying Integrate to an
// acceleration trace yields velocity; applying it again yields displacement.
func Integrate(x []float64, dt float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	half := dt / 2
	prev := 0.0
	acc := 0.0
	for i, v := range x {
		acc += (prev + v) * half
		out[i] = acc
		prev = v
	}
	return out
}

// Differentiate computes the first difference derivative of x with sample
// interval dt: out[0] = x[0]/dt (difference against the implicit leading
// zero) and out[i] = (x[i]-x[i-1])/dt.  It is the discrete inverse of the
// rectangle-rule integral and approximately inverts Integrate.
func Differentiate(x []float64, dt float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	out[0] = x[0] / dt
	for i := 1; i < len(x); i++ {
		out[i] = (x[i] - x[i-1]) / dt
	}
	return out
}

// AbsMax returns the maximum absolute value in x and its index; for an empty
// slice it returns (0, -1).  Peak ground motion values (PGA, PGV, PGD) are
// absolute maxima of the respective traces.
func AbsMax(x []float64) (peak float64, idx int) {
	idx = -1
	for i, v := range x {
		a := v
		if a < 0 {
			a = -a
		}
		if a > peak || idx == -1 {
			peak, idx = a, i
		}
	}
	if idx == -1 {
		return 0, -1
	}
	return peak, idx
}

// PolynomialDetrend removes the least-squares polynomial of the given order
// (0 = mean, 1 = straight line, 2-3 = the curved baselines analog
// digitization leaves behind) from x in place and returns the removed
// coefficients, lowest order first.  The normal equations are solved with
// Gaussian elimination on the (order+1)² moment matrix over the normalized
// time axis t in [0, 1], which keeps the system well-conditioned for the
// small orders baseline correction uses.
func PolynomialDetrend(x []float64, order int) ([]float64, error) {
	if order < 0 || order > 6 {
		return nil, fmt.Errorf("dsp: polynomial order %d outside [0, 6]", order)
	}
	n := len(x)
	if n == 0 {
		return make([]float64, order+1), nil
	}
	if n <= order {
		return nil, fmt.Errorf("dsp: %d samples cannot fit an order-%d polynomial", n, order)
	}
	m := order + 1
	// Moments: A[i][j] = sum t^(i+j), b[i] = sum t^i x.
	powSums := make([]float64, 2*m-1)
	b := make([]float64, m)
	scale := 1.0
	if n > 1 {
		scale = 1 / float64(n-1)
	}
	for k := 0; k < n; k++ {
		t := float64(k) * scale
		tp := 1.0
		for i := 0; i < 2*m-1; i++ {
			powSums[i] += tp
			if i < m {
				b[i] += tp * x[k]
			}
			tp *= t
		}
	}
	a := make([][]float64, m)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = powSums[i+j]
		}
	}
	coef, err := solveGauss(a, b)
	if err != nil {
		return nil, err
	}
	for k := 0; k < n; k++ {
		t := float64(k) * scale
		tp := 1.0
		var fit float64
		for i := 0; i < m; i++ {
			fit += coef[i] * tp
			tp *= t
		}
		x[k] -= fit
	}
	return coef, nil
}

// solveGauss solves a small dense linear system with partial pivoting,
// modifying its inputs.
func solveGauss(a [][]float64, b []float64) ([]float64, error) {
	m := len(b)
	for col := 0; col < m; col++ {
		pivot := col
		for r := col + 1; r < m; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("dsp: singular normal equations at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < m; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	out := make([]float64, m)
	for r := m - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < m; c++ {
			sum -= a[r][c] * out[c]
		}
		out[r] = sum / a[r][r]
	}
	return out, nil
}
