package dsp

import "math"

// This file holds the incremental (chunk-at-a-time) counterparts of the
// whole-record kernels used by the streaming execution plane.  Every helper
// here is bit-identical to its batch twin: the same operations in the same
// order on the same float64 values, so a streamed run produces byte-identical
// output files.  Each helper documents the batch function it mirrors; tests
// in stream_test.go pin the equivalence sample by sample.

// MeanAccum accumulates the running sum needed to reproduce Demean's mean
// over a signal delivered in chunks.  Additions happen in sample order, so
// the final mean is bit-identical to Demean's.
type MeanAccum struct {
	n   int
	sum float64
}

// Observe adds one sample.
func (a *MeanAccum) Observe(v float64) {
	a.sum += v
	a.n++
}

// ObserveSlice adds a run of samples in order.
func (a *MeanAccum) ObserveSlice(vs []float64) {
	for _, v := range vs {
		a.sum += v
	}
	a.n += len(vs)
}

// Mean returns the mean exactly as Demean computes it; zero for no samples.
func (a *MeanAccum) Mean() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// TrendAccum accumulates the two sums of Detrend's closed-form linear
// regression over a signal delivered in chunks.  Each accumulator is summed
// in sample order, matching Detrend's single loop bit for bit.
type TrendAccum struct {
	n           int
	sumY, sumTY float64
}

// Observe adds one sample (the index is tracked internally).
func (a *TrendAccum) Observe(v float64) {
	a.sumY += v
	a.sumTY += float64(a.n) * v
	a.n++
}

// Line returns the least-squares intercept and slope exactly as Detrend
// computes them, including the n==1 degenerate case (the sample itself is
// the intercept, slope zero).
func (a *TrendAccum) Line() (intercept, slope float64) {
	if a.n == 0 {
		return 0, 0
	}
	if a.n == 1 {
		return a.sumY, 0
	}
	fn := float64(a.n)
	sumT := fn * (fn - 1) / 2
	sumT2 := (fn - 1) * fn * (2*fn - 1) / 6
	den := fn*sumT2 - sumT*sumT
	slope = (fn*a.sumTY - sumT*a.sumY) / den
	intercept = (a.sumY - slope*sumT) / fn
	return intercept, slope
}

// Taper evaluates CosineTaper's split cosine-bell as a per-position factor,
// so a streamed pass can apply the identical taper without holding the whole
// signal.  Factor reports whether position p is inside a ramp and, if so,
// the exact weight CosineTaper would multiply by; outside the ramps the
// sample must be left untouched (not multiplied by 1.0), matching the batch
// kernel exactly.
type Taper struct {
	n, m int
}

// NewTaper captures the taper geometry for an n-sample signal and the given
// end fraction, with the same clamping rules as CosineTaper.
func NewTaper(n int, fraction float64) Taper {
	if n == 0 || fraction <= 0 {
		return Taper{n: n}
	}
	if fraction > 0.5 {
		fraction = 0.5
	}
	m := int(fraction * float64(n))
	if m < 1 {
		return Taper{n: n}
	}
	return Taper{n: n, m: m}
}

// Factor returns the ramp weight at position p and whether one applies.
func (t Taper) Factor(p int) (float64, bool) {
	if t.m == 0 {
		return 0, false
	}
	if p < t.m {
		return 0.5 * (1 - math.Cos(math.Pi*float64(p)/float64(t.m))), true
	}
	if p >= t.n-t.m {
		i := t.n - 1 - p
		return 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(t.m))), true
	}
	return 0, false
}

// StreamingFIR applies a FIRFilter to a signal of known length delivered in
// chunks, emitting the delay-compensated output in order.  The inner
// convolution loop is a verbatim copy of FIRFilter.Apply's — same clamps,
// same accumulation order — reading history from a ring of the last
// len(Taps) inputs, so every output sample is bit-identical to the batch
// filter's.
type StreamingFIR struct {
	taps  []float64
	delay int
	n     int       // total input length, known up front
	ring  []float64 // last m inputs; ring[k%m] holds input k
	k     int       // inputs consumed so far
}

// NewStreamingFIR prepares a streaming application of f over an n-sample
// signal.
func NewStreamingFIR(f *FIRFilter, n int) *StreamingFIR {
	return &StreamingFIR{
		taps:  f.Taps,
		delay: f.Delay(),
		n:     n,
		ring:  make([]float64, len(f.Taps)),
	}
}

// emit computes output sample i exactly as Apply does.
func (s *StreamingFIR) emit(i int) float64 {
	taps := s.taps
	m := len(taps)
	center := i + s.delay
	jLo := center - (s.n - 1)
	if jLo < 0 {
		jLo = 0
	}
	jHi := m - 1
	if center < jHi {
		jHi = center
	}
	var acc float64
	for j := jLo; j <= jHi; j++ {
		acc += taps[j] * s.ring[(center-j)%m]
	}
	return acc
}

// Push consumes the next run of input samples in order, appending any output
// samples that become computable to out and returning the extended slice.
// Output sample i needs input i+delay, so Push lags the input by the group
// delay; Finish flushes the tail.
func (s *StreamingFIR) Push(x []float64, out []float64) []float64 {
	if s.n == 0 {
		return out
	}
	m := len(s.taps)
	for _, v := range x {
		s.ring[s.k%m] = v
		// Input k enables output k-delay.
		if i := s.k - s.delay; i >= 0 && i < s.n {
			out = append(out, s.emit(i))
		}
		s.k++
	}
	return out
}

// Finish emits the remaining tail outputs (those whose center index lies
// beyond the last input, where Apply reads zeros past the end) after all n
// inputs have been pushed.
func (s *StreamingFIR) Finish(out []float64) []float64 {
	if s.n == 0 {
		return out
	}
	start := s.k - s.delay
	if start < 0 {
		start = 0
	}
	for i := start; i < s.n; i++ {
		out = append(out, s.emit(i))
	}
	return out
}

// StreamingIntegrator computes the cumulative trapezoidal integral of a
// signal delivered sample by sample, mirroring Integrate's loop exactly.
type StreamingIntegrator struct {
	half, prev, acc float64
}

// NewStreamingIntegrator returns an integrator for sample interval dt.
func NewStreamingIntegrator(dt float64) *StreamingIntegrator {
	return &StreamingIntegrator{half: dt / 2}
}

// Next consumes the next sample and returns the integral through it.
func (g *StreamingIntegrator) Next(v float64) float64 {
	g.acc += (g.prev + v) * g.half
	g.prev = v
	return g.acc
}

// PeakTracker tracks the absolute maximum of a streamed signal with
// AbsMax's exact comparison semantics (first occurrence wins on ties via
// strict greater-than, NaN handling included).
type PeakTracker struct {
	peak float64
	idx  int
	seen bool
}

// Observe considers sample v at position i; positions must arrive in order.
func (p *PeakTracker) Observe(i int, v float64) {
	a := v
	if a < 0 {
		a = -a
	}
	if a > p.peak || !p.seen {
		p.peak, p.idx = a, i
	}
	p.seen = true
}

// Peak returns the tracked maximum and its index ((0, -1) if no samples).
func (p *PeakTracker) Peak() (float64, int) {
	if !p.seen {
		return 0, -1
	}
	return p.peak, p.idx
}
