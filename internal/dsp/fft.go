// Package dsp implements the signal-processing substrate required by the
// accelerographic pipeline: FFTs of arbitrary length, Hamming-window FIR
// band-pass filter design and application, detrending, and time-domain
// integration of acceleration into velocity and displacement.
//
// The legacy system the paper parallelizes performs these operations inside
// Fortran programs; here they are reimplemented from scratch on float64
// slices using only the standard library.
package dsp

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// FFT computes the in-place-free discrete Fourier transform of x and returns
// a new slice.  Any input length is supported: powers of two use an
// iterative radix-2 Cooley-Tukey kernel; other lengths fall back to
// Bluestein's chirp-z algorithm (which itself runs on the radix-2 kernel).
// An empty input yields an empty output.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	return out
}

// IFFT computes the inverse DFT of x (including the 1/N normalization) and
// returns a new slice.
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	return out
}

// FFTReal transforms a real-valued signal and returns the full complex
// spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	fftInPlace(c, false)
	return c
}

// FFTInto computes the DFT of x into the caller-provided dst and returns
// dst.  len(dst) must equal len(x); dst may alias x.  Power-of-two lengths
// allocate nothing; other lengths draw their convolution scratch from a
// pool, so steady-state repeated transforms are allocation-free.
func FFTInto(dst, x []complex128) []complex128 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: FFTInto buffer length %d != signal length %d", len(dst), len(x)))
	}
	copy(dst, x)
	fftInPlace(dst, false)
	return dst
}

// IFFTInto computes the inverse DFT of x (including the 1/N normalization)
// into dst and returns dst, under the same aliasing and allocation contract
// as FFTInto.
func IFFTInto(dst, x []complex128) []complex128 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: IFFTInto buffer length %d != signal length %d", len(dst), len(x)))
	}
	copy(dst, x)
	fftInPlace(dst, true)
	return dst
}

// FFTRealInto transforms a real-valued signal into the caller-provided
// complex buffer and returns it, under the same contract as FFTInto.
func FFTRealInto(dst []complex128, x []float64) []complex128 {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("dsp: FFTRealInto buffer length %d != signal length %d", len(dst), len(x)))
	}
	for i, v := range x {
		dst[i] = complex(v, 0)
	}
	fftInPlace(dst, false)
	return dst
}

// cxScratch pools complex work buffers.  The pipeline transforms many
// same-length signals back to back (three components per record, three
// spectra per component), so the steady state reuses one buffer instead of
// allocating a transform-sized slice per call.
var cxScratch sync.Pool // of *[]complex128

func getCx(n int) *[]complex128 {
	if v, ok := cxScratch.Get().(*[]complex128); ok && cap(*v) >= n {
		*v = (*v)[:n]
		return v
	}
	s := make([]complex128, n)
	return &s
}

func putCx(s *[]complex128) { cxScratch.Put(s) }

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPow2(n) {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 performs an iterative in-place Cooley-Tukey FFT.  len(x) must be a
// power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// Twiddle for this butterfly size.
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// bluesteinTab holds the length-dependent constants of the chirp-z
// transform: the chirp sequence and the forward transform of the
// conjugate-chirp convolution filter.  Both depend only on (n, inverse), so
// they are built once per distinct length and shared — record lengths repeat
// across components and stations, and rebuilding the filter spectrum costs
// two of the three radix-2 passes of a transform.
type bluesteinTab struct {
	m     int          // power-of-two convolution length
	chirp []complex128 // w[k] = exp(sign*i*pi*k^2/n), length n
	bhat  []complex128 // forward FFT of the conjugate-chirp filter, length m
}

type bluesteinKey struct {
	n       int
	inverse bool
}

var bluesteinTabs sync.Map // map[bluesteinKey]*bluesteinTab

func bluesteinTabFor(n int, inverse bool) *bluesteinTab {
	key := bluesteinKey{n, inverse}
	if v, ok := bluesteinTabs.Load(key); ok {
		return v.(*bluesteinTab)
	}
	m := NextPow2(2*n - 1)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[k] = exp(sign * i*pi*k^2/n).  Compute k^2 mod 2n to keep the
	// angle argument small and the chirp numerically exact for large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		k2 := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(k2)/float64(n))
	}
	b := make([]complex128, m)
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	radix2(b, false)
	// Concurrent builders compute identical tables; keep whichever landed.
	v, _ := bluesteinTabs.LoadOrStore(key, &bluesteinTab{m: m, chirp: chirp, bhat: b})
	return v.(*bluesteinTab)
}

// bluestein computes an arbitrary-length DFT as a convolution, using
// power-of-two FFTs internally (chirp-z transform).  The chirp and filter
// constants come from the per-length table cache and the convolution buffer
// from the scratch pool, so repeated transforms of seen lengths allocate
// nothing — the operation sequence (and hence the result, bit for bit) is
// unchanged from the uncached form.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	tab := bluesteinTabFor(n, inverse)
	m := tab.m
	p := getCx(m)
	a := *p
	for k := 0; k < n; k++ {
		a[k] = x[k] * tab.chirp[k]
	}
	for k := n; k < m; k++ {
		a[k] = 0
	}
	radix2(a, false)
	for i := range a {
		a[i] *= tab.bhat[i]
	}
	radix2(a, true) // includes the 1/m inverse normalization
	for k := 0; k < n; k++ {
		x[k] = a[k] * tab.chirp[k]
	}
	putCx(p)
	if inverse {
		invN := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= invN
		}
	}
}

// AmplitudeSpectrum returns the single-sided amplitude spectrum of a real
// signal sampled at dt seconds: the first len(x)/2+1 FFT magnitudes scaled
// by dt (a discrete approximation of the continuous Fourier amplitude
// spectrum, the convention used for strong-motion Fourier spectra).
// It returns the amplitudes and the frequency step df in Hz.
func AmplitudeSpectrum(x []float64, dt float64) (amps []float64, df float64, err error) {
	if len(x) == 0 {
		return nil, 0, fmt.Errorf("dsp: amplitude spectrum of empty signal")
	}
	if dt <= 0 {
		return nil, 0, fmt.Errorf("dsp: non-positive sample interval %g", dt)
	}
	n := len(x)
	p := getCx(n)
	spec := FFTRealInto(*p, x)
	half := n/2 + 1
	amps = make([]float64, half)
	for i := 0; i < half; i++ {
		amps[i] = cmplx.Abs(spec[i]) * dt
	}
	putCx(p)
	df = 1 / (float64(n) * dt)
	return amps, df, nil
}
