package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: ApplyFFT agrees with the direct-form Apply to round-off, for
// random signals and realistic filters.
func TestApplyFFTMatchesDirect(t *testing.T) {
	fir, err := DesignBandPass(BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%3000 + 1
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, n)
		var scale float64
		for i := range x {
			x[i] = rng.NormFloat64() * 10
			if a := math.Abs(x[i]); a > scale {
				scale = a
			}
		}
		direct := fir.Apply(x)
		fast := fir.ApplyFFT(x)
		for i := range direct {
			if math.Abs(direct[i]-fast[i]) > 1e-9*(scale+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyFFTShortSignals(t *testing.T) {
	fir, err := DesignBandPass(BandPassSpec{FSL: 1, FPL: 2, FPH: 20, FSH: 25}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 2, len(fir.Taps) - 1, len(fir.Taps), len(fir.Taps) + 1} {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		direct := fir.Apply(x)
		fast := fir.ApplyFFT(x)
		if len(fast) != n {
			t.Fatalf("n=%d: output length %d", n, len(fast))
		}
		for i := range direct {
			if math.Abs(direct[i]-fast[i]) > 1e-9 {
				t.Fatalf("n=%d: mismatch at %d: %g vs %g", n, i, direct[i], fast[i])
			}
		}
	}
}

func TestConvolveKnownValues(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{1, 1})
	want := []float64{1, 3, 5, 3}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Error("empty input should yield nil")
	}
	if Convolve([]float64{1}, nil) != nil {
		t.Error("empty kernel should yield nil")
	}
}

// Property: Convolve matches the direct O(n*m) definition.
func TestConvolveMatchesDirect(t *testing.T) {
	f := func(seed int64, naRaw, nbRaw uint8) bool {
		na, nb := int(naRaw)%40+1, int(nbRaw)%40+1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := Convolve(a, b)
		want := make([]float64, na+nb-1)
		for i := range a {
			for j := range b {
				want[i+j] += a[i] * b[j]
			}
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterApplyFFT(b *testing.B) {
	fir, err := DesignBandPass(BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	x := randSignal(20000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir.ApplyFFT(x)
	}
}
