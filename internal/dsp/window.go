package dsp

import "math"

// HammingWindow returns the n-point symmetric Hamming window
// w[i] = 0.54 - 0.46*cos(2*pi*i/(n-1)).  For n == 1 it returns [1].
func HammingWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := range w {
		w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/den)
	}
	return w
}

// HannWindow returns the n-point symmetric Hann window.
func HannWindow(n int) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	if n == 1 {
		w[0] = 1
		return w
	}
	den := float64(n - 1)
	for i := range w {
		w[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/den))
	}
	return w
}

// ApplyWindow multiplies x element-wise by w in place.  The slices must have
// equal length; mismatched lengths apply over the shorter prefix, which is
// never what a caller wants, so ApplyWindow panics instead.
func ApplyWindow(x, w []float64) {
	if len(x) != len(w) {
		panic("dsp: ApplyWindow length mismatch")
	}
	for i := range x {
		x[i] *= w[i]
	}
}

// CosineTaper applies a split cosine-bell (Tukey) taper to the first and
// last fraction*len(x) samples of x in place.  Strong-motion processing
// tapers record ends before filtering and transforming to suppress edge
// ringing.  A fraction <= 0 leaves x unchanged; a fraction >= 0.5 degenerates
// to a full Hann window.
func CosineTaper(x []float64, fraction float64) {
	n := len(x)
	if n == 0 || fraction <= 0 {
		return
	}
	if fraction > 0.5 {
		fraction = 0.5
	}
	m := int(fraction * float64(n))
	if m < 1 {
		return
	}
	for i := 0; i < m; i++ {
		w := 0.5 * (1 - math.Cos(math.Pi*float64(i)/float64(m)))
		x[i] *= w
		x[n-1-i] *= w
	}
}
