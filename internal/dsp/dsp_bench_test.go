package dsp

import (
	"fmt"
	"math/rand"
	"testing"
)

func randSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func BenchmarkFFTPow2(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%7)-3, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFT(x)
			}
		})
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	// Non-power-of-two sizes typical of real record lengths.
	for _, n := range []int{7300, 20000, 35000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%11)-5, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFT(x)
			}
		})
	}
}

func BenchmarkAmplitudeSpectrum(b *testing.B) {
	x := randSignal(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := AmplitudeSpectrum(x, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignBandPass(b *testing.B) {
	spec := BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DesignBandPass(spec, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterApply(b *testing.B) {
	spec := BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
	fir, err := DesignBandPass(spec, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{7300, 20000} {
		n := n
		b.Run(fmt.Sprintf("n=%d/taps=%d", n, len(fir.Taps)), func(b *testing.B) {
			x := randSignal(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fir.Apply(x)
			}
		})
	}
}

func BenchmarkIntegrate(b *testing.B) {
	x := randSignal(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Integrate(x, 0.01)
	}
}

func BenchmarkDetrend(b *testing.B) {
	base := randSignal(20000)
	x := make([]float64, len(base))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(x, base)
		Detrend(x)
	}
}
