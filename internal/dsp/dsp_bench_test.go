package dsp

import (
	"fmt"
	"math/rand"
	"testing"
)

func randSignal(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func BenchmarkFFTPow2(b *testing.B) {
	for _, n := range []int{1 << 10, 1 << 12, 1 << 14, 1 << 16} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%7)-3, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFT(x)
			}
		})
	}
}

func BenchmarkFFTBluestein(b *testing.B) {
	// Non-power-of-two sizes typical of real record lengths.
	for _, n := range []int{7300, 20000, 35000} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(float64(i%11)-5, 0)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FFT(x)
			}
		})
	}
}

func BenchmarkAmplitudeSpectrum(b *testing.B) {
	x := randSignal(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := AmplitudeSpectrum(x, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDesignBandPass(b *testing.B) {
	spec := BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DesignBandPass(spec, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterApply(b *testing.B) {
	spec := BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
	fir, err := DesignBandPass(spec, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{7300, 20000} {
		n := n
		b.Run(fmt.Sprintf("n=%d/taps=%d", n, len(fir.Taps)), func(b *testing.B) {
			x := randSignal(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fir.Apply(x)
			}
		})
	}
}

func BenchmarkIntegrate(b *testing.B) {
	x := randSignal(20000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Integrate(x, 0.01)
	}
}

func BenchmarkDetrend(b *testing.B) {
	base := randSignal(20000)
	x := make([]float64, len(base))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(x, base)
		Detrend(x)
	}
}

// TestFFTSteadyStateAllocations pins the hot-path allocation contract: once
// the per-length Bluestein tables exist, transforms into caller-provided
// buffers allocate nothing (pow2 and chirp-z alike), and an amplitude
// spectrum allocates only its returned slice.
func TestFFTSteadyStateAllocations(t *testing.T) {
	x := randSignal(7300) // non-power-of-two: exercises the chirp-z path
	buf := make([]complex128, len(x))
	FFTRealInto(buf, x) // build the n=7300 tables and warm the scratch pool
	if n := testing.AllocsPerRun(20, func() { FFTRealInto(buf, x) }); n > 0 {
		t.Errorf("FFTRealInto (bluestein) allocates %v per run, want 0", n)
	}

	cx := make([]complex128, 2048)
	copy(cx, buf)
	dst := make([]complex128, len(cx))
	if n := testing.AllocsPerRun(20, func() { FFTInto(dst, cx) }); n > 0 {
		t.Errorf("FFTInto (radix-2) allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() { IFFTInto(dst, cx) }); n > 0 {
		t.Errorf("IFFTInto (radix-2) allocates %v per run, want 0", n)
	}

	if n := testing.AllocsPerRun(20, func() {
		if _, _, err := AmplitudeSpectrum(x, 0.01); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("AmplitudeSpectrum allocates %v per run, want <= 1 (the result)", n)
	}
}

// TestFFTIntoMatchesFFT pins the caller-buffer variants to the allocating
// ones bit for bit, including aliasing dst == x.
func TestFFTIntoMatchesFFT(t *testing.T) {
	for _, n := range []int{64, 100, 7300} {
		sig := randSignal(n)
		x := make([]complex128, n)
		for i, v := range sig {
			x[i] = complex(v, 0)
		}
		want := FFT(x)
		dst := make([]complex128, n)
		FFTInto(dst, x)
		for i := range want {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: FFTInto[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
		if got := FFTRealInto(make([]complex128, n), sig); got[1] != want[1] {
			t.Errorf("n=%d: FFTRealInto differs from FFT", n)
		}
		alias := append([]complex128(nil), x...)
		FFTInto(alias, alias)
		for i := range want {
			if alias[i] != want[i] {
				t.Fatalf("n=%d: aliased FFTInto[%d] = %v, want %v", n, i, alias[i], want[i])
			}
		}
		wantInv := IFFT(want)
		IFFTInto(dst, want)
		for i := range wantInv {
			if dst[i] != wantInv[i] {
				t.Fatalf("n=%d: IFFTInto[%d] = %v, want %v", n, i, dst[i], wantInv[i])
			}
		}
	}
}
