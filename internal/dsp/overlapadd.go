package dsp

// ApplyFFT computes the same delay-compensated filtering as Apply, but via
// overlap-add FFT convolution: O(n log n) instead of O(n·taps).  The
// pipeline's corner filters routinely need thousands of taps (a 0.15 Hz
// transition at 100 Hz sampling costs ~2200), where the direct form is the
// bottleneck of the correction processes — this is the modern alternative
// benchmarked as an ablation against the legacy direct convolution.
//
// Results agree with Apply to floating-point round-off (a property test
// asserts agreement to ~1e-9 of the signal scale).
func (f *FIRFilter) ApplyFFT(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	m := len(f.Taps)
	// Block size: at least 4x the kernel, power of two.
	blockData := NextPow2(4 * m)
	fftSize := NextPow2(blockData + m - 1)
	blockData = fftSize - m + 1

	// Kernel spectrum, computed once, transformed in place.
	kernSpec := make([]complex128, fftSize)
	for i, t := range f.Taps {
		kernSpec[i] = complex(t, 0)
	}
	fftInPlace(kernSpec, false)

	delay := f.Delay()
	// One block buffer, transformed forth and back in place per block.
	buf := make([]complex128, fftSize)
	for start := 0; start < n; start += blockData {
		end := start + blockData
		if end > n {
			end = n
		}
		for i := range buf {
			buf[i] = 0
		}
		for i := start; i < end; i++ {
			buf[i-start] = complex(x[i], 0)
		}
		fftInPlace(buf, false)
		for i := range buf {
			buf[i] *= kernSpec[i]
		}
		fftInPlace(buf, true)
		conv := buf
		// Overlap-add into the delay-compensated output: full-convolution
		// index k = start + j maps to output index k - delay.
		for j := 0; j < end-start+m-1; j++ {
			oi := start + j - delay
			if oi < 0 || oi >= n {
				continue
			}
			out[oi] += real(conv[j])
		}
	}
	return out
}

// Convolve returns the full linear convolution of a and b (length
// len(a)+len(b)-1) using FFTs, exposed for spectral-domain processing
// utilities and tests.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	size := NextPow2(outLen)
	fa := make([]complex128, size)
	fb := make([]complex128, size)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	sa := FFT(fa)
	sb := FFT(fb)
	for i := range sa {
		sa[i] *= sb[i]
	}
	conv := IFFT(sa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(conv[i])
	}
	return out
}
