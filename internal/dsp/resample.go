package dsp

import (
	"fmt"
	"math"
)

// Decimate reduces the sample rate of x by an integer factor, applying an
// anti-alias low-pass (Hamming windowed sinc at 80% of the new Nyquist)
// before keeping every factor-th sample.  The paper's dataset mixes
// "a variety of equipment types and sampling rates"; decimation is how a
// chain normalizes 200 Hz instruments onto the common 100 Hz grid.
func Decimate(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor %d must be >= 1", factor)
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if len(x) == 0 {
		return nil, nil
	}
	filtered := antiAlias(x, factor)
	out := make([]float64, (len(x)+factor-1)/factor)
	for i := range out {
		out[i] = filtered[i*factor]
	}
	return out, nil
}

// antiAlias low-passes x at 0.8/(2*factor) cycles per sample with a
// Hamming-windowed sinc, delay compensated.
func antiAlias(x []float64, factor int) []float64 {
	cutoff := 0.8 / (2 * float64(factor)) // cycles/sample
	// Transition width 0.1/factor: taps = 3.3/width.
	taps := int(math.Ceil(3.3 * 10 * float64(factor)))
	if taps%2 == 0 {
		taps++
	}
	mid := (taps - 1) / 2
	w := HammingWindow(taps)
	h := make([]float64, taps)
	for i := range h {
		k := i - mid
		if k == 0 {
			h[i] = 2 * cutoff
		} else {
			h[i] = math.Sin(2*math.Pi*cutoff*float64(k)) / (math.Pi * float64(k))
		}
		h[i] *= w[i]
	}
	fir := &FIRFilter{Taps: h}
	if len(x) > 4*taps {
		return fir.ApplyFFT(x)
	}
	return fir.Apply(x)
}

// Interpolate increases the sample rate of x by an integer factor using
// band-limited (windowed-sinc) interpolation: zeros are inserted between
// samples and the image spectra removed with the same anti-alias filter,
// scaled by the factor to preserve amplitude.
func Interpolate(x []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: interpolation factor %d must be >= 1", factor)
	}
	if factor == 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out, nil
	}
	if len(x) == 0 {
		return nil, nil
	}
	up := make([]float64, len(x)*factor)
	for i, v := range x {
		up[i*factor] = v * float64(factor)
	}
	return antiAlias(up, factor), nil
}

// ResampleTrace converts a signal from sample interval dtIn to dtOut when
// the ratio is a small rational p/q (p, q <= 16): the signal is
// interpolated by p and decimated by q.  Irrational or extreme ratios are
// rejected.
func ResampleTrace(x []float64, dtIn, dtOut float64) ([]float64, error) {
	if dtIn <= 0 || dtOut <= 0 {
		return nil, fmt.Errorf("dsp: non-positive sample interval (%g, %g)", dtIn, dtOut)
	}
	ratio := dtOut / dtIn // decimation ratio
	const maxFactor = 16
	for q := 1; q <= maxFactor; q++ {
		p := ratio * float64(q)
		rp := math.Round(p)
		if rp >= 1 && rp <= maxFactor && math.Abs(p-rp) < 1e-9 {
			upsampled, err := Interpolate(x, q)
			if err != nil {
				return nil, err
			}
			return Decimate(upsampled, int(rp))
		}
	}
	return nil, fmt.Errorf("dsp: resampling ratio %g is not a small rational", ratio)
}
