package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func defaultSpec() BandPassSpec {
	return BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25}
}

func TestBandPassSpecValidate(t *testing.T) {
	dt := 0.01
	if err := defaultSpec().Validate(dt); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	bad := []BandPassSpec{
		{FSL: 0.3, FPL: 0.25, FPH: 23, FSH: 25},  // FSL >= FPL
		{FSL: -0.1, FPL: 0.25, FPH: 23, FSH: 25}, // negative FSL
		{FSL: 0.1, FPL: 24, FPH: 23, FSH: 25},    // FPL >= FPH
		{FSL: 0.1, FPL: 0.25, FPH: 26, FSH: 25},  // FPH >= FSH
		{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 80},  // FSH > Nyquist
	}
	for i, s := range bad {
		if err := s.Validate(dt); err == nil {
			t.Errorf("case %d: invalid spec %+v accepted", i, s)
		}
	}
	if err := defaultSpec().Validate(0); err == nil {
		t.Error("dt=0 accepted")
	}
}

func TestDesignBandPassFrequencyResponse(t *testing.T) {
	dt := 0.01 // 100 Hz sampling
	spec := defaultSpec()
	fir, err := DesignBandPass(spec, dt)
	if err != nil {
		t.Fatal(err)
	}
	if len(fir.Taps)%2 != 1 {
		t.Fatalf("tap count %d is even", len(fir.Taps))
	}
	// Pass band: response near 1.
	for _, f := range []float64{0.5, 1, 5, 10, 20} {
		if r := fir.Response(f, dt); math.Abs(r-1) > 0.05 {
			t.Errorf("pass band response at %g Hz = %g, want ~1", f, r)
		}
	}
	// Stop bands: response near 0.  The Hamming window gives ~53 dB
	// attenuation; 0.01 (40 dB) is a conservative bound.
	for _, f := range []float64{0.02, 0.05, 30, 45} {
		if r := fir.Response(f, dt); r > 0.01 {
			t.Errorf("stop band response at %g Hz = %g, want ~0", f, r)
		}
	}
}

func TestDesignBandPassRejectsInvalid(t *testing.T) {
	if _, err := DesignBandPass(BandPassSpec{}, 0.01); err == nil {
		t.Error("zero spec accepted")
	}
}

func TestFilterRemovesOutOfBandSine(t *testing.T) {
	dt := 0.01
	n := 8192
	inBand := make([]float64, n)   // 5 Hz, in the pass band
	outBand := make([]float64, n)  // 0.03 Hz, below FSL
	combined := make([]float64, n) // sum
	for i := 0; i < n; i++ {
		ti := float64(i) * dt
		inBand[i] = math.Sin(2 * math.Pi * 5 * ti)
		outBand[i] = 3 * math.Sin(2*math.Pi*0.03*ti)
		combined[i] = inBand[i] + outBand[i]
	}
	fir, err := DesignBandPass(defaultSpec(), dt)
	if err != nil {
		t.Fatal(err)
	}
	got := fir.Apply(combined)
	// Compare against the in-band component over the central region
	// (edges suffer from truncation since the drift is not tapered here).
	delay := fir.Delay()
	var rms, ref float64
	count := 0
	for i := 2 * delay; i < n-2*delay; i++ {
		d := got[i] - inBand[i]
		rms += d * d
		ref += inBand[i] * inBand[i]
		count++
	}
	if count == 0 {
		t.Fatal("record shorter than filter transients")
	}
	rms = math.Sqrt(rms / float64(count))
	ref = math.Sqrt(ref / float64(count))
	if rms > 0.05*ref {
		t.Errorf("residual RMS %g vs signal RMS %g: drift not removed", rms, ref)
	}
}

func TestApplyPreservesLengthAndAlignment(t *testing.T) {
	dt := 0.01
	fir, err := DesignBandPass(defaultSpec(), dt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 10, 100, 5000} {
		x := make([]float64, n)
		for i := range x {
			x[i] = math.Sin(2 * math.Pi * 2 * float64(i) * dt)
		}
		y := fir.Apply(x)
		if len(y) != n {
			t.Errorf("n=%d: output length %d", n, len(y))
		}
	}
	// Alignment: a pass-band burst must peak at (approximately) the same
	// sample after filtering, thanks to group-delay compensation.
	n := 4096
	x := make([]float64, n)
	for i := range x {
		ti := float64(i-n/2) * dt
		x[i] = math.Exp(-ti*ti/2) * math.Sin(2*math.Pi*5*float64(i)*dt)
	}
	_, wantIdx := AbsMax(x)
	_, gotIdx := AbsMax(fir.Apply(x))
	if d := gotIdx - wantIdx; d < -3 || d > 3 {
		t.Errorf("peak moved from %d to %d; group delay not compensated", wantIdx, gotIdx)
	}
}

func TestBandPassEndToEnd(t *testing.T) {
	dt := 0.005
	n := 8192
	x := make([]float64, n)
	for i := range x {
		ti := float64(i) * dt
		x[i] = math.Sin(2*math.Pi*3*ti) + 0.5 + 0.01*ti // signal + offset + drift
	}
	y, err := BandPass(x, dt, defaultSpec(), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != n {
		t.Fatalf("length %d, want %d", len(y), n)
	}
	// The offset and drift are out of band; mean of output ~ 0.
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(n)
	if math.Abs(mean) > 0.01 {
		t.Errorf("output mean %g, want ~0 after band-pass", mean)
	}
}

func TestBandPassPropagatesDesignError(t *testing.T) {
	if _, err := BandPass([]float64{1, 2}, 0.01, BandPassSpec{FSL: 5, FPL: 1, FPH: 10, FSH: 20}, 0.05); err == nil {
		t.Error("invalid spec not rejected")
	}
}

// Property: filtering is linear — Apply(a*x+y) == a*Apply(x)+Apply(y).
func TestFilterLinearity(t *testing.T) {
	dt := 0.01
	fir, err := DesignBandPass(defaultSpec(), dt)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, aRaw int8) bool {
		a := float64(aRaw) / 16
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(200)
		x := make([]float64, n)
		y := make([]float64, n)
		comb := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
			comb[i] = a*x[i] + y[i]
		}
		lhs := fir.Apply(comb)
		fx, fy := fir.Apply(x), fir.Apply(y)
		for i := range lhs {
			if math.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-9*(math.Abs(a)+1)*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHammingWindow(t *testing.T) {
	if HammingWindow(0) != nil {
		t.Error("HammingWindow(0) != nil")
	}
	if w := HammingWindow(1); len(w) != 1 || w[0] != 1 {
		t.Errorf("HammingWindow(1) = %v", w)
	}
	w := HammingWindow(11)
	// Symmetric, peak 1 at center, ends at 0.08.
	for i := range w {
		if math.Abs(w[i]-w[len(w)-1-i]) > 1e-15 {
			t.Errorf("asymmetry at %d", i)
		}
	}
	if math.Abs(w[5]-1) > 1e-12 {
		t.Errorf("center = %g, want 1", w[5])
	}
	if math.Abs(w[0]-0.08) > 1e-12 {
		t.Errorf("end = %g, want 0.08", w[0])
	}
}

func TestHannWindow(t *testing.T) {
	if HannWindow(0) != nil {
		t.Error("HannWindow(0) != nil")
	}
	if w := HannWindow(1); len(w) != 1 || w[0] != 1 {
		t.Errorf("HannWindow(1) = %v", w)
	}
	w := HannWindow(9)
	if w[0] != 0 || w[8] != 0 {
		t.Errorf("ends = %g, %g, want 0", w[0], w[8])
	}
	if math.Abs(w[4]-1) > 1e-12 {
		t.Errorf("center = %g, want 1", w[4])
	}
}

func TestApplyWindowPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	ApplyWindow(make([]float64, 3), make([]float64, 4))
}

func TestApplyWindow(t *testing.T) {
	x := []float64{1, 2, 3}
	ApplyWindow(x, []float64{2, 0.5, -1})
	want := []float64{2, 1, -3}
	for i := range x {
		if x[i] != want[i] {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestCosineTaper(t *testing.T) {
	x := make([]float64, 100)
	for i := range x {
		x[i] = 1
	}
	CosineTaper(x, 0.1)
	if x[0] != 0 {
		t.Errorf("x[0] = %g, want 0", x[0])
	}
	if x[50] != 1 {
		t.Errorf("x[50] = %g, want 1 (untapered middle)", x[50])
	}
	// Monotonic ramp on the leading taper.
	for i := 1; i < 10; i++ {
		if x[i] < x[i-1] {
			t.Errorf("taper not monotonic at %d", i)
		}
	}
	// Symmetric.
	for i := 0; i < 10; i++ {
		if math.Abs(x[i]-x[99-i]) > 1e-15 {
			t.Errorf("taper asymmetric at %d", i)
		}
	}
	// No-ops.
	y := []float64{5, 5}
	CosineTaper(y, 0)
	CosineTaper(y, -1)
	CosineTaper(nil, 0.5)
	if y[0] != 5 || y[1] != 5 {
		t.Errorf("no-op taper modified data: %v", y)
	}
}
