package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation used to validate the FFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover powers of two (radix-2 path), primes, and composites
	// (Bluestein path).
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 100, 128, 243, 257} {
		x := randComplex(rng, n)
		got := FFT(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g vs naive DFT", n, e)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 13, 64, 100, 255, 256} {
		x := randComplex(rng, n)
		back := IFFT(FFT(x))
		if e := maxErr(back, x); e > 1e-9*float64(n+1) {
			t.Errorf("n=%d: IFFT(FFT(x)) differs from x by %g", n, e)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// FFT of a unit impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	for k, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Errorf("impulse FFT bin %d = %v, want 1", k, v)
		}
	}
	// FFT of a constant is an impulse of height n at DC.
	for i := range x {
		x[i] = 1
	}
	spec := FFT(x)
	if cmplx.Abs(spec[0]-8) > 1e-12 {
		t.Errorf("DC bin = %v, want 8", spec[0])
	}
	for k := 1; k < len(spec); k++ {
		if cmplx.Abs(spec[k]) > 1e-12 {
			t.Errorf("bin %d = %v, want 0", k, spec[k])
		}
	}
	// A pure cosine concentrates in bins k and n-k.
	n := 32
	k0 := 5
	c := make([]complex128, n)
	for i := range c {
		c[i] = complex(math.Cos(2*math.Pi*float64(k0)*float64(i)/float64(n)), 0)
	}
	spec = FFT(c)
	for k := 0; k < n; k++ {
		want := 0.0
		if k == k0 || k == n-k0 {
			want = float64(n) / 2
		}
		if math.Abs(cmplx.Abs(spec[k])-want) > 1e-9 {
			t.Errorf("cosine bin %d = %g, want %g", k, cmplx.Abs(spec[k]), want)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); len(got) != 0 {
		t.Errorf("FFT(nil) len = %d", len(got))
	}
	if got := IFFT([]complex128{}); len(got) != 0 {
		t.Errorf("IFFT(empty) len = %d", len(got))
	}
}

// Property: Parseval's theorem — sum |x|^2 == (1/n) sum |X|^2, for both the
// radix-2 and Bluestein code paths.
func TestFFTParseval(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, n)
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		var freqE float64
		for _, v := range FFT(x) {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= float64(n)
		return math.Abs(timeE-freqE) <= 1e-6*(timeE+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: linearity — FFT(a*x + y) == a*FFT(x) + FFT(y).
func TestFFTLinearity(t *testing.T) {
	f := func(seed int64, nRaw uint8, aRe, aIm float64) bool {
		if math.IsNaN(aRe) || math.IsInf(aRe, 0) || math.IsNaN(aIm) || math.IsInf(aIm, 0) {
			return true
		}
		// Bound the scalar so the tolerance stays meaningful.
		a := complex(math.Mod(aRe, 8), math.Mod(aIm, 8))
		n := int(nRaw%100) + 1
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		combined := make([]complex128, n)
		for i := range combined {
			combined[i] = a*x[i] + y[i]
		}
		lhs := FFT(combined)
		fx, fy := FFT(x), FFT(y)
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*fx[i]+fy[i])) > 1e-7*float64(n+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, 1}, {0, 1}, {1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8},
		{1023, 1024}, {1024, 1024}, {1025, 2048},
	}
	for _, c := range cases {
		if got := NextPow2(c.in); got != c.want {
			t.Errorf("NextPow2(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{-4, 0, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

func TestAmplitudeSpectrum(t *testing.T) {
	// A cosine at bin k has single-sided amplitude n/2 * dt at that bin.
	n, k0, dt := 64, 4, 0.01
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Cos(2 * math.Pi * float64(k0) * float64(i) / float64(n))
	}
	amps, df, err := AmplitudeSpectrum(x, dt)
	if err != nil {
		t.Fatal(err)
	}
	if len(amps) != n/2+1 {
		t.Fatalf("len(amps) = %d, want %d", len(amps), n/2+1)
	}
	wantDF := 1 / (float64(n) * dt)
	if math.Abs(df-wantDF) > 1e-15 {
		t.Errorf("df = %g, want %g", df, wantDF)
	}
	want := float64(n) / 2 * dt
	if math.Abs(amps[k0]-want) > 1e-9 {
		t.Errorf("amp at bin %d = %g, want %g", k0, amps[k0], want)
	}
}

func TestAmplitudeSpectrumErrors(t *testing.T) {
	if _, _, err := AmplitudeSpectrum(nil, 0.01); err == nil {
		t.Error("empty signal: want error")
	}
	if _, _, err := AmplitudeSpectrum([]float64{1}, 0); err == nil {
		t.Error("zero dt: want error")
	}
	if _, _, err := AmplitudeSpectrum([]float64{1}, -1); err == nil {
		t.Error("negative dt: want error")
	}
}
