package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// chunked invokes f over x in uneven chunks, exercising chunk-boundary
// bookkeeping.
func chunked(x []float64, sizes []int, f func([]float64)) {
	i := 0
	for _, sz := range sizes {
		if i >= len(x) {
			return
		}
		end := i + sz
		if end > len(x) {
			end = len(x)
		}
		f(x[i:end])
		i = end
	}
	for i < len(x) {
		end := i + 7
		if end > len(x) {
			end = len(x)
		}
		f(x[i:end])
		i = end
	}
}

func randomSignal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64() * 50
	}
	return x
}

func TestMeanAccumMatchesDemean(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1001} {
		x := randomSignal(n, int64(n))
		var acc MeanAccum
		chunked(x, []int{3, 11, 1}, func(c []float64) { acc.ObserveSlice(c) })
		work := append([]float64(nil), x...)
		want := Demean(work)
		if got := acc.Mean(); got != want {
			t.Errorf("n=%d: streamed mean %v != Demean's %v", n, got, want)
		}
	}
}

func TestTrendAccumMatchesDetrend(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 1001} {
		x := randomSignal(n, int64(n)+17)
		var acc TrendAccum
		for _, v := range x {
			acc.Observe(v)
		}
		work := append([]float64(nil), x...)
		wantC, wantS := Detrend(work)
		gotC, gotS := acc.Line()
		if gotC != wantC || gotS != wantS {
			t.Errorf("n=%d: streamed line (%v, %v) != Detrend's (%v, %v)", n, gotC, gotS, wantC, wantS)
		}
		// Removing the line sample by sample must match the in-place result.
		for i, v := range x {
			if got := v - (gotC + gotS*float64(i)); got != work[i] {
				t.Fatalf("n=%d sample %d: streamed removal %v != %v", n, i, got, work[i])
			}
		}
	}
}

func TestTaperMatchesCosineTaper(t *testing.T) {
	for _, n := range []int{1, 2, 9, 10, 100, 1001} {
		for _, frac := range []float64{-1, 0, 0.001, 0.05, 0.3, 0.5, 0.9} {
			x := randomSignal(n, int64(n)*1000+int64(frac*100))
			want := append([]float64(nil), x...)
			CosineTaper(want, frac)
			tp := NewTaper(n, frac)
			got := append([]float64(nil), x...)
			for i := range got {
				if w, ok := tp.Factor(i); ok {
					got[i] *= w
				}
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d frac=%g sample %d: streamed %v != batch %v", n, frac, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamingFIRMatchesApply(t *testing.T) {
	specs := []BandPassSpec{
		{FSL: 0.10, FPL: 0.25, FPH: 23, FSH: 25},
		{FSL: 0.5, FPL: 2, FPH: 10, FSH: 20},
	}
	for _, spec := range specs {
		fir, err := DesignBandPass(spec, 0.005)
		if err != nil {
			t.Fatal(err)
		}
		// Cover n < delay, n < taps, and n >> taps.
		for _, n := range []int{1, 5, fir.Delay() - 1, fir.Delay() + 1, len(fir.Taps) + 3, 3*len(fir.Taps) + 11} {
			if n < 1 {
				continue
			}
			x := randomSignal(n, int64(n)*7)
			want := fir.Apply(x)
			sf := NewStreamingFIR(fir, n)
			var got []float64
			chunked(x, []int{1, 13, 256, 5}, func(c []float64) { got = sf.Push(c, got) })
			got = sf.Finish(got)
			if len(got) != len(want) {
				t.Fatalf("spec %+v n=%d: streamed %d samples, want %d", spec, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("spec %+v n=%d sample %d: streamed %v != batch %v", spec, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestStreamingIntegratorMatchesIntegrate(t *testing.T) {
	x := randomSignal(4096, 99)
	const dt = 0.01
	want := Integrate(x, dt)
	g := NewStreamingIntegrator(dt)
	for i, v := range x {
		if got := g.Next(v); got != want[i] {
			t.Fatalf("sample %d: streamed integral %v != batch %v", i, got, want[i])
		}
	}
}

func TestPeakTrackerMatchesAbsMax(t *testing.T) {
	cases := [][]float64{
		nil,
		{0},
		{-3, 3},
		{3, -3},
		randomSignal(1000, 5),
		{math.NaN(), 1, 2},
	}
	for ci, x := range cases {
		wantPeak, wantIdx := AbsMax(x)
		var tr PeakTracker
		for i, v := range x {
			tr.Observe(i, v)
		}
		gotPeak, gotIdx := tr.Peak()
		same := gotIdx == wantIdx &&
			(gotPeak == wantPeak || (math.IsNaN(gotPeak) && math.IsNaN(wantPeak)))
		if !same {
			t.Errorf("case %d: streamed peak (%v, %d) != batch (%v, %d)", ci, gotPeak, gotIdx, wantPeak, wantIdx)
		}
	}
}

// TestStreamedBandPassPipeline chains the streaming kernels exactly as the
// streamed filter body does — mean pass, taper+FIR pass, detrend-removal
// pass — and checks the result against the batch BandPass + Detrend chain.
func TestStreamedBandPassPipeline(t *testing.T) {
	const dt = 0.005
	spec := BandPassSpec{FSL: 0.10, FPL: 0.25, FPH: 23, FSH: 25}
	const taperFraction = 0.05
	for _, n := range []int{64, 1000, 9000} {
		x := randomSignal(n, int64(n)+123)

		// Batch reference: BandPass (demean, taper, FIR) then Detrend.
		want, err := BandPass(x, dt, spec, taperFraction)
		if err != nil {
			t.Fatal(err)
		}
		Detrend(want)

		// Streamed: pass A (mean), pass B (taper+FIR+trend sums), pass C
		// (line removal).
		fir, err := DesignBandPass(spec, dt)
		if err != nil {
			t.Fatal(err)
		}
		var mean MeanAccum
		mean.ObserveSlice(x)
		mu := mean.Mean()
		tp := NewTaper(n, taperFraction)
		sf2 := NewStreamingFIR(fir, n)
		var trend2 TrendAccum
		out := make([]float64, 0, n)
		pos := 0
		buf := make([]float64, 0, 1024)
		chunked(x, []int{17, 1024}, func(c []float64) {
			buf = buf[:0]
			for _, v := range c {
				y := v - mu
				if w, ok := tp.Factor(pos); ok {
					y *= w
				}
				buf = append(buf, y)
				pos++
			}
			out = sf2.Push(buf, out)
		})
		out = sf2.Finish(out)
		for _, y := range out {
			trend2.Observe(y)
		}
		c0, c1 := trend2.Line()
		for i := range out {
			out[i] -= c0 + c1*float64(i)
		}
		if len(out) != len(want) {
			t.Fatalf("n=%d: streamed %d samples, want %d", n, len(out), len(want))
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("n=%d sample %d: streamed %v != batch %v", n, i, out[i], want[i])
			}
		}
	}
}
