package dsp

import (
	"fmt"
	"math"
)

// BandPassSpec describes an Ormsby-style band-pass filter by its four corner
// frequencies in Hz.  The low-frequency transition ramps from zero response
// at FSL ("frequency, stop, low") to full response at FPL ("frequency, pass,
// low"); the high-frequency transition ramps down from FPH to FSH.  FSL and
// FPL are exactly the parameters the pipeline's Fourier-analysis step picks
// from the velocity spectrum (paper process #10); FPH/FSH default to fixed
// engineering values near the anti-alias corner.
type BandPassSpec struct {
	FSL float64 // low stop frequency (Hz), zero response at and below
	FPL float64 // low pass frequency (Hz), full response at and above
	FPH float64 // high pass frequency (Hz), full response at and below
	FSH float64 // high stop frequency (Hz), zero response at and above
}

// Validate checks 0 <= FSL < FPL < FPH < FSH and that FSH does not exceed
// the Nyquist frequency for sample interval dt.
func (s BandPassSpec) Validate(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("dsp: non-positive sample interval %g", dt)
	}
	if !(0 <= s.FSL && s.FSL < s.FPL && s.FPL < s.FPH && s.FPH < s.FSH) {
		return fmt.Errorf("dsp: band-pass corners must satisfy 0 <= FSL < FPL < FPH < FSH, got %+v", s)
	}
	nyq := 0.5 / dt
	if s.FSH > nyq+1e-9 {
		return fmt.Errorf("dsp: FSH %g Hz exceeds Nyquist %g Hz", s.FSH, nyq)
	}
	return nil
}

// FIRFilter is a linear-phase finite impulse response filter with an odd
// number of taps (type-I), designed by the Hamming window method.
type FIRFilter struct {
	Taps []float64 // symmetric impulse response, len is odd
}

// Delay returns the filter's group delay in samples, (len(Taps)-1)/2.
func (f *FIRFilter) Delay() int { return (len(f.Taps) - 1) / 2 }

// DesignBandPass designs a Hamming-windowed sinc band-pass FIR filter for
// the given spec and sample interval dt.  The tap count is chosen from the
// narrower of the two transition bands using the Hamming window's normalized
// transition width of 3.3/N, then clamped to [minTaps, maxTaps] and forced
// odd so the filter has integer group delay.
func DesignBandPass(spec BandPassSpec, dt float64) (*FIRFilter, error) {
	if err := spec.Validate(dt); err != nil {
		return nil, err
	}
	fs := 1 / dt
	lowTrans := (spec.FPL - spec.FSL) / fs
	highTrans := (spec.FSH - spec.FPH) / fs
	trans := math.Min(lowTrans, highTrans)
	const (
		minTaps = 21
		maxTaps = 4001
	)
	n := int(math.Ceil(3.3 / trans))
	if n < minTaps {
		n = minTaps
	}
	if n > maxTaps {
		n = maxTaps
	}
	if n%2 == 0 {
		n++
	}
	// Ideal band-pass between the transition-band midpoints.
	fc1 := (spec.FSL + spec.FPL) / 2 / fs // normalized cutoffs (cycles/sample)
	fc2 := (spec.FPH + spec.FSH) / 2 / fs
	taps := make([]float64, n)
	mid := (n - 1) / 2
	w := HammingWindow(n)
	for i := 0; i < n; i++ {
		k := i - mid
		var h float64
		if k == 0 {
			h = 2 * (fc2 - fc1)
		} else {
			x := math.Pi * float64(k)
			h = (math.Sin(2*math.Pi*fc2*float64(k)) - math.Sin(2*math.Pi*fc1*float64(k))) / x
		}
		taps[i] = h * w[i]
	}
	return &FIRFilter{Taps: taps}, nil
}

// Apply convolves x with the filter and compensates the group delay, so the
// output is time-aligned with the input and has the same length.  Samples
// beyond the ends of x are treated as zero, which is appropriate for
// strong-motion records that begin and end in quiet pre- and post-event
// noise (records are tapered before filtering).
func (f *FIRFilter) Apply(x []float64) []float64 {
	n := len(x)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	taps := f.Taps
	m := len(taps)
	delay := f.Delay()
	// out[i] = sum_j taps[j] * x[i+delay-j]
	for i := 0; i < n; i++ {
		center := i + delay
		jLo := center - (n - 1)
		if jLo < 0 {
			jLo = 0
		}
		jHi := m - 1
		if center < jHi {
			jHi = center
		}
		var acc float64
		for j := jLo; j <= jHi; j++ {
			acc += taps[j] * x[center-j]
		}
		out[i] = acc
	}
	return out
}

// BandPass designs and applies a Hamming band-pass filter in one call: the
// record is demeaned, cosine-tapered over taperFraction of each end, then
// filtered with delay compensation.  This is the exact operation performed
// by pipeline processes #4 (default corners) and #13 (corners picked per
// signal from the Fourier analysis).
func BandPass(x []float64, dt float64, spec BandPassSpec, taperFraction float64) ([]float64, error) {
	fir, err := DesignBandPass(spec, dt)
	if err != nil {
		return nil, err
	}
	work := make([]float64, len(x))
	copy(work, x)
	Demean(work)
	CosineTaper(work, taperFraction)
	return fir.Apply(work), nil
}

// Response evaluates the filter's amplitude response at frequency f Hz for
// sample interval dt, useful for verifying the designed pass and stop bands.
func (f *FIRFilter) Response(freq, dt float64) float64 {
	omega := 2 * math.Pi * freq * dt
	var re, im float64
	for k, t := range f.Taps {
		re += t * math.Cos(omega*float64(k))
		im -= t * math.Sin(omega*float64(k))
	}
	return math.Hypot(re, im)
}
