package pipeline

import (
	"errors"
	"hash/fnv"
	"os"
	"path/filepath"
	"time"
)

// QuarantineDir is the work-directory subfolder that receives the scratch
// folders of quarantined records, preserved for post-mortem inspection.
const QuarantineDir = "quarantine"

// RetryPolicy governs how the staging protocol reacts to failing file
// operations and simulated-binary executions: how often an operation is
// retried, how long to back off between attempts, and how long one attempt
// may run.  The zero value selects the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per operation (first try included);
	// zero selects 3.  After the last attempt the record is quarantined.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; zero selects 500µs.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff; zero selects 50ms.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor; zero selects 2.
	Multiplier float64
	// JitterSeed drives the deterministic backoff jitter, so two runs with
	// the same seed sleep the same schedule.
	JitterSeed int64
	// OpTimeout bounds one attempt of one operation via the run context;
	// zero disables the per-op timeout.  Timed-out attempts classify as
	// ErrKindTimeout and are retried.
	OpTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 500 * time.Microsecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 50 * time.Millisecond
	}
	if p.Multiplier == 0 {
		p.Multiplier = 2
	}
	return p
}

// Backoff returns the delay before retry number attempt (1-based) of the
// operation identified by key: exponential growth from BaseDelay capped at
// MaxDelay, scaled by a deterministic jitter factor in [0.5, 1.5) hashed
// from (JitterSeed, key, attempt).  Jitter decorrelates the retry storms of
// concurrently failing records without sacrificing reproducibility.
func (p RetryPolicy) Backoff(attempt int, key string) time.Duration {
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(uint64(p.JitterSeed) >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(key))
	b[0] = byte(attempt)
	h.Write(b[:1])
	u := float64(h.Sum64()>>11) / float64(1<<53)
	d *= 0.5 + u
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// RecordOutcome describes one quarantined record: which record failed,
// where, after how many attempts, and where its scratch folder was
// preserved.
type RecordOutcome struct {
	Dir      string // event work directory
	Station  string
	Stage    StageID
	Process  ProcessID
	Attempts int
	Scratch  string // preserved scratch folder under <dir>/quarantine, "" if none existed
	Err      error  // the *StageError that condemned the record
}

// recordSite locates one record inside the staging protocol, for error
// attribution and quarantine.
type recordSite struct {
	stage   StageID
	proc    ProcessID
	tag     string // injector stage tag: "def", "fou", "cor"
	station string
	scratch string // the record's scratch folder, "" outside the protocol
}

// retryOp runs one staging operation for rc under the retry policy:
// transient and timeout failures are retried with backoff up to MaxAttempts,
// permanent failures and attempt exhaustion return a *StageError, and
// cancellation propagates unwrapped so the run aborts.
func (s *state) retryOp(rc recordSite, op string, fn func() error) error {
	for attempt := 1; ; attempt++ {
		err := s.attemptOp(fn)
		if err == nil {
			return nil
		}
		kind := classify(err)
		if kind == ErrKindCanceled {
			return err
		}
		if kind == ErrKindPermanent || attempt >= s.retry.MaxAttempts {
			return &StageError{Stage: rc.stage, Process: rc.proc, Record: rc.station,
				Op: op, Kind: kind, Attempts: attempt, Err: err}
		}
		s.nRetries.Add(1)
		s.retries.Add(1)
		if err := s.sleep(s.retry.Backoff(attempt, rc.station+"/"+op)); err != nil {
			return err
		}
	}
}

// attemptOp runs fn, bounded by the retry policy's per-op timeout when one
// is set.  The timed-out goroutine is abandoned (its eventual result is
// discarded through the buffered channel); callers retry the operation on a
// fresh attempt.
func (s *state) attemptOp(fn func() error) error {
	to := s.retry.OpTimeout
	if to <= 0 {
		return fn()
	}
	done := make(chan error, 1)
	go func() { done <- fn() }()
	t := time.NewTimer(to)
	defer t.Stop()
	select {
	case err := <-done:
		return err
	case <-t.C:
		return errOpTimeout
	case <-s.ctx.Done():
		return s.cancelled()
	}
}

// sleep blocks for d or until the run context is cancelled, returning the
// cancellation cause in the latter case.
func (s *state) sleep(d time.Duration) error {
	if d <= 0 {
		return s.cancelled()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-s.ctx.Done():
		return s.cancelled()
	}
}

// degraded converts a record-level *StageError into graceful degradation:
// the record is quarantined and the protocol continues with the survivors
// (nil is returned).  Cancellation and non-record failures propagate.
func (s *state) degraded(rc recordSite, err error) error {
	if err == nil {
		return nil
	}
	var serr *StageError
	if errors.As(err, &serr) && classify(err) != ErrKindCanceled {
		s.quarantine(rc, serr)
		return nil
	}
	return err
}

// quarantine condemns rc's record: its scratch folder (if any) is preserved
// under <dir>/quarantine/, the station is excluded from every subsequent
// stations() listing, and the outcome is recorded for the run's Result.
// The quarantine moves use the plain filesystem, never the fault-injected
// one — the degradation path must stay dependable under chaos.
func (s *state) quarantine(rc recordSite, serr *StageError) {
	preserved := ""
	if rc.scratch != "" {
		// Whatever cache entries the record accumulated under its scratch
		// folder are about to be renamed into quarantine (or deleted); drop
		// them before the paths go stale.
		s.arts.InvalidateDir(rc.scratch)
		if _, err := os.Stat(rc.scratch); err == nil {
			qdir := s.path(QuarantineDir)
			if err := os.MkdirAll(qdir, 0o755); err == nil {
				// Flush any in-memory contents of the scratch folder to real
				// disk first: quarantine preserves physical evidence for the
				// operator, whatever the storage backend.
				s.ws.Materialize(rc.scratch)
				dest := filepath.Join(qdir, filepath.Base(rc.scratch))
				if err := os.Rename(rc.scratch, dest); err == nil {
					preserved = dest
				}
			}
			if preserved == "" {
				// Could not preserve the scratch folder; remove it rather
				// than leak it into the work directory.
				s.ws.RemoveAll(rc.scratch)
			}
		}
	}
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	if s.quarantinedSet[rc.station] {
		return
	}
	s.quarantinedSet[rc.station] = true
	outcome := RecordOutcome{
		Dir:      s.dir,
		Station:  rc.station,
		Stage:    rc.stage,
		Process:  rc.proc,
		Attempts: serr.Attempts,
		Scratch:  preserved,
		Err:      serr,
	}
	s.outcomes = append(s.outcomes, outcome)
	s.quarCount.Add(1)
	// Journal the verdict: a resumed run inherits it instead of re-burning
	// the retry budget on a record already known bad.
	s.journal.quarantined(outcome)
}

// isQuarantined reports whether the station has been condemned this run.
func (s *state) isQuarantined(station string) bool {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	return s.quarantinedSet[station]
}

// quarantinedOutcomes snapshots the quarantine record, sorted by station
// for deterministic reporting.
func (s *state) quarantinedOutcomes() []RecordOutcome {
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	out := make([]RecordOutcome, len(s.outcomes))
	copy(out, s.outcomes)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Station < out[j-1].Station; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
