package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"accelproc/internal/faults"
	"accelproc/internal/fleet"
	"accelproc/internal/obs"
	"accelproc/internal/storage"
)

// fleetOptions is testOptions with a small shared pool.
func fleetOptions(policy fleet.Policy) FleetOptions {
	opts := testOptions()
	opts.Workers = 3
	return FleetOptions{Options: opts, Policy: policy}
}

// TestRunFleetMatchesIndividualRuns is the fleet byte-identity contract:
// whatever the policy interleaves, every event's products equal a standalone
// Pipelined run of the same inputs.
func TestRunFleetMatchesIndividualRuns(t *testing.T) {
	ref := prepareBatchDirs(t, 3)
	for _, d := range ref {
		if _, err := Run(context.Background(), d, Pipelined, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	for _, policy := range []fleet.Policy{fleet.Latency, fleet.Throughput, fleet.Balanced} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			dirs := prepareBatchDirs(t, 3)
			results, err := RunFleet(context.Background(), dirs, fleetOptions(policy))
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Dir != dirs[i] {
					t.Errorf("result %d dir = %s, want %s (order preserved)", i, r.Dir, dirs[i])
				}
				if r.Err != nil {
					t.Fatalf("event %d failed: %v", i, r.Err)
				}
				if r.Latency <= 0 || r.Result.Timings.Total <= 0 {
					t.Errorf("event %d missing timing: latency %v total %v", i, r.Latency, r.Result.Timings.Total)
				}
				want := productHashes(t, ref[i])
				got := productHashes(t, dirs[i])
				if len(got) != len(want) {
					t.Fatalf("event %d product count %d != %d", i, len(got), len(want))
				}
				for name, h := range want {
					if got[name] != h {
						t.Errorf("event %d product %s differs from standalone run", i, name)
					}
				}
			}
		})
	}
}

// TestRunFleetMemBackendMatchesFS runs the fleet on the in-memory storage
// plane and checks the materialized products against the fs backend.
func TestRunFleetMemBackendMatchesFS(t *testing.T) {
	ref := prepareBatchDirs(t, 2)
	if _, err := RunFleet(context.Background(), ref, fleetOptions(fleet.Balanced)); err != nil {
		t.Fatal(err)
	}
	dirs := prepareBatchDirs(t, 2)
	opts := fleetOptions(fleet.Balanced)
	opts.Storage = storage.BackendMem
	results, err := RunFleet(context.Background(), dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dirs {
		if results[i].Err != nil {
			t.Fatalf("event %d failed on mem: %v", i, results[i].Err)
		}
		want := productHashes(t, ref[i])
		got := productHashes(t, dirs[i])
		for name, h := range want {
			if got[name] != h {
				t.Errorf("event %d product %s differs between backends", i, name)
			}
		}
	}
}

// TestRunFleetQuarantinePoisonedRecord reruns the poisoned-record batch
// scenario under the fleet scheduler on both storage backends: the poisoned
// record quarantines, its event still succeeds (degraded), siblings are
// untouched.
func TestRunFleetQuarantinePoisonedRecord(t *testing.T) {
	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			dirs := prepareBatchDirs(t, 3)
			opts := fleetOptions(fleet.Throughput)
			opts.Storage = backend
			opts.Observer = obs.New()
			opts.Retry = RetryPolicy{BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
			opts.Chaos = &faults.Config{Seed: 7, Rules: []faults.Rule{
				{Record: "SS02", Stage: "cor", Op: "exec", Kind: faults.KindPermanent},
			}}
			results, err := RunFleet(context.Background(), dirs, opts)
			if err != nil {
				t.Fatalf("degraded fleet failed outright: %v", err)
			}
			rep := BatchReport(results)
			if rep.Failed != 0 || rep.Succeeded != 3 {
				t.Fatalf("report events: %+v", rep)
			}
			if !rep.Degraded() {
				t.Error("report does not show degradation")
			}
			// SS02 exists in every event, so all three quarantine one record.
			if len(rep.Quarantined) != 3 {
				t.Fatalf("quarantined = %+v, want one SS02 per event", rep.Quarantined)
			}
			for _, q := range rep.Quarantined {
				if q.Station != "SS02" {
					t.Errorf("quarantined %+v, want SS02", q)
				}
			}
			if !errors.Is(rep.Err, &StageError{Record: "SS02"}) {
				t.Errorf("report Err does not match the poisoned record: %v", rep.Err)
			}
		})
	}
}

// TestRunFleetSimulatedPlatform drives RunFleet with SimProcessors: outputs
// must stay byte-identical to real runs while the timings come from the
// virtual fleet schedule.
func TestRunFleetSimulatedPlatform(t *testing.T) {
	ref := prepareBatchDirs(t, 2)
	for _, d := range ref {
		if _, err := Run(context.Background(), d, Pipelined, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	dirs := prepareBatchDirs(t, 2)
	opts := fleetOptions(fleet.Throughput)
	opts.SimProcessors = 8
	results, err := RunFleet(context.Background(), dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("event %d: %v", i, r.Err)
		}
		if r.Latency <= 0 {
			t.Errorf("event %d virtual latency %v, want > 0", i, r.Latency)
		}
		if r.Result.Timings.Total < r.Latency {
			t.Errorf("event %d Total %v below virtual latency %v", i, r.Result.Timings.Total, r.Latency)
		}
		want := productHashes(t, ref[i])
		got := productHashes(t, dirs[i])
		for name, h := range want {
			if got[name] != h {
				t.Errorf("event %d product %s differs from real run", i, name)
			}
		}
	}
	// The second event cannot be admitted before the first on the virtual
	// clock (FIFO admission).
	if results[1].Wait < results[0].Wait {
		t.Errorf("admission out of order: waits %v, %v", results[0].Wait, results[1].Wait)
	}
}

// TestRunFleetWarmActionCache pins the "cache hit frees the slot" plumbing:
// a second fleet pass over the same directories with the persistent action
// cache restores nodes instead of recomputing them.
func TestRunFleetWarmActionCache(t *testing.T) {
	dirs := prepareBatchDirs(t, 2)
	opts := fleetOptions(fleet.Balanced)
	opts.Cache = CacheConfig{Mode: CachePersistent}
	if _, err := RunFleet(context.Background(), dirs, opts); err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if err := CleanOutputs(d); err != nil {
			t.Fatal(err)
		}
	}
	results, err := RunFleet(context.Background(), dirs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("warm event %d: %v", i, r.Err)
		}
		if r.Result.Cache.ActionHits == 0 {
			t.Errorf("warm event %d had no action-cache hits: %+v", i, r.Result.Cache)
		}
	}
}

// TestRunFleetCanceledContextDrains: a canceled context must not wedge the
// shared pool — every event still flows through admission and reports the
// cancellation cause.
func TestRunFleetCanceledContextDrains(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunFleet(ctx, dirs, fleetOptions(fleet.Balanced))
	if err == nil {
		t.Fatal("canceled fleet reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("fleet error %v does not wrap context.Canceled", err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3 (partial results must be populated)", len(results))
	}
	for i, r := range results {
		if r.Dir != dirs[i] {
			t.Errorf("result %d dir = %q", i, r.Dir)
		}
		if r.Err == nil {
			t.Errorf("event %d reported success under canceled ctx", i)
		}
	}
}

func TestRunFleetRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := RunFleet(context.Background(), nil, fleetOptions(fleet.Balanced)); err == nil {
		t.Error("empty fleet accepted")
	}
	dirs := prepareBatchDirs(t, 1)
	if _, err := RunFleet(context.Background(), []string{dirs[0], dirs[0]}, fleetOptions(fleet.Balanced)); err == nil {
		t.Error("duplicate directory accepted")
	}
}

// TestRunFleetRegistersGauges checks the scheduler's obs surface end to end.
func TestRunFleetRegistersGauges(t *testing.T) {
	dirs := prepareBatchDirs(t, 2)
	opts := fleetOptions(fleet.Throughput)
	opts.Observer = obs.New()
	if _, err := RunFleet(context.Background(), dirs, opts); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := opts.Observer.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, m := range []string{"fleet_events_admitted_total 2", "fleet_events_completed_total 2", "fleet_queue_depth", "fleet_worker_busy_seconds_total"} {
		if !strings.Contains(text, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}
