package pipeline

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"path"
	"sort"
	"strings"
	"sync"

	"accelproc/internal/dsp"
	"accelproc/internal/fourier"
	"accelproc/internal/ingest"
	"accelproc/internal/plotps"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
)

// This file implements the 20 processes of the chain.  Each process is a
// method on *state that reads its inputs from and writes its outputs to the
// work directory, exactly as the legacy programs do.  Processes that the
// parallel variants accelerate take a workers parameter: 1 reproduces the
// sequential behaviour, >1 (or 0 = all processors) the parallel one.

// procInitFlags is process #0 (and, via procInitFlags2, #11): write the ten
// runtime flags of the legacy driver.
func (s *state) procInitFlags() error {
	flags := smformat.FileList{Name: "flags"}
	for i := 0; i < 10; i++ {
		flags.Files = append(flags.Files, fmt.Sprintf("flag%02d=0", i))
	}
	return smformat.WriteFileListFileFS(s.ws, s.path(smformat.FlagsFile), flags)
}

// procGatherInputs is process #1: scan the work directory for input record
// files in any registered ingest format and write the v1list metadata.
// Recognition is by magic bytes, so per-component products (which share the
// ".v1" extension on a rerun of a used work directory but carry a different
// magic) are never gathered.  A -format override additionally admits
// magicless files carrying the override's extension, but still never a file
// whose magic belongs to the per-component product.
func (s *state) procGatherInputs() error {
	entries, err := s.ws.List(s.dir)
	if err != nil {
		return err
	}
	var files []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		prefix, err := sniffHead(s.ws, s.path(name))
		if err != nil {
			return err
		}
		ok := false
		if f := s.informat; f != nil {
			ok = f.Sniff(prefix) ||
				(strings.EqualFold(path.Ext(name), f.Extension()) &&
					!hasLine(prefix, smformat.V1ComponentMagic))
		} else {
			_, ok = ingest.SniffAny(prefix)
		}
		if ok {
			files = append(files, name)
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("no input record files in %s", s.dir)
	}
	sort.Strings(files)
	return smformat.WriteFileListFileFS(s.ws, s.path(smformat.V1ListFile), smformat.FileList{Name: "v1list", Files: files})
}

// procInitFilterParams is process #2: write the default filter corners.
func (s *state) procInitFilterParams() error {
	params := smformat.FilterParams{
		Default:   fourier.DefaultSpec(),
		PerSignal: map[smformat.SignalKey]dsp.BandPassSpec{},
	}
	return s.writeFilterParams(s.path(smformat.FilterParamsFile), params)
}

// procSeparateComponents is process #3 (and #12): split every multiplexed
// <s>.v1 into three per-component <s><c>.v1 files.  The full-parallel
// variant runs the station loop with a Fortran-style "omp do" (workers > 1).
func (s *state) procSeparateComponents(workers int) error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	return s.parFor(len(stations), workers, CostHeavyIO, func(i int) error {
		return s.separateStation(stations[i])
	})
}

// separateStation decodes one station's input record through the ingest
// plane — format resolution, the QC gate, component rotation — and splits it
// into its three per-component files: the per-record unit of process #3,
// scheduled directly as a dataflow node by the pipelined variant.
//
// Rejections are graceful degradation, not run failures: an undecodable
// file, a QC defect, or an unrotatable record classifies as permanent
// (ingest.ErrReject), the retry engine quarantines the record with its
// typed reason, and the event continues with the survivors.  Transient I/O
// failures retry under the usual policy first.
func (s *state) separateStation(st string) error {
	rc := recordSite{stage: StageIII, proc: PSeparateComponents, station: st}
	name, err := s.inputFileOf(st)
	if err != nil {
		return err
	}
	var v1 smformat.V1
	err = s.retryOp(rc, "decode", func() error {
		var derr error
		v1, derr = s.readRecord(s.path(name))
		return derr
	})
	if err = s.degraded(rc, err); err != nil || s.isQuarantined(st) {
		return err
	}
	for ci, comp := range seismic.Components {
		vc := smformat.V1Component{
			Station:   st,
			Component: comp,
			DT:        v1.DT,
			Accel:     v1.Accel[ci],
		}
		if err := s.writeV1Comp(s.path(smformat.V1ComponentFileName(st, comp)), vc); err != nil {
			return err
		}
	}
	return nil
}

// correctSignal performs the shared work of processes #4 and #13: band-pass
// filter one per-component V1 with the given corners, integrate to velocity
// and displacement, and return the V2 payload plus its peaks.
func (s *state) correctSignal(v1 smformat.V1Component, spec dsp.BandPassSpec) (smformat.V2, seismic.PeakValues, error) {
	raw := v1.Accel
	if s.opts.Instrument != nil {
		corrected, err := s.opts.Instrument.Correct(raw, v1.DT, 0)
		if err != nil {
			return smformat.V2{}, seismic.PeakValues{}, fmt.Errorf("instrument correction: %w", err)
		}
		raw = corrected
	}
	accel, err := dsp.BandPass(raw, v1.DT, spec, s.opts.TaperFraction)
	if err != nil {
		return smformat.V2{}, seismic.PeakValues{}, err
	}
	dsp.Detrend(accel) // baseline correction after filtering
	vel := dsp.Integrate(accel, v1.DT)
	disp := dsp.Integrate(vel, v1.DT)
	peaks, err := seismic.Peaks(seismic.Trace{DT: v1.DT, Data: accel})
	if err != nil {
		return smformat.V2{}, seismic.PeakValues{}, err
	}
	v2 := smformat.V2{
		Station:   v1.Station,
		Component: v1.Component,
		DT:        v1.DT,
		Filter:    spec,
		Peaks:     peaks,
		Accel:     accel,
		Vel:       vel,
		Disp:      disp,
	}
	return v2, peaks, nil
}

// applyFilters is the shared driver of processes #4 (default corners) and
// #13 (per-signal corners from the Fourier analysis): filter all 3N
// component signals, write <s><c>.v2 files, and write the max-values
// metadata.  Parallelization across signals is controlled by workers; the
// temp-folder variant lives in tempfolder.go.
func (s *state) applyFilters(workers int) error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	params, err := s.readFilterParams(s.path(smformat.FilterParamsFile))
	if err != nil {
		return err
	}
	keys := signals(stations)
	peaks := make([]seismic.PeakValues, len(keys))
	err = s.parFor(len(keys), workers, CostHeavyIO, func(i int) error {
		key := keys[i]
		v1, err := s.readV1Comp(s.path(smformat.V1ComponentFileName(key.Station, key.Component)))
		if err != nil {
			return err
		}
		v2, pk, err := s.correctSignal(v1, params.Spec(key))
		if err != nil {
			return err
		}
		peaks[i] = pk
		return s.writeV2(s.path(smformat.V2FileName(key.Station, key.Component)), v2)
	})
	if err != nil {
		return err
	}
	max := smformat.MaxValues{Peaks: make(map[smformat.SignalKey]seismic.PeakValues, len(keys))}
	for i, key := range keys {
		max.Peaks[key] = peaks[i]
	}
	return smformat.WriteMaxValuesFileFS(s.ws, s.path(smformat.MaxValuesFile), max)
}

// procInitMetadata is process #5 (and #14): derive the acc-graph, fourier,
// and response file lists from the v1list.
func (s *state) procInitMetadata() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	var v2names, rnames []string
	for _, key := range signals(stations) {
		v2names = append(v2names, smformat.V2FileName(key.Station, key.Component))
		rnames = append(rnames, smformat.ResponseFileName(key.Station, key.Component))
	}
	if err := smformat.WriteFileListFileFS(s.ws, s.path(smformat.AccGraphFile),
		smformat.FileList{Name: "acc-graph", Files: v2names}); err != nil {
		return err
	}
	if err := smformat.WriteFileListFileFS(s.ws, s.path(smformat.FourierMetaFile),
		smformat.FileList{Name: "fourier", Files: v2names}); err != nil {
		return err
	}
	return smformat.WriteFileListFileFS(s.ws, s.path(smformat.ResponseMetaFile),
		smformat.FileList{Name: "response", Files: rnames})
}

// procPlotUncorrected is the redundant process #6: plot the raw signals to
// <s>.ps.  The plots are overwritten later by process #15, which is why the
// optimization drops this process entirely.
func (s *state) procPlotUncorrected() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	for _, st := range stations {
		var panels []plotps.Plot
		for _, comp := range seismic.Components {
			v1, err := s.readV1Comp(s.path(smformat.V1ComponentFileName(st, comp)))
			if err != nil {
				return err
			}
			t := make([]float64, len(v1.Accel))
			for i := range t {
				t[i] = float64(i) * v1.DT
			}
			panels = append(panels, plotps.Plot{
				Axes: plotps.Axes{
					Title:  st + comp.Suffix() + " uncorrected acceleration",
					XLabel: "Time (s)", YLabel: "cm/s^2",
				},
				Series: []plotps.Series{{Label: "acc", X: t, Y: v1.Accel}},
			})
		}
		if err := s.writePlotFile(s.path(smformat.AccelPlotFileName(st)), "Uncorrected "+st, panels); err != nil {
			return err
		}
	}
	return nil
}

// procFourier is process #7: Fourier spectra of every corrected component.
func (s *state) procFourier(workers int) error {
	list, err := smformat.ReadFileListFileFS(s.ws, s.path(smformat.FourierMetaFile))
	if err != nil {
		return err
	}
	// The list was written before stage IV ran; drop quarantined records.
	files := s.liveFiles(list.Files)
	return s.parFor(len(files), workers, CostHeavyIO, func(i int) error {
		return s.fourierSignal(files[i])
	})
}

// fourierSignal computes and writes the Fourier spectra of one corrected
// component file: the per-signal unit of process #7.
func (s *state) fourierSignal(name string) error {
	v2, err := s.readV2(s.path(name))
	if err != nil {
		return err
	}
	f, err := fourier.Spectra(v2)
	if err != nil {
		return err
	}
	return s.writeFourier(s.path(smformat.FourierFileName(v2.Station, v2.Component)), f)
}

// procInitFourierGraph is process #8: the fourier-graph file list.
func (s *state) procInitFourierGraph() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	var names []string
	for _, key := range signals(stations) {
		names = append(names, smformat.FourierFileName(key.Station, key.Component))
	}
	return smformat.WriteFileListFileFS(s.ws, s.path(smformat.FourierGraphFile),
		smformat.FileList{Name: "fourier-graph", Files: names})
}

// procPlotFourier is process #9: one <s>f.ps page per station with the
// velocity Fourier spectrum of each of the three components, marked with
// the FPL/FSL inflection corners as in the paper's Figure 3.  The corners
// are derived from the spectrum itself (the same deterministic pick that
// process #10 stores), because in the original chain this plot is drawn
// before process #10 runs, while the reordered schedule draws it at the
// end — deriving them locally keeps every variant's plot byte-identical.
func (s *state) procPlotFourier() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	for _, st := range stations {
		if err := s.plotFourierStation(st); err != nil {
			return err
		}
	}
	return nil
}

// plotFourierStation draws one station's <s>f.ps page: the per-record unit
// of process #9.
func (s *state) plotFourierStation(st string) error {
	var panels []plotps.Plot
	for _, comp := range seismic.Components {
		f, err := s.readFourier(s.path(smformat.FourierFileName(st, comp)))
		if err != nil {
			return err
		}
		spec, err := fourier.CalculateInflectionPoint(f, s.opts.Pick)
		if err != nil {
			return err
		}
		periods := make([]float64, 0, len(f.Vel)-1)
		vel := make([]float64, 0, len(f.Vel)-1)
		for k := len(f.Vel) - 1; k >= 1; k-- {
			periods = append(periods, 1/f.Frequency(k))
			vel = append(vel, f.Vel[k])
		}
		var markers []plotps.Marker
		if spec.FPL > 0 {
			markers = append(markers, plotps.Marker{Label: "FPL", X: 1 / spec.FPL})
		}
		if spec.FSL > 0 {
			markers = append(markers, plotps.Marker{Label: "FSL", X: 1 / spec.FSL})
		}
		panels = append(panels, plotps.Plot{
			Axes: plotps.Axes{
				Title:  st + comp.Suffix() + " Fourier velocity",
				XLabel: "Period (s)", YLabel: "cm", XLog: true, YLog: true,
			},
			Series:  []plotps.Series{{Label: "vel", X: periods, Y: vel}},
			Markers: markers,
		})
	}
	return s.writePlotFile(s.path(smformat.FourierPlotFileName(st)), "Fourier spectra "+st, panels)
}

// procPickCorners is process #10: pick FPL/FSL per signal from the velocity
// Fourier spectra.  The component loop (3 per station) is the parallel-for
// of the paper's section V-B; compWorkers = 1 reproduces the sequential
// scan, 3 the parallel one.
func (s *state) procPickCorners(compWorkers int) error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	params, err := s.readFilterParams(s.path(smformat.FilterParamsFile))
	if err != nil {
		return err
	}
	var mu sync.Mutex
	for _, st := range stations {
		st := st
		// The paper's AnalyzeFourier reads and analyzes the three component
		// plots inside the parallel loop ("#pragma omp parallel for" over
		// j = 0..2), so the file reads parallelize along with the scan.
		err := s.parFor(3, compWorkers, CostHeavyFLOPS, func(j int) error {
			comp := seismic.Components[j]
			spec, err := s.pickSignalSpec(st, comp)
			if err != nil {
				return err
			}
			mu.Lock()
			params.PerSignal[smformat.SignalKey{Station: st, Component: comp}] = spec
			mu.Unlock()
			return nil
		})
		if err != nil {
			return err
		}
	}
	return s.writeFilterParams(s.path(smformat.FilterParamsFile), params)
}

// pickSignalSpec picks the FPL/FSL corners of one component spectrum: the
// per-signal unit of process #10.
func (s *state) pickSignalSpec(st string, comp seismic.Component) (dsp.BandPassSpec, error) {
	f, err := s.readFourier(s.path(smformat.FourierFileName(st, comp)))
	if err != nil {
		return dsp.BandPassSpec{}, err
	}
	return fourier.CalculateInflectionPoint(f, s.opts.Pick)
}

// procResponseSpectrum is process #16, the dominant stage IX workload:
// compute the elastic response spectra of all 3N corrected components.
func (s *state) procResponseSpectrum(workers int) error {
	list, err := smformat.ReadFileListFileFS(s.ws, s.path(smformat.FourierMetaFile))
	if err != nil {
		return err
	}
	// The list was written before the temp-folder stages ran; drop
	// quarantined records so stage IX only touches surviving V2 files.
	files := s.liveFiles(list.Files)
	return s.parFor(len(files), workers, CostHeavyFLOPS, func(i int) error {
		return s.responseSignal(files[i])
	})
}

// responseSignal computes and writes the response spectrum of one corrected
// component file: the per-signal unit of process #16.
func (s *state) responseSignal(name string) error {
	v2, err := s.readV2(s.path(name))
	if err != nil {
		return err
	}
	r, err := response.Spectrum(v2, s.opts.Response)
	if err != nil {
		return err
	}
	return s.writeResponse(s.path(smformat.ResponseFileName(v2.Station, v2.Component)), r)
}

// procInitResponseGraph is process #17: the response-graph file list.
func (s *state) procInitResponseGraph() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	var names []string
	for _, key := range signals(stations) {
		names = append(names, smformat.ResponseFileName(key.Station, key.Component))
	}
	return smformat.WriteFileListFileFS(s.ws, s.path(smformat.ResponseGraphFile),
		smformat.FileList{Name: "response-graph", Files: names})
}

// procPlotAccel is process #15: the corrected accelerogram page <s>.ps,
// one panel per component.
func (s *state) procPlotAccel() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	for _, st := range stations {
		if err := s.plotAccelStation(st); err != nil {
			return err
		}
	}
	return nil
}

// plotAccelStation draws one station's corrected accelerogram page <s>.ps:
// the per-record unit of process #15.
func (s *state) plotAccelStation(st string) error {
	var panels []plotps.Plot
	for _, comp := range seismic.Components {
		v2, err := s.readV2(s.path(smformat.V2FileName(st, comp)))
		if err != nil {
			return err
		}
		t := make([]float64, len(v2.Accel))
		for i := range t {
			t[i] = float64(i) * v2.DT
		}
		panels = append(panels, plotps.Plot{
			Axes: plotps.Axes{
				Title:  st + comp.Suffix() + " corrected acceleration",
				XLabel: "Time (s)", YLabel: "cm/s^2",
			},
			Series: []plotps.Series{{Label: "acc", X: t, Y: v2.Accel}},
		})
	}
	return s.writePlotFile(s.path(smformat.AccelPlotFileName(st)), "Accelerogram "+st, panels)
}

// procPlotResponse is process #18: the response-spectra page <s>r.ps, one
// panel per component with its SA/SV/SD series.
func (s *state) procPlotResponse() error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	for _, st := range stations {
		if err := s.plotResponseStation(st); err != nil {
			return err
		}
	}
	return nil
}

// plotResponseStation draws one station's response-spectra page <s>r.ps: the
// per-record unit of process #18.
func (s *state) plotResponseStation(st string) error {
	var panels []plotps.Plot
	for _, comp := range seismic.Components {
		r, err := s.readResponse(s.path(smformat.ResponseFileName(st, comp)))
		if err != nil {
			return err
		}
		panels = append(panels, plotps.Plot{
			Axes: plotps.Axes{
				Title:  fmt.Sprintf("%s%s response (%.0f%% damping)", st, comp.Suffix(), r.Damping*100),
				XLabel: "Period (s)", YLabel: "SA/SV/SD", XLog: true, YLog: true,
			},
			Series: []plotps.Series{
				{Label: "SA", X: r.Periods, Y: r.SA},
				{Label: "SV", X: r.Periods, Y: r.SV},
				{Label: "SD", X: r.Periods, Y: r.SD},
			},
		})
	}
	return s.writePlotFile(s.path(smformat.ResponsePlotFileName(st)), "Response spectra "+st, panels)
}

// procGenerateGEM is process #19: split every V2 and R file into three GEM
// exports each ("SetDataApart"), 18 files per station.  The loop over the
// interleaved 2x(3N) file list is the parallel-for of the paper's section
// V-C, using all available processors.
func (s *state) procGenerateGEM(workers int) error {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	keys := signals(stations)
	// Interleave V2 and R entries like the files[N*2] array in the paper.
	type job struct {
		key smformat.SignalKey
		isR bool
	}
	jobs := make([]job, 0, 2*len(keys))
	for _, key := range keys {
		jobs = append(jobs, job{key, false}, job{key, true})
	}
	return s.parFor(len(jobs), workers, CostHeavyIO, func(i int) error {
		return s.gemJob(jobs[i].key, jobs[i].isR)
	})
}

// gemJob splits one V2 or R file into its three GEM exports: the per-file
// unit of process #19.
func (s *state) gemJob(key smformat.SignalKey, isR bool) error {
	var gems [3]smformat.GEM
	if isR {
		r, err := s.readResponse(s.path(smformat.ResponseFileName(key.Station, key.Component)))
		if err != nil {
			return err
		}
		if gems, err = smformat.SplitResponse(r); err != nil {
			return err
		}
	} else {
		v2, err := s.readV2(s.path(smformat.V2FileName(key.Station, key.Component)))
		if err != nil {
			return err
		}
		var err2 error
		if gems, err2 = smformat.SplitV2(v2); err2 != nil {
			return err2
		}
	}
	for _, g := range gems {
		if err := s.writeGEM(s.path(g.FileName()), g); err != nil {
			return err
		}
	}
	return nil
}

// writeGEM writes one GEM export.  Streaming runs route it through the
// workspace's Create writer — on the mem backend that is a write-through
// stream, so the NPTS-scaled export never counts against resident bytes.
func (s *state) writeGEM(path string, g smformat.GEM) error {
	if s.opts.Streaming {
		return smformat.WriteFileCreateFS(s.ws, path, g)
	}
	return smformat.WriteGEMFileFS(s.ws, path, g)
}

// firstLine returns the first line of a file (without the newline), or ""
// for an empty file, streaming through the workspace.
func firstLine(ws storage.Workspace, path string) (string, error) {
	f, err := ws.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	if !sc.Scan() {
		return "", sc.Err()
	}
	return sc.Text(), nil
}

// sniffHead reads the leading ingest.SniffLen bytes of a file, the window
// every registered format's magic fits in.  A shorter file yields a shorter
// prefix, not an error.
func sniffHead(ws storage.Workspace, name string) ([]byte, error) {
	f, err := ws.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, ingest.SniffLen)
	n, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// hasLine reports whether prefix begins with the given magic line (allowing
// the prefix to truncate the magic when the file is shorter than it).
func hasLine(prefix []byte, magic string) bool {
	if len(prefix) >= len(magic) {
		return string(prefix[:len(magic)]) == magic
	}
	return len(prefix) > 0 && bytes.HasPrefix([]byte(magic), prefix)
}

// writePlotFile renders one multi-panel page and writes it to path through
// the workspace.  Streaming runs render straight into the workspace's Create
// writer instead of a rendered-page buffer: plot pages scale with NPTS, and
// the mem backend's Create is write-through (never resident).
func (s *state) writePlotFile(path, title string, panels []plotps.Plot) error {
	if s.opts.Streaming {
		w, err := s.ws.Create(path)
		if err != nil {
			return err
		}
		if err := plotps.WritePage(w, title, panels); err != nil {
			abortCreate(w)
			return err
		}
		return w.Close()
	}
	var buf bytes.Buffer
	if err := plotps.WritePage(&buf, title, panels); err != nil {
		return err
	}
	return s.ws.WriteFile(path, buf.Bytes(), 0o644)
}
