package pipeline

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accelproc/internal/obs"
)

// The run-journal unit suite: record framing, torn-tail parsing, resume
// replay through the public Run API, parameter-digest binding, quarantine
// replay, and the stale-scratch startup sweep.  The kill-9 crash matrix
// lives in crash_resume_test.go.

// journalOptions returns fresh options for one journaled pipelined run, each
// with its own observer so counters never bleed across runs.
func journalOptions() Options {
	opts := testOptions()
	opts.Journal = true
	opts.Observer = obs.New()
	return opts
}

// readJournal reads <dir>/.smrun/journal.
func readJournal(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, RunJournalDir, runJournalFile))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// dropFinish rewrites the journal without its trailing finish record,
// simulating a run that died after its last node but before the finish mark.
func dropFinish(t *testing.T, dir string) {
	t.Helper()
	data := readJournal(t, dir)
	if v := parseJournal(data); !v.finished {
		t.Fatal("journal of a completed run is not marked finished")
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	trimmed := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if v := parseJournal([]byte(trimmed)); v.finished || !v.started {
		t.Fatal("dropping the last line did not yield an unfinished journal")
	}
	if err := os.WriteFile(filepath.Join(dir, RunJournalDir, runJournalFile), []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalLineRoundTrip(t *testing.T) {
	payloads := []string{
		"finish",
		startPayload(Pipelined, "abc123"),
		nodePayload(journalNode{pid: PFourier, station: "SS01", side: []byte("x y\nz")}),
		quarPayload(journalQuar{station: "SS02", stage: StageIV, pid: PDefaultFilter,
			op: "stage-in", kind: ErrKindTransient, attempts: 3, msg: "i/o timeout"}),
	}
	for _, p := range payloads {
		line := journalLine(p)
		got, ok := checkJournalLine(strings.TrimSuffix(string(line), "\n"))
		if !ok || got != p {
			t.Errorf("round trip of %q: got %q ok=%v", p, got, ok)
		}
		// Any single-byte corruption must be rejected by the checksum.
		corrupt := bytes.Replace(line, []byte(p[:1]), []byte{'~'}, 1)
		if _, ok := checkJournalLine(strings.TrimSuffix(string(corrupt), "\n")); ok {
			t.Errorf("corrupted line of %q passed the checksum", p)
		}
	}
}

// buildJournal assembles journal bytes from parts.
func buildJournal(payloads ...string) []byte {
	var buf bytes.Buffer
	buf.WriteString(journalMagic + "\n")
	for _, p := range payloads {
		buf.Write(journalLine(p))
	}
	return buf.Bytes()
}

func TestParseJournalKeepsLongestValidPrefix(t *testing.T) {
	full := buildJournal(
		startPayload(Pipelined, "d1"),
		nodePayload(journalNode{pid: PSeparateComponents, station: "SS01"}),
		nodePayload(journalNode{pid: PDefaultFilter, station: "SS01", side: []byte("mv")}),
		quarPayload(journalQuar{station: "SS02", stage: StageV, pid: PFourier,
			op: "stage-out", kind: ErrKindPermanent, attempts: 4, msg: "torn header"}),
		"finish",
	)
	v := parseJournal(full)
	if !v.started || !v.finished || len(v.nodes) != 2 || len(v.quars) != 1 ||
		v.variant != Pipelined || v.digest != "d1" {
		t.Fatalf("full parse: %+v", v)
	}
	if n := v.nodes[1]; n.pid != PDefaultFilter || n.station != "SS01" || string(n.side) != "mv" {
		t.Errorf("node record round trip: %+v", n)
	}
	if q := v.quars[0]; q.msg != "torn header" || q.kind != ErrKindPermanent || q.attempts != 4 {
		t.Errorf("quar record round trip: %+v", q)
	}

	// Every byte-level truncation parses to a valid prefix — never an error,
	// never more records than the full journal.
	for cut := 0; cut <= len(full); cut++ {
		tv := parseJournal(full[:cut])
		if len(tv.nodes) > 2 || len(tv.quars) > 1 {
			t.Fatalf("truncation at %d invented records: %+v", cut, tv)
		}
		// cut == len(full)-1 drops only the trailing newline; the finish
		// record itself is still whole.
		if tv.finished && cut < len(full)-1 {
			t.Fatalf("truncation at %d claims a finish it cannot contain", cut)
		}
	}

	// A torn tail (half a record line) keeps everything before it.
	torn := append(buildJournal(
		startPayload(Pipelined, "d1"),
		nodePayload(journalNode{pid: PFourier, station: "SS03"}),
	), []byte("00ab12")...)
	if tv := parseJournal(torn); !tv.started || len(tv.nodes) != 1 || tv.finished {
		t.Errorf("torn tail parse: %+v", tv)
	}

	// Garbage after the magic yields the empty-but-valid view; a missing
	// magic yields nothing at all.
	if tv := parseJournal([]byte(journalMagic + "\nnot a record\n")); tv.started {
		t.Errorf("garbage body parsed as started: %+v", tv)
	}
	if tv := parseJournal([]byte("random file\n")); tv.started || tv.finished {
		t.Errorf("non-journal parsed as journal: %+v", tv)
	}
	if tv := parseJournal(nil); tv.started {
		t.Errorf("empty input parsed as started: %+v", tv)
	}

	// A second start record resets the view to the newest run.
	restarted := buildJournal(
		startPayload(Pipelined, "old"),
		nodePayload(journalNode{pid: PFourier, station: "SS01"}),
		startPayload(Pipelined, "new"),
		nodePayload(journalNode{pid: PFourier, station: "SS02"}),
	)
	if tv := parseJournal(restarted); tv.digest != "new" || len(tv.nodes) != 1 || tv.nodes[0].station != "SS02" {
		t.Errorf("restart parse: %+v", tv)
	}
}

// TestResumeSkipsJournaledNodes is the pure-journal resume path: complete a
// journaled run, erase only its finish record (the state a crash after the
// last node leaves), and resume.  Every per-record node must be skipped from
// the journal — the action cache is cold, so the journal alone proves it.
func TestResumeSkipsJournaledNodes(t *testing.T) {
	ctx := context.Background()
	ev := testEvent(t)
	const stations = 3
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}

	first := journalOptions()
	res, err := Run(ctx, dir, Pipelined, first)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume.Resumed {
		t.Error("fresh journaled run claims to have resumed")
	}
	if v := parseJournal(readJournal(t, dir)); !v.finished || len(v.nodes) != stations*perRecordNodes {
		t.Fatalf("completed journal: finished=%v nodes=%d, want finished with %d",
			v.finished, len(v.nodes), stations*perRecordNodes)
	}
	ref := productHashes(t, dir)

	dropFinish(t, dir)
	resume := journalOptions()
	resume.Resume = true
	res, err = Run(ctx, dir, Pipelined, resume)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resume.Resumed {
		t.Fatal("unfinished journal was not adopted")
	}
	if res.Resume.NodesJournaled != stations*perRecordNodes {
		t.Errorf("NodesJournaled = %d, want %d", res.Resume.NodesJournaled, stations*perRecordNodes)
	}
	if res.Resume.NodesSkipped != stations*perRecordNodes {
		t.Errorf("NodesSkipped = %d, want %d", res.Resume.NodesSkipped, stations*perRecordNodes)
	}
	if got := recordNodesExecuted(resume); got != 0 {
		t.Errorf("resumed run executed %d record nodes, want 0", got)
	}
	if v := resume.Observer.Counter("journal_replays").Value(); v != 1 {
		t.Errorf("journal_replays = %v, want 1", v)
	}
	if v := int64(resume.Observer.Counter("nodes_skipped_resume").Value()); v != res.Resume.NodesSkipped {
		t.Errorf("nodes_skipped_resume = %d, Result says %d", v, res.Resume.NodesSkipped)
	}
	assertSameProducts(t, productHashes(t, dir), ref, "resumed")

	// The resumed run finished, so resuming again finds a finished journal
	// and re-executes everything.
	again := journalOptions()
	again.Resume = true
	res, err = Run(ctx, dir, Pipelined, again)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume.Resumed {
		t.Error("finished journal was adopted")
	}
	if got := recordNodesExecuted(again); got != stations*perRecordNodes {
		t.Errorf("post-finish run executed %d record nodes, want %d", got, stations*perRecordNodes)
	}
	assertSameProducts(t, productHashes(t, dir), ref, "post-finish rerun")
}

// TestResumeIgnoresDigestMismatch reruns an unfinished journal under a
// different taper fraction: the journal's "done" claims are about another
// computation and must be ignored wholesale.
func TestResumeIgnoresDigestMismatch(t *testing.T) {
	ctx := context.Background()
	ev := testEvent(t)
	const stations = 3
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, dir, Pipelined, journalOptions()); err != nil {
		t.Fatal(err)
	}
	dropFinish(t, dir)

	resume := journalOptions()
	resume.Resume = true
	resume.TaperFraction = 0.10 // the journaled run used the 0.05 default
	res, err := Run(ctx, dir, Pipelined, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume.Resumed {
		t.Error("journal with a different params digest was adopted")
	}
	if got := recordNodesExecuted(resume); got != stations*perRecordNodes {
		t.Errorf("mismatched resume executed %d record nodes, want %d (everything)",
			got, stations*perRecordNodes)
	}
}

// TestResumeReplaysQuarantine hand-crafts a journal carrying a quarantine
// verdict: resume must condemn the station up front — outcome reported,
// retry budget unburned, records_quarantined counter untouched — and skip
// its subgraph.
func TestResumeReplaysQuarantine(t *testing.T) {
	ctx := context.Background()
	ev := testEvent(t)
	const stations = 3
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}

	resume := journalOptions()
	resume.Resume = true
	digest := journalParamsDigest(Pipelined, resume.withDefaults())
	jdir := filepath.Join(dir, RunJournalDir)
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	quar := journalQuar{station: "SS02", stage: StageIV, pid: PDefaultFilter,
		op: "stage-in", kind: ErrKindPermanent, attempts: 5, msg: "torn V1 component"}
	journal := buildJournal(startPayload(Pipelined, digest), quarPayload(quar))
	if err := os.WriteFile(filepath.Join(jdir, runJournalFile), journal, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Run(ctx, dir, Pipelined, resume)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resume.Resumed || res.Resume.QuarantinesReplayed != 1 {
		t.Fatalf("replay stats: %+v", res.Resume)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Station != "SS02" {
		t.Fatalf("Quarantined = %+v, want the replayed SS02 verdict", res.Quarantined)
	}
	if o := res.Quarantined[0]; o.Attempts != 5 || o.Stage != StageIV {
		t.Errorf("replayed outcome lost detail: %+v", o)
	}
	if v := resume.Observer.Counter("records_quarantined").Value(); v != 0 {
		t.Errorf("records_quarantined = %v, want 0 (inherited verdict, not newly earned)", v)
	}
	// Only the two healthy stations' subgraphs execute.
	if got := recordNodesExecuted(resume); got != (stations-1)*perRecordNodes {
		t.Errorf("executed %d record nodes, want %d", got, (stations-1)*perRecordNodes)
	}
	if len(res.Stations) != stations-1 {
		t.Errorf("surviving stations %v, want %d of them", res.Stations, stations-1)
	}
}

// TestJournaledRunSweepsStaleScratch seeds crashed-run debris (an old tmp_*
// scratch dir and an old .tmp atomic-write leftover) next to a fresh tmp_*
// dir: the journaled startup sweep removes only the stale pair, a resume
// sweep owns the directory and removes whatever remains.
func TestJournaledRunSweepsStaleScratch(t *testing.T) {
	ctx := context.Background()
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}

	old := time.Now().Add(-2 * time.Hour)
	staleDir := filepath.Join(dir, "tmp_zz_99_000")
	if err := os.Mkdir(staleDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(staleDir, "SS01L.v2"), []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	staleTmp := filepath.Join(dir, "SS01.v2.123.tmp")
	if err := os.WriteFile(staleTmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{staleDir, staleTmp} {
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	freshDir := filepath.Join(dir, "tmp_zz_99_999")
	if err := os.Mkdir(freshDir, 0o755); err != nil {
		t.Fatal(err)
	}

	opts := journalOptions()
	res, err := Run(ctx, dir, Pipelined, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume.ScratchSwept != 2 {
		t.Errorf("ScratchSwept = %d, want 2 (stale dir + stale temp file)", res.Resume.ScratchSwept)
	}
	if v := opts.Observer.Counter("stale_scratch_swept").Value(); v != 2 {
		t.Errorf("stale_scratch_swept = %v, want 2", v)
	}
	for _, p := range []string{staleDir, staleTmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Errorf("stale debris %s survived the sweep (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(freshDir); err != nil {
		t.Errorf("fresh scratch dir was swept by the age-bounded pass: %v", err)
	}

	// Resume owns the work directory: the surviving fresh dir goes too.
	resume := journalOptions()
	resume.Resume = true
	res, err = Run(ctx, dir, Pipelined, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resume.ScratchSwept != 1 {
		t.Errorf("resume ScratchSwept = %d, want 1 (the fresh dir)", res.Resume.ScratchSwept)
	}
	if _, err := os.Stat(freshDir); !os.IsNotExist(err) {
		t.Errorf("resume sweep left %s behind (err=%v)", freshDir, err)
	}
}

// FuzzJournalParse feeds hostile bytes to the journal parser: it must never
// panic, never report records without a start, and every parsed view must
// survive a format→reparse round trip.
func FuzzJournalParse(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(journalMagic + "\n"))
	f.Add(buildJournal(startPayload(Pipelined, "d"), "finish"))
	f.Add(buildJournal(
		startPayload(FullParallel, "deadbeef"),
		nodePayload(journalNode{pid: PFourier, station: "SS01", side: []byte{0, 1, 2}}),
		quarPayload(journalQuar{station: "SS02", stage: StageV, pid: PFourier,
			op: "stage-out", kind: ErrKindTransient, attempts: 2, msg: "x"}),
	))
	f.Add([]byte(journalMagic + "\n00ab12cd node 3 SS01"))
	f.Add([]byte("not a journal"))
	f.Fuzz(func(t *testing.T, data []byte) {
		v := parseJournal(data)
		if !v.started && (v.finished || len(v.nodes) != 0 || len(v.quars) != 0) {
			t.Fatalf("records without a start: %+v", v)
		}
		if !v.started {
			return
		}
		payloads := []string{startPayload(v.variant, v.digest)}
		for _, q := range v.quars {
			payloads = append(payloads, quarPayload(q))
		}
		for _, n := range v.nodes {
			payloads = append(payloads, nodePayload(n))
		}
		if v.finished {
			payloads = append(payloads, "finish")
		}
		rt := parseJournal(buildJournal(payloads...))
		if rt.started != v.started || rt.finished != v.finished || rt.digest != v.digest ||
			rt.variant != v.variant || len(rt.nodes) != len(v.nodes) || len(rt.quars) != len(v.quars) {
			t.Fatalf("format→reparse drift: %+v vs %+v", rt, v)
		}
	})
}
