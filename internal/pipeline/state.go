package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accelproc/internal/artifact"
	"accelproc/internal/faults"
	"accelproc/internal/ingest"
	"accelproc/internal/obs"
	"accelproc/internal/parallel"
	"accelproc/internal/seismic"
	"accelproc/internal/simsched"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
)

// state carries the per-run context shared by the process implementations:
// the work directory, the resolved options, the timing collector, and the
// observability handles.  All inter-process data flows through files, never
// through state.
type state struct {
	ctx context.Context
	// fail cancels the run context with a cause: the fail-fast path taken
	// when a parallel body hits a non-degradable error, so sibling workers
	// stop at their next cancellation point instead of finishing the loop.
	fail context.CancelCauseFunc
	dir  string
	opts Options
	tim  Timings

	// Storage and robustness machinery.  ws is the run's storage backend
	// (the undecorated workspace selected by Options.Storage); fs is the
	// surface every event-scoped staging operation goes through — ws wrapped
	// by the chaos decorator in chaos runs, ws itself otherwise; chaos
	// scopes record-level fault decisions; retry is the resolved policy.
	ws    storage.Workspace
	fs    faults.FS
	chaos *faults.Chaos
	retry RetryPolicy

	// informat is the decode-plane format override resolved from
	// Options.Format; nil means every input file is sniffed individually.
	informat ingest.Format

	// arts is the run's write-through artifact memo (see internal/artifact
	// and cache.go): decoded V1/V2/F/R payloads keyed by path and content
	// generation, so consumers skip re-parsing what a producer just
	// formatted.  Nil when Options.Cache disables caching — every store
	// method is nil-safe, so no call site checks.
	arts *artifact.Store
	// acache is the persistent content-addressed action cache (CacheMode
	// CachePersistent only; see actioncache.go for the pipeline's digest
	// scheme).  Nil otherwise, and nil under chaos: fault injection must
	// exercise the real staging protocol, not cached restores of it.
	acache *artifact.ActionCache

	// Write-ahead run journal (see journal.go).  journal is nil when
	// Options.Journal is off or the journal could not be opened; resumeDone
	// holds the replayed nodes the scheduler may skip — written once,
	// single-threaded, in initJournal, then read-only during execution.
	journal      *runJournal
	resumeDone   map[nodeKey]journalNode
	resumeStats  ResumeStats
	nodesSkipped atomic.Int64

	// Quarantine record: stations condemned by the retry engine, excluded
	// from every subsequent stations() listing so the event continues with
	// the survivors.
	quarMu         sync.Mutex
	quarantinedSet map[string]bool
	outcomes       []RecordOutcome
	nRetries       atomic.Int64
	// virt accumulates virtual-time corrections from the simulated
	// platform: each simulated parallel construct adds
	// (simulated makespan - serial execution time), a negative quantity,
	// so that wall + virt is the run's time on the simulated machine.
	virt time.Duration

	// Observability.  runSpan and stageSpan are written only at the
	// sequential points between stages; process spans are threaded
	// explicitly (timedProc) because task-parallel stages time processes
	// concurrently.  All handles are nil-safe when no Observer is set.
	runSpan    *obs.Span
	stageSpan  *obs.Span
	wmon       *obs.WorkerMonitor
	records    *obs.Counter
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	retries    *obs.Counter
	quarCount  *obs.Counter
	faultsCtr  *obs.Counter
	cleanupErr *obs.Counter
	links      *obs.Counter
	// recNodesExec counts per-(record,process) dataflow nodes that actually
	// ran their bodies (as opposed to restoring from the action cache) —
	// the warm-restart tests' "only the flipped record re-executed" signal.
	recNodesExec *obs.Counter
	// journalReplays / nodesSkippedCtr / sweptCtr mirror ResumeStats as
	// metrics, so the crash-matrix tests can assert resume behavior through
	// the observer like everything else.
	journalReplays  *obs.Counter
	nodesSkippedCtr *obs.Counter
	sweptCtr        *obs.Counter
}

// simulated reports whether parallel constructs run on the simulated
// platform instead of real goroutines.
func (s *state) simulated() bool { return s.opts.SimProcessors > 0 }

// now returns a monotonic timestamp for duration measurement.  On the
// simulated platform (where every body executes serially) it is the
// process CPU clock, immune to external host load; on the real platform it
// is wall time, which genuinely reflects parallel execution.
func (s *state) now() time.Duration {
	if s.simulated() && haveCPUClock {
		return cpuNow()
	}
	return time.Duration(time.Now().UnixNano())
}

// monitor returns the worker monitor as a parallel.Monitor interface,
// carefully keeping the interface itself nil when no observer is attached
// (a typed-nil *obs.WorkerMonitor would defeat the mon == nil fast paths in
// the parallel package).
func (s *state) monitor() parallel.Monitor {
	if s.wmon == nil {
		return nil
	}
	return s.wmon
}

// cancelled reports the context's error, making every parallel chunk and
// inter-process boundary a cancellation point.
func (s *state) cancelled() error { return context.Cause(s.ctx) }

// parFor executes body over [0, n) with the requested worker budget.  On
// the real platform it is a goroutine parallel loop; on the simulated
// platform the bodies run serially with per-item cost measurement, and the
// virtual clock is charged the list-scheduling makespan for the budgeted
// workers under the contention model of the given cost class.  In both
// modes every iteration first checks the run context, so cancellation
// aborts inside a chunk rather than only at the next stage boundary.
func (s *state) parFor(n, workers int, class Cost, body func(int) error) error {
	checked := func(i int) error {
		if err := s.cancelled(); err != nil {
			return err
		}
		err := body(i)
		if err != nil && classify(err) != ErrKindCanceled {
			// Fail fast: a body error that graceful degradation could not
			// absorb dooms the run, so cancel the run context with the real
			// cause and let sibling workers stop at their next check.
			s.fail(err)
		}
		return err
	}
	if !s.simulated() || workers == 1 {
		// Guided scheduling instead of static: record sizes span 56K-384K
		// data points, so equal-count static blocks leave workers idling
		// behind whichever block drew the big records (the stage-IX straggler
		// problem).  Guided claims shrink toward the tail, keeping occupancy
		// high without per-iteration dispatch overhead.
		return parallel.ParallelForMonitored(n, workers, parallel.ScheduleGuided, 1, s.monitor(), checked)
	}
	w := workers
	if w <= 0 {
		w = s.opts.SimProcessors
	}
	durs := make([]time.Duration, n)
	var firstErr error
	for i := 0; i < n; i++ {
		start := s.now()
		if err := checked(i); err != nil && firstErr == nil {
			firstErr = err
		}
		durs[i] = s.now() - start
	}
	if firstErr != nil {
		return firstErr
	}
	s.virt += simsched.Makespan(durs, w, s.contention(class)) - simsched.Sum(durs)
	return nil
}

// contention maps a process cost class to the simulated platform's
// contention coefficient.
func (s *state) contention(class Cost) float64 {
	if class == CostHeavyFLOPS {
		return s.opts.ContentionCPU
	}
	return s.opts.ContentionIO
}

func newState(ctx context.Context, dir string, opts Options) (*state, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: work directory: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("pipeline: %s is not a directory", dir)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.Streaming && opts.Chaos != nil {
		// Chaos interposes on the staged temp-folder protocol; the streaming
		// plane bypasses that protocol entirely, so combining them would
		// silently test nothing.
		return nil, fmt.Errorf("pipeline: streaming mode cannot be combined with chaos fault injection")
	}
	ctx, fail := context.WithCancelCause(ctx)
	s := &state{ctx: ctx, fail: fail, dir: dir, opts: opts.withDefaults()}
	s.retry = s.opts.Retry.withDefaults()
	s.quarantinedSet = make(map[string]bool)
	if name := s.opts.Format; name != "" {
		f, err := ingest.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		s.informat = f
	}
	ws, err := storage.New(s.opts.Storage)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	s.ws = ws
	s.fs = ws
	if c := s.opts.Chaos; c != nil {
		s.chaos = faults.NewChaos(faults.NewInjector(*c), ws, s.sleep)
		s.fs = s.chaos.At("", "")
	}
	if cc := s.opts.Cache; cc.Mode != CacheOff {
		s.arts = artifact.NewMemo(ws.Generation)
		// The action cache is bypassed under chaos (fault injection must
		// exercise the real staging protocol) and under streaming (node
		// outputs are produced incrementally through Create, never read back
		// whole for a Put, and restores would race the stream consumers).
		if cc.Mode == CachePersistent && s.chaos == nil && !s.opts.Streaming {
			root := cc.Dir
			if root == "" {
				root = filepath.Join(dir, CacheDirName)
			}
			s.acache, err = artifact.NewActionCache(ws, root, cc.maxBytes(), cc.VerifyOnHit)
			if err != nil {
				return nil, fmt.Errorf("pipeline: %w", err)
			}
		}
	}
	if o := s.opts.Observer; o != nil {
		s.wmon = obs.NewWorkerMonitor(o, "pipeline")
		s.records = o.Counter("records_processed_total")
		s.bytesIn = o.Counter("bytes_staged_in_total")
		s.bytesOut = o.Counter("bytes_staged_out_total")
		s.retries = o.Counter("retries")
		s.quarCount = o.Counter("records_quarantined")
		s.faultsCtr = o.Counter("faults_injected")
		s.cleanupErr = o.Counter("scratch_cleanup_errors")
		s.links = o.Counter("links_total")
		s.arts.SetCounters(o.Counter("cache_hits_total"),
			o.Counter("cache_misses_total"), o.Counter("cache_bytes_saved_total"))
		s.acache.SetCounters(o.Counter("action_cache_hits_total"),
			o.Counter("action_cache_misses_total"),
			o.Counter("action_cache_evictions_total"),
			o.Gauge("action_cache_bytes"))
		s.recNodesExec = o.Counter("dataflow_record_nodes_executed_total")
		s.journalReplays = o.Counter("journal_replays")
		s.nodesSkippedCtr = o.Counter("nodes_skipped_resume")
		s.sweptCtr = o.Counter("stale_scratch_swept")
		o.Counter("scrub_orphans_removed").Add(float64(s.acache.SweptOrphans()))
	}
	return s, nil
}

// fsAt returns the storage surface for record-scoped staging operations of
// the given stage tag and station: the workspace wrapped with record-scoped
// fault injection under chaos, the bare workspace otherwise.
func (s *state) fsAt(tag, station string) faults.FS {
	if s.chaos == nil {
		return s.ws
	}
	return s.chaos.At(tag, station)
}

// path resolves a file name inside the work directory.
func (s *state) path(name string) string { return filepath.Join(s.dir, name) }

// timed runs one process body and records its (virtual) time: the wall time
// plus any corrections the simulated platform charged during the body.  A
// process span is opened under the current stage span (or the run span when
// the process runs outside any stage) and ended with the charged duration,
// so trace trees agree with Result.Timings.  Each process boundary is a
// cancellation point.
func (s *state) timed(id ProcessID, body func() error) error {
	return s.timedProc(id, func(*obs.Span) error { return body() })
}

// timedProc is timed for bodies that open child task spans (the temp-folder
// staging steps): the process span is passed in explicitly rather than kept
// on state, because task-parallel stages time several processes at once.
func (s *state) timedProc(id ProcessID, body func(sp *obs.Span) error) error {
	if err := s.cancelled(); err != nil {
		return err
	}
	parent := s.stageSpan
	if parent == nil {
		parent = s.runSpan
	}
	sp := parent.Child("process:"+Processes[id].Name, obs.KindProcess,
		obs.Int("process", int64(id)), obs.String("process_name", Processes[id].Name))
	v0 := s.virt
	start := s.now()
	err := body(sp)
	d := (s.now() - start) + (s.virt - v0)
	s.tim.Process[id] += d
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return fmt.Errorf("pipeline: process #%d (%s): %w", id, Processes[id].Name, err)
	}
	sp.EndCharged(d)
	return nil
}

// timedStage measures the (virtual) time of a whole stage and wraps it in a
// stage span nested under the run span.
func (s *state) timedStage(id StageID, body func() error) error {
	if err := s.cancelled(); err != nil {
		return err
	}
	sp := s.runSpan.Child("stage:"+id.String(), obs.KindStage, obs.Int("stage", int64(id)))
	s.stageSpan = sp
	v0 := s.virt
	start := s.now()
	err := body()
	d := (s.now() - start) + (s.virt - v0)
	s.tim.Stage[id] += d
	s.stageSpan = nil
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return err
	}
	sp.EndCharged(d)
	return nil
}

// timedTask wraps one sub-process unit of work (a temp-folder staging step)
// in a task span under parent, charged with virtual-corrected time.
func (s *state) timedTask(parent *obs.Span, name string, body func() error) error {
	sp := parent.Child(name, obs.KindTask)
	v0 := s.virt
	start := s.now()
	err := body()
	d := (s.now() - start) + (s.virt - v0)
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return err
	}
	sp.EndCharged(d)
	return nil
}

// inputsByStation reads the gathered input list (the product of process #1)
// and maps every station code to its input file name — since the ingest
// plane, the list can mix any registered format, so the station is the name
// minus whatever registered extension it carries.  Quarantined records are
// NOT filtered here: callers that need only survivors use stations().
func (s *state) inputsByStation() (map[string]string, error) {
	list, err := smformat.ReadFileListFileFS(s.ws, s.path(smformat.V1ListFile))
	if err != nil {
		return nil, err
	}
	m := make(map[string]string, len(list.Files))
	for _, f := range list.Files {
		st, ok := ingest.StationOf(f)
		if !ok {
			return nil, fmt.Errorf("pipeline: v1list entry %q is not a record file of a registered format", f)
		}
		m[st] = f
	}
	return m, nil
}

// inputFileOf resolves one station's input file name from the gathered list.
func (s *state) inputFileOf(st string) (string, error) {
	m, err := s.inputsByStation()
	if err != nil {
		return "", err
	}
	name, ok := m[st]
	if !ok {
		return "", fmt.Errorf("pipeline: station %s has no input file in v1list", st)
	}
	return name, nil
}

// stations reads the gathered input list (the product of process #1) and
// returns the station codes in sorted order, excluding records condemned to
// quarantine — downstream processes see only the survivors.
func (s *state) stations() ([]string, error) {
	m, err := s.inputsByStation()
	if err != nil {
		return nil, err
	}
	stations := make([]string, 0, len(m))
	for st := range m {
		if s.isQuarantined(st) {
			continue
		}
		stations = append(stations, st)
	}
	sort.Strings(stations)
	return stations, nil
}

// liveFiles filters a metadata file list down to the entries of surviving
// records.  The lists are written by the stage-II initializers before any
// record can be quarantined, so the list-driven processes (#7, #16) must
// drop the per-component files of condemned stations.
func (s *state) liveFiles(names []string) []string {
	s.quarMu.Lock()
	qs := make([]string, 0, len(s.quarantinedSet))
	for st := range s.quarantinedSet {
		qs = append(qs, st)
	}
	s.quarMu.Unlock()
	if len(qs) == 0 {
		return names
	}
	dead := make(map[string]bool, 12*len(qs))
	for _, st := range qs {
		for _, c := range seismic.Components {
			dead[smformat.V1ComponentFileName(st, c)] = true
			dead[smformat.V2FileName(st, c)] = true
			dead[smformat.FourierFileName(st, c)] = true
			dead[smformat.ResponseFileName(st, c)] = true
		}
	}
	live := make([]string, 0, len(names))
	for _, n := range names {
		if !dead[n] {
			live = append(live, n)
		}
	}
	return live
}

// signals expands stations into the 3N (station, component) pairs in
// deterministic order.
func signals(stations []string) []smformat.SignalKey {
	keys := make([]smformat.SignalKey, 0, 3*len(stations))
	for _, st := range stations {
		for _, c := range seismic.Components {
			keys = append(keys, smformat.SignalKey{Station: st, Component: c})
		}
	}
	return keys
}
