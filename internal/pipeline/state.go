package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"accelproc/internal/obs"
	"accelproc/internal/parallel"
	"accelproc/internal/seismic"
	"accelproc/internal/simsched"
	"accelproc/internal/smformat"
)

// state carries the per-run context shared by the process implementations:
// the work directory, the resolved options, the timing collector, and the
// observability handles.  All inter-process data flows through files, never
// through state.
type state struct {
	ctx  context.Context
	dir  string
	opts Options
	tim  Timings
	// virt accumulates virtual-time corrections from the simulated
	// platform: each simulated parallel construct adds
	// (simulated makespan - serial execution time), a negative quantity,
	// so that wall + virt is the run's time on the simulated machine.
	virt time.Duration

	// Observability.  runSpan and stageSpan are written only at the
	// sequential points between stages; process spans are threaded
	// explicitly (timedProc) because task-parallel stages time processes
	// concurrently.  All handles are nil-safe when no Observer is set.
	runSpan   *obs.Span
	stageSpan *obs.Span
	wmon      *obs.WorkerMonitor
	records   *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
}

// simulated reports whether parallel constructs run on the simulated
// platform instead of real goroutines.
func (s *state) simulated() bool { return s.opts.SimProcessors > 0 }

// now returns a monotonic timestamp for duration measurement.  On the
// simulated platform (where every body executes serially) it is the
// process CPU clock, immune to external host load; on the real platform it
// is wall time, which genuinely reflects parallel execution.
func (s *state) now() time.Duration {
	if s.simulated() && haveCPUClock {
		return cpuNow()
	}
	return time.Duration(time.Now().UnixNano())
}

// monitor returns the worker monitor as a parallel.Monitor interface,
// carefully keeping the interface itself nil when no observer is attached
// (a typed-nil *obs.WorkerMonitor would defeat the mon == nil fast paths in
// the parallel package).
func (s *state) monitor() parallel.Monitor {
	if s.wmon == nil {
		return nil
	}
	return s.wmon
}

// cancelled reports the context's error, making every parallel chunk and
// inter-process boundary a cancellation point.
func (s *state) cancelled() error { return context.Cause(s.ctx) }

// parFor executes body over [0, n) with the requested worker budget.  On
// the real platform it is a goroutine parallel loop; on the simulated
// platform the bodies run serially with per-item cost measurement, and the
// virtual clock is charged the list-scheduling makespan for the budgeted
// workers under the contention model of the given cost class.  In both
// modes every iteration first checks the run context, so cancellation
// aborts inside a chunk rather than only at the next stage boundary.
func (s *state) parFor(n, workers int, class Cost, body func(int) error) error {
	checked := func(i int) error {
		if err := s.cancelled(); err != nil {
			return err
		}
		return body(i)
	}
	if !s.simulated() || workers == 1 {
		return parallel.ParallelForMonitored(n, workers, parallel.ScheduleStatic, 0, s.monitor(), checked)
	}
	w := workers
	if w <= 0 {
		w = s.opts.SimProcessors
	}
	durs := make([]time.Duration, n)
	var firstErr error
	for i := 0; i < n; i++ {
		start := s.now()
		if err := checked(i); err != nil && firstErr == nil {
			firstErr = err
		}
		durs[i] = s.now() - start
	}
	if firstErr != nil {
		return firstErr
	}
	s.virt += simsched.Makespan(durs, w, s.contention(class)) - simsched.Sum(durs)
	return nil
}

// contention maps a process cost class to the simulated platform's
// contention coefficient.
func (s *state) contention(class Cost) float64 {
	if class == CostHeavyFLOPS {
		return s.opts.ContentionCPU
	}
	return s.opts.ContentionIO
}

func newState(ctx context.Context, dir string, opts Options) (*state, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: work directory: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("pipeline: %s is not a directory", dir)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &state{ctx: ctx, dir: dir, opts: opts.withDefaults()}
	if o := s.opts.Observer; o != nil {
		s.wmon = obs.NewWorkerMonitor(o, "pipeline")
		s.records = o.Counter("records_processed_total")
		s.bytesIn = o.Counter("bytes_staged_in_total")
		s.bytesOut = o.Counter("bytes_staged_out_total")
	}
	return s, nil
}

// path resolves a file name inside the work directory.
func (s *state) path(name string) string { return filepath.Join(s.dir, name) }

// timed runs one process body and records its (virtual) time: the wall time
// plus any corrections the simulated platform charged during the body.  A
// process span is opened under the current stage span (or the run span when
// the process runs outside any stage) and ended with the charged duration,
// so trace trees agree with Result.Timings.  Each process boundary is a
// cancellation point.
func (s *state) timed(id ProcessID, body func() error) error {
	return s.timedProc(id, func(*obs.Span) error { return body() })
}

// timedProc is timed for bodies that open child task spans (the temp-folder
// staging steps): the process span is passed in explicitly rather than kept
// on state, because task-parallel stages time several processes at once.
func (s *state) timedProc(id ProcessID, body func(sp *obs.Span) error) error {
	if err := s.cancelled(); err != nil {
		return err
	}
	parent := s.stageSpan
	if parent == nil {
		parent = s.runSpan
	}
	sp := parent.Child("process:"+Processes[id].Name, obs.KindProcess,
		obs.Int("process", int64(id)), obs.String("process_name", Processes[id].Name))
	v0 := s.virt
	start := s.now()
	err := body(sp)
	d := (s.now() - start) + (s.virt - v0)
	s.tim.Process[id] += d
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return fmt.Errorf("pipeline: process #%d (%s): %w", id, Processes[id].Name, err)
	}
	sp.EndCharged(d)
	return nil
}

// timedStage measures the (virtual) time of a whole stage and wraps it in a
// stage span nested under the run span.
func (s *state) timedStage(id StageID, body func() error) error {
	if err := s.cancelled(); err != nil {
		return err
	}
	sp := s.runSpan.Child("stage:"+id.String(), obs.KindStage, obs.Int("stage", int64(id)))
	s.stageSpan = sp
	v0 := s.virt
	start := s.now()
	err := body()
	d := (s.now() - start) + (s.virt - v0)
	s.tim.Stage[id] += d
	s.stageSpan = nil
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return err
	}
	sp.EndCharged(d)
	return nil
}

// timedTask wraps one sub-process unit of work (a temp-folder staging step)
// in a task span under parent, charged with virtual-corrected time.
func (s *state) timedTask(parent *obs.Span, name string, body func() error) error {
	sp := parent.Child(name, obs.KindTask)
	v0 := s.virt
	start := s.now()
	err := body()
	d := (s.now() - start) + (s.virt - v0)
	if err != nil {
		sp.EndCharged(d, obs.String("error", err.Error()))
		return err
	}
	sp.EndCharged(d)
	return nil
}

// stations reads the gathered input list (the product of process #1) and
// returns the station codes in sorted order.
func (s *state) stations() ([]string, error) {
	list, err := smformat.ReadFileListFile(s.path(smformat.V1ListFile))
	if err != nil {
		return nil, err
	}
	stations := make([]string, 0, len(list.Files))
	for _, f := range list.Files {
		st, ok := strings.CutSuffix(f, ".v1")
		if !ok {
			return nil, fmt.Errorf("pipeline: v1list entry %q is not a .v1 file", f)
		}
		stations = append(stations, st)
	}
	sort.Strings(stations)
	return stations, nil
}

// signals expands stations into the 3N (station, component) pairs in
// deterministic order.
func signals(stations []string) []smformat.SignalKey {
	keys := make([]smformat.SignalKey, 0, 3*len(stations))
	for _, st := range stations {
		for _, c := range seismic.Components {
			keys = append(keys, smformat.SignalKey{Station: st, Component: c})
		}
	}
	return keys
}
