package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"accelproc/internal/parallel"
	"accelproc/internal/seismic"
	"accelproc/internal/simsched"
	"accelproc/internal/smformat"
)

// state carries the per-run context shared by the process implementations:
// the work directory, the resolved options, and the timing collector.
// All inter-process data flows through files, never through state.
type state struct {
	dir  string
	opts Options
	tim  Timings
	// virt accumulates virtual-time corrections from the simulated
	// platform: each simulated parallel construct adds
	// (simulated makespan - serial execution time), a negative quantity,
	// so that wall + virt is the run's time on the simulated machine.
	virt time.Duration
}

// simulated reports whether parallel constructs run on the simulated
// platform instead of real goroutines.
func (s *state) simulated() bool { return s.opts.SimProcessors > 0 }

// now returns a monotonic timestamp for duration measurement.  On the
// simulated platform (where every body executes serially) it is the
// process CPU clock, immune to external host load; on the real platform it
// is wall time, which genuinely reflects parallel execution.
func (s *state) now() time.Duration {
	if s.simulated() && haveCPUClock {
		return cpuNow()
	}
	return time.Duration(time.Now().UnixNano())
}

// parFor executes body over [0, n) with the requested worker budget.  On
// the real platform it is a goroutine parallel loop; on the simulated
// platform the bodies run serially with per-item cost measurement, and the
// virtual clock is charged the list-scheduling makespan for the budgeted
// workers under the contention model of the given cost class.
func (s *state) parFor(n, workers int, class Cost, body func(int) error) error {
	if !s.simulated() || workers == 1 {
		return parallel.ParallelFor(n, workers, body)
	}
	w := workers
	if w <= 0 {
		w = s.opts.SimProcessors
	}
	durs := make([]time.Duration, n)
	var firstErr error
	for i := 0; i < n; i++ {
		start := s.now()
		if err := body(i); err != nil && firstErr == nil {
			firstErr = err
		}
		durs[i] = s.now() - start
	}
	if firstErr != nil {
		return firstErr
	}
	s.virt += simsched.Makespan(durs, w, s.contention(class)) - simsched.Sum(durs)
	return nil
}

// contention maps a process cost class to the simulated platform's
// contention coefficient.
func (s *state) contention(class Cost) float64 {
	if class == CostHeavyFLOPS {
		return s.opts.ContentionCPU
	}
	return s.opts.ContentionIO
}

func newState(dir string, opts Options) (*state, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("pipeline: work directory: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("pipeline: %s is not a directory", dir)
	}
	return &state{dir: dir, opts: opts.withDefaults()}, nil
}

// path resolves a file name inside the work directory.
func (s *state) path(name string) string { return filepath.Join(s.dir, name) }

// timed runs one process body and records its (virtual) time: the wall time
// plus any corrections the simulated platform charged during the body.
func (s *state) timed(id ProcessID, body func() error) error {
	v0 := s.virt
	start := s.now()
	err := body()
	d := (s.now() - start) + (s.virt - v0)
	s.tim.Process[id] += d
	if err != nil {
		return fmt.Errorf("pipeline: process #%d (%s): %w", id, Processes[id].Name, err)
	}
	if s.opts.Progress != nil {
		s.opts.Progress(id, d)
	}
	return nil
}

// timedStage measures the (virtual) time of a whole stage.
func (s *state) timedStage(id StageID, body func() error) error {
	v0 := s.virt
	start := s.now()
	err := body()
	s.tim.Stage[id] += (s.now() - start) + (s.virt - v0)
	return err
}

// stations reads the gathered input list (the product of process #1) and
// returns the station codes in sorted order.
func (s *state) stations() ([]string, error) {
	list, err := smformat.ReadFileListFile(s.path(smformat.V1ListFile))
	if err != nil {
		return nil, err
	}
	stations := make([]string, 0, len(list.Files))
	for _, f := range list.Files {
		st, ok := strings.CutSuffix(f, ".v1")
		if !ok {
			return nil, fmt.Errorf("pipeline: v1list entry %q is not a .v1 file", f)
		}
		stations = append(stations, st)
	}
	sort.Strings(stations)
	return stations, nil
}

// signals expands stations into the 3N (station, component) pairs in
// deterministic order.
func signals(stations []string) []smformat.SignalKey {
	keys := make([]smformat.SignalKey, 0, 3*len(stations))
	for _, st := range stations {
		for _, c := range seismic.Components {
			keys = append(keys, smformat.SignalKey{Station: st, Component: c})
		}
	}
	return keys
}
