package pipeline

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/obs"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// TestArtifactCacheAblationProducesIdenticalOutputs is the tentpole
// invariant of the artifact store: with the cache on (default) and off
// (NoArtifactCache), every variant writes byte-identical product files.
func TestArtifactCacheAblationProducesIdenticalOutputs(t *testing.T) {
	ev := testEvent(t)
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			opts := testOptions()
			dirRef, _ := runVariant(t, ev, v, opts)
			ref := productHashes(t, dirRef)

			opts.NoArtifactCache = true
			dir, _ := runVariant(t, ev, v, opts)
			got := productHashes(t, dir)
			if len(got) != len(ref) {
				t.Errorf("product count %d, want %d", len(got), len(ref))
			}
			for name, h := range ref {
				if got[name] != h {
					t.Errorf("product %s differs with the artifact cache disabled", name)
				}
			}
		})
	}
}

// TestArtifactCacheCounters asserts the cache is actually doing work on a
// healthy run — hits, misses, decode bytes saved, and hardlinked staging
// copies all observed — and that the ablation flag really disables it.
func TestArtifactCacheCounters(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	opts.Observer = obs.New()
	_, _ = runVariant(t, ev, FullParallel, opts)
	o := opts.Observer
	if v := o.Counter("cache_hits_total").Value(); v <= 0 {
		t.Errorf("cache_hits_total = %v, want > 0", v)
	}
	if v := o.Counter("cache_misses_total").Value(); v <= 0 {
		t.Errorf("cache_misses_total = %v, want > 0", v)
	}
	if v := o.Counter("cache_bytes_saved_total").Value(); v <= 0 {
		t.Errorf("cache_bytes_saved_total = %v, want > 0", v)
	}
	if v := o.Counter("links_total").Value(); v <= 0 {
		t.Errorf("links_total = %v, want > 0 (hardlink staging on the plain filesystem)", v)
	}

	uncached := testOptions()
	uncached.NoArtifactCache = true
	uncached.Observer = obs.New()
	_, _ = runVariant(t, ev, FullParallel, uncached)
	if v := uncached.Observer.Counter("cache_hits_total").Value(); v != 0 {
		t.Errorf("cache_hits_total = %v with the cache disabled, want 0", v)
	}
	if v := uncached.Observer.Counter("cache_misses_total").Value(); v != 0 {
		t.Errorf("cache_misses_total = %v with the cache disabled, want 0", v)
	}
}

// TestCacheHandlesDetectExternalMutation drives the codec handles directly:
// a value cached by writeV2 must not be served after the file changes on
// disk behind the store.
func TestCacheHandlesDetectExternalMutation(t *testing.T) {
	s, err := newState(context.Background(), t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)

	rng := rand.New(rand.NewSource(31))
	mkV2 := func(n int) smformat.V2 {
		data := func() []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = rng.NormFloat64()
			}
			return out
		}
		return smformat.V2{
			Station:   "SS01",
			Component: seismic.Longitudinal,
			DT:        0.01,
			Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
			Accel:     data(), Vel: data(), Disp: data(),
		}
	}

	path := s.path(smformat.V2FileName("SS01", seismic.Longitudinal))
	first := mkV2(8)
	if err := s.writeV2(path, first); err != nil {
		t.Fatal(err)
	}
	got, err := s.readV2(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, first) {
		t.Fatal("cached read does not match the written value")
	}

	// Replace the file behind the store with a different record.
	second := mkV2(12)
	if err := smformat.WriteV2File(path, second); err != nil {
		t.Fatal(err)
	}
	got, err = s.readV2(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, second) {
		t.Error("stale cache entry served after the file changed on disk")
	}
}

// TestFilterParamsHandleCopiesMap pins the one aliasing exception: the map
// inside a cached FilterParams must be private to each reader, because
// process #10 mutates it in place between read and write.
func TestFilterParamsHandleCopiesMap(t *testing.T) {
	s, err := newState(context.Background(), t.TempDir(), testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)

	path := s.path(smformat.FilterParamsFile)
	params := smformat.FilterParams{
		Default:   dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		PerSignal: map[smformat.SignalKey]dsp.BandPassSpec{},
	}
	if err := s.writeFilterParams(path, params); err != nil {
		t.Fatal(err)
	}
	a, err := s.readFilterParams(path)
	if err != nil {
		t.Fatal(err)
	}
	key := smformat.SignalKey{Station: "SS01", Component: seismic.Longitudinal}
	a.PerSignal[key] = dsp.BandPassSpec{FSL: 1, FPL: 2, FPH: 3, FSH: 4}

	b, err := s.readFilterParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, leaked := b.PerSignal[key]; leaked {
		t.Error("mutation of one reader's PerSignal map leaked into the cached value")
	}
}
