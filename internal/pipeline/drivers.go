package pipeline

import (
	"context"
	"fmt"
	"time"

	"accelproc/internal/obs"
	"accelproc/internal/parallel"
	"accelproc/internal/simsched"
)

// Run executes one variant of the pipeline on the work directory and
// returns its result with per-process and per-stage timings.  The directory
// must contain the multiplexed <station>.v1 input files; every product of
// the chain is written next to them.
//
// ctx cancellation aborts the run between processes and inside parallel
// chunks; the returned error is then the context's cause.  When
// opts.Observer is set, the run reports a span tree rooted at a "run" span
// (nested under opts.ParentSpan if given) whose charged durations match the
// returned Timings.
func Run(ctx context.Context, dir string, variant Variant, opts Options) (Result, error) {
	if opts.Streaming && variant != Pipelined {
		return Result{}, fmt.Errorf("pipeline: streaming requires the pipelined variant, not %s", variant)
	}
	s, err := newState(ctx, dir, opts)
	if err != nil {
		return Result{}, err
	}
	defer func() {
		// Flush the chaos tally into the observer and release the run's
		// cancel-cause context (a no-op if fail-fast already fired).
		s.faultsCtr.Add(float64(s.chaos.Injected()))
		s.fail(nil)
	}()
	if opts.ParentSpan != nil {
		s.runSpan = opts.ParentSpan.Child("run:"+variant.String(), obs.KindRun,
			obs.String("variant", variant.String()), obs.String("dir", dir))
	} else {
		s.runSpan = opts.Observer.Root("run:"+variant.String(), obs.KindRun,
			obs.String("variant", variant.String()), obs.String("dir", dir))
	}
	// Open (and under -resume, replay) the write-ahead journal before the
	// clock starts: replay and the stale-scratch sweep are recovery work,
	// not pipeline work.
	s.initJournal(variant)
	start := s.now()
	switch variant {
	case SeqOriginal:
		err = s.runSequential(true)
	case SeqOptimized:
		err = s.runSequential(false)
	case PartialParallel:
		err = s.runStaged(false)
	case FullParallel:
		err = s.runStaged(true)
	case Pipelined:
		err = s.runPipelined()
	default:
		return Result{}, fmt.Errorf("pipeline: unknown variant %d", int(variant))
	}
	return s.finishRun(variant, start, err)
}

// finishRun completes a run after its variant body returned: materialize the
// workspace, close the journal, fold the virtual clock into the total, and
// assemble the Result.  Shared by Run and the fleet scheduler, whose
// per-event Finish phase ends here on a pool worker.
func (s *state) finishRun(variant Variant, start time.Duration, err error) (Result, error) {
	if err == nil {
		// Flush the storage backend's in-memory state (a no-op on the fs
		// backend) so the work directory holds the complete, byte-identical
		// event products.  Charged inside the total: materialization is part
		// of what the mem backend costs, and the disk-vs-memory ablation
		// must not credit it for deferring the writes.
		err = s.ws.Materialize(s.dir)
	}
	if err == nil {
		// The run is durably complete: mark the journal finished so a later
		// -resume knows there is nothing to replay.
		s.journal.finish()
	}
	// On the simulated platform s.virt carries the (negative) difference
	// between serial execution and the simulated parallel makespans.
	total := (s.now() - start) + s.virt
	if err != nil {
		s.runSpan.EndCharged(total, obs.String("error", err.Error()))
		return Result{}, err
	}
	s.tim.Total = total
	stations, err := s.stations()
	if err != nil {
		s.runSpan.EndCharged(total, obs.String("error", err.Error()))
		return Result{}, err
	}
	// One corrected component record per (station, component) pair; only
	// surviving stations count — quarantined ones are reported separately.
	s.records.Add(float64(3 * len(stations)))
	resident, peak := s.ws.ResidentBytes()
	if o := s.opts.Observer; o != nil {
		o.Gauge("storage_bytes_resident").Set(float64(resident))
		o.Gauge("storage_bytes_resident_peak").Set(float64(peak))
	}
	quarantined := s.quarantinedOutcomes()
	s.runSpan.EndCharged(total, obs.Int("stations", int64(len(stations))),
		obs.Int("quarantined", int64(len(quarantined))))
	var cs CacheStats
	cs.MemoHits, cs.MemoMisses = s.arts.Counts()
	cs.ActionHits, cs.ActionMisses, cs.ActionEvictions = s.acache.Counts()
	cs.ActionBytes = s.acache.Bytes()
	return Result{
		Variant:          variant,
		Stations:         stations,
		Timings:          s.tim,
		Quarantined:      quarantined,
		Retries:          s.nRetries.Load(),
		FaultsInjected:   int64(s.chaos.Injected()),
		StorageBytesPeak: peak,
		Cache:            cs,
		Resume:           s.resumeSnapshot(),
	}, nil
}

// runSequential executes the original (or optimized) strictly sequential
// chain: the 20 (or 17) processes in their Figure 5 order, one after the
// other, every inner loop serial.  Stage timings are attributed via the
// reordered schedule's stage map so sequential and parallel runs can be
// compared stage by stage.
func (s *state) runSequential(withRedundant bool) error {
	type step struct {
		id  ProcessID
		run func() error
	}
	steps := []step{
		{PInitFlags, s.procInitFlags},
		{PGatherInputs, s.procGatherInputs},
		{PInitFilterParams, s.procInitFilterParams},
		{PSeparateComponents, func() error { return s.procSeparateComponents(1) }},
		{PDefaultFilter, func() error { return s.applyFilters(1) }},
		{PInitMetadata, s.procInitMetadata},
		{PPlotUncorrected, s.procPlotUncorrected}, // redundant
		{PFourier, func() error { return s.procFourier(1) }},
		{PInitFourierGraph, s.procInitFourierGraph},
		{PPlotFourier, s.procPlotFourier},
		{PPickCorners, func() error { return s.procPickCorners(1) }},
		{PInitFlags2, s.procInitFlags},
		{PSeparateComps2, func() error { return s.procSeparateComponents(1) }}, // redundant
		{PCorrectedFilter, func() error { return s.applyFilters(1) }},
		{PInitMetadata2, s.procInitMetadata}, // redundant
		{PPlotAccel, s.procPlotAccel},
		{PResponseSpectrum, func() error { return s.procResponseSpectrum(1) }},
		{PInitResponseGraph, s.procInitResponseGraph},
		{PPlotResponse, s.procPlotResponse},
		{PGenerateGEM, func() error { return s.procGenerateGEM(1) }},
	}
	for _, st := range steps {
		if !withRedundant && Processes[st.id].Redundant {
			continue
		}
		stage := StageOf(st.id)
		run := func() error { return s.timed(st.id, st.run) }
		if stage != 0 {
			if err := s.timedStage(stage, run); err != nil {
				return err
			}
		} else if err := run(); err != nil {
			return err
		}
	}
	return nil
}

// runStaged executes the reordered 11-stage schedule (paper Fig. 9).  With
// full=false it applies the partial-parallelization strategies (stages I,
// II, VI, X, XI parallel); with full=true the full-parallelization
// strategies (every stage except VII parallel, including the temp-folder
// protocol for stages IV, V, and VIII).
func (s *state) runStaged(full bool) error {
	w := s.opts.Workers
	mw := s.opts.MetaWorkers
	strategyOf := func(id StageID) Strategy {
		info := Stages[id-1]
		if full {
			return info.Full
		}
		return info.Partial
	}
	loopWorkers := func(id StageID) int {
		if strategyOf(id) == StratSequential {
			return 1
		}
		return w
	}
	taskWorkers := func(id StageID) int {
		if strategyOf(id) == StratSequential {
			return 1
		}
		return mw
	}

	// Stage I: processes #0 and #1 as tasks.
	err := s.taskStage(StageI, taskWorkers(StageI), []taskSpec{
		{PInitFlags, s.procInitFlags},
		{PGatherInputs, s.procGatherInputs},
	})
	if err != nil {
		return err
	}

	// Stage II: the four metadata initializers as tasks.
	err = s.taskStage(StageII, taskWorkers(StageII), []taskSpec{
		{PInitFilterParams, s.procInitFilterParams},
		{PInitMetadata, s.procInitMetadata},
		{PInitFourierGraph, s.procInitFourierGraph},
		{PInitResponseGraph, s.procInitResponseGraph},
	})
	if err != nil {
		return err
	}

	// Stage III: separate components (parallel station loop when full).
	err = s.timedStage(StageIII, func() error {
		return s.timed(PSeparateComponents, func() error {
			return s.procSeparateComponents(loopWorkers(StageIII))
		})
	})
	if err != nil {
		return err
	}

	// Stage IV: default filters (temp-folder protocol when full).
	err = s.timedStage(StageIV, func() error {
		return s.timedProc(PDefaultFilter, func(sp *obs.Span) error {
			if strategyOf(StageIV) == StratTempFolder {
				if s.opts.NoTempFolders {
					return s.applyFilters(w)
				}
				return s.filterViaTempFolders(sp, StageIV, PDefaultFilter, "def", w)
			}
			return s.applyFilters(1)
		})
	})
	if err != nil {
		return err
	}

	// Stage V: Fourier transformation (temp-folder protocol when full).
	err = s.timedStage(StageV, func() error {
		return s.timedProc(PFourier, func(sp *obs.Span) error {
			if strategyOf(StageV) == StratTempFolder {
				if s.opts.NoTempFolders {
					return s.procFourier(w)
				}
				return s.fourierViaTempFolders(sp, w)
			}
			return s.procFourier(1)
		})
	})
	if err != nil {
		return err
	}

	// Stage VI: FPL/FSL picking, parallel over the three components.
	err = s.timedStage(StageVI, func() error {
		return s.timed(PPickCorners, func() error {
			cw := 1
			if strategyOf(StageVI) == StratLoop {
				cw = 3
			}
			return s.procPickCorners(cw)
		})
	})
	if err != nil {
		return err
	}

	// Stage VII: the trivial second flag initialization, never parallel.
	err = s.timedStage(StageVII, func() error {
		return s.timed(PInitFlags2, s.procInitFlags)
	})
	if err != nil {
		return err
	}

	// Stage VIII: definitive correction with the picked corners.
	err = s.timedStage(StageVIII, func() error {
		return s.timedProc(PCorrectedFilter, func(sp *obs.Span) error {
			if strategyOf(StageVIII) == StratTempFolder {
				if s.opts.NoTempFolders {
					return s.applyFilters(w)
				}
				return s.filterViaTempFolders(sp, StageVIII, PCorrectedFilter, "cor", w)
			}
			return s.applyFilters(1)
		})
	})
	if err != nil {
		return err
	}

	// Stage IX: response spectra (parallel component-file loop when full).
	err = s.timedStage(StageIX, func() error {
		return s.timed(PResponseSpectrum, func() error {
			return s.procResponseSpectrum(loopWorkers(StageIX))
		})
	})
	if err != nil {
		return err
	}

	// Stage X: GEM generation (parallel in both parallel variants).
	err = s.timedStage(StageX, func() error {
		return s.timed(PGenerateGEM, func() error {
			return s.procGenerateGEM(loopWorkers(StageX))
		})
	})
	if err != nil {
		return err
	}

	// Stage XI: the three plotting processes as tasks.
	return s.taskStage(StageXI, taskWorkers(StageXI), []taskSpec{
		{PPlotFourier, s.procPlotFourier},
		{PPlotAccel, s.procPlotAccel},
		{PPlotResponse, s.procPlotResponse},
	})
}

// taskSpec pairs a process with its body for a task-parallel stage.
type taskSpec struct {
	id ProcessID
	fn func() error
}

// taskStage runs the given processes as an OpenMP-style task group.  On the
// real platform the tasks run as bounded goroutines and the stage time is
// their joint wall time; on the simulated platform they run serially with
// per-task measurement and the stage is charged the task-group makespan.
func (s *state) taskStage(id StageID, workers int, tasks []taskSpec) error {
	if !s.simulated() || workers == 1 {
		return s.timedStage(id, func() error {
			fns := make([]func() error, 0, len(tasks))
			for _, t := range tasks {
				t := t
				fns = append(fns, func() error { return s.timed(t.id, t.fn) })
			}
			return parallel.RunTasksMonitored(workers, s.monitor(), fns...)
		})
	}
	return s.timedStage(id, func() error {
		durs := make([]time.Duration, len(tasks))
		for i, t := range tasks {
			before := s.tim.Process[t.id]
			if err := s.timed(t.id, t.fn); err != nil {
				return err
			}
			durs[i] = s.tim.Process[t.id] - before
		}
		s.virt += simsched.Makespan(durs, workers, s.opts.ContentionCPU) - simsched.Sum(durs)
		return nil
	})
}
