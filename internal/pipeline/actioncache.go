package pipeline

import (
	"bytes"
	"encoding/json"
	"fmt"

	"accelproc/internal/artifact"
	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// This file gives the dataflow scheduler its action-cache skip rule: every
// per-(record,process) node is keyed by a digest of (scheme, process id,
// station, input artifact contents, and the Options parameters the node's
// kernels read), following the build-action scheme of cmd/go.  A node whose
// digest is already in the cache restores its recorded outputs instead of
// running; re-submitting an event with one changed station therefore redoes
// only that record's subgraph, because no other record's digests moved.
//
// Why parameters are part of the key: two runs over identical inputs but a
// different taper fraction, instrument deconvolution, response method, or
// corner-pick configuration must not share outputs — the options are inputs
// to the computation in every way that matters, they just don't arrive as
// files.  Hashing them closes the same hole hashing file contents closes
// for mtime: identity comes from what the stage actually consumes.
//
// Filter parameters are hashed as the *station's slice* of the filter-params
// file (the default corners plus this station's three per-signal entries),
// not the whole file: the file carries every station's picked corners, so a
// whole-file hash would invalidate all records whenever one record's picks
// change — exactly the cross-record coupling the action cache exists to cut.
//
// Two outputs never land as work-directory files and ride the manifest as
// "@"-prefixed side-channel blobs instead: the max-values fragment a filter
// node hands its join (restored into b.fragsDef/b.fragsCor), and the picked
// corners of process #10 (restored into b.picks, so the filter-params join
// rewrites the identical merged file).  Join and global nodes always run —
// they are cheap merges and metadata writes whose inputs the restored
// fragments reproduce bit-for-bit.

// actionScheme versions the digest layout; bump on any change to the hashed
// fields so entries from older binaries can never alias.  v2: process #3
// hashes the station's actual input file (any ingest format) plus the
// -format override and QC configuration instead of assuming <st>.v1.
const actionScheme = "accelproc/action/v2"

// Side-channel blob names; "@" keeps them disjoint from real file names.
const (
	sideMaxValues = "@maxvalues"
	sidePicks     = "@picks"
)

// nodeAction computes the action digest of one per-record node.  ok=false
// means the node is not cacheable right now — no action cache, an input
// unreadable (the body will surface the real error), or a process with no
// digest rule — and the node must execute.
func (b *dfBuild) nodeAction(pid ProcessID, st string) (artifact.ActionID, bool) {
	s := b.s
	if s.acache == nil || st == "" {
		return artifact.ActionID{}, false
	}
	h := artifact.NewHasher(actionScheme)
	h.Int(int64(pid))
	h.String(st)
	ok := true
	switch pid {
	case PSeparateComponents:
		name, err := s.inputFileOf(st)
		if err != nil {
			return artifact.ActionID{}, false
		}
		ok = b.hashFiles(h, name)
		h.String("format:" + s.opts.Format)
		h.String("qc:" + s.opts.QC.String())
	case PDefaultFilter, PCorrectedFilter:
		ok = b.hashFilterParamsFor(h, st) &&
			b.hashFiles(h, componentNames(smformat.V1ComponentFileName, st)...)
		h.Float(s.opts.TaperFraction)
		if ins := s.opts.Instrument; ins != nil {
			h.String(fmt.Sprintf("instrument:%#v", *ins))
		} else {
			h.String("instrument:none")
		}
	case PFourier, PPlotAccel:
		ok = b.hashFiles(h, componentNames(smformat.V2FileName, st)...)
	case PPlotFourier, PPickCorners:
		h.String(fmt.Sprintf("pick:%#v", s.opts.Pick))
		ok = b.hashFiles(h, componentNames(smformat.FourierFileName, st)...)
	case PResponseSpectrum:
		h.String(fmt.Sprintf("response:%#v", s.opts.Response))
		ok = b.hashFiles(h, componentNames(smformat.V2FileName, st)...)
	case PPlotResponse:
		ok = b.hashFiles(h, componentNames(smformat.ResponseFileName, st)...)
	case PGenerateGEM:
		ok = b.hashFiles(h, append(componentNames(smformat.V2FileName, st),
			componentNames(smformat.ResponseFileName, st)...)...)
	default:
		return artifact.ActionID{}, false
	}
	if !ok {
		return artifact.ActionID{}, false
	}
	return h.Sum(), true
}

// componentNames expands one per-component name helper over the three
// components of a station, in deterministic component order.
func componentNames(name func(string, seismic.Component) string, st string) []string {
	out := make([]string, len(seismic.Components))
	for i, c := range seismic.Components {
		out[i] = name(st, c)
	}
	return out
}

// hashFiles folds the named work-directory files (name, then content) into
// the digest; false if any is unreadable.
func (b *dfBuild) hashFiles(h *artifact.Hasher, names ...string) bool {
	for _, name := range names {
		data, err := b.s.ws.ReadFile(b.s.path(name))
		if err != nil {
			return false
		}
		h.String("file:" + name)
		h.Bytes(data)
	}
	return true
}

// hashFilterParamsFor folds the station's slice of the filter-params file
// into the digest: the default corners plus this station's per-signal
// entries (present or explicitly absent, per component).
func (b *dfBuild) hashFilterParamsFor(h *artifact.Hasher, st string) bool {
	params, err := b.s.readFilterParams(b.s.path(smformat.FilterParamsFile))
	if err != nil {
		return false
	}
	hashSpec := func(spec dsp.BandPassSpec) {
		h.Float(spec.FSL)
		h.Float(spec.FPL)
		h.Float(spec.FPH)
		h.Float(spec.FSH)
	}
	h.String("params:default")
	hashSpec(params.Default)
	for _, c := range seismic.Components {
		key := smformat.SignalKey{Station: st, Component: c}
		if spec, ok := params.PerSignal[key]; ok {
			h.String("params:signal:" + key.String())
			hashSpec(spec)
		} else {
			h.String("params:absent:" + key.String())
		}
	}
	return true
}

// nodeOutputNames lists the work-directory files one per-record node
// produces (side-channel blobs are appended separately by storeNode).
func nodeOutputNames(pid ProcessID, st string) []string {
	switch pid {
	case PSeparateComponents:
		return componentNames(smformat.V1ComponentFileName, st)
	case PDefaultFilter, PCorrectedFilter:
		return componentNames(smformat.V2FileName, st)
	case PFourier:
		return componentNames(smformat.FourierFileName, st)
	case PPlotFourier:
		return []string{smformat.FourierPlotFileName(st)}
	case PPickCorners:
		return nil // picks travel only through the side channel
	case PPlotAccel:
		return []string{smformat.AccelPlotFileName(st)}
	case PResponseSpectrum:
		return componentNames(smformat.ResponseFileName, st)
	case PPlotResponse:
		return []string{smformat.ResponsePlotFileName(st)}
	case PGenerateGEM:
		names := make([]string, 0, 18)
		for _, c := range seismic.Components {
			for _, kind := range []smformat.GEMKind{smformat.GEMFromV2, smformat.GEMFromR} {
				for _, q := range []smformat.GEMQuantity{smformat.GEMAcceleration, smformat.GEMVelocity, smformat.GEMDisplacement} {
					names = append(names, smformat.GEMFileName(st, c, kind, q))
				}
			}
		}
		return names
	}
	return nil
}

// restoreNode attempts to satisfy one per-record node from the action
// cache: real outputs are written back into the work directory, side-channel
// blobs into the build's fragment state.  Any failure — miss, damaged entry,
// or a workspace write error — reports false and the node executes normally
// (a real write error will then resurface from the body itself).
func (b *dfBuild) restoreNode(id artifact.ActionID, pid ProcessID, i int, st string) bool {
	s := b.s
	write := func(name string, data []byte) error {
		switch name {
		case sideMaxValues:
			mv, err := smformat.ParseMaxValues(bytes.NewReader(data))
			if err != nil {
				return err
			}
			if pid == PDefaultFilter {
				b.fragsDef[i] = mv
			} else {
				b.fragsCor[i] = mv
			}
			return nil
		case sidePicks:
			var specs [3]dsp.BandPassSpec
			if err := json.Unmarshal(data, &specs); err != nil {
				return err
			}
			b.picks[i] = specs
			b.picked[i] = true
			return nil
		default:
			return s.ws.WriteFile(s.path(name), data, 0o644)
		}
	}
	restored, err := s.acache.Restore(id, write)
	return err == nil && restored
}

// restoreResumedSide feeds a journaled node's side-channel payload back
// into the build's fragment state, exactly as restoreNode does for a cached
// one: the max-values fragment into fragsDef/fragsCor, the picked corners
// into picks.  Nodes without a side channel restore vacuously.  False means
// the payload did not parse and the node must execute instead.
func (b *dfBuild) restoreResumedSide(n journalNode, i int) bool {
	switch n.pid {
	case PDefaultFilter, PCorrectedFilter:
		mv, err := smformat.ParseMaxValues(bytes.NewReader(n.side))
		if err != nil {
			return false
		}
		if n.pid == PDefaultFilter {
			b.fragsDef[i] = mv
		} else {
			b.fragsCor[i] = mv
		}
	case PPickCorners:
		var specs [3]dsp.BandPassSpec
		if err := json.Unmarshal(n.side, &specs); err != nil {
			return false
		}
		b.picks[i] = specs
		b.picked[i] = true
	}
	return true
}

// encodeSide serializes one node's side-channel payload for its journal
// record, mirroring storeNode's blob encoding (max-values text format,
// picked corners as JSON).  ok=false means the payload is not ready —
// journaling the node would hand resume an incomplete claim.
func (b *dfBuild) encodeSide(pid ProcessID, i int) ([]byte, bool) {
	switch pid {
	case PDefaultFilter, PCorrectedFilter:
		frag := b.fragsDef[i]
		if pid == PCorrectedFilter {
			frag = b.fragsCor[i]
		}
		var buf bytes.Buffer
		if err := frag.Write(&buf); err != nil {
			return nil, false
		}
		return buf.Bytes(), true
	case PPickCorners:
		if !b.picked[i] {
			return nil, false
		}
		data, err := json.Marshal(b.picks[i])
		if err != nil {
			return nil, false
		}
		return data, true
	}
	return nil, true
}

// journalNodeDone appends one node-done record to the run journal (a no-op
// when journaling is off), carrying the side-channel payload the node's
// join consumes.
func (b *dfBuild) journalNodeDone(pid ProcessID, st string, i int) {
	if b.s.journal == nil {
		return
	}
	side, ok := b.encodeSide(pid, i)
	if !ok {
		return
	}
	b.s.journal.nodeDone(pid, st, side)
}

// storeNode records one successfully executed per-record node's outputs
// under its action digest.  Best-effort in every direction: an unreadable
// output or a failed Put just forfeits a future hit.
func (b *dfBuild) storeNode(id artifact.ActionID, pid ProcessID, i int, st string) {
	s := b.s
	names := nodeOutputNames(pid, st)
	blobs := make([]artifact.Blob, 0, len(names)+1)
	for _, name := range names {
		data, err := s.ws.ReadFile(s.path(name))
		if err != nil {
			return
		}
		blobs = append(blobs, artifact.Blob{Name: name, Data: data})
	}
	switch pid {
	case PDefaultFilter, PCorrectedFilter:
		frag := b.fragsDef[i]
		if pid == PCorrectedFilter {
			frag = b.fragsCor[i]
		}
		var buf bytes.Buffer
		if err := frag.Write(&buf); err != nil {
			return
		}
		blobs = append(blobs, artifact.Blob{Name: sideMaxValues, Data: buf.Bytes()})
	case PPickCorners:
		if !b.picked[i] {
			return
		}
		data, err := json.Marshal(b.picks[i])
		if err != nil {
			return
		}
		blobs = append(blobs, artifact.Blob{Name: sidePicks, Data: data})
	}
	_ = s.acache.Put(id, blobs)
}
