package pipeline

import (
	"errors"
	"io/fs"

	"accelproc/internal/artifact"
	"accelproc/internal/dsp"
	"accelproc/internal/faults"
	"accelproc/internal/ingest"
	"accelproc/internal/obs"
	"accelproc/internal/smformat"
)

// This file is the pipeline's view of the artifact store: codec-aware
// read/write handles for the hot file formats, and staging wrappers that
// keep cache entries attached to artifacts as they move (or hardlink)
// across the scratch-folder boundary.
//
// The contract, in both directions:
//
//   - Writes are write-through.  The smformat writer runs first and emits
//     exactly the bytes it always has — the on-disk protocol, the chaos
//     semantics, and every golden output stay untouched — then the decoded
//     value is retained under the file's fresh content generation.  A
//     failed write invalidates instead, so a partial (fault-injected)
//     file is never shadowed by a confident cache entry.
//   - Reads are read-through.  A generation-checked hit skips
//     tokenize+ParseFloat entirely; a miss parses from disk and back-fills
//     the store.
//
// Cached values are shared, not copied: every consumer of the decoded
// V1/V2/Fourier/Response payloads is read-only on its input slices (the
// DSP kernels copy before mutating), so aliasing is safe.  The one
// exception is FilterParams, whose PerSignal map process #10 mutates in
// place between read and write — its handles copy the map on both sides of
// the store.
//
// All handles degrade to the plain smformat calls when the store is nil
// (Options.Cache mode off), because every *artifact.Store method is
// nil-safe.  The persistent action-cache layer above this one — whole stage
// outputs keyed by content digests, surviving restarts — lives in
// actioncache.go.

// readRecord decodes one input record file through the ingest plane —
// format resolution, QC gate, component rotation — memoized like every
// other hot artifact: process #12 re-decodes every input that process #3
// already decoded, and the memo turns that second pass into a
// generation-checked hit.  The memo key is the path alone; that is sound
// because the format override and QC configuration are fixed for the run.
func (s *state) readRecord(path string) (smformat.V1, error) {
	if v, ok := artifact.Cached[smformat.V1](s.arts, path); ok {
		return v, nil
	}
	v, _, err := ingest.ReadRecord(s.ws, path, s.informat, s.opts.QC)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, v)
	return v, nil
}

func (s *state) readV1Comp(path string) (smformat.V1Component, error) {
	if v, ok := artifact.Cached[smformat.V1Component](s.arts, path); ok {
		return v, nil
	}
	v, err := smformat.ReadV1ComponentFileFS(s.ws, path)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, v)
	return v, nil
}

func (s *state) writeV1Comp(path string, v smformat.V1Component) error {
	if err := smformat.WriteV1ComponentFileFS(s.ws, path, v); err != nil {
		s.arts.Invalidate(path)
		return err
	}
	s.arts.Put(path, v)
	return nil
}

func (s *state) readV2(path string) (smformat.V2, error) {
	if v, ok := artifact.Cached[smformat.V2](s.arts, path); ok {
		return v, nil
	}
	v, err := smformat.ReadV2FileFS(s.ws, path)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, v)
	return v, nil
}

func (s *state) writeV2(path string, v smformat.V2) error {
	if err := smformat.WriteV2FileFS(s.ws, path, v); err != nil {
		s.arts.Invalidate(path)
		return err
	}
	s.arts.Put(path, v)
	return nil
}

func (s *state) readFourier(path string) (smformat.Fourier, error) {
	if v, ok := artifact.Cached[smformat.Fourier](s.arts, path); ok {
		return v, nil
	}
	v, err := smformat.ReadFourierFileFS(s.ws, path)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, v)
	return v, nil
}

func (s *state) writeFourier(path string, f smformat.Fourier) error {
	if err := smformat.WriteFourierFileFS(s.ws, path, f); err != nil {
		s.arts.Invalidate(path)
		return err
	}
	s.arts.Put(path, f)
	return nil
}

func (s *state) readResponse(path string) (smformat.Response, error) {
	if v, ok := artifact.Cached[smformat.Response](s.arts, path); ok {
		return v, nil
	}
	v, err := smformat.ReadResponseFileFS(s.ws, path)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, v)
	return v, nil
}

func (s *state) writeResponse(path string, r smformat.Response) error {
	if err := smformat.WriteResponseFileFS(s.ws, path, r); err != nil {
		s.arts.Invalidate(path)
		return err
	}
	s.arts.Put(path, r)
	return nil
}

// copyParams returns p with a private PerSignal map, so a cached params
// value is never aliased to the map process #10 mutates in place.
func copyParams(p smformat.FilterParams) smformat.FilterParams {
	m := make(map[smformat.SignalKey]dsp.BandPassSpec, len(p.PerSignal))
	for k, v := range p.PerSignal {
		m[k] = v
	}
	p.PerSignal = m
	return p
}

func (s *state) readFilterParams(path string) (smformat.FilterParams, error) {
	if v, ok := artifact.Cached[smformat.FilterParams](s.arts, path); ok {
		return copyParams(v), nil
	}
	v, err := smformat.ReadFilterParamsFileFS(s.ws, path)
	if err != nil {
		return v, err
	}
	s.arts.Put(path, copyParams(v))
	return v, nil
}

func (s *state) writeFilterParams(path string, p smformat.FilterParams) error {
	if err := smformat.WriteFilterParamsFileFS(s.ws, path, p); err != nil {
		s.arts.Invalidate(path)
		return err
	}
	s.arts.Put(path, copyParams(p))
	return nil
}

// moveArtifact renames an artifact across the scratch-folder boundary (the
// package-level stageMove, unchanged and chaos-visible) and moves its cache
// entry with it: a rename preserves the inode, so the entry's recorded
// generation stays valid under the new path.  A failed move drops any entry
// at the destination — an EXDEV copy fallback may have left partial bytes.
func (s *state) moveArtifact(fsys faults.FS, dst, src string, c *obs.Counter) error {
	if err := stageMove(fsys, dst, src, c); err != nil {
		s.arts.Invalidate(dst)
		return err
	}
	s.arts.Rename(src, dst)
	return nil
}

// copyArtifact stages src to dst.  It first asks the workspace for a
// hardlink — the staged file is identical content by construction, the link
// is charged to links_total instead of the staging byte counters (no bytes
// actually cross the boundary), and the cache entry is cloned since both
// names now share the content generation.  Any backend that cannot link
// reports an error and the real copy runs: the chaos decorator always
// refuses (the fault injector must see the read+write pair), and a
// cross-device or no-hardlink filesystem (EXDEV/ENOTSUP) degrades to the
// copy instead of failing the stage.  An existing destination — dst left
// over from a retry — is relinked over once, then likewise falls back.
//
// Linked sources are never mutated in place afterwards: the executable
// image is written once per run, and every backend's WriteFile replaces
// files atomically, so a later overwrite of src detaches from the linked
// content instead of writing through it.
func (s *state) copyArtifact(fsys faults.FS, dst, src string, c *obs.Counter) error {
	err := fsys.Link(src, dst)
	if err == nil {
		s.links.Add(1)
		s.arts.Clone(src, dst)
		return nil
	}
	if errors.Is(err, fs.ErrExist) {
		// A previous attempt already staged it; relink over the leftover.
		if fsys.Remove(dst) == nil && fsys.Link(src, dst) == nil {
			s.links.Add(1)
			s.arts.Clone(src, dst)
			return nil
		}
	}
	s.arts.Invalidate(dst)
	return stageCopy(fsys, dst, src, c)
}
