package pipeline

import (
	"context"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
)

// The kill-9 crash matrix: for every instrumented crash point, re-exec this
// test binary with the point armed, let the child SIGKILL itself mid-event,
// resume the work directory in-process, and require byte-identical products
// with only the unfinished subgraphs re-executed.  This is the integration
// proof behind `smproc -resume` — no error path is exercised, the process
// just dies between two instructions, exactly like power loss.

// crashHelperEnv carries the work directory into the sacrificial child; it
// doubles as the gate that keeps TestCrashRunHelper inert in normal runs.
const crashHelperEnv = "ACCELPROC_CRASH_HELPER_DIR"

// crashOptions are the run options both the child and the resuming parent
// use — they must agree, or the journal's params digest will not match.
// Workers=1 serializes the dataflow so journal appends map 1:1 onto
// completed nodes and the matrix's exact skip counts are deterministic.
func crashOptions() Options {
	opts := testOptions()
	opts.Workers = 1
	opts.Journal = true
	opts.Cache = CacheConfig{Mode: CachePersistent}
	return opts
}

// TestCrashRunHelper is not a test of its own: it runs only when the crash
// matrix re-execs the binary with the helper environment set, processes the
// handed-over work directory, and (normally) never returns — the armed
// crash point SIGKILLs the process mid-run.
func TestCrashRunHelper(t *testing.T) {
	dir := os.Getenv(crashHelperEnv)
	if dir == "" {
		t.Skip("helper: only meaningful as a crash-matrix subprocess")
	}
	if _, err := Run(context.Background(), dir, Pipelined, crashOptions()); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// killedBySIGKILL reports whether the subprocess died to the injected kill
// (signal, or the 137 fallback exit the injector uses when the signal is
// unavailable).
func killedBySIGKILL(err error) bool {
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		return false
	}
	if ws, ok := ee.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
		return ws.Signal() == syscall.SIGKILL
	}
	return ee.ExitCode() == 137
}

func TestCrashResumeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary once per crash point")
	}
	ctx := context.Background()
	ev := testEvent(t)
	const totalNodes = 3 * perRecordNodes

	// The uninterrupted reference: same options, no crash, no resume.
	refDir := filepath.Join(t.TempDir(), "ref")
	if err := PrepareWorkDir(refDir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, refDir, Pipelined, crashOptions()); err != nil {
		t.Fatal(err)
	}
	ref := productHashes(t, refDir)

	cases := []struct {
		arm string // CrashEnv value: <point>:<nth>
		// wantSkipped is the exact resume skip count where the serial append
		// order makes it deterministic; -1 where the crash lands mid-protocol
		// and output validation legitimately drops a data-dependent number of
		// journaled claims.
		wantSkipped int64
		wantScratch bool // crash leaves a live scratch dir the resume must sweep
	}{
		// Dying *before* a journal append loses that record: the journal
		// holds exactly nth-1 acknowledged nodes, all of which must skip.
		{arm: faults.CrashJournalAppend + ":1", wantSkipped: 0},
		{arm: faults.CrashJournalAppend + ":5", wantSkipped: 4},
		// Dying *after* the append proves the acknowledged record survived.
		{arm: faults.CrashJournalAppended + ":5", wantSkipped: 5},
		// Dying inside an action-cache Put leaves orphan blobs / a torn
		// manifest; the cache sweep and scrub own those, resume just works.
		{arm: faults.CrashManifestPut + ":3", wantSkipped: -1},
		{arm: faults.CrashManifestPutDone + ":3", wantSkipped: -1},
		// Dying at a stage-move boundary strands inputs inside a tmp_*
		// scratch dir; resume sweeps it and the validation cascade re-runs
		// the nodes whose outputs rode along.
		{arm: faults.CrashStageMove + ":4", wantSkipped: -1, wantScratch: true},
		{arm: faults.CrashStageMoved + ":4", wantSkipped: -1, wantScratch: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.arm, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "work")
			if err := PrepareWorkDir(dir, ev); err != nil {
				t.Fatal(err)
			}

			cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashRunHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				crashHelperEnv+"="+dir,
				faults.CrashEnv+"="+tc.arm,
			)
			out, err := cmd.CombinedOutput()
			if !killedBySIGKILL(err) {
				t.Fatalf("subprocess survived crash point %s (err=%v):\n%s", tc.arm, err, out)
			}

			opts := crashOptions()
			opts.Resume = true
			opts.Observer = obs.New()
			res, err := Run(ctx, dir, Pipelined, opts)
			if err != nil {
				t.Fatalf("resume after %s: %v", tc.arm, err)
			}
			if !res.Resume.Resumed {
				t.Fatalf("resume did not adopt the journal: %+v", res.Resume)
			}
			if len(res.Quarantined) != 0 {
				t.Fatalf("resume quarantined %v, want none", res.Quarantined)
			}

			// Only unfinished subgraphs re-execute: every journaled node that
			// passed validation is skipped, and skipped + cache-restored +
			// executed covers the whole graph.
			if int64(res.Resume.NodesJournaled) != res.Resume.NodesSkipped {
				t.Errorf("journaled %d nodes but skipped %d",
					res.Resume.NodesJournaled, res.Resume.NodesSkipped)
			}
			if tc.wantSkipped >= 0 && res.Resume.NodesSkipped != tc.wantSkipped {
				t.Errorf("NodesSkipped = %d, want %d", res.Resume.NodesSkipped, tc.wantSkipped)
			}
			executed := recordNodesExecuted(opts)
			if got := executed + res.Resume.NodesSkipped + res.Cache.ActionHits; got != totalNodes {
				t.Errorf("executed %d + skipped %d + cache hits %d = %d, want %d",
					executed, res.Resume.NodesSkipped, res.Cache.ActionHits, got, totalNodes)
			}
			if res.Resume.NodesSkipped > 0 && executed == totalNodes {
				t.Error("resume skipped nodes yet everything re-executed")
			}
			if v := opts.Observer.Counter("journal_replays").Value(); v != 1 {
				t.Errorf("journal_replays = %v, want 1", v)
			}
			if v := int64(opts.Observer.Counter("nodes_skipped_resume").Value()); v != res.Resume.NodesSkipped {
				t.Errorf("nodes_skipped_resume = %d, Result says %d", v, res.Resume.NodesSkipped)
			}
			if tc.wantScratch && res.Resume.ScratchSwept == 0 {
				t.Errorf("crash at %s left no scratch to sweep, expected stranded tmp_* dir", tc.arm)
			}

			// The bottom line: products byte-identical to the uninterrupted run.
			assertSameProducts(t, productHashes(t, dir), ref, tc.arm)
		})
	}
}
