package pipeline

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// goldenEdges is the hand-checked dependency set of the optimized chain —
// the paper's Figure 9 dataflow, written out edge by edge.  If an artifact
// declaration in Processes drifts, or the derivation algorithm changes
// behaviour, this golden set catches it.
var goldenEdges = []ArtifactEdge{
	{PGatherInputs, PSeparateComponents, "v1list", HazardRAW},
	{PInitFilterParams, PDefaultFilter, "filter-params", HazardRAW},
	{PSeparateComponents, PDefaultFilter, "<s><c>.v1", HazardRAW},
	{PGatherInputs, PInitMetadata, "v1list", HazardRAW},
	{PInitMetadata, PFourier, "fourier", HazardRAW},
	{PDefaultFilter, PFourier, "<s><c>.v2", HazardRAW},
	{PGatherInputs, PInitFourierGraph, "v1list", HazardRAW},
	{PInitFourierGraph, PPlotFourier, "fourier-graph", HazardRAW},
	{PFourier, PPlotFourier, "<s><c>.f", HazardRAW},
	{PInitFourierGraph, PPickCorners, "fourier-graph", HazardRAW},
	{PFourier, PPickCorners, "<s><c>.f", HazardRAW},
	{PDefaultFilter, PPickCorners, "filter-params", HazardWAR},
	{PInitFilterParams, PPickCorners, "filter-params", HazardWAW},
	{PInitFlags, PInitFlags2, "flags", HazardWAW},
	{PPickCorners, PCorrectedFilter, "filter-params", HazardRAW},
	{PSeparateComponents, PCorrectedFilter, "<s><c>.v1", HazardRAW},
	{PFourier, PCorrectedFilter, "<s><c>.v2", HazardWAR},
	{PDefaultFilter, PCorrectedFilter, "<s><c>.v2", HazardWAW},
	{PDefaultFilter, PCorrectedFilter, "max-values", HazardWAW},
	{PInitMetadata, PPlotAccel, "acc-graph", HazardRAW},
	{PCorrectedFilter, PPlotAccel, "<s><c>.v2", HazardRAW},
	{PInitMetadata, PResponseSpectrum, "response", HazardRAW},
	{PCorrectedFilter, PResponseSpectrum, "<s><c>.v2", HazardRAW},
	{PGatherInputs, PInitResponseGraph, "v1list", HazardRAW},
	{PInitResponseGraph, PPlotResponse, "response-graph", HazardRAW},
	{PResponseSpectrum, PPlotResponse, "<s><c>.r", HazardRAW},
	{PInitMetadata, PGenerateGEM, "response", HazardRAW},
	{PCorrectedFilter, PGenerateGEM, "<s><c>.v2", HazardRAW},
	{PResponseSpectrum, PGenerateGEM, "<s><c>.r", HazardRAW},
}

func sortEdges(edges []ArtifactEdge) []ArtifactEdge {
	out := append([]ArtifactEdge(nil), edges...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.To != b.To {
			return a.To < b.To
		}
		if a.From != b.From {
			return a.From < b.From
		}
		if a.Artifact != b.Artifact {
			return a.Artifact < b.Artifact
		}
		return a.Hazard < b.Hazard
	})
	return out
}

// TestDerivedEdgesMatchGoldenSet pins the derivation output exactly: every
// golden edge present, no spurious edges.
func TestDerivedEdgesMatchGoldenSet(t *testing.T) {
	got := sortEdges(DeriveArtifactEdges())
	want := sortEdges(goldenEdges)
	if !reflect.DeepEqual(got, want) {
		gotSet := map[string]bool{}
		for _, e := range got {
			gotSet[fmt.Sprint(e)] = true
		}
		wantSet := map[string]bool{}
		for _, e := range want {
			wantSet[fmt.Sprint(e)] = true
		}
		for k := range wantSet {
			if !gotSet[k] {
				t.Errorf("missing edge %s", k)
			}
		}
		for k := range gotSet {
			if !wantSet[k] {
				t.Errorf("spurious edge %s", k)
			}
		}
	}
}

// TestDerivedEdgesReproduceStageOrdering is the cross-check against the
// hand-written Stages table: the paper's Figure 9 schedule must be a valid
// topological order of the derived graph (no derived edge points from a
// later stage to an earlier one, and none crosses within a stage — the
// stage's processes are mutually independent), and every stage after the
// first must be anchored by at least one dependency on an earlier stage,
// otherwise Figure 9 would contain a stage the dataflow does not justify.
func TestDerivedEdgesReproduceStageOrdering(t *testing.T) {
	incoming := map[StageID]bool{}
	for _, e := range DeriveArtifactEdges() {
		from, to := StageOf(e.From), StageOf(e.To)
		if from == 0 || to == 0 {
			t.Fatalf("edge %v→%v involves a process outside the stage schedule", e.From, e.To)
		}
		if from > to {
			t.Errorf("edge %v→%v (%s on %s) points backwards: stage %v after %v",
				e.From, e.To, e.Hazard, e.Artifact, from, to)
		}
		if from == to {
			t.Errorf("edge %v→%v (%s on %s) crosses within stage %v; stage-mates must be independent",
				e.From, e.To, e.Hazard, e.Artifact, from)
		}
		if from < to {
			incoming[to] = true
		}
	}
	for st := StageID(2); st <= NumStages; st++ {
		if !incoming[st] {
			t.Errorf("stage %v has no dependency on any earlier stage", st)
		}
	}
}

func TestPerRecordProcessClassification(t *testing.T) {
	perRecord := map[ProcessID]bool{
		PSeparateComponents: true, PDefaultFilter: true, PFourier: true,
		PPlotFourier: true, PPickCorners: true, PCorrectedFilter: true,
		PPlotAccel: true, PResponseSpectrum: true, PPlotResponse: true,
		PGenerateGEM: true,
	}
	for _, p := range Processes {
		if p.Redundant {
			continue
		}
		if got := PerRecordProcess(p.ID); got != perRecord[p.ID] {
			t.Errorf("PerRecordProcess(#%d %s) = %v, want %v", p.ID, p.Name, got, perRecord[p.ID])
		}
	}
}

func TestDependenciesOf(t *testing.T) {
	cases := map[ProcessID][]ProcessID{
		PCorrectedFilter:    {PSeparateComponents, PDefaultFilter, PFourier, PPickCorners},
		PGenerateGEM:        {PInitMetadata, PCorrectedFilter, PResponseSpectrum},
		PInitFlags2:         {PInitFlags},
		PSeparateComponents: {PGatherInputs},
	}
	for p, want := range cases {
		got := DependenciesOf(p)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("DependenciesOf(#%d) = %v, want %v", p, got, want)
		}
	}
}
