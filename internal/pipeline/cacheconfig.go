package pipeline

import (
	"fmt"
	"strings"
)

// CacheMode selects which caching layers a run gets (see internal/artifact:
// the memo layer memoizes decoded artifacts within one process, the action
// cache persists whole stage outputs across processes).
type CacheMode int

const (
	// CacheMemory is the zero value and the pre-redesign default: the
	// in-process memo layer only.  Nothing outlives the run.
	CacheMemory CacheMode = iota
	// CacheOff disables both layers: every process re-reads and re-parses
	// its file inputs and staging always copies bytes — the ablation the
	// deprecated NoArtifactCache bool used to select.
	CacheOff
	// CachePersistent enables the memo layer plus the persistent
	// content-addressed action cache: per-(record,process) dataflow nodes
	// whose action digest is already cached restore their recorded outputs
	// instead of recomputing, across process restarts.
	CachePersistent
)

// String returns the -cache flag spelling of the mode.
func (m CacheMode) String() string {
	switch m {
	case CacheMemory:
		return "mem"
	case CacheOff:
		return "off"
	case CachePersistent:
		return "disk"
	default:
		return fmt.Sprintf("CacheMode(%d)", int(m))
	}
}

// CacheDirName is the default action-cache directory, created inside the
// work directory so the cache rides the same Workspace backend as the event
// products: real files on fs, memory materialized on demand on mem.
const CacheDirName = ".smcache"

// DefaultCacheMaxBytes bounds the action cache's blob bytes when
// CacheConfig.MaxBytes is zero: 256 MiB, roughly a few hundred 8-record
// events at paper scale.
const DefaultCacheMaxBytes int64 = 256 << 20

// CacheConfig is the typed cache configuration carried in Options.  The
// zero value selects the memo layer only — exactly the behavior runs had
// before the persistent cache existed.
type CacheConfig struct {
	// Mode selects the layers: off, memory (memo only, the default), or
	// persistent (memo + action cache).
	Mode CacheMode
	// Dir is the action-cache root for CachePersistent; empty selects
	// <workdir>/.smcache.  Ignored in other modes.  A relative or absolute
	// explicit Dir is used as given — note that on the mem backend only the
	// default in-workdir root is materialized to disk with the event
	// products, so an explicit Dir there stays volatile.
	Dir string
	// MaxBytes bounds the summed cached blob bytes, evicting least-recently
	// used actions beyond it.  Zero selects DefaultCacheMaxBytes; negative
	// means unbounded.
	MaxBytes int64
	// VerifyOnHit re-hashes every restored blob against its recorded
	// checksum, turning silent cache corruption into a miss at the cost of
	// one SHA-256 pass per restored file.  Truncation is always detected,
	// with or without this.
	VerifyOnHit bool
}

// maxBytes resolves the configured bound: default, unbounded, or as given.
func (c CacheConfig) maxBytes() int64 {
	switch {
	case c.MaxBytes == 0:
		return DefaultCacheMaxBytes
	case c.MaxBytes < 0:
		return 0 // the ActionCache spelling of "unbounded"
	default:
		return c.MaxBytes
	}
}

// ParseCacheFlag maps a -cache flag value to a CacheConfig:
//
//	off | none          CacheOff
//	"" | mem | memory   CacheMemory (the default)
//	disk | persistent   CachePersistent, default directory
//	disk:DIR            CachePersistent rooted at DIR
func ParseCacheFlag(s string) (CacheConfig, error) {
	mode, dir, _ := strings.Cut(strings.TrimSpace(s), ":")
	cfg := CacheConfig{Dir: dir}
	switch strings.ToLower(mode) {
	case "", "mem", "memory":
		cfg.Mode = CacheMemory
	case "off", "none":
		cfg.Mode = CacheOff
	case "disk", "persistent":
		cfg.Mode = CachePersistent
	default:
		return CacheConfig{}, fmt.Errorf("pipeline: unknown cache mode %q (want off, mem, or disk[:dir])", mode)
	}
	if cfg.Dir != "" && cfg.Mode != CachePersistent {
		return CacheConfig{}, fmt.Errorf("pipeline: cache directory %q only applies to disk mode", cfg.Dir)
	}
	return cfg, nil
}

// CacheStats reports both cache layers' activity during one run, for Result.
type CacheStats struct {
	// MemoHits and MemoMisses count decoded-artifact memo lookups.
	MemoHits, MemoMisses int64
	// ActionHits, ActionMisses, and ActionEvictions count persistent
	// action-cache restores, failed lookups (including corruption drops),
	// and size-bound evictions; zero unless Mode is CachePersistent.
	ActionHits, ActionMisses, ActionEvictions int64
	// ActionBytes is the cache's resident blob bytes at run end.
	ActionBytes int64
}

// Accumulate folds another run's counters into s (summing the counts,
// keeping the largest resident-bytes reading), for harnesses aggregating
// stats over several runs.
func (s *CacheStats) Accumulate(o CacheStats) {
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.ActionHits += o.ActionHits
	s.ActionMisses += o.ActionMisses
	s.ActionEvictions += o.ActionEvictions
	if o.ActionBytes > s.ActionBytes {
		s.ActionBytes = o.ActionBytes
	}
}
