package pipeline

import "strings"

// This file derives the inter-process dependency graph from the declared
// artifact table (ProcessInfo.Inputs/Outputs) instead of hand-writing it.
// The Pipelined variant builds its record-level task DAG from these edges,
// and a test checks they reproduce the paper's Figure 9 stage ordering
// exactly — so the hand-written Stages table and the artifact declarations
// can never drift apart silently.

// Hazard classifies a derived dependency edge by the data hazard that
// forces the ordering.
type Hazard int

const (
	// HazardRAW is a true dependency: the consumer reads what the producer
	// wrote (read-after-write).
	HazardRAW Hazard = iota
	// HazardWAR is an anti-dependency: the writer must wait for earlier
	// readers of the artifact it overwrites (write-after-read).
	HazardWAR
	// HazardWAW is an output dependency: two writers of the same artifact
	// must keep their chain order so the final content is the later one's
	// (write-after-write).
	HazardWAW
)

// String returns the hazard's conventional abbreviation.
func (h Hazard) String() string {
	switch h {
	case HazardRAW:
		return "RAW"
	case HazardWAR:
		return "WAR"
	case HazardWAW:
		return "WAW"
	default:
		return "Hazard(?)"
	}
}

// ArtifactEdge is one derived ordering constraint: To must run after From
// because of the named artifact.
type ArtifactEdge struct {
	From, To ProcessID
	Artifact string
	Hazard   Hazard
}

// RecordScoped reports whether an artifact name is a per-record file family
// (one file or file set per station, marked by the <s> placeholder) rather
// than a single event-global file.
func RecordScoped(artifact string) bool { return strings.Contains(artifact, "<s>") }

// PerRecordProcess reports whether the process does independent per-record
// work — it reads or writes at least one record-scoped artifact — and can
// therefore be split into one dataflow node per station.  Event-global
// processes (the flag and metadata initializers) run as single nodes.
//
// Process #1 (gather input data files) is the exception by construction:
// it declares the record-scoped input <s>.v1 but is a directory scan that
// *discovers* the record set, so it cannot be split per record and runs in
// stage I before the graph is built.
func PerRecordProcess(p ProcessID) bool {
	if p == PGatherInputs {
		return false
	}
	info := Processes[p]
	for _, a := range info.Inputs {
		if RecordScoped(a) {
			return true
		}
	}
	for _, a := range info.Outputs {
		if RecordScoped(a) {
			return true
		}
	}
	return false
}

// DeriveArtifactEdges scans the non-redundant processes in chain order and
// emits every ordering constraint implied by their declared artifacts,
// exactly as a scoreboard derives hazards from register operands: per
// artifact it tracks the last writer and the readers since that write —
// each input adds a RAW edge from the last writer, each output adds WAR
// edges from the accumulated readers and a WAW edge from the last writer,
// then takes over as the new last writer.
//
// Redundant processes (#6, #12, #14) are skipped: every variant that
// schedules by stages has already dropped them, and the dataflow variant
// derives from the optimized chain.  External inputs (the raw <s>.v1
// files) have no writer, so reading them adds no edge.
func DeriveArtifactEdges() []ArtifactEdge {
	type artifactState struct {
		writer  ProcessID
		written bool
		readers []ProcessID
	}
	state := map[string]*artifactState{}
	at := func(a string) *artifactState {
		s := state[a]
		if s == nil {
			s = &artifactState{}
			state[a] = s
		}
		return s
	}
	var edges []ArtifactEdge
	for _, p := range Processes {
		if p.Redundant {
			continue
		}
		for _, a := range p.Inputs {
			s := at(a)
			if s.written {
				edges = append(edges, ArtifactEdge{From: s.writer, To: p.ID, Artifact: a, Hazard: HazardRAW})
			}
			s.readers = append(s.readers, p.ID)
		}
		for _, a := range p.Outputs {
			s := at(a)
			for _, r := range s.readers {
				if r != p.ID {
					edges = append(edges, ArtifactEdge{From: r, To: p.ID, Artifact: a, Hazard: HazardWAR})
				}
			}
			if s.written {
				edges = append(edges, ArtifactEdge{From: s.writer, To: p.ID, Artifact: a, Hazard: HazardWAW})
			}
			s.writer = p.ID
			s.written = true
			s.readers = s.readers[:0]
		}
	}
	return edges
}

// DependenciesOf returns the deduplicated set of processes that p must wait
// for, in ascending order — the per-process view of DeriveArtifactEdges.
func DependenciesOf(p ProcessID) []ProcessID {
	seen := map[ProcessID]bool{}
	var deps []ProcessID
	for _, e := range DeriveArtifactEdges() {
		if e.To == p && !seen[e.From] {
			seen[e.From] = true
			deps = append(deps, e.From)
		}
	}
	for i := 1; i < len(deps); i++ {
		for j := i; j > 0 && deps[j] < deps[j-1]; j-- {
			deps[j], deps[j-1] = deps[j-1], deps[j]
		}
	}
	return deps
}
