package pipeline

import (
	"errors"
	"fmt"
	"path/filepath"
	"syscall"

	"accelproc/internal/faults"
	"accelproc/internal/fourier"
	"accelproc/internal/obs"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// This file implements the temporary-folder execution protocol of the
// paper's section VI: the legacy Fortran filter and Fourier programs cannot
// be modified, so the fully parallelized version runs multiple instances of
// them concurrently, each inside its own scratch folder, staging input
// files in and output files back out.
//
// The protocol is reproduced faithfully, including its costs:
//
//  1. a parallel loop creates the per-instance folders and copies the
//     parameter file and input data files into them;
//  2. a *sequential* loop installs the program executable into each folder
//     (the paper runs this step sequentially "to avoid races" on the
//     single executable image);
//  3. a parallel loop runs the program in each folder and copies the
//     products back to the work directory;
//  4. a parallel loop deletes the leftover scratch folders.
//
// The "executable" is a simulated binary image: the Go implementations
// stand in for the Fortran programs, but the staging I/O — the real cost
// the protocol adds — is performed with genuine file copies.
//
// On top of the paper's protocol this implementation adds the robustness
// the paper assumes away: every staging operation and simulated execution
// goes through a faults.FS / exec gate (the plain OS in production, the
// fault injector under -chaos), failures are retried per RetryPolicy, and
// a record whose operations are exhausted or permanently failed is
// quarantined — its scratch folder preserved under <dir>/quarantine/ — so
// the event completes with the surviving records.
//
// Each step reports a task span under the owning process span, and the
// bytes moved across the scratch-folder boundary feed the
// bytes_staged_in_total / bytes_staged_out_total counters.  If any step
// fails (including cancellation), the scratch folders are removed before
// returning unless Options.KeepTempDirs asks for them.

// exeImageSize is the size of the simulated program executable that step 2
// installs into every scratch folder (legacy Fortran filter binaries are a
// few tens of kilobytes).
const exeImageSize = 64 * 1024

// exeImageName is the staged executable's file name inside scratch folders.
const exeImageName = "program.exe"

// ensureExeImage creates the simulated executable in the work directory if
// it does not exist yet and returns its path.
func (s *state) ensureExeImage() (string, error) {
	path := s.path("_filter.exe")
	if _, err := s.fs.Stat(path); err == nil {
		return path, nil
	}
	buf := make([]byte, exeImageSize)
	for i := range buf {
		buf[i] = byte(i * 2654435761)
	}
	if err := s.fs.WriteFile(path, buf, 0o755); err != nil {
		return "", err
	}
	return path, nil
}

// stageCopy copies src across the scratch-folder boundary through fsys,
// charging the copied bytes to the given staging counter on success only,
// so a retried copy is charged once.
func stageCopy(fsys faults.FS, dst, src string, c *obs.Counter) error {
	data, err := fsys.ReadFile(src)
	if err != nil {
		return err
	}
	if err := fsys.WriteFile(dst, data, 0o644); err != nil {
		return err
	}
	c.Add(float64(len(data)))
	return nil
}

// stageMove renames src across the scratch-folder boundary (the paper's
// pseudocode moves data files rather than copying them), charging the
// file's size to the given staging counter on success.  A rename that fails
// with EXDEV — scratch folders on a different filesystem than the work
// directory, e.g. a tmpfs — falls back to copy + remove.
func stageMove(fsys faults.FS, dst, src string, c *obs.Counter) error {
	// Crash points bracketing the stage-move boundary: dying before the
	// rename leaves the file on the source side, dying after leaves it on
	// the destination side — the resume validation must absorb both.
	faults.Crash(faults.CrashStageMove)
	size := int64(-1)
	if info, err := fsys.Stat(src); err == nil {
		size = info.Size()
	}
	if err := fsys.Rename(src, dst); err != nil {
		if !errors.Is(err, syscall.EXDEV) {
			return err
		}
		data, err := fsys.ReadFile(src)
		if err != nil {
			return err
		}
		if err := fsys.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
		if err := fsys.Remove(src); err != nil {
			return err
		}
		size = int64(len(data))
	}
	if size >= 0 {
		c.Add(float64(size))
	}
	faults.Crash(faults.CrashStageMoved)
	return nil
}

// removeScratch deletes one scratch folder through fsys.  A failed removal
// is counted in scratch_cleanup_errors and then forced with the plain
// filesystem: cleanup accounting must not turn into scratch-dir leaks.
// Cache entries under the folder are dropped first — by this point every
// artifact worth keeping has been moved (and its entry renamed) out.
func (s *state) removeScratch(fsys faults.FS, dir string) {
	s.arts.InvalidateDir(dir)
	if err := fsys.RemoveAll(dir); err != nil {
		s.cleanupErr.Add(1)
		s.ws.RemoveAll(dir)
	}
}

// removeScratchDirs deletes the scratch folders after a failed protocol
// run, so an aborted or cancelled pipeline leaves no tmp_* litter in the
// work directory.  Removal failures are counted in scratch_cleanup_errors
// rather than silently ignored.
func (s *state) removeScratchDirs(dirs []string) {
	if s.opts.KeepTempDirs {
		return
	}
	for _, d := range dirs {
		if _, err := s.ws.Stat(d); err != nil {
			continue // already removed, or moved to quarantine
		}
		s.arts.InvalidateDir(d)
		if err := s.ws.RemoveAll(d); err != nil {
			s.cleanupErr.Add(1)
		}
	}
}

// filterViaTempFolders is the temp-folder variant of processes #4 and #13
// (the paper's ParallelizeCorrection): one instance per station, three
// component signals per instance.  proc is the owning process span; the
// four protocol steps report task spans under it.
func (s *state) filterViaTempFolders(proc *obs.Span, stage StageID, pid ProcessID, tag string, workers int) (err error) {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	exe, err := s.ensureExeImage()
	if err != nil {
		return err
	}
	n := len(stations)
	dirs := make([]string, n)
	rcs := make([]recordSite, n)
	for i, st := range stations {
		dirs[i] = s.path(fmt.Sprintf("tmp_%s_%02d_%s", tag, i, st))
		rcs[i] = recordSite{stage: stage, proc: pid, tag: tag, station: st, scratch: dirs[i]}
	}
	defer func() {
		if err != nil {
			s.removeScratchDirs(dirs)
		}
	}()

	// Step 1 (parallel): create folders, stage the parameter file (copied:
	// every instance needs it) and move the input V1 components in, as the
	// paper's pseudocode does ("Move 10*i+3*j+k <s><comp>.v1 file").
	err = s.timedTask(proc, "stage-in", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			rc := rcs[i]
			fsys := s.fsAt(tag, rc.station)
			stageIn := func() error {
				if err := s.retryOp(rc, "mkdir", func() error {
					return fsys.MkdirAll(dirs[i], 0o755)
				}); err != nil {
					return err
				}
				if err := s.retryOp(rc, "copy", func() error {
					return s.copyArtifact(fsys, filepath.Join(dirs[i], smformat.FilterParamsFile), s.path(smformat.FilterParamsFile), s.bytesIn)
				}); err != nil {
					return err
				}
				for _, comp := range seismic.Components {
					name := smformat.V1ComponentFileName(rc.station, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, filepath.Join(dirs[i], name), s.path(name), s.bytesIn)
					}); err != nil {
						return err
					}
				}
				return nil
			}
			return s.degraded(rc, stageIn())
		})
	})
	if err != nil {
		return err
	}

	// Step 2 (sequential, as in the paper, to avoid races on the image).
	err = s.timedTask(proc, "install-exe", func() error {
		for i := 0; i < n; i++ {
			if err := s.cancelled(); err != nil {
				return err
			}
			rc := rcs[i]
			if s.isQuarantined(rc.station) {
				continue
			}
			fsys := s.fsAt(tag, rc.station)
			err := s.retryOp(rc, "copy", func() error {
				return s.copyArtifact(fsys, filepath.Join(dirs[i], exeImageName), exe, s.bytesIn)
			})
			if err := s.degraded(rc, err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Step 3 (parallel): run the program inside each folder, stage the V2
	// products and a max-values fragment back out.
	fragments := make([]smformat.MaxValues, n)
	// The per-instance work is dominated by reading/writing the large V1/V2
	// text payloads, not by the filter arithmetic, so it contends like I/O
	// (the paper observes 1.9x-2.0x for these stages on 8 cores).
	err = s.timedTask(proc, "execute", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			rc := rcs[i]
			st := rc.station
			if s.isQuarantined(st) {
				return nil
			}
			fsys := s.fsAt(tag, st)
			execute := func() error {
				// The whole program run is one retryable unit: a crashed
				// instance is re-run from its staged inputs, which the
				// protocol leaves untouched inside the scratch folder.
				frag := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
				err := s.retryOp(rc, "exec", func() error {
					if err := s.chaos.Exec(tag, st); err != nil {
						return err
					}
					params, err := s.readFilterParams(filepath.Join(dirs[i], smformat.FilterParamsFile))
					if err != nil {
						return err
					}
					for _, comp := range seismic.Components {
						v1, err := s.readV1Comp(filepath.Join(dirs[i], smformat.V1ComponentFileName(st, comp)))
						if err != nil {
							return err
						}
						key := smformat.SignalKey{Station: st, Component: comp}
						v2, pk, err := s.correctSignal(v1, params.Spec(key))
						if err != nil {
							return err
						}
						if err := s.writeV2(filepath.Join(dirs[i], smformat.V2FileName(st, comp)), v2); err != nil {
							return err
						}
						frag.Peaks[key] = pk
					}
					return nil
				})
				if err != nil {
					return err
				}
				// Move the products back to the work directory, and the V1
				// inputs with them (the chain never modifies V1 components —
				// the rationale for dropping process #12 — so they must
				// survive for the later stages that reuse them).
				for _, comp := range seismic.Components {
					v2name := smformat.V2FileName(st, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, s.path(v2name), filepath.Join(dirs[i], v2name), s.bytesOut)
					}); err != nil {
						return err
					}
					v1name := smformat.V1ComponentFileName(st, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, s.path(v1name), filepath.Join(dirs[i], v1name), s.bytesOut)
					}); err != nil {
						return err
					}
				}
				fragments[i] = frag
				return nil
			}
			return s.degraded(rc, execute())
		})
	})
	if err != nil {
		return err
	}

	// Merge fragments deterministically into the max-values metadata
	// (quarantined records contribute no fragment).
	merged := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	for _, frag := range fragments {
		for k, v := range frag.Peaks {
			merged.Peaks[k] = v
		}
	}
	if err := smformat.WriteMaxValuesFileFS(s.ws, s.path(smformat.MaxValuesFile), merged); err != nil {
		return err
	}

	// Step 4 (parallel): delete the scratch folders (quarantined ones have
	// already been moved under <dir>/quarantine).
	if s.opts.KeepTempDirs {
		return nil
	}
	return s.timedTask(proc, "cleanup", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			if s.isQuarantined(rcs[i].station) {
				return nil
			}
			s.removeScratch(s.fsAt(tag, rcs[i].station), dirs[i])
			return nil
		})
	})
}

// fourierViaTempFolders is the temp-folder variant of process #7 (the
// paper's ParallelizeFourier): one instance per station, transforming the
// station's three component V2 files inside its scratch folder.
func (s *state) fourierViaTempFolders(proc *obs.Span, workers int) (err error) {
	const tag = "fou"
	stations, err := s.stations()
	if err != nil {
		return err
	}
	exe, err := s.ensureExeImage()
	if err != nil {
		return err
	}
	n := len(stations)
	dirs := make([]string, n)
	rcs := make([]recordSite, n)
	for i, st := range stations {
		dirs[i] = s.path(fmt.Sprintf("tmp_fou_%02d_%s", i, st))
		rcs[i] = recordSite{stage: StageV, proc: PFourier, tag: tag, station: st, scratch: dirs[i]}
	}
	defer func() {
		if err != nil {
			s.removeScratchDirs(dirs)
		}
	}()

	// Step 1 (parallel): create folders and move the V2 inputs in
	// (the paper's pseudocode: "Move 3*i+1 <s><comp>.v2 file").
	err = s.timedTask(proc, "stage-in", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			rc := rcs[i]
			fsys := s.fsAt(tag, rc.station)
			stageIn := func() error {
				if err := s.retryOp(rc, "mkdir", func() error {
					return fsys.MkdirAll(dirs[i], 0o755)
				}); err != nil {
					return err
				}
				for _, comp := range seismic.Components {
					name := smformat.V2FileName(rc.station, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, filepath.Join(dirs[i], name), s.path(name), s.bytesIn)
					}); err != nil {
						return err
					}
				}
				return nil
			}
			return s.degraded(rc, stageIn())
		})
	})
	if err != nil {
		return err
	}

	// Step 2 (sequential): install the executable image.
	err = s.timedTask(proc, "install-exe", func() error {
		for i := 0; i < n; i++ {
			if err := s.cancelled(); err != nil {
				return err
			}
			rc := rcs[i]
			if s.isQuarantined(rc.station) {
				continue
			}
			fsys := s.fsAt(tag, rc.station)
			err := s.retryOp(rc, "copy", func() error {
				return s.copyArtifact(fsys, filepath.Join(dirs[i], exeImageName), exe, s.bytesIn)
			})
			if err := s.degraded(rc, err); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Step 3 (parallel): transform inside each folder, stage the F products
	// back out.
	err = s.timedTask(proc, "execute", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			rc := rcs[i]
			st := rc.station
			if s.isQuarantined(st) {
				return nil
			}
			fsys := s.fsAt(tag, st)
			execute := func() error {
				err := s.retryOp(rc, "exec", func() error {
					if err := s.chaos.Exec(tag, st); err != nil {
						return err
					}
					for _, comp := range seismic.Components {
						v2, err := s.readV2(filepath.Join(dirs[i], smformat.V2FileName(st, comp)))
						if err != nil {
							return err
						}
						f, err := fourier.Spectra(v2)
						if err != nil {
							return err
						}
						if err := s.writeFourier(filepath.Join(dirs[i], smformat.FourierFileName(v2.Station, v2.Component)), f); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					return err
				}
				for _, comp := range seismic.Components {
					fname := smformat.FourierFileName(st, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, s.path(fname), filepath.Join(dirs[i], fname), s.bytesOut)
					}); err != nil {
						return err
					}
					// Move the V2 input back: stages VIII, IX, and XI reuse it.
					v2name := smformat.V2FileName(st, comp)
					if err := s.retryOp(rc, "move", func() error {
						return s.moveArtifact(fsys, s.path(v2name), filepath.Join(dirs[i], v2name), s.bytesOut)
					}); err != nil {
						return err
					}
				}
				return nil
			}
			return s.degraded(rc, execute())
		})
	})
	if err != nil {
		return err
	}

	// Step 4 (parallel): delete the scratch folders.
	if s.opts.KeepTempDirs {
		return nil
	}
	return s.timedTask(proc, "cleanup", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			if s.isQuarantined(rcs[i].station) {
				return nil
			}
			s.removeScratch(s.fsAt(tag, rcs[i].station), dirs[i])
			return nil
		})
	})
}
