package pipeline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"accelproc/internal/fourier"
	"accelproc/internal/obs"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// This file implements the temporary-folder execution protocol of the
// paper's section VI: the legacy Fortran filter and Fourier programs cannot
// be modified, so the fully parallelized version runs multiple instances of
// them concurrently, each inside its own scratch folder, staging input
// files in and output files back out.
//
// The protocol is reproduced faithfully, including its costs:
//
//  1. a parallel loop creates the per-instance folders and copies the
//     parameter file and input data files into them;
//  2. a *sequential* loop installs the program executable into each folder
//     (the paper runs this step sequentially "to avoid races" on the
//     single executable image);
//  3. a parallel loop runs the program in each folder and copies the
//     products back to the work directory;
//  4. a parallel loop deletes the leftover scratch folders.
//
// The "executable" is a simulated binary image: the Go implementations
// stand in for the Fortran programs, but the staging I/O — the real cost
// the protocol adds — is performed with genuine file copies.
//
// Each step reports a task span under the owning process span, and the
// bytes moved across the scratch-folder boundary feed the
// bytes_staged_in_total / bytes_staged_out_total counters.  If any step
// fails (including cancellation), the scratch folders are removed before
// returning unless Options.KeepTempDirs asks for them.

// exeImageSize is the size of the simulated program executable that step 2
// installs into every scratch folder (legacy Fortran filter binaries are a
// few tens of kilobytes).
const exeImageSize = 64 * 1024

// exeImageName is the staged executable's file name inside scratch folders.
const exeImageName = "program.exe"

// ensureExeImage creates the simulated executable in the work directory if
// it does not exist yet and returns its path.
func (s *state) ensureExeImage() (string, error) {
	path := s.path("_filter.exe")
	if _, err := os.Stat(path); err == nil {
		return path, nil
	}
	buf := make([]byte, exeImageSize)
	for i := range buf {
		buf[i] = byte(i * 2654435761)
	}
	if err := os.WriteFile(path, buf, 0o755); err != nil {
		return "", err
	}
	return path, nil
}

// copyFile copies src to dst and returns the number of bytes written.
func copyFile(dst, src string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	n, cpErr := io.Copy(out, in)
	clErr := out.Close()
	if cpErr != nil {
		return n, cpErr
	}
	return n, clErr
}

// stageCopy copies src across the scratch-folder boundary, charging the
// copied bytes to the given staging counter.
func stageCopy(dst, src string, c *obs.Counter) error {
	n, err := copyFile(dst, src)
	c.Add(float64(n))
	return err
}

// stageMove renames src across the scratch-folder boundary (the paper's
// pseudocode moves data files rather than copying them), charging the
// file's size to the given staging counter.
func stageMove(dst, src string, c *obs.Counter) error {
	if info, err := os.Stat(src); err == nil {
		c.Add(float64(info.Size()))
	}
	return os.Rename(src, dst)
}

// removeScratchDirs deletes the scratch folders after a failed protocol
// run, so an aborted or cancelled pipeline leaves no tmp_* litter in the
// work directory.
func (s *state) removeScratchDirs(dirs []string) {
	if s.opts.KeepTempDirs {
		return
	}
	for _, d := range dirs {
		os.RemoveAll(d)
	}
}

// filterViaTempFolders is the temp-folder variant of processes #4 and #13
// (the paper's ParallelizeCorrection): one instance per station, three
// component signals per instance.  proc is the owning process span; the
// four protocol steps report task spans under it.
func (s *state) filterViaTempFolders(proc *obs.Span, tag string, workers int) (err error) {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	exe, err := s.ensureExeImage()
	if err != nil {
		return err
	}
	n := len(stations)
	dirs := make([]string, n)
	for i, st := range stations {
		dirs[i] = s.path(fmt.Sprintf("tmp_%s_%02d_%s", tag, i, st))
	}
	defer func() {
		if err != nil {
			s.removeScratchDirs(dirs)
		}
	}()

	// Step 1 (parallel): create folders, stage the parameter file (copied:
	// every instance needs it) and move the input V1 components in, as the
	// paper's pseudocode does ("Move 10*i+3*j+k <s><comp>.v1 file").
	err = s.timedTask(proc, "stage-in", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			if err := os.MkdirAll(dirs[i], 0o755); err != nil {
				return err
			}
			if err := stageCopy(filepath.Join(dirs[i], smformat.FilterParamsFile), s.path(smformat.FilterParamsFile), s.bytesIn); err != nil {
				return err
			}
			for _, comp := range seismic.Components {
				name := smformat.V1ComponentFileName(stations[i], comp)
				if err := stageMove(filepath.Join(dirs[i], name), s.path(name), s.bytesIn); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Step 2 (sequential, as in the paper, to avoid races on the image).
	err = s.timedTask(proc, "install-exe", func() error {
		for i := 0; i < n; i++ {
			if err := s.cancelled(); err != nil {
				return err
			}
			if err := stageCopy(filepath.Join(dirs[i], exeImageName), exe, s.bytesIn); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Step 3 (parallel): run the program inside each folder, stage the V2
	// products and a max-values fragment back out.
	fragments := make([]smformat.MaxValues, n)
	// The per-instance work is dominated by reading/writing the large V1/V2
	// text payloads, not by the filter arithmetic, so it contends like I/O
	// (the paper observes 1.9x-2.0x for these stages on 8 cores).
	err = s.timedTask(proc, "execute", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			st := stations[i]
			params, err := smformat.ReadFilterParamsFile(filepath.Join(dirs[i], smformat.FilterParamsFile))
			if err != nil {
				return err
			}
			frag := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
			for _, comp := range seismic.Components {
				v1, err := smformat.ReadV1ComponentFile(filepath.Join(dirs[i], smformat.V1ComponentFileName(st, comp)))
				if err != nil {
					return err
				}
				key := smformat.SignalKey{Station: st, Component: comp}
				v2, pk, err := s.correctSignal(v1, params.Spec(key))
				if err != nil {
					return err
				}
				local := filepath.Join(dirs[i], smformat.V2FileName(st, comp))
				if err := smformat.WriteV2File(local, v2); err != nil {
					return err
				}
				// Move the product back to the work directory, and the V1
				// input with it (the chain never modifies V1 components — the
				// rationale for dropping process #12 — so they must survive
				// for the later stages that reuse them).
				if err := stageMove(s.path(smformat.V2FileName(st, comp)), local, s.bytesOut); err != nil {
					return err
				}
				name := smformat.V1ComponentFileName(st, comp)
				if err := stageMove(s.path(name), filepath.Join(dirs[i], name), s.bytesOut); err != nil {
					return err
				}
				frag.Peaks[key] = pk
			}
			fragments[i] = frag
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Merge fragments deterministically into the max-values metadata.
	merged := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	for _, frag := range fragments {
		for k, v := range frag.Peaks {
			merged.Peaks[k] = v
		}
	}
	if err := smformat.WriteMaxValuesFile(s.path(smformat.MaxValuesFile), merged); err != nil {
		return err
	}

	// Step 4 (parallel): delete the scratch folders.
	if s.opts.KeepTempDirs {
		return nil
	}
	return s.timedTask(proc, "cleanup", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			return os.RemoveAll(dirs[i])
		})
	})
}

// fourierViaTempFolders is the temp-folder variant of process #7 (the
// paper's ParallelizeFourier): one instance per station, transforming the
// station's three component V2 files inside its scratch folder.
func (s *state) fourierViaTempFolders(proc *obs.Span, workers int) (err error) {
	stations, err := s.stations()
	if err != nil {
		return err
	}
	exe, err := s.ensureExeImage()
	if err != nil {
		return err
	}
	n := len(stations)
	dirs := make([]string, n)
	for i, st := range stations {
		dirs[i] = s.path(fmt.Sprintf("tmp_fou_%02d_%s", i, st))
	}
	defer func() {
		if err != nil {
			s.removeScratchDirs(dirs)
		}
	}()

	// Step 1 (parallel): create folders and move the V2 inputs in
	// (the paper's pseudocode: "Move 3*i+1 <s><comp>.v2 file").
	err = s.timedTask(proc, "stage-in", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			if err := os.MkdirAll(dirs[i], 0o755); err != nil {
				return err
			}
			for _, comp := range seismic.Components {
				name := smformat.V2FileName(stations[i], comp)
				if err := stageMove(filepath.Join(dirs[i], name), s.path(name), s.bytesIn); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Step 2 (sequential): install the executable image.
	err = s.timedTask(proc, "install-exe", func() error {
		for i := 0; i < n; i++ {
			if err := s.cancelled(); err != nil {
				return err
			}
			if err := stageCopy(filepath.Join(dirs[i], exeImageName), exe, s.bytesIn); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	// Step 3 (parallel): transform inside each folder, stage the F products
	// back out.
	err = s.timedTask(proc, "execute", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			for _, comp := range seismic.Components {
				v2, err := smformat.ReadV2File(filepath.Join(dirs[i], smformat.V2FileName(stations[i], comp)))
				if err != nil {
					return err
				}
				f, err := fourier.Spectra(v2)
				if err != nil {
					return err
				}
				name := smformat.FourierFileName(v2.Station, v2.Component)
				local := filepath.Join(dirs[i], name)
				if err := smformat.WriteFourierFile(local, f); err != nil {
					return err
				}
				if err := stageMove(s.path(name), local, s.bytesOut); err != nil {
					return err
				}
				// Move the V2 input back: stages VIII, IX, and XI reuse it.
				v2name := smformat.V2FileName(stations[i], comp)
				if err := stageMove(s.path(v2name), filepath.Join(dirs[i], v2name), s.bytesOut); err != nil {
					return err
				}
			}
			return nil
		})
	})
	if err != nil {
		return err
	}

	// Step 4 (parallel): delete the scratch folders.
	if s.opts.KeepTempDirs {
		return nil
	}
	return s.timedTask(proc, "cleanup", func() error {
		return s.parFor(n, workers, CostHeavyIO, func(i int) error {
			return os.RemoveAll(dirs[i])
		})
	})
}
