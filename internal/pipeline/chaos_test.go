package pipeline

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// chaosOptions is testOptions with a fault injector at the given rate and a
// fresh observer, so metric assertions see only this run.
func chaosOptions(rate float64, seed int64) Options {
	opts := testOptions()
	opts.Chaos = &faults.Config{Seed: seed, Rate: rate}
	opts.Retry = RetryPolicy{JitterSeed: seed, BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
	opts.Observer = obs.New()
	return opts
}

// chaosProductHashes is productHashes for possibly-degraded directories: the
// quarantine folder is allowed (and skipped), scratch folders still fail.
func chaosProductHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			if name == QuarantineDir {
				continue
			}
			t.Errorf("leftover scratch directory %s", name)
			continue
		}
		if name == "_filter.exe" || strings.HasSuffix(name, ".meta") {
			continue
		}
		if strings.HasSuffix(name, ".v1") {
			first, err := firstLine(storage.Disk(), filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if first == "STRONG-MOTION UNCORRECTED RECORD V1" {
				continue // input
			}
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

// assertOnlyQuarantineDirs fails on any scratch dir leak: the only directory
// a degraded run may leave behind is quarantine/, holding tmp_* folders.
func assertOnlyQuarantineDirs(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if e.Name() != QuarantineDir {
			t.Errorf("leaked directory %s outside %s/", e.Name(), QuarantineDir)
			continue
		}
		sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range sub {
			if !q.IsDir() || !strings.HasPrefix(q.Name(), "tmp_") {
				t.Errorf("unexpected quarantine entry %s", q.Name())
			}
		}
	}
}

// TestChaosSoak is the acceptance soak: sweep fault rates 0-20% with a fixed
// seed on both storage backends, assert the pipeline never deadlocks (test
// completion), never leaks scratch dirs outside quarantine/, reports
// retry/quarantine counts through the obs metrics, and produces
// byte-identical outputs to the fault-free run for every surviving record.
func TestChaosSoak(t *testing.T) {
	ev := testEvent(t)
	cleanDir, _ := runVariant(t, ev, FullParallel, testOptions())
	cleanHashes := productHashes(t, cleanDir)

	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		for _, rate := range []float64{0, 0.05, 0.20} {
			backend, rate := backend, rate
			t.Run(fmt.Sprintf("%s/rate=%v", backend, rate), func(t *testing.T) {
				opts := chaosOptions(rate, 1234)
				opts.Storage = backend
				dir := filepath.Join(t.TempDir(), "chaos")
				if err := PrepareWorkDir(dir, ev); err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), dir, FullParallel, opts)
				if err != nil {
					t.Fatalf("chaos run at rate %v failed outright: %v", rate, err)
				}
				assertOnlyQuarantineDirs(t, dir)

				quarantined := make(map[string]bool)
				for _, q := range res.Quarantined {
					quarantined[q.Station] = true
					if q.Scratch != "" {
						if _, err := os.Stat(q.Scratch); err != nil {
							t.Errorf("quarantined scratch %s not preserved: %v", q.Scratch, err)
						}
					}
				}
				if len(res.Stations)+len(quarantined) != 3 {
					t.Errorf("stations %v + quarantined %v do not cover the event", res.Stations, res.Quarantined)
				}

				// Surviving records' products are byte-identical to the clean run.
				got := chaosProductHashes(t, dir)
				for name, h := range cleanHashes {
					if strings.HasSuffix(name, ".meta") {
						continue
					}
					st := name[:4] // stations are SS01..SS03
					if quarantined[st] {
						continue
					}
					if got[name] != h {
						t.Errorf("survivor product %s differs from fault-free run", name)
					}
				}

				// Metrics agree with the result.
				o := opts.Observer
				if v := int64(o.Counter("faults_injected").Value()); v != res.FaultsInjected {
					t.Errorf("faults_injected metric %d != result %d", v, res.FaultsInjected)
				}
				if v := int64(o.Counter("retries").Value()); v != res.Retries {
					t.Errorf("retries metric %d != result %d", v, res.Retries)
				}
				if v := int(o.Counter("records_quarantined").Value()); v != len(res.Quarantined) {
					t.Errorf("records_quarantined metric %d != %d", v, len(res.Quarantined))
				}

				if rate == 0 {
					if res.FaultsInjected != 0 || res.Retries != 0 || len(res.Quarantined) != 0 {
						t.Errorf("rate 0 run reported chaos: %d faults, %d retries, %d quarantined",
							res.FaultsInjected, res.Retries, len(res.Quarantined))
					}
					// chaosProductHashes skips all metadata; compare like for like.
					cleanN := 0
					for name := range cleanHashes {
						if !strings.HasSuffix(name, ".meta") {
							cleanN++
						}
					}
					if len(got) != cleanN {
						t.Errorf("rate 0 produced %d products, clean run %d", len(got), cleanN)
					}
				}
			})
		}
	}
}

// TestChaosDeterministicBySeed asserts two runs with the same seed replay
// the same faults, retries, and quarantine set — on both storage backends,
// and identically across them (the injector's decisions are a pure function
// of the operation sites, which the backends share).
func TestChaosDeterministicBySeed(t *testing.T) {
	ev := testEvent(t)
	run := func(backend storage.Backend) Result {
		dir := filepath.Join(t.TempDir(), "chaos")
		if err := PrepareWorkDir(dir, ev); err != nil {
			t.Fatal(err)
		}
		opts := chaosOptions(0.10, 99)
		opts.Storage = backend
		res, err := Run(context.Background(), dir, FullParallel, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	check := func(label string, a, b Result) {
		t.Helper()
		if a.FaultsInjected != b.FaultsInjected || a.Retries != b.Retries {
			t.Errorf("%s diverged: faults %d vs %d, retries %d vs %d",
				label, a.FaultsInjected, b.FaultsInjected, a.Retries, b.Retries)
		}
		if fmt.Sprint(a.Stations) != fmt.Sprint(b.Stations) {
			t.Errorf("%s diverged in survivors: %v vs %v", label, a.Stations, b.Stations)
		}
		if len(a.Quarantined) != len(b.Quarantined) {
			t.Fatalf("%s diverged in quarantine: %v vs %v", label, a.Quarantined, b.Quarantined)
		}
		for i := range a.Quarantined {
			if a.Quarantined[i].Station != b.Quarantined[i].Station {
				t.Errorf("%s quarantine %d: %s vs %s", label, i, a.Quarantined[i].Station, b.Quarantined[i].Station)
			}
		}
	}
	a, b := run(storage.BackendFS), run(storage.BackendFS)
	check("same seed (fs)", a, b)
	m, n := run(storage.BackendMem), run(storage.BackendMem)
	check("same seed (mem)", m, n)
	check("fs vs mem", a, m)
}

// TestPartialBatchPoisonedRecord is the satellite scenario: N events, one
// poisoned record.  The other events complete untouched, the report names
// the quarantined record, and every clean record's products are
// byte-identical to a no-chaos batch.
func TestPartialBatchPoisonedRecord(t *testing.T) {
	mkDirs := func(t *testing.T) []string {
		root := t.TempDir()
		dirs := make([]string, 3)
		for i := range dirs {
			files := 2
			if i == 1 {
				files = 3 // station SS03 exists only in the poisoned event
			}
			ev, err := synth.Event(synth.EventSpec{
				Name: "batch", Files: files, TotalPoints: 1600, Magnitude: 4.8, Seed: int64(100 + i),
			})
			if err != nil {
				t.Fatal(err)
			}
			dirs[i] = filepath.Join(root, fmt.Sprintf("ev%d", i))
			if err := PrepareWorkDir(dirs[i], ev); err != nil {
				t.Fatal(err)
			}
		}
		return dirs
	}

	ref := mkDirs(t)
	refOpts := batchOptions(2)
	if _, err := RunBatch(context.Background(), ref, FullParallel, refOpts); err != nil {
		t.Fatal(err)
	}

	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			dirs := mkDirs(t)
			opts := batchOptions(2)
			opts.Storage = backend
			opts.Observer = obs.New()
			opts.Retry = RetryPolicy{BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
			opts.Chaos = &faults.Config{Seed: 7, Rules: []faults.Rule{
				{Record: "SS03", Stage: "cor", Op: "exec", Kind: faults.KindPermanent},
			}}
			results, err := RunBatch(context.Background(), dirs, FullParallel, opts)
			if err != nil {
				t.Fatalf("degraded batch failed outright: %v", err)
			}
			rep := BatchReport(results)
			if rep.Failed != 0 || rep.Succeeded != 3 {
				t.Fatalf("report events: %+v", rep)
			}
			if !rep.Degraded() {
				t.Error("report does not show degradation")
			}
			if len(rep.Quarantined) != 1 || rep.Quarantined[0].Station != "SS03" {
				t.Fatalf("quarantined = %+v, want exactly SS03", rep.Quarantined)
			}
			q := rep.Quarantined[0]
			if q.Dir != dirs[1] || q.Stage != StageVIII || q.Process != PCorrectedFilter {
				t.Errorf("outcome misattributed: %+v", q)
			}
			if rep.Err == nil {
				t.Fatal("report with quarantined record has nil Err")
			}
			if !errors.Is(rep.Err, &StageError{Record: "SS03"}) {
				t.Errorf("report Err does not match the poisoned record: %v", rep.Err)
			}

			// Clean events and the poisoned event's surviving records match the
			// no-chaos batch byte for byte.
			for i := range dirs {
				want := productHashes(t, ref[i])
				var got map[string]string
				if i == 1 {
					got = chaosProductHashes(t, dirs[i])
				} else {
					got = productHashes(t, dirs[i])
				}
				for name, h := range want {
					if strings.HasSuffix(name, ".meta") {
						continue
					}
					if i == 1 && strings.HasPrefix(name, "SS03") {
						continue // the quarantined record
					}
					if got[name] != h {
						t.Errorf("event %d product %s differs from no-chaos batch", i, name)
					}
				}
			}
			if v := int(opts.Observer.Counter("records_quarantined").Value()); v != 1 {
				t.Errorf("records_quarantined = %d, want 1", v)
			}
		})
	}
}

// TestScratchCleanupErrorsCounter forces every scratch removal to fail and
// asserts the failures are counted — and still not leaked, because the
// cleanup path falls back to the plain filesystem.
func TestScratchCleanupErrorsCounter(t *testing.T) {
	ev := testEvent(t)
	opts := chaosOptions(0, 5)
	opts.Chaos.Rules = []faults.Rule{{Op: "remove", Kind: faults.KindTransient}}
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), dir, FullParallel, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("cleanup faults quarantined records: %+v", res.Quarantined)
	}
	// Three temp-folder stages times three stations: nine failed removals.
	if v := int(opts.Observer.Counter("scratch_cleanup_errors").Value()); v != 9 {
		t.Errorf("scratch_cleanup_errors = %d, want 9", v)
	}
	assertNoScratchDirs(t, dir)
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("cleanup faults created a quarantine dir: %v", err)
	}
	// The run's products are untouched by cleanup chaos.
	got := productHashes(t, dir)
	cleanDir, _ := runVariant(t, ev, FullParallel, testOptions())
	want := productHashes(t, cleanDir)
	for name, h := range want {
		if got[name] != h {
			t.Errorf("product %s differs under cleanup chaos", name)
		}
	}
}

// exdevFS fails every rename with EXDEV, as if scratch dirs lived on a
// different filesystem than the work directory.
type exdevFS struct{ faults.FS }

func (f exdevFS) Rename(oldpath, newpath string) error {
	return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: syscall.EXDEV}
}

func TestStageMoveFallsBackOnEXDEV(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "src.v2")
	dst := filepath.Join(dir, "dst.v2")
	payload := []byte("cross-device payload")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	c := o.Counter("bytes")
	if err := stageMove(exdevFS{faults.OS{}}, dst, src, c); err != nil {
		t.Fatalf("stageMove did not fall back on EXDEV: %v", err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != string(payload) {
		t.Fatalf("destination after fallback: %q, %v", got, err)
	}
	if _, err := os.Stat(src); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("source survived the move: %v", err)
	}
	if v := c.Value(); v != float64(len(payload)) {
		t.Errorf("staging counter charged %v bytes, want %d", v, len(payload))
	}
}

// TestStageMovePropagatesRealRenameErrors ensures the EXDEV fallback does
// not swallow other rename failures.
func TestStageMovePropagatesRealRenameErrors(t *testing.T) {
	dir := t.TempDir()
	err := stageMove(faults.OS{}, filepath.Join(dir, "dst"), filepath.Join(dir, "missing"), nil)
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("stageMove on missing source = %v, want not-exist", err)
	}
}

// TestRetryOpRecoversFromTransients exercises the policy engine directly:
// two transient failures, then success, with the retries counted.
func TestRetryOpRecoversFromTransients(t *testing.T) {
	opts := testOptions()
	opts.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Microsecond, MaxDelay: 100 * time.Microsecond}
	opts.Observer = obs.New()
	s, err := newState(context.Background(), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	rc := recordSite{stage: StageIV, proc: PDefaultFilter, tag: "def", station: "SS01"}
	calls := 0
	err = s.retryOp(rc, "move", func() error {
		calls++
		if calls < 3 {
			return faults.ErrTransient
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("retryOp: err=%v calls=%d", err, calls)
	}
	if s.nRetries.Load() != 2 {
		t.Errorf("retries = %d, want 2", s.nRetries.Load())
	}
}

// TestRetryOpGivesUp covers the two terminal paths: permanent errors fail
// immediately, transient ones only after MaxAttempts.
func TestRetryOpGivesUp(t *testing.T) {
	opts := testOptions()
	opts.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Microsecond}
	s, err := newState(context.Background(), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	rc := recordSite{stage: StageV, proc: PFourier, tag: "fou", station: "SS02"}

	calls := 0
	err = s.retryOp(rc, "write", func() error { calls++; return faults.ErrPermanent })
	var serr *StageError
	if !errors.As(err, &serr) || serr.Kind != ErrKindPermanent || calls != 1 {
		t.Errorf("permanent: err=%v calls=%d", err, calls)
	}

	calls = 0
	err = s.retryOp(rc, "write", func() error { calls++; return faults.ErrTransient })
	if !errors.As(err, &serr) || serr.Kind != ErrKindTransient || serr.Attempts != 3 || calls != 3 {
		t.Errorf("exhaustion: err=%v calls=%d", err, calls)
	}
}

// TestRetryOpHonorsOpTimeout asserts a stuck operation classifies as a
// timeout and is retried until exhaustion.
func TestRetryOpHonorsOpTimeout(t *testing.T) {
	opts := testOptions()
	opts.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: 10 * time.Microsecond, OpTimeout: 2 * time.Millisecond}
	s, err := newState(context.Background(), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	release := make(chan struct{})
	defer close(release)
	rc := recordSite{stage: StageIV, proc: PDefaultFilter, tag: "def", station: "SS01"}
	err = s.retryOp(rc, "exec", func() error { <-release; return nil })
	var serr *StageError
	if !errors.As(err, &serr) || serr.Kind != ErrKindTimeout || serr.Attempts != 2 {
		t.Errorf("timeout: %v", err)
	}
}

// TestQuarantinePreservesScratchAndFiltersStations drives quarantine
// directly and checks its three effects: scratch preserved, station
// filtered, outcome recorded.
func TestQuarantinePreservesScratchAndFiltersStations(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	s, err := newState(context.Background(), dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	if err := s.procGatherInputs(); err != nil {
		t.Fatal(err)
	}
	scratch := s.path("tmp_def_00_SS01")
	if err := os.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	serr := &StageError{Stage: StageIV, Process: PDefaultFilter, Record: "SS01", Op: "move",
		Kind: ErrKindPermanent, Attempts: 1, Err: faults.ErrPermanent}
	rc := recordSite{stage: StageIV, proc: PDefaultFilter, tag: "def", station: "SS01", scratch: scratch}
	if err := s.degraded(rc, serr); err != nil {
		t.Fatalf("degraded propagated a record failure: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "tmp_def_00_SS01")); err != nil {
		t.Errorf("scratch not preserved in quarantine: %v", err)
	}
	if _, err := os.Stat(scratch); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("scratch still in work dir: %v", err)
	}
	stations, err := s.stations()
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stations {
		if st == "SS01" {
			t.Error("quarantined station still listed")
		}
	}
	outs := s.quarantinedOutcomes()
	if len(outs) != 1 || outs[0].Station != "SS01" || outs[0].Scratch == "" {
		t.Errorf("outcomes = %+v", outs)
	}
	// Cancellation is never degraded.
	if err := s.degraded(rc, context.Canceled); !errors.Is(err, context.Canceled) {
		t.Errorf("degraded swallowed cancellation: %v", err)
	}
}

// TestCleanOutputsRemovesQuarantine verifies a degraded directory can be
// reset to pristine state.
func TestCleanOutputsRemovesQuarantine(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	q := filepath.Join(dir, QuarantineDir, "tmp_def_00_SS01")
	if err := os.MkdirAll(q, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := CleanOutputs(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir)); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("quarantine dir survived CleanOutputs: %v", err)
	}
}

// TestChaosBackoffIsDeterministic pins the jitter schedule to the seed.
func TestChaosBackoffIsDeterministic(t *testing.T) {
	p := RetryPolicy{JitterSeed: 11}.withDefaults()
	q := RetryPolicy{JitterSeed: 11}.withDefaults()
	for attempt := 1; attempt <= 5; attempt++ {
		a, b := p.Backoff(attempt, "SS01/move"), q.Backoff(attempt, "SS01/move")
		if a != b {
			t.Errorf("attempt %d: %v vs %v", attempt, a, b)
		}
		if a <= 0 || a > p.MaxDelay {
			t.Errorf("attempt %d backoff %v outside (0, %v]", attempt, a, p.MaxDelay)
		}
	}
	if p.Backoff(1, "SS01/move") == p.Backoff(1, "SS02/move") {
		t.Error("jitter does not decorrelate keys")
	}
}
