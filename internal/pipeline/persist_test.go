package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"accelproc/internal/obs"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// The warm-restart suite: the tentpole invariant of the persistent action
// cache.  A re-run of an already-processed event against the surviving
// <dir>/.smcache must restore every per-(record,process) node instead of
// recomputing it, and flipping one station's input must re-execute exactly
// that record's subgraph — with outputs byte-identical to a cold run in
// every case.

// perRecordNodes is the number of per-(record,process) dataflow nodes each
// station contributes: processes #3, #4, #7, #9, #10, #13, #15, #16, #18,
// and #19.
const perRecordNodes = 10

// persistEvent generates the 8-station warm-restart event (the paper-shaped
// record count the acceptance criterion names).
func persistEvent(t *testing.T, seed int64) synth.EventSpec {
	t.Helper()
	return synth.EventSpec{
		Name: "persist", Files: 8, TotalPoints: 9600, Magnitude: 5.2, Seed: seed,
	}
}

// preparePersistDir writes the event's inputs into a fresh work directory,
// optionally overwriting one station's input with the same station from a
// differently-seeded event (the "one changed record" scenario).
func preparePersistDir(t *testing.T, dir string, flipStation string) {
	t.Helper()
	ev, err := synth.Event(persistEvent(t, 41))
	if err != nil {
		t.Fatal(err)
	}
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if flipStation == "" {
		return
	}
	flipped, err := synth.Event(persistEvent(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	alt := t.TempDir()
	if err := PrepareWorkDir(alt, flipped); err != nil {
		t.Fatal(err)
	}
	name := smformat.V1FileName(flipStation)
	data, err := os.ReadFile(filepath.Join(alt, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// persistOptions returns fresh options for one pipelined run with the
// persistent cache on the given backend; every run gets its own observer so
// counters never bleed across runs.
func persistOptions(backend storage.Backend) Options {
	opts := testOptions()
	opts.Cache = CacheConfig{Mode: CachePersistent}
	opts.Storage = backend
	opts.Observer = obs.New()
	return opts
}

func recordNodesExecuted(opts Options) int64 {
	return int64(opts.Observer.Counter("dataflow_record_nodes_executed_total").Value())
}

func assertSameProducts(t *testing.T, got, ref map[string]string, when string) {
	t.Helper()
	if len(got) != len(ref) {
		t.Errorf("%s: product count %d, want %d", when, len(got), len(ref))
	}
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("%s: product %s differs from the cold run", when, name)
		}
	}
}

func TestWarmRestartSkipsUnchangedRecords(t *testing.T) {
	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			ctx := context.Background()
			const stations = 8
			dir := filepath.Join(t.TempDir(), "work")
			preparePersistDir(t, dir, "")

			// Cold run: every per-record node executes and populates the cache.
			cold := persistOptions(backend)
			res, err := Run(ctx, dir, Pipelined, cold)
			if err != nil {
				t.Fatal(err)
			}
			if got := recordNodesExecuted(cold); got != stations*perRecordNodes {
				t.Fatalf("cold run executed %d record nodes, want %d", got, stations*perRecordNodes)
			}
			if res.Cache.ActionHits != 0 || res.Cache.ActionMisses != stations*perRecordNodes {
				t.Fatalf("cold run cache stats %+v, want 0 hits / %d misses", res.Cache, stations*perRecordNodes)
			}
			coldRef := productHashes(t, dir)

			// Fully-warm restart: a fresh pipeline state over the surviving
			// .smcache restores everything.
			if err := CleanOutputs(dir); err != nil {
				t.Fatal(err)
			}
			warm := persistOptions(backend)
			res, err = Run(ctx, dir, Pipelined, warm)
			if err != nil {
				t.Fatal(err)
			}
			if got := recordNodesExecuted(warm); got != 0 {
				t.Errorf("fully-warm run executed %d record nodes, want 0", got)
			}
			if res.Cache.ActionHits != stations*perRecordNodes || res.Cache.ActionMisses != 0 {
				t.Errorf("fully-warm cache stats %+v, want %d hits / 0 misses", res.Cache, stations*perRecordNodes)
			}
			if hv := warm.Observer.Counter("action_cache_hits_total").Value(); int64(hv) != res.Cache.ActionHits {
				t.Errorf("action_cache_hits_total = %v, Result says %d", hv, res.Cache.ActionHits)
			}
			assertSameProducts(t, productHashes(t, dir), coldRef, "fully warm")

			// Flip one station's input: only that record's subgraph re-executes.
			preparePersistDir(t, dir, "SS03")
			if err := CleanOutputs(dir); err != nil {
				t.Fatal(err)
			}
			flip := persistOptions(backend)
			res, err = Run(ctx, dir, Pipelined, flip)
			if err != nil {
				t.Fatal(err)
			}
			if got := recordNodesExecuted(flip); got != perRecordNodes {
				t.Errorf("flipped run executed %d record nodes, want %d (only SS03's subgraph)", got, perRecordNodes)
			}
			if want := int64((stations - 1) * perRecordNodes); res.Cache.ActionHits != want {
				t.Errorf("flipped run action hits = %d, want %d", res.Cache.ActionHits, want)
			}

			// The flipped warm outputs must be byte-identical to a cold run
			// over the same (flipped) inputs.
			refDir := filepath.Join(t.TempDir(), "ref")
			preparePersistDir(t, refDir, "SS03")
			refOpts := persistOptions(backend)
			if _, err := Run(ctx, refDir, Pipelined, refOpts); err != nil {
				t.Fatal(err)
			}
			assertSameProducts(t, productHashes(t, dir), productHashes(t, refDir), "flipped warm")
		})
	}
}

// TestWarmRestartCorruptedEntryRecomputes damages the persisted cache and
// asserts the warm run degrades to recomputation — a miss, never an error —
// with outputs still byte-identical.
func TestWarmRestartCorruptedEntryRecomputes(t *testing.T) {
	ctx := context.Background()
	dir := filepath.Join(t.TempDir(), "work")
	preparePersistDir(t, dir, "")
	cold := persistOptions(storage.BackendFS)
	if _, err := Run(ctx, dir, Pipelined, cold); err != nil {
		t.Fatal(err)
	}
	coldRef := productHashes(t, dir)

	// Truncate one cached blob behind the cache's back.
	blobsDir := filepath.Join(dir, CacheDirName, "blobs")
	entries, err := os.ReadDir(blobsDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cached blobs: %v %v", entries, err)
	}
	victim := filepath.Join(blobsDir, entries[len(entries)/2].Name())
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if err := CleanOutputs(dir); err != nil {
		t.Fatal(err)
	}
	warm := persistOptions(storage.BackendFS)
	res, err := Run(ctx, dir, Pipelined, warm)
	if err != nil {
		t.Fatalf("warm run over a damaged cache failed: %v", err)
	}
	if res.Cache.ActionMisses == 0 {
		t.Error("truncated blob did not register as a miss")
	}
	if got := recordNodesExecuted(warm); got == 0 {
		t.Error("damaged entry was not recomputed")
	}
	assertSameProducts(t, productHashes(t, dir), coldRef, "damaged warm")
}

// TestPersistentCacheMatchesMemoOnlyOutputs pins the API redesign's ground
// rule: the cache mode changes work, never bytes.
func TestPersistentCacheMatchesMemoOnlyOutputs(t *testing.T) {
	ev := testEvent(t)
	ref, _ := runVariant(t, ev, Pipelined, testOptions())
	persist := testOptions()
	persist.Cache = CacheConfig{Mode: CachePersistent}
	dir, _ := runVariant(t, ev, Pipelined, persist)
	assertSameProducts(t, productHashes(t, dir), productHashes(t, ref), "persistent vs memo")
}

func TestParseCacheFlag(t *testing.T) {
	cases := []struct {
		in   string
		want CacheConfig
		bad  bool
	}{
		{in: "", want: CacheConfig{Mode: CacheMemory}},
		{in: "mem", want: CacheConfig{Mode: CacheMemory}},
		{in: "memory", want: CacheConfig{Mode: CacheMemory}},
		{in: "off", want: CacheConfig{Mode: CacheOff}},
		{in: "none", want: CacheConfig{Mode: CacheOff}},
		{in: "disk", want: CacheConfig{Mode: CachePersistent}},
		{in: "persistent", want: CacheConfig{Mode: CachePersistent}},
		{in: "disk:/var/cache/sm", want: CacheConfig{Mode: CachePersistent, Dir: "/var/cache/sm"}},
		{in: "DISK", want: CacheConfig{Mode: CachePersistent}},
		{in: "floppy", bad: true},
		{in: "mem:/tmp/x", bad: true},
	}
	for _, c := range cases {
		got, err := ParseCacheFlag(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseCacheFlag(%q) accepted", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseCacheFlag(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseCacheFlag(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestNoArtifactCacheShim pins the deprecated bool's behavior: it maps to
// CacheOff only while the typed config is untouched.
func TestNoArtifactCacheShim(t *testing.T) {
	o := Options{NoArtifactCache: true}.withDefaults()
	if o.Cache.Mode != CacheOff {
		t.Errorf("NoArtifactCache alone: mode = %v, want off", o.Cache.Mode)
	}
	o = Options{NoArtifactCache: true, Cache: CacheConfig{Mode: CachePersistent}}.withDefaults()
	if o.Cache.Mode != CachePersistent {
		t.Errorf("typed config must win over the deprecated bool, got %v", o.Cache.Mode)
	}
	if o := (Options{}).withDefaults(); o.Cache.Mode != CacheMemory {
		t.Errorf("zero options: mode = %v, want memory", o.Cache.Mode)
	}
}
