package pipeline

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/obs"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// testEvent generates a small deterministic event: 3 stations, 1200 samples
// each, fast enough for every variant to run in a few hundred ms.
func testEvent(t *testing.T) seismic.Event {
	t.Helper()
	ev, err := synth.Event(synth.EventSpec{
		Name: "test", Files: 3, TotalPoints: 3600, Magnitude: 5.0, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

// testOptions keeps the stage IX workload small (fast method, short grid).
func testOptions() Options {
	return Options{
		Response: response.Config{
			Method:  response.NigamJennings,
			Periods: response.LogPeriods(0.05, 5, 16),
		},
	}
}

// runVariant prepares a fresh work dir and runs one variant on the event.
func runVariant(t *testing.T, ev seismic.Event, v Variant, opts Options) (string, Result) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), v.String())
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), dir, v, opts)
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	return dir, res
}

// productHashes maps every product file (excluding inputs, the flags file,
// and the simulated executable) to its content hash.
func productHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() {
			if e.Name() == CacheDirName || e.Name() == RunJournalDir {
				continue // cache / run-journal state, not a product
			}
			t.Errorf("leftover scratch directory %s", e.Name())
			continue
		}
		name := e.Name()
		if name == "_filter.exe" || name == smformat.FlagsFile {
			continue
		}
		if strings.HasSuffix(name, ".v1") {
			first, err := firstLine(storage.Disk(), filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if first == "STRONG-MOTION UNCORRECTED RECORD V1" {
				continue // input
			}
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out
}

func TestAllVariantsProduceCompleteInventory(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			dir, res := runVariant(t, ev, v, opts)
			if len(res.Stations) != 3 {
				t.Fatalf("stations = %v", res.Stations)
			}
			inv, err := Inventory(dir)
			if err != nil {
				t.Fatal(err)
			}
			n := len(ev.Records)
			want := OutputInventory{
				V1Inputs:     n,
				V1Components: 3 * n,
				V2:           3 * n,
				Fourier:      3 * n,
				Response:     3 * n,
				GEM:          18 * n,
				Plots:        3 * n,
				Metadata:     9,
			}
			if inv != want {
				t.Errorf("inventory = %+v, want %+v", inv, want)
			}
			if res.Timings.Total <= 0 {
				t.Error("total time not recorded")
			}
			if res.Timings.Stage[StageIX] <= 0 {
				t.Error("stage IX time not recorded")
			}
		})
	}
}

// The paper's central correctness claim: the optimization and both
// parallelizations preserve the final output exactly.
func TestVariantsProduceIdenticalOutputs(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, SeqOriginal, opts)
	ref := productHashes(t, dirRef)
	if len(ref) == 0 {
		t.Fatal("no products found")
	}
	for _, v := range []Variant{SeqOptimized, PartialParallel, FullParallel} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			dir, _ := runVariant(t, ev, v, opts)
			got := productHashes(t, dir)
			if len(got) != len(ref) {
				t.Errorf("product count %d, want %d", len(got), len(ref))
			}
			for name, h := range ref {
				gh, ok := got[name]
				if !ok {
					t.Errorf("missing product %s", name)
					continue
				}
				if gh != h {
					t.Errorf("product %s differs from sequential-original", name)
				}
			}
		})
	}
}

func TestRunIsDeterministic(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirA, _ := runVariant(t, ev, FullParallel, opts)
	dirB, _ := runVariant(t, ev, FullParallel, opts)
	a, b := productHashes(t, dirA), productHashes(t, dirB)
	if len(a) != len(b) {
		t.Fatalf("product counts differ: %d vs %d", len(a), len(b))
	}
	for name, h := range a {
		if b[name] != h {
			t.Errorf("product %s differs between identical runs", name)
		}
	}
}

func TestSequentialOptimizedSkipsRedundantProcesses(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	_, resOrig := runVariant(t, ev, SeqOriginal, opts)
	_, resOpt := runVariant(t, ev, SeqOptimized, opts)
	for _, p := range []ProcessID{PPlotUncorrected, PSeparateComps2, PInitMetadata2} {
		if resOrig.Timings.Process[p] <= 0 {
			t.Errorf("original: redundant process #%d not executed", p)
		}
		if resOpt.Timings.Process[p] != 0 {
			t.Errorf("optimized: redundant process #%d executed", p)
		}
	}
}

func TestProcessTimesCoverAllStages(t *testing.T) {
	ev := testEvent(t)
	_, res := runVariant(t, ev, FullParallel, testOptions())
	for _, st := range Stages {
		if res.Timings.Stage[st.ID] <= 0 {
			t.Errorf("stage %v has no recorded time", st.ID)
		}
		for _, p := range st.Processes {
			if res.Timings.Process[p] <= 0 {
				t.Errorf("process #%d has no recorded time", p)
			}
		}
	}
}

func TestStageOf(t *testing.T) {
	cases := map[ProcessID]StageID{
		PInitFlags:          StageI,
		PGatherInputs:       StageI,
		PInitFilterParams:   StageII,
		PInitResponseGraph:  StageII,
		PSeparateComponents: StageIII,
		PDefaultFilter:      StageIV,
		PFourier:            StageV,
		PPickCorners:        StageVI,
		PInitFlags2:         StageVII,
		PCorrectedFilter:    StageVIII,
		PResponseSpectrum:   StageIX,
		PGenerateGEM:        StageX,
		PPlotFourier:        StageXI,
		PPlotAccel:          StageXI,
		PPlotResponse:       StageXI,
		// The redundant processes appear in no stage.
		PPlotUncorrected: 0,
		PSeparateComps2:  0,
		PInitMetadata2:   0,
	}
	for p, want := range cases {
		if got := StageOf(p); got != want {
			t.Errorf("StageOf(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestStageTableConsistency(t *testing.T) {
	// Every non-redundant process appears in exactly one stage.
	seen := map[ProcessID]int{}
	for _, st := range Stages {
		for _, p := range st.Processes {
			seen[p]++
		}
	}
	for _, info := range Processes {
		want := 1
		if info.Redundant {
			want = 0
		}
		// #0 and #11 share one implementation but are distinct processes.
		if got := seen[info.ID]; got != want {
			t.Errorf("process #%d appears in %d stages, want %d", info.ID, got, want)
		}
	}
	// The paper's counts: partial parallelizes 5 stages, full 10.
	partial, full := 0, 0
	for _, st := range Stages {
		if st.Partial != StratSequential {
			partial++
		}
		if st.Full != StratSequential {
			full++
		}
	}
	if partial != 5 {
		t.Errorf("partial parallel stages = %d, want 5", partial)
	}
	if full != 10 {
		t.Errorf("full parallel stages = %d, want 10", full)
	}
}

func TestVariantString(t *testing.T) {
	names := map[Variant]string{
		SeqOriginal:     "sequential-original",
		SeqOptimized:    "sequential-optimized",
		PartialParallel: "partially-parallelized",
		FullParallel:    "fully-parallelized",
	}
	for v, want := range names {
		if got := v.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(v), got, want)
		}
	}
	if !strings.Contains(Variant(9).String(), "9") {
		t.Error("unknown variant string")
	}
	if StageID(99).String() != "Stage(99)" {
		t.Error("unknown stage string")
	}
	if StageIX.String() != "IX" {
		t.Errorf("StageIX = %q", StageIX.String())
	}
}

func TestRunFailsOnEmptyDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run(context.Background(), dir, SeqOriginal, testOptions()); err == nil {
		t.Error("empty directory accepted")
	}
}

func TestRunFailsOnMissingDirectory(t *testing.T) {
	if _, err := Run(context.Background(), filepath.Join(t.TempDir(), "nope"), SeqOriginal, testOptions()); err == nil {
		t.Error("missing directory accepted")
	}
}

func TestRunFailsOnFileAsDirectory(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), f, SeqOriginal, testOptions()); err == nil {
		t.Error("regular file accepted as work dir")
	}
}

func TestCorruptInputQuarantined(t *testing.T) {
	ev := testEvent(t)
	for _, v := range Variants {
		dir := filepath.Join(t.TempDir(), v.String())
		if err := PrepareWorkDir(dir, ev); err != nil {
			t.Fatal(err)
		}
		// Truncate one input mid-payload: the header survives (so the file
		// is gathered) but decoding must fail — and the decode node must
		// quarantine the record instead of failing the run.
		name := filepath.Join(dir, smformat.V1FileName(ev.Records[0].Station))
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(name, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), dir, v, testOptions())
		if err != nil {
			t.Fatalf("%v: run failed instead of degrading: %v", v, err)
		}
		if len(res.Quarantined) != 1 {
			t.Fatalf("%v: %d records quarantined, want 1", v, len(res.Quarantined))
		}
		q := res.Quarantined[0]
		if q.Station != ev.Records[0].Station {
			t.Errorf("%v: quarantined %s, want %s", v, q.Station, ev.Records[0].Station)
		}
		if q.Process != PSeparateComponents {
			t.Errorf("%v: quarantined at process #%d, want #%d", v, q.Process, PSeparateComponents)
		}
		if !errors.Is(q.Err, smformat.ErrFormat) {
			t.Errorf("%v: quarantine reason %v does not wrap smformat.ErrFormat", v, q.Err)
		}
		// The survivors must have completed normally.
		if want := len(ev.Records) - 1; len(res.Stations) != want {
			t.Errorf("%v: %d stations processed, want %d", v, len(res.Stations), want)
		}
	}
}

func TestRunUnknownVariant(t *testing.T) {
	dir := t.TempDir()
	if err := PrepareWorkDir(dir, testEvent(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, Variant(42), testOptions()); err == nil {
		t.Error("unknown variant accepted")
	}
}

func TestCleanOutputsRestoresPristineState(t *testing.T) {
	ev := testEvent(t)
	dir, _ := runVariant(t, ev, FullParallel, testOptions())
	if err := CleanOutputs(dir); err != nil {
		t.Fatal(err)
	}
	inv, err := Inventory(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := OutputInventory{V1Inputs: len(ev.Records)}
	if inv != want {
		t.Errorf("after clean: %+v, want %+v", inv, want)
	}
	// A rerun on the cleaned directory must succeed.
	if _, err := Run(context.Background(), dir, SeqOptimized, testOptions()); err != nil {
		t.Fatalf("rerun after clean: %v", err)
	}
}

func TestRerunInUsedDirectoryIsStable(t *testing.T) {
	// Running a second variant in the same (uncleaned) directory must not
	// mis-gather the per-component .v1 products as inputs.
	ev := testEvent(t)
	dir, _ := runVariant(t, ev, SeqOptimized, testOptions())
	res, err := Run(context.Background(), dir, FullParallel, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stations) != len(ev.Records) {
		t.Errorf("stations after rerun = %v", res.Stations)
	}
}

func TestPrepareWorkDirRejectsInvalidEvent(t *testing.T) {
	if err := PrepareWorkDir(t.TempDir(), seismic.Event{Name: "x", Records: []seismic.Record{{}}}); err == nil {
		t.Error("invalid event accepted")
	}
}

func TestKeepTempDirs(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	opts.KeepTempDirs = true
	dir := filepath.Join(t.TempDir(), "keep")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, FullParallel, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var scratch []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "tmp_") {
			scratch = append(scratch, e.Name())
		}
	}
	// Stages IV, V, and VIII each keep one folder per station.
	n := len(ev.Records)
	if len(scratch) != 3*n {
		t.Errorf("kept %d scratch dirs, want %d", len(scratch), 3*n)
	}
	sort.Strings(scratch)
	if !strings.HasPrefix(scratch[0], "tmp_cor") {
		t.Errorf("unexpected scratch dir %q", scratch[0])
	}
	// CleanOutputs removes them.
	if err := CleanOutputs(dir); err != nil {
		t.Fatal(err)
	}
	inv, err := Inventory(dir)
	if err != nil {
		t.Fatal(err)
	}
	if inv.V1Inputs != n || inv.V2 != 0 {
		t.Errorf("clean after keep: %+v", inv)
	}
}

func TestProcessTableMatchesPaper(t *testing.T) {
	if len(Processes) != 20 {
		t.Fatalf("process count = %d", len(Processes))
	}
	redundant := []ProcessID{PPlotUncorrected, PSeparateComps2, PInitMetadata2}
	for _, info := range Processes {
		if ProcessID(0) > info.ID || info.ID >= NumProcesses {
			t.Errorf("process %q has bad ID %d", info.Name, info.ID)
		}
		wantRedundant := false
		for _, r := range redundant {
			if info.ID == r {
				wantRedundant = true
			}
		}
		if info.Redundant != wantRedundant {
			t.Errorf("process #%d redundancy = %v, want %v", info.ID, info.Redundant, wantRedundant)
		}
	}
	// Figure 5's ID order must match the table index.
	for i, info := range Processes {
		if int(info.ID) != i {
			t.Errorf("Processes[%d].ID = %d", i, info.ID)
		}
	}
}

func TestNoTempFoldersAblationProducesIdenticalOutputs(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, FullParallel, opts)
	ref := productHashes(t, dirRef)

	opts.NoTempFolders = true
	dir, res := runVariant(t, ev, FullParallel, opts)
	got := productHashes(t, dir)
	if len(got) != len(ref) {
		t.Errorf("product count %d, want %d", len(got), len(ref))
	}
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("product %s differs under the no-temp-folder ablation", name)
		}
	}
	if res.Timings.Stage[StageIV] <= 0 {
		t.Error("stage IV not timed under ablation")
	}
}

func TestSimulatedPlatformPreservesOutputsAndShrinksParallelTime(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, FullParallel, opts)
	ref := productHashes(t, dirRef)

	sim := opts
	sim.SimProcessors = 8
	dir, resPar := runVariant(t, ev, FullParallel, sim)
	got := productHashes(t, dir)
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("product %s differs on the simulated platform", name)
		}
	}
	_, resSeq := runVariant(t, ev, SeqOriginal, sim)
	// On the simulated 8-processor machine the parallel variant must be
	// charged less total time than the sequential one.
	if resPar.Timings.Total >= resSeq.Timings.Total {
		t.Errorf("simulated FullParallel %v >= SeqOriginal %v",
			resPar.Timings.Total, resSeq.Timings.Total)
	}
}

func TestOptionsWithDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.MetaWorkers != 4 {
		t.Errorf("MetaWorkers = %d, want 4", o.MetaWorkers)
	}
	if o.TaperFraction != 0.05 {
		t.Errorf("TaperFraction = %g, want 0.05", o.TaperFraction)
	}
	if o.ContentionCPU <= 0 || o.ContentionIO <= o.ContentionCPU {
		t.Errorf("contention defaults = %g, %g", o.ContentionCPU, o.ContentionIO)
	}
	// Explicit values survive.
	o = Options{MetaWorkers: 2, TaperFraction: 0.1, ContentionCPU: 0.2, ContentionIO: 0.9}.withDefaults()
	if o.MetaWorkers != 2 || o.TaperFraction != 0.1 || o.ContentionCPU != 0.2 || o.ContentionIO != 0.9 {
		t.Errorf("explicit options overridden: %+v", o)
	}
}

func TestSimulatedParForSurfacesDecodeFailures(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "w")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.SimProcessors = 8
	res, err := Run(context.Background(), dir, FullParallel, opts)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}
	_ = res
	// Truncate one input and rerun: the decode failure must surface through
	// the simulated parallel loop as a quarantine verdict, not be swallowed
	// by the scheduler.
	name := filepath.Join(dir, ev.Records[0].Station+".v1")
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(name, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	res, err = Run(context.Background(), dir, FullParallel, opts)
	if err != nil {
		t.Fatalf("simulated run failed instead of degrading: %v", err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Station != ev.Records[0].Station {
		t.Errorf("simulated run quarantined %v, want exactly %s", res.Quarantined, ev.Records[0].Station)
	}
}

func TestCostAndKindTablesCoverEveryProcess(t *testing.T) {
	// Sanity: the paper's legend assigns every process a kind and a cost;
	// heavy processes must not be marked light.
	heavy := map[ProcessID]bool{
		PGatherInputs: true, PSeparateComponents: true, PDefaultFilter: true,
		PFourier: true, PCorrectedFilter: true, PResponseSpectrum: true,
		PGenerateGEM: true, PPlotUncorrected: true, PPlotFourier: true,
		PPlotAccel: true, PPlotResponse: true, PPickCorners: true,
		PSeparateComps2: true,
	}
	for _, info := range Processes {
		if heavy[info.ID] && info.Cost == CostLight {
			t.Errorf("process #%d (%s) marked light", info.ID, info.Name)
		}
		if !heavy[info.ID] && info.Cost != CostLight {
			t.Errorf("process #%d (%s) marked heavy", info.ID, info.Name)
		}
	}
}

func TestInstrumentCorrectionOption(t *testing.T) {
	ev := testEvent(t)
	plain := testOptions()
	withInstr := testOptions()
	withInstr.Instrument = &dsp.Instrument{F0: 25, Damping: 0.7}

	dirPlain, _ := runVariant(t, ev, SeqOptimized, plain)
	dirInstr, _ := runVariant(t, ev, SeqOptimized, withInstr)

	a := productHashes(t, dirPlain)
	b := productHashes(t, dirInstr)
	// The corrected products must differ (the deconvolution does real
	// work) while the inventory stays complete.
	sameV2 := 0
	for name, h := range a {
		if strings.HasSuffix(name, ".v2") && b[name] == h {
			sameV2++
		}
	}
	if sameV2 != 0 {
		t.Errorf("%d V2 products identical with and without instrument correction", sameV2)
	}
	// And the parallel variant agrees with the sequential one under the
	// same instrument option.
	dirPar, _ := runVariant(t, ev, FullParallel, withInstr)
	c := productHashes(t, dirPar)
	for name, h := range b {
		if c[name] != h {
			t.Errorf("product %s differs across variants with instrument correction", name)
		}
	}
}

func TestObserverEmitsProcessSpans(t *testing.T) {
	ev := testEvent(t)
	runTraced := func(v Variant) map[ProcessID]int {
		col := &obs.Collector{}
		opts := testOptions()
		opts.Observer = obs.New(col)
		_, _ = runVariant(t, ev, v, opts)
		got := map[ProcessID]int{}
		for _, rec := range col.Records() {
			if rec.Kind != obs.KindProcess {
				continue
			}
			id, ok := rec.IntAttr("process")
			if !ok {
				t.Fatalf("process span %q has no process attr", rec.Name)
			}
			if rec.Duration < 0 {
				t.Errorf("process #%d span has negative duration %v", id, rec.Duration)
			}
			got[ProcessID(id)]++
		}
		return got
	}

	// Every one of the 20 processes emits exactly one span under the
	// original sequence; the optimized schedules drop the redundant three.
	got := runTraced(SeqOriginal)
	for id := ProcessID(0); id < NumProcesses; id++ {
		if got[id] != 1 {
			t.Errorf("process #%d emitted %d spans, want 1", id, got[id])
		}
	}

	got = runTraced(FullParallel)
	for id := ProcessID(0); id < NumProcesses; id++ {
		want := 1
		if Processes[id].Redundant {
			want = 0
		}
		if got[id] != want {
			t.Errorf("full-parallel: process #%d emitted %d spans, want %d", id, got[id], want)
		}
	}
}
