package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"accelproc/internal/obs"
	"accelproc/internal/parallel"
)

// BatchResult pairs one work directory with its run outcome.
type BatchResult struct {
	Dir    string
	Result Result
	Err    error
	// Wait and Latency are fleet-mode scheduling times (see RunFleet): how
	// long the event sat in the arrival queue before admission, and its
	// admission-to-done latency.  Both are zero under RunBatch, which has no
	// admission control.
	Wait    time.Duration
	Latency time.Duration
}

// RunBatch processes several event work directories with the same variant,
// running up to opts.EventWorkers pipelines concurrently (0 = all
// processors).  This is the paper's future-work direction — "scaling our
// approach to larger experimental accelerographic datasets" — realized as
// one level of outer parallelism above the per-event pipeline.
//
// Every directory is attempted; per-directory failures are reported in the
// corresponding BatchResult rather than aborting the batch, and one error is
// also returned for convenience: the first *real* cause in directory order,
// with cancellation errors displaced by genuine failures (the parallel
// package's selection rule).  Results are ordered like dirs and every entry
// is populated even on a canceled batch.  Cancelling ctx drains rather than
// aborts: in-flight event runs fail fast internally (cleaning up their
// scratch folders) and the remaining directories still run, each returning
// the context's cause immediately.
//
// When opts.Observer is set, the batch reports one "batch" root span with a
// per-event run span tree nested under it.
//
// Note on the simulated platform: opts.SimProcessors models the parallelism
// *inside* one event's pipeline.  Outer event-level concurrency uses real
// goroutines in every mode, so batch throughput reflects the host, while
// per-event timings remain simulated.
func RunBatch(ctx context.Context, dirs []string, variant Variant, opts Options) ([]BatchResult, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("pipeline: empty batch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Reject duplicate directories up front: two concurrent runs in one
	// directory would race on every product file.
	seen := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		if seen[d] {
			return nil, fmt.Errorf("pipeline: directory %s appears twice in the batch", d)
		}
		seen[d] = true
	}
	batchSpan := opts.ParentSpan.Child("batch:"+variant.String(), obs.KindRun,
		obs.Int("events", int64(len(dirs))))
	if batchSpan == nil {
		batchSpan = opts.Observer.Root("batch:"+variant.String(), obs.KindRun,
			obs.Int("events", int64(len(dirs))))
	}
	eventOpts := opts
	eventOpts.ParentSpan = batchSpan
	results := make([]BatchResult, len(dirs))
	var mu sync.Mutex
	mon := obs.NewWorkerMonitor(opts.Observer, "batch")
	var bmon parallel.Monitor
	if mon != nil {
		bmon = mon
	}
	_ = parallel.ParallelForMonitored(len(dirs), opts.EventWorkers, parallel.ScheduleDynamic, 1, bmon, func(i int) error {
		res, err := Run(ctx, dirs[i], variant, eventOpts)
		mu.Lock()
		results[i] = BatchResult{Dir: dirs[i], Result: res, Err: err}
		mu.Unlock()
		return nil
	})
	batchSpan.End()
	return results, batchFirstError(results)
}

// batchFirstError selects the batch-level convenience error from per-event
// outcomes: a real failure displaces the cancellations it (or the caller)
// triggered, and within a class the earliest directory wins, so a canceled
// batch deterministically reports its cause.
func batchFirstError(results []BatchResult) error {
	var first parallel.FirstCause
	for i, r := range results {
		first.Offer(i, r.Err)
	}
	if err := first.Err(); err != nil {
		return fmt.Errorf("pipeline: batch directory %s: %w", results[first.Index()].Dir, err)
	}
	return nil
}

// Report aggregates the outcomes of a batch run: how many events succeeded
// outright, how many failed, and which individual records were quarantined
// inside otherwise-successful events — the graceful-degradation middle
// ground between those two.
type Report struct {
	// Events is the batch size, Succeeded/Failed its event-level split.
	Events    int
	Succeeded int
	Failed    int
	// Quarantined lists every record given up on across the batch, in
	// event order (stations sorted within each event).
	Quarantined []RecordOutcome
	// Retries and FaultsInjected total the per-event counts.
	Retries        int64
	FaultsInjected int64
	// Err joins (errors.Join) every event-level error and every
	// quarantined record's StageError, so errors.Is/As can match any
	// individual failure through the aggregate.  Nil when the batch was
	// fully healthy.
	Err error
}

// Degraded reports whether the batch completed with losses: no failed
// events, but at least one quarantined record.
func (r Report) Degraded() bool { return r.Failed == 0 && len(r.Quarantined) > 0 }

// String summarizes the report in one line for CLI output.
func (r Report) String() string {
	return fmt.Sprintf("events %d (ok %d, failed %d), records quarantined %d, retries %d, faults injected %d",
		r.Events, r.Succeeded, r.Failed, len(r.Quarantined), r.Retries, r.FaultsInjected)
}

// BatchReport folds RunBatch results into a Report.
func BatchReport(results []BatchResult) Report {
	rep := Report{Events: len(results)}
	var errs []error
	for _, r := range results {
		if r.Err != nil {
			rep.Failed++
			errs = append(errs, fmt.Errorf("pipeline: event %s: %w", r.Dir, r.Err))
		} else {
			rep.Succeeded++
		}
		rep.Quarantined = append(rep.Quarantined, r.Result.Quarantined...)
		rep.Retries += r.Result.Retries
		rep.FaultsInjected += r.Result.FaultsInjected
		for _, q := range r.Result.Quarantined {
			errs = append(errs, q.Err)
		}
	}
	rep.Err = errors.Join(errs...)
	return rep
}

// BatchStations aggregates the station codes processed across a batch,
// sorted and de-duplicated — the event-catalog view of a batch run.
func BatchStations(results []BatchResult) []string {
	set := make(map[string]bool)
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		for _, st := range r.Result.Stations {
			set[st] = true
		}
	}
	out := make([]string, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}
