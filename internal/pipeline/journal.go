package pipeline

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"accelproc/internal/artifact"
	"accelproc/internal/faults"
	"accelproc/internal/storage"
)

// This file is the write-ahead run journal: the crash-safety layer behind
// `smproc -resume`.  A journaled run appends one fsync'd record after every
// durability point — run start, each per-(record,process) dataflow node
// whose outputs have fully landed in the work directory, each quarantine
// verdict, and run finish — so a run killed mid-event leaves a precise
// prefix of its progress on disk.  Resume replays that prefix: quarantine
// verdicts are restored without re-burning retry budgets, journaled nodes
// whose outputs still pass validation are handed to the dataflow scheduler
// as already-complete, and only the unfinished subgraphs re-execute.
//
// Design rules, in order of importance:
//
//  1. The journal can only ever cost resume coverage, never correctness or
//     the run itself.  Appends are best-effort; a record that fails to
//     land means its node re-executes after a crash, nothing more.  The
//     dataflow digests and the action cache remain the source of truth for
//     *what* a node computes — the journal only says it already did.
//  2. A damaged journal is data, not an error.  Parsing keeps the longest
//     valid prefix and silently drops the torn tail a crash mid-append
//     leaves behind; any malformed line ends the replay there.
//  3. A journal binds to the exact computation that wrote it: the start
//     record carries a digest of (variant, every Options parameter the
//     kernels read), and resume ignores journals whose digest differs —
//     rerunning with a different taper fraction must redo everything.
//
// Record format: a magic first line, then one record per line,
// `%08x <payload>` where the hex prefix is the IEEE CRC-32 of the payload.
// Payloads are space-separated; free-text fields (side-channel bytes,
// error messages) ride as base64.  The format is self-describing and
// versioned through the magic string.

// RunJournalDir is the work-directory subfolder holding run-lifecycle
// state: the write-ahead journal of a crashed or in-flight run.
const RunJournalDir = ".smrun"

// runJournalFile is the journal's file name inside RunJournalDir.
const runJournalFile = "journal"

// journalMagic heads every journal; a file without it is not a journal.
// The trailing v1 versions the record format.
const journalMagic = "SMRUN JOURNAL v1"

// staleScratchMaxAge is how old a tmp_* scratch dir or .tmp temp file must
// be before the non-resume startup sweep removes it: old enough to be
// debris from a crashed run, not the live scratch of a concurrent one.
const staleScratchMaxAge = time.Hour

// ResumeStats reports what the journal contributed to a run.
type ResumeStats struct {
	// Resumed is true when a prior run's journal was adopted: it matched
	// this run's variant and parameters and had not recorded a finish.
	Resumed bool
	// NodesJournaled counts the journaled per-(record,process) nodes that
	// passed output validation and were handed to the scheduler as done.
	NodesJournaled int
	// NodesSkipped counts the nodes the scheduler actually skipped from
	// that set during execution (quarantined records' nodes skip earlier,
	// so this can be lower than NodesJournaled).
	NodesSkipped int64
	// QuarantinesReplayed counts quarantine verdicts restored from the
	// journal instead of re-discovered through fresh retry storms.
	QuarantinesReplayed int
	// ScratchSwept counts the stale tmp_* scratch dirs and .tmp temp files
	// the startup sweep removed.
	ScratchSwept int
}

// journalNode is one replayed node record: a per-(record,process) node
// whose outputs had fully landed when the journal acknowledged it, plus
// the side-channel payload its join consumes (max-values fragment or
// picked corners; nil for nodes without one).
type journalNode struct {
	pid     ProcessID
	station string
	side    []byte
}

// nodeKey indexes replayed nodes for the scheduler's skip check.
type nodeKey struct {
	pid ProcessID
	st  string
}

// journalQuar is one replayed quarantine verdict.
type journalQuar struct {
	station  string
	stage    StageID
	pid      ProcessID
	op       string
	kind     ErrorKind
	attempts int
	msg      string
}

// journalView is the parsed content of a journal: the longest valid prefix
// of its records.
type journalView struct {
	started  bool
	finished bool
	variant  Variant
	digest   string
	nodes    []journalNode
	quars    []journalQuar
}

// journalLine frames one payload as a checksummed record line.
func journalLine(payload string) []byte {
	return []byte(fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE([]byte(payload)), payload))
}

// checkJournalLine validates one record line's checksum and returns its
// payload.
func checkJournalLine(line string) (string, bool) {
	crcHex, payload, ok := strings.Cut(line, " ")
	if !ok || len(crcHex) != 8 {
		return "", false
	}
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil {
		return "", false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return "", false
	}
	return payload, true
}

// parseJournal reads a journal's longest valid prefix.  It never fails:
// a missing magic yields the empty view, and the first torn or malformed
// line — the tail a crash mid-append leaves — ends the replay with
// everything before it intact.  A fresh start record resets the view, so
// only the newest run's records count.
func parseJournal(data []byte) journalView {
	var v journalView
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || lines[0] != journalMagic {
		return v
	}
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		payload, ok := checkJournalLine(line)
		if !ok {
			return v
		}
		fields := strings.Fields(payload)
		if len(fields) == 0 {
			return v
		}
		switch fields[0] {
		case "start":
			if len(fields) != 3 {
				return v
			}
			vi, err := strconv.Atoi(fields[1])
			if err != nil {
				return v
			}
			v = journalView{started: true, variant: Variant(vi), digest: fields[2]}
		case "node":
			if !v.started || len(fields) != 4 {
				return v
			}
			pid, err := strconv.Atoi(fields[1])
			if err != nil || pid < 0 || pid >= NumProcesses {
				return v
			}
			var side []byte
			if fields[3] != "-" {
				if side, err = base64.StdEncoding.DecodeString(fields[3]); err != nil {
					return v
				}
			}
			v.nodes = append(v.nodes, journalNode{pid: ProcessID(pid), station: fields[2], side: side})
		case "quar":
			if !v.started || len(fields) != 8 {
				return v
			}
			stage, err1 := strconv.Atoi(fields[2])
			pid, err2 := strconv.Atoi(fields[3])
			kind, err3 := strconv.Atoi(fields[5])
			attempts, err4 := strconv.Atoi(fields[6])
			msg, err5 := base64.StdEncoding.DecodeString(fields[7])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil ||
				stage < 0 || stage > NumStages || pid < 0 || pid >= NumProcesses {
				return v
			}
			v.quars = append(v.quars, journalQuar{
				station: fields[1], stage: StageID(stage), pid: ProcessID(pid),
				op: fields[4], kind: ErrorKind(kind), attempts: attempts, msg: string(msg),
			})
		case "finish":
			if !v.started {
				return v
			}
			v.finished = true
		default:
			return v
		}
	}
	return v
}

// sideField encodes a side-channel payload for a node record; "-" stands
// for none (the empty base64 string would vanish under field splitting).
func sideField(side []byte) string {
	if len(side) == 0 {
		return "-"
	}
	return base64.StdEncoding.EncodeToString(side)
}

// startPayload / nodePayload / quarPayload format the record payloads.
func startPayload(variant Variant, digest string) string {
	return fmt.Sprintf("start %d %s", int(variant), digest)
}

func nodePayload(n journalNode) string {
	return fmt.Sprintf("node %d %s %s", int(n.pid), n.station, sideField(n.side))
}

func quarPayload(q journalQuar) string {
	return fmt.Sprintf("quar %s %d %d %s %d %d %s", q.station, int(q.stage), int(q.pid),
		q.op, int(q.kind), q.attempts, base64.StdEncoding.EncodeToString([]byte(q.msg)))
}

// journalParamsDigest fingerprints everything that determines a run's
// outputs beyond the input files: the variant and the Options parameters
// the kernels read.  A journal written under a different digest is ignored
// by resume — its "done" claims are about a different computation.
func journalParamsDigest(variant Variant, o Options) string {
	h := artifact.NewHasher("accelproc/journal/v2")
	h.Int(int64(variant))
	h.String("format:" + o.Format)
	h.String("qc:" + o.QC.String())
	h.String(fmt.Sprintf("response:%#v", o.Response))
	h.String(fmt.Sprintf("pick:%#v", o.Pick))
	h.Float(o.TaperFraction)
	if o.Instrument != nil {
		h.String(fmt.Sprintf("instrument:%#v", *o.Instrument))
	} else {
		h.String("instrument:none")
	}
	if o.NoTempFolders {
		h.Int(1)
	} else {
		h.Int(0)
	}
	// Streaming changes no output bytes, but a streamed run must only adopt
	// a streamed journal (and vice versa): the resume-skip validation rules
	// assume the same execution plane produced the journaled nodes.
	if o.Streaming {
		h.Int(1)
	} else {
		h.Int(0)
	}
	return h.Sum().String()
}

// runJournal appends records to the on-disk journal.  Every method is
// nil-safe (a nil journal means journaling is off) and best-effort: a
// failed append costs resume coverage for that record, never the run.
// Appends go through the undecorated workspace — the journal is recovery
// machinery, not part of the staged protocol chaos faults.
type runJournal struct {
	ws   storage.Workspace
	path string
	mu   sync.Mutex
}

// append frames and durably appends one record, bracketed by the crash
// points the kill-9 matrix drives: dying at CrashJournalAppend loses the
// record (the node re-executes on resume), dying at CrashJournalAppended
// proves the acknowledged record survived.
func (j *runJournal) append(payload string) {
	if j == nil {
		return
	}
	line := journalLine(payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	faults.Crash(faults.CrashJournalAppend)
	_ = j.ws.Append(j.path, line, 0o644)
	faults.Crash(faults.CrashJournalAppended)
}

func (j *runJournal) nodeDone(pid ProcessID, station string, side []byte) {
	j.append(nodePayload(journalNode{pid: pid, station: station, side: side}))
}

func (j *runJournal) quarantined(o RecordOutcome) {
	msg := ""
	if o.Err != nil {
		var serr *StageError
		if errors.As(o.Err, &serr) && serr.Err != nil {
			msg = serr.Err.Error()
		} else {
			msg = o.Err.Error()
		}
	}
	kind := ErrKindTransient
	var serr *StageError
	if errors.As(o.Err, &serr) {
		kind = serr.Kind
	}
	j.append(quarPayload(journalQuar{
		station: o.Station, stage: o.Stage, pid: o.Process,
		op: quarOpOf(o.Err), kind: kind, attempts: o.Attempts, msg: msg,
	}))
}

// quarOpOf extracts the failing op from a quarantine's StageError.
func quarOpOf(err error) string {
	var serr *StageError
	if errors.As(err, &serr) && serr.Op != "" {
		return serr.Op
	}
	return "unknown"
}

// finish marks the run complete.  The journal subtree is then materialized
// so the finish record reaches real disk even on the mem backend (whose
// Append otherwise holds the bytes in memory).
func (j *runJournal) finish() {
	if j == nil {
		return
	}
	j.append("finish")
	_ = j.ws.Materialize(filepath.Dir(j.path))
}

// initJournal sets up the run's journal under <dir>/.smrun: under -resume
// it first replays a surviving journal (quarantine verdicts, validated
// node records) and sweeps every leftover scratch, then in all journaled
// runs rewrites a fresh journal whose prefix carries the replayed records,
// and opens it for appends.  Best-effort throughout — a work directory
// where the journal cannot be written simply runs unjournaled.
func (s *state) initJournal(variant Variant) {
	if !s.opts.Journal {
		return
	}
	digest := journalParamsDigest(variant, s.opts)
	jdir := s.path(RunJournalDir)
	jpath := filepath.Join(jdir, runJournalFile)
	var view journalView
	if s.opts.Resume {
		if data, err := s.ws.ReadFile(jpath); err == nil {
			view = parseJournal(data)
		}
		if view.started && !view.finished && view.digest == digest {
			s.resumeStats.Resumed = true
			s.journalReplays.Add(1)
			for _, q := range view.quars {
				s.replayQuarantine(q)
			}
			s.resumeStats.QuarantinesReplayed = len(view.quars)
			s.resumeDone = make(map[nodeKey]journalNode, len(view.nodes))
			for _, n := range view.nodes {
				if s.resumableNode(n) {
					s.resumeDone[nodeKey{pid: n.pid, st: n.station}] = n
				}
			}
			s.resumeStats.NodesJournaled = len(s.resumeDone)
		} else {
			view = journalView{}
		}
		// A resume owns the work directory: every per-instance scratch dir
		// and temp file is debris of the crashed run, whatever its age.
		s.resumeStats.ScratchSwept = s.sweepStaleScratch(0)
	} else {
		// A fresh journaled run sweeps only debris old enough to be from a
		// crashed run, not the live scratch of a concurrent one.
		s.resumeStats.ScratchSwept = s.sweepStaleScratch(staleScratchMaxAge)
	}
	s.sweptCtr.Add(float64(s.resumeStats.ScratchSwept))

	if err := s.ws.MkdirAll(jdir, 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	buf.WriteString(journalMagic + "\n")
	buf.Write(journalLine(startPayload(variant, digest)))
	for _, q := range view.quars {
		buf.Write(journalLine(quarPayload(q)))
	}
	for _, n := range view.nodes {
		if _, ok := s.resumeDone[nodeKey{pid: n.pid, st: n.station}]; ok {
			buf.Write(journalLine(nodePayload(n)))
		}
	}
	if err := s.ws.WriteFile(jpath, buf.Bytes(), 0o644); err != nil {
		return
	}
	s.journal = &runJournal{ws: s.ws, path: jpath}
}

// resumableNode validates one journaled node against the work directory:
// every declared output file must still be present, and nodes whose join
// consumes a side-channel payload must have journaled one.  A node that
// fails validation simply re-executes — from its persistent inputs, which
// the protocol never destroys (stage-out always returns them).
func (s *state) resumableNode(n journalNode) bool {
	switch n.pid {
	case PDefaultFilter, PCorrectedFilter, PPickCorners:
		if len(n.side) == 0 {
			return false
		}
	}
	for _, name := range nodeOutputNames(n.pid, n.station) {
		info, err := s.ws.Stat(s.path(name))
		if err != nil || info.IsDir() {
			return false
		}
	}
	return true
}

// replayQuarantine restores one journaled quarantine verdict: the station
// is condemned before the graph is built and its outcome re-reported, but
// the records_quarantined counter is not re-bumped — the verdict is
// inherited, not newly earned, and ResumeStats reports the replay count.
func (s *state) replayQuarantine(q journalQuar) {
	serr := &StageError{Stage: q.stage, Process: q.pid, Record: q.station,
		Op: q.op, Kind: q.kind, Attempts: q.attempts, Err: errors.New(q.msg)}
	s.quarMu.Lock()
	defer s.quarMu.Unlock()
	if s.quarantinedSet[q.station] {
		return
	}
	s.quarantinedSet[q.station] = true
	s.outcomes = append(s.outcomes, RecordOutcome{
		Dir: s.dir, Station: q.station, Stage: q.stage, Process: q.pid,
		Attempts: q.attempts, Err: serr,
	})
}

// sweepStaleScratch removes the per-instance scratch dirs (tmp_*) and
// atomic-write temp files (*.tmp) a crashed run left at the work-directory
// root.  maxAge 0 sweeps unconditionally (resume owns the directory);
// otherwise only entries whose mtime is older than maxAge go, so a
// concurrent run's live scratch survives.  Failures count toward the
// scratch_cleanup_errors counter like every other cleanup problem.
func (s *state) sweepStaleScratch(maxAge time.Duration) int {
	entries, err := s.ws.List(s.dir)
	if err != nil {
		return 0
	}
	cutoff := time.Now().Add(-maxAge)
	swept := 0
	for _, e := range entries {
		name := e.Name()
		isScratchDir := e.IsDir() && strings.HasPrefix(name, "tmp_")
		isTempFile := !e.IsDir() && strings.HasSuffix(name, ".tmp")
		if !isScratchDir && !isTempFile {
			continue
		}
		if maxAge > 0 {
			info, err := e.Info()
			if err != nil || info.ModTime().After(cutoff) {
				continue
			}
		}
		path := filepath.Join(s.dir, name)
		if isScratchDir {
			s.arts.InvalidateDir(path)
			if err := s.ws.RemoveAll(path); err != nil {
				s.cleanupErr.Add(1)
				continue
			}
		} else if err := s.ws.Remove(path); err != nil {
			s.cleanupErr.Add(1)
			continue
		}
		swept++
	}
	return swept
}

// resumeSnapshot folds the live skip counter into the replay stats for the
// run's Result.
func (s *state) resumeSnapshot() ResumeStats {
	rs := s.resumeStats
	rs.NodesSkipped = s.nodesSkipped.Load()
	return rs
}
