package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accelproc/internal/synth"
)

// batchOptions is testOptions with an event-level worker budget.
func batchOptions(workers int) Options {
	opts := testOptions()
	opts.EventWorkers = workers
	return opts
}

func prepareBatchDirs(t *testing.T, n int) []string {
	t.Helper()
	root := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		ev, err := synth.Event(synth.EventSpec{
			Name:        "batch",
			Files:       2,
			TotalPoints: 1600,
			Magnitude:   4.8,
			Seed:        int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = filepath.Join(root, "ev", strings.Repeat("x", i+1))
		if err := PrepareWorkDir(dirs[i], ev); err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

func TestRunBatchProcessesEveryDirectory(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	results, err := RunBatch(context.Background(), dirs, FullParallel, batchOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Dir != dirs[i] {
			t.Errorf("result %d dir = %s, want %s (order preserved)", i, r.Dir, dirs[i])
		}
		if r.Err != nil {
			t.Errorf("dir %s failed: %v", r.Dir, r.Err)
			continue
		}
		inv, err := Inventory(r.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if inv.V2 != 6 || inv.GEM != 36 {
			t.Errorf("dir %s inventory %+v", r.Dir, inv)
		}
	}
	stations := BatchStations(results)
	if len(stations) != 2 { // SS01, SS02 shared across events
		t.Errorf("stations = %v", stations)
	}
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	dirs := prepareBatchDirs(t, 2)
	ref := prepareBatchDirs(t, 2)
	if _, err := RunBatch(context.Background(), dirs, SeqOptimized, batchOptions(0)); err != nil {
		t.Fatal(err)
	}
	for _, d := range ref {
		if _, err := Run(context.Background(), d, SeqOptimized, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range dirs {
		a := productHashes(t, dirs[i])
		b := productHashes(t, ref[i])
		if len(a) != len(b) {
			t.Fatalf("dir %d product counts differ", i)
		}
		for name, h := range a {
			if b[name] != h {
				t.Errorf("dir %d product %s differs from individual run", i, name)
			}
		}
	}
}

func TestRunBatchReportsPerDirectoryFailures(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	// Corrupt the middle directory's only inputs.
	entries, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dirs[1], e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	results, err := RunBatch(context.Background(), dirs, SeqOptimized, batchOptions(2))
	if err == nil {
		t.Fatal("batch with corrupt directory reported no error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy directories failed")
	}
	if results[1].Err == nil {
		t.Error("corrupt directory did not fail")
	}
}

// TestBatchFirstErrorPrefersRealCause pins the batch-level error selection:
// a real failure displaces the cancellations around it regardless of
// directory order, and cancellation-only batches report the earliest one.
func TestBatchFirstErrorPrefersRealCause(t *testing.T) {
	real := errors.New("disk on fire")
	results := []BatchResult{
		{Dir: "a", Err: context.Canceled},
		{Dir: "b", Err: real},
		{Dir: "c", Err: context.Canceled},
	}
	err := batchFirstError(results)
	if !errors.Is(err, real) || errors.Is(err, context.Canceled) {
		t.Fatalf("batchFirstError = %v, want the real cause from b", err)
	}
	if !strings.Contains(err.Error(), "directory b") {
		t.Errorf("error %v does not name directory b", err)
	}
	onlyCancel := []BatchResult{
		{Dir: "x", Err: context.Canceled},
		{Dir: "y", Err: context.Canceled},
	}
	if err := batchFirstError(onlyCancel); !strings.Contains(err.Error(), "directory x") {
		t.Errorf("cancellation-only batch reported %v, want directory x", err)
	}
	if err := batchFirstError([]BatchResult{{Dir: "ok"}}); err != nil {
		t.Errorf("healthy batch reported %v", err)
	}
}

// TestRunBatchCanceledCtxDrainsWithPartialResults is the satellite
// regression: cancelling the batch context mid-run must still yield one
// populated BatchResult per directory — failed entries carrying the
// cancellation cause, finished entries their real outcome — and the batch
// error must reflect the cause deterministically.
func TestRunBatchCanceledCtxDrainsWithPartialResults(t *testing.T) {
	dirs := prepareBatchDirs(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the batch starts: every event drains immediately
	results, err := RunBatch(ctx, dirs, FullParallel, batchOptions(2))
	if err == nil {
		t.Fatal("canceled batch reported no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("batch error %v does not wrap context.Canceled", err)
	}
	if !strings.Contains(err.Error(), dirs[0]) {
		t.Errorf("batch error %v does not name the earliest directory", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, r := range results {
		if r.Dir != dirs[i] {
			t.Errorf("result %d dir = %q, want %q", i, r.Dir, dirs[i])
		}
		if r.Err == nil {
			t.Errorf("event %d reported success under canceled ctx", i)
		} else if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("event %d error %v is not the cancellation cause", i, r.Err)
		}
	}
	rep := BatchReport(results)
	if rep.Failed != 4 || rep.Succeeded != 0 {
		t.Errorf("report %+v, want 4 failed", rep)
	}
}

// TestRunBatchMidRunCancellation cancels while events are in flight: the
// batch must drain (no wedge, no panic), keep every result entry populated,
// and attribute each failure to the cancellation cause.
func TestRunBatchMidRunCancellation(t *testing.T) {
	dirs := prepareBatchDirs(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
		close(done)
	}()
	results, _ := RunBatch(ctx, dirs, FullParallel, batchOptions(1))
	<-done
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i, r := range results {
		if r.Dir != dirs[i] {
			t.Errorf("result %d dir = %q, want %q", i, r.Dir, dirs[i])
		}
		if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
			t.Errorf("event %d failed with %v, not the cancellation cause", i, r.Err)
		}
		if r.Err == nil && len(r.Result.Stations) == 0 {
			t.Errorf("event %d succeeded without stations", i)
		}
	}
}

// TestBatchReportEdgeCases covers the aggregate report's corners: the empty
// batch, an all-quarantined (fully degraded) batch, and duplicate station
// names across events.
func TestBatchReportEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		rep := BatchReport(nil)
		if rep.Events != 0 || rep.Succeeded != 0 || rep.Failed != 0 || rep.Err != nil {
			t.Errorf("empty report = %+v", rep)
		}
		if rep.Degraded() {
			t.Error("empty batch reads as degraded")
		}
		if st := BatchStations(nil); len(st) != 0 {
			t.Errorf("stations of empty batch = %v", st)
		}
	})
	t.Run("all-quarantined", func(t *testing.T) {
		mk := func(dir, station string) BatchResult {
			return BatchResult{Dir: dir, Result: Result{
				Quarantined: []RecordOutcome{{
					Dir: dir, Station: station, Stage: StageVIII, Process: PCorrectedFilter,
					Err: &StageError{Stage: StageVIII, Process: PCorrectedFilter, Record: station, Err: errors.New("poisoned")},
				}},
			}}
		}
		results := []BatchResult{mk("ev0", "SS01"), mk("ev1", "SS02")}
		rep := BatchReport(results)
		if rep.Succeeded != 2 || rep.Failed != 0 {
			t.Errorf("report %+v: every event degraded, none failed", rep)
		}
		if !rep.Degraded() || len(rep.Quarantined) != 2 {
			t.Errorf("report %+v does not show full degradation", rep)
		}
		if !errors.Is(rep.Err, &StageError{Record: "SS01"}) || !errors.Is(rep.Err, &StageError{Record: "SS02"}) {
			t.Errorf("report Err %v does not join both quarantined records", rep.Err)
		}
	})
	t.Run("duplicate-stations", func(t *testing.T) {
		results := []BatchResult{
			{Dir: "ev0", Result: Result{Stations: []string{"SS02", "SS01"}}},
			{Dir: "ev1", Result: Result{Stations: []string{"SS01", "SS03"}}},
			{Dir: "ev2", Err: errors.New("failed"), Result: Result{Stations: []string{"SS09"}}},
		}
		got := BatchStations(results)
		want := []string{"SS01", "SS02", "SS03"}
		if len(got) != len(want) {
			t.Fatalf("stations = %v, want %v (dedup, sorted, failed events excluded)", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stations = %v, want %v", got, want)
			}
		}
	})
}

func TestRunBatchRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := RunBatch(context.Background(), nil, SeqOptimized, batchOptions(2)); err == nil {
		t.Error("empty batch accepted")
	}
	dirs := prepareBatchDirs(t, 1)
	if _, err := RunBatch(context.Background(), []string{dirs[0], dirs[0]}, SeqOptimized, batchOptions(2)); err == nil {
		t.Error("duplicate directory accepted")
	}
}
