package pipeline

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/synth"
)

// batchOptions is testOptions with an event-level worker budget.
func batchOptions(workers int) Options {
	opts := testOptions()
	opts.EventWorkers = workers
	return opts
}

func prepareBatchDirs(t *testing.T, n int) []string {
	t.Helper()
	root := t.TempDir()
	dirs := make([]string, n)
	for i := range dirs {
		ev, err := synth.Event(synth.EventSpec{
			Name:        "batch",
			Files:       2,
			TotalPoints: 1600,
			Magnitude:   4.8,
			Seed:        int64(100 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = filepath.Join(root, "ev", strings.Repeat("x", i+1))
		if err := PrepareWorkDir(dirs[i], ev); err != nil {
			t.Fatal(err)
		}
	}
	return dirs
}

func TestRunBatchProcessesEveryDirectory(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	results, err := RunBatch(context.Background(), dirs, FullParallel, batchOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.Dir != dirs[i] {
			t.Errorf("result %d dir = %s, want %s (order preserved)", i, r.Dir, dirs[i])
		}
		if r.Err != nil {
			t.Errorf("dir %s failed: %v", r.Dir, r.Err)
			continue
		}
		inv, err := Inventory(r.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if inv.V2 != 6 || inv.GEM != 36 {
			t.Errorf("dir %s inventory %+v", r.Dir, inv)
		}
	}
	stations := BatchStations(results)
	if len(stations) != 2 { // SS01, SS02 shared across events
		t.Errorf("stations = %v", stations)
	}
}

func TestRunBatchMatchesIndividualRuns(t *testing.T) {
	dirs := prepareBatchDirs(t, 2)
	ref := prepareBatchDirs(t, 2)
	if _, err := RunBatch(context.Background(), dirs, SeqOptimized, batchOptions(0)); err != nil {
		t.Fatal(err)
	}
	for _, d := range ref {
		if _, err := Run(context.Background(), d, SeqOptimized, testOptions()); err != nil {
			t.Fatal(err)
		}
	}
	for i := range dirs {
		a := productHashes(t, dirs[i])
		b := productHashes(t, ref[i])
		if len(a) != len(b) {
			t.Fatalf("dir %d product counts differ", i)
		}
		for name, h := range a {
			if b[name] != h {
				t.Errorf("dir %d product %s differs from individual run", i, name)
			}
		}
	}
}

func TestRunBatchReportsPerDirectoryFailures(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	// Corrupt the middle directory's only inputs.
	entries, err := os.ReadDir(dirs[1])
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(dirs[1], e.Name()), []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	results, err := RunBatch(context.Background(), dirs, SeqOptimized, batchOptions(2))
	if err == nil {
		t.Fatal("batch with corrupt directory reported no error")
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Error("healthy directories failed")
	}
	if results[1].Err == nil {
		t.Error("corrupt directory did not fail")
	}
}

func TestRunBatchRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := RunBatch(context.Background(), nil, SeqOptimized, batchOptions(2)); err == nil {
		t.Error("empty batch accepted")
	}
	dirs := prepareBatchDirs(t, 1)
	if _, err := RunBatch(context.Background(), []string{dirs[0], dirs[0]}, SeqOptimized, batchOptions(2)); err == nil {
		t.Error("duplicate directory accepted")
	}
}
