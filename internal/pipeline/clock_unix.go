//go:build unix

package pipeline

import (
	"syscall"
	"time"
)

// cpuNow returns the accumulated CPU time (user + system) of this process.
// The simulated platform measures task costs with it instead of wall time:
// on shared or single-core hosts, wall-clock durations fluctuate with
// external load, while CPU time of serially executed bodies is stable —
// and in simulation mode every body runs serially by construction.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return time.Duration(0)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// haveCPUClock reports whether cpuNow is meaningful on this platform.
const haveCPUClock = true
