package pipeline

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
)

// The dataflow variant must be a pure scheduling change: same products, same
// robustness behaviour, different order.  These tests pin that equivalence
// against the fully-parallelized staged variant.

func TestPipelinedMatchesFullParallelOutputs(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, FullParallel, opts)
	ref := productHashes(t, dirRef)
	if len(ref) == 0 {
		t.Fatal("no products found")
	}
	dir, res := runVariant(t, ev, Pipelined, opts)
	got := productHashes(t, dir)
	if len(got) != len(ref) {
		t.Errorf("product count %d, want %d", len(got), len(ref))
	}
	for name, h := range ref {
		gh, ok := got[name]
		if !ok {
			t.Errorf("missing product %s", name)
			continue
		}
		if gh != h {
			t.Errorf("product %s differs from fully-parallelized", name)
		}
	}
	if len(res.Stations) != len(ev.Records) {
		t.Errorf("stations = %v", res.Stations)
	}
}

func TestPipelinedNoTempFoldersMatches(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, Pipelined, opts)
	ref := productHashes(t, dirRef)

	opts.NoTempFolders = true
	dir, _ := runVariant(t, ev, Pipelined, opts)
	got := productHashes(t, dir)
	if len(got) != len(ref) {
		t.Errorf("product count %d, want %d", len(got), len(ref))
	}
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("product %s differs under the no-temp-folder ablation", name)
		}
	}
}

func TestPipelinedIsDeterministic(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirA, _ := runVariant(t, ev, Pipelined, opts)
	dirB, _ := runVariant(t, ev, Pipelined, opts)
	a, b := productHashes(t, dirA), productHashes(t, dirB)
	if len(a) != len(b) {
		t.Fatalf("product counts differ: %d vs %d", len(a), len(b))
	}
	for name, h := range a {
		if b[name] != h {
			t.Errorf("product %s differs between identical runs", name)
		}
	}
}

// TestPipelinedTargetedChaosMatchesFullParallel poisons one record with a
// deterministic rule and requires both scheduling disciplines to quarantine
// exactly that record and produce byte-identical survivor products.  Rules
// match (stage, record, op) rather than an operation sequence, so they hit
// the same operation in both variants even though the dataflow executor
// reorders the work.
func TestPipelinedTargetedChaosMatchesFullParallel(t *testing.T) {
	cases := []struct {
		name  string
		rule  faults.Rule
		stage StageID
		proc  ProcessID
	}{
		{"def-stage-in", faults.Rule{Record: "SS01", Stage: "def", Op: "move", Kind: faults.KindPermanent}, StageIV, PDefaultFilter},
		{"fou-exec", faults.Rule{Record: "SS02", Stage: "fou", Op: "exec", Kind: faults.KindPermanent}, StageV, PFourier},
		{"cor-exec", faults.Rule{Record: "SS03", Stage: "cor", Op: "exec", Kind: faults.KindPermanent}, StageVIII, PCorrectedFilter},
	}
	ev := testEvent(t)
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func(v Variant) (map[string]string, Result) {
				opts := chaosOptions(0, 99)
				opts.Chaos.Rules = []faults.Rule{tc.rule}
				dir := filepath.Join(t.TempDir(), v.String())
				if err := PrepareWorkDir(dir, ev); err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), dir, v, opts)
				if err != nil {
					t.Fatalf("%v: %v", v, err)
				}
				assertOnlyQuarantineDirs(t, dir)
				return chaosProductHashes(t, dir), res
			}
			ref, resF := run(FullParallel)
			got, resP := run(Pipelined)

			for _, res := range []Result{resF, resP} {
				if len(res.Quarantined) != 1 || res.Quarantined[0].Station != tc.rule.Record {
					t.Fatalf("quarantined = %+v, want exactly %s", res.Quarantined, tc.rule.Record)
				}
				q := res.Quarantined[0]
				if q.Stage != tc.stage || q.Process != tc.proc {
					t.Errorf("quarantine attributed to stage %v process #%d, want %v/#%d",
						q.Stage, q.Process, tc.stage, tc.proc)
				}
				if len(res.Stations) != len(ev.Records)-1 {
					t.Errorf("stations = %v", res.Stations)
				}
			}
			if len(got) != len(ref) {
				t.Errorf("product count %d, want %d", len(got), len(ref))
			}
			for name, h := range ref {
				if got[name] != h {
					t.Errorf("survivor product %s differs between variants", name)
				}
			}
		})
	}
}

// TestPipelinedRandomChaosSelfConsistent runs the dataflow variant under
// probabilistic fault injection.  The concurrent node order makes the random
// draw sequence — and hence which records die — schedule-dependent, so the
// invariant is self-consistency: whatever survives must be byte-identical to
// a fault-free run, and the quarantine bookkeeping must cover the rest.
func TestPipelinedRandomChaosSelfConsistent(t *testing.T) {
	ev := testEvent(t)
	cleanDir, _ := runVariant(t, ev, Pipelined, testOptions())
	cleanHashes := productHashes(t, cleanDir)

	for _, rate := range []float64{0.05, 0.20} {
		rate := rate
		t.Run(fmt.Sprintf("rate=%v", rate), func(t *testing.T) {
			opts := chaosOptions(rate, 1234)
			dir := filepath.Join(t.TempDir(), "chaos")
			if err := PrepareWorkDir(dir, ev); err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), dir, Pipelined, opts)
			if err != nil {
				t.Fatalf("chaos run at rate %v failed outright: %v", rate, err)
			}
			assertOnlyQuarantineDirs(t, dir)

			quarantined := make(map[string]bool)
			for _, q := range res.Quarantined {
				quarantined[q.Station] = true
			}
			if len(res.Stations)+len(quarantined) != len(ev.Records) {
				t.Errorf("stations %v + quarantined %v do not cover the event",
					res.Stations, res.Quarantined)
			}

			got := chaosProductHashes(t, dir)
			for name, h := range cleanHashes {
				if strings.HasSuffix(name, ".meta") {
					continue
				}
				st := name[:4] // stations are SS01..SS03
				if quarantined[st] {
					continue
				}
				if got[name] != h {
					t.Errorf("survivor product %s differs from fault-free run", name)
				}
			}

			o := opts.Observer
			if v := int(o.Counter("records_quarantined").Value()); v != len(res.Quarantined) {
				t.Errorf("records_quarantined metric %d != %d", v, len(res.Quarantined))
			}
		})
	}
}

func TestPipelinedSimulatedPlatform(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, FullParallel, opts)
	ref := productHashes(t, dirRef)

	sim := opts
	sim.SimProcessors = 8
	dir, resPipe := runVariant(t, ev, Pipelined, sim)
	got := productHashes(t, dir)
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("product %s differs on the simulated platform", name)
		}
	}
	_, resSeq := runVariant(t, ev, SeqOriginal, sim)
	if resPipe.Timings.Total >= resSeq.Timings.Total {
		t.Errorf("simulated Pipelined %v >= SeqOriginal %v",
			resPipe.Timings.Total, resSeq.Timings.Total)
	}
}

// TestPipelinedEmitsDataflowTelemetry pins the scheduler's observability
// contract: one node span per graph node under the run span, a worker pool
// reporting under the "dataflow" scope, the ready-queue wait histogram, and
// the barrier-wait-eliminated gauge.
func TestPipelinedEmitsDataflowTelemetry(t *testing.T) {
	ev := testEvent(t)
	col := &obs.Collector{}
	opts := testOptions()
	opts.Observer = obs.New(col)
	_, res := runVariant(t, ev, Pipelined, opts)

	// Node count: 5 event-global processes, 10 per-record processes over 3
	// stations, and 3 join nodes (#4, #10, #13 write global artifacts).
	const wantNodes = 5 + 10*3 + 3

	nodeSpans := 0
	for _, rec := range col.Records() {
		if rec.Kind == obs.KindTask && strings.HasPrefix(rec.Name, "node:") {
			nodeSpans++
		}
	}
	if nodeSpans != wantNodes {
		t.Errorf("node spans = %d, want %d", nodeSpans, wantNodes)
	}

	o := opts.Observer
	if v := int(o.Counter("dataflow_worker_tasks_total").Value()); v != wantNodes {
		t.Errorf("dataflow_worker_tasks_total = %d, want %d", v, wantNodes)
	}
	if c := o.Histogram("dataflow_ready_queue_wait_seconds", nil).Count(); c != wantNodes {
		t.Errorf("ready-queue wait observations = %d, want %d", c, wantNodes)
	}
	if v := o.Gauge("dataflow_barrier_wait_eliminated_seconds").Value(); v < 0 {
		t.Errorf("barrier_wait_eliminated = %v, want >= 0", v)
	}
	if o.Counter("dataflow_worker_busy_seconds_total").Value() <= 0 {
		t.Error("dataflow worker pool reported no busy time")
	}

	// Every stage of the schedule still gets a timing entry (the sum of its
	// nodes' costs), so per-stage tables include the dataflow variant.
	for _, st := range Stages {
		if res.Timings.Stage[st.ID] <= 0 {
			t.Errorf("stage %v has no recorded time", st.ID)
		}
		for _, p := range st.Processes {
			if res.Timings.Process[p] <= 0 {
				t.Errorf("process #%d has no recorded time", p)
			}
		}
	}
}

// TestPipelinedParseVariant covers the new spellings.
func TestPipelinedParseVariant(t *testing.T) {
	for _, name := range []string{"pipelined", "pipe", "dataflow"} {
		v, err := ParseVariant(name)
		if err != nil || v != Pipelined {
			t.Errorf("ParseVariant(%q) = %v, %v", name, v, err)
		}
	}
	if Pipelined.String() != "pipelined" {
		t.Errorf("Pipelined.String() = %q", Pipelined.String())
	}
}
