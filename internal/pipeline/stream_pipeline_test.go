package pipeline

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/faults"
	"accelproc/internal/obs"
	"accelproc/internal/storage"
	"accelproc/internal/stream"
	"accelproc/internal/synth"
)

// The streaming execution plane's correctness contract: Options.Streaming
// changes how bytes move (chunk streams + incremental writers instead of
// materialized traces), never what bytes land.  These tests pin the
// byte-identity matrix Streaming=on/off × fs/mem, the flat-memory claim the
// plane exists for, the instrument-correction fallback path, and the kill-9
// crash case proving resume re-executes a mid-stream node.

// streamBudgetBound is the ablation acceptance bound: resident storage under
// streaming stays within twice the default chunk budget regardless of NPTS.
var streamBudgetBound = int64(2 * stream.BudgetBytes(stream.DefaultChunkLen, stream.DefaultWindow))

func TestStreamingProducesIdenticalOutputs(t *testing.T) {
	ev := testEvent(t)
	dirRef, _ := runVariant(t, ev, Pipelined, testOptions())
	ref := productHashes(t, dirRef)
	if len(ref) == 0 {
		t.Fatal("no products found")
	}
	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		backend := backend
		t.Run(string(backend), func(t *testing.T) {
			opts := testOptions()
			opts.Streaming = true
			opts.Storage = backend
			dir, res := runVariant(t, ev, Pipelined, opts)
			assertSameProducts(t, productHashes(t, dir), ref, "streaming/"+string(backend))
			if backend == storage.BackendMem && res.StorageBytesPeak > streamBudgetBound {
				t.Errorf("StorageBytesPeak = %d, want <= %d under streaming", res.StorageBytesPeak, streamBudgetBound)
			}
		})
	}
}

// TestStreamingFlatMemoryAblation is the plane's reason to exist: on the mem
// backend, growing the event's sample count by 25x leaves resident storage
// flat and under the chunk-budget bound, because every NPTS-scaled product
// flows through write-through incremental writers.  (The full 56K-to-1M-point
// sweep lives in the stream-bench memory ablation; this is its fast proxy.)
func TestStreamingFlatMemoryAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("processes a multi-hundred-kilopoint event")
	}
	peaks := make(map[string]int64)
	for _, tc := range []struct {
		name   string
		points int
	}{
		{"small", 8000},
		{"large", 200000},
	} {
		ev, err := synth.Event(synth.EventSpec{
			Name: "ablate", Files: 2, TotalPoints: tc.points, Magnitude: 5.0, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		opts := testOptions()
		opts.Streaming = true
		opts.Storage = storage.BackendMem
		_, res := runVariant(t, ev, Pipelined, opts)
		if res.StorageBytesPeak > streamBudgetBound {
			t.Errorf("%s (%d points): StorageBytesPeak = %d, want <= %d",
				tc.name, tc.points, res.StorageBytesPeak, streamBudgetBound)
		}
		peaks[tc.name] = res.StorageBytesPeak
	}
	// Flatness, not just boundedness: the 25x workload may not grow the peak.
	if peaks["large"] > peaks["small"] {
		t.Errorf("peak grew with NPTS: small=%d large=%d", peaks["small"], peaks["large"])
	}
}

// TestStreamingInstrumentFallbackIdentity covers the whole-trace fallback
// inside the streaming plane: instrument deconvolution gathers each record
// and runs the batch kernel, and the outputs still match the materialized
// run with the same instrument.
func TestStreamingInstrumentFallbackIdentity(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	opts.Instrument = &dsp.Instrument{F0: 25, Damping: 0.7}
	dirRef, _ := runVariant(t, ev, Pipelined, opts)
	ref := productHashes(t, dirRef)

	opts.Streaming = true
	dir, _ := runVariant(t, ev, Pipelined, opts)
	assertSameProducts(t, productHashes(t, dir), ref, "streaming+instrument")
}

func TestStreamingRequiresPipelined(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Streaming = true
	_, err := Run(context.Background(), dir, FullParallel, opts)
	if err == nil || !strings.Contains(err.Error(), "streaming requires the pipelined variant") {
		t.Errorf("Run(FullParallel, Streaming) = %v, want variant rejection", err)
	}
}

func TestStreamingRejectsChaos(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.Streaming = true
	opts.Chaos = &faults.Config{Seed: 1, Rate: 0.5}
	_, err := Run(context.Background(), dir, Pipelined, opts)
	if err == nil || !strings.Contains(err.Error(), "streaming mode cannot be combined with chaos") {
		t.Errorf("Run(Streaming+Chaos) = %v, want rejection", err)
	}
}

// streamCrashHelperEnv hands the work directory to the sacrificial child of
// the streaming crash case; it keeps TestStreamCrashRunHelper inert
// otherwise.
const streamCrashHelperEnv = "ACCELPROC_STREAM_CRASH_HELPER_DIR"

// streamCrashOptions must agree between the child and the resuming parent —
// Streaming participates in the journal's params digest.
func streamCrashOptions() Options {
	opts := testOptions()
	opts.Workers = 1
	opts.Journal = true
	opts.Streaming = true
	return opts
}

// TestStreamCrashRunHelper runs only as the re-exec'd child of
// TestStreamingCrashResume; the armed stream-node crash point SIGKILLs it
// between a streamed filter's scratch passes and its durable V2 commit.
func TestStreamCrashRunHelper(t *testing.T) {
	dir := os.Getenv(streamCrashHelperEnv)
	if dir == "" {
		t.Skip("helper: only meaningful as a crash-matrix subprocess")
	}
	if _, err := Run(context.Background(), dir, Pipelined, streamCrashOptions()); err != nil {
		t.Fatalf("helper run: %v", err)
	}
}

// TestStreamingCrashResume is the crash-matrix case for the streaming plane:
// kill -9 inside a streamed per-record node — after its upstream chunks were
// consumed and scratch spills written, before its durable output committed —
// then resume.  The journal never acknowledged the node, so resume must
// re-execute it (not trust half-written state), sweep the stranded
// tmp_stream_* scratch, and land byte-identical products.
func TestStreamingCrashResume(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	ctx := context.Background()
	ev := testEvent(t)
	totalNodes := int64(len(ev.Records)) * perRecordNodes

	// The uninterrupted streaming reference.
	refDir := filepath.Join(t.TempDir(), "ref")
	if err := PrepareWorkDir(refDir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(ctx, refDir, Pipelined, streamCrashOptions()); err != nil {
		t.Fatal(err)
	}
	ref := productHashes(t, refDir)

	// Hit 2 dies in the second component of the first record's default
	// filter: one V2 durable, one mid-scratch, the out-stream mid-flight.
	for _, arm := range []string{
		faults.CrashStreamNode + ":2",
		faults.CrashStreamNode + ":5",
	} {
		arm := arm
		t.Run(arm, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "work")
			if err := PrepareWorkDir(dir, ev); err != nil {
				t.Fatal(err)
			}

			cmd := exec.Command(os.Args[0], "-test.run", "^TestStreamCrashRunHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				streamCrashHelperEnv+"="+dir,
				faults.CrashEnv+"="+arm,
			)
			out, err := cmd.CombinedOutput()
			if !killedBySIGKILL(err) {
				t.Fatalf("subprocess survived crash point %s (err=%v):\n%s", arm, err, out)
			}

			opts := streamCrashOptions()
			opts.Resume = true
			opts.Observer = obs.New()
			res, err := Run(ctx, dir, Pipelined, opts)
			if err != nil {
				t.Fatalf("resume after %s: %v", arm, err)
			}
			if !res.Resume.Resumed {
				t.Fatalf("resume did not adopt the journal: %+v", res.Resume)
			}
			if len(res.Quarantined) != 0 {
				t.Fatalf("resume quarantined %v, want none", res.Quarantined)
			}
			if int64(res.Resume.NodesJournaled) != res.Resume.NodesSkipped {
				t.Errorf("journaled %d nodes but skipped %d",
					res.Resume.NodesJournaled, res.Resume.NodesSkipped)
			}
			executed := recordNodesExecuted(opts)
			if got := executed + res.Resume.NodesSkipped + res.Cache.ActionHits; got != totalNodes {
				t.Errorf("executed %d + skipped %d + cache hits %d = %d, want %d",
					executed, res.Resume.NodesSkipped, res.Cache.ActionHits, got, totalNodes)
			}
			if executed == 0 {
				t.Error("the crashed mid-stream node was not re-executed")
			}
			// The kill strands the run's tmp_stream_* scratch; resume sweeps it.
			if res.Resume.ScratchSwept == 0 {
				t.Errorf("crash at %s left no scratch to sweep, expected stranded tmp_stream_* dirs", arm)
			}
			assertSameProducts(t, productHashes(t, dir), ref, arm)
		})
	}
}
