package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"testing"

	"accelproc/internal/faults"
)

func TestStageErrorMessageAndUnwrap(t *testing.T) {
	serr := &StageError{
		Stage: StageVIII, Process: PCorrectedFilter, Record: "SS02", Op: "move",
		Kind: ErrKindTransient, Attempts: 3, Err: faults.ErrTransient,
	}
	msg := serr.Error()
	for _, want := range []string{"SS02", "move", "transient", "3"} {
		if !contains(msg, want) {
			t.Errorf("error message %q missing %q", msg, want)
		}
	}
	if !errors.Is(serr, faults.ErrTransient) {
		t.Error("StageError does not unwrap to its cause")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestStageErrorIsMatchesByFields covers the wildcard target semantics:
// zero fields on the target match anything.
func TestStageErrorIsMatchesByFields(t *testing.T) {
	serr := &StageError{
		Stage: StageIV, Process: PDefaultFilter, Record: "SS01", Op: "copy",
		Kind: ErrKindPermanent, Err: faults.ErrPermanent,
	}
	wrapped := fmt.Errorf("event a: %w", fmt.Errorf("step: %w", serr))

	match := []*StageError{
		{},                               // full wildcard
		{Record: "SS01"},                 // by record
		{Stage: StageIV},                 // by stage
		{Kind: ErrKindPermanent},         // by kind
		{Record: "SS01", Op: "copy"},     // combined
		{Stage: StageIV, Record: "SS01"}, // combined
		{Kind: ErrKindPermanent, Op: "copy"},
	}
	for _, m := range match {
		if !errors.Is(wrapped, m) {
			t.Errorf("errors.Is failed to match target %+v", m)
		}
	}
	miss := []*StageError{
		{Record: "SS02"},
		{Stage: StageV},
		{Op: "exec"},
		{Record: "SS01", Op: "exec"},
	}
	for _, m := range miss {
		if errors.Is(wrapped, m) {
			t.Errorf("errors.Is matched wrong target %+v", m)
		}
	}
}

func TestStageErrorAsThroughWrapping(t *testing.T) {
	serr := &StageError{Stage: StageV, Process: PFourier, Record: "SS03", Kind: ErrKindTimeout, Attempts: 2}
	wrapped := fmt.Errorf("outer: %w", errors.Join(errors.New("unrelated"), serr))
	var got *StageError
	if !errors.As(wrapped, &got) {
		t.Fatal("errors.As failed through Join + fmt wrapping")
	}
	if got.Record != "SS03" || got.Kind != ErrKindTimeout || got.Attempts != 2 {
		t.Errorf("extracted %+v", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorKind
	}{
		{faults.ErrTransient, ErrKindTransient},
		{faults.ErrCrash, ErrKindTransient},
		{faults.ErrTruncated, ErrKindTransient},
		{errors.New("opaque"), ErrKindTransient},
		{faults.ErrPermanent, ErrKindPermanent},
		{fs.ErrNotExist, ErrKindPermanent},
		{fmt.Errorf("wrap: %w", faults.ErrPermanent), ErrKindPermanent},
		{context.Canceled, ErrKindCanceled},
		{context.DeadlineExceeded, ErrKindCanceled},
		{errOpTimeout, ErrKindTimeout},
		{fmt.Errorf("wrap: %w", errOpTimeout), ErrKindTimeout},
	}
	for _, c := range cases {
		if got := classify(c.err); got != c.want {
			t.Errorf("classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestErrorKindString(t *testing.T) {
	want := map[ErrorKind]string{
		ErrKindTransient: "transient", ErrKindPermanent: "permanent",
		ErrKindTimeout: "timeout", ErrKindCanceled: "canceled",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
}
