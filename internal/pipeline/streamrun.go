package pipeline

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"

	"accelproc/internal/dsp"
	"accelproc/internal/faults"
	"accelproc/internal/fourier"
	"accelproc/internal/ingest"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/stream"
)

// This file implements the streaming execution plane (Options.Streaming) on
// top of the Pipelined variant: the sequential-scan hot stages consume and
// emit a record chunk at a time instead of materializing whole traces, so a
// (producer, consumer) node pair runs concurrently with bounded memory no
// matter how large NPTS grows.
//
// Three stream edges exist per record, mirroring the artifact chain:
//
//   #3 separate  ──raw comp chunks──▶  #4 default filter
//   #4 default filter ──corrected accel chunks──▶  #7 Fourier (gathers)
//   #13 definitive filter ──corrected accel chunks──▶  #16 response (gathers)
//
// #13 has no in-stream: its V1 inputs are durable by then (written by #3,
// re-read chunk by chunk), and the WAR edge #7→#13 stays a completion edge so
// the definitive filter never overwrites a V2 file the Fourier stage is still
// reading.  Every streamed producer also writes its durable artifact
// incrementally through Workspace.Create, so the on-disk outputs are byte
// for byte those of a materialized run and downstream consumers that did not
// get a stream (plots, GEM exports, resumed runs) read the same files as
// always.
//
// Fallback discipline: a stream is closed with stream.ErrFallback whenever
// its producer did not stream (resume skip, quarantine skip, or a
// non-streaming code path such as instrument correction) — the node wrapper
// in dataflowrun.go does this after the body returns, which is after the
// durable outputs landed, so a consumer that sees ErrFallback can always
// read the artifacts instead.

// streamHeader is the record metadata a streamed producer publishes before
// its chunks: enough for the consumer to size and time its own processing.
type streamHeader struct {
	Station string
	DT      float64
	NPTS    int
}

// streamProducerOf names each streamed consumer's producer process: the one
// record-scoped RAW edge per consumer that becomes a stream edge.
var streamProducerOf = map[ProcessID]ProcessID{
	PDefaultFilter:    PSeparateComponents,
	PFourier:          PDefaultFilter,
	PResponseSpectrum: PCorrectedFilter,
}

// streamEdgeTag names each producer's spill subdirectory under the record's
// stream scratch dir.
var streamEdgeTag = map[ProcessID]string{
	PSeparateComponents: "sep",
	PDefaultFilter:      "def",
	PCorrectedFilter:    "cor",
}

// streamBase is the per-record scratch directory holding stream spills and
// the filter passes' sample scratch.  The tmp_ prefix keeps it inside the
// resume plane's stale-scratch sweep.
func (b *dfBuild) streamBase(i int, st string) string {
	return b.s.path(fmt.Sprintf("tmp_stream_%02d_%s", i, st))
}

// setupStreams allocates the run's chunk pools, one stream per (producer,
// record) stream edge, and the per-record scratch directories.
func (b *dfBuild) setupStreams() error {
	s := b.s
	b.pool = stream.NewPool(stream.DefaultChunkLen)
	b.gatherPool = fourier.NewGatherPool(stream.DefaultChunkLen)
	b.streams = map[ProcessID][]*stream.Stream{}
	for pid := range streamEdgeTag {
		b.streams[pid] = make([]*stream.Stream, len(b.stations))
	}
	for i, st := range b.stations {
		base := b.streamBase(i, st)
		if err := s.ws.MkdirAll(base, 0o755); err != nil {
			return err
		}
		b.spillDirs = append(b.spillDirs, base)
		for pid, tag := range streamEdgeTag {
			dir := filepath.Join(base, tag)
			if err := s.ws.MkdirAll(dir, 0o755); err != nil {
				return err
			}
			b.streams[pid][i] = stream.New(s.ws, dir, stream.DefaultWindow, b.pool)
		}
	}
	return nil
}

// teardownStreams force-closes and drains every stream (releasing pooled
// chunks and deleting spill files a consumer never read) and removes the
// scratch directories.  Idempotent; a no-op for non-streaming builds.  The
// ErrFallback close is first-reason-wins, so streams that already ended keep
// their original close reason.
func (b *dfBuild) teardownStreams() {
	if b.streams == nil {
		return
	}
	for _, ss := range b.streams {
		for _, st := range ss {
			if st == nil {
				continue
			}
			st.Close(stream.ErrFallback)
			_ = st.Drain(func(*stream.Chunk) error { return nil })
		}
	}
	if !b.s.opts.KeepTempDirs {
		for _, dir := range b.spillDirs {
			_ = b.s.ws.RemoveAll(dir)
		}
	}
	b.streams = nil
	b.spillDirs = nil
}

// outStream returns the stream a per-record node produces into, or nil.
func (b *dfBuild) outStream(pid ProcessID, station string) *stream.Stream {
	if b.streams == nil || station == "" {
		return nil
	}
	ss, ok := b.streams[pid]
	if !ok {
		return nil
	}
	return ss[b.stationIndex(station)]
}

// inStream returns the stream a consumer node receives from, or nil.
func (b *dfBuild) inStream(pid ProcessID, i int) *stream.Stream {
	from, ok := streamProducerOf[pid]
	if !ok || b.streams == nil {
		return nil
	}
	return b.streams[from][i]
}

// fallbackClose reports whether a Header/Recv error means "read the durable
// artifacts instead": the producer fell back, or closed cleanly before
// publishing a header (it never streamed at all).
func fallbackClose(err error) bool {
	return errors.Is(err, stream.ErrFallback) || err == io.EOF
}

// abortCreate discards an in-progress Workspace.Create writer so a partial
// payload can never be renamed into place.
func abortCreate(w io.WriteCloser) {
	if a, ok := w.(interface{ Abort() }); ok {
		a.Abort()
		return
	}
	w.Close()
}

// sampleWriter spills float64 samples to a scratch file as raw little-endian
// bits, an exact round-trip, through Workspace.Create (write-through on the
// mem backend, so scratch never counts against resident bytes).
type sampleWriter struct {
	wc   io.WriteCloser
	path string
	buf  []byte
}

func createSamples(ws storage.Workspace, path string) (*sampleWriter, error) {
	wc, err := ws.Create(path)
	if err != nil {
		return nil, err
	}
	return &sampleWriter{wc: wc, path: path}, nil
}

func (w *sampleWriter) Append(vs []float64) error {
	need := 8 * len(vs)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	buf := w.buf[:need]
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := w.wc.Write(buf); err != nil {
		return fmt.Errorf("pipeline: sample scratch %s: %w", w.path, err)
	}
	return nil
}

func (w *sampleWriter) Close() error { return w.wc.Close() }

func (w *sampleWriter) Abort() { abortCreate(w.wc) }

// sampleReader reads a sample scratch file back in caller-sized chunks.
type sampleReader struct {
	rc   io.ReadCloser
	path string
	buf  []byte
}

func openSamples(ws storage.Workspace, path string) (*sampleReader, error) {
	rc, err := ws.Open(path)
	if err != nil {
		return nil, err
	}
	return &sampleReader{rc: rc, path: path}, nil
}

// Read fills buf with up to len(buf) further samples; (0, io.EOF) at the end.
func (r *sampleReader) Read(buf []float64) (int, error) {
	need := 8 * len(buf)
	if cap(r.buf) < need {
		r.buf = make([]byte, need)
	}
	b := r.buf[:need]
	n, err := io.ReadFull(r.rc, b)
	if n == 0 {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("pipeline: sample scratch %s: %w", r.path, err)
	}
	if n%8 != 0 {
		return 0, fmt.Errorf("pipeline: sample scratch %s truncated mid-sample at %d bytes", r.path, n)
	}
	if err != nil && err != io.ErrUnexpectedEOF {
		return 0, fmt.Errorf("pipeline: sample scratch %s: %w", r.path, err)
	}
	for i := 0; i < n/8; i++ {
		buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return n / 8, nil
}

func (r *sampleReader) Close() error { return r.rc.Close() }

// streamSeparateStation is the streamed body of one record of process #3: it
// opens the station's input through the ingest plane (format resolution, QC
// gate, rotation) and scans the record once, writing each per-component file
// incrementally while sending the same chunks down the stream to the default
// filter.  Native V1 input with a header-only QC gate streams truly
// incrementally; foreign formats, sample-scanning QC, and rotated records
// materialize inside ingest.OpenChunks but still stream outward.  The
// emitted files are byte-identical to separateStation's.
//
// Rejections surface at open time — before the header or any chunk has been
// sent — and quarantine the record exactly as the unstreamed body does.
// There is no retryOp around the open: a half-streamed node cannot be
// retried, so transient open failures also condemn the record (at attempt 1)
// rather than risk replaying chunks downstream.
func (b *dfBuild) streamSeparateStation(i int, st string) error {
	s := b.s
	out := b.streams[PSeparateComponents][i]
	name, err := s.inputFileOf(st)
	if err != nil {
		return err
	}
	rc := recordSite{stage: StageIII, proc: PSeparateComponents, station: st}
	r, err := ingest.OpenChunks(s.ws, s.path(name), s.informat, s.opts.QC)
	if err != nil {
		if kind := classify(err); kind != ErrKindCanceled {
			return s.degraded(rc, &StageError{Stage: rc.stage, Process: rc.proc,
				Record: st, Op: "decode", Kind: kind, Attempts: 1, Err: err})
		}
		return err
	}
	defer r.Close()
	hdr := r.Header()
	out.SetHeader(streamHeader{Station: st, DT: hdr.DT, NPTS: hdr.NPTS})
	for ci, comp := range seismic.Components {
		if _, err := r.NextComponent(); err != nil {
			return err
		}
		w, err := smformat.NewV1ComponentStreamWriter(s.ws, s.path(smformat.V1ComponentFileName(st, comp)), st, comp, hdr.DT, hdr.NPTS)
		if err != nil {
			return err
		}
		for {
			c := b.pool.Get(ci)
			buf := c.Data[:cap(c.Data)]
			n, rerr := r.Read(buf)
			if n > 0 {
				c.Data = buf[:n]
				// Append copies into the writer's buffer before Send hands
				// the chunk's ownership to the stream.
				if err := w.Append(c.Data); err != nil {
					c.Release()
					w.Abort()
					return err
				}
				if err := out.Send(c); err != nil {
					w.Abort()
					return err
				}
			} else {
				c.Release()
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				w.Abort()
				return rerr
			}
		}
		if err := w.Close(); err != nil {
			return err
		}
	}
	out.Close(nil)
	return nil
}

// streamFeed adapts the in-stream of process #4 to the chunked-read shape of
// streamFilterComp: it serves one component's npts samples and then reports
// io.EOF, leaving the next component's chunks queued.
func streamFeed(in *stream.Stream, ci, npts int) func([]float64) (int, error) {
	served := 0
	return func(buf []float64) (int, error) {
		if served >= npts {
			return 0, io.EOF
		}
		c, err := in.Recv()
		if err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("pipeline: stream ended after %d of %d samples", served, npts)
			}
			return 0, err
		}
		defer c.Release()
		if c.Comp != ci {
			return 0, fmt.Errorf("pipeline: stream delivered component %d while reading %d", c.Comp, ci)
		}
		if len(c.Data) > len(buf) {
			return 0, fmt.Errorf("pipeline: stream chunk of %d samples exceeds %d-sample buffer", len(c.Data), len(buf))
		}
		n := copy(buf, c.Data)
		served += n
		return n, nil
	}
}

// streamFilterRecord is the streamed body of one record of processes #4 and
// #13: per component, a multi-pass chunked reproduction of correctSignal
// that never holds a whole trace.  Process #4 prefers its in-stream from #3
// and falls back to the durable per-component files; #13 always re-reads the
// durable files (its stream producer would be the Fourier stage's WAR
// predecessor, not a sample source).  Both feed their corrected acceleration
// chunks to the downstream gather stage.
func (b *dfBuild) streamFilterRecord(pid ProcessID, i int, st string) (smformat.MaxValues, error) {
	s := b.s
	params, err := s.readFilterParams(s.path(smformat.FilterParamsFile))
	if err != nil {
		return smformat.MaxValues{}, err
	}
	out := b.streams[pid][i]
	in := b.inStream(pid, i)
	if s.opts.Instrument != nil {
		// Instrument deconvolution is a whole-trace transfer-function
		// operation; gather the record and run the batch kernel.  The node
		// wrapper closes the out-stream with ErrFallback after the durable
		// V2 files below have landed.
		return b.gatherFilterRecord(st, params, in)
	}
	frag := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	base := b.streamBase(i, st)
	if in != nil {
		h, herr := in.Header()
		switch {
		case herr == nil:
			hdr, ok := h.(streamHeader)
			if !ok {
				return smformat.MaxValues{}, fmt.Errorf("pipeline: stream for %s carries %T, want header", st, h)
			}
			out.SetHeader(hdr)
			for ci, comp := range seismic.Components {
				key := smformat.SignalKey{Station: st, Component: comp}
				pk, err := b.streamFilterComp(base, st, ci, comp, params.Spec(key), hdr.DT, hdr.NPTS,
					streamFeed(in, ci, hdr.NPTS), out)
				if err != nil {
					return smformat.MaxValues{}, err
				}
				frag.Peaks[key] = pk
			}
			out.Close(nil)
			return frag, nil
		case fallbackClose(herr):
			// The producer did not stream; its per-component files are
			// durable — read them chunk by chunk below.  Unless the record
			// was condemned while this node was already blocked on the
			// header (the decode node quarantines before its wrapper closes
			// the stream, so the flag is visible here): then there are no
			// durable files and the record simply yields no fragment.
			if s.isQuarantined(st) {
				return smformat.MaxValues{}, nil
			}
		default:
			return smformat.MaxValues{}, herr
		}
	}
	hdrSet := false
	for ci, comp := range seismic.Components {
		r, err := smformat.OpenV1ComponentChunks(s.ws, s.path(smformat.V1ComponentFileName(st, comp)))
		if err != nil {
			return smformat.MaxValues{}, err
		}
		if !hdrSet {
			out.SetHeader(streamHeader{Station: st, DT: r.DT, NPTS: r.NPTS})
			hdrSet = true
		}
		key := smformat.SignalKey{Station: st, Component: comp}
		pk, err := b.streamFilterComp(base, st, ci, comp, params.Spec(key), r.DT, r.NPTS, r.Read, out)
		r.Close()
		if err != nil {
			return smformat.MaxValues{}, err
		}
		frag.Peaks[key] = pk
	}
	out.Close(nil)
	return frag, nil
}

// streamFilterComp reproduces correctSignal for one component in four
// chunked passes over sample scratch files, bit-identical to the batch path:
//
//	A: spill the raw samples, accumulating the mean (Demean's sum order);
//	B: demean + taper + FIR-filter, spilling the filtered samples and
//	   accumulating the detrend sums over the filtered output;
//	C: subtract the regression line, validate finiteness, track the PGA/
//	   PGV/PGD peaks (velocity and displacement via chained streaming
//	   integrators), spilling the corrected acceleration;
//	D: write the V2 file incrementally — headers need the pass-C peaks —
//	   re-reading the acceleration scratch once per payload block, and send
//	   the acceleration chunks down the out-stream.
func (b *dfBuild) streamFilterComp(base, st string, ci int, comp seismic.Component, spec dsp.BandPassSpec, dt float64, npts int, feed func([]float64) (int, error), out *stream.Stream) (seismic.PeakValues, error) {
	s := b.s
	none := seismic.PeakValues{}
	// The batch path designs the filter before touching samples, so its
	// error (including non-positive DT) comes first; an empty trace then
	// fails exactly where seismic.Peaks would.
	fir, err := dsp.DesignBandPass(spec, dt)
	if err != nil {
		return none, err
	}
	if npts <= 0 {
		return none, fmt.Errorf("seismic: trace has no samples")
	}
	rawPath := filepath.Join(base, st+comp.Suffix()+".raw.samples")
	filtPath := filepath.Join(base, st+comp.Suffix()+".filt.samples")
	accPath := filepath.Join(base, st+comp.Suffix()+".acc.samples")
	inBuf := make([]float64, b.pool.ChunkLen())
	outBuf := make([]float64, 0, b.pool.ChunkLen())

	// Pass A: raw samples to scratch, mean accumulated in sample order.
	var mean dsp.MeanAccum
	total := 0
	rw, err := createSamples(s.ws, rawPath)
	if err != nil {
		return none, err
	}
	for {
		n, rerr := feed(inBuf)
		if n > 0 {
			total += n
			mean.ObserveSlice(inBuf[:n])
			if err := rw.Append(inBuf[:n]); err != nil {
				rw.Abort()
				return none, err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			rw.Abort()
			return none, rerr
		}
	}
	if err := rw.Close(); err != nil {
		return none, err
	}
	if total != npts {
		return none, fmt.Errorf("pipeline: component %s%s delivered %d of %d samples", st, comp.Suffix(), total, npts)
	}

	// Pass B: demean + taper + filter; the trend sums accumulate over the
	// filtered output exactly as Detrend's single loop does.
	m := mean.Mean()
	taper := dsp.NewTaper(npts, s.opts.TaperFraction)
	sfir := dsp.NewStreamingFIR(fir, npts)
	var trend dsp.TrendAccum
	rr, err := openSamples(s.ws, rawPath)
	if err != nil {
		return none, err
	}
	fw, err := createSamples(s.ws, filtPath)
	if err != nil {
		rr.Close()
		return none, err
	}
	pos := 0
	writeFiltered := func(vs []float64) error {
		for _, y := range vs {
			trend.Observe(y)
		}
		return fw.Append(vs)
	}
	for {
		n, rerr := rr.Read(inBuf)
		if n > 0 {
			for k := 0; k < n; k++ {
				v := inBuf[k] - m
				if f, ok := taper.Factor(pos); ok {
					v *= f
				}
				inBuf[k] = v
				pos++
			}
			outBuf = sfir.Push(inBuf[:n], outBuf[:0])
			if err := writeFiltered(outBuf); err != nil {
				rr.Close()
				fw.Abort()
				return none, err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			rr.Close()
			fw.Abort()
			return none, rerr
		}
	}
	rr.Close()
	outBuf = sfir.Finish(outBuf[:0])
	if err := writeFiltered(outBuf); err != nil {
		fw.Abort()
		return none, err
	}
	if err := fw.Close(); err != nil {
		return none, err
	}

	// Pass C: detrend, finiteness, peaks; corrected acceleration to scratch.
	intercept, slope := trend.Line()
	fr, err := openSamples(s.ws, filtPath)
	if err != nil {
		return none, err
	}
	aw, err := createSamples(s.ws, accPath)
	if err != nil {
		fr.Close()
		return none, err
	}
	var pga, pgv, pgd dsp.PeakTracker
	velInt := dsp.NewStreamingIntegrator(dt)
	dispInt := dsp.NewStreamingIntegrator(dt)
	idx := 0
	for {
		n, rerr := fr.Read(inBuf)
		if n > 0 {
			for k := 0; k < n; k++ {
				y := inBuf[k] - (intercept + slope*float64(idx))
				if math.IsNaN(y) || math.IsInf(y, 0) {
					fr.Close()
					aw.Abort()
					return none, fmt.Errorf("seismic: trace sample %d is not finite (%g)", idx, y)
				}
				pga.Observe(idx, y)
				v := velInt.Next(y)
				pgv.Observe(idx, v)
				d := dispInt.Next(v)
				pgd.Observe(idx, d)
				inBuf[k] = y
				idx++
			}
			if err := aw.Append(inBuf[:n]); err != nil {
				fr.Close()
				aw.Abort()
				return none, err
			}
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			fr.Close()
			aw.Abort()
			return none, rerr
		}
	}
	fr.Close()
	if err := aw.Close(); err != nil {
		return none, err
	}
	pkA, iA := pga.Peak()
	pkV, iV := pgv.Peak()
	pkD, iD := pgd.Peak()
	peaks := seismic.PeakValues{
		PGA: pkA, TimePGA: float64(iA) * dt,
		PGV: pkV, TimePGV: float64(iV) * dt,
		PGD: pkD, TimePGD: float64(iD) * dt,
	}

	// Upstream chunks consumed, scratch spilled, durable output not yet
	// committed: the crash matrix kills here to prove resume re-executes the
	// node instead of trusting a half-written artifact.
	faults.Crash(faults.CrashStreamNode)

	// Pass D: the V2 file, incrementally, plus the out-stream chunks.
	w, err := smformat.NewV2StreamWriter(s.ws, s.path(smformat.V2FileName(st, comp)), st, comp, dt, npts, spec, peaks)
	if err != nil {
		return none, err
	}
	if err := w.StartBlock(); err != nil { // ACCELERATION
		w.Abort()
		return none, err
	}
	ar, err := openSamples(s.ws, accPath)
	if err != nil {
		w.Abort()
		return none, err
	}
	for {
		c := b.pool.Get(ci)
		buf := c.Data[:cap(c.Data)]
		n, rerr := ar.Read(buf)
		if n > 0 {
			c.Data = buf[:n]
			if err := w.Append(c.Data); err != nil {
				c.Release()
				ar.Close()
				w.Abort()
				return none, err
			}
			if err := out.Send(c); err != nil {
				ar.Close()
				w.Abort()
				return none, err
			}
		} else {
			c.Release()
		}
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			ar.Close()
			w.Abort()
			return none, rerr
		}
	}
	ar.Close()
	g1 := dsp.NewStreamingIntegrator(dt)
	if err := b.writeIntegratedBlock(w, accPath, inBuf, g1.Next); err != nil { // VELOCITY
		w.Abort()
		return none, err
	}
	gv := dsp.NewStreamingIntegrator(dt)
	gd := dsp.NewStreamingIntegrator(dt)
	err = b.writeIntegratedBlock(w, accPath, inBuf, func(x float64) float64 { // DISPLACEMENT
		return gd.Next(gv.Next(x))
	})
	if err != nil {
		w.Abort()
		return none, err
	}
	if err := w.Close(); err != nil {
		return none, err
	}
	_ = s.ws.Remove(rawPath)
	_ = s.ws.Remove(filtPath)
	_ = s.ws.Remove(accPath)
	return peaks, nil
}

// writeIntegratedBlock streams one derived V2 payload block: the
// acceleration scratch mapped through next (a streaming integrator chain).
func (b *dfBuild) writeIntegratedBlock(w *smformat.V2StreamWriter, accPath string, inBuf []float64, next func(float64) float64) error {
	if err := w.StartBlock(); err != nil {
		return err
	}
	r, err := openSamples(b.s.ws, accPath)
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		n, rerr := r.Read(inBuf)
		if n > 0 {
			for k := 0; k < n; k++ {
				inBuf[k] = next(inBuf[k])
			}
			if err := w.Append(inBuf[:n]); err != nil {
				return err
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
	}
}

// gatherFilterRecord is the whole-trace body of #4/#13 when instrument
// correction is enabled: it gathers the record (from the in-stream when the
// producer streamed, from the durable files otherwise) and runs the batch
// correctSignal, writing each V2 through Create.  Its out-stream is closed
// with ErrFallback by the node wrapper after these durable writes.
func (b *dfBuild) gatherFilterRecord(st string, params smformat.FilterParams, in *stream.Stream) (smformat.MaxValues, error) {
	s := b.s
	frag := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	var gathered [3][]float64
	var dt float64
	haveStream := false
	if in != nil {
		h, err := in.Header()
		switch {
		case err == nil:
			hdr, ok := h.(streamHeader)
			if !ok {
				return frag, fmt.Errorf("pipeline: stream for %s carries %T, want header", st, h)
			}
			dt = hdr.DT
			for ci := range seismic.Components {
				buf := make([]float64, 0, hdr.NPTS)
				for len(buf) < hdr.NPTS {
					c, rerr := in.Recv()
					if rerr != nil {
						if rerr == io.EOF {
							return frag, fmt.Errorf("pipeline: stream for %s ended after %d of %d samples", st, len(buf), hdr.NPTS)
						}
						return frag, rerr
					}
					if c.Comp != ci {
						c.Release()
						return frag, fmt.Errorf("pipeline: stream for %s delivered component %d while gathering %d", st, c.Comp, ci)
					}
					buf = append(buf, c.Data...)
					c.Release()
				}
				gathered[ci] = buf
			}
			haveStream = true
		case fallbackClose(err):
			// No durable files exist for a record condemned by its decode
			// node while we were blocked on the header; yield no fragment.
			if s.isQuarantined(st) {
				return smformat.MaxValues{}, nil
			}
		default:
			return frag, err
		}
	}
	for ci, comp := range seismic.Components {
		var v1 smformat.V1Component
		if haveStream {
			v1 = smformat.V1Component{Station: st, Component: comp, DT: dt, Accel: gathered[ci]}
		} else {
			var err error
			v1, err = s.readV1Comp(s.path(smformat.V1ComponentFileName(st, comp)))
			if err != nil {
				return frag, err
			}
		}
		key := smformat.SignalKey{Station: st, Component: comp}
		v2, pk, err := s.correctSignal(v1, params.Spec(key))
		if err != nil {
			return frag, err
		}
		if err := smformat.WriteFileCreateFS(s.ws, s.path(smformat.V2FileName(st, comp)), v2); err != nil {
			return frag, err
		}
		frag.Peaks[key] = pk
	}
	return frag, nil
}

// streamFourierRecord is the streamed body of one record of process #7: a
// gather consumer — the FFT needs the whole trace — fed by the default
// filter's acceleration chunks.
func (b *dfBuild) streamFourierRecord(i int, st string) error {
	return b.gatherRecord(PFourier, i, st, func(v2 smformat.V2) error {
		f, err := fourier.Spectra(v2)
		if err != nil {
			return err
		}
		return smformat.WriteFileCreateFS(b.s.ws, b.s.path(smformat.FourierFileName(v2.Station, v2.Component)), f)
	})
}

// streamResponseRecord is the streamed body of one record of process #16,
// gathering the definitive filter's acceleration chunks.
func (b *dfBuild) streamResponseRecord(i int, st string) error {
	return b.gatherRecord(PResponseSpectrum, i, st, func(v2 smformat.V2) error {
		r, err := response.Spectrum(v2, b.s.opts.Response)
		if err != nil {
			return err
		}
		return smformat.WriteFileCreateFS(b.s.ws, b.s.path(smformat.ResponseFileName(v2.Station, v2.Component)), r)
	})
}

// gatherRecord drains one record's in-stream component by component into a
// pooled gather buffer, reconstructs each component's V2 value (velocity and
// displacement re-derived by the same trapezoidal integration the producer
// used — bit-identical), and emits the derived product.  A fallback close at
// any point degrades to reading the durable V2 files.
func (b *dfBuild) gatherRecord(pid ProcessID, i int, st string, emit func(smformat.V2) error) error {
	in := b.inStream(pid, i)
	h, err := in.Header()
	if fallbackClose(err) {
		return b.gatherFromDurable(st, emit)
	}
	if err != nil {
		return err
	}
	hdr, ok := h.(streamHeader)
	if !ok {
		return fmt.Errorf("pipeline: stream for %s carries %T, want header", st, h)
	}
	g := b.gatherPool.Get()
	defer g.Release()
	for ci, comp := range seismic.Components {
		g.Data = g.Data[:0]
		for len(g.Data) < hdr.NPTS {
			c, rerr := in.Recv()
			if rerr != nil {
				if errors.Is(rerr, stream.ErrFallback) {
					return b.gatherFromDurable(st, emit)
				}
				if rerr == io.EOF {
					return fmt.Errorf("pipeline: stream for %s ended after %d of %d samples of component %s", st, len(g.Data), hdr.NPTS, comp)
				}
				return rerr
			}
			if c.Comp != ci {
				c.Release()
				return fmt.Errorf("pipeline: stream for %s delivered component %d while gathering %d", st, c.Comp, ci)
			}
			g.Append(c.Data)
			c.Release()
		}
		accel := g.Data
		vel := dsp.Integrate(accel, hdr.DT)
		disp := dsp.Integrate(vel, hdr.DT)
		v2 := smformat.V2{Station: st, Component: comp, DT: hdr.DT, Accel: accel, Vel: vel, Disp: disp}
		if err := emit(v2); err != nil {
			return err
		}
	}
	return nil
}

// gatherFromDurable is the gather consumers' fallback: the producer's V2
// files are durable (it was resume-skipped or took a fallback path itself);
// read them whole as the materialized path does.  A record condemned while
// this consumer was already blocked on its stream has no durable files —
// and nothing downstream to feed — so it emits nothing.
func (b *dfBuild) gatherFromDurable(st string, emit func(smformat.V2) error) error {
	if b.s.isQuarantined(st) {
		return nil
	}
	for _, comp := range seismic.Components {
		v2, err := b.s.readV2(b.s.path(smformat.V2FileName(st, comp)))
		if err != nil {
			return err
		}
		if err := emit(v2); err != nil {
			return err
		}
	}
	return nil
}
