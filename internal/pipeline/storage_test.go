package pipeline

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
)

// TestStorageBackendsProduceIdenticalOutputs is the tentpole invariant of
// the storage plane: every variant writes byte-identical final products on
// the fs and mem backends, and the mem backend leaves no in-memory state
// behind — after the run the work directory alone holds the full event.
func TestStorageBackendsProduceIdenticalOutputs(t *testing.T) {
	ev := testEvent(t)
	for _, v := range Variants {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			opts := testOptions()
			opts.Storage = storage.BackendFS
			dirRef, resFS := runVariant(t, ev, v, opts)
			ref := productHashes(t, dirRef)

			opts.Storage = storage.BackendMem
			dir, resMem := runVariant(t, ev, v, opts)
			got := productHashes(t, dir)
			if len(got) != len(ref) {
				t.Errorf("product count %d on mem, want %d", len(got), len(ref))
			}
			for name, h := range ref {
				if got[name] != h {
					t.Errorf("product %s differs between fs and mem backends", name)
				}
			}
			if resFS.StorageBytesPeak != 0 {
				t.Errorf("fs backend reported %d resident bytes", resFS.StorageBytesPeak)
			}
			if resMem.StorageBytesPeak <= 0 {
				t.Errorf("mem backend reported StorageBytesPeak = %d, want > 0", resMem.StorageBytesPeak)
			}
		})
	}
}

// TestMemBackendMatchesWithCacheDisabled closes the backend × cache matrix:
// the mem backend without the artifact cache still lands byte-identical
// products.
func TestMemBackendMatchesWithCacheDisabled(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	dirRef, _ := runVariant(t, ev, FullParallel, opts)
	ref := productHashes(t, dirRef)

	opts.Storage = storage.BackendMem
	opts.NoArtifactCache = true
	dir, _ := runVariant(t, ev, FullParallel, opts)
	got := productHashes(t, dir)
	if len(got) != len(ref) {
		t.Errorf("product count %d, want %d", len(got), len(ref))
	}
	for name, h := range ref {
		if got[name] != h {
			t.Errorf("product %s differs on mem with the cache disabled", name)
		}
	}
}

// TestUnknownStorageBackendIsRejected pins the error path of Options.Storage.
func TestUnknownStorageBackendIsRejected(t *testing.T) {
	opts := testOptions()
	opts.Storage = "tape"
	_, err := Run(context.Background(), t.TempDir(), SeqOptimized, opts)
	if err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("Run with bogus backend = %v, want unknown-backend error", err)
	}
}

// linkFailFS simulates a filesystem without usable hardlinks: every Link
// fails with the wrapped errno (EXDEV for cross-device, ENOTSUP for
// no-hardlink filesystems) while all other operations hit the real disk.
type linkFailFS struct {
	faults.FS
	errno syscall.Errno
}

func (f linkFailFS) Link(oldpath, newpath string) error {
	return &os.LinkError{Op: "link", Old: oldpath, New: newpath, Err: f.errno}
}

// TestCopyArtifactFallsBackOnLinkFailure is the cross-device regression
// test: the hardlink stage-in fast path must degrade to a real copy on
// EXDEV/ENOTSUP instead of failing the stage.
func TestCopyArtifactFallsBackOnLinkFailure(t *testing.T) {
	for _, errno := range []syscall.Errno{syscall.EXDEV, syscall.ENOTSUP} {
		errno := errno
		t.Run(errno.Error(), func(t *testing.T) {
			opts := testOptions()
			opts.Observer = obs.New()
			s, err := newState(context.Background(), t.TempDir(), opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.fail(nil)
			src := s.path("src.v2")
			dst := s.path("dst.v2")
			payload := []byte("cross-device artifact payload")
			if err := os.WriteFile(src, payload, 0o644); err != nil {
				t.Fatal(err)
			}
			c := opts.Observer.Counter("bytes")
			if err := s.copyArtifact(linkFailFS{s.ws, errno}, dst, src, c); err != nil {
				t.Fatalf("copyArtifact did not fall back on %v: %v", errno, err)
			}
			got, err := os.ReadFile(dst)
			if err != nil || string(got) != string(payload) {
				t.Fatalf("destination after fallback: %q, %v", got, err)
			}
			if v := c.Value(); v != float64(len(payload)) {
				t.Errorf("staging counter charged %v bytes, want %d (a real copy)", v, len(payload))
			}
			if v := opts.Observer.Counter("links_total").Value(); v != 0 {
				t.Errorf("links_total = %v after a failed link, want 0", v)
			}
		})
	}
}

// TestCopyArtifactLinksOnHealthyFilesystem pins the fast path the fallback
// protects: on a same-device filesystem the stage-in is a hardlink, charged
// to links_total and not to the staging byte counters.
func TestCopyArtifactLinksOnHealthyFilesystem(t *testing.T) {
	opts := testOptions()
	opts.Observer = obs.New()
	s, err := newState(context.Background(), t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	src := s.path("src.v2")
	if err := os.WriteFile(src, []byte("linked"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Link(src, s.path("probe")); err != nil {
		t.Skipf("hardlinks unsupported here: %v", err)
	}
	c := opts.Observer.Counter("bytes")
	if err := s.copyArtifact(s.ws, s.path("dst.v2"), src, c); err != nil {
		t.Fatal(err)
	}
	if v := opts.Observer.Counter("links_total").Value(); v != 1 {
		t.Errorf("links_total = %v, want 1", v)
	}
	if v := c.Value(); v != 0 {
		t.Errorf("staging counter charged %v bytes for a hardlink, want 0", v)
	}
}

// TestQuarantineInvalidatesScratchCacheEntries drives the quarantine path
// directly and asserts the artifact store drops every entry under the
// condemned scratch folder — a poisoned record must not leave cache entries
// pointing into quarantine.
func TestQuarantineInvalidatesScratchCacheEntries(t *testing.T) {
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	s, err := newState(context.Background(), dir, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.fail(nil)
	if err := s.procGatherInputs(); err != nil {
		t.Fatal(err)
	}
	scratch := s.path("tmp_cor_00_SS01")
	if err := s.ws.MkdirAll(scratch, 0o755); err != nil {
		t.Fatal(err)
	}
	v2path := filepath.Join(scratch, smformat.V2FileName("SS01", seismic.Longitudinal))
	v2 := smformat.V2{Station: "SS01", Component: seismic.Longitudinal, DT: 0.01,
		Accel: []float64{1, 2}, Vel: []float64{3, 4}, Disp: []float64{5, 6}}
	if err := s.writeV2(v2path, v2); err != nil {
		t.Fatal(err)
	}
	if s.arts.Len() != 1 {
		t.Fatalf("cache entries before quarantine = %d, want 1", s.arts.Len())
	}
	serr := &StageError{Stage: StageVIII, Process: PCorrectedFilter, Record: "SS01", Op: "exec",
		Kind: ErrKindPermanent, Attempts: 1, Err: faults.ErrPermanent}
	rc := recordSite{stage: StageVIII, proc: PCorrectedFilter, tag: "cor", station: "SS01", scratch: scratch}
	if err := s.degraded(rc, serr); err != nil {
		t.Fatalf("degraded propagated a record failure: %v", err)
	}
	if s.arts.Len() != 0 {
		t.Errorf("cache entries after quarantine = %d, want 0", s.arts.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, "tmp_cor_00_SS01", smformat.V2FileName("SS01", seismic.Longitudinal))); err != nil {
		t.Errorf("quarantined scratch contents not preserved on disk: %v", err)
	}
}

// TestPipelinedQuarantineCacheInteraction is the satellite scenario for the
// quarantine × artifact-cache interaction under the Pipelined variant: a
// poisoned record is quarantined while the survivors' products stay
// byte-identical to a fault-free run, with the cache on and off — and the
// whole matrix repeats on the mem backend.
func TestPipelinedQuarantineCacheInteraction(t *testing.T) {
	ev := testEvent(t)
	cleanDir, _ := runVariant(t, ev, Pipelined, testOptions())
	cleanHashes := productHashes(t, cleanDir)

	for _, backend := range []storage.Backend{storage.BackendFS, storage.BackendMem} {
		for _, noCache := range []bool{false, true} {
			backend, noCache := backend, noCache
			t.Run(fmt.Sprintf("%s/cache=%v", backend, !noCache), func(t *testing.T) {
				opts := testOptions()
				opts.Storage = backend
				opts.NoArtifactCache = noCache
				opts.Observer = obs.New()
				opts.Retry = RetryPolicy{BaseDelay: 50 * time.Microsecond, MaxDelay: time.Millisecond}
				opts.Chaos = &faults.Config{Seed: 7, Rules: []faults.Rule{
					{Record: "SS02", Stage: "cor", Op: "exec", Kind: faults.KindPermanent},
				}}
				dir := filepath.Join(t.TempDir(), "work")
				if err := PrepareWorkDir(dir, ev); err != nil {
					t.Fatal(err)
				}
				res, err := Run(context.Background(), dir, Pipelined, opts)
				if err != nil {
					t.Fatalf("poisoned pipelined run failed outright: %v", err)
				}
				if len(res.Quarantined) != 1 || res.Quarantined[0].Station != "SS02" {
					t.Fatalf("quarantined = %+v, want exactly SS02", res.Quarantined)
				}
				assertOnlyQuarantineDirs(t, dir)
				got := chaosProductHashes(t, dir)
				for name, h := range cleanHashes {
					if strings.HasSuffix(name, ".meta") || strings.HasPrefix(name, "SS02") {
						continue
					}
					if got[name] != h {
						t.Errorf("survivor product %s differs from fault-free run", name)
					}
				}
				// The record failed at stage VIII (corrected filter), so its
				// stage IV/V products (default-filter V2, Fourier) were already
				// published — but nothing downstream of the quarantine may
				// exist: no response spectra and no GEM exports for SS02.
				for name := range got {
					if strings.HasPrefix(name, "SS02") &&
						(strings.HasSuffix(name, ".r") || strings.Contains(name, "gem")) {
						t.Errorf("quarantined record leaked post-failure product %s", name)
					}
				}
			})
		}
	}
}

// TestMemBackendReportsResidentGauges is the memory-pressure satellite: a
// mem-backend run must surface storage_bytes_resident (current and peak)
// through the observer and the Prometheus rendering.
func TestMemBackendReportsResidentGauges(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	opts.Storage = storage.BackendMem
	opts.Observer = obs.New()
	_, res := runVariant(t, ev, FullParallel, opts)
	if res.StorageBytesPeak <= 0 {
		t.Fatalf("StorageBytesPeak = %d, want > 0", res.StorageBytesPeak)
	}
	o := opts.Observer
	if v := o.Gauge("storage_bytes_resident_peak").Value(); int64(v) != res.StorageBytesPeak {
		t.Errorf("storage_bytes_resident_peak gauge = %v, result says %d", v, res.StorageBytesPeak)
	}
	// Everything was materialized into the work directory at the end of the
	// run, so current residency is back to zero.
	if v := o.Gauge("storage_bytes_resident").Value(); v != 0 {
		t.Errorf("storage_bytes_resident gauge = %v after materialize, want 0", v)
	}
	var sb strings.Builder
	if err := o.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# TYPE storage_bytes_resident_peak gauge") {
		t.Error("Prometheus rendering missing storage_bytes_resident_peak")
	}
}

// TestKeepTempDirsMaterializesScratch pins the debugging contract on the
// mem backend: KeepTempDirs leaves the scratch folders on real disk with
// their staged contents readable by plain tools.
func TestKeepTempDirsMaterializesScratch(t *testing.T) {
	ev := testEvent(t)
	opts := testOptions()
	opts.Storage = storage.BackendMem
	opts.KeepTempDirs = true
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, FullParallel, opts); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	scratch := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "tmp_") {
			scratch++
			sub, err := os.ReadDir(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if len(sub) == 0 {
				t.Errorf("kept scratch dir %s is empty on disk", e.Name())
			}
		}
	}
	// Three temp-folder stages (def, cor, fou) times three stations.
	if scratch != 9 {
		t.Errorf("kept %d scratch dirs, want 9", scratch)
	}
}
