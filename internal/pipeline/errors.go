package pipeline

import (
	"context"
	"errors"
	"fmt"
	"io/fs"

	"accelproc/internal/faults"
	"accelproc/internal/ingest"
	"accelproc/internal/smformat"
)

// ErrorKind classifies a staging-protocol failure for the retry engine: it
// decides whether an operation is retried, quarantines its record, or
// aborts the run.
type ErrorKind int

const (
	// ErrKindTransient failures are expected to succeed on retry.
	ErrKindTransient ErrorKind = iota
	// ErrKindPermanent failures cannot be fixed by retrying; the record is
	// quarantined immediately.
	ErrKindPermanent
	// ErrKindTimeout marks an operation that exceeded RetryPolicy.OpTimeout;
	// retried like a transient failure.
	ErrKindTimeout
	// ErrKindCanceled marks run-context cancellation; never retried, never
	// quarantined — the whole run is aborting.
	ErrKindCanceled
)

// String returns the lower-case kind name.
func (k ErrorKind) String() string {
	switch k {
	case ErrKindTransient:
		return "transient"
	case ErrKindPermanent:
		return "permanent"
	case ErrKindTimeout:
		return "timeout"
	case ErrKindCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("ErrorKind(%d)", int(k))
	}
}

// errOpTimeout is the sentinel wrapped into operations that exceed the
// retry policy's per-op timeout.
var errOpTimeout = errors.New("pipeline: operation timed out")

// StageError is the typed failure of one record inside one staged process:
// where it happened (stage, process, record, op), how it classifies, and
// how many attempts the retry policy spent before giving up.  It is the
// error quarantined records carry in RecordOutcome and the error RunBatch
// joins into its Report.
//
// StageError supports errors.Is matching with zero fields as wildcards:
//
//	errors.Is(err, &StageError{Record: "SS02"})            // any failure of SS02
//	errors.Is(err, &StageError{Stage: StageVIII})          // any stage-VIII failure
//	errors.Is(err, &StageError{Kind: ErrKindPermanent})    // by kind — note the
//
// Kind wildcard is ErrKindTransient (the zero value), so kind-matching a
// transient requires the other fields to pin the target.
type StageError struct {
	Stage    StageID
	Process  ProcessID
	Record   string // station code
	Op       string // "mkdir", "read", "write", "move", "remove", "exec", ...
	Kind     ErrorKind
	Attempts int
	Err      error
}

func (e *StageError) Error() string {
	return fmt.Sprintf("pipeline: stage %s process #%d record %s: %s failed (%s, %d attempts): %v",
		e.Stage, int(e.Process), e.Record, e.Op, e.Kind, e.Attempts, e.Err)
}

func (e *StageError) Unwrap() error { return e.Err }

// Is matches another *StageError treating the target's zero fields as
// wildcards, so errors.Is can select failures by any subset of
// (stage, process, record, op, kind).  Process zero (PInitFlags) acts as a
// wildcard; that is safe because StageErrors only arise in per-record
// processes — the ingest decode (#3) and the temp-folder stages (#4, #7,
// and #13).
func (e *StageError) Is(target error) bool {
	t, ok := target.(*StageError)
	if !ok {
		return false
	}
	return (t.Stage == 0 || t.Stage == e.Stage) &&
		(t.Process == 0 || t.Process == e.Process) &&
		(t.Record == "" || t.Record == e.Record) &&
		(t.Op == "" || t.Op == e.Op) &&
		(t.Kind == 0 || t.Kind == e.Kind)
}

// classify maps an operation error to its retry-engine kind.  Unknown
// errors default to transient — the optimistic posture (retry, then
// quarantine at attempt exhaustion) degrades one record instead of an
// event when wrong.
func classify(err error) ErrorKind {
	switch {
	case err == nil:
		return ErrKindTransient
	case errors.Is(err, errOpTimeout):
		return ErrKindTimeout
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ErrKindCanceled
	case errors.Is(err, faults.ErrPermanent) || errors.Is(err, fs.ErrNotExist):
		return ErrKindPermanent
	case errors.Is(err, ingest.ErrReject) || errors.Is(err, smformat.ErrFormat):
		// QC-gate rejections and structurally damaged record files: the
		// bytes will not improve on retry, quarantine with the typed reason.
		return ErrKindPermanent
	default:
		return ErrKindTransient
	}
}
