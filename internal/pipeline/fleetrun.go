package pipeline

import (
	"context"
	"fmt"
	"time"

	"accelproc/internal/dataflow"
	"accelproc/internal/fleet"
	"accelproc/internal/obs"
)

// FleetOptions configures RunFleet: the usual per-event Options plus the
// fleet scheduler's policy knob and admission cap.
type FleetOptions struct {
	Options
	// Policy selects the dispatch order among ready tasks of admitted
	// events; the zero value is fleet.Balanced.
	Policy fleet.Policy
	// Admit caps concurrently-open events; <= 0 selects the policy default
	// (see fleet.Policy.DefaultAdmit).
	Admit int
}

// RunFleet processes several event work directories through one shared
// dataflow worker pool — the fleet scheduler (internal/fleet) — instead of
// giving each event its own pool as RunBatch does.  Every event runs the
// Pipelined variant: its stage-I prologue builds the record-level task
// graph at admission, the merged ready sets drain on opts.Workers shared
// workers in the order opts.Policy dictates, and materialization runs as
// the event's finish phase, all on pool workers.  The retry, quarantine,
// journal, and action-cache planes apply per event exactly as under Run; an
// action-cache hit completes its node in microseconds, freeing the worker
// immediately.
//
// Results are ordered like dirs, with Wait (arrival-queue time before
// admission) and Latency (admission to done) filled in; like RunBatch,
// per-event failures land in the corresponding BatchResult and the first
// real cause is returned as the convenience error.  Cancelling ctx drains:
// every event — admitted or not — still flows through the scheduler, failing
// fast with the context's cause, so every BatchResult is populated.
//
// On the simulated platform (opts.SimProcessors > 0) the events are first
// measured serially, then the fleet schedule runs on a virtual clock
// (fleet.Simulate) with SimProcessors pool workers; each Result's Total
// reports the event's virtual fleet latency, and outputs remain
// byte-identical to real runs.
func RunFleet(ctx context.Context, dirs []string, opts FleetOptions) ([]BatchResult, error) {
	_, results, err := runFleetDispatch(ctx, dirs, opts)
	return results, err
}

// MeasureFleet processes every directory exactly as RunFleet on the
// simulated platform (opts.SimProcessors must be positive) and additionally
// returns the measured queue: one fleet.SimEvent per healthy directory,
// carrying the event's task graph, serial node durations, and build cost.
// Replaying the returned events through fleet.Simulate with different
// policies or admission caps reschedules the same measured work without
// re-running it — on the virtual clock, policy deltas computed this way are
// exactly scheduling deltas, free of cross-run measurement noise (the
// comparison internal/bench builds its saturation experiment on).  The
// BatchResults are those of the underlying RunFleet (outputs materialized,
// timings on the opts.Policy schedule).
func MeasureFleet(ctx context.Context, dirs []string, opts FleetOptions) ([]fleet.SimEvent, []BatchResult, error) {
	if opts.SimProcessors <= 0 {
		return nil, nil, fmt.Errorf("pipeline: MeasureFleet requires a simulated platform (SimProcessors > 0)")
	}
	return runFleetDispatch(ctx, dirs, opts)
}

func runFleetDispatch(ctx context.Context, dirs []string, opts FleetOptions) ([]fleet.SimEvent, []BatchResult, error) {
	if len(dirs) == 0 {
		return nil, nil, fmt.Errorf("pipeline: empty batch")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	seen := make(map[string]bool, len(dirs))
	for _, d := range dirs {
		if seen[d] {
			return nil, nil, fmt.Errorf("pipeline: directory %s appears twice in the batch", d)
		}
		seen[d] = true
	}
	fleetSpan := opts.ParentSpan.Child("fleet:pipelined", obs.KindRun,
		obs.Int("events", int64(len(dirs))),
		obs.String("policy", opts.Policy.String()))
	if fleetSpan == nil {
		fleetSpan = opts.Observer.Root("fleet:pipelined", obs.KindRun,
			obs.Int("events", int64(len(dirs))),
			obs.String("policy", opts.Policy.String()))
	}
	eventOpts := opts.Options
	eventOpts.ParentSpan = fleetSpan

	evs := make([]*fleetEvent, len(dirs))
	for i, dir := range dirs {
		evs[i] = &fleetEvent{ctx: ctx, dir: dir, opts: eventOpts}
	}

	if eventOpts.SimProcessors > 0 {
		sims, results, err := runFleetSim(evs, opts)
		fleetSpan.End()
		return sims, results, err
	}

	events := make([]fleet.Event, len(dirs))
	for i, e := range evs {
		e := e
		events[i] = fleet.Event{Name: e.dir, Build: e.build, Finish: e.finish}
	}
	fres := fleet.Run(events, fleet.Options{
		Workers:  eventOpts.Workers,
		Admit:    opts.Admit,
		Policy:   opts.Policy,
		Observer: eventOpts.Observer,
	})
	fleetSpan.End()
	results := make([]BatchResult, len(dirs))
	for i, e := range evs {
		results[i] = e.res
		results[i].Dir = e.dir
		results[i].Err = fres[i].Err
		results[i].Wait = fres[i].Wait()
		results[i].Latency = fres[i].Latency()
	}
	return nil, results, batchFirstError(results)
}

// fleetEvent adapts one work directory to the fleet scheduler's
// Build/nodes/Finish phases, carrying the pipeline state across them.
type fleetEvent struct {
	ctx   context.Context
	dir   string
	opts  Options
	s     *state
	b     *dfBuild
	start time.Duration
	res   BatchResult
}

// build is the event's admission phase: create the run state, open the
// journal, and execute the Pipelined prologue, returning the task graph for
// the shared pool.
func (e *fleetEvent) build() (*dataflow.Graph, error) {
	s, err := newState(e.ctx, e.dir, e.opts)
	if err != nil {
		return nil, err
	}
	e.s = s
	s.runSpan = e.opts.ParentSpan.Child("run:pipelined", obs.KindRun,
		obs.String("variant", Pipelined.String()), obs.String("dir", e.dir))
	s.initJournal(Pipelined)
	e.start = s.now()
	b, err := s.preparePipelined()
	if err != nil {
		return nil, err
	}
	e.b = b
	return b.g, nil
}

// finish is the event's completion phase: fold node timings, materialize,
// close the journal, and assemble the Result — the same epilogue Run uses.
func (e *fleetEvent) finish(err error) error {
	if e.s == nil {
		// newState itself failed; there is no run to finalize.
		return err
	}
	if err == nil && e.b != nil {
		e.b.foldTimings()
	}
	if e.b != nil {
		e.b.teardownStreams()
	}
	res, ferr := e.s.finishRun(Pipelined, e.start, err)
	// The flush Run performs in its defer: chaos tally and cancel-cause
	// release for this event's state.
	e.s.faultsCtr.Add(float64(e.s.chaos.Injected()))
	e.s.fail(nil)
	e.res.Result = res
	return ferr
}

// runFleetSim is RunFleet on the simulated platform: each event's prologue
// and graph execute serially under the CPU clock to measure per-node costs,
// then fleet.Simulate replays the whole queue on a virtual clock with
// SimProcessors shared workers, and each event's Total becomes its virtual
// fleet latency (plus its real materialization cost, as in Run).
func runFleetSim(evs []*fleetEvent, opts FleetOptions) ([]fleet.SimEvent, []BatchResult, error) {
	type measured struct {
		e         *fleetEvent
		execErr   error
		buildCost time.Duration
	}
	var sims []fleet.SimEvent
	var healthy []measured
	for _, e := range evs {
		g, err := e.build()
		if err != nil {
			e.res.Err = e.finish(err)
			continue
		}
		buildCost := (e.s.now() - e.start) + e.s.virt
		_, execErr := g.Execute(1, nil)
		if execErr != nil {
			e.res.Err = e.finish(execErr)
			continue
		}
		sims = append(sims, fleet.SimEvent{Name: e.dir, Graph: g, Durs: e.b.durs, Build: buildCost})
		healthy = append(healthy, measured{e: e, buildCost: buildCost})
	}
	simRes := fleet.Simulate(sims, opts.SimProcessors, opts.Admit, opts.Policy)
	for k, m := range healthy {
		e := m.e
		// Rebase the event clock onto the virtual fleet schedule: everything
		// measured so far is replaced by the simulated admission-to-done
		// latency; finishRun then adds the real materialization cost on top,
		// exactly as a plain simulated Run would.
		e.res.Wait = simRes[k].Wait()
		e.res.Latency = simRes[k].Latency()
		e.s.virt = e.res.Latency - (e.s.now() - e.start)
		e.res.Err = e.finish(nil)
	}
	results := make([]BatchResult, len(evs))
	for i, e := range evs {
		results[i] = e.res
		results[i].Dir = e.dir
	}
	return sims, results, batchFirstError(results)
}
