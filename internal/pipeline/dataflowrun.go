package pipeline

import (
	"bufio"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"accelproc/internal/dataflow"
	"accelproc/internal/dsp"
	"accelproc/internal/fourier"
	"accelproc/internal/obs"
	"accelproc/internal/parallel"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/stream"
)

// This file implements the Pipelined variant: instead of the 11-stage
// schedule with a barrier after every stage, the run is compiled into one
// record-level task DAG and handed to the internal/dataflow executor.  The
// graph is derived from the declared process artifacts (DeriveArtifactEdges),
// never hand-written, so it cannot drift from the artifact table.
//
// Node granularity: a per-record process (PerRecordProcess) contributes one
// node per station, so station A's Fourier transform can start the moment
// A's default filter lands, while station B is still being filtered — the
// inter-stage barrier the staged schedule imposes is gone.  A per-record
// process that also writes an event-global artifact (the max-values metadata
// of #4/#13, the filter-params file of #10) gets an extra join node that
// merges the per-record fragments and performs the single global write;
// downstream readers of the global artifact depend on the join, downstream
// readers of the per-record files depend only on their own record's node.
//
// Edge mapping, per derived ArtifactEdge d→p:
//   - record-scoped artifact (both ends per-record): d[r] → p[r];
//   - global artifact read by p (RAW): producer → every p[r];
//   - global artifact written by p (WAR/WAW): producer → join(p);
// where the producer side is the global node of d, the join of d when d is a
// per-record writer of the artifact, or all d[r] when d merely read it (WAR).
//
// Processes #0 and #1 run before the graph is built — #1 discovers the
// record set the graph is shaped by — exactly as stage I of the staged
// schedule, so their timings and spans are reported identically.
//
// Scheduling: critical-path-first with record size (NPTS, peeked from the V1
// header) as the weight, so big records — the stragglers of the staged
// schedule — enter the pool first.  Retry, quarantine, and chaos injection
// work unchanged: the per-record staging bodies below mirror the temp-folder
// protocol of tempfolder.go operation for operation, and a quarantined
// record's downstream nodes complete as no-ops instead of poisoning the run.

// dfNodeMeta locates a node in the process/stage taxonomy for timing
// attribution and metrics.
type dfNodeMeta struct {
	pid     ProcessID
	stage   StageID
	station string
}

// dfBuild accumulates the graph, the per-node bodies' side-channel state
// (max-values fragments, picked corners), and the per-node measurements.
type dfBuild struct {
	s        *state
	g        *dataflow.Graph
	stations []string
	weights  []float64
	exe      string

	durs []time.Duration // per-node measured cost, written by node index
	meta []dfNodeMeta

	global map[ProcessID]dataflow.NodeID
	perRec map[ProcessID][]dataflow.NodeID
	join   map[ProcessID]dataflow.NodeID

	fragsDef []smformat.MaxValues
	fragsCor []smformat.MaxValues
	picks    [][3]dsp.BandPassSpec
	picked   []bool

	// Streaming execution plane (Options.Streaming; see streamrun.go): the
	// run's shared chunk pool, the gather pool of the blocking consumers,
	// one stream per (producer process, record) stream edge, and the
	// per-record scratch dirs holding stream spills and filter-pass spills.
	pool       *stream.Pool
	gatherPool *fourier.GatherPool
	streams    map[ProcessID][]*stream.Stream
	spillDirs  []string
}

// streaming reports whether this build runs the streaming execution plane.
func (b *dfBuild) streaming() bool { return b.streams != nil }

// runPipelined executes the dataflow variant: stage I as in the staged
// schedule, then everything else as one barrier-free task graph.
func (s *state) runPipelined() error {
	b, err := s.preparePipelined()
	if err != nil {
		return err
	}
	if s.simulated() {
		return s.executeDataflowSim(b)
	}
	return s.executeDataflow(b)
}

// preparePipelined performs the Pipelined variant's pre-graph prologue —
// stage I, station discovery, the shared filter-executable image — and
// compiles the record-level task graph.  Split from runPipelined so the
// fleet scheduler can run it as an event's admission-time Build phase on a
// shared pool worker.
func (s *state) preparePipelined() (*dfBuild, error) {
	err := s.taskStage(StageI, s.opts.MetaWorkers, []taskSpec{
		{PInitFlags, s.procInitFlags},
		{PGatherInputs, s.procGatherInputs},
	})
	if err != nil {
		return nil, err
	}
	stations, err := s.stations()
	if err != nil {
		return nil, err
	}
	exe := ""
	if !s.opts.NoTempFolders {
		// Installed once, up front: the staged schedule creates the image
		// lazily inside the first temp-folder stage, but concurrent dataflow
		// nodes must not race to create it.
		if exe, err = s.ensureExeImage(); err != nil {
			return nil, err
		}
	}
	return s.buildDataflow(stations, exe)
}

// executeDataflow runs the graph on real goroutines with the run's worker
// budget, then reports the scheduler metrics.
func (s *state) executeDataflow(b *dfBuild) error {
	defer b.teardownStreams()
	var mon dataflow.Monitor
	if o := s.opts.Observer; o != nil {
		mon = obs.NewWorkerMonitor(o, "dataflow")
	}
	stats, err := b.g.Execute(parallel.Workers(s.opts.Workers), mon)
	b.foldTimings()
	if err != nil {
		return err
	}
	b.reportMetrics(stats)
	return nil
}

// executeDataflowSim runs the graph on the simulated platform: one worker
// dispatches the bodies serially in priority order while the CPU clock
// measures each node, then the virtual clock is charged the list-scheduling
// makespan of the measured graph on the simulated processors.
func (s *state) executeDataflowSim(b *dfBuild) error {
	defer b.teardownStreams()
	_, err := b.g.Execute(1, nil)
	b.foldTimings()
	if err != nil {
		return err
	}
	var serial time.Duration
	for _, d := range b.durs {
		serial += d
	}
	s.virt += b.g.SimMakespan(b.durs, s.opts.SimProcessors) - serial
	return nil
}

// foldTimings attributes every node's measured cost to its process and
// stage.  With no barriers there is no joint stage wall time; a stage's
// entry is the summed cost of its nodes, which keeps per-stage comparisons
// against the staged variants meaningful (work moved, not renamed).
func (b *dfBuild) foldTimings() {
	for i, m := range b.meta {
		b.s.tim.Process[m.pid] += b.durs[i]
		b.s.tim.Stage[m.stage] += b.durs[i]
	}
}

// reportMetrics feeds the scheduler's post-run gauges: the ready-queue wait
// distribution, and the total per-stage tail wait a barrier schedule would
// have added (for every node, the gap between its finish and its stage's
// last finish — exactly the idle time the dataflow executor reclaims).
func (b *dfBuild) reportMetrics(stats []dataflow.NodeStat) {
	o := b.s.opts.Observer
	if o == nil {
		return
	}
	h := o.Histogram("dataflow_ready_queue_wait_seconds", nil)
	stageEnd := map[StageID]time.Duration{}
	for _, st := range stats {
		if st.Skipped {
			continue
		}
		h.Observe(st.Wait().Seconds())
		if stage := b.meta[st.ID].stage; st.End > stageEnd[stage] {
			stageEnd[stage] = st.End
		}
	}
	var eliminated time.Duration
	for _, st := range stats {
		if !st.Skipped {
			eliminated += stageEnd[b.meta[st.ID].stage] - st.End
		}
	}
	o.Gauge("dataflow_barrier_wait_eliminated_seconds").Set(eliminated.Seconds())
}

// buildDataflow compiles the derived artifact edges into the record-level
// task graph for the given surviving stations.
func (s *state) buildDataflow(stations []string, exe string) (*dfBuild, error) {
	b := &dfBuild{
		s: s, g: dataflow.New(), stations: stations, exe: exe,
		weights:  s.recordWeights(stations),
		global:   map[ProcessID]dataflow.NodeID{},
		perRec:   map[ProcessID][]dataflow.NodeID{},
		join:     map[ProcessID]dataflow.NodeID{},
		fragsDef: make([]smformat.MaxValues, len(stations)),
		fragsCor: make([]smformat.MaxValues, len(stations)),
		picks:    make([][3]dsp.BandPassSpec, len(stations)),
		picked:   make([]bool, len(stations)),
	}
	if s.opts.Streaming {
		if err := b.setupStreams(); err != nil {
			return nil, err
		}
	}
	incoming := map[ProcessID][]ArtifactEdge{}
	for _, e := range DeriveArtifactEdges() {
		if e.From <= PGatherInputs {
			continue // stage-I producers finish before the graph starts
		}
		incoming[e.To] = append(incoming[e.To], e)
	}
	for _, p := range Processes {
		if p.Redundant || p.ID <= PGatherInputs {
			continue
		}
		b.addProcess(p.ID, incoming[p.ID])
	}
	return b, nil
}

// addProcess adds the node (or per-record nodes plus optional join) of one
// process, wiring the derived edges per the mapping in the file comment.
// Processes is iterated in chain order, so every producer node exists.
func (b *dfBuild) addProcess(pid ProcessID, in []ArtifactEdge) {
	if !PerRecordProcess(pid) {
		var deps []dataflow.NodeID
		for _, e := range in {
			deps = append(deps, b.producersOf(e)...)
		}
		b.global[pid] = b.add(pid, "", b.globalBody(pid), deps, nil)
		return
	}
	var recEdges, readEdges, writeEdges []ArtifactEdge
	for _, e := range in {
		switch {
		case RecordScoped(e.Artifact):
			recEdges = append(recEdges, e)
		case e.Hazard == HazardRAW:
			readEdges = append(readEdges, e)
		default:
			writeEdges = append(writeEdges, e)
		}
	}
	var shared []dataflow.NodeID
	for _, e := range readEdges {
		shared = append(shared, b.producersOf(e)...)
	}
	// Under streaming, the record-scoped true dependency on this consumer's
	// stream producer becomes a stream edge: the consumer node is released at
	// the producer's *dispatch*, so the pair runs concurrently with chunks
	// flowing between them.  Every other record-scoped edge (WAR hazards, and
	// artifact reads with no stream) stays a completion edge.
	streamFrom, hasStream := streamProducerOf[pid]
	ids := make([]dataflow.NodeID, len(b.stations))
	for i, st := range b.stations {
		deps := append([]dataflow.NodeID(nil), shared...)
		var sdeps []dataflow.NodeID
		for _, e := range recEdges {
			if b.streaming() && hasStream && e.Hazard == HazardRAW && e.From == streamFrom {
				sdeps = append(sdeps, b.perRec[e.From][i])
				continue
			}
			deps = append(deps, b.perRec[e.From][i])
		}
		ids[i] = b.add(pid, st, b.recordBody(pid, i, st), deps, sdeps)
	}
	b.perRec[pid] = ids
	if !writesGlobal(pid) {
		return
	}
	deps := append([]dataflow.NodeID(nil), ids...)
	for _, e := range writeEdges {
		deps = append(deps, b.producersOf(e)...)
	}
	b.join[pid] = b.add(pid, "", b.joinBody(pid), deps, nil)
}

// producersOf resolves the producer side of one global-artifact edge to
// concrete nodes.
func (b *dfBuild) producersOf(e ArtifactEdge) []dataflow.NodeID {
	if !PerRecordProcess(e.From) {
		return []dataflow.NodeID{b.global[e.From]}
	}
	if e.Hazard == HazardWAR {
		// Anti-dependency: wait for every per-record reader of the artifact
		// about to be overwritten.
		return b.perRec[e.From]
	}
	// True or output dependency on a per-record writer: its join node owns
	// the merged global artifact.
	return []dataflow.NodeID{b.join[e.From]}
}

// writesGlobal reports whether a per-record process also writes an
// event-global artifact and therefore needs a join node.
func writesGlobal(pid ProcessID) bool {
	for _, a := range Processes[pid].Outputs {
		if !RecordScoped(a) {
			return true
		}
	}
	return false
}

// add registers one node: the body is wrapped with the quarantine skip, the
// cancellation check, a task span under the run span, cost measurement, and
// the fail-fast cancellation that parFor bodies get on the staged path.
// sdeps names stream-edge producers (streaming runs only): the node is added
// with AddStream so it is released at their dispatch instead of completion.
func (b *dfBuild) add(pid ProcessID, station string, inner func() error, deps, sdeps []dataflow.NodeID) dataflow.NodeID {
	s := b.s
	id := dataflow.NodeID(b.g.Len())
	name := Processes[pid].Name
	label := name
	weight := 0.0
	if station != "" {
		label = name + ":" + station
		weight = b.weights[b.stationIndex(station)]
	} else if PerRecordProcess(pid) {
		label = name + ":join"
	}
	alpha := s.opts.ContentionIO
	if Processes[pid].Cost == CostHeavyFLOPS {
		alpha = s.opts.ContentionCPU
	}
	b.durs = append(b.durs, 0)
	b.meta = append(b.meta, dfNodeMeta{pid: pid, stage: StageOf(pid), station: station})
	run := func() error {
		if station != "" && s.isQuarantined(station) {
			return nil
		}
		if err := s.cancelled(); err != nil {
			return err
		}
		attrs := []obs.Attr{obs.Int("process", int64(pid)), obs.String("process_name", name)}
		if station != "" {
			attrs = append(attrs, obs.String("record", station))
		}
		start := s.now()
		// Resume skip rule: a node the replayed journal validated as done
		// (outputs present, side-channel payload journaled) restores its
		// side-channel state and skips — checked before the action cache,
		// because the journal already proved the outputs are in place.
		if station != "" && s.resumeDone != nil {
			if n, ok := s.resumeDone[nodeKey{pid: pid, st: station}]; ok &&
				b.restoreResumedSide(n, b.stationIndex(station)) {
				d := s.now() - start
				b.durs[id] = d
				s.nodesSkipped.Add(1)
				s.nodesSkippedCtr.Add(1)
				sp := s.runSpan.Child("node:"+label, obs.KindTask,
					append(attrs, obs.String("resume", "skip"))...)
				sp.EndCharged(d)
				return nil
			}
		}
		// Action-cache skip rule: a per-record node whose digest of (process,
		// inputs, params) is cached restores its recorded outputs instead of
		// executing (see actioncache.go).
		aid, cacheable := b.nodeAction(pid, station)
		if cacheable && b.restoreNode(aid, pid, b.stationIndex(station), station) {
			d := s.now() - start
			b.durs[id] = d
			b.journalNodeDone(pid, station, b.stationIndex(station))
			sp := s.runSpan.Child("node:"+label, obs.KindTask,
				append(attrs, obs.String("action_cache", "hit"))...)
			sp.EndCharged(d)
			return nil
		}
		sp := s.runSpan.Child("node:"+label, obs.KindTask, attrs...)
		err := inner()
		d := s.now() - start
		b.durs[id] = d
		if err != nil {
			sp.EndCharged(d, obs.String("error", err.Error()))
			if classify(err) != ErrKindCanceled {
				s.fail(err)
			}
			return fmt.Errorf("pipeline: process #%d (%s): %w", pid, name, err)
		}
		if station != "" {
			s.recNodesExec.Add(1)
			// Re-check quarantine: graceful degradation may have condemned the
			// record *during* the body, in which case its outputs are partial
			// or gone and must not be recorded as this digest's results.
			if !s.isQuarantined(station) {
				if cacheable {
					b.storeNode(aid, pid, b.stationIndex(station), station)
				}
				// Journal the node *after* its outputs landed: the record is
				// the durability acknowledgment the resume validation trusts.
				b.journalNodeDone(pid, station, b.stationIndex(station))
			}
		}
		sp.EndCharged(d)
		return nil
	}
	// A streamed producer must close its out-stream no matter how the node
	// ends — error, quarantine skip, resume skip, or cache hit all leave the
	// consumer blocked on Recv otherwise.  Close here is first-reason-wins:
	// when the body already closed the stream cleanly this is a no-op, and
	// every skip path degrades the consumer to its durable-artifact fallback.
	if out := b.outStream(pid, station); out != nil {
		body := run
		run = func() error {
			err := body()
			if err != nil {
				out.Close(err)
			} else {
				out.Close(stream.ErrFallback)
			}
			return err
		}
	}
	spec := dataflow.Spec{Label: label, Weight: weight, Alpha: alpha, Run: run}
	if len(sdeps) > 0 {
		return b.g.AddStream(spec, dedupNodes(sdeps), dedupNodes(deps)...)
	}
	return b.g.Add(spec, dedupNodes(deps)...)
}

func (b *dfBuild) stationIndex(st string) int {
	for i, have := range b.stations {
		if have == st {
			return i
		}
	}
	return 0
}

// dedupNodes sorts and deduplicates a dependency list in place.
func dedupNodes(deps []dataflow.NodeID) []dataflow.NodeID {
	if len(deps) < 2 {
		return deps
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	out := deps[:1]
	for _, d := range deps[1:] {
		if d != out[len(out)-1] {
			out = append(out, d)
		}
	}
	return out
}

// globalBody returns the body of an event-global process node.
func (b *dfBuild) globalBody(pid ProcessID) func() error {
	s := b.s
	switch pid {
	case PInitFilterParams:
		return s.procInitFilterParams
	case PInitMetadata:
		return s.procInitMetadata
	case PInitFourierGraph:
		return s.procInitFourierGraph
	case PInitFlags2:
		return s.procInitFlags
	case PInitResponseGraph:
		return s.procInitResponseGraph
	}
	panic(fmt.Sprintf("pipeline: no dataflow body for global process #%d", pid))
}

// recordBody returns the body of one process's node for station index i.
func (b *dfBuild) recordBody(pid ProcessID, i int, st string) func() error {
	s := b.s
	switch pid {
	case PSeparateComponents:
		if b.streaming() {
			return func() error { return b.streamSeparateStation(i, st) }
		}
		return func() error { return s.separateStation(st) }
	case PDefaultFilter:
		return b.filterRecordBody(StageIV, PDefaultFilter, "def", b.fragsDef, i, st)
	case PFourier:
		return func() error {
			if b.streaming() {
				return b.streamFourierRecord(i, st)
			}
			if s.opts.NoTempFolders {
				for _, comp := range seismic.Components {
					if err := s.fourierSignal(smformat.V2FileName(st, comp)); err != nil {
						return err
					}
				}
				return nil
			}
			return s.fourierRecordViaTempFolder(i, st, b.exe)
		}
	case PPlotFourier:
		return func() error { return s.plotFourierStation(st) }
	case PPickCorners:
		return func() error {
			var specs [3]dsp.BandPassSpec
			for ci, comp := range seismic.Components {
				spec, err := s.pickSignalSpec(st, comp)
				if err != nil {
					return err
				}
				specs[ci] = spec
			}
			b.picks[i] = specs
			b.picked[i] = true
			return nil
		}
	case PCorrectedFilter:
		return b.filterRecordBody(StageVIII, PCorrectedFilter, "cor", b.fragsCor, i, st)
	case PPlotAccel:
		return func() error { return s.plotAccelStation(st) }
	case PResponseSpectrum:
		return func() error {
			if b.streaming() {
				return b.streamResponseRecord(i, st)
			}
			for _, comp := range seismic.Components {
				if err := s.responseSignal(smformat.V2FileName(st, comp)); err != nil {
					return err
				}
			}
			return nil
		}
	case PPlotResponse:
		return func() error { return s.plotResponseStation(st) }
	case PGenerateGEM:
		return func() error {
			for _, comp := range seismic.Components {
				key := smformat.SignalKey{Station: st, Component: comp}
				if err := s.gemJob(key, false); err != nil {
					return err
				}
				if err := s.gemJob(key, true); err != nil {
					return err
				}
			}
			return nil
		}
	}
	panic(fmt.Sprintf("pipeline: no dataflow body for per-record process #%d", pid))
}

// filterRecordBody builds the per-record body of processes #4 and #13,
// storing the record's max-values fragment for the join node to merge.
func (b *dfBuild) filterRecordBody(stage StageID, pid ProcessID, tag string, frags []smformat.MaxValues, i int, st string) func() error {
	s := b.s
	return func() error {
		var frag smformat.MaxValues
		var err error
		switch {
		case b.streaming():
			frag, err = b.streamFilterRecord(pid, i, st)
		case s.opts.NoTempFolders:
			frag, err = s.filterRecordDirect(st)
		default:
			frag, err = s.filterRecordViaTempFolder(stage, pid, tag, i, st, b.exe)
		}
		if err != nil {
			return err
		}
		frags[i] = frag
		return nil
	}
}

// joinBody returns the merge body of a per-record process's join node.
func (b *dfBuild) joinBody(pid ProcessID) func() error {
	s := b.s
	switch pid {
	case PDefaultFilter:
		return func() error { return s.writeMergedMaxValues(b.fragsDef) }
	case PCorrectedFilter:
		return func() error { return s.writeMergedMaxValues(b.fragsCor) }
	case PPickCorners:
		return func() error {
			params, err := s.readFilterParams(s.path(smformat.FilterParamsFile))
			if err != nil {
				return err
			}
			for i, st := range b.stations {
				if !b.picked[i] {
					continue // quarantined before its pick node ran
				}
				for ci, comp := range seismic.Components {
					params.PerSignal[smformat.SignalKey{Station: st, Component: comp}] = b.picks[i][ci]
				}
			}
			return s.writeFilterParams(s.path(smformat.FilterParamsFile), params)
		}
	}
	panic(fmt.Sprintf("pipeline: no dataflow join body for process #%d", pid))
}

// writeMergedMaxValues merges per-record fragments (quarantined records
// contribute an empty one) into the max-values metadata, exactly as step 3
// of filterViaTempFolders does.
func (s *state) writeMergedMaxValues(frags []smformat.MaxValues) error {
	merged := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	for _, frag := range frags {
		for k, v := range frag.Peaks {
			merged.Peaks[k] = v
		}
	}
	return smformat.WriteMaxValuesFileFS(s.ws, s.path(smformat.MaxValuesFile), merged)
}

// filterRecordDirect is the NoTempFolders body of one record of processes
// #4/#13: the per-station slice of applyFilters.
func (s *state) filterRecordDirect(st string) (smformat.MaxValues, error) {
	params, err := s.readFilterParams(s.path(smformat.FilterParamsFile))
	if err != nil {
		return smformat.MaxValues{}, err
	}
	frag := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
	for _, comp := range seismic.Components {
		v1, err := s.readV1Comp(s.path(smformat.V1ComponentFileName(st, comp)))
		if err != nil {
			return smformat.MaxValues{}, err
		}
		key := smformat.SignalKey{Station: st, Component: comp}
		v2, pk, err := s.correctSignal(v1, params.Spec(key))
		if err != nil {
			return smformat.MaxValues{}, err
		}
		if err := s.writeV2(s.path(smformat.V2FileName(st, comp)), v2); err != nil {
			return smformat.MaxValues{}, err
		}
		frag.Peaks[key] = pk
	}
	return frag, nil
}

// filterRecordViaTempFolder runs the whole temp-folder protocol of processes
// #4/#13 for one record: stage in, install the executable, execute, stage
// out, clean up — the same operations, retry wrappers, and degradation rules
// as filterViaTempFolders, but fused into one schedulable unit so no record
// waits at a step barrier for its siblings.  A quarantined record returns an
// empty fragment and nil.
func (s *state) filterRecordViaTempFolder(stage StageID, pid ProcessID, tag string, idx int, st, exe string) (frag smformat.MaxValues, err error) {
	dir := s.path(fmt.Sprintf("tmp_%s_%02d_%s", tag, idx, st))
	rc := recordSite{stage: stage, proc: pid, tag: tag, station: st, scratch: dir}
	fsys := s.fsAt(tag, st)
	defer func() {
		if err != nil {
			s.removeScratchDirs([]string{dir})
		}
	}()

	// Stage in: create the folder, copy the parameter file, move the V1
	// components.
	stageIn := func() error {
		if err := s.retryOp(rc, "mkdir", func() error {
			return fsys.MkdirAll(dir, 0o755)
		}); err != nil {
			return err
		}
		if err := s.retryOp(rc, "copy", func() error {
			return s.copyArtifact(fsys, filepath.Join(dir, smformat.FilterParamsFile), s.path(smformat.FilterParamsFile), s.bytesIn)
		}); err != nil {
			return err
		}
		for _, comp := range seismic.Components {
			name := smformat.V1ComponentFileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, filepath.Join(dir, name), s.path(name), s.bytesIn)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err = s.degraded(rc, stageIn()); err != nil || s.isQuarantined(st) {
		return smformat.MaxValues{}, err
	}
	if err = s.cancelled(); err != nil {
		return smformat.MaxValues{}, err
	}

	// Install the executable image (copied from the event-scoped master,
	// which runPipelined created before the graph started).
	err = s.degraded(rc, s.retryOp(rc, "copy", func() error {
		return s.copyArtifact(fsys, filepath.Join(dir, exeImageName), exe, s.bytesIn)
	}))
	if err != nil || s.isQuarantined(st) {
		return smformat.MaxValues{}, err
	}
	if err = s.cancelled(); err != nil {
		return smformat.MaxValues{}, err
	}

	// Execute the program and stage the products (and the reusable V1
	// inputs) back out.
	execute := func() error {
		out := smformat.MaxValues{Peaks: map[smformat.SignalKey]seismic.PeakValues{}}
		err := s.retryOp(rc, "exec", func() error {
			if err := s.chaos.Exec(tag, st); err != nil {
				return err
			}
			params, err := s.readFilterParams(filepath.Join(dir, smformat.FilterParamsFile))
			if err != nil {
				return err
			}
			for _, comp := range seismic.Components {
				v1, err := s.readV1Comp(filepath.Join(dir, smformat.V1ComponentFileName(st, comp)))
				if err != nil {
					return err
				}
				key := smformat.SignalKey{Station: st, Component: comp}
				v2, pk, err := s.correctSignal(v1, params.Spec(key))
				if err != nil {
					return err
				}
				if err := s.writeV2(filepath.Join(dir, smformat.V2FileName(st, comp)), v2); err != nil {
					return err
				}
				out.Peaks[key] = pk
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, comp := range seismic.Components {
			v2name := smformat.V2FileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, s.path(v2name), filepath.Join(dir, v2name), s.bytesOut)
			}); err != nil {
				return err
			}
			v1name := smformat.V1ComponentFileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, s.path(v1name), filepath.Join(dir, v1name), s.bytesOut)
			}); err != nil {
				return err
			}
		}
		frag = out
		return nil
	}
	if err = s.degraded(rc, execute()); err != nil || s.isQuarantined(st) {
		return smformat.MaxValues{}, err
	}

	// Clean up the scratch folder.
	if !s.opts.KeepTempDirs {
		s.removeScratch(fsys, dir)
	}
	return frag, nil
}

// fourierRecordViaTempFolder is the fused temp-folder protocol of process #7
// for one record, mirroring fourierViaTempFolders operation for operation.
func (s *state) fourierRecordViaTempFolder(idx int, st, exe string) (err error) {
	const tag = "fou"
	dir := s.path(fmt.Sprintf("tmp_fou_%02d_%s", idx, st))
	rc := recordSite{stage: StageV, proc: PFourier, tag: tag, station: st, scratch: dir}
	fsys := s.fsAt(tag, st)
	defer func() {
		if err != nil {
			s.removeScratchDirs([]string{dir})
		}
	}()

	// Stage in: create the folder and move the V2 inputs.
	stageIn := func() error {
		if err := s.retryOp(rc, "mkdir", func() error {
			return fsys.MkdirAll(dir, 0o755)
		}); err != nil {
			return err
		}
		for _, comp := range seismic.Components {
			name := smformat.V2FileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, filepath.Join(dir, name), s.path(name), s.bytesIn)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err = s.degraded(rc, stageIn()); err != nil || s.isQuarantined(st) {
		return err
	}
	if err = s.cancelled(); err != nil {
		return err
	}

	// Install the executable image.
	err = s.degraded(rc, s.retryOp(rc, "copy", func() error {
		return s.copyArtifact(fsys, filepath.Join(dir, exeImageName), exe, s.bytesIn)
	}))
	if err != nil || s.isQuarantined(st) {
		return err
	}
	if err = s.cancelled(); err != nil {
		return err
	}

	// Execute the transform and stage the F products (and the reusable V2
	// inputs) back out.
	execute := func() error {
		err := s.retryOp(rc, "exec", func() error {
			if err := s.chaos.Exec(tag, st); err != nil {
				return err
			}
			for _, comp := range seismic.Components {
				v2, err := s.readV2(filepath.Join(dir, smformat.V2FileName(st, comp)))
				if err != nil {
					return err
				}
				f, err := fourier.Spectra(v2)
				if err != nil {
					return err
				}
				if err := s.writeFourier(filepath.Join(dir, smformat.FourierFileName(v2.Station, v2.Component)), f); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		for _, comp := range seismic.Components {
			fname := smformat.FourierFileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, s.path(fname), filepath.Join(dir, fname), s.bytesOut)
			}); err != nil {
				return err
			}
			v2name := smformat.V2FileName(st, comp)
			if err := s.retryOp(rc, "move", func() error {
				return s.moveArtifact(fsys, s.path(v2name), filepath.Join(dir, v2name), s.bytesOut)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err = s.degraded(rc, execute()); err != nil || s.isQuarantined(st) {
		return err
	}

	// Clean up the scratch folder.
	if !s.opts.KeepTempDirs {
		s.removeScratch(fsys, dir)
	}
	return nil
}

// recordWeights estimates each record's size so the scheduler starts the
// heaviest records first.  Native V1 inputs get an NPTS header peek; foreign
// ingest formats fall back to file size over a nominal bytes-per-sample —
// only the relative ordering matters.  Best-effort in every branch: any
// read or parse problem yields weight 1 and is surfaced later by the decode
// node that actually consumes the file.
func (s *state) recordWeights(stations []string) []float64 {
	inputs, err := s.inputsByStation()
	w := make([]float64, len(stations))
	for i, st := range stations {
		w[i] = 1
		if err != nil {
			continue
		}
		name, ok := inputs[st]
		if !ok {
			continue
		}
		w[i] = inputWeight(s.ws, s.path(name))
	}
	return w
}

// inputWeight is recordWeights' per-file heuristic: NPTS for native V1,
// size/24 (three ~8-byte samples per time step) for everything else.
func inputWeight(ws storage.Workspace, p string) float64 {
	if strings.EqualFold(filepath.Ext(p), ".v1") {
		return float64(nptsOf(ws, p))
	}
	if fi, err := ws.Stat(p); err == nil && fi.Size() > 24 {
		return float64(fi.Size()) / 24
	}
	return 1
}

// nptsOf scans the V1 header (NPTS is on the fourth line) for the sample
// count, returning 1 when it cannot be determined.
func nptsOf(ws storage.Workspace, path string) int {
	f, err := ws.Open(path)
	if err != nil {
		return 1
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 4096), 1024*1024)
	for i := 0; i < 4 && sc.Scan(); i++ {
		if rest, ok := strings.CutPrefix(sc.Text(), "NPTS:"); ok {
			if v, err := strconv.Atoi(strings.TrimSpace(rest)); err == nil && v > 0 {
				return v
			}
			return 1
		}
	}
	return 1
}
