package pipeline

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"accelproc/internal/obs"
)

// collectTrace runs one variant with a collector attached and returns the
// result plus the finished spans.
func collectTrace(t *testing.T, v Variant, opts Options) (Result, []obs.SpanRecord) {
	t.Helper()
	col := &obs.Collector{}
	opts.Observer = obs.New(col)
	dir := filepath.Join(t.TempDir(), v.String())
	if err := PrepareWorkDir(dir, testEvent(t)); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), dir, v, opts)
	if err != nil {
		t.Fatalf("%v: %v", v, err)
	}
	return res, col.Records()
}

// TestSpanTreeMatchesTimings is the acceptance invariant: the span tree has
// one run root, stage spans nest directly under it, process spans nest under
// stages, and the charged stage durations agree with Result.Timings.
func TestSpanTreeMatchesTimings(t *testing.T) {
	for _, sim := range []int{0, 8} {
		name := "real"
		if sim > 0 {
			name = "simulated"
		}
		t.Run(name, func(t *testing.T) {
			opts := testOptions()
			opts.SimProcessors = sim
			res, recs := collectTrace(t, FullParallel, opts)

			var run obs.SpanRecord
			runs := 0
			stageIDs := map[int64]StageID{}
			for _, r := range recs {
				switch r.Kind {
				case obs.KindRun:
					run = r
					runs++
				}
			}
			if runs != 1 {
				t.Fatalf("run spans = %d, want 1", runs)
			}
			if run.Duration != res.Timings.Total {
				t.Errorf("run span %v != Timings.Total %v", run.Duration, res.Timings.Total)
			}

			stageSum := map[StageID]time.Duration{}
			for _, r := range recs {
				if r.Kind != obs.KindStage {
					continue
				}
				if r.Parent != run.ID {
					t.Errorf("stage span %q not nested under the run span", r.Name)
				}
				id, ok := r.IntAttr("stage")
				if !ok {
					t.Fatalf("stage span %q has no stage attr", r.Name)
				}
				stageSum[StageID(id)] += r.Duration
				stageIDs[r.ID] = StageID(id)
			}
			if len(stageSum) != NumStages {
				t.Fatalf("distinct stages = %d, want %d", len(stageSum), NumStages)
			}
			var total time.Duration
			for _, st := range Stages {
				got, want := stageSum[st.ID], res.Timings.Stage[st.ID]
				if got != want {
					t.Errorf("stage %v spans sum to %v, Timings say %v", st.ID, got, want)
				}
				total += got
			}
			// The per-stage sums must account for (almost) the whole run:
			// only inter-stage bookkeeping may fall outside stage spans.
			if ratio := float64(total) / float64(res.Timings.Total); ratio < 0.95 || ratio > 1.05 {
				t.Errorf("stage sum / total = %.3f, want within 5%%", ratio)
			}

			// Every process span hangs off a stage span (or the run span for
			// the out-of-stage redundant processes, absent in this variant).
			for _, r := range recs {
				if r.Kind != obs.KindProcess {
					continue
				}
				if _, ok := stageIDs[r.Parent]; !ok && r.Parent != run.ID {
					t.Errorf("process span %q has unknown parent %d", r.Name, r.Parent)
				}
			}
		})
	}
}

func TestRunRecordsThroughputMetrics(t *testing.T) {
	col := &obs.Collector{}
	o := obs.New(col)
	opts := testOptions()
	opts.Observer = o
	ev := testEvent(t)
	dir := filepath.Join(t.TempDir(), "w")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), dir, FullParallel, opts); err != nil {
		t.Fatal(err)
	}
	// One corrected record per (station, component) pair.
	if got := o.Counter("records_processed_total").Value(); got != float64(3*len(ev.Records)) {
		t.Errorf("records_processed_total = %g, want %d", got, 3*len(ev.Records))
	}
	if o.Counter("bytes_staged_in_total").Value() <= 0 {
		t.Error("bytes_staged_in_total not counted")
	}
	if o.Counter("bytes_staged_out_total").Value() <= 0 {
		t.Error("bytes_staged_out_total not counted")
	}
	if occ := o.Gauge("pipeline_worker_occupancy").Value(); occ <= 0 || occ > 1 {
		t.Errorf("pipeline_worker_occupancy = %g", occ)
	}
}

func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	if err := PrepareWorkDir(dir, testEvent(t)); err != nil {
		t.Fatal(err)
	}
	_, err := Run(ctx, dir, FullParallel, testOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	assertNoScratchDirs(t, dir)
}

// cancelOnStageIn cancels the run context as soon as the first temp-folder
// stage-in step finishes, so cancellation lands mid-protocol with scratch
// directories already on disk.
type cancelOnStageIn struct{ cancel context.CancelFunc }

func (c cancelOnStageIn) Record(rec obs.SpanRecord) {
	if rec.Kind == obs.KindTask && rec.Name == "stage-in" {
		c.cancel()
	}
}

func TestRunBatchCancellationLeavesNoTempFolders(t *testing.T) {
	dirs := prepareBatchDirs(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := batchOptions(1)
	opts.Observer = obs.New(cancelOnStageIn{cancel})

	results, err := RunBatch(ctx, dirs, FullParallel, opts)
	if err == nil {
		t.Fatal("cancelled batch reported no error")
	}
	cancelled := 0
	for _, r := range results {
		if r.Err != nil {
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("dir %s failed with %v, want context.Canceled", r.Dir, r.Err)
			}
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("no event observed the cancellation")
	}
	for _, dir := range dirs {
		assertNoScratchDirs(t, dir)
	}
	// The abort-path cleanup must have succeeded silently: the
	// scratch_cleanup_errors counter only moves when a removal fails.
	if v := opts.Observer.Counter("scratch_cleanup_errors").Value(); v != 0 {
		t.Errorf("scratch_cleanup_errors = %v after clean cancellation, want 0", v)
	}
}

// assertNoScratchDirs fails if any temp-folder scratch directory survived.
func assertNoScratchDirs(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "tmp_") {
			t.Errorf("orphaned scratch directory %s in %s", e.Name(), dir)
		}
	}
}

func TestParseVariant(t *testing.T) {
	cases := map[string]Variant{
		"seq-original":           SeqOriginal,
		"sequential-original":    SeqOriginal,
		"seq":                    SeqOriginal,
		"seq-optimized":          SeqOptimized,
		"sequential-optimized":   SeqOptimized,
		"opt":                    SeqOptimized,
		"partial":                PartialParallel,
		"partially-parallelized": PartialParallel,
		"full":                   FullParallel,
		"fully-parallelized":     FullParallel,
		"  Full ":                FullParallel, // trimmed, case-folded
	}
	for in, want := range cases {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("bogus variant accepted")
	}
	// Every canonical String() name must round-trip.
	for _, v := range Variants {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("round-trip %v failed: %v, %v", v, got, err)
		}
	}
}
