// Package pipeline implements the paper's contribution: the accelerographic
// records processing chain of El Salvador's Observatory of Natural Threats,
// in its four successive incarnations —
//
//	SeqOriginal   the original 20-process sequential chain (paper §III)
//	SeqOptimized  17 processes after dropping the redundant #6, #12, #14 (§IV)
//	PartialParallel  5 of 11 stages parallelized: task parallelism for the
//	                 lightweight metadata stages, parallel loops for the
//	                 C++-side stages (§V)
//	FullParallel  10 of 11 stages parallelized, adding Fortran-side loops
//	                 and concurrent execution in temporary folders (§VI)
//
// Processes communicate exclusively through files in a work directory, as
// the legacy chain does: V1 inputs are read from it, and every intermediate
// product (per-component V1, V2, F, R, GEM, metadata, PostScript plots) is
// written back to it.  This preserves the heavy-I/O character of the
// original system that the paper's speedups are measured against.
package pipeline

import (
	"fmt"
	"strings"
	"time"

	"accelproc/internal/dsp"
	"accelproc/internal/faults"
	"accelproc/internal/fourier"
	"accelproc/internal/ingest"
	"accelproc/internal/obs"
	"accelproc/internal/response"
	"accelproc/internal/simsched"
	"accelproc/internal/storage"
)

// Variant selects which of the paper's four implementations to run.
type Variant int

const (
	// SeqOriginal is the original 20-process sequential chain.
	SeqOriginal Variant = iota
	// SeqOptimized drops the redundant processes #6, #12, #14.
	SeqOptimized
	// PartialParallel parallelizes stages I-II, VI, X, and XI.
	PartialParallel
	// FullParallel parallelizes every stage except VII (process #11).
	FullParallel
	// Pipelined replaces the staged schedule with a record-level task DAG
	// derived from the declared process artifacts: no inter-stage barriers,
	// each record flows through the chain as its own dependencies resolve.
	Pipelined
)

// Variants lists the paper's four implementations in order, plus the
// barrier-free dataflow variant this implementation adds.
var Variants = [5]Variant{SeqOriginal, SeqOptimized, PartialParallel, FullParallel, Pipelined}

// String returns the paper's name for the variant.
func (v Variant) String() string {
	switch v {
	case SeqOriginal:
		return "sequential-original"
	case SeqOptimized:
		return "sequential-optimized"
	case PartialParallel:
		return "partially-parallelized"
	case FullParallel:
		return "fully-parallelized"
	case Pipelined:
		return "pipelined"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ProcessID numbers the 20 processes of the original chain (paper Fig. 5).
type ProcessID int

// The 20 processes.
const (
	PInitFlags          ProcessID = 0  // initialize flags
	PGatherInputs       ProcessID = 1  // gather input data files
	PInitFilterParams   ProcessID = 2  // initialize filter parameters
	PSeparateComponents ProcessID = 3  // separate data by components
	PDefaultFilter      ProcessID = 4  // apply default filters
	PInitMetadata       ProcessID = 5  // initialize metadata files
	PPlotUncorrected    ProcessID = 6  // plot uncorrected signals (redundant)
	PFourier            ProcessID = 7  // apply Fourier transformation
	PInitFourierGraph   ProcessID = 8  // initialize filelist metadata
	PPlotFourier        ProcessID = 9  // plot Fourier spectrum
	PPickCorners        ProcessID = 10 // obtain FSL & FPL values
	PInitFlags2         ProcessID = 11 // initialize flags (again)
	PSeparateComps2     ProcessID = 12 // separate data by components (redundant)
	PCorrectedFilter    ProcessID = 13 // obtain corrected signals
	PInitMetadata2      ProcessID = 14 // initialize metadata files (redundant)
	PPlotAccel          ProcessID = 15 // plot accelerograph
	PResponseSpectrum   ProcessID = 16 // response spectrum calculation
	PInitResponseGraph  ProcessID = 17 // initialize filelist metadata
	PPlotResponse       ProcessID = 18 // plot response spectrum
	PGenerateGEM        ProcessID = 19 // generate GEM files
)

// NumProcesses is the process count of the original chain.
const NumProcesses = 20

// Kind tells how the legacy chain implements a process.
type Kind int

const (
	// KindCPP marks a function embedded in the C++ driver.
	KindCPP Kind = iota
	// KindFortran marks a standalone Fortran program.
	KindFortran
)

// Cost classifies the dominant resource use of a process (the legend of the
// paper's Figures 5-10).
type Cost int

const (
	// CostLight marks trivial bookkeeping processes.
	CostLight Cost = iota
	// CostHeavyIO marks processes dominated by file reading/writing.
	CostHeavyIO
	// CostHeavyFLOPS marks processes dominated by numeric work.
	CostHeavyFLOPS
	// CostPlotting marks plot-generation processes.
	CostPlotting
)

// ProcessInfo is the static description of one process: the paper's Figure
// 9 row, with declared input and output artifacts.
type ProcessInfo struct {
	ID      ProcessID
	Name    string
	Kind    Kind
	Cost    Cost
	Inputs  []string // artifact names consumed
	Outputs []string // artifact names produced
	// Redundant marks the processes dropped by the sequential optimization
	// (#6, #12, #14).
	Redundant bool
}

// Processes describes all 20 processes with their dependencies, mirroring
// the inputs/outputs columns of the paper's Figures 5 and 9.
var Processes = [NumProcesses]ProcessInfo{
	{ID: PInitFlags, Name: "initialize flags", Kind: KindCPP, Cost: CostLight,
		Outputs: []string{"flags"}},
	{ID: PGatherInputs, Name: "gather input data files", Kind: KindCPP, Cost: CostHeavyIO,
		Inputs: []string{"<s>.v1"}, Outputs: []string{"v1list"}},
	{ID: PInitFilterParams, Name: "initialize filter parameters", Kind: KindFortran, Cost: CostLight,
		Outputs: []string{"filter-params"}},
	{ID: PSeparateComponents, Name: "separate data by components", Kind: KindFortran, Cost: CostHeavyIO,
		Inputs: []string{"v1list", "<s>.v1"}, Outputs: []string{"<s><c>.v1"}},
	{ID: PDefaultFilter, Name: "apply default filters", Kind: KindFortran, Cost: CostHeavyFLOPS,
		Inputs: []string{"filter-params", "<s><c>.v1"}, Outputs: []string{"<s><c>.v2", "max-values"}},
	{ID: PInitMetadata, Name: "initialize metadata files", Kind: KindFortran, Cost: CostLight,
		Inputs: []string{"v1list"}, Outputs: []string{"acc-graph", "fourier", "response"}},
	{ID: PPlotUncorrected, Name: "plot uncorrected signals", Kind: KindCPP, Cost: CostPlotting,
		Inputs: []string{"acc-graph", "<s><c>.v1"}, Outputs: []string{"<s>.ps"}, Redundant: true},
	{ID: PFourier, Name: "apply Fourier transformation", Kind: KindFortran, Cost: CostHeavyFLOPS,
		Inputs: []string{"fourier", "<s><c>.v2"}, Outputs: []string{"<s><c>.f"}},
	{ID: PInitFourierGraph, Name: "initialize Fourier filelist metadata", Kind: KindFortran, Cost: CostLight,
		Inputs: []string{"v1list"}, Outputs: []string{"fourier-graph"}},
	{ID: PPlotFourier, Name: "plot Fourier spectrum", Kind: KindFortran, Cost: CostPlotting,
		Inputs: []string{"fourier-graph", "<s><c>.f"}, Outputs: []string{"<s>f.ps"}},
	{ID: PPickCorners, Name: "obtain FSL & FPL values", Kind: KindCPP, Cost: CostHeavyFLOPS,
		Inputs: []string{"fourier-graph", "<s><c>.f"}, Outputs: []string{"filter-params"}},
	{ID: PInitFlags2, Name: "initialize flags", Kind: KindCPP, Cost: CostLight,
		Outputs: []string{"flags"}},
	{ID: PSeparateComps2, Name: "separate data by components", Kind: KindFortran, Cost: CostHeavyIO,
		Inputs: []string{"v1list", "<s>.v1"}, Outputs: []string{"<s><c>.v1"}, Redundant: true},
	{ID: PCorrectedFilter, Name: "obtain corrected signals", Kind: KindFortran, Cost: CostHeavyFLOPS,
		Inputs: []string{"filter-params", "<s><c>.v1"}, Outputs: []string{"<s><c>.v2", "max-values"}},
	{ID: PInitMetadata2, Name: "initialize metadata files", Kind: KindFortran, Cost: CostLight,
		Inputs: []string{"v1list"}, Outputs: []string{"acc-graph", "fourier", "response"}, Redundant: true},
	{ID: PPlotAccel, Name: "plot accelerograph", Kind: KindFortran, Cost: CostPlotting,
		Inputs: []string{"acc-graph", "<s><c>.v2"}, Outputs: []string{"<s>.ps"}},
	{ID: PResponseSpectrum, Name: "response spectrum calculation", Kind: KindFortran, Cost: CostHeavyFLOPS,
		Inputs: []string{"response", "<s><c>.v2"}, Outputs: []string{"<s><c>.r"}},
	{ID: PInitResponseGraph, Name: "initialize response filelist metadata", Kind: KindFortran, Cost: CostLight,
		Inputs: []string{"v1list"}, Outputs: []string{"response-graph"}},
	{ID: PPlotResponse, Name: "plot response spectrum", Kind: KindFortran, Cost: CostPlotting,
		Inputs: []string{"response-graph", "<s><c>.r"}, Outputs: []string{"<s>r.ps"}},
	{ID: PGenerateGEM, Name: "generate GEM files", Kind: KindCPP, Cost: CostHeavyIO,
		Inputs: []string{"response", "<s><c>.v2", "<s><c>.r"}, Outputs: []string{"<s><c>GEM<2|R><A|V|D>"}},
}

// StageID numbers the 11 stages of the reordered schedule (paper Fig. 9).
type StageID int

// The 11 stages.
const (
	StageI StageID = iota + 1
	StageII
	StageIII
	StageIV
	StageV
	StageVI
	StageVII
	StageVIII
	StageIX
	StageX
	StageXI
)

// NumStages is the stage count of the reordered schedule.
const NumStages = 11

// String returns the Roman numeral of the stage.
func (s StageID) String() string {
	numerals := [...]string{"", "I", "II", "III", "IV", "V", "VI", "VII", "VIII", "IX", "X", "XI"}
	if s >= 1 && int(s) < len(numerals) {
		return numerals[s]
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Strategy tells how a stage is parallelized (right-hand columns of the
// paper's Figure 9).
type Strategy int

const (
	// StratSequential leaves the stage sequential.
	StratSequential Strategy = iota
	// StratTask runs the stage's processes as concurrent tasks
	// (omp task / taskwait).
	StratTask
	// StratLoop parallelizes the loop inside the stage's single process
	// (omp parallel for / omp do).
	StratLoop
	// StratTempFolder runs concurrent instances of an unmodifiable program
	// inside per-instance temporary folders with data staged in and out.
	StratTempFolder
)

// StageInfo describes one stage of the reordered schedule and the strategy
// each parallel variant applies to it.
type StageInfo struct {
	ID        StageID
	Processes []ProcessID
	// Partial is the strategy used by the partially parallelized version;
	// StratSequential if the stage is not parallelized there.
	Partial Strategy
	// Full is the strategy used by the fully parallelized version.
	Full Strategy
}

// Stages is the reordered 11-stage schedule with per-variant strategies
// (paper Fig. 9; the Partial column parallelizes 5 stages, the Full column
// 10 — every stage except VII).
var Stages = [NumStages]StageInfo{
	{ID: StageI, Processes: []ProcessID{PInitFlags, PGatherInputs}, Partial: StratTask, Full: StratTask},
	{ID: StageII, Processes: []ProcessID{PInitFilterParams, PInitMetadata, PInitFourierGraph, PInitResponseGraph}, Partial: StratTask, Full: StratTask},
	{ID: StageIII, Processes: []ProcessID{PSeparateComponents}, Partial: StratSequential, Full: StratLoop},
	{ID: StageIV, Processes: []ProcessID{PDefaultFilter}, Partial: StratSequential, Full: StratTempFolder},
	{ID: StageV, Processes: []ProcessID{PFourier}, Partial: StratSequential, Full: StratTempFolder},
	{ID: StageVI, Processes: []ProcessID{PPickCorners}, Partial: StratLoop, Full: StratLoop},
	{ID: StageVII, Processes: []ProcessID{PInitFlags2}, Partial: StratSequential, Full: StratSequential},
	{ID: StageVIII, Processes: []ProcessID{PCorrectedFilter}, Partial: StratSequential, Full: StratTempFolder},
	{ID: StageIX, Processes: []ProcessID{PResponseSpectrum}, Partial: StratSequential, Full: StratLoop},
	{ID: StageX, Processes: []ProcessID{PGenerateGEM}, Partial: StratLoop, Full: StratLoop},
	{ID: StageXI, Processes: []ProcessID{PPlotFourier, PPlotAccel, PPlotResponse}, Partial: StratTask, Full: StratTask},
}

// ParseVariant maps a command-line spelling to a Variant.  It accepts the
// paper's full names (the String values) plus the short forms the CLIs
// document: seq-original, seq-optimized, partial, full, pipelined.
func ParseVariant(name string) (Variant, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "seq-original", "seq", "original", "sequential-original":
		return SeqOriginal, nil
	case "seq-optimized", "opt", "optimized", "sequential-optimized":
		return SeqOptimized, nil
	case "partial", "par", "partially-parallelized":
		return PartialParallel, nil
	case "full", "parallel", "fully-parallelized":
		return FullParallel, nil
	case "pipelined", "pipe", "dataflow":
		return Pipelined, nil
	default:
		return 0, fmt.Errorf("pipeline: unknown variant %q (want seq-original, seq-optimized, partial, full, or pipelined)", name)
	}
}

// StageOf returns the stage that contains the given process in the
// reordered schedule, or 0 if the process was optimized away (#6, #12, #14
// appear in no stage).
func StageOf(p ProcessID) StageID {
	for _, st := range Stages {
		for _, q := range st.Processes {
			if q == p {
				return st.ID
			}
		}
	}
	return 0
}

// Options configures a pipeline run.
type Options struct {
	// Workers bounds the number of concurrent goroutines in parallel
	// stages; 0 means all available processors.  Sequential variants
	// ignore it.
	Workers int
	// MetaWorkers bounds the task team for the lightweight metadata stages
	// I, II, and XI; the paper pins this region to 2-4 processors.
	// Zero selects 4.
	MetaWorkers int
	// Response configures the stage IX workload (method, damping, period
	// grid).  The zero value selects the legacy Duhamel method on the
	// default period grid.
	Response response.Config
	// Pick configures the FPL/FSL inflection search of process #10.
	Pick fourier.PickConfig
	// TaperFraction is the cosine-taper fraction applied before filtering;
	// zero selects 0.05.
	TaperFraction float64
	// Format forces every input record to decode as the named ingest
	// format (a registry key of internal/ingest: v1, v1a, mseed, csv).
	// Empty resolves each file individually — magic bytes first, file
	// extension second (see ingest.Detect).
	Format string
	// QC configures the record sanity gate the decode step (process #3)
	// runs on every input before demultiplexing (see ingest.QCConfig).
	// The zero value keeps only the structural checks (missing component,
	// length mismatch, disagreeing sample intervals) that mark a record
	// unprocessable; ingest.DefaultQC() adds the threshold checks
	// (minimum duration, clipping, telemetry gaps).  Rejected records are
	// quarantined with their typed reason, and the survivors continue.
	QC ingest.QCConfig
	// Instrument, when non-nil, enables instrument-response deconvolution:
	// the correction processes (#4 and #13) remove this transducer's
	// transfer function from the raw signal before band-pass filtering,
	// as chains handling analog (SMA-1 style) records must.
	Instrument *dsp.Instrument
	// KeepTempDirs disables removal of the per-instance temporary folders
	// of the full-parallel variant, for debugging.
	KeepTempDirs bool

	// NoTempFolders is the ablation of the paper's temporary-folder
	// protocol: the fully parallelized variant runs stages IV, V, and VIII
	// as direct parallel loops over signals (possible here because the
	// filter and Fourier programs are native Go, not unmodifiable Fortran
	// binaries), quantifying what the staging protocol costs.
	NoTempFolders bool

	// Streaming enables the streaming execution plane of the Pipelined
	// variant: the three scan-order hot handoffs (#3→#4 raw components,
	// #4→#7 and #13→#16 corrected acceleration) become stream edges — the
	// consumer node is dispatched when its producer starts, and the record
	// flows between them as pooled fixed-size chunks (see internal/stream)
	// instead of a whole decoded artifact.  Every NPTS-scaled output is
	// written incrementally through Workspace.Create, so StorageBytesPeak
	// stays flat as records grow; outputs are byte-identical to the
	// materialized execution on both storage backends.  Implies
	// NoTempFolders (streamed stages run direct bodies), requires the
	// Pipelined variant, and is rejected under Chaos (fault injection must
	// exercise the staged protocol).  The persistent action cache is
	// bypassed while streaming: node outputs are produced incrementally,
	// not read back as whole files for a Put.
	Streaming bool

	// Storage selects the workspace backend the inter-stage file protocol
	// runs on (see internal/storage): BackendFS (the default, also selected
	// by the zero value) keeps every intermediate product on the real
	// filesystem, byte-identical to the legacy chain; BackendMem holds
	// intermediate file bytes in memory over a real directory tree and
	// materializes final event outputs (and quarantined scratch) to disk on
	// demand.  Outputs are byte-identical across backends.
	Storage storage.Backend

	// Cache configures the artifact caching layers (see CacheConfig): off,
	// memory (the zero value — the in-process memo layer, today's
	// behavior), or persistent (memo plus the content-addressed action
	// cache that survives restarts).  On-disk outputs are byte-identical in
	// every mode; only redundant decode/copy/recompute work changes.
	Cache CacheConfig

	// NoArtifactCache disables both cache layers.
	//
	// Deprecated: set Cache.Mode = CacheOff.  The bool is kept as a shim
	// for the pre-CacheConfig API and the -no-artifact-cache flag; it is
	// honored only when Cache is the zero value.
	NoArtifactCache bool

	// Journal maintains a write-ahead run journal under <dir>/.smrun: one
	// fsync'd record per durability point (run start, each completed
	// per-record dataflow node, each quarantine verdict, run finish), so a
	// run killed mid-event can be resumed.  Journaled runs also sweep
	// age-stale scratch dirs and temp files left by crashed runs at startup.
	// Best-effort: a journal that cannot be written never fails the run.
	Journal bool
	// Resume replays a surviving journal before running: quarantine
	// verdicts are restored, journaled nodes whose outputs still validate
	// are handed to the dataflow scheduler as already complete (so only
	// unfinished subgraphs re-execute), and all leftover scratch is swept.
	// Implies Journal.  A journal from a different variant or parameter set
	// is ignored and the run starts fresh.
	Resume bool

	// SimProcessors switches the parallel variants to the simulated
	// platform: every parallel construct executes its real work serially,
	// measures genuine per-task costs, and charges the wall time a
	// SimProcessors-core machine would need under list scheduling with
	// contention (see internal/simsched).  Zero runs real goroutines —
	// the right choice on a host with as many cores as the experiment
	// assumes; the simulation is the substitute for the paper's 8-core
	// platform when the host has fewer.
	SimProcessors int
	// ContentionCPU and ContentionIO are the simulated platform's
	// contention coefficients for compute-bound and I/O-bound loops.
	// Zero selects the calibrated defaults (0.08 and 0.5).
	ContentionCPU float64
	ContentionIO  float64

	// EventWorkers bounds the number of event pipelines RunBatch executes
	// concurrently; 0 means all available processors.  Run ignores it.
	EventWorkers int

	// Chaos, when non-nil, interposes a deterministic fault injector on the
	// temp-folder protocol's file operations and simulated-binary
	// executions (see internal/faults).  Each run builds its own injector
	// from this config, so every event in a batch replays the same seeded
	// fault sequence.  Chaos only reaches the staged protocol; combine it
	// with the full-parallel variant, not the NoTempFolders ablation.
	Chaos *faults.Config
	// Retry governs how staging failures are retried and when a record is
	// quarantined; the zero value selects the documented defaults.
	Retry RetryPolicy

	// Observer, when non-nil, receives the run's span tree (run → stage →
	// process → task) and metrics: per-process durations, temp-folder
	// staging bytes, worker occupancy, queue waits.  It replaces the old
	// Progress callback — attach an obs.ProgressRenderer sink for the
	// same per-process console output.
	Observer *obs.Observer
	// ParentSpan, when non-nil, nests the run's span under an enclosing
	// span (a batch, an experiment trial) instead of opening a new root.
	// It must belong to Observer.
	ParentSpan *obs.Span
}

func (o Options) withDefaults() Options {
	if o.MetaWorkers == 0 {
		o.MetaWorkers = 4
	}
	if o.Resume {
		o.Journal = true
	}
	if o.Streaming {
		// Streamed stages run direct bodies: chunks flow producer→consumer,
		// not through per-instance scratch folders.
		o.NoTempFolders = true
	}
	if o.NoArtifactCache && o.Cache == (CacheConfig{}) {
		// Deprecated-shim mapping: the old bool spelled "no caching at all".
		o.Cache.Mode = CacheOff
	}
	if o.TaperFraction == 0 {
		o.TaperFraction = 0.05
	}
	if o.ContentionCPU == 0 {
		o.ContentionCPU = simsched.ContentionCPU
	}
	if o.ContentionIO == 0 {
		o.ContentionIO = simsched.ContentionIO
	}
	return o
}

// Timings collects per-process and per-stage wall times of one run.
type Timings struct {
	Process [NumProcesses]time.Duration
	Stage   [NumStages + 1]time.Duration // indexed by StageID (1-based)
	Total   time.Duration
}

// Result reports one pipeline run.
type Result struct {
	Variant  Variant
	Stations []string // surviving station codes, sorted
	Timings  Timings

	// Quarantined lists the records the retry engine gave up on, sorted by
	// station; empty on a fully healthy run.
	Quarantined []RecordOutcome
	// Retries counts the staging operations that were re-attempted.
	Retries int64
	// FaultsInjected counts the faults the chaos layer injected (0 when
	// Options.Chaos is nil).
	FaultsInjected int64
	// StorageBytesPeak is the peak bytes the storage backend held resident
	// in memory during the run (0 on the fs backend).
	StorageBytesPeak int64
	// Cache reports both cache layers' hit/miss/eviction activity and the
	// action cache's resident bytes.
	Cache CacheStats
	// Resume reports the write-ahead journal's contribution: whether a
	// prior journal was adopted, how many nodes it replayed, and how much
	// stale scratch the startup sweep removed.  Zero when journaling is off.
	Resume ResumeStats
}
