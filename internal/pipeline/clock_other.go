//go:build !unix

package pipeline

import "time"

// cpuNow falls back to wall time on platforms without getrusage.
func cpuNow() time.Duration { return time.Duration(time.Now().UnixNano()) }

// haveCPUClock reports whether cpuNow is meaningful on this platform.
const haveCPUClock = false
