package pipeline

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"accelproc/internal/ingest"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
)

// PrepareWorkDir writes the multiplexed <station>.v1 input files of an
// event into dir (creating it if needed), the state a work directory is in
// before the chain runs.
func PrepareWorkDir(dir string, ev seismic.Event) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("pipeline: prepare %s: %w", dir, err)
	}
	for _, rec := range ev.Records {
		v1 := smformat.FromRecord(rec)
		if err := smformat.WriteV1File(filepath.Join(dir, smformat.V1FileName(rec.Station)), v1); err != nil {
			return err
		}
	}
	return nil
}

// CleanOutputs removes every pipeline product from dir, leaving only the
// input record files (any registered ingest format, identified by magic),
// so the same directory can be re-processed by another variant from a
// pristine state.
func CleanOutputs(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			// Scratch folders from an aborted temp-folder run, and the
			// quarantine of a degraded one.
			if strings.HasPrefix(name, "tmp_") || name == QuarantineDir || name == RunJournalDir {
				if err := os.RemoveAll(filepath.Join(dir, name)); err != nil {
					return err
				}
			}
			continue
		}
		prefix, err := sniffHead(storage.Disk(), filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if _, ok := ingest.SniffAny(prefix); ok {
			continue // record input in some registered format, keep
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// OutputInventory summarizes the products present in a work directory, for
// assertions in tests and reporting in the CLI.
type OutputInventory struct {
	V1Inputs     int // station record inputs, native or any foreign ingest format
	V1Components int
	V2           int
	Fourier      int
	Response     int
	GEM          int
	Plots        int
	Metadata     int
}

// Inventory scans dir and counts the pipeline products by type.
func Inventory(dir string) (OutputInventory, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return OutputInventory{}, err
	}
	var inv OutputInventory
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".v1"):
			prefix, err := sniffHead(storage.Disk(), filepath.Join(dir, name))
			if err != nil {
				return OutputInventory{}, err
			}
			if hasLine(prefix, smformat.V1Magic) {
				inv.V1Inputs++
			} else {
				inv.V1Components++
			}
		case strings.HasSuffix(name, ".v2"):
			inv.V2++
		case strings.HasSuffix(name, ".f"):
			inv.Fourier++
		case strings.HasSuffix(name, ".r"):
			inv.Response++
		case strings.Contains(name, "GEM"):
			inv.GEM++
		case strings.HasSuffix(name, ".ps"):
			inv.Plots++
		case strings.HasSuffix(name, ".meta"):
			inv.Metadata++
		default:
			prefix, err := sniffHead(storage.Disk(), filepath.Join(dir, name))
			if err != nil {
				return OutputInventory{}, err
			}
			if _, ok := ingest.SniffAny(prefix); ok {
				inv.V1Inputs++ // record input in a foreign ingest format
			}
		}
	}
	return inv, nil
}
