package pipeline

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"accelproc/internal/ingest"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// emitDir lays the event down in dir encoded per opt (format cycle, defect
// injection) and returns dir.
func emitDir(t *testing.T, ev seismic.Event, name string, opt synth.EmitOptions) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	if err := synth.EmitEvent(dir, ev, opt); err != nil {
		t.Fatal(err)
	}
	return dir
}

// ingestProductHashes is productHashes for mixed-format work directories: it
// skips input record files of every registered format (identified by magic)
// and the v1list metadata, whose entries name the format-specific input
// files and therefore legitimately differ between encodings of one event.
func ingestProductHashes(t *testing.T, dir string) map[string]string {
	t.Helper()
	hashes := productHashes(t, dir)
	for name := range hashes {
		if name == smformat.V1ListFile {
			delete(hashes, name)
			continue
		}
		prefix, err := sniffHead(storage.Disk(), filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ingest.SniffAny(prefix); ok {
			delete(hashes, name)
		}
	}
	return hashes
}

// TestFormatsProduceByteIdenticalProducts is the cross-format identity
// matrix: the same event encoded in every registered format — and in a
// per-station mix of all of them — must yield byte-identical products under
// every variant.  Full float64 round-trips in every encoder make this exact,
// not approximate.
func TestFormatsProduceByteIdenticalProducts(t *testing.T) {
	ev := testEvent(t)
	encodings := append(ingest.Names(), "mix")
	var ref map[string]string
	var refName string
	for _, enc := range encodings {
		for _, v := range Variants {
			name := fmt.Sprintf("%s/%s", enc, v)
			dir := emitDir(t, ev, strings.ReplaceAll(name, "/", "_"), synth.EmitOptions{Format: enc})
			if _, err := Run(context.Background(), dir, v, testOptions()); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := ingestProductHashes(t, dir)
			if ref == nil {
				if len(got) == 0 {
					t.Fatalf("%s: no products", name)
				}
				ref, refName = got, name
				continue
			}
			if len(got) != len(ref) {
				t.Errorf("%s: %d products, want %d (as %s)", name, len(got), len(ref), refName)
			}
			for file, h := range ref {
				if got[file] != h {
					t.Errorf("%s: product %s differs from %s", name, file, refName)
				}
			}
		}
	}
}

// TestFormatsByteIdenticalOnMemBackend re-checks the identity matrix on the
// in-memory storage plane: decode-plane format handling must not depend on
// the backend.
func TestFormatsByteIdenticalOnMemBackend(t *testing.T) {
	ev := testEvent(t)
	var ref map[string]string
	for _, enc := range append(ingest.Names(), "mix") {
		dir := emitDir(t, ev, enc, synth.EmitOptions{Format: enc})
		opts := testOptions()
		opts.Storage = storage.BackendMem
		if _, err := Run(context.Background(), dir, FullParallel, opts); err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		got := ingestProductHashes(t, dir)
		if ref == nil {
			if len(got) == 0 {
				t.Fatalf("%s: no products", enc)
			}
			ref = got
			continue
		}
		for file, h := range ref {
			if got[file] != h {
				t.Errorf("%s (mem backend): product %s differs", enc, file)
			}
		}
	}
}

// TestFormatOverride pins -format behaviour: a valid override decodes, an
// unknown registry key fails the run up front, and an override that does not
// match the bytes quarantines the record instead of poisoning the event.
func TestFormatOverride(t *testing.T) {
	ev := testEvent(t)

	dir := emitDir(t, ev, "v1a", synth.EmitOptions{Format: "v1a"})
	opts := testOptions()
	opts.Format = "v1a"
	res, err := Run(context.Background(), dir, FullParallel, opts)
	if err != nil {
		t.Fatalf("forced v1a: %v", err)
	}
	if len(res.Stations) != len(ev.Records) || len(res.Quarantined) != 0 {
		t.Fatalf("forced v1a: stations %v quarantined %v", res.Stations, res.Quarantined)
	}

	opts.Format = "seed-noise"
	if _, err := Run(context.Background(), dir, FullParallel, opts); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("unknown -format accepted: %v", err)
	}

	// Forcing csv onto v1a bytes: the magic does not sniff as csv and the
	// extension is wrong, so nothing is gathered at all.
	opts.Format = "csv"
	if _, err := Run(context.Background(), dir, FullParallel, opts); err == nil ||
		!strings.Contains(err.Error(), "no input record files") {
		t.Fatalf("csv override over v1a inputs: %v", err)
	}
}

// defectDir prepares a work directory with one defective record (station 0,
// encoded as V1A so every defect class is representable) among healthy
// native inputs.
func defectDir(t *testing.T, ev seismic.Event, kind string) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "work")
	if err := PrepareWorkDir(dir, ev); err != nil {
		t.Fatal(err)
	}
	st := ev.Records[0].Station
	if err := os.Remove(filepath.Join(dir, smformat.V1FileName(st))); err != nil {
		t.Fatal(err)
	}
	irec, err := synth.Corrupt(ingest.FromV1(smformat.FromRecord(ev.Records[0])), kind, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	f, err := ingest.ByName("v1a")
	if err != nil {
		t.Fatal(err)
	}
	if err := ingest.WriteFile(storage.Disk(), filepath.Join(dir, st+f.Extension()), f, irec); err != nil {
		t.Fatal(err)
	}
	return dir
}

// stripFinish truncates the run journal's trailing record (the finish
// acknowledgment), turning a completed run's journal into a crashed-looking
// one that -resume will adopt.
func stripFinish(t *testing.T, dir string) {
	t.Helper()
	p := filepath.Join(dir, RunJournalDir, runJournalFile)
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	i := bytes.LastIndexByte(trimmed, '\n')
	if i < 0 {
		t.Fatalf("journal %s has no record to strip", p)
	}
	if err := os.WriteFile(p, data[:i+1], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestQCGateQuarantinesTypedReasons drives every QC defect class through
// the full pipeline — materialized and streamed — and asserts each lands in
// quarantine with exactly its taxonomy reason, then proves the verdict (and
// its structured reason text) survives a -resume replay.
func TestQCGateQuarantinesTypedReasons(t *testing.T) {
	defects := []struct {
		kind     string // synth.Corrupt defect
		check    string // ingest.CheckName of the expected reason
		sentinel error
	}{
		{"clip", "clip", ingest.ErrClipped},
		{"gap", "gap", ingest.ErrGap},
		{"short", "duration", ingest.ErrDurationTooShort},
		{"dt", "dt", ingest.ErrDtMismatch},
		{"length", "length", ingest.ErrComponentLengthMismatch},
		{"missing", "missing", ingest.ErrMissingComponent},
	}
	ev := testEvent(t)
	for _, d := range defects {
		for _, streaming := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/stream=%v", d.kind, streaming), func(t *testing.T) {
				dir := defectDir(t, ev, d.kind)
				opts := testOptions()
				opts.QC = ingest.DefaultQC()
				opts.Streaming = streaming
				opts.Journal = true
				res, err := Run(context.Background(), dir, Pipelined, opts)
				if err != nil {
					t.Fatalf("run failed instead of degrading: %v", err)
				}
				if len(res.Quarantined) != 1 {
					t.Fatalf("%d records quarantined, want 1 (%+v)", len(res.Quarantined), res.Quarantined)
				}
				q := res.Quarantined[0]
				if q.Station != ev.Records[0].Station || q.Process != PSeparateComponents {
					t.Errorf("quarantined %s at process #%d, want %s at #%d",
						q.Station, q.Process, ev.Records[0].Station, PSeparateComponents)
				}
				if !errors.Is(q.Err, d.sentinel) || !errors.Is(q.Err, ingest.ErrReject) {
					t.Errorf("reason %v does not wrap %v + ErrReject", q.Err, d.sentinel)
				}
				if got := ingest.CheckName(q.Err); got != d.check {
					t.Errorf("CheckName = %q, want %q", got, d.check)
				}
				if want := len(ev.Records) - 1; len(res.Stations) != want {
					t.Errorf("%d survivors, want %d", len(res.Stations), want)
				}

				// Resume replay: make the journal look crashed and re-run.
				// The verdict must be inherited — not re-earned — with its
				// structured reason text intact.
				stripFinish(t, dir)
				opts.Resume = true
				res, err = Run(context.Background(), dir, Pipelined, opts)
				if err != nil {
					t.Fatalf("resume failed: %v", err)
				}
				if !res.Resume.Resumed || res.Resume.QuarantinesReplayed != 1 {
					t.Fatalf("resume stats %+v, want 1 replayed verdict", res.Resume)
				}
				if len(res.Quarantined) != 1 {
					t.Fatalf("after resume: %d quarantined, want 1", len(res.Quarantined))
				}
				q = res.Quarantined[0]
				if q.Station != ev.Records[0].Station {
					t.Errorf("after resume: quarantined %s, want %s", q.Station, ev.Records[0].Station)
				}
				if !strings.Contains(q.Err.Error(), "qc/"+d.check) {
					t.Errorf("replayed reason %q lost its qc/%s tag", q.Err, d.check)
				}
			})
		}
	}
}

// TestAzimuthRotationMatchesNativeProducts: a record encoded in a rotated
// sensor frame with its azimuth declared must produce the same products as
// the same motion encoded north-aligned — rotation is applied at decode,
// before anything downstream sees the samples.
func TestAzimuthRotationMatchesNativeProducts(t *testing.T) {
	ev := testEvent(t)

	refDir := emitDir(t, ev, "aligned", synth.EmitOptions{})
	if _, err := Run(context.Background(), refDir, FullParallel, testOptions()); err != nil {
		t.Fatal(err)
	}
	ref := ingestProductHashes(t, refDir)

	dir := filepath.Join(t.TempDir(), "rotated")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := ingest.ByName("v1a")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for _, rec := range ev.Records {
		irec, err := synth.Corrupt(ingest.FromV1(smformat.FromRecord(rec)), "azimuth", rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := ingest.WriteFile(storage.Disk(), filepath.Join(dir, rec.Station+f.Extension()), f, irec); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(context.Background(), dir, FullParallel, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 0 {
		t.Fatalf("rotated records quarantined: %+v", res.Quarantined)
	}
	// Rotate-then-unrotate is floating point, so byte-identity with the
	// aligned reference is not promised (that guarantee is azimuth-0 only);
	// what must hold is the full product set materializing, plus numerical
	// agreement of the decoded motion.
	got := ingestProductHashes(t, dir)
	if len(got) != len(ref) {
		t.Fatalf("%d products, want %d", len(got), len(ref))
	}
	for file := range ref {
		if _, ok := got[file]; !ok {
			t.Errorf("rotated run missing product %s", file)
		}
	}
	rec := ev.Records[0]
	v1, _, err := ingest.ReadRecord(storage.Disk(),
		filepath.Join(dir, rec.Station+f.Extension()), nil, ingest.DefaultQC())
	if err != nil {
		t.Fatal(err)
	}
	for ci := range v1.Accel {
		want := rec.Accel[ci].Data
		if len(v1.Accel[ci]) != len(want) {
			t.Fatalf("component %d: %d samples, want %d", ci, len(v1.Accel[ci]), len(want))
		}
		for i := range want {
			if diff := v1.Accel[ci][i] - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("component %d sample %d: rotated-back %g vs original %g", ci, i, v1.Accel[ci][i], want[i])
			}
		}
	}
}
