package ingest

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"accelproc/internal/smformat"
)

// The decode fuzzers feed arbitrary bytes to the foreign-format parsers
// (the native V1 parser has its own fuzzer in internal/smformat) and hold
// the ingest plane to three invariants on every input:
//
//  1. Decode never panics, and a decode error always wraps
//     smformat.ErrFormat — the pipeline's retry classifier keys on that
//     sentinel to quarantine instead of retrying.
//  2. The QC gate never panics on a decoder-accepted record, and a gate
//     verdict always wraps ErrReject.
//  3. Encode∘Decode is a fixed point: re-encoding a decoded record must
//     produce bytes the format sniffs and decodes again, and one
//     canonicalization step at most (encoders drop sample-less components,
//     so the FIRST re-decode may differ from the raw decode; the second
//     never differs from the first).  Records with no samples at all are
//     exempt — a component-free record has no rows/blocks to frame.

// fuzzSeeds returns corpus seeds for one format: a clean record, the
// azimuth and structural-defect variants, and damaged encodings.
func fuzzSeeds(f *testing.F, format Format) {
	add := func(rec Record) []byte {
		var buf bytes.Buffer
		if err := format.Encode(&buf, rec); err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf.Bytes())
		return buf.Bytes()
	}
	clean := add(testRecord("SEED01"))

	rot := testRecord("SEED02")
	rot.Azimuth = 33.75
	add(rot)

	for _, mutate := range []func(*Record){
		func(r *Record) { r.Accel[2] = nil; r.DT[2] = 0 }, // missing component
		func(r *Record) { r.Accel[1] = r.Accel[1][:10] },  // length mismatch
		func(r *Record) { r.DT[1] = 0.01 },                // dt mismatch
		func(r *Record) { r.Station = "" },                // blank station
		func(r *Record) { r.Accel[0][3] = math.Inf(1) },   // non-finite sample
		func(r *Record) { r.Accel[0] = r.Accel[0][:1] },   // near-empty column
	} {
		rec := testRecord("SEED03")
		mutate(&rec)
		add(rec)
	}

	// Damaged encodings: truncations at awkward offsets and a flipped byte.
	for _, cut := range []int{1, len(clean) / 3, len(clean) - 2} {
		if cut > 0 && cut < len(clean) {
			f.Add(clean[:cut])
		}
	}
	flipped := bytes.Clone(clean)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte("not a record at all\n"))
}

// bitEqualRecords compares two records sample-for-sample on float64 bit
// patterns (so NaN payloads and signed zeros count), treating nil and
// empty components as equal.
func bitEqualRecords(a, b Record) bool {
	if a.Station != b.Station || math.Float64bits(a.Azimuth) != math.Float64bits(b.Azimuth) {
		return false
	}
	for ci := range a.Accel {
		if math.Float64bits(a.DT[ci]) != math.Float64bits(b.DT[ci]) {
			return false
		}
		if len(a.Accel[ci]) != len(b.Accel[ci]) {
			return false
		}
		for i := range a.Accel[ci] {
			if math.Float64bits(a.Accel[ci][i]) != math.Float64bits(b.Accel[ci][i]) {
				return false
			}
		}
	}
	return true
}

func fuzzDecode(f *testing.F, name string) {
	format, err := ByName(name)
	if err != nil {
		f.Fatal(err)
	}
	fuzzSeeds(f, format)
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := format.Decode(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, smformat.ErrFormat) {
				t.Fatalf("decode error does not wrap smformat.ErrFormat: %v", err)
			}
			return
		}
		if qcErr := DefaultQC().Check(rec); qcErr != nil && !errors.Is(qcErr, ErrReject) {
			t.Fatalf("QC verdict does not wrap ErrReject: %v", qcErr)
		}
		if rec.NPTS() == 0 {
			return
		}
		var enc1 bytes.Buffer
		if err := format.Encode(&enc1, rec); err != nil {
			t.Fatalf("re-encode of decoded record: %v", err)
		}
		prefix := enc1.Bytes()
		if len(prefix) > SniffLen {
			prefix = prefix[:SniffLen]
		}
		if !format.Sniff(prefix) {
			t.Fatalf("%s does not sniff its own re-encode", name)
		}
		rec2, err := format.Decode(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decode of re-encoded record: %v\nencoded:\n%s", err, enc1.Bytes())
		}
		var enc2 bytes.Buffer
		if err := format.Encode(&enc2, rec2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		rec3, err := format.Decode(bytes.NewReader(enc2.Bytes()))
		if err != nil {
			t.Fatalf("second re-decode: %v", err)
		}
		if !bitEqualRecords(rec2, rec3) {
			t.Fatalf("encode/decode is not a fixed point:\nrec2 = %+v\nrec3 = %+v", rec2, rec3)
		}
	})
}

func FuzzV1ADecode(f *testing.F) { fuzzDecode(f, "v1a") }

func FuzzCSVDecode(f *testing.F) { fuzzDecode(f, "csv") }
