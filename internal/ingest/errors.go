package ingest

import (
	"errors"
	"fmt"

	"accelproc/internal/smformat"
)

// ErrReject is the root sentinel for every record the ingest plane refuses
// to pass downstream — QC failures and undecodable files alike.  The
// pipeline's retry classifier treats anything wrapping ErrReject as
// permanent: the same bytes can never succeed, so the record goes straight
// to quarantine instead of burning retry attempts.
var ErrReject = errors.New("ingest: record rejected")

// The QC taxonomy: one sentinel per defect class, machine-matchable with
// errors.Is through the retry/quarantine plane.  Each quarantined record's
// reason carries its class's stable short name (see CheckName) so the
// verdict stays machine-readable even after a journal replay rehydrates it
// from text.
var (
	ErrDurationTooShort        = errors.New("ingest: record duration too short")
	ErrComponentLengthMismatch = errors.New("ingest: component lengths mismatch")
	ErrDtMismatch              = errors.New("ingest: sample-interval mismatch")
	ErrMissingComponent        = errors.New("ingest: missing component")
	ErrClipped                 = errors.New("ingest: clipped trace")
	ErrGap                     = errors.New("ingest: gap in trace")
)

// taxonomy maps each sentinel to its stable machine name, used in
// quarantine reasons ("qc/clip") and metrics labels.
var taxonomy = []struct {
	err  error
	name string
}{
	{ErrDurationTooShort, "duration"},
	{ErrComponentLengthMismatch, "length"},
	{ErrDtMismatch, "dt"},
	{ErrMissingComponent, "missing"},
	{ErrClipped, "clip"},
	{ErrGap, "gap"},
}

// CheckName returns the stable short name of the taxonomy sentinel err
// wraps ("duration", "length", "dt", "missing", "clip", "gap"), or "" when
// err is not a QC rejection.
func CheckName(err error) string {
	for _, t := range taxonomy {
		if errors.Is(err, t.err) {
			return t.name
		}
	}
	return ""
}

// QCError is one structured QC rejection: which station, which check, and
// what was measured.  It unwraps to both the defect-class sentinel and
// ErrReject, so errors.Is(err, ErrClipped) and errors.Is(err, ErrReject)
// both hold.
type QCError struct {
	Station string
	Check   string // stable machine name, see CheckName
	Detail  string // what was measured, human-readable
	Reason  error  // the taxonomy sentinel
}

func (e *QCError) Error() string {
	return fmt.Sprintf("ingest: qc/%s: station %s: %s", e.Check, e.Station, e.Detail)
}

func (e *QCError) Unwrap() []error { return []error{e.Reason, ErrReject} }

// qcErrf builds a QCError for the given sentinel.
func qcErrf(station string, reason error, format string, args ...any) error {
	return &QCError{
		Station: station,
		Check:   CheckName(reason),
		Detail:  fmt.Sprintf(format, args...),
		Reason:  reason,
	}
}

// DecodeError is a structural parse failure of a record file in a
// registered format.  It unwraps to both smformat.ErrFormat (it is a
// malformed file) and ErrReject (it is permanent and quarantine-bound).
type DecodeError struct {
	Format string // registry key of the format that failed
	Line   int    // 1-based line of text formats, 0 for binary or unknown
	Msg    string
}

func (e *DecodeError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("ingest: %s: line %d: %s", e.Format, e.Line, e.Msg)
	}
	return fmt.Sprintf("ingest: %s: %s", e.Format, e.Msg)
}

func (e *DecodeError) Unwrap() []error { return []error{smformat.ErrFormat, ErrReject} }

// decodeErrf builds a DecodeError with a formatted message.
func decodeErrf(format string, line int, msg string, args ...any) error {
	return &DecodeError{Format: format, Line: line, Msg: fmt.Sprintf(msg, args...)}
}

// UnknownFormatError reports a file no registered format claims.
type UnknownFormatError struct {
	Name string
}

func (e *UnknownFormatError) Error() string {
	return fmt.Sprintf("ingest: %s: no registered format matches (magic or extension)", e.Name)
}

func (e *UnknownFormatError) Unwrap() []error { return []error{smformat.ErrFormat, ErrReject} }
