package ingest

import (
	"io"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// ChunkHeader is the up-front metadata of a chunked record read.
type ChunkHeader struct {
	Station string
	DT      float64
	NPTS    int
}

// ChunkReader serves one decoded record incrementally: headers first, then
// each component's samples in caller-sized chunks, components in canonical
// order.  It mirrors the native smformat.V1ChunkReader contract so the
// streaming execution plane consumes every format through one shape.
type ChunkReader interface {
	Header() ChunkHeader
	// NextComponent advances to the next component block, returning its
	// identity; io.EOF after the last.
	NextComponent() (seismic.Component, error)
	// Read fills buf with up to len(buf) samples of the current
	// component; (0, io.EOF) at the component's end.
	Read(buf []float64) (int, error)
	Close() error
}

// bufferedChunks serves a fully materialized record through the
// ChunkReader shape — the fallback for formats without an incremental
// parse, and for any record that needed rotation or sample-scanning QC
// (both require the whole payload before the first chunk can be correct).
type bufferedChunks struct {
	hdr     ChunkHeader
	accel   [3][]float64
	compIdx int // components started
	pos     int // samples served of the current component
}

// newBufferedChunks wraps a post-gate record (equal lengths and sample
// intervals guaranteed).
func newBufferedChunks(rec Record) *bufferedChunks {
	return &bufferedChunks{
		hdr:   ChunkHeader{Station: rec.Station, DT: rec.DT[0], NPTS: len(rec.Accel[0])},
		accel: rec.Accel,
	}
}

func (b *bufferedChunks) Header() ChunkHeader { return b.hdr }

func (b *bufferedChunks) NextComponent() (seismic.Component, error) {
	if b.compIdx >= len(seismic.Components) {
		return 0, io.EOF
	}
	comp := seismic.Components[b.compIdx]
	b.compIdx++
	b.pos = 0
	return comp, nil
}

func (b *bufferedChunks) Read(buf []float64) (int, error) {
	if b.compIdx == 0 {
		return 0, io.EOF
	}
	data := b.accel[b.compIdx-1]
	if b.pos >= len(data) {
		return 0, io.EOF
	}
	n := copy(buf, data[b.pos:])
	b.pos += n
	return n, nil
}

func (b *bufferedChunks) Close() error { return nil }

// materializedChunks implements DecodeChunked for formats without an
// incremental parse: decode the whole record, verify it is structurally
// chunkable (components present, equal lengths and sample intervals),
// rotate if the sensor declared an azimuth, and serve from memory.
func materializedChunks(f Format, fsys smformat.StreamFS, path string) (ChunkReader, error) {
	rc, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	rec, err := f.Decode(rc)
	if cerr := rc.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if err := (QCConfig{}).Check(rec); err != nil {
		return nil, err
	}
	if rec, err = rotate(rec); err != nil {
		return nil, err
	}
	return newBufferedChunks(rec), nil
}
