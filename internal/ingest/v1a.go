package ingest

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// v1aFormat is a GeoNet-V1A-style fixed-width text format: a magic line,
// fixed-width "KEY     value" headers, then one block per recorded
// component, each with its own DT and NPTS headers followed by the samples
// in fixed 24-character cells, eight per line.  Unlike the native V1 it
// carries a sensor azimuth and per-component headers, so it can represent
// rotated sensors and every structural QC defect (missing components,
// mismatched lengths, disagreeing sample intervals).  Values round-trip at
// full float64 precision.
type v1aFormat struct{}

// v1aMagic is the first line of every V1A file.
const v1aMagic = "V1A UNCORRECTED ACCELEROGRAM"

const (
	v1aKeyWidth  = 8  // header key field width
	v1aCellWidth = 24 // sample cell width ('e'/17 floats are ≤ 24 chars)
	v1aPerLine   = 8  // sample cells per line
)

func (v1aFormat) Name() string      { return "v1a" }
func (v1aFormat) Extension() string { return ".v1a" }

func (v1aFormat) Sniff(prefix []byte) bool { return hasMagicLine(prefix, v1aMagic) }

// v1aHeader writes one fixed-width header line.
func v1aHeader(w *bufio.Writer, key, value string) error {
	_, err := fmt.Fprintf(w, "%-*s%s\n", v1aKeyWidth, key, value)
	return err
}

func v1aFloat(v float64) string { return strconv.FormatFloat(v, 'e', 17, 64) }

func (v1aFormat) Encode(w io.Writer, rec Record) error {
	bw := bufio.NewWriter(w)
	err := func() error {
		if _, err := fmt.Fprintln(bw, v1aMagic); err != nil {
			return err
		}
		if err := v1aHeader(bw, "STATION", rec.Station); err != nil {
			return err
		}
		if err := v1aHeader(bw, "AZIMUTH", v1aFloat(rec.Azimuth)); err != nil {
			return err
		}
		ncomp := 0
		for _, a := range rec.Accel {
			if len(a) > 0 {
				ncomp++
			}
		}
		if err := v1aHeader(bw, "NCOMP", strconv.Itoa(ncomp)); err != nil {
			return err
		}
		for ci, comp := range seismic.Components {
			if len(rec.Accel[ci]) == 0 {
				continue
			}
			if err := v1aHeader(bw, "COMP", comp.String()); err != nil {
				return err
			}
			if err := v1aHeader(bw, "DT", v1aFloat(rec.DT[ci])); err != nil {
				return err
			}
			if err := v1aHeader(bw, "NPTS", strconv.Itoa(len(rec.Accel[ci]))); err != nil {
				return err
			}
			for i, v := range rec.Accel[ci] {
				if _, err := fmt.Fprintf(bw, "%*s", v1aCellWidth, v1aFloat(v)); err != nil {
					return err
				}
				if (i+1)%v1aPerLine == 0 || i == len(rec.Accel[ci])-1 {
					if err := bw.WriteByte('\n'); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	return bw.Flush()
}

// v1aScanner tracks line numbers over a fixed-width V1A body.
type v1aScanner struct {
	sc   *bufio.Scanner
	line int
}

func (s *v1aScanner) next() (string, error) {
	if !s.sc.Scan() {
		if err := s.sc.Err(); err != nil {
			return "", err
		}
		return "", decodeErrf("v1a", s.line+1, "unexpected end of file")
	}
	s.line++
	return s.sc.Text(), nil
}

// header reads one fixed-width header line and requires the given key.
// The value may be empty ("STATION " with nothing after the key field is a
// record whose station name is blank — the QC gate's verdict to make, not
// a parse error), so a line as short as the key field itself is accepted.
func (s *v1aScanner) header(key string) (string, error) {
	text, err := s.next()
	if err != nil {
		return "", err
	}
	keyField, value := text, ""
	if len(text) > v1aKeyWidth {
		keyField, value = text[:v1aKeyWidth], strings.TrimSpace(text[v1aKeyWidth:])
	}
	if strings.TrimSpace(keyField) != key {
		return "", decodeErrf("v1a", s.line, "got %q, want %q header", text, key)
	}
	return value, nil
}

func (s *v1aScanner) headerInt(key string) (int, error) {
	v, err := s.header(key)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, decodeErrf("v1a", s.line, "%s: bad integer %q", key, v)
	}
	return n, nil
}

func (s *v1aScanner) headerFloat(key string) (float64, error) {
	v, err := s.header(key)
	if err != nil {
		return 0, err
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, decodeErrf("v1a", s.line, "%s: bad number %q", key, v)
	}
	return x, nil
}

// values reads npts fixed-width sample cells.  The pre-allocation is
// capped so a hostile NPTS header cannot reserve gigabytes up front.
func (s *v1aScanner) values(npts int) ([]float64, error) {
	capHint := npts
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	out := make([]float64, 0, capHint)
	for len(out) < npts {
		text, err := s.next()
		if err != nil {
			return nil, err
		}
		for pos := 0; pos < len(text); pos += v1aCellWidth {
			end := pos + v1aCellWidth
			if end > len(text) {
				end = len(text)
			}
			cell := strings.TrimSpace(text[pos:end])
			if cell == "" {
				return nil, decodeErrf("v1a", s.line, "empty sample cell at column %d", pos)
			}
			x, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, decodeErrf("v1a", s.line, "bad sample %q: %v", cell, err)
			}
			if len(out) >= npts {
				return nil, decodeErrf("v1a", s.line, "more than NPTS %d samples in block", npts)
			}
			out = append(out, x)
		}
	}
	return out, nil
}

func (v1aFormat) Decode(r io.Reader) (Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	s := &v1aScanner{sc: sc}
	first, err := s.next()
	if err != nil {
		return Record{}, err
	}
	if first != v1aMagic {
		return Record{}, decodeErrf("v1a", 1, "not a V1A file (missing %q)", v1aMagic)
	}
	var rec Record
	if rec.Station, err = s.header("STATION"); err != nil {
		return Record{}, err
	}
	if rec.Azimuth, err = s.headerFloat("AZIMUTH"); err != nil {
		return Record{}, err
	}
	ncomp, err := s.headerInt("NCOMP")
	if err != nil {
		return Record{}, err
	}
	if ncomp < 0 || ncomp > len(seismic.Components) {
		return Record{}, decodeErrf("v1a", s.line, "NCOMP %d outside [0, %d]", ncomp, len(seismic.Components))
	}
	for b := 0; b < ncomp; b++ {
		name, err := s.header("COMP")
		if err != nil {
			return Record{}, err
		}
		comp, err := seismic.ParseComponent(name)
		if err != nil {
			return Record{}, decodeErrf("v1a", s.line, "unknown component %q", name)
		}
		if len(rec.Accel[comp]) != 0 {
			return Record{}, decodeErrf("v1a", s.line, "duplicate %s block", comp)
		}
		if rec.DT[comp], err = s.headerFloat("DT"); err != nil {
			return Record{}, err
		}
		npts, err := s.headerInt("NPTS")
		if err != nil {
			return Record{}, err
		}
		if npts <= 0 {
			return Record{}, decodeErrf("v1a", s.line, "NPTS %d must be positive", npts)
		}
		if rec.Accel[comp], err = s.values(npts); err != nil {
			return Record{}, err
		}
	}
	return rec, nil
}

// DecodeChunked materializes the record: the per-component headers sit
// between the payload blocks, so the streaming plane buffers V1A input
// (outputs still stream).
func (f v1aFormat) DecodeChunked(fsys smformat.StreamFS, path string) (ChunkReader, error) {
	return materializedChunks(f, fsys, path)
}
