package ingest

import (
	"fmt"

	"accelproc/internal/seismic"
)

// QCConfig parameterizes the record sanity gate.  The structural checks —
// all three components present, equal lengths, one positive agreed sample
// interval — always run: the pipeline cannot process a record that fails
// them.  The threshold checks are individually disabled at their zero
// value, so the zero QCConfig is the permissive structural-only gate.
type QCConfig struct {
	// MinDuration rejects records spanning fewer seconds (ErrDurationTooShort).
	// 0 disables.
	MinDuration float64
	// ClipRun rejects a component with at least this many consecutive
	// samples pegged at the clip level (ErrClipped).  0 disables.
	ClipRun int
	// ClipLevel is the absolute amplitude (gal) treated as the clip rail.
	// 0 means "the component's own absolute maximum" — the usual case,
	// since a clipped sensor reports a flat run at its own extreme.
	ClipLevel float64
	// GapRun rejects a component with at least this many consecutive
	// identical samples anywhere below the clip rail (ErrGap) — a
	// dead-channel or telemetry-dropout signature.  0 disables.
	GapRun int
}

// DefaultQC is the threshold set the -qc CLI flag enables: tuned so clean
// synthetic records (noise floors never repeat a sample) pass untouched.
func DefaultQC() QCConfig {
	return QCConfig{MinDuration: 1, ClipRun: 8, GapRun: 64}
}

// enabled reports whether any threshold check is on.
func (c QCConfig) enabled() bool {
	return c.MinDuration > 0 || c.ClipRun > 0 || c.GapRun > 0
}

// sampleChecks reports whether the gate needs the sample payload (clip and
// gap scans); the header-only checks can run before any sample is read.
func (c QCConfig) sampleChecks() bool { return c.ClipRun > 0 || c.GapRun > 0 }

// String is the stable serialization folded into action-cache keys and the
// run journal's parameter digest, so changing the gate invalidates cached
// decode results and blocks cross-configuration resumes.
func (c QCConfig) String() string {
	return fmt.Sprintf("qc{dur=%g clip=%d@%g gap=%d}", c.MinDuration, c.ClipRun, c.ClipLevel, c.GapRun)
}

// Check runs the QC gate over a decoded record, returning nil or a
// *QCError wrapping the defect class sentinel.  Checks run structural
// first, then thresholds, and the first failure wins — so each synthetic
// defect maps to one deterministic reason.
func (c QCConfig) Check(rec Record) error {
	// Structural: every component present.
	for ci, comp := range seismic.Components {
		if len(rec.Accel[ci]) == 0 {
			return qcErrf(rec.Station, ErrMissingComponent, "no %s samples", comp)
		}
	}
	// Structural: equal component lengths.
	n := len(rec.Accel[0])
	for ci := 1; ci < len(rec.Accel); ci++ {
		if len(rec.Accel[ci]) != n {
			return qcErrf(rec.Station, ErrComponentLengthMismatch,
				"%s has %d samples, %s has %d",
				seismic.Components[0], n, seismic.Components[ci], len(rec.Accel[ci]))
		}
	}
	// Structural: one positive agreed sample interval.
	if err := c.checkDT(rec); err != nil {
		return err
	}
	if c.MinDuration > 0 {
		if dur := float64(n-1) * rec.DT[0]; dur < c.MinDuration {
			return qcErrf(rec.Station, ErrDurationTooShort,
				"duration %.3fs < minimum %.3fs", dur, c.MinDuration)
		}
	}
	if c.sampleChecks() {
		for ci, comp := range seismic.Components {
			if err := c.checkSamples(rec.Station, comp, rec.Accel[ci]); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkDT validates the per-component sample intervals.
func (c QCConfig) checkDT(rec Record) error {
	for ci, comp := range seismic.Components {
		if rec.DT[ci] <= 0 {
			return qcErrf(rec.Station, ErrDtMismatch,
				"%s sample interval %g must be positive", comp, rec.DT[ci])
		}
	}
	for ci := 1; ci < len(rec.DT); ci++ {
		if rec.DT[ci] != rec.DT[0] {
			return qcErrf(rec.Station, ErrDtMismatch,
				"%s dt %g != %s dt %g",
				seismic.Components[ci], rec.DT[ci], seismic.Components[0], rec.DT[0])
		}
	}
	return nil
}

// checkHeader runs the header-only threshold checks (duration) from a
// chunked reader's header, before any sample has been read.
func (c QCConfig) checkHeader(station string, dt float64, npts int) error {
	if c.MinDuration > 0 {
		if dur := float64(npts-1) * dt; dur < c.MinDuration {
			return qcErrf(station, ErrDurationTooShort,
				"duration %.3fs < minimum %.3fs", dur, c.MinDuration)
		}
	}
	return nil
}

// checkSamples scans one component for clip rails and gaps.
func (c QCConfig) checkSamples(station string, comp seismic.Component, data []float64) error {
	rail := c.ClipLevel
	if c.ClipRun > 0 && rail == 0 {
		for _, v := range data {
			if a := abs(v); a > rail {
				rail = a
			}
		}
	}
	run := 1
	for i := 1; i <= len(data); i++ {
		if i < len(data) && data[i] == data[i-1] {
			run++
			continue
		}
		v := data[i-1]
		if c.ClipRun > 0 && run >= c.ClipRun && rail > 0 && abs(v) >= rail {
			return qcErrf(station, ErrClipped,
				"%s pegged at %g gal for %d samples", comp, v, run)
		}
		if c.GapRun > 0 && run >= c.GapRun {
			return qcErrf(station, ErrGap,
				"%s flat at %g gal for %d samples", comp, v, run)
		}
		run = 1
	}
	return nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
