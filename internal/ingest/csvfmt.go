package ingest

import (
	"bufio"
	"io"
	"strconv"
	"strings"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// csvFormat is a comma-separated text format: a magic comment line,
// station/azimuth/dt metadata comments, a column-name header row naming
// the recorded components, then one row per time step with one full-
// precision sample per column.  A shorter column trails off into empty
// cells, so mismatched component lengths are representable (and rejected
// by the QC gate, not the parser).  Values round-trip at full float64
// precision.
type csvFormat struct{}

// csvMagic is the first line of every ingest CSV file; it doubles as the
// sniffing magic, since bare CSV has none of its own.
const csvMagic = "# accelproc csv v1"

func (csvFormat) Name() string      { return "csv" }
func (csvFormat) Extension() string { return ".csv" }

func (csvFormat) Sniff(prefix []byte) bool { return hasMagicLine(prefix, csvMagic) }

func csvFloat(v float64) string { return strconv.FormatFloat(v, 'e', 17, 64) }

func (csvFormat) Encode(w io.Writer, rec Record) error {
	bw := bufio.NewWriter(w)
	var cols []int // component indices with samples, canonical order
	for ci := range seismic.Components {
		if len(rec.Accel[ci]) > 0 {
			cols = append(cols, ci)
		}
	}
	write := func(s string) error {
		_, err := bw.WriteString(s)
		return err
	}
	err := func() error {
		if err := write(csvMagic + "\n"); err != nil {
			return err
		}
		if err := write("# station: " + rec.Station + "\n"); err != nil {
			return err
		}
		if err := write("# azimuth: " + csvFloat(rec.Azimuth) + "\n"); err != nil {
			return err
		}
		parts := make([]string, len(cols))
		for i, ci := range cols {
			parts[i] = csvFloat(rec.DT[ci])
		}
		if err := write("# dt: " + strings.Join(parts, ",") + "\n"); err != nil {
			return err
		}
		for i, ci := range cols {
			parts[i] = seismic.Components[ci].String()
		}
		if err := write(strings.Join(parts, ",") + "\n"); err != nil {
			return err
		}
		rows := 0
		for _, ci := range cols {
			if n := len(rec.Accel[ci]); n > rows {
				rows = n
			}
		}
		for row := 0; row < rows; row++ {
			for i, ci := range cols {
				if i > 0 {
					if err := bw.WriteByte(','); err != nil {
						return err
					}
				}
				if row < len(rec.Accel[ci]) {
					if err := write(csvFloat(rec.Accel[ci][row])); err != nil {
						return err
					}
				}
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
		return nil
	}()
	if err != nil {
		return err
	}
	return bw.Flush()
}

// csvMeta parses a "# key: value" comment line.
func csvMeta(line, key string) (string, bool) {
	rest, ok := strings.CutPrefix(line, "# "+key+": ")
	return strings.TrimSpace(rest), ok
}

func (csvFormat) Decode(r io.Reader) (Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	next := func() (string, error) {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return "", err
			}
			return "", io.EOF
		}
		line++
		return sc.Text(), nil
	}
	first, err := next()
	if err != nil || first != csvMagic {
		return Record{}, decodeErrf("csv", 1, "not an ingest CSV file (missing %q)", csvMagic)
	}
	var rec Record
	station, err := next()
	if err != nil {
		return Record{}, decodeErrf("csv", line+1, "unexpected end of file, want station comment")
	}
	v, ok := csvMeta(station, "station")
	if !ok {
		return Record{}, decodeErrf("csv", line, "got %q, want %q comment", station, "# station: ...")
	}
	rec.Station = v
	azline, err := next()
	if err != nil {
		return Record{}, decodeErrf("csv", line+1, "unexpected end of file, want azimuth comment")
	}
	if v, ok = csvMeta(azline, "azimuth"); !ok {
		return Record{}, decodeErrf("csv", line, "got %q, want %q comment", azline, "# azimuth: ...")
	}
	if rec.Azimuth, err = strconv.ParseFloat(v, 64); err != nil {
		return Record{}, decodeErrf("csv", line, "bad azimuth %q: %v", v, err)
	}
	dtline, err := next()
	if err != nil {
		return Record{}, decodeErrf("csv", line+1, "unexpected end of file, want dt comment")
	}
	if v, ok = csvMeta(dtline, "dt"); !ok {
		return Record{}, decodeErrf("csv", line, "got %q, want %q comment", dtline, "# dt: ...")
	}
	dts := strings.Split(v, ",")
	header, err := next()
	if err != nil {
		return Record{}, decodeErrf("csv", line+1, "unexpected end of file, want column header")
	}
	names := strings.Split(header, ",")
	if len(names) != len(dts) {
		return Record{}, decodeErrf("csv", line, "%d columns but %d dt values", len(names), len(dts))
	}
	if len(names) > len(seismic.Components) {
		return Record{}, decodeErrf("csv", line, "%d columns, want at most %d", len(names), len(seismic.Components))
	}
	cols := make([]int, len(names))
	for i, name := range names {
		comp, err := seismic.ParseComponent(name)
		if err != nil {
			return Record{}, decodeErrf("csv", line, "unknown component column %q", name)
		}
		ci := int(comp)
		if len(cols) > 0 {
			for _, prev := range cols[:i] {
				if prev == ci {
					return Record{}, decodeErrf("csv", line, "duplicate %s column", comp)
				}
			}
		}
		cols[i] = ci
		x, err := strconv.ParseFloat(strings.TrimSpace(dts[i]), 64)
		if err != nil {
			return Record{}, decodeErrf("csv", line, "bad dt %q: %v", dts[i], err)
		}
		rec.DT[ci] = x
	}
	for {
		row, err := next()
		if err != nil {
			break
		}
		cells := strings.Split(row, ",")
		if len(cells) != len(cols) {
			return Record{}, decodeErrf("csv", line, "%d cells in row, want %d", len(cells), len(cols))
		}
		for i, cell := range cells {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue // a shorter column's trailing padding
			}
			x, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return Record{}, decodeErrf("csv", line, "bad sample %q: %v", cell, err)
			}
			ci := cols[i]
			rec.Accel[ci] = append(rec.Accel[ci], x)
		}
	}
	return rec, nil
}

// DecodeChunked materializes the record: rows interleave the components,
// so per-component chunks require the whole table.
func (f csvFormat) DecodeChunked(fsys smformat.StreamFS, path string) (ChunkReader, error) {
	return materializedChunks(f, fsys, path)
}
