package ingest

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// testRecord builds a clean three-component record with awkward values
// (negatives, denormal-ish magnitudes, huge magnitudes) so round-trip
// equality is a real precision test.
func testRecord(station string) Record {
	rec := Record{Station: station, DT: [3]float64{0.005, 0.005, 0.005}}
	for ci := range rec.Accel {
		data := make([]float64, 23)
		for i := range data {
			data[i] = (float64(i)-11.25)*1.7e-13 + float64(ci+1)*3.1e4*float64(i%5)
		}
		rec.Accel[ci] = data
	}
	rec.Accel[1][7] = -9.80665e2
	rec.Accel[2][3] = 4.9406564584124654e-324 // smallest denormal
	return rec
}

func sameRecord(t *testing.T, want, got Record) {
	t.Helper()
	if got.Station != want.Station {
		t.Fatalf("station %q, want %q", got.Station, want.Station)
	}
	if got.Azimuth != want.Azimuth {
		t.Fatalf("azimuth %g, want %g", got.Azimuth, want.Azimuth)
	}
	for ci := range want.Accel {
		if len(want.Accel[ci]) == 0 {
			if len(got.Accel[ci]) != 0 {
				t.Fatalf("component %d: got %d samples, want none", ci, len(got.Accel[ci]))
			}
			continue
		}
		if got.DT[ci] != want.DT[ci] {
			t.Fatalf("component %d: dt %g, want %g", ci, got.DT[ci], want.DT[ci])
		}
		if len(got.Accel[ci]) != len(want.Accel[ci]) {
			t.Fatalf("component %d: %d samples, want %d", ci, len(got.Accel[ci]), len(want.Accel[ci]))
		}
		for i := range want.Accel[ci] {
			if got.Accel[ci][i] != want.Accel[ci][i] {
				t.Fatalf("component %d sample %d: %v, want %v (not bit-exact)",
					ci, i, got.Accel[ci][i], want.Accel[ci][i])
			}
		}
	}
}

// TestRoundTripAllFormats encodes the same record in every registered
// format and requires a bit-exact decode, plus that the format's own
// sniffer claims the bytes.
func TestRoundTripAllFormats(t *testing.T) {
	for _, f := range Formats() {
		t.Run(f.Name(), func(t *testing.T) {
			want := testRecord("SS01")
			var buf bytes.Buffer
			if err := f.Encode(&buf, want); err != nil {
				t.Fatalf("encode: %v", err)
			}
			raw := buf.Bytes()
			prefix := raw
			if len(prefix) > SniffLen {
				prefix = prefix[:SniffLen]
			}
			if !f.Sniff(prefix) {
				t.Fatalf("%s does not sniff its own output", f.Name())
			}
			got, err := f.Decode(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			sameRecord(t, want, got)
		})
	}
}

// TestRoundTripAzimuth checks the azimuth survives in every format that
// can carry one.
func TestRoundTripAzimuth(t *testing.T) {
	for _, name := range []string{"v1a", "mseed", "csv"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		want := testRecord("SS02")
		want.Azimuth = 33.75
		var buf bytes.Buffer
		if err := f.Encode(&buf, want); err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		got, err := f.Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		sameRecord(t, want, got)
	}
}

// TestRoundTripDefective checks the foreign formats can represent every
// structural QC defect class without the parser healing or rejecting it —
// the gate, not the decoder, must own those verdicts.
func TestRoundTripDefective(t *testing.T) {
	defects := map[string]func(*Record){
		"missing":  func(r *Record) { r.Accel[2] = nil; r.DT[2] = 0 },
		"length":   func(r *Record) { r.Accel[1] = r.Accel[1][:10] },
		"dt":       func(r *Record) { r.DT[1] = 0.01 },
		"short":    func(r *Record) {},
		"twoComps": func(r *Record) { r.Accel[0] = nil; r.DT[0] = 0 },
	}
	for _, name := range []string{"v1a", "mseed", "csv"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for defect, mutate := range defects {
			want := testRecord("SS03")
			mutate(&want)
			var buf bytes.Buffer
			if err := f.Encode(&buf, want); err != nil {
				t.Fatalf("%s/%s encode: %v", name, defect, err)
			}
			got, err := f.Decode(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("%s/%s decode: %v", name, defect, err)
			}
			sameRecord(t, want, got)
		}
	}
}

// TestNativeEncodeRejectsUnrepresentable: the native V1 cannot carry an
// azimuth or structural defects, and must say so instead of dropping them.
func TestNativeEncodeRejectsUnrepresentable(t *testing.T) {
	f, err := ByName("v1")
	if err != nil {
		t.Fatal(err)
	}
	rec := testRecord("SS04")
	rec.Azimuth = 10
	if err := f.Encode(&bytes.Buffer{}, rec); err == nil {
		t.Fatal("v1 encode accepted an azimuth")
	}
	rec = testRecord("SS04")
	rec.Accel[1] = rec.Accel[1][:5]
	if err := f.Encode(&bytes.Buffer{}, rec); err == nil {
		t.Fatal("v1 encode accepted mismatched lengths")
	}
}

// TestDetect covers the sniffing order: magic beats extension, extension
// catches magicless content, and unknown files are typed errors.
func TestDetect(t *testing.T) {
	// Magic beats a lying extension.
	var buf bytes.Buffer
	v1f, _ := ByName("v1")
	if err := v1f.Encode(&buf, testRecord("SS05")); err != nil {
		t.Fatal(err)
	}
	f, err := Detect("misnamed.csv", buf.Bytes()[:SniffLen])
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "v1" {
		t.Fatalf("magic did not beat extension: got %s, want v1", f.Name())
	}
	// Extension catches content with no recognizable magic.
	f, err = Detect("plain.v1a", []byte("NOT A MAGIC LINE\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "v1a" {
		t.Fatalf("extension fallback: got %s, want v1a", f.Name())
	}
	// Unknown both ways.
	_, err = Detect("mystery.dat", []byte("NOT A MAGIC LINE\n"))
	var unknown *UnknownFormatError
	if !errors.As(err, &unknown) {
		t.Fatalf("want UnknownFormatError, got %v", err)
	}
	if !errors.Is(err, ErrReject) || !errors.Is(err, smformat.ErrFormat) {
		t.Fatalf("UnknownFormatError must wrap ErrReject and smformat.ErrFormat: %v", err)
	}
}

// TestQCGate is the defect table: each synthetic defect lands on exactly
// its taxonomy sentinel, machine-matchable with errors.Is, with the stable
// check name in the message.
func TestQCGate(t *testing.T) {
	qc := QCConfig{MinDuration: 0.08, ClipRun: 4, GapRun: 8}
	cases := []struct {
		name   string
		mutate func(*Record)
		want   error
		check  string
	}{
		{"missing", func(r *Record) { r.Accel[2] = nil }, ErrMissingComponent, "missing"},
		{"length", func(r *Record) { r.Accel[1] = r.Accel[1][:10] }, ErrComponentLengthMismatch, "length"},
		{"dt", func(r *Record) { r.DT[1] = 0.01 }, ErrDtMismatch, "dt"},
		{"dtZero", func(r *Record) { r.DT[0] = 0 }, ErrDtMismatch, "dt"},
		{"duration", func(r *Record) {
			for ci := range r.Accel {
				r.Accel[ci] = r.Accel[ci][:4]
			}
		}, ErrDurationTooShort, "duration"},
		{"clip", func(r *Record) {
			peak := 1e6
			for i := 5; i < 10; i++ {
				r.Accel[0][i] = peak
			}
		}, ErrClipped, "clip"},
		{"gap", func(r *Record) {
			for i := 3; i < 14; i++ {
				r.Accel[1][i] = 0
			}
		}, ErrGap, "gap"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := testRecord("SS06")
			tc.mutate(&rec)
			err := qc.Check(rec)
			if err == nil {
				t.Fatalf("defect passed the gate")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if !errors.Is(err, ErrReject) {
				t.Fatalf("QC error must wrap ErrReject: %v", err)
			}
			if CheckName(err) != tc.check {
				t.Fatalf("CheckName = %q, want %q", CheckName(err), tc.check)
			}
			if !strings.Contains(err.Error(), "qc/"+tc.check) {
				t.Fatalf("message %q missing qc/%s token", err.Error(), tc.check)
			}
		})
	}
	// And the clean record passes.
	if err := qc.Check(testRecord("SS06")); err != nil {
		t.Fatalf("clean record rejected: %v", err)
	}
}

// TestZeroQCIsStructuralOnly: the zero config still rejects structurally
// unprocessable records but lets thresholds through.
func TestZeroQCIsStructuralOnly(t *testing.T) {
	var qc QCConfig
	rec := testRecord("SS07")
	for ci := range rec.Accel {
		rec.Accel[ci] = rec.Accel[ci][:2] // 5 ms record: any duration threshold would reject
	}
	if err := qc.Check(rec); err != nil {
		t.Fatalf("zero config rejected a structurally sound record: %v", err)
	}
	rec.Accel[1] = rec.Accel[1][:1]
	if err := qc.Check(rec); !errors.Is(err, ErrComponentLengthMismatch) {
		t.Fatalf("structural check disabled at zero config: %v", err)
	}
}

// TestRotation: a record encoded in the sensor frame at a declared azimuth
// decodes to (approximately) the original north-aligned motion, and an
// azimuth of zero is the bit-exact identity.
func TestRotation(t *testing.T) {
	want := testRecord("SS08")
	// Sensor frame: rotate the true motion by -az (the inverse of the
	// decode-side rotation).
	az := 33.0
	sensor := seismic.Record{Station: want.Station}
	for ci := range want.Accel {
		sensor.Accel[ci] = seismic.Trace{DT: want.DT[ci], Data: want.Accel[ci]}
	}
	inv, err := seismic.RotateHorizontal(sensor, -az)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{Station: want.Station, DT: want.DT, Azimuth: az}
	for ci := range rec.Accel {
		rec.Accel[ci] = inv.Accel[ci].Data
	}
	got, err := rotate(rec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Azimuth != 0 {
		t.Fatalf("rotation left azimuth %g", got.Azimuth)
	}
	for ci := range want.Accel {
		for i := range want.Accel[ci] {
			if d := math.Abs(got.Accel[ci][i] - want.Accel[ci][i]); d > 1e-9 {
				t.Fatalf("component %d sample %d off by %g after rotation", ci, i, d)
			}
		}
	}
	// Identity at azimuth zero: same backing arrays, untouched.
	same, err := rotate(Record{Station: "SS08", DT: want.DT, Accel: want.Accel})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range want.Accel {
		if &same.Accel[ci][0] != &want.Accel[ci][0] {
			t.Fatalf("azimuth-0 rotation copied component %d", ci)
		}
	}
}
