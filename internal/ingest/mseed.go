package ingest

import (
	"bufio"
	"encoding/binary"
	"io"
	"math"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// mseedFormat is a miniSEED-like length-prefixed binary format: an 8-byte
// magic, then a sequence of length-prefixed records — one station header
// record followed by one record per recorded component.  Samples are raw
// little-endian IEEE-754 float64 bits, so round-trips are exact by
// construction.  Like real miniSEED, each record is self-describing and
// length-prefixed, so a reader can skip records it does not understand and
// truncation is detected by the frame, not by a parse error deep inside a
// payload.
//
// Layout:
//
//	magic   "ACMSEED1"
//	record  uint32 LE payload length, then the payload:
//	  header  'H', uint16 LE station length, station bytes, float64 azimuth
//	  comp    'C', uint8 component index, float64 dt, uint32 LE npts,
//	          npts × float64 samples
type mseedFormat struct{}

const mseedMagic = "ACMSEED1"

const (
	mseedRecHeader = 'H'
	mseedRecComp   = 'C'
)

// mseedMaxRecord caps a single record's declared payload length (magic +
// header + the longest component the pipeline meets is far below this); a
// hostile length prefix cannot reserve gigabytes.
const mseedMaxRecord = 1 << 30

func (mseedFormat) Name() string      { return "mseed" }
func (mseedFormat) Extension() string { return ".ms" }

func (mseedFormat) Sniff(prefix []byte) bool { return hasMagicLine(prefix, mseedMagic) }

func putF64(b []byte, v float64) { binary.LittleEndian.PutUint64(b, math.Float64bits(v)) }
func getF64(b []byte) float64    { return math.Float64frombits(binary.LittleEndian.Uint64(b)) }

// writeRecord frames one payload.
func writeRecord(w *bufio.Writer, payload []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(payload)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func (mseedFormat) Encode(w io.Writer, rec Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(mseedMagic); err != nil {
		return err
	}
	// Header record: tag, station, azimuth.
	hdr := make([]byte, 0, 3+len(rec.Station)+8)
	hdr = append(hdr, mseedRecHeader)
	hdr = binary.LittleEndian.AppendUint16(hdr, uint16(len(rec.Station)))
	hdr = append(hdr, rec.Station...)
	hdr = binary.LittleEndian.AppendUint64(hdr, math.Float64bits(rec.Azimuth))
	if err := writeRecord(bw, hdr); err != nil {
		return err
	}
	for ci := range seismic.Components {
		if len(rec.Accel[ci]) == 0 {
			continue
		}
		payload := make([]byte, 14+8*len(rec.Accel[ci]))
		payload[0] = mseedRecComp
		payload[1] = byte(ci)
		putF64(payload[2:], rec.DT[ci])
		binary.LittleEndian.PutUint32(payload[10:], uint32(len(rec.Accel[ci])))
		for i, v := range rec.Accel[ci] {
			putF64(payload[14+8*i:], v)
		}
		if err := writeRecord(bw, payload); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readRecord reads one length-prefixed payload; (nil, io.EOF) at a clean
// end of stream.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, decodeErrf("mseed", 0, "truncated record length prefix")
	}
	n := binary.LittleEndian.Uint32(lenBuf[:])
	if n == 0 || n > mseedMaxRecord {
		return nil, decodeErrf("mseed", 0, "record length %d outside (0, %d]", n, mseedMaxRecord)
	}
	// Read incrementally so a hostile length prefix on a short stream
	// fails after the actual bytes, not after a giant up-front alloc.
	capHint := int(n)
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	payload := make([]byte, 0, capHint)
	buf := make([]byte, 32*1024)
	for len(payload) < int(n) {
		want := int(n) - len(payload)
		if want > len(buf) {
			want = len(buf)
		}
		m, err := io.ReadFull(r, buf[:want])
		payload = append(payload, buf[:m]...)
		if err != nil {
			return nil, decodeErrf("mseed", 0, "truncated record: got %d of %d payload bytes", len(payload), n)
		}
	}
	return payload, nil
}

func (mseedFormat) Decode(r io.Reader) (Record, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(mseedMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != mseedMagic {
		return Record{}, decodeErrf("mseed", 0, "not an mseed file (missing %q)", mseedMagic)
	}
	var rec Record
	sawHeader := false
	for {
		payload, err := readRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return Record{}, err
		}
		switch payload[0] {
		case mseedRecHeader:
			if sawHeader {
				return Record{}, decodeErrf("mseed", 0, "duplicate header record")
			}
			if len(payload) < 3 {
				return Record{}, decodeErrf("mseed", 0, "header record too short (%d bytes)", len(payload))
			}
			sl := int(binary.LittleEndian.Uint16(payload[1:]))
			if len(payload) != 3+sl+8 {
				return Record{}, decodeErrf("mseed", 0, "header record is %d bytes, want %d", len(payload), 3+sl+8)
			}
			rec.Station = string(payload[3 : 3+sl])
			rec.Azimuth = getF64(payload[3+sl:])
			sawHeader = true
		case mseedRecComp:
			if !sawHeader {
				return Record{}, decodeErrf("mseed", 0, "component record before header")
			}
			if len(payload) < 14 {
				return Record{}, decodeErrf("mseed", 0, "component record too short (%d bytes)", len(payload))
			}
			ci := int(payload[1])
			if ci >= len(seismic.Components) {
				return Record{}, decodeErrf("mseed", 0, "component index %d outside [0, %d)", ci, len(seismic.Components))
			}
			if len(rec.Accel[ci]) != 0 {
				return Record{}, decodeErrf("mseed", 0, "duplicate %s record", seismic.Components[ci])
			}
			npts := int(binary.LittleEndian.Uint32(payload[10:]))
			if npts <= 0 || len(payload) != 14+8*npts {
				return Record{}, decodeErrf("mseed", 0, "%s record is %d bytes, want %d for NPTS %d",
					seismic.Components[ci], len(payload), 14+8*npts, npts)
			}
			rec.DT[ci] = getF64(payload[2:])
			data := make([]float64, npts)
			for i := range data {
				data[i] = getF64(payload[14+8*i:])
			}
			rec.Accel[ci] = data
		default:
			// Length-prefixed framing: unknown record types are skipped,
			// the miniSEED forward-compatibility property.
		}
	}
	if !sawHeader {
		return Record{}, decodeErrf("mseed", 0, "no header record")
	}
	return rec, nil
}

// DecodeChunked materializes the record (the binary layout is record-at-
// a-time, and azimuth rotation needs both horizontals anyway).
func (f mseedFormat) DecodeChunked(fsys smformat.StreamFS, path string) (ChunkReader, error) {
	return materializedChunks(f, fsys, path)
}
