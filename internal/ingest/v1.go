package ingest

import (
	"fmt"
	"io"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// v1Format adapts the native multiplexed V1 codec (internal/smformat) to
// the ingest plane.  Decoding defers entirely to smformat.ParseV1; encoding
// to smformat.V1.Write, so a synthetic event emitted through this format is
// byte-identical to what pipeline.PrepareWorkDir always wrote.  The format
// cannot represent an azimuth or a structurally defective record — its
// header carries one DT and one NPTS — so Encode rejects those instead of
// silently dropping fields.
type v1Format struct{}

func (v1Format) Name() string      { return "v1" }
func (v1Format) Extension() string { return ".v1" }

func (v1Format) Sniff(prefix []byte) bool { return hasMagicLine(prefix, smformat.V1Magic) }

func (v1Format) Decode(r io.Reader) (Record, error) {
	v, err := smformat.ParseV1(r)
	if err != nil {
		return Record{}, err
	}
	return FromV1(v), nil
}

func (v1Format) Encode(w io.Writer, rec Record) error {
	if rec.Azimuth != 0 {
		return fmt.Errorf("ingest: v1 cannot carry an azimuth (%g°); use v1a, mseed, or csv", rec.Azimuth)
	}
	if rec.DT[0] != rec.DT[1] || rec.DT[0] != rec.DT[2] {
		return fmt.Errorf("ingest: v1 cannot carry per-component sample intervals %v", rec.DT)
	}
	n := len(rec.Accel[0])
	if len(rec.Accel[1]) != n || len(rec.Accel[2]) != n {
		return fmt.Errorf("ingest: v1 cannot carry mismatched component lengths")
	}
	return rec.V1().Write(w)
}

// DecodeChunked is truly incremental: the native chunk reader parses
// headers up front and streams the payload.
func (v1Format) DecodeChunked(fsys smformat.StreamFS, path string) (ChunkReader, error) {
	cr, err := smformat.OpenV1Chunks(fsys, path)
	if err != nil {
		return nil, err
	}
	return &v1Chunks{cr: cr}, nil
}

// v1Chunks wraps the native incremental reader in the ChunkReader shape.
type v1Chunks struct {
	cr *smformat.V1ChunkReader
}

func (c *v1Chunks) Header() ChunkHeader {
	return ChunkHeader{Station: c.cr.Station, DT: c.cr.DT, NPTS: c.cr.NPTS}
}

func (c *v1Chunks) NextComponent() (seismic.Component, error) { return c.cr.NextComponent() }

func (c *v1Chunks) Read(buf []float64) (int, error) { return c.cr.Read(buf) }

func (c *v1Chunks) Close() error { return c.cr.Close() }
