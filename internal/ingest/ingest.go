// Package ingest is the pluggable decode plane in front of the processing
// pipeline: a registry of accelerographic record formats, format sniffing,
// a record sanity (QC) gate with a typed error taxonomy, and sensor-azimuth
// component rotation.
//
// The pipeline historically assumed clean native V1 inputs; real networks
// emit a zoo of formats and broken records.  Everything between "bytes on
// disk" and "a validated, north-aligned smformat.V1" now lives behind this
// package so the decode step is one uniform dataflow node regardless of
// what the station uploaded:
//
//   - native V1 (".v1"), the paper's multiplexed text format
//   - GeoNet-style V1A fixed-width text (".v1a"), with per-component
//     headers and a sensor azimuth
//   - a miniSEED-like length-prefixed binary (".ms")
//   - CSV (".csv"), one sample row per time step
//
// Formats are detected by magic bytes first, file extension second (see
// Detect); an explicit format name from the CLI overrides both.  Every
// decoder preserves full float64 precision, so the same motion encoded in
// any registered format produces byte-identical pipeline products.
package ingest

import (
	"bytes"
	"fmt"
	"io"
	"path"
	"strings"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// SniffLen is the number of leading bytes Detect needs to identify every
// registered format by magic.
const SniffLen = 64

// Record is one decoded, not-yet-validated station record: what a format
// decoder extracts from the file before the QC gate and rotation run.  The
// per-component sample intervals are kept separate so a file whose
// components disagree can be represented (and rejected with ErrDtMismatch)
// instead of silently collapsed; a missing component has a nil sample
// slice.
type Record struct {
	Station string
	DT      [3]float64   // per-component sample interval, s, seismic.Components order
	Accel   [3][]float64 // gal, seismic.Components order
	Azimuth float64      // sensor azimuth of the longitudinal axis, degrees; 0 = north-aligned
}

// FromV1 converts a validated native V1 into a Record (azimuth 0).
func FromV1(v smformat.V1) Record {
	return Record{
		Station: v.Station,
		DT:      [3]float64{v.DT, v.DT, v.DT},
		Accel:   v.Accel,
	}
}

// V1 collapses a structurally sound Record into the native representation.
// It must only be called after the QC gate has passed (equal sample
// intervals and component lengths).
func (r Record) V1() smformat.V1 {
	return smformat.V1{Station: r.Station, DT: r.DT[0], Accel: r.Accel}
}

// NPTS returns the longest component length (encoders pad shorter columns;
// a sound record has all three equal).
func (r Record) NPTS() int {
	n := 0
	for _, a := range r.Accel {
		if len(a) > n {
			n = len(a)
		}
	}
	return n
}

// Reader is the decode side of a format: magic sniffing, whole-record
// decoding, and incremental chunked decoding for the streaming plane.
type Reader interface {
	// Sniff reports whether the leading bytes of a file (at least
	// SniffLen when the file is that long) identify this format.
	Sniff(prefix []byte) bool
	// Decode parses one record.  Structural file damage yields an error
	// wrapping smformat.ErrFormat; the decoder does NOT run the QC gate.
	Decode(r io.Reader) (Record, error)
	// DecodeChunked opens path and serves the record's samples in
	// caller-sized chunks, component by component in canonical order.
	// Formats without an incremental parse may materialize the record
	// internally; the native V1 reader is truly streaming.
	DecodeChunked(fsys smformat.StreamFS, path string) (ChunkReader, error)
}

// Format is one registered ingest format: a Reader plus its registry
// identity and an encoder (used by synth and the round-trip tests).
type Format interface {
	Reader
	// Name is the stable registry key ("v1", "v1a", "mseed", "csv"),
	// also the CLI -format spelling.
	Name() string
	// Extension is the canonical input file extension, with dot.
	Extension() string
	// Encode writes rec in this format.  Encoders are deliberately
	// permissive: they serialize defective records (mismatched lengths,
	// disagreeing sample intervals, missing components) when the format
	// can represent them, so synth can emit QC-gate test fixtures.
	Encode(w io.Writer, rec Record) error
}

// formats is the registry, in sniffing order.  Magic-based detection tries
// each format in this order; the native format comes first so its
// unambiguous magic line always wins.
var formats = []Format{v1Format{}, v1aFormat{}, mseedFormat{}, csvFormat{}}

// Formats returns the registered formats in sniffing order.
func Formats() []Format { return formats }

// Names returns the registry keys in sniffing order.
func Names() []string {
	out := make([]string, len(formats))
	for i, f := range formats {
		out[i] = f.Name()
	}
	return out
}

// ByName resolves a registry key (as given to -format).
func ByName(name string) (Format, error) {
	for _, f := range formats {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("ingest: unknown format %q (have %s)", name, strings.Join(Names(), ", "))
}

// ByExtension resolves a file extension (with dot, case-insensitive).
func ByExtension(ext string) (Format, bool) {
	ext = strings.ToLower(ext)
	for _, f := range formats {
		if f.Extension() == ext {
			return f, true
		}
	}
	return nil, false
}

// Detect identifies the format of a record file: magic bytes first (in
// registry order — content beats naming), file extension second.  It
// returns ErrUnknownFormat when neither matches.
func Detect(name string, prefix []byte) (Format, error) {
	for _, f := range formats {
		if f.Sniff(prefix) {
			return f, nil
		}
	}
	if f, ok := ByExtension(path.Ext(name)); ok {
		return f, nil
	}
	return nil, &UnknownFormatError{Name: name}
}

// IsRecordFile reports whether name/prefix identify any registered format;
// the pipeline's gather step uses it to pick record inputs out of a work
// directory that also holds products and metadata.
func IsRecordFile(name string, prefix []byte) bool {
	_, err := Detect(name, prefix)
	return err == nil
}

// SniffAny returns the format whose magic claims the prefix, in registry
// order — magic only, no extension fallback.  The pipeline's gather step
// uses it so per-component products, which share the ".v1" extension but
// carry a different magic, are never mistaken for inputs.
func SniffAny(prefix []byte) (Format, bool) {
	for _, f := range formats {
		if f.Sniff(prefix) {
			return f, true
		}
	}
	return nil, false
}

// StationOf derives the station code from a record file name by stripping
// its registered format extension; ok=false when the extension belongs to
// no registered format or nothing precedes it.
func StationOf(name string) (string, bool) {
	ext := path.Ext(name)
	if _, ok := ByExtension(ext); !ok {
		return "", false
	}
	st := strings.TrimSuffix(name, ext)
	return st, st != ""
}

// sniffPrefix reads the leading SniffLen bytes of path through fsys.
func sniffPrefix(fsys smformat.StreamFS, path string) ([]byte, error) {
	rc, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	buf := make([]byte, SniffLen)
	n, err := io.ReadFull(rc, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return buf[:n], nil
}

// hasMagicLine reports whether prefix begins with the given magic line
// (allowing the prefix to truncate the magic when the sniff window is
// shorter than the line).
func hasMagicLine(prefix []byte, magic string) bool {
	if len(prefix) >= len(magic) {
		return string(prefix[:len(magic)]) == magic
	}
	return len(prefix) > 0 && bytes.HasPrefix([]byte(magic), prefix)
}

// rotate returns rec with its horizontals rotated from the sensor frame
// (longitudinal axis at rec.Azimuth degrees) back to the north-aligned
// frame.  Azimuth 0 is the identity and returns rec untouched, preserving
// byte-identity of unrotated inputs.
func rotate(rec Record) (Record, error) {
	if rec.Azimuth == 0 {
		return rec, nil
	}
	sr := seismic.Record{Station: rec.Station}
	for ci := range rec.Accel {
		sr.Accel[ci] = seismic.Trace{DT: rec.DT[ci], Data: rec.Accel[ci]}
	}
	out, err := seismic.RotateHorizontal(sr, rec.Azimuth)
	if err != nil {
		return Record{}, fmt.Errorf("ingest: rotate %s by %g°: %w", rec.Station, rec.Azimuth, err)
	}
	rec.Azimuth = 0
	for ci := range rec.Accel {
		rec.Accel[ci] = out.Accel[ci].Data
	}
	return rec, nil
}
