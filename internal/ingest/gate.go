package ingest

import (
	"bytes"
	"fmt"

	"accelproc/internal/smformat"
)

// ReadRecord is the whole-record ingest path: read path through fsys,
// resolve the format (sniff + extension when f is nil), decode, run the QC
// gate, and rotate the horizontals into the north-aligned frame.  The
// returned V1 is what pipeline process #3 demultiplexes; the Format tells
// the caller what the file turned out to be.
//
// Every rejection — undecodable bytes, a QC defect, an unrotatable record —
// wraps ErrReject, so the retry classifier sends it straight to quarantine.
func ReadRecord(fsys smformat.FS, path string, f Format, qc QCConfig) (smformat.V1, Format, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return smformat.V1{}, nil, err
	}
	if f == nil {
		prefix := data
		if len(prefix) > SniffLen {
			prefix = prefix[:SniffLen]
		}
		if f, err = Detect(path, prefix); err != nil {
			return smformat.V1{}, nil, err
		}
	}
	rec, err := f.Decode(bytes.NewReader(data))
	if err != nil {
		return smformat.V1{}, f, fmt.Errorf("ingest: decode %s: %w", path, err)
	}
	if rec.Station == "" {
		return smformat.V1{}, f, &DecodeError{Format: f.Name(), Msg: "empty station name"}
	}
	if err := qc.Check(rec); err != nil {
		return smformat.V1{}, f, err
	}
	if rec, err = rotate(rec); err != nil {
		return smformat.V1{}, f, err
	}
	return rec.V1(), f, nil
}

// OpenChunks is the streaming ingest path: the same resolve → decode → QC →
// rotate contract as ReadRecord, but serving the samples in caller-sized
// chunks.  Native V1 input with a header-only gate streams truly
// incrementally; every other case (foreign formats, sample-scanning QC
// thresholds, declared azimuths) decodes through the materialized fallback
// first — inputs buffer, outputs still stream.
func OpenChunks(fsys smformat.StreamFS, path string, f Format, qc QCConfig) (ChunkReader, error) {
	if f == nil {
		prefix, err := sniffPrefix(fsys, path)
		if err != nil {
			return nil, err
		}
		if f, err = Detect(path, prefix); err != nil {
			return nil, err
		}
	}
	if _, native := f.(v1Format); native && !qc.sampleChecks() {
		cr, err := f.DecodeChunked(fsys, path)
		if err != nil {
			return nil, err
		}
		h := cr.Header()
		if err := qc.checkHeader(h.Station, h.DT, h.NPTS); err != nil {
			cr.Close()
			return nil, err
		}
		return cr, nil
	}
	v1, _, err := ReadRecord(fsys, path, f, qc)
	if err != nil {
		return nil, err
	}
	return newBufferedChunks(FromV1(v1)), nil
}

// WriteFile encodes rec in format f and writes it to path through fsys in
// one atomic WriteFile (synth and the tests use it; the pipeline never
// writes foreign formats).
func WriteFile(fsys smformat.FS, path string, f Format, rec Record) error {
	var buf bytes.Buffer
	if err := f.Encode(&buf, rec); err != nil {
		return fmt.Errorf("ingest: encode %s: %w", path, err)
	}
	if err := fsys.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("ingest: write %s: %w", path, err)
	}
	return nil
}
