package response

import (
	"math"
	"testing"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

func TestMultiDamping(t *testing.T) {
	tr := sineTrace(4000, 0.01, 2, 80)
	v2 := toV2(tr)
	cfg := Config{Method: NigamJennings, Periods: LogPeriods(0.05, 5, 21)}
	specs, err := MultiDamping(v2, cfg, []float64{0.02, 0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d spectra", len(specs))
	}
	for i, want := range []float64{0.02, 0.05, 0.10} {
		if specs[i].Damping != want {
			t.Errorf("spectrum %d damping = %g, want %g", i, specs[i].Damping, want)
		}
	}
	// Higher damping suppresses the resonant peak: SA at the resonant
	// period must decrease monotonically with damping.
	peak := func(r int) float64 {
		m := 0.0
		for _, sa := range specs[r].SA {
			if sa > m {
				m = sa
			}
		}
		return m
	}
	if !(peak(0) > peak(1) && peak(1) > peak(2)) {
		t.Errorf("peaks not monotone in damping: %g, %g, %g", peak(0), peak(1), peak(2))
	}
	if _, err := MultiDamping(v2, cfg, nil); err == nil {
		t.Error("empty damping list accepted")
	}
	if _, err := MultiDamping(v2, cfg, []float64{2}); err == nil {
		t.Error("invalid damping accepted")
	}
}

func TestHousnerIntensityHarmonic(t *testing.T) {
	// A resonance inside the Housner band must produce a much larger SI
	// than the same-amplitude record outside the band.
	inBand := sineTrace(30000, 0.002, 1, 50)   // 1 Hz: period 1 s
	outBand := sineTrace(30000, 0.002, 40, 50) // 40 Hz: period 0.025 s
	siIn, err := HousnerIntensity(inBand, 0.05, NigamJennings)
	if err != nil {
		t.Fatal(err)
	}
	siOut, err := HousnerIntensity(outBand, 0.05, NigamJennings)
	if err != nil {
		t.Fatal(err)
	}
	if siIn <= 5*siOut {
		t.Errorf("in-band SI %g not dominant over out-of-band SI %g", siIn, siOut)
	}
}

func TestHousnerIntensityErrors(t *testing.T) {
	tr := sineTrace(100, 0.01, 1, 1)
	if _, err := HousnerIntensity(seismic.Trace{}, 0.05, NigamJennings); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, err := HousnerIntensity(tr, 0, NigamJennings); err == nil {
		t.Error("zero damping accepted")
	}
	if _, err := HousnerIntensity(tr, 1.2, NigamJennings); err == nil {
		t.Error("over-critical damping accepted")
	}
}

func TestHousnerIntensityScalesLinearly(t *testing.T) {
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 11, DT: 0.01, Samples: 3000,
		Magnitude: 5.5, Distance: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Accel[0]
	si1, err := HousnerIntensity(tr, 0.05, NigamJennings)
	if err != nil {
		t.Fatal(err)
	}
	doubled := tr.Clone()
	for i := range doubled.Data {
		doubled.Data[i] *= 2
	}
	si2, err := HousnerIntensity(doubled, 0.05, NigamJennings)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(si2-2*si1) > 1e-6*si1 {
		t.Errorf("SI not linear: %g vs 2*%g", si2, si1)
	}
}

func TestTripartite(t *testing.T) {
	tr := sineTrace(2000, 0.01, 2, 80)
	v2 := toV2(tr)
	r, err := Spectrum(v2, Config{Method: NigamJennings, Periods: LogPeriods(0.05, 5, 11)})
	if err != nil {
		t.Fatal(err)
	}
	psv, psa, err := Tripartite(r)
	if err != nil {
		t.Fatal(err)
	}
	for i, T := range r.Periods {
		w := 2 * math.Pi / T
		if math.Abs(psv[i]-w*r.SD[i]) > 1e-12*(1+psv[i]) {
			t.Errorf("PSV[%d] inconsistent", i)
		}
		if math.Abs(psa[i]-w*w*r.SD[i]) > 1e-9*(1+psa[i]) {
			t.Errorf("PSA[%d] inconsistent", i)
		}
	}
	// For light damping PSA tracks SA within ~20% away from the extremes.
	for i := range r.Periods {
		if r.SA[i] == 0 {
			continue
		}
		ratio := psa[i] / r.SA[i]
		if ratio < 0.5 || ratio > 1.5 {
			t.Logf("note: PSA/SA at T=%g is %g", r.Periods[i], ratio)
		}
	}
	if _, _, err := Tripartite(smformat.Response{}); err == nil {
		t.Error("invalid response accepted")
	}
}

func TestSpectrumParallelMatchesSerial(t *testing.T) {
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 13, DT: 0.01, Samples: 2000,
		Magnitude: 5.3, Distance: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	v2 := toV2(rec.Accel[0])
	cfg := Config{Method: NigamJennings, Periods: LogPeriods(0.05, 8, 33)}
	serial, err := Spectrum(v2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		par, err := SpectrumParallel(v2, cfg, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial.Periods {
			if par.SA[i] != serial.SA[i] || par.SV[i] != serial.SV[i] || par.SD[i] != serial.SD[i] {
				t.Fatalf("workers=%d: period %d differs from serial", workers, i)
			}
		}
	}
}

func TestSpectrumParallelValidation(t *testing.T) {
	if _, err := SpectrumParallel(smformat.V2{}, Config{}, 2); err == nil {
		t.Error("invalid V2 accepted")
	}
	v2 := toV2(sineTrace(500, 0.01, 2, 10))
	if _, err := SpectrumParallel(v2, Config{Damping: 3}, 2); err == nil {
		t.Error("invalid config accepted")
	}
}
