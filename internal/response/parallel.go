package response

import (
	"accelproc/internal/parallel"
	"accelproc/internal/smformat"
)

// SpectrumParallel computes the same spectra as Spectrum but splits the
// period grid across workers (0 = all processors).  This is the alternative
// decomposition axis to the paper's file-level parallelism for stage IX:
// within one record, every oscillator period is independent.  It matters
// when a single large record must be processed with low latency — e.g. an
// on-demand response-spectrum service — where file-level parallelism has
// nothing to split.
//
// Results are bit-identical to Spectrum: each period's computation is
// independent and deterministic, so only the schedule differs.
func SpectrumParallel(v smformat.V2, cfg Config, workers int) (smformat.Response, error) {
	if err := v.Validate(); err != nil {
		return smformat.Response{}, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return smformat.Response{}, err
	}
	r := smformat.Response{
		Station:   v.Station,
		Component: v.Component,
		Damping:   cfg.Damping,
		Periods:   append([]float64(nil), cfg.Periods...),
		SA:        make([]float64, len(cfg.Periods)),
		SV:        make([]float64, len(cfg.Periods)),
		SD:        make([]float64, len(cfg.Periods)),
	}
	err := parallel.ParallelForDynamic(len(cfg.Periods), workers, 1, func(i int) error {
		T := cfg.Periods[i]
		var sd, sv, sa float64
		switch cfg.Method {
		case NigamJennings:
			sd, sv, sa = nigamJennings(v.Accel, v.DT, T, cfg.Damping)
		default:
			sd, sv, sa = duhamel(v.Accel, v.DT, T, cfg.Damping)
		}
		r.SD[i], r.SV[i], r.SA[i] = sd, sv, sa
		return nil
	})
	if err != nil {
		return smformat.Response{}, err
	}
	if err := r.Validate(); err != nil {
		return smformat.Response{}, err
	}
	return r, nil
}
