package response

import (
	"fmt"
	"math"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// MultiDamping computes response spectra at several damping ratios in one
// call (engineering practice reports 2%, 5%, and sometimes 10% together).
// The returned slice is ordered like dampings; every Response shares the
// configured period grid.
func MultiDamping(v smformat.V2, cfg Config, dampings []float64) ([]smformat.Response, error) {
	if len(dampings) == 0 {
		return nil, fmt.Errorf("response: no damping ratios given")
	}
	out := make([]smformat.Response, 0, len(dampings))
	for _, xi := range dampings {
		c := cfg
		c.Damping = xi
		r, err := Spectrum(v, c)
		if err != nil {
			return nil, fmt.Errorf("response: damping %g: %w", xi, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// HousnerIntensity computes the Housner spectrum intensity: the integral of
// the pseudo-velocity spectrum PSV(T) = (2*pi/T) * SD(T) over periods 0.1 s
// to 2.5 s, a classic scalar measure of a record's damage potential.
// The oscillators are integrated with the given method at the given damping
// (Housner's original definition uses 20%, modern practice often 5%).
func HousnerIntensity(accel seismic.Trace, damping float64, m Method) (float64, error) {
	if err := accel.Validate(); err != nil {
		return 0, err
	}
	if damping <= 0 || damping >= 1 {
		return 0, fmt.Errorf("response: damping %g outside (0,1)", damping)
	}
	// 49 log-spaced periods over [0.1, 2.5] s; trapezoidal integration in T.
	periods := LogPeriods(0.1, 2.5, 49)
	psv := make([]float64, len(periods))
	for i, T := range periods {
		sd, _, _, err := Oscillator(accel, T, damping, m)
		if err != nil {
			return 0, err
		}
		psv[i] = 2 * math.Pi / T * sd
	}
	var si float64
	for i := 1; i < len(periods); i++ {
		si += (psv[i] + psv[i-1]) / 2 * (periods[i] - periods[i-1])
	}
	return si, nil
}

// Tripartite returns the classic tripartite representation of a response
// spectrum: for every period, the triple (PSV, PSA, SD) derived from the
// spectral displacement, used by the four-way log plots of earthquake
// engineering.
func Tripartite(r smformat.Response) (psv, psa []float64, err error) {
	if err := r.Validate(); err != nil {
		return nil, nil, err
	}
	psv = make([]float64, len(r.Periods))
	psa = make([]float64, len(r.Periods))
	for i, T := range r.Periods {
		psv[i], psa[i] = PseudoSpectra(T, r.SD[i])
	}
	return psv, psa, nil
}
