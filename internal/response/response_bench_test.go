package response

import (
	"fmt"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

func benchTrace(b *testing.B, n int) seismic.Trace {
	b.Helper()
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 1, DT: 0.01, Samples: n,
		Magnitude: 5.5, Distance: 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rec.Accel[0]
}

// BenchmarkOscillator contrasts the legacy O(D^2) Duhamel convolution with
// the O(D) Nigam-Jennings recursion across record lengths — the scaling gap
// that makes stage IX dominate the paper's sequential runtime.
func BenchmarkOscillator(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		tr := benchTrace(b, n)
		for _, m := range []Method{Duhamel, NigamJennings} {
			m := m
			b.Run(fmt.Sprintf("%s/n=%d", m, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, _, err := Oscillator(tr, 1.0, 0.05, m); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// toV2 wraps a bare acceleration trace in the minimal valid V2 payload.
func toV2(tr seismic.Trace) smformat.V2 {
	n := len(tr.Data)
	return smformat.V2{
		Station:   "SS01",
		Component: seismic.Longitudinal,
		DT:        tr.DT,
		Filter:    dsp.BandPassSpec{FSL: 0.1, FPL: 0.25, FPH: 23, FSH: 25},
		Accel:     tr.Data,
		Vel:       make([]float64, n),
		Disp:      make([]float64, n),
	}
}

// BenchmarkSpectrum measures a full spectrum computation (many periods) at
// a typical record length, per method.
func BenchmarkSpectrum(b *testing.B) {
	tr := benchTrace(b, 4000)
	v2 := toV2(tr)
	for _, m := range []Method{Duhamel, NigamJennings} {
		m := m
		b.Run(m.String(), func(b *testing.B) {
			cfg := Config{Method: m, Periods: LogPeriods(0.05, 10, 16)}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Spectrum(v2, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
