// Package response computes elastic response spectra — the pipeline's
// process #16 and, per the paper, the dominant computational stage (stage
// IX, 57.2% of the sequential runtime).
//
// Two methods are provided:
//
//   - Duhamel: direct evaluation of the Duhamel convolution integral, the
//     O(periods × D²) formulation of the legacy Fortran code (the paper
//     reports a sequential complexity of O(9000 × N × D²)).  This is the
//     method the benchmark harness uses to reproduce the paper's workload
//     shape.
//
//   - NigamJennings: the exact piecewise-linear recursion of Nigam &
//     Jennings (1969), O(periods × D).  This is the method a modern
//     implementation would use; it appears in the evaluation as the
//     algorithmic ablation against the parallelized legacy method.
//
// For each single-degree-of-freedom oscillator (natural period T, damping
// ratio xi) excited by ground acceleration a(t), the spectra report
//
//	SD = max |u(t)|            relative displacement, cm
//	SV = max |u'(t)|           relative velocity, cm/s
//	SA = max |u''(t) + a(t)|   absolute acceleration, gal
//
// computed via the equation of motion u” + 2 xi w u' + w^2 u = -a(t), so
// u” + a = -(2 xi w u' + w^2 u).
package response

import (
	"fmt"
	"math"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// Method selects the response-spectrum algorithm.
type Method int

const (
	// Duhamel is the legacy O(D²)-per-period convolution method.
	Duhamel Method = iota
	// NigamJennings is the exact O(D)-per-period recursive method.
	NigamJennings
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Duhamel:
		return "duhamel"
	case NigamJennings:
		return "nigam-jennings"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ParseMethod maps a command-line spelling to a Method: duhamel (legacy),
// or nj / nigam-jennings (fast).
func ParseMethod(name string) (Method, error) {
	switch name {
	case "duhamel":
		return Duhamel, nil
	case "nj", "nigam-jennings":
		return NigamJennings, nil
	default:
		return 0, fmt.Errorf("response: unknown method %q (want duhamel or nj)", name)
	}
}

// Config parameterizes a response-spectrum computation.
type Config struct {
	Method  Method
	Damping float64   // damping ratio; zero selects 0.05 (5% of critical)
	Periods []float64 // strictly increasing period grid (s); nil selects DefaultPeriods()
}

func (c Config) withDefaults() Config {
	if c.Damping == 0 {
		c.Damping = 0.05
	}
	if c.Periods == nil {
		c.Periods = DefaultPeriods()
	}
	return c
}

// Validate reports configurations the solvers cannot honor.
func (c Config) Validate() error {
	if c.Damping <= 0 || c.Damping >= 1 {
		return fmt.Errorf("response: damping %g outside (0,1)", c.Damping)
	}
	if len(c.Periods) == 0 {
		return fmt.Errorf("response: empty period grid")
	}
	for i, p := range c.Periods {
		if p <= 0 {
			return fmt.Errorf("response: period %d is %g, want > 0", i, p)
		}
		if i > 0 && p <= c.Periods[i-1] {
			return fmt.Errorf("response: period grid not strictly increasing at %d", i)
		}
	}
	return nil
}

// DefaultPeriods returns the standard log-spaced engineering period grid
// from 0.02 s to 20 s (the span of the paper's Figure 4), 91 points at
// 30 per decade.
func DefaultPeriods() []float64 {
	return LogPeriods(0.02, 20, 91)
}

// LogPeriods returns n log-spaced periods from lo to hi inclusive.
func LogPeriods(lo, hi float64, n int) []float64 {
	if n <= 1 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = lo * math.Exp(ratio*float64(i)/float64(n-1))
	}
	return out
}

// Spectrum computes the elastic response spectra of one corrected component
// and returns the payload of an R file.
func Spectrum(v smformat.V2, cfg Config) (smformat.Response, error) {
	if err := v.Validate(); err != nil {
		return smformat.Response{}, err
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return smformat.Response{}, err
	}
	r := smformat.Response{
		Station:   v.Station,
		Component: v.Component,
		Damping:   cfg.Damping,
		Periods:   append([]float64(nil), cfg.Periods...),
		SA:        make([]float64, len(cfg.Periods)),
		SV:        make([]float64, len(cfg.Periods)),
		SD:        make([]float64, len(cfg.Periods)),
	}
	var h, hv []float64
	if cfg.Method != NigamJennings {
		// The Duhamel kernel tables are period-dependent but their storage
		// is not: hoist the two record-length buffers out of the period loop.
		h = make([]float64, len(v.Accel))
		hv = make([]float64, len(v.Accel))
	}
	for i, T := range cfg.Periods {
		var sd, sv, sa float64
		switch cfg.Method {
		case NigamJennings:
			sd, sv, sa = nigamJennings(v.Accel, v.DT, T, cfg.Damping)
		default:
			sd, sv, sa = duhamelWith(v.Accel, v.DT, T, cfg.Damping, h, hv)
		}
		r.SD[i], r.SV[i], r.SA[i] = sd, sv, sa
	}
	if err := r.Validate(); err != nil {
		return smformat.Response{}, err
	}
	return r, nil
}

// Oscillator computes the spectra of a bare acceleration trace at a single
// period, exposed for tests and for callers that need one oscillator only.
func Oscillator(accel seismic.Trace, period, damping float64, m Method) (sd, sv, sa float64, err error) {
	if err := accel.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if period <= 0 {
		return 0, 0, 0, fmt.Errorf("response: period %g must be positive", period)
	}
	if damping <= 0 || damping >= 1 {
		return 0, 0, 0, fmt.Errorf("response: damping %g outside (0,1)", damping)
	}
	if m == NigamJennings {
		sd, sv, sa = nigamJennings(accel.Data, accel.DT, period, damping)
	} else {
		sd, sv, sa = duhamel(accel.Data, accel.DT, period, damping)
	}
	return sd, sv, sa, nil
}

// duhamel evaluates the Duhamel integral by direct convolution: for every
// output sample the full history is re-summed, reproducing the O(D²) cost
// per period of the legacy implementation.  Relative velocity is obtained
// from the closed-form derivative kernel (a second convolution folded into
// the same pass), keeping a single history loop.
func duhamel(a []float64, dt, period, xi float64) (sd, sv, sa float64) {
	n := len(a)
	return duhamelWith(a, dt, period, xi, make([]float64, n), make([]float64, n))
}

// duhamelWith is duhamel with caller-provided kernel scratch (len(a) each),
// letting Spectrum reuse two buffers across its whole period grid.
func duhamelWith(a []float64, dt, period, xi float64, h, hv []float64) (sd, sv, sa float64) {
	n := len(a)
	w := 2 * math.Pi / period
	wd := w * math.Sqrt(1-xi*xi)

	// Precompute kernel tables h[k] = e^{-xi w k dt} sin(wd k dt) and the
	// velocity kernel hv[k] = d/dt of the displacement kernel.  The legacy
	// cost profile comes from the O(D²) accumulation below, not from
	// recomputing transcendentals, so tabulating them is faithful.
	for k := 0; k < n; k++ {
		tk := float64(k) * dt
		e := math.Exp(-xi * w * tk)
		s, c := math.Sincos(wd * tk)
		h[k] = e * s
		hv[k] = e * (wd*c - xi*w*s)
	}
	scale := -dt / wd
	for i := 0; i < n; i++ {
		var du, dv float64
		for j := 0; j <= i; j++ {
			aj := a[j]
			du += aj * h[i-j]
			dv += aj * hv[i-j]
		}
		u := scale * du
		v := scale * dv
		if au := math.Abs(u); au > sd {
			sd = au
		}
		if av := math.Abs(v); av > sv {
			sv = av
		}
		// Absolute acceleration from the equation of motion.
		if aa := math.Abs(-(2*xi*w*v + w*w*u)); aa > sa {
			sa = aa
		}
	}
	return sd, sv, sa
}

// nigamJennings advances the oscillator with the exact solution for
// piecewise-linear ground acceleration (Nigam & Jennings, 1969).
func nigamJennings(a []float64, dt, period, xi float64) (sd, sv, sa float64) {
	n := len(a)
	w := 2 * math.Pi / period
	w2 := w * w
	wd := w * math.Sqrt(1-xi*xi)

	e := math.Exp(-xi * w * dt)
	s, c := math.Sincos(wd * dt)

	// Recurrence coefficients (standard Nigam-Jennings formulation).
	a11 := e * (c + xi*w/wd*s)
	a12 := e / wd * s
	a21 := -w2 * a12
	a22 := e * (c - xi*w/wd*s)

	t1 := (2*xi*xi - 1) / (w2 * dt)
	t2 := 2 * xi / (w2 * w * dt)

	b11 := e*(s*(t1+xi/w)/wd+c*(t2+1/w2)) - t2
	b12 := -e*(s*t1/wd+c*t2) - 1/w2 + t2
	b21 := e*((t1+xi/w)*(c-xi*w/wd*s)-(t2+1/w2)*(wd*s+xi*w*c)) + 1/(w2*dt)
	b22 := -e*(t1*(c-xi*w/wd*s)-t2*(wd*s+xi*w*c)) - 1/(w2*dt)

	var u, v float64
	for i := 0; i < n; i++ {
		ai := a[i]
		var an float64 // next ground sample (hold the last value at the end)
		if i+1 < n {
			an = a[i+1]
		} else {
			an = ai
		}
		uNext := a11*u + a12*v + b11*ai + b12*an
		vNext := a21*u + a22*v + b21*ai + b22*an
		u, v = uNext, vNext
		if au := math.Abs(u); au > sd {
			sd = au
		}
		if av := math.Abs(v); av > sv {
			sv = av
		}
		if aa := math.Abs(-(2*xi*w*v + w2*u)); aa > sa {
			sa = aa
		}
	}
	return sd, sv, sa
}

// PseudoSpectra converts a spectral displacement into pseudo-velocity and
// pseudo-acceleration (PSV = w SD, PSA = w² SD), the quantities many
// engineering codes plot; exposed for the plotting examples.
func PseudoSpectra(period, sd float64) (psv, psa float64) {
	w := 2 * math.Pi / period
	return w * sd, w * w * sd
}
