package response

import (
	"math"
	"testing"

	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
	"accelproc/internal/synth"
)

func impulseTrace(n int, dt float64) seismic.Trace {
	data := make([]float64, n)
	data[0] = 1 / dt // unit-area impulse
	return seismic.Trace{DT: dt, Data: data}
}

func sineTrace(n int, dt, freq, amp float64) seismic.Trace {
	data := make([]float64, n)
	for i := range data {
		data[i] = amp * math.Sin(2*math.Pi*freq*float64(i)*dt)
	}
	return seismic.Trace{DT: dt, Data: data}
}

func TestMethodString(t *testing.T) {
	if Duhamel.String() != "duhamel" || NigamJennings.String() != "nigam-jennings" {
		t.Errorf("names: %v %v", Duhamel, NigamJennings)
	}
	if Method(7).String() != "Method(7)" {
		t.Errorf("unknown method: %v", Method(7))
	}
}

func TestLogPeriods(t *testing.T) {
	p := LogPeriods(0.02, 20, 91)
	if len(p) != 91 {
		t.Fatalf("len = %d", len(p))
	}
	if math.Abs(p[0]-0.02) > 1e-15 || math.Abs(p[90]-20) > 1e-12 {
		t.Errorf("endpoints %g, %g", p[0], p[90])
	}
	// Log-spaced: constant ratio.
	r := p[1] / p[0]
	for i := 2; i < len(p); i++ {
		if math.Abs(p[i]/p[i-1]-r) > 1e-9 {
			t.Fatalf("ratio drifts at %d", i)
		}
	}
	// Degenerate calls collapse to the single low value.
	if got := LogPeriods(0.5, 2, 1); len(got) != 1 || got[0] != 0.5 {
		t.Errorf("n=1: %v", got)
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{}.withDefaults()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	bad := []Config{
		{Damping: -0.05, Periods: []float64{1}},
		{Damping: 1.5, Periods: []float64{1}},
		{Damping: 0.05, Periods: []float64{}},
		{Damping: 0.05, Periods: []float64{0, 1}},
		{Damping: 0.05, Periods: []float64{2, 1}},
		{Damping: 0.05, Periods: []float64{1, 1}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

// Free vibration after a unit impulse has the closed-form peak
// |u|max = (1/wd) e^{-xi w t*} sin(wd t*) at the first oscillation peak.
// Only the Duhamel (rectangle rule) method sees a discrete impulse at its
// full area; Nigam-Jennings interprets samples piecewise-linearly, so a
// single-sample spike is a half-area triangle to it — tested separately.
func TestOscillatorImpulseResponse(t *testing.T) {
	dt := 0.0005
	n := 40000
	T := 1.0
	xi := 0.05
	w := 2 * math.Pi / T
	wd := w * math.Sqrt(1-xi*xi)
	// Peak at wd t = atan(wd / (xi w)) for the impulse response.
	tPeak := math.Atan2(wd, xi*w) / wd
	want := math.Exp(-xi*w*tPeak) * math.Sin(wd*tPeak) / wd

	sd, _, _, err := Oscillator(impulseTrace(n, dt), T, xi, Duhamel)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sd-want) > 0.02*want {
		t.Errorf("duhamel: SD = %g, want ~%g", sd, want)
	}

	// Nigam-Jennings: a symmetric two-sample triangle (rise then fall)
	// integrates to the full unit area under linear interpolation.
	tri := make([]float64, n)
	tri[0] = 1 / dt // linear rise from implicit 0 before, fall to 0 after
	sdNJ, _, _, err := Oscillator(seismic.Trace{DT: dt, Data: tri}, T, xi, NigamJennings)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sdNJ-want/2) > 0.03*want {
		t.Errorf("nigam-jennings: SD = %g, want ~%g (half-area triangle)", sdNJ, want/2)
	}
}

// A very stiff oscillator rides the ground: SA -> PGA.
func TestStiffOscillatorSAEqualsPGA(t *testing.T) {
	tr := sineTrace(20000, 0.001, 2, 100) // PGA 100 gal at 2 Hz
	for _, m := range []Method{Duhamel, NigamJennings} {
		_, _, sa, err := Oscillator(tr, 0.01, 0.05, m) // T=0.01 s << 0.5 s
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sa-100) > 3 {
			t.Errorf("%v: stiff SA = %g, want ~100", m, sa)
		}
	}
}

// Resonant harmonic excitation: steady-state displacement amplitude is
// A/(2 xi w^2) at resonance (within transient tolerance).
func TestResonantAmplification(t *testing.T) {
	T := 0.5
	xi := 0.05
	w := 2 * math.Pi / T
	amp := 50.0
	tr := sineTrace(60000, 0.0005, 1/T, amp) // 30 s of resonant forcing
	want := amp / (2 * xi * w * w)
	for _, m := range []Method{Duhamel, NigamJennings} {
		sd, _, _, err := Oscillator(tr, T, xi, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sd-want) > 0.05*want {
			t.Errorf("%v: resonant SD = %g, want ~%g", m, sd, want)
		}
	}
}

// The two methods must agree on realistic records.
func TestDuhamelMatchesNigamJennings(t *testing.T) {
	rec, err := synth.Record(synth.Params{
		Station: "SS01", Seed: 3, DT: 0.01, Samples: 3000,
		Magnitude: 5.5, Distance: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rec.Accel[0]
	// Duhamel's rectangle rule carries O(dt/T) error, so the tolerance is
	// looser for short periods (T=0.1 s has only 10 samples per cycle).
	tol := map[float64]float64{0.1: 0.12, 0.3: 0.05, 1.0: 0.05, 3.0: 0.05}
	for _, T := range []float64{0.1, 0.3, 1.0, 3.0} {
		sdD, svD, saD, err := Oscillator(tr, T, 0.05, Duhamel)
		if err != nil {
			t.Fatal(err)
		}
		sdN, svN, saN, err := Oscillator(tr, T, 0.05, NigamJennings)
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			name string
			d, n float64
		}{{"SD", sdD, sdN}, {"SV", svD, svN}, {"SA", saD, saN}} {
			if pair.n == 0 {
				t.Fatalf("T=%g: %s is zero", T, pair.name)
			}
			if rel := math.Abs(pair.d-pair.n) / pair.n; rel > tol[T] {
				t.Errorf("T=%g %s: duhamel %g vs nigam-jennings %g (rel %g)",
					T, pair.name, pair.d, pair.n, rel)
			}
		}
	}
}

func TestOscillatorErrors(t *testing.T) {
	tr := sineTrace(100, 0.01, 1, 1)
	if _, _, _, err := Oscillator(seismic.Trace{}, 1, 0.05, Duhamel); err == nil {
		t.Error("invalid trace accepted")
	}
	if _, _, _, err := Oscillator(tr, 0, 0.05, Duhamel); err == nil {
		t.Error("zero period accepted")
	}
	if _, _, _, err := Oscillator(tr, -1, 0.05, Duhamel); err == nil {
		t.Error("negative period accepted")
	}
	if _, _, _, err := Oscillator(tr, 1, 0, Duhamel); err == nil {
		t.Error("zero damping accepted")
	}
	if _, _, _, err := Oscillator(tr, 1, 1, Duhamel); err == nil {
		t.Error("critical damping accepted")
	}
}

func TestSpectrumProducesValidRFile(t *testing.T) {
	tr := sineTrace(2000, 0.01, 2, 80)
	v2 := smformat.V2{
		Station: "SS07", Component: seismic.Transversal, DT: tr.DT,
		Filter: smformat.FilterParams{}.Default,
		Accel:  tr.Data,
		Vel:    make([]float64, len(tr.Data)),
		Disp:   make([]float64, len(tr.Data)),
	}
	v2.Filter.FSL, v2.Filter.FPL, v2.Filter.FPH, v2.Filter.FSH = 0.1, 0.25, 23, 25
	cfg := Config{Method: NigamJennings, Periods: LogPeriods(0.05, 10, 31)}
	r, err := Spectrum(v2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("spectrum invalid: %v", err)
	}
	if r.Station != "SS07" || r.Component != seismic.Transversal {
		t.Error("identity not propagated")
	}
	if r.Damping != 0.05 {
		t.Errorf("default damping = %g", r.Damping)
	}
	if len(r.Periods) != 31 {
		t.Errorf("periods = %d", len(r.Periods))
	}
	// The spectrum must peak near the excitation period (0.5 s).
	maxSA, maxIdx := 0.0, 0
	for i, sa := range r.SA {
		if sa > maxSA {
			maxSA, maxIdx = sa, i
		}
	}
	if r.Periods[maxIdx] < 0.3 || r.Periods[maxIdx] > 0.8 {
		t.Errorf("SA peaks at T=%g, want ~0.5", r.Periods[maxIdx])
	}
	if _, err := Spectrum(smformat.V2{}, cfg); err == nil {
		t.Error("invalid V2 accepted")
	}
	if _, err := Spectrum(v2, Config{Damping: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPseudoSpectra(t *testing.T) {
	sd := 2.0
	T := 1.0
	psv, psa := PseudoSpectra(T, sd)
	w := 2 * math.Pi
	if math.Abs(psv-w*sd) > 1e-12 || math.Abs(psa-w*w*sd) > 1e-12 {
		t.Errorf("PSV/PSA = %g/%g", psv, psa)
	}
}

func TestDefaultPeriodsSpanPaperFigure4(t *testing.T) {
	p := DefaultPeriods()
	if p[0] != 0.02 || math.Abs(p[len(p)-1]-20) > 1e-9 {
		t.Errorf("span = [%g, %g], want [0.02, 20]", p[0], p[len(p)-1])
	}
}
