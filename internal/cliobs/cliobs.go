// Package cliobs wires the observability layer into the command-line
// tools: every CLI registers the same -trace, -metrics, and -pprof flags,
// turns them into an obs.Observer with Start, and flushes the outputs with
// Close.  Keeping this in one place guarantees the three commands agree on
// flag names and file formats.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"accelproc/internal/obs"
)

// Flags holds the observability flag values shared by the CLIs.
type Flags struct {
	Trace   string
	Metrics string
	Pprof   string
}

// Register declares the shared flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.Trace, "trace", "", "write a JSON-lines span trace to this file")
	fs.StringVar(&f.Metrics, "metrics", "", "write Prometheus text-format metrics to this file on exit")
	fs.StringVar(&f.Pprof, "pprof", "", "write a CPU profile to this file")
}

// Session is an activated observability configuration.  Observer is nil
// when no flag requested output and no extra sink was supplied, so callers
// can hand it straight to pipeline.Options / bench.Config.
type Session struct {
	Observer *obs.Observer

	traceFile   *os.File
	traceSink   *obs.JSONLSink
	metricsPath string
	pprofFile   *os.File
}

// Start opens the requested outputs and begins CPU profiling if asked.
// extra sinks (a progress renderer, a test collector) are attached to the
// observer alongside the trace sink; nil entries are skipped.
func (f Flags) Start(extra ...obs.Sink) (*Session, error) {
	s := &Session{metricsPath: f.Metrics}
	var sinks []obs.Sink
	for _, e := range extra {
		if e != nil {
			sinks = append(sinks, e)
		}
	}
	if f.Trace != "" {
		file, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("trace file: %w", err)
		}
		s.traceFile = file
		s.traceSink = obs.NewJSONL(file)
		sinks = append(sinks, s.traceSink)
	}
	if len(sinks) > 0 || f.Metrics != "" {
		s.Observer = obs.New(sinks...)
	}
	if f.Pprof != "" {
		file, err := os.Create(f.Pprof)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("pprof file: %w", err)
		}
		if err := pprof.StartCPUProfile(file); err != nil {
			file.Close()
			s.Close()
			return nil, fmt.Errorf("pprof: %w", err)
		}
		s.pprofFile = file
	}
	return s, nil
}

// Close stops the CPU profile, writes the metrics exposition, and closes
// the trace file.  It is idempotent and reports the first error.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.pprofFile != nil {
		pprof.StopCPUProfile()
		keep(s.pprofFile.Close())
		s.pprofFile = nil
	}
	if s.metricsPath != "" && s.Observer != nil {
		file, err := os.Create(s.metricsPath)
		if err != nil {
			keep(fmt.Errorf("metrics file: %w", err))
		} else {
			keep(s.Observer.WritePrometheus(file))
			keep(file.Close())
		}
		s.metricsPath = ""
	}
	if s.traceFile != nil {
		keep(s.traceSink.Err())
		keep(s.traceFile.Close())
		s.traceFile = nil
	}
	return first
}
