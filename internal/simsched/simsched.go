// Package simsched is a deterministic discrete simulator of parallel
// schedules, used to evaluate the pipeline on the paper's experimental
// platform (a 12th-gen 8-core desktop) when the actual host has fewer
// processors.
//
// The pipeline's parallel constructs — OpenMP-style parallel loops and task
// groups — execute their real bodies and measure genuine per-task costs;
// this package then computes the wall time the same schedule would take on
// a machine with a given processor count.  The model is list scheduling
// (greedy earliest-available-worker assignment, the behaviour of an OpenMP
// dynamic schedule) with a linear contention penalty: when w workers run
// concurrently, every task is slowed by a factor 1 + alpha*(w-1).
//
// The contention coefficient captures why real stages do not scale
// linearly: alpha ~= 0.08 reproduces the paper's compute-bound stage IX
// (5.14x on 8 cores), alpha ~= 0.5 its I/O-bound stages (1.5x-2.0x on 8
// cores, limited by disk and memory bandwidth).
package simsched

import (
	"container/heap"
	"time"
)

// Contention coefficients calibrated against the paper's per-stage
// speedups (Figure 11); see the package comment.
const (
	// ContentionCPU models compute-bound loops (response spectra, FFTs,
	// corner picking).
	ContentionCPU = 0.08
	// ContentionIO models I/O-bound loops (file staging, splitting,
	// GEM generation, plot writing).
	ContentionIO = 0.5
)

// Slowdown returns the contention slowdown factor for n tasks spread over
// w workers with coefficient alpha: 1 + alpha*(active-1), where active is
// the number of workers that actually run concurrently.
func Slowdown(n, w int, alpha float64) float64 {
	active := w
	if n < active {
		active = n
	}
	if active < 1 {
		active = 1
	}
	return 1 + alpha*float64(active-1)
}

// workerHeap is a min-heap of worker finish times.
type workerHeap []time.Duration

func (h workerHeap) Len() int           { return len(h) }
func (h workerHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h workerHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *workerHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *workerHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Makespan returns the simulated wall time of running the given tasks on
// w workers with list scheduling in task order and the given contention
// coefficient.  w <= 1 (or a single task) degenerates to the serial sum.
func Makespan(durs []time.Duration, w int, alpha float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	slow := Slowdown(len(durs), w, alpha)
	if w == 1 || len(durs) == 1 {
		// Serial: no concurrency, no contention.
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		if len(durs) == 1 {
			return durs[0]
		}
		return sum
	}
	h := make(workerHeap, w)
	heap.Init(&h)
	for _, d := range durs {
		earliest := heap.Pop(&h).(time.Duration)
		scaled := time.Duration(float64(d) * slow)
		heap.Push(&h, earliest+scaled)
	}
	var makespan time.Duration
	for _, finish := range h {
		if finish > makespan {
			makespan = finish
		}
	}
	return makespan
}

// MakespanStatic returns the simulated wall time under a static (contiguous
// block) schedule, like OpenMP schedule(static): the iteration range is cut
// into w equal-count blocks and each worker executes one block.
func MakespanStatic(durs []time.Duration, w int, alpha float64) time.Duration {
	n := len(durs)
	if n == 0 {
		return 0
	}
	if w < 1 {
		w = 1
	}
	if w > n {
		w = n
	}
	if w == 1 {
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		return sum
	}
	slow := Slowdown(n, w, alpha)
	base, rem := n/w, n%w
	var makespan time.Duration
	start := 0
	for t := 0; t < w; t++ {
		size := base
		if t < rem {
			size++
		}
		var block time.Duration
		for i := start; i < start+size; i++ {
			block += durs[i]
		}
		start += size
		scaled := time.Duration(float64(block) * slow)
		if scaled > makespan {
			makespan = scaled
		}
	}
	return makespan
}

// Sum returns the serial total of the task durations.
func Sum(durs []time.Duration) time.Duration {
	var s time.Duration
	for _, d := range durs {
		s += d
	}
	return s
}
