package simsched

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestSlowdown(t *testing.T) {
	cases := []struct {
		n, w  int
		alpha float64
		want  float64
	}{
		{10, 1, 0.5, 1},     // one worker: no contention
		{10, 8, 0, 1},       // alpha 0: perfect scaling
		{10, 8, 0.08, 1.56}, // the calibrated CPU model at 8 workers
		{10, 8, 0.5, 4.5},   // the calibrated IO model at 8 workers
		{3, 8, 0.5, 2.0},    // only 3 tasks: 3 active workers
		{0, 8, 0.5, 1.0},    // degenerate
	}
	for _, c := range cases {
		if got := Slowdown(c.n, c.w, c.alpha); got != c.want {
			t.Errorf("Slowdown(%d,%d,%g) = %g, want %g", c.n, c.w, c.alpha, got, c.want)
		}
	}
}

func TestMakespanSerial(t *testing.T) {
	durs := []time.Duration{ms(10), ms(20), ms(30)}
	if got := Makespan(durs, 1, 0.5); got != ms(60) {
		t.Errorf("serial makespan = %v, want 60ms", got)
	}
	if got := Makespan(durs, 0, 0.5); got != ms(60) {
		t.Errorf("w=0 makespan = %v, want 60ms (clamped serial)", got)
	}
}

func TestMakespanPerfectScaling(t *testing.T) {
	// 8 equal tasks on 4 workers, no contention: 2 rounds.
	durs := make([]time.Duration, 8)
	for i := range durs {
		durs[i] = ms(10)
	}
	if got := Makespan(durs, 4, 0); got != ms(20) {
		t.Errorf("makespan = %v, want 20ms", got)
	}
}

func TestMakespanListScheduling(t *testing.T) {
	// Tasks 30,10,10,10 on 2 workers, no contention:
	// w1 gets 30; w2 gets 10+10+10 = 30 -> makespan 30.
	durs := []time.Duration{ms(30), ms(10), ms(10), ms(10)}
	if got := Makespan(durs, 2, 0); got != ms(30) {
		t.Errorf("makespan = %v, want 30ms", got)
	}
}

func TestMakespanContention(t *testing.T) {
	// 8 equal tasks on 8 workers with alpha=0.08: each slowed 1.56x.
	durs := make([]time.Duration, 8)
	for i := range durs {
		durs[i] = ms(100)
	}
	want := time.Duration(float64(ms(100)) * 1.56)
	if got := Makespan(durs, 8, 0.08); got != want {
		t.Errorf("makespan = %v, want %v", got, want)
	}
	// Speedup = 800/156 = 5.13x, the paper's stage IX on 8 cores.
	speedup := float64(Sum(durs)) / float64(Makespan(durs, 8, 0.08))
	if speedup < 5.0 || speedup > 5.3 {
		t.Errorf("simulated 8-core CPU speedup = %.2fx, want ~5.1x", speedup)
	}
}

func TestMakespanSingleTaskNoContention(t *testing.T) {
	if got := Makespan([]time.Duration{ms(42)}, 8, 0.5); got != ms(42) {
		t.Errorf("single task = %v, want 42ms", got)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if got := Makespan(nil, 4, 0.5); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := MakespanStatic(nil, 4, 0.5); got != 0 {
		t.Errorf("empty static = %v", got)
	}
}

func TestMakespanStaticBlocks(t *testing.T) {
	// 4 tasks on 2 workers, static: blocks [0,1] and [2,3].
	durs := []time.Duration{ms(30), ms(10), ms(10), ms(10)}
	// Block sums: 40, 20; alpha 0 -> makespan 40.
	if got := MakespanStatic(durs, 2, 0); got != ms(40) {
		t.Errorf("static = %v, want 40ms", got)
	}
	// Dynamic does better on the same input: 30 | 10+10+10 -> 30.
	if got := Makespan(durs, 2, 0); got != ms(30) {
		t.Errorf("dynamic = %v, want 30ms", got)
	}
}

func TestMakespanStaticSerial(t *testing.T) {
	durs := []time.Duration{ms(5), ms(6)}
	if got := MakespanStatic(durs, 1, 0.9); got != ms(11) {
		t.Errorf("serial static = %v, want 11ms", got)
	}
}

// Properties: for any task set, the makespan is bounded below by both the
// largest scaled task and the scaled average load, and above by the scaled
// serial sum; more workers never hurt (alpha = 0).
func TestMakespanBounds(t *testing.T) {
	f := func(seed int64, wRaw uint8, alphaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		w := int(wRaw)%16 + 1
		alpha := float64(alphaRaw%100) / 100
		durs := make([]time.Duration, n)
		var sum, max time.Duration
		for i := range durs {
			durs[i] = time.Duration(rng.Intn(1000)+1) * time.Millisecond
			sum += durs[i]
			if durs[i] > max {
				max = durs[i]
			}
		}
		got := Makespan(durs, w, alpha)
		slow := Slowdown(n, w, alpha)
		if n == 1 || w == 1 {
			return got <= sum && got >= max
		}
		lower := time.Duration(float64(max) * slow)
		if got < lower {
			return false
		}
		upper := time.Duration(float64(sum)*slow) + time.Millisecond
		if got > upper {
			return false
		}
		// Average-load lower bound.
		avg := time.Duration(float64(sum) * slow / float64(w))
		return got >= avg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMoreWorkersNeverSlowerWithoutContention(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40) + 2
		durs := make([]time.Duration, n)
		for i := range durs {
			durs[i] = time.Duration(rng.Intn(100)+1) * time.Millisecond
		}
		prev := Makespan(durs, 1, 0)
		for w := 2; w <= 8; w++ {
			cur := Makespan(durs, w, 0)
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSum(t *testing.T) {
	if Sum(nil) != 0 {
		t.Error("Sum(nil) != 0")
	}
	if got := Sum([]time.Duration{ms(1), ms(2), ms(3)}); got != ms(6) {
		t.Errorf("Sum = %v", got)
	}
}
