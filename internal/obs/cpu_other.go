//go:build !unix

package obs

import "time"

// cpuNow has no getrusage on this platform; spans report zero CPU time.
func cpuNow() time.Duration { return 0 }
