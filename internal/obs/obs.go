// Package obs is the zero-dependency observability layer of the pipeline
// runtime: hierarchical spans (run → stage → process → task) with monotonic
// and CPU-clock timing, a small metrics registry (counters, gauges,
// histograms), and pluggable sinks that receive finished spans — a JSON-lines
// trace writer, a Prometheus text exposition, an in-memory collector, and a
// human progress renderer.
//
// The paper's contribution is *measured* per-stage cost (Figure 11's
// 57.2%-dominant stage IX dictated the parallelization order), so the
// runtime must be able to answer "where did the time go" from a live run,
// not from separate timers bolted onto each driver.  Every pipeline run
// reports into an Observer; figures and progress output are derived from
// the resulting span tree.
//
// All types are safe for concurrent use, and every entry point tolerates
// nil receivers: a nil *Observer produces nil spans and nil metrics whose
// methods no-op, so instrumented code needs no "if observing" branches.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies a span's level in the run → stage → process → task
// hierarchy.
type SpanKind int

const (
	// KindRun is a whole pipeline (or experiment) execution.
	KindRun SpanKind = iota
	// KindStage is one of the schedule's stages (I-XI) inside a run.
	KindStage
	// KindProcess is one of the chain's 20 processes inside a stage.
	KindProcess
	// KindTask is a sub-process unit of work: a temp-folder staging step,
	// a parallel-loop shard, an ingest of one event directory.
	KindTask
)

// String returns the lower-case name used in trace files.
func (k SpanKind) String() string {
	switch k {
	case KindRun:
		return "run"
	case KindStage:
		return "stage"
	case KindProcess:
		return "process"
	case KindTask:
		return "task"
	default:
		return "span"
	}
}

// Attr is a key/value annotation attached to a span.
type Attr struct {
	Key   string
	Value any
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: value} }

// Float builds a float-valued attribute.
func Float(key string, value float64) Attr { return Attr{Key: key, Value: value} }

// SpanRecord is the immutable description of a finished span, delivered to
// every sink.  Start is an offset from the observer's epoch on the
// monotonic clock; Duration is the *charged* duration (on the simulated
// platform this includes virtual-time corrections, so span trees agree with
// the run's reported Timings), Wall the raw wall-clock duration, and CPU the
// process CPU time consumed while the span was open (meaningful for
// serially executed spans; an approximation under concurrency).
type SpanRecord struct {
	ID       int64
	Parent   int64 // 0 for root spans
	Name     string
	Kind     SpanKind
	Start    time.Duration
	Duration time.Duration
	Wall     time.Duration
	CPU      time.Duration
	Attrs    []Attr
}

// Attr returns the value of the named attribute, or nil.
func (r SpanRecord) Attr(key string) any {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return nil
}

// IntAttr returns the named integer attribute.
func (r SpanRecord) IntAttr(key string) (int64, bool) {
	v, ok := r.Attr(key).(int64)
	return v, ok
}

// StringAttr returns the named string attribute.
func (r SpanRecord) StringAttr(key string) (string, bool) {
	v, ok := r.Attr(key).(string)
	return v, ok
}

// Sink receives finished spans.  Record is called synchronously from
// Span.End, possibly from several goroutines at once; implementations must
// be safe for concurrent use and should return quickly.
type Sink interface {
	Record(SpanRecord)
}

// Observer is the instrumentation hub one run (or one process) reports
// into: it allocates spans, owns the metrics registry, and fans finished
// spans out to its sinks.  The zero value is not usable; construct with New.
// A nil *Observer is a valid "observability off" value everywhere.
type Observer struct {
	epoch  time.Time
	nextID atomic.Int64

	sinkMu sync.RWMutex
	sinks  []Sink

	metricMu   sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// New returns an Observer delivering finished spans to the given sinks.
func New(sinks ...Sink) *Observer {
	return &Observer{
		epoch:      time.Now(),
		sinks:      append([]Sink(nil), sinks...),
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// AddSink attaches an additional sink; RemoveSink detaches it again.  The
// bench harness uses this to tap a shared observer with a per-run collector.
func (o *Observer) AddSink(s Sink) {
	if o == nil || s == nil {
		return
	}
	o.sinkMu.Lock()
	o.sinks = append(o.sinks, s)
	o.sinkMu.Unlock()
}

// RemoveSink detaches a sink previously attached with New or AddSink.
func (o *Observer) RemoveSink(s Sink) {
	if o == nil {
		return
	}
	o.sinkMu.Lock()
	defer o.sinkMu.Unlock()
	for i, have := range o.sinks {
		if have == s {
			o.sinks = append(o.sinks[:i], o.sinks[i+1:]...)
			return
		}
	}
}

// now returns the monotonic offset from the observer's epoch.
func (o *Observer) now() time.Duration { return time.Since(o.epoch) }

func (o *Observer) emit(rec SpanRecord) {
	o.sinkMu.RLock()
	sinks := o.sinks
	o.sinkMu.RUnlock()
	for _, s := range sinks {
		s.Record(rec)
	}
}

// Span is an open interval of work.  Create roots with Observer.Root and
// children with Span.Child; finish with End or EndCharged.  All methods are
// nil-safe, so instrumented code can thread spans unconditionally.
type Span struct {
	o      *Observer
	id     int64
	parent int64
	name   string
	kind   SpanKind
	start  time.Duration
	cpu0   time.Duration
	attrs  []Attr
	ended  atomic.Bool
}

// Root opens a top-level span.
func (o *Observer) Root(name string, kind SpanKind, attrs ...Attr) *Span {
	if o == nil {
		return nil
	}
	return o.open(0, name, kind, attrs)
}

func (o *Observer) open(parent int64, name string, kind SpanKind, attrs []Attr) *Span {
	return &Span{
		o:      o,
		id:     o.nextID.Add(1),
		parent: parent,
		name:   name,
		kind:   kind,
		start:  o.now(),
		cpu0:   cpuNow(),
		attrs:  attrs,
	}
}

// Child opens a span nested under s.  Safe to call from several goroutines
// at once (task-parallel stages open concurrent process spans).
func (s *Span) Child(name string, kind SpanKind, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.o.open(s.id, name, kind, attrs)
}

// ID returns the span's identifier (0 for a nil span).
func (s *Span) ID() int64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span with its wall-clock duration and delivers the
// record to the observer's sinks.  Ending a span twice is a no-op.
func (s *Span) End(attrs ...Attr) { s.end(-1, attrs) }

// EndCharged finishes the span like End but reports the given charged
// duration instead of the wall-clock one.  The pipeline uses this so spans
// carry the same virtual-corrected durations as Result.Timings when running
// on the simulated platform.
func (s *Span) EndCharged(d time.Duration, attrs ...Attr) { s.end(d, attrs) }

func (s *Span) end(charged time.Duration, attrs []Attr) {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	wall := s.o.now() - s.start
	d := charged
	if d < 0 {
		d = wall
	}
	rec := SpanRecord{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		Kind:     s.kind,
		Start:    s.start,
		Duration: d,
		Wall:     wall,
		CPU:      cpuNow() - s.cpu0,
		Attrs:    s.attrs,
	}
	if len(attrs) > 0 {
		rec.Attrs = append(append([]Attr(nil), s.attrs...), attrs...)
	}
	s.o.emit(rec)
}
