package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpanTreeParentageAndAttrs(t *testing.T) {
	col := &Collector{}
	o := New(col)

	run := o.Root("run:test", KindRun, String("variant", "full"))
	stage := run.Child("stage:IX", KindStage, Int("stage", 9))
	proc := stage.Child("process:response", KindProcess, Int("process", 16))
	proc.End()
	stage.EndCharged(3*time.Second, Int("extra", 1))
	run.End()

	recs := col.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	// Spans arrive in end order: process, stage, run.
	p, s, r := recs[0], recs[1], recs[2]
	if r.Parent != 0 {
		t.Errorf("run parent = %d, want 0", r.Parent)
	}
	if s.Parent != r.ID {
		t.Errorf("stage parent = %d, want run id %d", s.Parent, r.ID)
	}
	if p.Parent != s.ID {
		t.Errorf("process parent = %d, want stage id %d", p.Parent, s.ID)
	}
	if v, _ := r.StringAttr("variant"); v != "full" {
		t.Errorf("variant attr = %q", v)
	}
	if v, _ := s.IntAttr("stage"); v != 9 {
		t.Errorf("stage attr = %d", v)
	}
	if s.Duration != 3*time.Second {
		t.Errorf("charged duration = %v, want 3s", s.Duration)
	}
	if s.Wall < 0 || s.Start < 0 || s.CPU < 0 {
		t.Errorf("negative timing: wall=%v start=%v cpu=%v", s.Wall, s.Start, s.CPU)
	}
	// End-time attrs append to open-time attrs.
	if v, _ := s.IntAttr("extra"); v != 1 {
		t.Errorf("end attr missing: %v", s.Attrs)
	}
	if r.Attr("nope") != nil {
		t.Error("unknown attr not nil")
	}
}

func TestSpanEndTwiceEmitsOnce(t *testing.T) {
	col := &Collector{}
	o := New(col)
	sp := o.Root("x", KindTask)
	sp.End()
	sp.End()
	sp.EndCharged(time.Second)
	if n := len(col.Records()); n != 1 {
		t.Errorf("records = %d, want 1", n)
	}
}

func TestNilObserverAndSpanNoOp(t *testing.T) {
	var o *Observer
	sp := o.Root("x", KindRun)
	if sp != nil {
		t.Error("nil observer produced a span")
	}
	sp.End()
	sp.EndCharged(time.Second)
	child := sp.Child("y", KindTask)
	child.End()
	if sp.ID() != 0 {
		t.Errorf("nil span ID = %d", sp.ID())
	}
	o.Counter("c").Add(1)
	o.Gauge("g").Set(1)
	o.Histogram("h", nil).Observe(1)
	if o.Counter("c").Value() != 0 || o.Gauge("g").Value() != 0 || o.Histogram("h", nil).Count() != 0 {
		t.Error("nil metrics retained values")
	}
	if err := o.WritePrometheus(io.Discard); err != nil {
		t.Error(err)
	}
	o.AddSink(&Collector{})
	o.RemoveSink(nil)
	m := NewWorkerMonitor(nil, "s")
	if m != nil {
		t.Error("nil observer produced a monitor")
	}
	m.WorkerSpan(0, time.Second, time.Second, 1)
	m.TaskWait(time.Second)
}

func TestCounterGaugeHistogram(t *testing.T) {
	o := New()
	c := o.Counter("c")
	c.Add(2)
	c.Add(0.5)
	c.Add(-7) // ignored: counters are monotonic
	if c.Value() != 2.5 {
		t.Errorf("counter = %g, want 2.5", c.Value())
	}
	if o.Counter("c") != c {
		t.Error("counter not registered once")
	}

	g := o.Gauge("g")
	g.Set(3)
	g.Add(-1)
	if g.Value() != 2 {
		t.Errorf("gauge = %g, want 2", g.Value())
	}

	h := o.Histogram("h", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.1, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Errorf("histogram count = %d, want 4", h.Count())
	}
	if math.Abs(h.Sum()-5.65) > 1e-9 {
		t.Errorf("histogram sum = %g, want 5.65", h.Sum())
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	o := New()
	o.Counter("records_processed_total").Add(42)
	o.Gauge("occupancy").Set(0.5)
	h := o.Histogram("wait_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := o.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE occupancy gauge
occupancy 0.5
# TYPE records_processed_total counter
records_processed_total 42
# TYPE wait_seconds histogram
wait_seconds_bucket{le="0.1"} 1
wait_seconds_bucket{le="1"} 2
wait_seconds_bucket{le="+Inf"} 3
wait_seconds_sum 5.55
wait_seconds_count 3
`
	if buf.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	o := New(sink)
	run := o.Root("run:test", KindRun, String("variant", "full"))
	// An attribute colliding with a reserved trace field must not clobber it.
	st := run.Child("stage:IX", KindStage, Int("stage", 9), Int("id", 999))
	st.EndCharged(2 * time.Second)
	run.End()
	if err := sink.Err(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var stage map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &stage); err != nil {
		t.Fatal(err)
	}
	if stage["kind"] != "stage" || stage["name"] != "stage:IX" {
		t.Errorf("stage line = %v", stage)
	}
	if stage["stage"].(float64) != 9 {
		t.Errorf("stage attr not flattened: %v", stage)
	}
	if stage["id"].(float64) == 999 {
		t.Error("attr clobbered the reserved id field")
	}
	if stage["dur_us"].(float64) != 2e6 {
		t.Errorf("dur_us = %v, want 2000000", stage["dur_us"])
	}
	var runLine map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &runLine); err != nil {
		t.Fatal(err)
	}
	if runLine["parent"].(float64) != 0 || stage["parent"].(float64) != runLine["id"].(float64) {
		t.Errorf("parentage wrong: stage=%v run=%v", stage, runLine)
	}
}

func TestProgressRendererPrintsProcessSpansOnly(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgressRenderer(&buf)
	o := New(p)
	run := o.Root("run:test", KindRun)
	run.Child("stage:IX", KindStage, Int("stage", 9)).End()
	proc := run.Child("process:response", KindProcess,
		Int("process", 16), String("process_name", "response spectrum calculation"))
	proc.EndCharged(812 * time.Millisecond)
	run.End()

	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("output = %q, want one line", out)
	}
	for _, want := range []string{"#16", "response spectrum calculation", "0.812 s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output %q missing %q", out, want)
		}
	}
}

func TestCollectorDrain(t *testing.T) {
	col := &Collector{}
	o := New(col)
	o.Root("a", KindTask).End()
	if got := col.Drain(); len(got) != 1 {
		t.Fatalf("drained %d, want 1", len(got))
	}
	if got := col.Drain(); len(got) != 0 {
		t.Errorf("second drain = %d records", len(got))
	}
	o.Root("b", KindTask).End()
	if got := col.Records(); len(got) != 1 || got[0].Name != "b" {
		t.Errorf("after drain: %v", got)
	}
}

func TestRemoveSinkStopsDelivery(t *testing.T) {
	col := &Collector{}
	o := New()
	o.AddSink(col)
	o.Root("a", KindTask).End()
	o.RemoveSink(col)
	o.Root("b", KindTask).End()
	recs := col.Records()
	if len(recs) != 1 || recs[0].Name != "a" {
		t.Errorf("records = %v", recs)
	}
}

func TestWorkerMonitorAccounting(t *testing.T) {
	o := New()
	m := NewWorkerMonitor(o, "test")
	m.WorkerSpan(0, 3*time.Second, time.Second, 5)
	m.WorkerSpan(1, 1*time.Second, 3*time.Second, 2)
	m.TaskWait(10 * time.Millisecond)

	if v := o.Counter("test_worker_busy_seconds_total").Value(); v != 4 {
		t.Errorf("busy = %g, want 4", v)
	}
	if v := o.Counter("test_worker_idle_seconds_total").Value(); v != 4 {
		t.Errorf("idle = %g, want 4", v)
	}
	if v := o.Counter("test_worker_tasks_total").Value(); v != 7 {
		t.Errorf("tasks = %g, want 7", v)
	}
	if v := o.Gauge("test_worker_occupancy").Value(); v != 0.5 {
		t.Errorf("occupancy = %g, want 0.5", v)
	}
	if n := o.Histogram("test_queue_wait_seconds", nil).Count(); n != 1 {
		t.Errorf("wait samples = %d, want 1", n)
	}
}

func TestSpanKindString(t *testing.T) {
	names := map[SpanKind]string{
		KindRun: "run", KindStage: "stage", KindProcess: "process",
		KindTask: "task", SpanKind(99): "span",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}
