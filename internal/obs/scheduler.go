package obs

import "time"

// SchedulerMonitor bundles the gauges and counters a multi-job scheduler
// exports: ready-queue depth, admission state, and per-job latency.  The
// fleet scheduler (internal/fleet) registers one per pool; like every obs
// type it is nil-safe, so instrumentation costs nothing when no observer is
// attached.
//
// Metrics registered under the given scope:
//
//	<scope>_queue_depth             gauge     — ready tasks awaiting a worker
//	<scope>_events_open             gauge     — jobs admitted and not yet done
//	<scope>_events_waiting          gauge     — jobs enqueued, not yet admitted
//	<scope>_events_admitted_total   counter   — admission-control passes
//	<scope>_events_completed_total  counter   — jobs fully drained
//	<scope>_event_latency_seconds   histogram — admission-to-done latency
//
// plus the <scope>_worker_* occupancy family via the embedded WorkerMonitor.
type SchedulerMonitor struct {
	depth     *Gauge
	open      *Gauge
	waiting   *Gauge
	admitted  *Counter
	completed *Counter
	latency   *Histogram
	workers   *WorkerMonitor
}

// NewSchedulerMonitor registers the scheduler metrics under scope.  A nil
// observer yields a nil monitor; every method tolerates the nil receiver.
func NewSchedulerMonitor(o *Observer, scope string) *SchedulerMonitor {
	if o == nil {
		return nil
	}
	return &SchedulerMonitor{
		depth:     o.Gauge(scope + "_queue_depth"),
		open:      o.Gauge(scope + "_events_open"),
		waiting:   o.Gauge(scope + "_events_waiting"),
		admitted:  o.Counter(scope + "_events_admitted_total"),
		completed: o.Counter(scope + "_events_completed_total"),
		latency:   o.Histogram(scope+"_event_latency_seconds", nil),
		workers:   NewWorkerMonitor(o, scope),
	}
}

// QueueDepth records the current number of ready tasks awaiting a worker.
func (m *SchedulerMonitor) QueueDepth(n int) {
	if m == nil {
		return
	}
	m.depth.Set(float64(n))
}

// Admission records the admission-control state: jobs currently open (past
// admission, not yet complete) and jobs still waiting in the arrival queue.
func (m *SchedulerMonitor) Admission(open, waiting int) {
	if m == nil {
		return
	}
	m.open.Set(float64(open))
	m.waiting.Set(float64(waiting))
}

// Admitted counts one job passing admission control.
func (m *SchedulerMonitor) Admitted() {
	if m == nil {
		return
	}
	m.admitted.Add(1)
}

// Completed records one job fully drained, with its admission-to-done
// latency.
func (m *SchedulerMonitor) Completed(latency time.Duration) {
	if m == nil {
		return
	}
	m.completed.Add(1)
	m.latency.Observe(latency.Seconds())
}

// Workers returns the embedded worker-occupancy monitor (nil when the
// scheduler monitor is nil, which downstream code already tolerates).
func (m *SchedulerMonitor) Workers() *WorkerMonitor {
	if m == nil {
		return nil
	}
	return m.workers
}
