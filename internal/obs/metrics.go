package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric (records processed, bytes
// staged, accumulated busy seconds).  The zero value of *Counter (nil)
// no-ops, so call sites need no observer guard.
type Counter struct {
	bits atomic.Uint64
}

// Add increases the counter by delta (negative deltas are ignored).
func (c *Counter) Add(delta float64) {
	if c == nil || delta < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down (worker occupancy, queue depth).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution (queue wait, task duration).
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending
	counts  []uint64  // len(bounds)+1; last is the +Inf bucket
	sum     float64
	samples uint64
}

// DefaultDurationBuckets is a seconds-scale bucket layout suited to queue
// waits and task durations inside the pipeline (100µs to ~100s).
var DefaultDurationBuckets = []float64{
	0.0001, 0.001, 0.01, 0.1, 1, 10, 100,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.samples++
	h.mu.Unlock()
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.samples
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Counter returns (registering on first use) the named counter.  A nil
// observer returns a nil counter whose methods no-op.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.metricMu.Lock()
	defer o.metricMu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{}
		o.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.metricMu.Lock()
	defer o.metricMu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{}
		o.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram with the
// given ascending bucket bounds; nil bounds select
// DefaultDurationBuckets.  Bounds are fixed at first registration.
func (o *Observer) Histogram(name string, bounds []float64) *Histogram {
	if o == nil {
		return nil
	}
	o.metricMu.Lock()
	defer o.metricMu.Unlock()
	h, ok := o.histograms[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultDurationBuckets
		}
		h = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]uint64, len(bounds)+1),
		}
		o.histograms[name] = h
	}
	return h
}

// formatFloat renders metric values the way the Prometheus text format
// expects: shortest representation that round-trips.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), with metric families sorted by name so
// the output is deterministic.
func (o *Observer) WritePrometheus(w io.Writer) error {
	if o == nil {
		return nil
	}
	o.metricMu.Lock()
	counters := make(map[string]*Counter, len(o.counters))
	for k, v := range o.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(o.gauges))
	for k, v := range o.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(o.histograms))
	for k, v := range o.histograms {
		histograms[k] = v
	}
	o.metricMu.Unlock()

	var names []string
	for k := range counters {
		names = append(names, k)
	}
	for k := range gauges {
		names = append(names, k)
	}
	for k := range histograms {
		names = append(names, k)
	}
	sort.Strings(names)

	for _, name := range names {
		if c, ok := counters[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, formatFloat(c.Value())); err != nil {
				return err
			}
			continue
		}
		if g, ok := gauges[name]; ok {
			if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(g.Value())); err != nil {
				return err
			}
			continue
		}
		h := histograms[name]
		h.mu.Lock()
		bounds := append([]float64(nil), h.bounds...)
		counts := append([]uint64(nil), h.counts...)
		sum, samples := h.sum, h.samples
		h.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, b := range bounds {
			cum += counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(b), cum); err != nil {
				return err
			}
		}
		cum += counts[len(bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum, name, formatFloat(sum), name, samples); err != nil {
			return err
		}
	}
	return nil
}
