//go:build unix

package obs

import (
	"syscall"
	"time"
)

// cpuNow returns the accumulated CPU time (user + system) of this process.
// Span records carry the CPU time consumed while the span was open, which is
// exact for serially executed spans (the simulated platform) and a
// whole-process approximation under real concurrency.
func cpuNow() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
