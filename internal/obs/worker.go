package obs

import "time"

// WorkerMonitor aggregates per-worker busy/idle accounting from the
// parallel runtime into observer metrics.  It structurally satisfies
// parallel.Monitor and parallel.WaitMonitor without obs importing the
// parallel package (obs stays dependency-free).
//
// Metrics registered under the given scope:
//
//	<scope>_worker_busy_seconds_total   counter — time spent executing bodies
//	<scope>_worker_idle_seconds_total   counter — time waiting (load imbalance)
//	<scope>_worker_tasks_total          counter — loop iterations / tasks run
//	<scope>_worker_occupancy            gauge   — busy / (busy + idle), cumulative
//	<scope>_queue_wait_seconds          histogram — submit-to-start latency
type WorkerMonitor struct {
	busy, idle, tasks *Counter
	occupancy         *Gauge
	wait              *Histogram
}

// NewWorkerMonitor registers the occupancy metrics under scope and returns
// the monitor.  A nil observer yields a nil monitor; callers converting it
// to an interface should keep the nil (see pipeline's state.monitor).
func NewWorkerMonitor(o *Observer, scope string) *WorkerMonitor {
	if o == nil {
		return nil
	}
	return &WorkerMonitor{
		busy:      o.Counter(scope + "_worker_busy_seconds_total"),
		idle:      o.Counter(scope + "_worker_idle_seconds_total"),
		tasks:     o.Counter(scope + "_worker_tasks_total"),
		occupancy: o.Gauge(scope + "_worker_occupancy"),
		wait:      o.Histogram(scope+"_queue_wait_seconds", nil),
	}
}

// WorkerSpan records one worker's share of a parallel construct: busy time
// executing bodies, idle time waiting on the construct (imbalance), and the
// number of tasks it ran.
func (m *WorkerMonitor) WorkerSpan(worker int, busy, idle time.Duration, tasks int) {
	if m == nil {
		return
	}
	m.busy.Add(busy.Seconds())
	m.idle.Add(idle.Seconds())
	m.tasks.Add(float64(tasks))
	b, i := m.busy.Value(), m.idle.Value()
	if b+i > 0 {
		m.occupancy.Set(b / (b + i))
	}
}

// TaskWait records the time one task spent queued before starting.
func (m *WorkerMonitor) TaskWait(d time.Duration) {
	if m == nil {
		return
	}
	m.wait.Observe(d.Seconds())
}
