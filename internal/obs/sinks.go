package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLSink writes one JSON object per finished span — the trace-file
// format behind the CLIs' -trace flag.  Fields are microsecond-resolution
// so traces stay greppable and jq-friendly:
//
//	{"id":7,"parent":3,"name":"stage:IX","kind":"stage",
//	 "start_us":1042,"dur_us":51210,"wall_us":51210,"cpu_us":50988,
//	 "stage":9}
//
// Span attributes are flattened into top-level fields.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONL returns a sink writing JSON lines to w.
func NewJSONL(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Record implements Sink.
func (s *JSONLSink) Record(rec SpanRecord) {
	line := map[string]any{
		"id":       rec.ID,
		"parent":   rec.Parent,
		"name":     rec.Name,
		"kind":     rec.Kind.String(),
		"start_us": rec.Start.Microseconds(),
		"dur_us":   rec.Duration.Microseconds(),
		"wall_us":  rec.Wall.Microseconds(),
		"cpu_us":   rec.CPU.Microseconds(),
	}
	for _, a := range rec.Attrs {
		if _, taken := line[a.Key]; !taken {
			line[a.Key] = a.Value
		}
	}
	data, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		_, s.err = s.w.Write(append(data, '\n'))
	}
}

// Err reports the first write error, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Collector retains finished spans in memory — the sink behind tests and
// the bench harness's trace-derived figures.
type Collector struct {
	mu   sync.Mutex
	recs []SpanRecord
}

// Record implements Sink.
func (c *Collector) Record(rec SpanRecord) {
	c.mu.Lock()
	c.recs = append(c.recs, rec)
	c.mu.Unlock()
}

// Records returns a copy of everything collected so far.
func (c *Collector) Records() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanRecord(nil), c.recs...)
}

// Drain returns everything collected so far and resets the collector.
func (c *Collector) Drain() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.recs
	c.recs = nil
	return out
}

// ProgressRenderer prints one line per finished process span — the human
// progress view that replaced the old Options.Progress callback:
//
//	#16 response spectrum calculation          0.812 s
//
// Only KindProcess spans are rendered; runs, stages, and tasks pass silently.
type ProgressRenderer struct {
	mu sync.Mutex
	w  io.Writer
}

// NewProgressRenderer returns a renderer writing to w.
func NewProgressRenderer(w io.Writer) *ProgressRenderer {
	return &ProgressRenderer{w: w}
}

// Record implements Sink.
func (p *ProgressRenderer) Record(rec SpanRecord) {
	if rec.Kind != KindProcess {
		return
	}
	id, _ := rec.IntAttr("process")
	name, ok := rec.StringAttr("process_name")
	if !ok {
		name = rec.Name
	}
	p.mu.Lock()
	fmt.Fprintf(p.w, "  #%-2d %-38s %8.3f s\n", id, name, rec.Duration.Seconds())
	p.mu.Unlock()
}
