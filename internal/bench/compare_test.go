package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func compareFixture() (Report, Report) {
	oldRep := Report{
		Label: "base",
		Events: []EventReport{
			{Event: "ev1", Variants: map[string]VariantReport{
				"full":      {Seconds: 10},
				"pipelined": {Seconds: 8},
			}},
			{Event: "gone", Variants: map[string]VariantReport{
				"full": {Seconds: 3},
			}},
		},
	}
	newRep := Report{
		Label: "next",
		Events: []EventReport{
			{Event: "ev1", Variants: map[string]VariantReport{
				"full":      {Seconds: 12}, // +20%: regression at 10%
				"pipelined": {Seconds: 7},  // improvement
				"partial":   {Seconds: 5},  // no old counterpart
			}},
			{Event: "fresh", Variants: map[string]VariantReport{
				"full": {Seconds: 1},
			}},
		},
	}
	return oldRep, newRep
}

func TestCompareDeltasAndCoverage(t *testing.T) {
	oldRep, newRep := compareFixture()
	c := Compare(oldRep, newRep)
	if len(c.Deltas) != 2 {
		t.Fatalf("deltas = %d, want 2: %+v", len(c.Deltas), c.Deltas)
	}
	full := c.Deltas[0]
	if full.Variant != "full" || full.Ratio < 1.19 || full.Ratio > 1.21 {
		t.Errorf("full delta = %+v, want ratio 1.2", full)
	}
	if !full.Regressed(0.10) {
		t.Error("+20% not flagged at a 10% threshold")
	}
	if full.Regressed(0.25) {
		t.Error("+20% flagged at a 25% threshold")
	}
	pip := c.Deltas[1]
	if pip.Variant != "pipelined" || pip.Regressed(0.10) {
		t.Errorf("improvement flagged as regression: %+v", pip)
	}
	wantOld := []string{"gone"}
	wantNew := []string{"ev1/partial", "fresh"}
	if len(c.OnlyOld) != 1 || c.OnlyOld[0] != wantOld[0] {
		t.Errorf("OnlyOld = %v, want %v", c.OnlyOld, wantOld)
	}
	if len(c.OnlyNew) != 2 || c.OnlyNew[0] != wantNew[0] || c.OnlyNew[1] != wantNew[1] {
		t.Errorf("OnlyNew = %v, want %v", c.OnlyNew, wantNew)
	}
	if got := len(c.Regressions(0.10)); got != 1 {
		t.Errorf("regressions at 10%% = %d, want 1", got)
	}
}

func TestCompareFormatMarksRegressions(t *testing.T) {
	oldRep, newRep := compareFixture()
	out := Compare(oldRep, newRep).Format(0.10)
	for _, want := range []string{"event ev1", "REGRESSED", "only in base: gone", "only in next: fresh", "1 regression"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted comparison missing %q:\n%s", want, out)
		}
	}
}

func TestReadReportFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadReportFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing report accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadReportFile(bad); err == nil {
		t.Error("malformed report accepted")
	}
}
