// Package bench is the experiment harness that regenerates the paper's
// evaluation: Table I (per-event execution times of the variants),
// Figure 11 (per-stage times and speedups on the largest event), Figure 12
// (the per-event comparison, the same data as Table I), and Figure 13
// (speedup and throughput versus problem size).
//
// The harness generates each paper event synthetically (see internal/synth
// for the substitution rationale), prepares a fresh work directory per
// variant, runs the pipeline, and reports timings in the paper's layout.
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"accelproc/internal/faults"
	"accelproc/internal/obs"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies every event's data-point count; 1.0 reproduces the
	// paper's sizes (56K-384K points), smaller values run the same shape
	// faster.  Zero selects 1.0.
	Scale float64
	// Workers is the processor budget for the parallel variants
	// (0 = all processors, like the paper's use of the full machine).
	Workers int
	// Response is the stage IX workload.  The zero value selects the
	// legacy-shape default: the Duhamel O(D²) method on ShapePeriods
	// periods, which reproduces the paper's stage IX share (~57% of the
	// sequential runtime).
	Response response.Config
	// Events are the event specs to process; nil selects the paper's six.
	Events []synth.EventSpec
	// WorkRoot is where per-run work directories are created; empty
	// selects the OS temp directory.
	WorkRoot string
	// Variants are the implementations to run; nil selects all five (the
	// paper's four plus the barrier-free Pipelined dataflow schedule).
	Variants []pipeline.Variant
	// SimProcessors selects the evaluation platform: 0 (auto) simulates
	// the paper's 8-processor machine when the host has fewer than
	// PaperProcessors cores and uses real goroutine parallelism otherwise;
	// a positive value forces simulation of that many processors; a
	// negative value forces real execution.  See internal/simsched for
	// the platform model.
	SimProcessors int
	// Repeat runs every (event, variant) measurement this many times and
	// keeps the fastest, the standard defense against scheduler noise.
	// Zero selects 1.
	Repeat int
	// Observer, when non-nil, receives every pipeline run's spans and
	// metrics (trace files, Prometheus exposition).  The harness collects
	// span trees for its trace-derived figures either way: with a nil
	// Observer it uses a private one.
	Observer *obs.Observer
	// ChaosRate, when positive, injects seeded faults into the temp-folder
	// protocol at this per-operation rate, so the cost of the recovery
	// machinery (retries, quarantine) can be benchmarked alongside the
	// healthy path.  Chaos runs keep their timings but are excluded from
	// none of the tables — interpret them as degraded-mode measurements.
	ChaosRate float64
	// ChaosSeed drives the injector; the same seed reproduces the same
	// fault sequence run over run.
	ChaosSeed int64
	// Cache selects the caching layers of every pipeline run (the -cache
	// flag).  The zero value keeps the in-process memo; CacheOff is the
	// cached-vs-uncached ablation endpoint; CachePersistent adds the
	// content-addressed action cache (the cold-vs-warm ablation endpoint).
	// On-disk outputs are byte-identical in every mode; only decode/copy
	// work changes.
	Cache pipeline.CacheConfig
	// NoArtifactCache is the deprecated spelling of Cache.Mode == CacheOff,
	// honored only while Cache is the zero value.
	NoArtifactCache bool
	// Storage selects the pipeline's storage backend for every run: the
	// zero value (or "fs") is the plain filesystem, "mem" keeps inter-stage
	// file bytes in memory and materializes only the final event products.
	// Outputs are byte-identical across backends; only I/O work differs.
	Storage storage.Backend
	// Streaming enables the streaming execution plane for measured runs of
	// the Pipelined variant (the only variant that supports it; the others
	// run materialized as always).  Outputs are byte-identical; only how
	// bytes move between the hot stages changes.
	Streaming bool
}

// PaperProcessors is the core count of the paper's experimental platform
// (12th Gen Intel Core i5-12450H: 8 cores).
const PaperProcessors = 8

// resolveSimProcessors applies the auto rule described on
// Config.SimProcessors.
func resolveSimProcessors(v int) int {
	switch {
	case v > 0:
		return v
	case v < 0:
		return 0
	case runtime.NumCPU() < PaperProcessors:
		return PaperProcessors
	default:
		return 0
	}
}

// ShapePeriods is the period-grid size used by the legacy-shape stage IX
// workload.  With the Duhamel O(D²) method at ReferenceScale it reproduces
// the paper's profile, where the response-spectrum stage dominates the
// sequential runtime (57.2% in the paper's Figure 11).
const ShapePeriods = 8

// ReferenceScale is the workload scale at which the legacy-shape defaults
// reproduce the paper's stage-share profile.  The Go substrates are faster
// than the legacy Fortran-and-gnuplot chain by different factors per stage,
// so running the paper's exact data-point counts would over-weight the
// O(D²) response stage; at this scale the measured stage shares match the
// paper's (see EXPERIMENTS.md).
const ReferenceScale = 0.16

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Response.Periods == nil && c.Response.Damping == 0 {
		c.Response = response.Config{
			Method:  response.Duhamel,
			Periods: response.LogPeriods(0.05, 10, ShapePeriods),
		}
	}
	if c.Events == nil {
		c.Events = synth.PaperEvents()
	}
	if c.Variants == nil {
		c.Variants = pipeline.Variants[:]
	}
	if c.WorkRoot == "" {
		c.WorkRoot = os.TempDir()
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	return c
}

// EventResult reports one event processed by every variant.
type EventResult struct {
	Spec    synth.EventSpec // the (possibly scaled) spec that was run
	Files   int
	Points  int
	Times   map[pipeline.Variant]time.Duration
	Timings map[pipeline.Variant]pipeline.Timings
	// Traces holds the span tree of the kept (fastest) repetition of each
	// variant.  The Figure 11 stage rows are derived from these records
	// rather than from separate timers, so the published figures and the
	// trace files describe the same measurement.
	Traces map[pipeline.Variant][]obs.SpanRecord
	// StorageBytesPeak is the largest in-memory residency any run of this
	// event reached; always 0 on the fs backend.
	StorageBytesPeak int64
	// Cache sums the cache counters of every measured run of this event
	// (all repetitions and variants), the report's evidence of which
	// caching layers were actually exercised.
	Cache pipeline.CacheStats
	// Quarantined sums the records the retry engine gave up on across every
	// measured run of this event; non-zero only under chaos injection.  The
	// CLI maps a non-zero total to exit code 3 (completed with losses).
	Quarantined int64
}

// Speedup is the paper's headline metric: sequential-original time over
// fully-parallelized time.
func (r EventResult) Speedup() float64 {
	seq, okS := r.Times[pipeline.SeqOriginal]
	par, okP := r.Times[pipeline.FullParallel]
	if !okS || !okP || par <= 0 {
		return 0
	}
	return seq.Seconds() / par.Seconds()
}

// PointsPerSecond is the fully-parallelized throughput (Figure 13's green
// series).
func (r EventResult) PointsPerSecond() float64 {
	par, ok := r.Times[pipeline.FullParallel]
	if !ok || par <= 0 {
		return 0
	}
	return float64(r.Points) / par.Seconds()
}

// SeqPointsPerSecond is the sequential-original throughput (the paper
// reports ~800 points/s).
func (r EventResult) SeqPointsPerSecond() float64 {
	seq, ok := r.Times[pipeline.SeqOriginal]
	if !ok || seq <= 0 {
		return 0
	}
	return float64(r.Points) / seq.Seconds()
}

// RunEvent generates the event at the configured scale and runs every
// configured variant on a fresh work directory.  ctx cancellation aborts
// the in-flight pipeline run and returns its error.
func RunEvent(ctx context.Context, spec synth.EventSpec, cfg Config) (EventResult, error) {
	cfg = cfg.withDefaults()
	scaled := spec.Scale(cfg.Scale)
	ev, err := synth.Event(scaled)
	if err != nil {
		return EventResult{}, err
	}
	res := EventResult{
		Spec:    scaled,
		Files:   scaled.Files,
		Points:  ev.TotalDataPoints(),
		Times:   make(map[pipeline.Variant]time.Duration, len(cfg.Variants)),
		Timings: make(map[pipeline.Variant]pipeline.Timings, len(cfg.Variants)),
		Traces:  make(map[pipeline.Variant][]obs.SpanRecord, len(cfg.Variants)),
	}
	// Every run reports into an observer so figures can be derived from
	// span trees; a user-supplied observer is tapped with a temporary
	// per-harness collector, a nil one replaced by a private observer.
	o := cfg.Observer
	if o == nil {
		o = obs.New()
	}
	col := &obs.Collector{}
	o.AddSink(col)
	defer o.RemoveSink(col)
	opts := pipeline.Options{
		Workers:         cfg.Workers,
		Response:        cfg.Response,
		SimProcessors:   resolveSimProcessors(cfg.SimProcessors),
		Observer:        o,
		Cache:           cfg.Cache,
		NoArtifactCache: cfg.NoArtifactCache,
		Storage:         cfg.Storage,
	}
	if cfg.ChaosRate > 0 {
		opts.Chaos = &faults.Config{Seed: cfg.ChaosSeed, Rate: cfg.ChaosRate}
		opts.Retry = pipeline.RetryPolicy{JitterSeed: cfg.ChaosSeed}
	}
	// Repetitions run in rounds across the variants (v1 v2 ... v1 v2 ...)
	// so slow phases of the host hit every variant with equal probability;
	// the fastest repetition per variant is kept.
	for rep := 0; rep < cfg.Repeat; rep++ {
		for _, v := range cfg.Variants {
			// Streaming applies only to the dataflow variant.
			opts.Streaming = cfg.Streaming && v == pipeline.Pipelined
			// Start every measurement from a clean heap so GC pressure
			// accumulated by earlier variants cannot bias later ones.
			runtime.GC()
			dir, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-bench-*")
			if err != nil {
				return EventResult{}, err
			}
			if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
				os.RemoveAll(dir)
				return EventResult{}, err
			}
			col.Drain() // isolate this run's spans
			run, err := pipeline.Run(ctx, dir, v, opts)
			trace := col.Drain()
			os.RemoveAll(dir)
			if err != nil {
				return EventResult{}, fmt.Errorf("bench: event %s variant %v: %w", spec.Name, v, err)
			}
			// Keep the fastest repetition, and its span tree with it.
			if prev, ok := res.Times[v]; !ok || run.Timings.Total < prev {
				res.Times[v] = run.Timings.Total
				res.Timings[v] = run.Timings
				res.Traces[v] = trace
			}
			if run.StorageBytesPeak > res.StorageBytesPeak {
				res.StorageBytesPeak = run.StorageBytesPeak
			}
			res.Cache.Accumulate(run.Cache)
			res.Quarantined += int64(len(run.Quarantined))
		}
	}
	return res, nil
}

// RunTable1 processes every configured event with every variant — the
// experiment behind Table I, Figure 12, and Figure 13.
func RunTable1(ctx context.Context, cfg Config, progress func(string)) ([]EventResult, error) {
	cfg = cfg.withDefaults()
	results := make([]EventResult, 0, len(cfg.Events))
	for _, spec := range cfg.Events {
		if progress != nil {
			progress(fmt.Sprintf("event %s (%d files, %d points at scale %g)",
				spec.Name, spec.Files, spec.TotalPoints, cfg.Scale))
		}
		r, err := RunEvent(ctx, spec, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// StageResult is one row of the Figure 11 experiment: a stage's sequential
// and fully-parallel execution times.
type StageResult struct {
	Stage      pipeline.StageID
	Sequential time.Duration
	Parallel   time.Duration
}

// Speedup returns the stage's sequential/parallel ratio.
func (s StageResult) Speedup() float64 {
	if s.Parallel <= 0 {
		return 0
	}
	return s.Sequential.Seconds() / s.Parallel.Seconds()
}

// Fig11Result is the per-stage experiment on one event (the paper uses the
// largest event: 19 files, 384K points).
type Fig11Result struct {
	Event  EventResult
	Stages []StageResult
}

// SeqStageShare returns the fraction of the sequential-original runtime
// spent in the given stage (the paper reports 57.2% for stage IX).
func (f Fig11Result) SeqStageShare(id pipeline.StageID) float64 {
	total := f.Event.Times[pipeline.SeqOriginal].Seconds()
	if total <= 0 {
		return 0
	}
	for _, s := range f.Stages {
		if s.Stage == id {
			return s.Sequential.Seconds() / total
		}
	}
	return 0
}

// StageDurations folds a run's span tree into per-stage charged durations:
// the sum of every stage span's Duration, indexed by StageID.  Sequential
// runs open one stage span per process, so summing reproduces the
// accumulation semantics of Timings.Stage.
func StageDurations(trace []obs.SpanRecord) [pipeline.NumStages + 1]time.Duration {
	var out [pipeline.NumStages + 1]time.Duration
	for _, rec := range trace {
		if rec.Kind != obs.KindStage {
			continue
		}
		id, ok := rec.IntAttr("stage")
		if !ok || id < 1 || id > pipeline.NumStages {
			continue
		}
		out[id] += rec.Duration
	}
	return out
}

// RunFig11 runs the per-stage experiment on the given event spec (the
// paper's choice is the largest event, PaperEvents()[5]).  The stage rows
// are derived from the runs' span trees, not from separate timers: the
// figure is a view over the same trace a -trace flag would write.
func RunFig11(ctx context.Context, spec synth.EventSpec, cfg Config) (Fig11Result, error) {
	cfg = cfg.withDefaults()
	cfg.Variants = []pipeline.Variant{pipeline.SeqOriginal, pipeline.FullParallel}
	ev, err := RunEvent(ctx, spec, cfg)
	if err != nil {
		return Fig11Result{}, err
	}
	seq := StageDurations(ev.Traces[pipeline.SeqOriginal])
	par := StageDurations(ev.Traces[pipeline.FullParallel])
	out := Fig11Result{Event: ev}
	for _, st := range pipeline.Stages {
		out.Stages = append(out.Stages, StageResult{
			Stage:      st.ID,
			Sequential: seq[st.ID],
			Parallel:   par[st.ID],
		})
	}
	return out, nil
}

// workRootCheck verifies the configured work root exists and is writable
// (failure injection hook for tests).
func workRootCheck(root string) error {
	probe := filepath.Join(root, ".accelproc-probe")
	if err := os.WriteFile(probe, []byte("x"), 0o644); err != nil {
		return fmt.Errorf("bench: work root %s not writable: %w", root, err)
	}
	return os.Remove(probe)
}

// Validate checks the configuration before a long run.
func (c Config) Validate() error {
	cc := c.withDefaults()
	if cc.Scale <= 0 {
		return fmt.Errorf("bench: scale %g must be positive", cc.Scale)
	}
	if cc.ChaosRate < 0 || cc.ChaosRate > 1 {
		return fmt.Errorf("bench: chaos rate %g out of range [0,1]", cc.ChaosRate)
	}
	if _, err := storage.ParseBackend(string(cc.Storage)); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	for _, spec := range cc.Events {
		if err := spec.Validate(); err != nil {
			return err
		}
	}
	return workRootCheck(cc.WorkRoot)
}
