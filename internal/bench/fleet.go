package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"accelproc/internal/fleet"
	"accelproc/internal/obs"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/seismic"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// This file is the multi-event saturation benchmark behind the fleet
// scheduler (internal/fleet, pipeline.RunFleet): a queue of identical-shape
// events is offered to one shared worker pool under each scheduling policy,
// and the experiment reports per-event latency quantiles (p50/p99,
// admission to done) and aggregate throughput (points per second over the
// queue makespan).  Two baselines frame the policies: sequential RunBatch
// (events one at a time, each with the full pool) and one event running
// alone on an idle pool.

// FleetConfig parameterizes the saturation benchmark.
type FleetConfig struct {
	// Queue is the number of events offered to the pool; 0 selects 8.
	Queue int
	// Spec is the base event shape; every queued event is this spec with a
	// distinct seed.  The zero value selects a 4-file event of 6400 points.
	Spec synth.EventSpec
	// Scale multiplies Spec's data-point count, like Config.Scale.
	Scale float64
	// Workers is the shared pool width for real runs (0 = all processors);
	// on the simulated platform SimProcessors is the pool width instead.
	Workers int
	// Admit caps concurrently-open events; <= 0 selects each policy's
	// default (fleet.Policy.DefaultAdmit).
	Admit int
	// Policies are the fleet policies to measure; nil selects latency,
	// balanced, and throughput.
	Policies []fleet.Policy
	// Repeat measures every configuration this many times and keeps the
	// fastest makespan; 0 selects 1.
	Repeat int
	// SimProcessors follows Config.SimProcessors: 0 (auto) simulates the
	// paper's 8-processor machine on smaller hosts, positive forces
	// simulation, negative forces real execution.
	SimProcessors int
	// Response is the stage IX workload; the zero value selects the same
	// legacy-shape default as Config.
	Response response.Config
	// WorkRoot is where per-run work directories are created; empty
	// selects the OS temp directory.
	WorkRoot string
	// Storage selects the pipeline storage backend for every run.
	Storage storage.Backend
	// Observer, when non-nil, receives every run's spans and metrics.
	Observer *obs.Observer
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Queue <= 0 {
		c.Queue = 8
	}
	if c.Spec == (synth.EventSpec{}) {
		c.Spec = synth.EventSpec{Name: "fleet", Files: 4, TotalPoints: 6400, Magnitude: 5.0, Seed: 41}
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Policies == nil {
		c.Policies = []fleet.Policy{fleet.Latency, fleet.Balanced, fleet.Throughput}
	}
	if c.Repeat <= 0 {
		c.Repeat = 1
	}
	if c.Response.Periods == nil && c.Response.Damping == 0 {
		c.Response = response.Config{
			Method:  response.Duhamel,
			Periods: response.LogPeriods(0.05, 10, ShapePeriods),
		}
	}
	if c.WorkRoot == "" {
		c.WorkRoot = os.TempDir()
	}
	return c
}

// Validate checks the configuration before a long run.
func (c FleetConfig) Validate() error {
	cc := c.withDefaults()
	if cc.Scale <= 0 {
		return fmt.Errorf("bench: scale %g must be positive", cc.Scale)
	}
	if _, err := storage.ParseBackend(string(cc.Storage)); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	if err := cc.Spec.Validate(); err != nil {
		return err
	}
	return workRootCheck(cc.WorkRoot)
}

// FleetPolicyResult is one scheduling discipline's measurement over the
// event queue.
type FleetPolicyResult struct {
	// Policy names the discipline: a fleet policy ("latency", "balanced",
	// "throughput") or the "sequential" RunBatch baseline.
	Policy string
	// Admit is the effective concurrently-open-events cap.
	Admit int
	// Makespan is the queue completion time: the last event's arrival-to-done
	// span on the (possibly virtual) clock.
	Makespan time.Duration
	// Latencies are the per-event admission-to-done latencies, in queue order.
	Latencies []time.Duration
	// P50 and P99 are nearest-rank quantiles over Latencies.
	P50, P99 time.Duration
	// PointsPerSecond is the aggregate throughput: total queue data points
	// over Makespan.
	PointsPerSecond float64
}

// FleetResult is the full saturation experiment.
type FleetResult struct {
	// Queue, Files, Points describe the offered load: Queue events of Files
	// records each, Points data points in total across the queue.
	Queue  int
	Files  int
	Points int
	// Workers is the shared pool width the schedules ran on.
	Workers int
	// Simulated reports whether the runs used the virtual platform.
	Simulated bool
	// SingleLatencies are the per-event standalone latencies: each event run
	// alone on an idle pool, in queue order (best of the repetitions).
	SingleLatencies []time.Duration
	// SingleEvent is the p99 over SingleLatencies — the reference for the
	// latency policy's p99 bound, comparing the loaded queue's tail against
	// the same heterogeneous queue's unloaded tail.
	SingleEvent time.Duration
	// Sequential is the RunBatch baseline: events one at a time, each with
	// the full pool.
	Sequential FleetPolicyResult
	// Policies are the fleet disciplines, in the configured order.
	Policies []FleetPolicyResult
}

// Policy returns the named fleet policy's result, or a zero value.
func (r FleetResult) Policy(name string) FleetPolicyResult {
	for _, p := range r.Policies {
		if p.Policy == name {
			return p
		}
	}
	return FleetPolicyResult{}
}

// quantile returns the nearest-rank q-quantile (0 < q <= 1) of the given
// latencies without mutating them.
func quantile(ls []time.Duration, q float64) time.Duration {
	if len(ls) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ls...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(float64(len(sorted))*q+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func finishPolicyResult(p *FleetPolicyResult, points int) {
	p.P50 = quantile(p.Latencies, 0.50)
	p.P99 = quantile(p.Latencies, 0.99)
	if p.Makespan > 0 {
		p.PointsPerSecond = float64(points) / p.Makespan.Seconds()
	}
}

// mergePolicyResult folds one repetition into the kept result, taking the
// best (smallest) value per metric — the fastest-kept defense applied to
// makespan and each quantile independently, so one noisy repetition cannot
// poison a metric the next repetition measured cleanly.
func mergePolicyResult(dst *FleetPolicyResult, next FleetPolicyResult) {
	if dst.Makespan == 0 || next.Makespan < dst.Makespan {
		dst.Policy, dst.Admit = next.Policy, next.Admit
		dst.Makespan, dst.Latencies = next.Makespan, next.Latencies
		dst.PointsPerSecond = next.PointsPerSecond
	}
	if dst.P50 == 0 || next.P50 < dst.P50 {
		dst.P50 = next.P50
	}
	if dst.P99 == 0 || next.P99 < dst.P99 {
		dst.P99 = next.P99
	}
}

// RunFleetBench runs the saturation experiment: the sequential baseline, the
// single-event reference, and every configured fleet policy, measured
// cfg.Repeat times with the best value kept per metric.
//
// On the simulated platform, each repetition measures the queue once
// (pipeline.MeasureFleet) and replays the same measured durations under
// every discipline on the virtual clock — policy deltas are then exactly
// scheduling deltas, free of cross-run measurement noise.  On a real
// platform every discipline is measured by its own wall-clock run.
func RunFleetBench(ctx context.Context, cfg FleetConfig, progress func(string)) (FleetResult, error) {
	cfg = cfg.withDefaults()
	say := func(format string, args ...any) {
		if progress != nil {
			progress(fmt.Sprintf(format, args...))
		}
	}

	// Generate the queue once; every measurement preps fresh directories
	// from these in-memory events.
	evs := make([]seismic.Event, cfg.Queue)
	res := FleetResult{Queue: cfg.Queue}
	for i := range evs {
		spec := cfg.Spec.Scale(cfg.Scale)
		spec.Name = fmt.Sprintf("%s-%02d", spec.Name, i)
		spec.Seed += int64(i)
		ev, err := synth.Event(spec)
		if err != nil {
			return FleetResult{}, err
		}
		evs[i] = ev
		res.Files = spec.Files
		res.Points += ev.TotalDataPoints()
	}

	o := cfg.Observer
	if o == nil {
		o = obs.New()
	}
	simProcs := resolveSimProcessors(cfg.SimProcessors)
	opts := pipeline.Options{
		Workers:       cfg.Workers,
		Response:      cfg.Response,
		SimProcessors: simProcs,
		Observer:      o,
		Storage:       cfg.Storage,
	}
	res.Simulated = simProcs > 0
	res.Workers = simProcs
	if res.Workers == 0 {
		res.Workers = cfg.Workers
		if res.Workers <= 0 {
			res.Workers = runtime.NumCPU()
		}
	}

	// prep lays out fresh work directories for events [lo, hi) under one
	// disposable root.
	prep := func(lo, hi int) ([]string, func(), error) {
		root, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-fleet-*")
		if err != nil {
			return nil, nil, err
		}
		cleanup := func() { os.RemoveAll(root) }
		dirs := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			dir := filepath.Join(root, fmt.Sprintf("ev%02d", i))
			if err := pipeline.PrepareWorkDir(dir, evs[i]); err != nil {
				cleanup()
				return nil, nil, err
			}
			dirs = append(dirs, dir)
		}
		return dirs, cleanup, nil
	}

	res.SingleLatencies = make([]time.Duration, cfg.Queue)
	res.Policies = make([]FleetPolicyResult, len(cfg.Policies))
	for rep := 0; rep < cfg.Repeat; rep++ {
		runtime.GC()

		if simProcs > 0 {
			// Simulated platform: measure the queue once — every event's task
			// graph, serial node durations, and build cost — then derive every
			// discipline from virtual-clock replays of the same measurements.
			// The standalone reference, the sequential baseline, and each
			// policy share one set of durations, so their deltas are exactly
			// scheduling deltas, not cross-run measurement noise.
			say("fleet rep %d/%d: measuring %d-event queue", rep+1, cfg.Repeat, cfg.Queue)
			dirs, cleanup, err := prep(0, cfg.Queue)
			if err != nil {
				return FleetResult{}, err
			}
			sims, _, err := pipeline.MeasureFleet(ctx, dirs, pipeline.FleetOptions{
				Options: opts, Policy: fleet.Latency, Admit: cfg.Admit,
			})
			cleanup()
			if err != nil {
				return FleetResult{}, fmt.Errorf("bench: fleet measurement: %w", err)
			}
			if len(sims) != cfg.Queue {
				return FleetResult{}, fmt.Errorf("bench: fleet measurement kept %d of %d events", len(sims), cfg.Queue)
			}

			// Standalone reference and sequential baseline: each event alone
			// on the idle pool; sequentially the queue is those runs
			// back-to-back.
			seq := FleetPolicyResult{Policy: "sequential", Admit: 1}
			for i := range sims {
				alone := fleet.Simulate(sims[i:i+1], simProcs, 1, fleet.Latency)[0].Latency()
				if res.SingleLatencies[i] == 0 || alone < res.SingleLatencies[i] {
					res.SingleLatencies[i] = alone
				}
				seq.Latencies = append(seq.Latencies, alone)
				seq.Makespan += alone
			}
			finishPolicyResult(&seq, res.Points)
			mergePolicyResult(&res.Sequential, seq)

			for pi, policy := range cfg.Policies {
				pr := FleetPolicyResult{Policy: policy.String(), Admit: cfg.Admit}
				if pr.Admit <= 0 {
					pr.Admit = policy.DefaultAdmit(res.Workers)
				}
				for _, sr := range fleet.Simulate(sims, simProcs, cfg.Admit, policy) {
					pr.Latencies = append(pr.Latencies, sr.Latency())
					if done := sr.Wait() + sr.Latency(); done > pr.Makespan {
						pr.Makespan = done
					}
				}
				finishPolicyResult(&pr, res.Points)
				mergePolicyResult(&res.Policies[pi], pr)
			}
			continue
		}

		// Real platform: every discipline is its own wall-clock run.

		// Standalone reference: every event alone on an idle pool, so the
		// loaded queue's latency tail is compared against the same
		// heterogeneous queue's unloaded tail on the same clock.
		say("fleet rep %d/%d: standalone reference (%d events)", rep+1, cfg.Repeat, cfg.Queue)
		for i := 0; i < cfg.Queue; i++ {
			dirs, cleanup, err := prep(i, i+1)
			if err != nil {
				return FleetResult{}, err
			}
			single, err := pipeline.RunFleet(ctx, dirs, pipeline.FleetOptions{Options: opts, Policy: fleet.Latency})
			cleanup()
			if err != nil {
				return FleetResult{}, fmt.Errorf("bench: fleet standalone reference: %w", err)
			}
			if lat := single[0].Latency; res.SingleLatencies[i] == 0 || lat < res.SingleLatencies[i] {
				res.SingleLatencies[i] = lat
			}
		}

		// Sequential baseline: RunBatch with one event in flight, so every
		// event gets the whole pool and the queue drains one at a time.
		say("fleet rep %d/%d: sequential baseline (%d events)", rep+1, cfg.Repeat, cfg.Queue)
		dirs, cleanup, err := prep(0, cfg.Queue)
		if err != nil {
			return FleetResult{}, err
		}
		batchOpts := opts
		batchOpts.EventWorkers = 1
		bres, err := pipeline.RunBatch(ctx, dirs, pipeline.Pipelined, batchOpts)
		cleanup()
		if err != nil {
			return FleetResult{}, fmt.Errorf("bench: fleet sequential baseline: %w", err)
		}
		seq := FleetPolicyResult{Policy: "sequential", Admit: 1}
		for _, r := range bres {
			seq.Latencies = append(seq.Latencies, r.Result.Timings.Total)
			seq.Makespan += r.Result.Timings.Total
		}
		finishPolicyResult(&seq, res.Points)
		mergePolicyResult(&res.Sequential, seq)

		// Fleet policies: the whole queue offered at once to the shared pool.
		for pi, policy := range cfg.Policies {
			say("fleet rep %d/%d: policy %s", rep+1, cfg.Repeat, policy)
			dirs, cleanup, err = prep(0, cfg.Queue)
			if err != nil {
				return FleetResult{}, err
			}
			fres, err := pipeline.RunFleet(ctx, dirs, pipeline.FleetOptions{
				Options: opts, Policy: policy, Admit: cfg.Admit,
			})
			cleanup()
			if err != nil {
				return FleetResult{}, fmt.Errorf("bench: fleet policy %s: %w", policy, err)
			}
			pr := FleetPolicyResult{Policy: policy.String(), Admit: cfg.Admit}
			if pr.Admit <= 0 {
				pr.Admit = policy.DefaultAdmit(res.Workers)
			}
			for _, r := range fres {
				pr.Latencies = append(pr.Latencies, r.Latency)
				if done := r.Wait + r.Latency; done > pr.Makespan {
					pr.Makespan = done
				}
			}
			finishPolicyResult(&pr, res.Points)
			mergePolicyResult(&res.Policies[pi], pr)
		}
	}
	res.SingleEvent = quantile(res.SingleLatencies, 0.99)
	return res, nil
}

// FormatFleet renders the saturation experiment as a policy table.
func FormatFleet(r FleetResult) string {
	var b strings.Builder
	platform := "real goroutine parallelism"
	if r.Simulated {
		platform = "simulated platform"
	}
	fmt.Fprintf(&b, "FLEET SATURATION: %d-event queue (%d files, %d points total) on %d shared workers, %s\n",
		r.Queue, r.Files, r.Points, r.Workers, platform)
	fmt.Fprintf(&b, "%-18s %6s %12s %9s %9s %10s %8s\n",
		"policy", "admit", "makespan(s)", "p50(s)", "p99(s)", "points/s", "vs-seq")
	row := func(p FleetPolicyResult) {
		vs := 0.0
		if r.Sequential.PointsPerSecond > 0 {
			vs = p.PointsPerSecond / r.Sequential.PointsPerSecond
		}
		fmt.Fprintf(&b, "%-18s %6d %12.3f %9.3f %9.3f %10.0f %7.2fx\n",
			p.Policy, p.Admit, p.Makespan.Seconds(), p.P50.Seconds(), p.P99.Seconds(),
			p.PointsPerSecond, vs)
	}
	row(r.Sequential)
	for _, p := range r.Policies {
		row(p)
	}
	fmt.Fprintf(&b, "single-event reference: p99 %.3f s over each event running alone\n", r.SingleEvent.Seconds())
	return b.String()
}

// FleetChecks evaluates the scheduler's acceptance criteria against a
// saturation run and returns pass/fail lines in the ShapeChecks format:
//
//  1. the throughput policy beats sequential RunBatch aggregate throughput
//     by >= 1.2x on the full queue;
//  2. the latency policy keeps p99 event latency within 1.15x of a single
//     event running alone;
//  3. no fleet policy drains the queue more than 5% slower than the
//     sequential baseline (the latency policy at admit=1 is sequential
//     scheduling minus per-event materialization, so its margin is parity
//     up to measurement noise, hence the tolerance).
func FleetChecks(r FleetResult) []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
	}

	tp := r.Policy(fleet.Throughput.String())
	gain := 0.0
	if r.Sequential.PointsPerSecond > 0 {
		gain = tp.PointsPerSecond / r.Sequential.PointsPerSecond
	}
	check(gain >= 1.2,
		"throughput policy sustains >=1.2x sequential aggregate throughput (%.2fx: %.0f vs %.0f points/s)",
		gain, tp.PointsPerSecond, r.Sequential.PointsPerSecond)

	lp := r.Policy(fleet.Latency.String())
	stretch := 0.0
	if r.SingleEvent > 0 {
		stretch = lp.P99.Seconds() / r.SingleEvent.Seconds()
	}
	check(stretch > 0 && stretch <= 1.15,
		"latency policy keeps p99 event latency within 1.15x of the unloaded p99 (%.2fx: %.3f s vs %.3f s)",
		stretch, lp.P99.Seconds(), r.SingleEvent.Seconds())

	slowest := ""
	for _, p := range r.Policies {
		if p.Makespan.Seconds() > 1.05*r.Sequential.Makespan.Seconds() {
			slowest = p.Policy
		}
	}
	if slowest == "" {
		check(true, "no fleet policy drains the queue >5%% slower than sequential RunBatch")
	} else {
		check(false, "fleet policy %s drains the queue >5%% slower than sequential RunBatch", slowest)
	}
	return out
}
