package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// This file diffs two machine-readable reports (the committed BENCH_*.json
// baselines), the engine behind `benchtables -compare old.json new.json`:
// per-event, per-variant timing deltas, with a relative threshold that
// separates noise from regression.

// ReadReportFile decodes a report written by Report.WriteFile.
func ReadReportFile(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, fmt.Errorf("bench: reading report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: decoding report %s: %w", path, err)
	}
	return r, nil
}

// VariantDelta is one (event, variant) cell of a report comparison.
type VariantDelta struct {
	Event      string
	Variant    string
	OldSeconds float64
	NewSeconds float64
	// Ratio is new/old: above 1.0 the new report is slower.
	Ratio float64
}

// Regressed reports whether the cell slowed down by more than the given
// relative threshold (0.10 = ten percent).
func (d VariantDelta) Regressed(threshold float64) bool {
	return d.Ratio > 1+threshold
}

// Comparison is the full diff of two reports.
type Comparison struct {
	Old, New Report
	// Deltas covers every (event, variant) present in both reports, in
	// (event, variant) order.
	Deltas []VariantDelta
	// OnlyOld and OnlyNew list events or variants without a counterpart,
	// as "event" or "event/variant" strings; they never count as
	// regressions but are always surfaced.
	OnlyOld, OnlyNew []string
}

// Compare diffs two decoded reports.
func Compare(oldRep, newRep Report) Comparison {
	c := Comparison{Old: oldRep, New: newRep}
	newEvents := make(map[string]EventReport, len(newRep.Events))
	for _, e := range newRep.Events {
		newEvents[e.Event] = e
	}
	seen := make(map[string]bool, len(oldRep.Events))
	for _, oe := range oldRep.Events {
		seen[oe.Event] = true
		ne, ok := newEvents[oe.Event]
		if !ok {
			c.OnlyOld = append(c.OnlyOld, oe.Event)
			continue
		}
		variants := make([]string, 0, len(oe.Variants))
		for v := range oe.Variants {
			variants = append(variants, v)
		}
		sort.Strings(variants)
		for _, v := range variants {
			ov := oe.Variants[v]
			nv, ok := ne.Variants[v]
			if !ok {
				c.OnlyOld = append(c.OnlyOld, oe.Event+"/"+v)
				continue
			}
			d := VariantDelta{
				Event: oe.Event, Variant: v,
				OldSeconds: ov.Seconds, NewSeconds: nv.Seconds,
			}
			if ov.Seconds > 0 {
				d.Ratio = nv.Seconds / ov.Seconds
			}
			c.Deltas = append(c.Deltas, d)
		}
		for v := range ne.Variants {
			if _, ok := oe.Variants[v]; !ok {
				c.OnlyNew = append(c.OnlyNew, oe.Event+"/"+v)
			}
		}
	}
	for _, ne := range newRep.Events {
		if !seen[ne.Event] {
			c.OnlyNew = append(c.OnlyNew, ne.Event)
		}
	}
	sort.Strings(c.OnlyOld)
	sort.Strings(c.OnlyNew)
	return c
}

// Regressions returns the cells that slowed down beyond the threshold.
func (c Comparison) Regressions(threshold float64) []VariantDelta {
	var out []VariantDelta
	for _, d := range c.Deltas {
		if d.Regressed(threshold) {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the comparison as a per-event table.  Cells beyond the
// threshold are marked REGRESSED; improvements and in-noise deltas are
// printed as signed percentages.
func (c Comparison) Format(threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "REPORT COMPARISON: %s -> %s (threshold %.1f%%)\n",
		c.Old.Label, c.New.Label, 100*threshold)
	event := ""
	for _, d := range c.Deltas {
		if d.Event != event {
			event = d.Event
			fmt.Fprintf(&b, "event %s\n", event)
		}
		mark := ""
		if d.Regressed(threshold) {
			mark = "  REGRESSED"
		}
		fmt.Fprintf(&b, "  %-22s %9.3f s -> %9.3f s  %+7.1f%%%s\n",
			d.Variant, d.OldSeconds, d.NewSeconds, 100*(d.Ratio-1), mark)
	}
	for _, s := range c.OnlyOld {
		fmt.Fprintf(&b, "only in %s: %s\n", c.Old.Label, s)
	}
	for _, s := range c.OnlyNew {
		fmt.Fprintf(&b, "only in %s: %s\n", c.New.Label, s)
	}
	n := len(c.Regressions(threshold))
	switch n {
	case 0:
		fmt.Fprintf(&b, "no regressions beyond %.1f%%\n", 100*threshold)
	case 1:
		fmt.Fprintf(&b, "1 regression beyond %.1f%%\n", 100*threshold)
	default:
		fmt.Fprintf(&b, "%d regressions beyond %.1f%%\n", n, 100*threshold)
	}
	return b.String()
}
