package bench

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"

	"accelproc/internal/pipeline"
)

// TestNewReportRoundTrips pins the JSON report contract: every measured
// variant appears with positive per-stage seconds, the derived ratios are
// consistent with the raw times, and the file round-trips through
// encoding/json.
func TestNewReportRoundTrips(t *testing.T) {
	cfg := quickConfig(t)
	results, err := RunTable1(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("quick", cfg, results, []string{"[PASS] example"})
	if rep.Label != "quick" || rep.Periods != 8 || rep.Method != "nigam-jennings" {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Events) != len(results) {
		t.Fatalf("events = %d, want %d", len(rep.Events), len(results))
	}
	for i, ev := range rep.Events {
		if len(ev.Variants) != len(pipeline.Variants) {
			t.Errorf("event %s: %d variants, want %d", ev.Event, len(ev.Variants), len(pipeline.Variants))
		}
		for name, vr := range ev.Variants {
			if vr.Seconds <= 0 {
				t.Errorf("event %s variant %s: seconds = %v", ev.Event, name, vr.Seconds)
			}
			if vr.Stages["IX"] <= 0 {
				t.Errorf("event %s variant %s: no stage IX seconds", ev.Event, name)
			}
		}
		r := results[i]
		wantRatio := r.Times[pipeline.FullParallel].Seconds() / r.Times[pipeline.Pipelined].Seconds()
		if diff := ev.PipelinedVsFull - wantRatio; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("event %s: pipelined_vs_full = %v, want %v", ev.Event, ev.PipelinedVsFull, wantRatio)
		}
	}

	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	enc, err := rep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Label != rep.Label || len(back.Events) != len(rep.Events) || len(back.Checks) != 1 {
		t.Errorf("round-trip mismatch: %+v", back)
	}
}

// TestRatioMissingEndpoints pins the zero-on-missing contract the omitempty
// fields rely on.
func TestRatioMissingEndpoints(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Variants = []pipeline.Variant{pipeline.FullParallel}
	results, err := RunTable1(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("partial", cfg, results, nil)
	for _, ev := range rep.Events {
		if ev.SpeedupFull != 0 || ev.SpeedupPipelined != 0 || ev.PipelinedVsFull != 0 {
			t.Errorf("event %s: ratios should be zero without endpoints: %+v", ev.Event, ev)
		}
	}
}
