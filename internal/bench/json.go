package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"accelproc/internal/pipeline"
	"accelproc/internal/storage"
)

// This file renders experiment results as a machine-readable JSON report,
// the artifact behind the committed BENCH_<label>.json baselines: the same
// numbers as Table I and Figures 11-13, plus enough host and configuration
// context to interpret them later (see EXPERIMENTS.md "Machine-readable
// reports").

// HostInfo records the platform a report's measurements ran on.
type HostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Storage is the backend the runs used ("fs" or "mem"); on "mem",
	// StorageBytesResidentPeak is the largest in-memory residency any
	// measured run reached, in bytes.
	Storage                  string `json:"storage"`
	StorageBytesResidentPeak int64  `json:"storage_bytes_resident_peak,omitempty"`
}

// VariantReport is one variant's measurement on one event.
type VariantReport struct {
	Seconds float64 `json:"seconds"`
	// Stages maps the Roman stage numeral to the stage's charged seconds.
	Stages map[string]float64 `json:"stages,omitempty"`
}

// EventReport is one event processed by every measured variant, with the
// derived headline ratios (zero when an endpoint variant was not measured).
type EventReport struct {
	Event    string                   `json:"event"`
	Files    int                      `json:"files"`
	Points   int                      `json:"points"`
	Variants map[string]VariantReport `json:"variants"`
	// SpeedupFull is the paper's headline metric: SeqOriginal over
	// FullParallel.
	SpeedupFull float64 `json:"speedup_full,omitempty"`
	// SpeedupPipelined is SeqOriginal over the dataflow variant.
	SpeedupPipelined float64 `json:"speedup_pipelined,omitempty"`
	// PipelinedVsFull is FullParallel over Pipelined: above 1.0 the
	// barrier-free schedule beats the staged one.
	PipelinedVsFull float64 `json:"pipelined_vs_full,omitempty"`
	// PointsPerSecond is the fully-parallelized throughput.
	PointsPerSecond float64 `json:"fullpar_points_per_second,omitempty"`
}

// CacheReport records the caching mode the measured runs used and their
// summed cache counters (all events, repetitions, and variants).
type CacheReport struct {
	Mode            string `json:"mode"`
	MemoHits        int64  `json:"memo_hits,omitempty"`
	MemoMisses      int64  `json:"memo_misses,omitempty"`
	ActionHits      int64  `json:"action_hits,omitempty"`
	ActionMisses    int64  `json:"action_misses,omitempty"`
	ActionEvictions int64  `json:"action_evictions,omitempty"`
}

// Report is the machine-readable form of a benchtables run.
type Report struct {
	Label         string      `json:"label"`
	CreatedAt     time.Time   `json:"created_at"`
	Host          HostInfo    `json:"host"`
	Scale         float64     `json:"scale"`
	Workers       int         `json:"workers"`
	SimProcessors int         `json:"sim_processors"` // 0 = real goroutine parallelism
	Repeat        int         `json:"repeat"`
	Method        string      `json:"method"`
	Periods       int         `json:"periods"`
	Cache         CacheReport `json:"cache"`
	// Streaming records whether measured Pipelined runs used the streaming
	// execution plane.
	Streaming bool          `json:"streaming,omitempty"`
	Events    []EventReport `json:"events"`
	// Fleet holds the multi-event saturation experiment, when it ran.
	Fleet *FleetReport `json:"fleet,omitempty"`
	// Stream holds the streaming-plane memory ablation, when it ran.
	Stream *StreamReport `json:"stream,omitempty"`
	// Ingest holds the per-format decode microbenchmark, when it ran.
	Ingest *IngestReport `json:"ingest,omitempty"`
	Checks []string      `json:"checks,omitempty"`
}

// FleetPolicyReport is one scheduling discipline of the saturation
// experiment in machine-readable form.
type FleetPolicyReport struct {
	Policy          string  `json:"policy"`
	Admit           int     `json:"admit"`
	MakespanSeconds float64 `json:"makespan_seconds"`
	P50Seconds      float64 `json:"p50_seconds"`
	P99Seconds      float64 `json:"p99_seconds"`
	PointsPerSecond float64 `json:"points_per_second"`
}

// FleetReport is the machine-readable multi-event saturation experiment
// (see RunFleetBench).
type FleetReport struct {
	Events             int                 `json:"events"`
	Files              int                 `json:"files"`
	Points             int                 `json:"points"`
	Workers            int                 `json:"workers"`
	Simulated          bool                `json:"simulated"`
	SingleEventSeconds float64             `json:"single_event_seconds"`
	Sequential         FleetPolicyReport   `json:"sequential"`
	Policies           []FleetPolicyReport `json:"policies"`
}

func fleetPolicyReport(p FleetPolicyResult) FleetPolicyReport {
	return FleetPolicyReport{
		Policy:          p.Policy,
		Admit:           p.Admit,
		MakespanSeconds: p.Makespan.Seconds(),
		P50Seconds:      p.P50.Seconds(),
		P99Seconds:      p.P99.Seconds(),
		PointsPerSecond: p.PointsPerSecond,
	}
}

// AttachFleet adds a saturation run to the report: the structured Fleet
// block, plus one synthetic event row whose variants are the per-discipline
// queue makespans ("batch-sequential", "fleet-<policy>"), so the existing
// -compare gate diffs fleet baselines with no special casing.
func (r *Report) AttachFleet(fr FleetResult) {
	rep := &FleetReport{
		Events:             fr.Queue,
		Files:              fr.Files,
		Points:             fr.Points,
		Workers:            fr.Workers,
		Simulated:          fr.Simulated,
		SingleEventSeconds: fr.SingleEvent.Seconds(),
		Sequential:         fleetPolicyReport(fr.Sequential),
	}
	for _, p := range fr.Policies {
		rep.Policies = append(rep.Policies, fleetPolicyReport(p))
	}
	r.Fleet = rep
	er := EventReport{
		Event:  fmt.Sprintf("fleet-%dev", fr.Queue),
		Files:  fr.Files,
		Points: fr.Points,
		Variants: map[string]VariantReport{
			"batch-sequential": {Seconds: fr.Sequential.Makespan.Seconds()},
		},
	}
	for _, p := range fr.Policies {
		er.Variants["fleet-"+p.Policy] = VariantReport{Seconds: p.Makespan.Seconds()}
	}
	r.Events = append(r.Events, er)
}

// StreamRowReport is one NPTS point of the streaming memory ablation in
// machine-readable form.
type StreamRowReport struct {
	NPTS                int     `json:"npts"`
	Points              int     `json:"points"`
	MaterializedSeconds float64 `json:"materialized_seconds"`
	MaterializedPeak    int64   `json:"materialized_peak_bytes"`
	StreamingSeconds    float64 `json:"streaming_seconds"`
	StreamingPeak       int64   `json:"streaming_peak_bytes"`
	Identical           bool    `json:"identical"`
}

// StreamReport is the machine-readable streaming memory ablation (see
// RunStreamBench).
type StreamReport struct {
	Files       int               `json:"files"`
	BudgetBytes int64             `json:"budget_bytes"`
	Rows        []StreamRowReport `json:"rows"`
}

// AttachStream adds a streaming memory-ablation run to the report: the
// structured Stream block, plus one synthetic event row per NPTS whose
// variants are the materialized and streaming totals, so the existing
// -compare gate diffs streaming baselines with no special casing.
func (r *Report) AttachStream(sr StreamResults) {
	rep := &StreamReport{Files: sr.Files, BudgetBytes: sr.Budget}
	for _, row := range sr.Rows {
		rep.Rows = append(rep.Rows, StreamRowReport{
			NPTS:                row.NPTS,
			Points:              row.Points,
			MaterializedSeconds: row.MaterializedTotal.Seconds(),
			MaterializedPeak:    row.MaterializedPeak,
			StreamingSeconds:    row.StreamingTotal.Seconds(),
			StreamingPeak:       row.StreamingPeak,
			Identical:           row.Identical,
		})
		r.Events = append(r.Events, EventReport{
			Event:  fmt.Sprintf("stream-%d", row.NPTS),
			Files:  sr.Files,
			Points: row.Points,
			Variants: map[string]VariantReport{
				"materialized": {Seconds: row.MaterializedTotal.Seconds()},
				"streaming":    {Seconds: row.StreamingTotal.Seconds()},
			},
		})
	}
	r.Stream = rep
}

// IngestFormatReport is one registered format's decode timing in
// machine-readable form.
type IngestFormatReport struct {
	Format        string  `json:"format"`
	Bytes         int     `json:"bytes"`
	DecodeSeconds float64 `json:"decode_seconds"`
}

// IngestReport is the machine-readable per-format decode microbenchmark
// (see RunIngestBench).
type IngestReport struct {
	NPTS    int                  `json:"npts"`
	Formats []IngestFormatReport `json:"formats"`
}

// AttachIngest adds the decode microbenchmark to the report: the
// structured Ingest block, plus one synthetic event row whose variants are
// the per-format decode times ("decode-v1", "decode-v1a", ...), so the
// existing -compare gate diffs decode-path baselines with no special
// casing.
func (r *Report) AttachIngest(ir IngestResult) {
	rep := &IngestReport{NPTS: ir.NPTS}
	variants := make(map[string]VariantReport, len(ir.Formats))
	for _, f := range ir.Formats {
		rep.Formats = append(rep.Formats, IngestFormatReport{
			Format:        f.Format,
			Bytes:         f.Bytes,
			DecodeSeconds: f.Decode.Seconds(),
		})
		variants["decode-"+f.Format] = VariantReport{Seconds: f.Decode.Seconds()}
	}
	r.Events = append(r.Events, EventReport{
		Event:    "ingest-decode",
		Files:    len(ir.Formats),
		Points:   ir.NPTS,
		Variants: variants,
	})
	r.Ingest = rep
}

// ratio returns num/den in seconds, or 0 when either endpoint is missing.
func ratio(times map[pipeline.Variant]time.Duration, num, den pipeline.Variant) float64 {
	n, okN := times[num]
	d, okD := times[den]
	if !okN || !okD || d <= 0 {
		return 0
	}
	return n.Seconds() / d.Seconds()
}

// NewReport assembles the report for a Table I run under the given
// configuration; checks may be nil when -check did not run.
func NewReport(label string, cfg Config, results []EventResult, checks []string) Report {
	cfg = cfg.withDefaults()
	backend, _ := storage.ParseBackend(string(cfg.Storage))
	var peak int64
	var cs pipeline.CacheStats
	for _, r := range results {
		if r.StorageBytesPeak > peak {
			peak = r.StorageBytesPeak
		}
		cs.Accumulate(r.Cache)
	}
	mode := cfg.Cache.Mode
	if cfg.NoArtifactCache && cfg.Cache == (pipeline.CacheConfig{}) {
		mode = pipeline.CacheOff // the deprecated spelling
	}
	rep := Report{
		Label:     label,
		CreatedAt: time.Now().UTC(),
		Host: HostInfo{
			GOOS:                     runtime.GOOS,
			GOARCH:                   runtime.GOARCH,
			GoVersion:                runtime.Version(),
			NumCPU:                   runtime.NumCPU(),
			GOMAXPROCS:               runtime.GOMAXPROCS(0),
			Storage:                  string(backend),
			StorageBytesResidentPeak: peak,
		},
		Scale:         cfg.Scale,
		Workers:       cfg.Workers,
		SimProcessors: resolveSimProcessors(cfg.SimProcessors),
		Repeat:        cfg.Repeat,
		Method:        cfg.Response.Method.String(),
		Periods:       len(cfg.Response.Periods),
		Streaming:     cfg.Streaming,
		Cache: CacheReport{
			Mode:            mode.String(),
			MemoHits:        cs.MemoHits,
			MemoMisses:      cs.MemoMisses,
			ActionHits:      cs.ActionHits,
			ActionMisses:    cs.ActionMisses,
			ActionEvictions: cs.ActionEvictions,
		},
		Checks: checks,
	}
	for _, r := range results {
		er := EventReport{
			Event:            r.Spec.Name,
			Files:            r.Files,
			Points:           r.Points,
			Variants:         make(map[string]VariantReport, len(r.Times)),
			SpeedupFull:      r.Speedup(),
			SpeedupPipelined: ratio(r.Times, pipeline.SeqOriginal, pipeline.Pipelined),
			PipelinedVsFull:  ratio(r.Times, pipeline.FullParallel, pipeline.Pipelined),
			PointsPerSecond:  r.PointsPerSecond(),
		}
		for v, d := range r.Times {
			vr := VariantReport{
				Seconds: d.Seconds(),
				Stages:  make(map[string]float64, pipeline.NumStages),
			}
			for _, st := range pipeline.Stages {
				if sd := r.Timings[v].Stage[st.ID]; sd > 0 {
					vr.Stages[st.ID.String()] = sd.Seconds()
				}
			}
			er.Variants[v.String()] = vr
		}
		rep.Events = append(rep.Events, er)
	}
	return rep
}

// Encode renders the report as indented JSON with a trailing newline.
func (r Report) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encoding report: %w", err)
	}
	return append(out, '\n'), nil
}

// WriteFile writes the encoded report to path.
func (r Report) WriteFile(path string) error {
	out, err := r.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		return fmt.Errorf("bench: writing report: %w", err)
	}
	return nil
}
