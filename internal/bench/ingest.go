package bench

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"accelproc/internal/ingest"
)

// This file is the ingest-plane decode microbenchmark: every registered
// format decodes the same synthetic three-component record, so the
// committed JSON baselines carry per-format decode timings and -compare
// flags a decode-path regression (a slowed tokenizer, an accidental extra
// materialization) the same way it flags a slowed pipeline stage.

// DefaultIngestNPTS is the per-component sample count of the benchmark
// record: the paper's largest raw file.
const DefaultIngestNPTS = 35000

// IngestConfig parameterizes the decode microbenchmark.
type IngestConfig struct {
	// NPTS is the per-component sample count; 0 selects DefaultIngestNPTS.
	NPTS int
	// Repeat is the measurement count per format (fastest kept); 0
	// selects 3.
	Repeat int
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.NPTS == 0 {
		c.NPTS = DefaultIngestNPTS
	}
	if c.Repeat == 0 {
		c.Repeat = 3
	}
	return c
}

// IngestFormatResult is one format's decode measurement.
type IngestFormatResult struct {
	Format string        // registry name
	Bytes  int           // encoded record size
	Decode time.Duration // fastest whole-record decode
}

// IngestResult is the decode microbenchmark across the format registry.
type IngestResult struct {
	NPTS    int // per-component samples
	Formats []IngestFormatResult
}

// ingestRecord builds the benchmark record: a deterministic damped sine
// per component, full float64 precision so the text formats tokenize
// 17-digit mantissas exactly as real records make them.
func ingestRecord(npts int) ingest.Record {
	rec := ingest.Record{Station: "BENCH01"}
	for ci := range rec.Accel {
		data := make([]float64, npts)
		w := 2 * math.Pi * (1.5 + float64(ci))
		for i := range data {
			t := float64(i) * 0.005
			data[i] = 981 * math.Exp(-t/8) * math.Sin(w*t+0.1*float64(ci))
		}
		rec.Accel[ci] = data
		rec.DT[ci] = 0.005
	}
	return rec
}

// RunIngestBench encodes the benchmark record in every registered format
// and measures each format's whole-record decode, fastest of Repeat.
func RunIngestBench(ctx context.Context, cfg IngestConfig) (IngestResult, error) {
	cfg = cfg.withDefaults()
	rec := ingestRecord(cfg.NPTS)
	res := IngestResult{NPTS: cfg.NPTS}
	for _, f := range ingest.Formats() {
		var buf bytes.Buffer
		if err := f.Encode(&buf, rec); err != nil {
			return res, fmt.Errorf("bench: %s encode: %w", f.Name(), err)
		}
		raw := buf.Bytes()
		best := time.Duration(0)
		for rep := 0; rep < cfg.Repeat; rep++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			start := time.Now()
			got, err := f.Decode(bytes.NewReader(raw))
			elapsed := time.Since(start)
			if err != nil {
				return res, fmt.Errorf("bench: %s decode: %w", f.Name(), err)
			}
			if got.NPTS() != cfg.NPTS {
				return res, fmt.Errorf("bench: %s decode returned NPTS %d, want %d", f.Name(), got.NPTS(), cfg.NPTS)
			}
			if best == 0 || elapsed < best {
				best = elapsed
			}
		}
		res.Formats = append(res.Formats, IngestFormatResult{
			Format: f.Name(),
			Bytes:  len(raw),
			Decode: best,
		})
	}
	return res, nil
}

// FormatIngest renders the decode microbenchmark as a table.
func FormatIngest(r IngestResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "INGEST DECODE (3 components x %d points per format, fastest repeat)\n", r.NPTS)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s\n", "format", "bytes", "decode", "MB/s")
	for _, f := range r.Formats {
		mbps := 0.0
		if f.Decode > 0 {
			mbps = float64(f.Bytes) / (1 << 20) / f.Decode.Seconds()
		}
		fmt.Fprintf(&b, "%-8s %12d %12s %12.1f\n", f.Format, f.Bytes, f.Decode.Round(time.Microsecond), mbps)
	}
	return b.String()
}
