package bench

import (
	"context"
	"strings"
	"testing"
	"time"

	"accelproc/internal/fleet"
	"accelproc/internal/synth"
)

// smokeFleetConfig is a tiny queue on the simulated platform, sized for CI.
func smokeFleetConfig() FleetConfig {
	return FleetConfig{
		Queue:         3,
		Spec:          synth.EventSpec{Name: "fleet-smoke", Files: 2, TotalPoints: 400, Magnitude: 4.8, Seed: 7},
		SimProcessors: 8,
	}
}

func TestRunFleetBenchSmoke(t *testing.T) {
	cfg := smokeFleetConfig()
	cfg.WorkRoot = t.TempDir()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := RunFleetBench(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queue != 3 || res.Files != 2 || res.Points <= 0 {
		t.Fatalf("load shape = %+v", res)
	}
	if !res.Simulated || res.Workers != 8 {
		t.Errorf("platform = simulated %v workers %d, want simulated 8", res.Simulated, res.Workers)
	}
	if res.SingleEvent <= 0 {
		t.Error("single-event reference latency missing")
	}
	if res.Sequential.Policy != "sequential" || len(res.Sequential.Latencies) != 3 || res.Sequential.Makespan <= 0 {
		t.Errorf("sequential baseline = %+v", res.Sequential)
	}
	if len(res.Policies) != 3 {
		t.Fatalf("policies = %d, want latency/balanced/throughput", len(res.Policies))
	}
	for _, p := range res.Policies {
		if len(p.Latencies) != 3 || p.Makespan <= 0 || p.P50 <= 0 || p.P99 < p.P50 || p.PointsPerSecond <= 0 {
			t.Errorf("policy %s result incomplete: %+v", p.Policy, p)
		}
		// Latency at admit=1 is sequential scheduling up to noise, so this
		// is a loose smoke guard, not the 5% acceptance tolerance.
		if p.Makespan.Seconds() > 1.25*res.Sequential.Makespan.Seconds() {
			t.Errorf("policy %s makespan %v far above sequential %v", p.Policy, p.Makespan, res.Sequential.Makespan)
		}
	}
	if lat := res.Policy(fleet.Latency.String()); lat.Admit != 1 {
		t.Errorf("latency policy default admit = %d, want 1", lat.Admit)
	}
	out := FormatFleet(res)
	for _, want := range []string{"FLEET SATURATION", "sequential", "latency", "balanced", "throughput", "single-event reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if lines := FleetChecks(res); len(lines) != 3 {
		t.Errorf("checks = %v, want 3 lines", lines)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	ls := []time.Duration{40, 10, 30, 20} // unsorted on purpose
	if q := quantile(ls, 0.50); q != 20 {
		t.Errorf("p50 = %v, want 20", q)
	}
	if q := quantile(ls, 0.99); q != 40 {
		t.Errorf("p99 = %v, want 40", q)
	}
	if q := quantile(ls, 1.0); q != 40 {
		t.Errorf("p100 = %v, want 40", q)
	}
	if ls[0] != 40 {
		t.Error("quantile mutated its input")
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// fleetFixture builds a synthetic saturation result for report-layer tests.
func fleetFixture(throughputMakespan time.Duration) FleetResult {
	mk := func(policy string, admit int, makespan time.Duration) FleetPolicyResult {
		p := FleetPolicyResult{
			Policy: policy, Admit: admit, Makespan: makespan,
			Latencies: []time.Duration{makespan / 2, makespan / 2, makespan},
		}
		finishPolicyResult(&p, 9000)
		return p
	}
	return FleetResult{
		Queue: 3, Files: 2, Points: 9000, Workers: 8, Simulated: true,
		SingleEvent: 40 * time.Millisecond,
		Sequential:  mk("sequential", 1, 300*time.Millisecond),
		Policies: []FleetPolicyResult{
			mk("latency", 1, 290*time.Millisecond),
			mk("balanced", 2, 220*time.Millisecond),
			mk("throughput", 8, throughputMakespan),
		},
	}
}

// TestAttachFleetCompareGate is the satellite-5 contract: fleet baselines
// flow through the existing -compare engine as variants of a synthetic
// event, so a slower fleet makespan trips the regression gate.
func TestAttachFleetCompareGate(t *testing.T) {
	oldRep := Report{Label: "base"}
	oldRep.AttachFleet(fleetFixture(150 * time.Millisecond))
	if oldRep.Fleet == nil || oldRep.Fleet.Events != 3 || len(oldRep.Fleet.Policies) != 3 {
		t.Fatalf("fleet block = %+v", oldRep.Fleet)
	}
	if oldRep.Fleet.Sequential.MakespanSeconds != 0.3 {
		t.Errorf("sequential makespan = %v", oldRep.Fleet.Sequential.MakespanSeconds)
	}

	newRep := Report{Label: "next"}
	newRep.AttachFleet(fleetFixture(200 * time.Millisecond)) // +33% on fleet-throughput

	c := Compare(oldRep, newRep)
	if len(c.OnlyOld) != 0 || len(c.OnlyNew) != 0 {
		t.Errorf("fleet rows unmatched: onlyOld %v onlyNew %v", c.OnlyOld, c.OnlyNew)
	}
	regs := c.Regressions(0.10)
	if len(regs) != 1 || regs[0].Event != "fleet-3ev" || regs[0].Variant != "fleet-throughput" {
		t.Fatalf("regressions = %+v, want the fleet-throughput cell", regs)
	}
	for _, want := range []string{"event fleet-3ev", "fleet-throughput", "batch-sequential", "REGRESSED"} {
		if !strings.Contains(c.Format(0.10), want) {
			t.Errorf("comparison output missing %q", want)
		}
	}

	// The encoded report round-trips the fleet block.
	data, err := newRep.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"fleet"`, `"single_event_seconds"`, `"p99_seconds"`, `"fleet-3ev"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("encoded report missing %s", want)
		}
	}
}

func TestFleetChecksVerdicts(t *testing.T) {
	good := fleetFixture(150 * time.Millisecond) // 2x sequential throughput
	good.Policies[0].P99 = 44 * time.Millisecond // within 1.15x of 40ms
	for _, line := range FleetChecks(good) {
		if !strings.HasPrefix(line, "[PASS]") {
			t.Errorf("healthy fixture failed: %s", line)
		}
	}
	bad := fleetFixture(280 * time.Millisecond) // only 1.07x throughput
	bad.Policies[0].P99 = 90 * time.Millisecond // 2.25x a lone event
	lines := FleetChecks(bad)
	if !strings.HasPrefix(lines[0], "[FAIL]") || !strings.HasPrefix(lines[1], "[FAIL]") {
		t.Errorf("degraded fixture passed: %v", lines)
	}
	worse := fleetFixture(330 * time.Millisecond) // >5% slower than sequential
	if lines := FleetChecks(worse); !strings.HasPrefix(lines[2], "[FAIL]") {
		t.Errorf("slower-than-sequential fixture passed: %v", lines)
	}
}
