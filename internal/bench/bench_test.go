package bench

import (
	"context"
	"strings"
	"testing"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/synth"
)

// quickConfig runs tiny events with the fast response method so the whole
// harness can be exercised in unit-test time.
func quickConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Scale: 1.0,
		Response: response.Config{
			Method:  response.NigamJennings,
			Periods: response.LogPeriods(0.05, 5, 8),
		},
		Events: []synth.EventSpec{
			{Name: "tiny-1", Files: 2, TotalPoints: 2000, Magnitude: 4.5, Seed: 1},
			{Name: "tiny-2", Files: 3, TotalPoints: 4500, Magnitude: 5.0, Seed: 2},
		},
		WorkRoot: t.TempDir(),
	}
}

func TestRunEventProducesAllVariantTimes(t *testing.T) {
	cfg := quickConfig(t)
	r, err := RunEvent(context.Background(), cfg.Events[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Files != 2 || r.Points != 2000 {
		t.Errorf("shape = %d files, %d points", r.Files, r.Points)
	}
	for _, v := range pipeline.Variants {
		if r.Times[v] <= 0 {
			t.Errorf("variant %v has no time", v)
		}
		if r.Timings[v].Stage[pipeline.StageIX] <= 0 {
			t.Errorf("variant %v has no stage IX time", v)
		}
	}
	if r.Speedup() <= 0 {
		t.Error("speedup not computable")
	}
	if r.PointsPerSecond() <= 0 || r.SeqPointsPerSecond() <= 0 {
		t.Error("throughput not computable")
	}
}

func TestRunEventSubsetOfVariants(t *testing.T) {
	cfg := quickConfig(t)
	cfg.Variants = []pipeline.Variant{pipeline.SeqOptimized}
	r, err := RunEvent(context.Background(), cfg.Events[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Times) != 1 {
		t.Errorf("got %d variant times, want 1", len(r.Times))
	}
	if r.Speedup() != 0 {
		t.Error("speedup should be 0 without both endpoints")
	}
}

func TestRunTable1AndFormatters(t *testing.T) {
	cfg := quickConfig(t)
	var progress []string
	results, err := RunTable1(context.Background(), cfg, func(s string) { progress = append(progress, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	if len(progress) != 2 {
		t.Errorf("progress callbacks = %d", len(progress))
	}

	table := FormatTable1(results)
	for _, want := range []string{"TABLE I", "tiny-1", "tiny-2", "SpeedUp", "2000"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table I output missing %q:\n%s", want, table)
		}
	}

	fig12 := FormatFig12(results)
	for _, want := range []string{"FIGURE 12", "fully-parallelized", "#"} {
		if !strings.Contains(fig12, want) {
			t.Errorf("Figure 12 output missing %q", want)
		}
	}

	fig13 := FormatFig13(results)
	for _, want := range []string{"FIGURE 13", "pts/s", "tiny-2"} {
		if !strings.Contains(fig13, want) {
			t.Errorf("Figure 13 output missing %q", want)
		}
	}
}

func TestRunFig11(t *testing.T) {
	cfg := quickConfig(t)
	f, err := RunFig11(context.Background(), cfg.Events[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stages) != pipeline.NumStages {
		t.Fatalf("stages = %d", len(f.Stages))
	}
	var shareSum float64
	for _, s := range f.Stages {
		if s.Sequential <= 0 {
			t.Errorf("stage %v sequential time missing", s.Stage)
		}
		if s.Parallel <= 0 {
			t.Errorf("stage %v parallel time missing", s.Stage)
		}
		shareSum += f.SeqStageShare(s.Stage)
	}
	// Stage shares must cover most of the sequential total (the remainder
	// is the redundant processes the staged schedule drops).
	if shareSum < 0.5 || shareSum > 1.01 {
		t.Errorf("stage shares sum to %.2f", shareSum)
	}
	out := FormatFig11(f)
	for _, want := range []string{"FIGURE 11", "IX", "SpeedUp", "Overall"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 11 output missing %q", want)
		}
	}
}

func TestShapeChecksFormat(t *testing.T) {
	cfg := quickConfig(t)
	results, err := RunTable1(context.Background(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	fig11, err := RunFig11(context.Background(), cfg.Events[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := ShapeChecks(results, fig11)
	if len(lines) != 6 {
		t.Fatalf("checks = %d, want 6", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "[PASS]") && !strings.HasPrefix(l, "[FAIL]") {
			t.Errorf("bad check line %q", l)
		}
	}
	// At tiny scale the timing-ordering checks may legitimately fail; the
	// point here is that they are evaluated and rendered, not their value.
}

func TestConfigValidate(t *testing.T) {
	cfg := quickConfig(t)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.Scale = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative scale accepted")
	}
	bad = cfg
	bad.Events = []synth.EventSpec{{Name: "", Files: 1, TotalPoints: 100, Magnitude: 5}}
	if err := bad.Validate(); err == nil {
		t.Error("invalid event accepted")
	}
	bad = cfg
	bad.WorkRoot = "/no/such/root"
	if err := bad.Validate(); err == nil {
		t.Error("unwritable work root accepted")
	}
}

func TestDefaultConfigUsesPaperWorkload(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Scale != 1.0 {
		t.Errorf("default scale = %g", cfg.Scale)
	}
	if len(cfg.Events) != 6 {
		t.Errorf("default events = %d, want the paper's 6", len(cfg.Events))
	}
	if cfg.Response.Method != response.Duhamel {
		t.Errorf("default method = %v, want the legacy Duhamel", cfg.Response.Method)
	}
	if len(cfg.Response.Periods) != ShapePeriods {
		t.Errorf("default periods = %d, want %d", len(cfg.Response.Periods), ShapePeriods)
	}
	if len(cfg.Variants) != len(pipeline.Variants) {
		t.Errorf("default variants = %d, want all %d", len(cfg.Variants), len(pipeline.Variants))
	}
}

func TestRunEventPropagatesFailure(t *testing.T) {
	cfg := quickConfig(t)
	spec := synth.EventSpec{Name: "bad", Files: 0, TotalPoints: 0, Magnitude: 5}
	if _, err := RunEvent(context.Background(), spec, cfg); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestRunAblations(t *testing.T) {
	cfg := quickConfig(t)
	a, err := RunAblations(context.Background(), cfg.Events[0], cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TempFolderStages <= 0 || a.DirectLoopStages <= 0 {
		t.Error("temp-folder ablation times missing")
	}
	if a.DuhamelTotal <= 0 || a.NigamJenningsTotal <= 0 {
		t.Error("method ablation times missing")
	}
	if len(a.ThreadSweep) != 5 {
		t.Errorf("thread sweep = %d entries", len(a.ThreadSweep))
	}
	for procs, d := range a.ThreadSweep {
		if d <= 0 {
			t.Errorf("procs=%d time missing", procs)
		}
	}
	out := FormatAblations(a)
	for _, want := range []string{"ABLATIONS", "temp-folder protocol", "stage IX method", "processor sweep", " 8 processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation report missing %q", want)
		}
	}
}

func TestRunAblationsPropagatesFailure(t *testing.T) {
	cfg := quickConfig(t)
	if _, err := RunAblations(context.Background(), synth.EventSpec{Name: "bad", Magnitude: 5}, cfg); err == nil {
		t.Error("invalid spec accepted")
	}
}
