package bench

import (
	"fmt"
	"strings"
	"time"

	"accelproc/internal/pipeline"
)

// This file renders experiment results in the layouts of the paper's
// Table I and Figures 11-13, so a run of cmd/benchtables can be compared
// against the publication side by side.

func fseconds(d time.Duration) string {
	return fmt.Sprintf("%.1f", d.Seconds())
}

// FormatTable1 renders the paper's Table I — per-event execution times of
// the paper's four implementations and the overall speedup — extended with
// a column for the barrier-free dataflow variant.
func FormatTable1(results []EventResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "TABLE I: EXPERIMENTAL RESULTS")
	fmt.Fprintf(&b, "%-14s %6s %8s %9s %9s %9s %9s %9s %8s\n",
		"Event", "Files", "Points", "SeqOri*", "SeqOpt*", "PartPar*", "FullPar*", "Pipeln*", "SpeedUp")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %6d %8d %9s %9s %9s %9s %9s %7.2fx\n",
			r.Spec.Name, r.Files, r.Points,
			fseconds(r.Times[pipeline.SeqOriginal]),
			fseconds(r.Times[pipeline.SeqOptimized]),
			fseconds(r.Times[pipeline.PartialParallel]),
			fseconds(r.Times[pipeline.FullParallel]),
			fseconds(r.Times[pipeline.Pipelined]),
			r.Speedup())
	}
	fmt.Fprintln(&b, "*Execution times are measured in seconds.")
	return b.String()
}

// FormatFig11 renders the paper's Figure 11: per-stage sequential versus
// fully-parallel times with per-stage speedups, plus the dominant stage's
// share of the sequential runtime.
func FormatFig11(f Fig11Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 11: SPEEDUP PER INDIVIDUAL STAGE (%d files, %d data points)\n",
		f.Event.Files, f.Event.Points)
	fmt.Fprintf(&b, "%-7s %12s %12s %9s %10s\n", "Stage", "SeqOri (s)", "FullPar (s)", "SpeedUp", "SeqShare")
	for _, s := range f.Stages {
		share := f.SeqStageShare(s.Stage)
		fmt.Fprintf(&b, "%-7s %12.3f %12.3f %8.2fx %9.1f%%\n",
			s.Stage, s.Sequential.Seconds(), s.Parallel.Seconds(), s.Speedup(), share*100)
	}
	fmt.Fprintf(&b, "Overall: %.1f s sequential, %.1f s parallel, %.2fx speedup\n",
		f.Event.Times[pipeline.SeqOriginal].Seconds(),
		f.Event.Times[pipeline.FullParallel].Seconds(),
		f.Event.Speedup())
	return b.String()
}

// FormatFig12 renders the paper's Figure 12 as a horizontal ASCII bar
// chart: per-event execution times of the four implementations.
func FormatFig12(results []EventResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "FIGURE 12: EXECUTION TIME PER EVENT")
	var maxSec float64
	for _, r := range results {
		if s := r.Times[pipeline.SeqOriginal].Seconds(); s > maxSec {
			maxSec = s
		}
	}
	if maxSec <= 0 {
		maxSec = 1
	}
	const width = 50
	bar := func(d time.Duration) string {
		n := int(d.Seconds() / maxSec * width)
		if n < 1 && d > 0 {
			n = 1
		}
		return strings.Repeat("#", n)
	}
	for _, r := range results {
		fmt.Fprintf(&b, "%s (%d files, %d points)\n", r.Spec.Name, r.Files, r.Points)
		for _, v := range pipeline.Variants {
			fmt.Fprintf(&b, "  %-24s %8s |%s\n", v, fseconds(r.Times[v]), bar(r.Times[v]))
		}
	}
	return b.String()
}

// FormatFig13 renders the paper's Figure 13: overall speedup (purple
// series) and fully-parallel throughput in data points per second (green
// series) versus problem size, plus the sequential baseline throughput.
func FormatFig13(results []EventResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, "FIGURE 13: SPEEDUP AND THROUGHPUT VS PROBLEM SIZE")
	fmt.Fprintf(&b, "%-14s %9s %9s %14s %14s\n", "Event", "Points", "SpeedUp", "FullPar pts/s", "SeqOri pts/s")
	var seqTotalPts, seqTotalSec float64
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %9d %8.2fx %14.0f %14.0f\n",
			r.Spec.Name, r.Points, r.Speedup(), r.PointsPerSecond(), r.SeqPointsPerSecond())
		seqTotalPts += float64(r.Points)
		seqTotalSec += r.Times[pipeline.SeqOriginal].Seconds()
	}
	if seqTotalSec > 0 {
		fmt.Fprintf(&b, "Sequential-original average throughput: %.0f points/s\n", seqTotalPts/seqTotalSec)
	}
	return b.String()
}

// ShapeChecks evaluates the reproduction-shape assertions of EXPERIMENTS.md
// against a Table I run and a Figure 11 run, and returns human-readable
// pass/fail lines.  Absolute times are machine-dependent; these checks
// verify the paper's qualitative claims instead:
//
//  1. every event: the fully parallelized version beats the original by a
//     wide margin and beats the partial parallelization (Table I);
//  2. the sequential optimization removes redundant processes that cost
//     real time, and never executes them (Table I's SeqOpt column);
//  3. the partial parallelization accelerates the stages it parallelizes
//     (Table I's PartPar column);
//  4. overall speedup grows with problem size (Amdahl trend, Fig. 13);
//  5. stage IX dominates the sequential runtime (Fig. 11);
//  6. stage IX achieves the highest per-stage speedup (Fig. 11).
func ShapeChecks(results []EventResult, fig11 Fig11Result) []string {
	var out []string
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
		}
		out = append(out, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
	}

	// The paper's wide-margin claim — the fully parallelized version wins
	// decisively — is checked strictly on every event.  The narrow-margin
	// orderings (SeqOpt vs SeqOri differ by 2-13% in the paper, PartPar vs
	// SeqOpt by as little as 0.6%) sit below cross-run timing noise on a
	// shared host, so they are verified structurally from within-run
	// evidence instead: the optimization removes measurably costly
	// redundant processes, and the partial parallelization accelerates its
	// own parallel stages.
	fullWinsOK := true
	for _, r := range results {
		seqOri := r.Times[pipeline.SeqOriginal].Seconds()
		partPar := r.Times[pipeline.PartialParallel].Seconds()
		fullPar := r.Times[pipeline.FullParallel].Seconds()
		if !(fullPar < 0.6*seqOri && fullPar < partPar) {
			fullWinsOK = false
		}
	}
	check(fullWinsOK, "every event: FullPar beats SeqOri by >40%% and beats PartPar")

	// Within-run: the redundant processes #6/#12/#14 cost real time in the
	// original chain (the paper saves 2-13% by dropping them), and the
	// optimized variant provably never runs them (its process timers stay
	// zero) — so SeqOpt < SeqOri up to scheduling noise.
	redundantOK := true
	minShare := 1.0
	for _, r := range results {
		ori := r.Timings[pipeline.SeqOriginal]
		redundant := ori.Process[pipeline.PPlotUncorrected] +
			ori.Process[pipeline.PSeparateComps2] +
			ori.Process[pipeline.PInitMetadata2]
		share := redundant.Seconds() / ori.Total.Seconds()
		if share < minShare {
			minShare = share
		}
		opt := r.Timings[pipeline.SeqOptimized]
		if opt.Process[pipeline.PPlotUncorrected]+opt.Process[pipeline.PSeparateComps2]+opt.Process[pipeline.PInitMetadata2] != 0 {
			redundantOK = false
		}
		if share < 0.01 {
			redundantOK = false
		}
	}
	check(redundantOK, "SeqOpt removes real work: redundant processes cost >=1%% of SeqOri on every event (min %.1f%%, paper: 2-13%%)", minShare*100)

	// Within-stage: the partial parallelization accelerates the stages it
	// parallelizes (X and XI carry the weight; VI and I-II are tiny).
	partStagesOK := true
	for _, r := range results {
		opt := r.Timings[pipeline.SeqOptimized]
		part := r.Timings[pipeline.PartialParallel]
		optT := opt.Stage[pipeline.StageX] + opt.Stage[pipeline.StageXI]
		partT := part.Stage[pipeline.StageX] + part.Stage[pipeline.StageXI]
		if partT.Seconds() >= 0.95*optT.Seconds() {
			partStagesOK = false
		}
	}
	check(partStagesOK, "PartPar accelerates its parallel stages (X+XI) by >5%% on every event")

	if len(results) >= 2 {
		first, last := results[0], results[len(results)-1]
		check(last.Speedup() > first.Speedup(),
			"speedup grows with problem size (%.2fx at %d pts -> %.2fx at %d pts)",
			first.Speedup(), first.Points, last.Speedup(), last.Points)
	}

	share := fig11.SeqStageShare(pipeline.StageIX)
	check(share > 0.40, "stage IX dominates the sequential runtime (%.1f%%, paper: 57.2%%)", share*100)

	// Only stages that carry real weight compete for "highest speedup":
	// sub-1%-share stages run in microseconds and their ratios are noise.
	best := pipeline.StageID(0)
	bestSpeedup := 0.0
	for _, s := range fig11.Stages {
		if fig11.SeqStageShare(s.Stage) < 0.01 {
			continue
		}
		if sp := s.Speedup(); sp > bestSpeedup {
			bestSpeedup, best = sp, s.Stage
		}
	}
	check(best == pipeline.StageIX,
		"stage IX has the highest per-stage speedup (best: %v at %.2fx, paper: 5.14x)", best, bestSpeedup)

	// 7. The barrier-free dataflow schedule at least matches the staged
	// schedule wherever record-level parallelism saturates the machine, and
	// wins outright on the event with the most records, where eliminated
	// barrier waits outweigh the coarser within-stage granularity.  Only
	// evaluated when the run measured the Pipelined variant on multi-record
	// events (smoke runs use 2-3 records, below the interesting regime).
	const multiRecord = 6
	pipeMeasured, pipeEligible := false, false
	pipeOK, pipeWins := true, false
	bestFiles := 0
	for _, r := range results {
		full, okF := r.Times[pipeline.FullParallel]
		pipe, okP := r.Times[pipeline.Pipelined]
		if !okF || !okP {
			continue
		}
		pipeMeasured = true
		if r.Files < multiRecord {
			continue
		}
		pipeEligible = true
		if pipe.Seconds() > 1.05*full.Seconds() {
			pipeOK = false
		}
		if r.Files > bestFiles {
			bestFiles = r.Files
			pipeWins = pipe < full
		}
	}
	if pipeMeasured && pipeEligible {
		check(pipeOK && pipeWins,
			"Pipelined matches FullPar on every multi-record event and beats it on the largest (%d files)", bestFiles)
	}
	return out
}
