package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/storage"
	"accelproc/internal/synth"
)

// AblationResults collects the design-choice experiments of DESIGN.md §6 on
// one event.
type AblationResults struct {
	Event synth.EventSpec

	// Temp-folder protocol vs direct parallel loops: total time of stages
	// IV+V+VIII under each strategy.
	TempFolderStages time.Duration
	DirectLoopStages time.Duration

	// Legacy Duhamel vs Nigam-Jennings: full-parallel pipeline total with
	// each stage IX method (same period grid).
	DuhamelTotal       time.Duration
	NigamJenningsTotal time.Duration

	// Simulated processor sweep: full-parallel total per processor count.
	ThreadSweep map[int]time.Duration

	// Content-addressed artifact cache on vs off: full-parallel pipeline
	// total with and without the write-through store (outputs are
	// byte-identical; only redundant decode/copy work differs).
	CachedTotal   time.Duration
	UncachedTotal time.Duration

	// Storage backend: full-parallel pipeline total with inter-stage files
	// on the plain filesystem vs held in memory (outputs byte-identical;
	// the mem run still pays for materializing the final products).
	// MemPeakBytes is the mem run's peak residency.
	DiskTotal    time.Duration
	MemTotal     time.Duration
	MemPeakBytes int64

	// Persistent action cache, cold vs warm: Pipelined total on a pristine
	// work directory populating <dir>/.smcache, then again after
	// CleanOutputs against the surviving cache — a restart in which every
	// per-record node digest hits.  WarmHits is the warm run's action-cache
	// hit count (outputs byte-identical; only recomputation is skipped).
	ColdTotal time.Duration
	WarmTotal time.Duration
	WarmHits  int64

	// Streaming execution plane vs materialized: Pipelined totals and peak
	// residency on the mem backend with and without Options.Streaming
	// (outputs byte-identical; only peak residency and byte movement
	// differ — the full NPTS sweep lives in RunStreamBench).
	MaterializedTotal time.Duration
	MaterializedPeak  int64
	StreamingTotal    time.Duration
	StreamingPeak     int64
}

// RunAblations executes the ablation suite on the given event spec.
func RunAblations(ctx context.Context, spec synth.EventSpec, cfg Config) (AblationResults, error) {
	cfg = cfg.withDefaults()
	scaled := spec.Scale(cfg.Scale)
	ev, err := synth.Event(scaled)
	if err != nil {
		return AblationResults{}, err
	}
	out := AblationResults{Event: scaled, ThreadSweep: map[int]time.Duration{}}

	runOnce := func(opts pipeline.Options) (pipeline.Result, error) {
		dir, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-ablation-*")
		if err != nil {
			return pipeline.Result{}, err
		}
		defer os.RemoveAll(dir)
		if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
			return pipeline.Result{}, err
		}
		return pipeline.Run(ctx, dir, pipeline.FullParallel, opts)
	}
	baseOpts := pipeline.Options{
		Workers:       cfg.Workers,
		Response:      cfg.Response,
		SimProcessors: resolveSimProcessors(cfg.SimProcessors),
		Observer:      cfg.Observer,
		Cache:         cfg.Cache,
		Storage:       cfg.Storage,
	}
	stagedSum := func(t pipeline.Timings) time.Duration {
		return t.Stage[pipeline.StageIV] + t.Stage[pipeline.StageV] + t.Stage[pipeline.StageVIII]
	}

	// 1. Temp-folder protocol vs direct loops.
	res, err := runOnce(baseOpts)
	if err != nil {
		return AblationResults{}, fmt.Errorf("bench: temp-folder ablation: %w", err)
	}
	out.TempFolderStages = stagedSum(res.Timings)
	out.DuhamelTotal = res.Timings.Total // base config uses the legacy method

	direct := baseOpts
	direct.NoTempFolders = true
	if res, err = runOnce(direct); err != nil {
		return AblationResults{}, fmt.Errorf("bench: direct-loop ablation: %w", err)
	}
	out.DirectLoopStages = stagedSum(res.Timings)

	// 2. Response-spectrum method.
	nj := baseOpts
	nj.Response = response.Config{Method: response.NigamJennings, Periods: cfg.Response.Periods}
	if res, err = runOnce(nj); err != nil {
		return AblationResults{}, fmt.Errorf("bench: method ablation: %w", err)
	}
	out.NigamJenningsTotal = res.Timings.Total

	// 3. Processor sweep on the simulated platform.
	for _, procs := range []int{1, 2, 4, 8, 16} {
		sw := baseOpts
		sw.SimProcessors = procs
		if res, err = runOnce(sw); err != nil {
			return AblationResults{}, fmt.Errorf("bench: thread sweep %d: %w", procs, err)
		}
		out.ThreadSweep[procs] = res.Timings.Total
	}

	// 4. Artifact cache on vs off.
	cached := baseOpts
	cached.NoArtifactCache = false
	if res, err = runOnce(cached); err != nil {
		return AblationResults{}, fmt.Errorf("bench: cached ablation: %w", err)
	}
	out.CachedTotal = res.Timings.Total
	uncached := baseOpts
	uncached.NoArtifactCache = true
	if res, err = runOnce(uncached); err != nil {
		return AblationResults{}, fmt.Errorf("bench: uncached ablation: %w", err)
	}
	out.UncachedTotal = res.Timings.Total

	// 5. Storage backend: plain filesystem vs in-memory workspace.  Both
	// runs force the backend explicitly so the ablation is the same pair
	// whatever cfg.Storage selected for the rest of the suite.
	disk := baseOpts
	disk.Storage = storage.BackendFS
	if res, err = runOnce(disk); err != nil {
		return AblationResults{}, fmt.Errorf("bench: disk-storage ablation: %w", err)
	}
	out.DiskTotal = res.Timings.Total
	mem := baseOpts
	mem.Storage = storage.BackendMem
	if res, err = runOnce(mem); err != nil {
		return AblationResults{}, fmt.Errorf("bench: mem-storage ablation: %w", err)
	}
	out.MemTotal = res.Timings.Total
	out.MemPeakBytes = res.StorageBytesPeak

	// 6. Persistent action cache, cold vs warm.  Unlike the other rows this
	// one reuses a single work directory: the cold Pipelined run populates
	// <dir>/.smcache, CleanOutputs removes every product but keeps the cache
	// (and the .v1 inputs), and the warm run — a fresh pipeline state, i.e.
	// a process restart — restores every per-record node from digests
	// instead of recomputing it.
	persist := baseOpts
	persist.Cache = pipeline.CacheConfig{Mode: pipeline.CachePersistent}
	dir, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-ablation-*")
	if err != nil {
		return AblationResults{}, err
	}
	defer os.RemoveAll(dir)
	if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
		return AblationResults{}, err
	}
	if res, err = pipeline.Run(ctx, dir, pipeline.Pipelined, persist); err != nil {
		return AblationResults{}, fmt.Errorf("bench: cold-cache ablation: %w", err)
	}
	out.ColdTotal = res.Timings.Total
	if err := pipeline.CleanOutputs(dir); err != nil {
		return AblationResults{}, err
	}
	if res, err = pipeline.Run(ctx, dir, pipeline.Pipelined, persist); err != nil {
		return AblationResults{}, fmt.Errorf("bench: warm-cache ablation: %w", err)
	}
	out.WarmTotal = res.Timings.Total
	out.WarmHits = res.Cache.ActionHits

	// 7. Streaming execution plane vs materialized, Pipelined on the mem
	// backend (the backend where peak residency is observable).
	runPipelined := func(opts pipeline.Options) (pipeline.Result, error) {
		dir, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-ablation-*")
		if err != nil {
			return pipeline.Result{}, err
		}
		defer os.RemoveAll(dir)
		if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
			return pipeline.Result{}, err
		}
		return pipeline.Run(ctx, dir, pipeline.Pipelined, opts)
	}
	matl := baseOpts
	matl.Storage = storage.BackendMem
	if res, err = runPipelined(matl); err != nil {
		return AblationResults{}, fmt.Errorf("bench: materialized ablation: %w", err)
	}
	out.MaterializedTotal = res.Timings.Total
	out.MaterializedPeak = res.StorageBytesPeak
	strm := matl
	strm.Streaming = true
	strm.Cache = pipeline.CacheConfig{} // streaming bypasses the action cache either way
	if res, err = runPipelined(strm); err != nil {
		return AblationResults{}, fmt.Errorf("bench: streaming ablation: %w", err)
	}
	out.StreamingTotal = res.Timings.Total
	out.StreamingPeak = res.StorageBytesPeak
	return out, nil
}

// FormatAblations renders the ablation results as a report section.
func FormatAblations(a AblationResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ABLATIONS (event %s, %d files, %d points)\n",
		a.Event.Name, a.Event.Files, a.Event.TotalPoints)

	fmt.Fprintf(&b, "temp-folder protocol (stages IV+V+VIII): %.2f s staged vs %.2f s direct loops (overhead %.1f%%)\n",
		a.TempFolderStages.Seconds(), a.DirectLoopStages.Seconds(),
		100*(a.TempFolderStages.Seconds()/a.DirectLoopStages.Seconds()-1))

	fmt.Fprintf(&b, "stage IX method: %.2f s pipeline with Duhamel vs %.2f s with Nigam-Jennings (%.1fx total)\n",
		a.DuhamelTotal.Seconds(), a.NigamJenningsTotal.Seconds(),
		a.DuhamelTotal.Seconds()/a.NigamJenningsTotal.Seconds())

	if a.CachedTotal > 0 && a.UncachedTotal > 0 {
		fmt.Fprintf(&b, "artifact cache: %.2f s cached vs %.2f s uncached (%.1f%% saved)\n",
			a.CachedTotal.Seconds(), a.UncachedTotal.Seconds(),
			100*(1-a.CachedTotal.Seconds()/a.UncachedTotal.Seconds()))
	}

	if a.DiskTotal > 0 && a.MemTotal > 0 {
		fmt.Fprintf(&b, "storage backend: %.2f s on disk vs %.2f s in memory (%.1f%% saved, peak residency %.1f MiB)\n",
			a.DiskTotal.Seconds(), a.MemTotal.Seconds(),
			100*(1-a.MemTotal.Seconds()/a.DiskTotal.Seconds()),
			float64(a.MemPeakBytes)/(1<<20))
	}

	if a.ColdTotal > 0 && a.WarmTotal > 0 {
		fmt.Fprintf(&b, "persistent action cache: %.2f s cold vs %.2f s warm restart (%.1f%% saved, %d action hits)\n",
			a.ColdTotal.Seconds(), a.WarmTotal.Seconds(),
			100*(1-a.WarmTotal.Seconds()/a.ColdTotal.Seconds()), a.WarmHits)
	}

	if a.MaterializedTotal > 0 && a.StreamingTotal > 0 {
		fmt.Fprintf(&b, "streaming plane (pipelined, mem backend): %.2f s materialized (peak %.1f MiB) vs %.2f s streaming (peak %.1f KiB)\n",
			a.MaterializedTotal.Seconds(), float64(a.MaterializedPeak)/(1<<20),
			a.StreamingTotal.Seconds(), float64(a.StreamingPeak)/1024)
	}

	fmt.Fprintln(&b, "processor sweep (fully parallelized, simulated platform):")
	base := a.ThreadSweep[1]
	for _, procs := range []int{1, 2, 4, 8, 16} {
		d, ok := a.ThreadSweep[procs]
		if !ok || d <= 0 {
			continue
		}
		fmt.Fprintf(&b, "  %2d processors: %7.2f s  (%.2fx)\n", procs, d.Seconds(), base.Seconds()/d.Seconds())
	}
	return b.String()
}
