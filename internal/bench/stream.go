package bench

import (
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"accelproc/internal/obs"
	"accelproc/internal/pipeline"
	"accelproc/internal/response"
	"accelproc/internal/smformat"
	"accelproc/internal/storage"
	"accelproc/internal/stream"
	"accelproc/internal/synth"
)

// This file is the streaming-plane memory ablation: the experiment behind
// the plane's acceptance criterion.  On the mem backend, the materialized
// Pipelined run keeps whole inter-stage products resident, so its peak
// residency scales with record length; the streaming run moves every
// NPTS-scaled byte through pooled chunks and write-through incremental
// writers, so its peak must stay flat — within StreamBudgetBound — as NPTS
// grows from the paper's largest records toward million-point traces, with
// byte-identical outputs at every size.

// StreamBudgetBound is the acceptance bound on a streaming run's peak
// resident storage: twice the default chunk budget, independent of NPTS.
var StreamBudgetBound = int64(2 * stream.BudgetBytes(stream.DefaultChunkLen, stream.DefaultWindow))

// DefaultStreamNPTS is the default per-record length sweep: the paper's
// largest raw file, an intermediate size, and a million-point record.
var DefaultStreamNPTS = []int{35000, 250000, 1000000}

// StreamConfig parameterizes the streaming memory ablation.
type StreamConfig struct {
	// NPTS is the per-record sample-count sweep; nil selects
	// DefaultStreamNPTS.
	NPTS []int
	// Files is the record count of each generated event; 0 selects 2.
	Files int
	// Workers is the dataflow worker budget (0 = all processors).
	Workers int
	// Periods is the Nigam-Jennings period-grid size; 0 selects 16.  The
	// ablation always uses the O(D) method: the legacy O(D^2) Duhamel
	// kernel would dominate the runtime at million-point sizes while
	// telling us nothing about memory.
	Periods int
	// WorkRoot is where work directories are created; empty = OS temp.
	WorkRoot string
	// Observer, when non-nil, receives every run's spans and metrics.
	Observer *obs.Observer
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.NPTS == nil {
		c.NPTS = DefaultStreamNPTS
	}
	if c.Files == 0 {
		c.Files = 2
	}
	if c.Periods == 0 {
		c.Periods = 16
	}
	if c.WorkRoot == "" {
		c.WorkRoot = os.TempDir()
	}
	return c
}

// Validate checks the sweep before a long run.
func (c StreamConfig) Validate() error {
	cc := c.withDefaults()
	for _, n := range cc.NPTS {
		if n < 16 {
			return fmt.Errorf("bench: stream ablation NPTS %d below the simulator minimum of 16", n)
		}
	}
	if cc.Files <= 0 {
		return fmt.Errorf("bench: stream ablation needs a positive file count, got %d", cc.Files)
	}
	return workRootCheck(cc.WorkRoot)
}

// StreamRow is one NPTS point of the sweep: the materialized and streaming
// Pipelined runs on the same event, both on the mem backend.
type StreamRow struct {
	NPTS              int
	Points            int // total data points of the event (NPTS x Files)
	MaterializedTotal time.Duration
	MaterializedPeak  int64
	StreamingTotal    time.Duration
	StreamingPeak     int64
	// Identical reports whether the two runs' products hashed identically.
	Identical bool
}

// StreamResults is the whole sweep.
type StreamResults struct {
	Files  int
	Budget int64 // StreamBudgetBound at the time of the run
	Rows   []StreamRow
}

// hashProducts maps every file in the work directory (minus the flags file
// and the simulated filter executable) to its content hash.  Inputs hash
// identically across the compared runs, so including them is harmless.
func hashProducts(dir string) (map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.IsDir() || e.Name() == "_filter.exe" || e.Name() == smformat.FlagsFile || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		out[e.Name()] = fmt.Sprintf("%x", sha256.Sum256(data))
	}
	return out, nil
}

func sameHashes(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// RunStreamBench executes the memory ablation: for each NPTS in the sweep,
// one materialized and one streaming Pipelined run on the mem backend,
// recording totals, peak residency, and output identity.
func RunStreamBench(ctx context.Context, cfg StreamConfig, progress func(string)) (StreamResults, error) {
	cfg = cfg.withDefaults()
	out := StreamResults{Files: cfg.Files, Budget: StreamBudgetBound}
	opts := pipeline.Options{
		Workers:  cfg.Workers,
		Observer: cfg.Observer,
		Storage:  storage.BackendMem,
		Response: response.Config{
			Method:  response.NigamJennings,
			Periods: response.LogPeriods(0.05, 5, cfg.Periods),
		},
	}
	for i, npts := range cfg.NPTS {
		spec := synth.EventSpec{
			Name:      fmt.Sprintf("stream-%d", npts),
			Files:     cfg.Files,
			NPTS:      npts,
			Magnitude: 5.5,
			Seed:      int64(1000 + i),
		}
		ev, err := synth.Event(spec)
		if err != nil {
			return StreamResults{}, err
		}
		row := StreamRow{NPTS: npts, Points: ev.TotalDataPoints()}
		var hashes [2]map[string]string
		for j, streaming := range []bool{false, true} {
			mode := "materialized"
			if streaming {
				mode = "streaming"
			}
			if progress != nil {
				progress(fmt.Sprintf("stream ablation: NPTS=%d %s", npts, mode))
			}
			dir, err := os.MkdirTemp(cfg.WorkRoot, "accelproc-stream-*")
			if err != nil {
				return StreamResults{}, err
			}
			if err := pipeline.PrepareWorkDir(dir, ev); err != nil {
				os.RemoveAll(dir)
				return StreamResults{}, err
			}
			o := opts
			o.Streaming = streaming
			res, err := pipeline.Run(ctx, dir, pipeline.Pipelined, o)
			if err != nil {
				os.RemoveAll(dir)
				return StreamResults{}, fmt.Errorf("bench: stream ablation NPTS=%d %s: %w", npts, mode, err)
			}
			hashes[j], err = hashProducts(dir)
			os.RemoveAll(dir)
			if err != nil {
				return StreamResults{}, err
			}
			if streaming {
				row.StreamingTotal = res.Timings.Total
				row.StreamingPeak = res.StorageBytesPeak
			} else {
				row.MaterializedTotal = res.Timings.Total
				row.MaterializedPeak = res.StorageBytesPeak
			}
		}
		row.Identical = sameHashes(hashes[0], hashes[1])
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// FormatStreamBench renders the sweep as a report section.
func FormatStreamBench(r StreamResults) string {
	var b strings.Builder
	fmt.Fprintf(&b, "STREAMING MEMORY ABLATION (%d records per event, mem backend, chunk budget %d KiB)\n",
		r.Files, StreamBudgetBound/1024)
	fmt.Fprintf(&b, "%10s %12s | %12s %14s | %12s %14s | %s\n",
		"NPTS", "points", "matl time", "matl peak", "strm time", "strm peak", "identical")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %12d | %10.2f s %11.2f MiB | %10.2f s %11.1f KiB | %v\n",
			row.NPTS, row.Points,
			row.MaterializedTotal.Seconds(), float64(row.MaterializedPeak)/(1<<20),
			row.StreamingTotal.Seconds(), float64(row.StreamingPeak)/1024,
			row.Identical)
	}
	return b.String()
}

// StreamChecks evaluates the plane's acceptance criteria over the sweep:
// streaming peak residency flat (within StreamBudgetBound) at every NPTS,
// outputs byte-identical at every NPTS, and — on the largest row, once the
// workload outgrows the bound — a materialized peak that actually exceeds
// what streaming holds resident, the contrast the plane exists to create.
func StreamChecks(r StreamResults) []string {
	mark := func(ok bool, format string, args ...any) string {
		tag := "[ OK ]"
		if !ok {
			tag = "[FAIL]"
		}
		return tag + " " + fmt.Sprintf(format, args...)
	}
	var lines []string
	for _, row := range r.Rows {
		lines = append(lines,
			mark(row.StreamingPeak <= r.Budget,
				"NPTS=%d: streaming peak residency %d B within the %d B chunk budget", row.NPTS, row.StreamingPeak, r.Budget),
			mark(row.Identical,
				"NPTS=%d: streaming and materialized products byte-identical", row.NPTS))
	}
	if n := len(r.Rows); n > 0 {
		last := r.Rows[n-1]
		if last.MaterializedPeak > r.Budget {
			lines = append(lines, mark(last.MaterializedPeak > last.StreamingPeak,
				"NPTS=%d: materialized peak %d B exceeds streaming peak %d B", last.NPTS, last.MaterializedPeak, last.StreamingPeak))
		}
		if n > 1 {
			first := r.Rows[0]
			growth := float64(last.NPTS) / float64(first.NPTS)
			lines = append(lines, mark(last.StreamingPeak <= r.Budget && first.StreamingPeak <= r.Budget,
				"streaming peak flat across a %.0fx NPTS growth (%d B -> %d B)", growth, first.StreamingPeak, last.StreamingPeak))
		}
	}
	return lines
}
