package synth

import (
	"math"
	"testing"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

func testParams() Params {
	return Params{
		Station:    "SS01",
		Seed:       42,
		DT:         0.01,
		Samples:    8000,
		Magnitude:  5.5,
		Distance:   30,
		NoiseFloor: 0.02,
	}
}

func TestParamsValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Station = "" },
		func(p *Params) { p.DT = 0 },
		func(p *Params) { p.DT = -1 },
		func(p *Params) { p.Samples = 8 },
		func(p *Params) { p.Magnitude = 0.5 },
		func(p *Params) { p.Magnitude = 10 },
		func(p *Params) { p.Distance = 0 },
	}
	for i, mut := range mutations {
		p := testParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, p)
		}
	}
}

func TestRecordDeterministic(t *testing.T) {
	a, err := Record(testParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(testParams())
	if err != nil {
		t.Fatal(err)
	}
	for ci := range a.Accel {
		for i := range a.Accel[ci].Data {
			if a.Accel[ci].Data[i] != b.Accel[ci].Data[i] {
				t.Fatalf("component %d sample %d differs between identical seeds", ci, i)
			}
		}
	}
}

func TestRecordComponentsDiffer(t *testing.T) {
	rec, err := Record(testParams())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range rec.Accel[0].Data {
		if rec.Accel[0].Data[i] == rec.Accel[1].Data[i] {
			same++
		}
	}
	if same > len(rec.Accel[0].Data)/10 {
		t.Errorf("L and T components identical at %d samples; want independent realizations", same)
	}
}

func TestRecordShapeAndValidity(t *testing.T) {
	p := testParams()
	rec, err := Record(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Fatalf("generated record invalid: %v", err)
	}
	if rec.Samples() != p.Samples {
		t.Errorf("samples = %d, want %d", rec.Samples(), p.Samples)
	}
	// Vertical peak should be smaller than horizontal peaks (2/3 scaling).
	pgaL, _ := dsp.AbsMax(rec.Accel[0].Data)
	pgaV, _ := dsp.AbsMax(rec.Accel[2].Data)
	if pgaV >= pgaL {
		t.Errorf("vertical PGA %g >= longitudinal PGA %g", pgaV, pgaL)
	}
}

func TestRecordAmplitudeTracksMagnitudeAndDistance(t *testing.T) {
	base := testParams()
	small := base
	small.Magnitude = 4.0
	far := base
	far.Distance = 120
	recBase, err := Record(base)
	if err != nil {
		t.Fatal(err)
	}
	recSmall, err := Record(small)
	if err != nil {
		t.Fatal(err)
	}
	recFar, err := Record(far)
	if err != nil {
		t.Fatal(err)
	}
	pga := func(r seismic.Record) float64 {
		p, _ := dsp.AbsMax(r.Accel[0].Data)
		return p
	}
	if pga(recSmall) >= pga(recBase) {
		t.Errorf("M4 PGA %g >= M5.5 PGA %g", pga(recSmall), pga(recBase))
	}
	if pga(recFar) >= pga(recBase) {
		t.Errorf("120 km PGA %g >= 30 km PGA %g", pga(recFar), pga(recBase))
	}
}

func TestRecordSpectralShape(t *testing.T) {
	// The synthetic record must carry most energy at engineering
	// frequencies (0.5-15 Hz) rather than at very long periods, so that
	// FPL/FSL picking has a meaningful spectral corner to find.
	p := testParams()
	p.NoiseFloor = 0
	rec, err := Record(p)
	if err != nil {
		t.Fatal(err)
	}
	amps, df, err := dsp.AmplitudeSpectrum(rec.Accel[0].Data, p.DT)
	if err != nil {
		t.Fatal(err)
	}
	band := func(lo, hi float64) float64 {
		var e float64
		for k, a := range amps {
			f := float64(k) * df
			if f >= lo && f < hi {
				e += a * a
			}
		}
		return e
	}
	strong := band(0.5, 15)
	weak := band(0.0, 0.1)
	if strong <= 10*weak {
		t.Errorf("energy 0.5-15 Hz (%g) not dominant over <0.1 Hz (%g)", strong, weak)
	}
}

func TestRecordInvalidParams(t *testing.T) {
	p := testParams()
	p.Samples = 0
	if _, err := Record(p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEnvelopeShape(t *testing.T) {
	n, dt := 4000, 0.01
	env := Envelope(n, dt, 5.5, 30)
	if len(env) != n {
		t.Fatalf("len = %d, want %d", len(env), n)
	}
	peak, idx := dsp.AbsMax(env)
	if math.Abs(peak-1) > 1e-12 {
		t.Errorf("peak = %g, want 1", peak)
	}
	if idx == 0 || idx == n-1 {
		t.Errorf("plateau at record edge (idx %d)", idx)
	}
	// Starts near zero, ends decayed.
	if env[0] > 0.05 {
		t.Errorf("env[0] = %g, want pre-event quiet", env[0])
	}
	if env[n-1] > 0.5 {
		t.Errorf("env[end] = %g, want coda decay", env[n-1])
	}
	// All values in [0, 1].
	for i, v := range env {
		if v < 0 || v > 1 {
			t.Fatalf("env[%d] = %g outside [0,1]", i, v)
		}
	}
}

func TestEnvelopeDegenerate(t *testing.T) {
	env := Envelope(1, 0.01, 5, 10)
	if len(env) != 1 || env[0] != 1 {
		t.Errorf("single-sample envelope = %v, want [1]", env)
	}
}

func TestSourceSpectrum(t *testing.T) {
	fc := 1.0
	if SourceSpectrum(0, fc, 30, 0.04) != 0 {
		t.Error("DC response must be zero")
	}
	// Low-frequency rise ~ f^2 below the corner.
	r1 := SourceSpectrum(0.1, fc, 30, 0.04)
	r2 := SourceSpectrum(0.2, fc, 30, 0.04)
	ratio := r2 / r1
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("low-frequency slope ratio = %g, want ~4 (f^2)", ratio)
	}
	// Kappa decay dominates at high frequency.
	if SourceSpectrum(40, fc, 30, 0.04) >= SourceSpectrum(10, fc, 30, 0.04) {
		t.Error("no high-frequency decay")
	}
}

func TestTargetPGAMonotonic(t *testing.T) {
	if TargetPGA(6, 30) <= TargetPGA(5, 30) {
		t.Error("PGA not increasing with magnitude")
	}
	if TargetPGA(6, 100) >= TargetPGA(6, 20) {
		t.Error("PGA not decreasing with distance")
	}
	if TargetPGA(6, 30) <= 0 {
		t.Error("PGA not positive")
	}
}

func BenchmarkRecord(b *testing.B) {
	p := testParams()
	p.Samples = 20000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Record(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvent(b *testing.B) {
	spec := EventSpec{Name: "bench", Files: 5, TotalPoints: 56000, Magnitude: 5, Seed: 9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Event(spec); err != nil {
			b.Fatal(err)
		}
	}
}
