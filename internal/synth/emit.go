// Emission: laying a synthetic event down on disk in any registered ingest
// format, optionally with injected record defects, so the QC gate and the
// quarantine plane can be exercised at catalog scale on hostile inputs.
package synth

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"accelproc/internal/ingest"
	"accelproc/internal/seismic"
	"accelproc/internal/smformat"
)

// CorruptKinds lists the record defects Corrupt can inject, in the cycle
// order the "mix" mode uses.  All but "azimuth" are QC-gate rejects;
// "azimuth" encodes the motion in a rotated sensor frame that the ingest
// plane must rotate back.
var CorruptKinds = []string{"clip", "gap", "azimuth", "short", "dt", "length", "missing"}

// EmitOptions controls how an event's records are written into a work
// directory.
type EmitOptions struct {
	// Format is the registry key every record is encoded in ("v1",
	// "v1a", "mseed", "csv"), or "mix" to cycle through all registered
	// formats station by station.  Empty means native v1.
	Format string
	// Corrupt injects one defect kind (see CorruptKinds) into every
	// record, or cycles defects and clean records with "mix".  Empty
	// emits clean records.
	Corrupt string
	// Seed drives the deterministic defect parameters (azimuth angles,
	// clip positions); zero derives from the station index alone.
	Seed int64
}

// formatsFor resolves the per-record format cycle.
func formatsFor(opt EmitOptions) ([]ingest.Format, error) {
	switch opt.Format {
	case "", "v1":
		f, err := ingest.ByName("v1")
		return []ingest.Format{f}, err
	case "mix":
		return ingest.Formats(), nil
	default:
		f, err := ingest.ByName(opt.Format)
		if err != nil {
			return nil, err
		}
		return []ingest.Format{f}, nil
	}
}

// corruptCycle resolves the per-record defect cycle; empty strings are
// clean records.
func corruptCycle(opt EmitOptions) ([]string, error) {
	switch opt.Corrupt {
	case "":
		return []string{""}, nil
	case "mix":
		// Interleave clean records so a nasty event still produces
		// products: clean, defect, clean, defect, ...
		cycle := make([]string, 0, 2*len(CorruptKinds))
		for _, k := range CorruptKinds {
			cycle = append(cycle, "", k)
		}
		return cycle, nil
	default:
		for _, k := range CorruptKinds {
			if k == opt.Corrupt {
				return []string{k}, nil
			}
		}
		return nil, fmt.Errorf("synth: unknown corruption %q (have %s, mix)",
			opt.Corrupt, strings.Join(CorruptKinds, ", "))
	}
}

// needsForeign reports whether the defect kind requires a format with
// per-component headers or an azimuth field — things the native v1 cannot
// represent.
func needsForeign(kind string) bool {
	switch kind {
	case "azimuth", "dt", "length", "missing":
		return true
	}
	return false
}

// EmitEvent writes the event's records into dir, one file per station
// named <station><ext> for the chosen format.  Defect injection happens at
// encode time, on the ingest-level record — the in-memory seismic domain
// model never holds an invalid record.  When a defect needs a format the
// native v1 cannot express, that record is silently upgraded to v1a.
func EmitEvent(dir string, ev seismic.Event, opt EmitOptions) error {
	if err := ev.Validate(); err != nil {
		return err
	}
	formats, err := formatsFor(opt)
	if err != nil {
		return err
	}
	cycle, err := corruptCycle(opt)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("synth: emit %s: %w", dir, err)
	}
	for i, rec := range ev.Records {
		f := formats[i%len(formats)]
		kind := cycle[i%len(cycle)]
		if kind != "" && needsForeign(kind) && f.Name() == "v1" {
			if f, err = ingest.ByName("v1a"); err != nil {
				return err
			}
		}
		irec := ingest.FromV1(smformat.FromRecord(rec))
		if kind != "" {
			rng := rand.New(rand.NewSource(opt.Seed*1315423911 + int64(i)))
			if irec, err = Corrupt(irec, kind, rng); err != nil {
				return fmt.Errorf("synth: emit %s station %s: %w", dir, rec.Station, err)
			}
		}
		var buf bytes.Buffer
		if err := f.Encode(&buf, irec); err != nil {
			return fmt.Errorf("synth: emit %s station %s: %w", dir, rec.Station, err)
		}
		path := filepath.Join(dir, rec.Station+f.Extension())
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			return fmt.Errorf("synth: emit %s: %w", dir, err)
		}
	}
	return nil
}

// Corrupt injects one defect kind into a clean ingest-level record,
// deterministically from rng.  The defect magnitudes are sized to trip the
// ingest.DefaultQC thresholds (clip run 8, gap run 64, minimum duration
// 1 s) with margin.
func Corrupt(rec ingest.Record, kind string, rng *rand.Rand) (ingest.Record, error) {
	n := len(rec.Accel[0])
	switch kind {
	case "clip":
		// Peg a run of samples at the component's own absolute maximum —
		// the flat-top signature of a saturated sensor.
		data := cloneSamples(rec.Accel[0])
		rail := 0.0
		for _, v := range data {
			if a := absf(v); a > rail {
				rail = a
			}
		}
		run := 12
		start := clampStart(rng.Intn(n), n, run)
		for i := start; i < start+run; i++ {
			data[i] = rail
		}
		rec.Accel[0] = data
	case "gap":
		// A telemetry dropout: a long flat run of zeros mid-trace.
		data := cloneSamples(rec.Accel[1])
		run := 80
		if run > n {
			run = n
		}
		start := clampStart(rng.Intn(n), n, run)
		for i := start; i < start+run; i++ {
			data[i] = 0
		}
		rec.Accel[1] = data
	case "azimuth":
		// Not a defect: encode the motion in a sensor frame rotated to a
		// declared azimuth; the ingest plane rotates it back.
		az := 15 + 60*rng.Float64()
		sr := seismic.Record{Station: rec.Station}
		for ci := range rec.Accel {
			sr.Accel[ci] = seismic.Trace{DT: rec.DT[ci], Data: rec.Accel[ci]}
		}
		inv, err := seismic.RotateHorizontal(sr, -az)
		if err != nil {
			return ingest.Record{}, err
		}
		for ci := range rec.Accel {
			rec.Accel[ci] = inv.Accel[ci].Data
		}
		rec.Azimuth = az
	case "short":
		// Truncate below any sane minimum duration (default gate: 1 s).
		keep := int(0.5 / rec.DT[0])
		if keep < 2 {
			keep = 2
		}
		if keep >= n {
			keep = n / 2
		}
		for ci := range rec.Accel {
			rec.Accel[ci] = cloneSamples(rec.Accel[ci][:keep])
		}
	case "dt":
		// One component claims a different sample interval.
		rec.DT[1] *= 2
	case "length":
		// One component loses its tail.
		drop := n / 4
		if drop < 1 {
			drop = 1
		}
		rec.Accel[1] = cloneSamples(rec.Accel[1][:n-drop])
	case "missing":
		// The vertical never made it off the instrument.
		rec.Accel[2] = nil
		rec.DT[2] = 0
	default:
		return ingest.Record{}, fmt.Errorf("synth: unknown corruption %q", kind)
	}
	return rec, nil
}

// cloneSamples copies a sample slice so corruption never aliases the clean
// event in memory.
func cloneSamples(data []float64) []float64 {
	out := make([]float64, len(data))
	copy(out, data)
	return out
}

// clampStart keeps a defect run inside the trace.
func clampStart(start, n, run int) int {
	if start+run > n {
		start = n - run
	}
	if start < 0 {
		start = 0
	}
	return start
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// NastyEvent returns the hostile-ingest preset: a mid-size event whose
// emission (see EmitEvent with Format and Corrupt "mix") cycles through
// every registered format and every defect class in one work directory —
// the QC-gate and quarantine-plane soak scenario.
func NastyEvent() EventSpec {
	return EventSpec{
		Name: "nasty", Files: 14, TotalPoints: 112000, Magnitude: 5.5, Seed: 0xBAD5EED,
	}
}
