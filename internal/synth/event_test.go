package synth

import (
	"testing"
	"testing/quick"
)

func testSpec() EventSpec {
	return EventSpec{
		Name:        "test-event",
		Files:       4,
		TotalPoints: 48000,
		Magnitude:   5.2,
		Seed:        7,
	}
}

func TestEventSpecValidate(t *testing.T) {
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	mutations := []func(*EventSpec){
		func(s *EventSpec) { s.Name = "" },
		func(s *EventSpec) { s.Files = 0 },
		func(s *EventSpec) { s.Files = -2 },
		func(s *EventSpec) { s.TotalPoints = 0 },
		func(s *EventSpec) { s.TotalPoints = 30 }, // avg below 16
		func(s *EventSpec) { s.Magnitude = 0 },
	}
	for i, mut := range mutations {
		s := testSpec()
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, s)
		}
	}
}

func TestEventGeneratesExactTotals(t *testing.T) {
	spec := testSpec()
	ev, err := Event(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Records) != spec.Files {
		t.Fatalf("records = %d, want %d", len(ev.Records), spec.Files)
	}
	if got := ev.TotalDataPoints(); got != spec.TotalPoints {
		t.Errorf("total points = %d, want %d", got, spec.TotalPoints)
	}
	if err := ev.Validate(); err != nil {
		t.Errorf("generated event invalid: %v", err)
	}
}

func TestEventDeterministic(t *testing.T) {
	a, err := Event(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Event(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for ri := range a.Records {
		if a.Records[ri].Station != b.Records[ri].Station {
			t.Fatalf("station %d name differs", ri)
		}
		for ci := range a.Records[ri].Accel {
			ad, bd := a.Records[ri].Accel[ci].Data, b.Records[ri].Accel[ci].Data
			if len(ad) != len(bd) {
				t.Fatalf("record %d comp %d lengths differ", ri, ci)
			}
			for i := range ad {
				if ad[i] != bd[i] {
					t.Fatalf("record %d comp %d sample %d differs", ri, ci, i)
				}
			}
		}
	}
}

func TestEventRejectsInvalidSpec(t *testing.T) {
	s := testSpec()
	s.Files = 0
	if _, err := Event(s); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPaperEventsMatchTableI(t *testing.T) {
	events := PaperEvents()
	if len(events) != 6 {
		t.Fatalf("paper has 6 events, got %d", len(events))
	}
	wantFiles := []int{5, 5, 9, 15, 18, 19}
	wantPoints := []int{56000, 115000, 145000, 309000, 361000, 384000}
	for i, ev := range events {
		if ev.Files != wantFiles[i] {
			t.Errorf("event %s files = %d, want %d", ev.Name, ev.Files, wantFiles[i])
		}
		if ev.TotalPoints != wantPoints[i] {
			t.Errorf("event %s points = %d, want %d", ev.Name, ev.TotalPoints, wantPoints[i])
		}
		if err := ev.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", ev.Name, err)
		}
	}
}

// Property: recordSizes always partitions TotalPoints exactly, with every
// record size positive, for any seed and plausible shape.
func TestRecordSizesPartition(t *testing.T) {
	f := func(seed int64, filesRaw uint8, pointsRaw uint16) bool {
		files := int(filesRaw)%19 + 1
		total := files * (7300 + int(pointsRaw)%27000)
		spec := EventSpec{Name: "q", Files: files, TotalPoints: total, Magnitude: 5, Seed: seed}
		sizes := recordSizes(spec)
		if len(sizes) != files {
			return false
		}
		sum := 0
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Paper: raw files range from 7,300 to 35,000 data points.  At the paper's
// event sizes the generator must respect those bounds (up to the final
// record's rounding slack of at most Files extra samples).
func TestRecordSizesRespectPaperBounds(t *testing.T) {
	for _, spec := range PaperEvents() {
		sizes := recordSizes(spec)
		for i, s := range sizes {
			if s < MinRecordPoints || s > MaxRecordPoints+spec.Files {
				t.Errorf("event %s record %d has %d points, outside [%d, %d]",
					spec.Name, i, s, MinRecordPoints, MaxRecordPoints)
			}
		}
	}
}

func TestScale(t *testing.T) {
	s := testSpec()
	half := s.Scale(0.5)
	if half.TotalPoints != 24000 {
		t.Errorf("scaled points = %d, want 24000", half.TotalPoints)
	}
	if half.Files != s.Files {
		t.Errorf("file count changed: %d", half.Files)
	}
	tiny := s.Scale(0.0001)
	if tiny.TotalPoints < 16*tiny.Files {
		t.Errorf("tiny scale below generator minimum: %d", tiny.TotalPoints)
	}
	if err := tiny.Validate(); err != nil {
		t.Errorf("tiny scaled spec invalid: %v", err)
	}
}

func TestEventSmallScaleStillGenerates(t *testing.T) {
	// A scaled-down paper event (used by quick benches) must generate.
	spec := PaperEvents()[0].Scale(0.02) // 1120 points over 5 files
	ev, err := Event(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := ev.TotalDataPoints(); got != spec.TotalPoints {
		t.Errorf("total points = %d, want %d", got, spec.TotalPoints)
	}
}

func TestEventNPTSOverridePinsRecordLengths(t *testing.T) {
	spec := testSpec()
	spec.NPTS = 900 // outside the jittered split any TotalPoints would give
	spec.TotalPoints = 0
	ev, err := Event(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Records) != spec.Files {
		t.Fatalf("records = %d, want %d", len(ev.Records), spec.Files)
	}
	for i, r := range ev.Records {
		if r.Samples() != spec.NPTS {
			t.Errorf("record %d has %d samples, want exactly %d", i, r.Samples(), spec.NPTS)
		}
	}
	spec.NPTS = 8
	if err := spec.Validate(); err == nil {
		t.Error("NPTS below the simulator minimum accepted")
	}
}

func TestMegaEventSpec(t *testing.T) {
	mega := MegaEvent()
	if err := mega.Validate(); err != nil {
		t.Fatalf("megaevent spec invalid: %v", err)
	}
	if mega.NPTS < 1_000_000 {
		t.Errorf("megaevent NPTS = %d, want >= 1,000,000", mega.NPTS)
	}
	half := mega.Scale(0.5)
	if half.NPTS != mega.NPTS/2 {
		t.Errorf("Scale(0.5) NPTS = %d, want %d", half.NPTS, mega.NPTS/2)
	}
}
