package synth

import (
	"fmt"
	"math/rand"

	"accelproc/internal/seismic"
)

// EventSpec describes a whole synthetic seismic event: how many station
// records to generate and how many total data points they should contain.
// It mirrors the per-event rows of the paper's Table I.
type EventSpec struct {
	Name        string
	Files       int     // number of station records (V1 files)
	TotalPoints int     // total per-component samples across all records
	Magnitude   float64 // scenario magnitude
	Seed        int64   // master seed; sub-seeds are derived per station
	DT          float64 // sample interval; zero selects 0.01 s (100 Hz)
	NoiseFloor  float64 // per-record noise floor; zero selects 0.02
	// NPTS, when positive, pins every record to exactly NPTS samples,
	// overriding TotalPoints and the paper's per-file size range.  It is the
	// record-length scaling knob of the streaming-plane memory ablation,
	// where per-record NPTS (not the event total) is the variable under test.
	NPTS int
}

// Validate reports impossible event shapes.  The paper's raw files range
// from 7,300 to 35,000 data points; generated per-station sizes are kept in
// that range, so TotalPoints must allow an average within it.
func (s EventSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("synth: event spec has empty name")
	}
	if s.Files <= 0 {
		return fmt.Errorf("synth: event %s has %d files, want > 0", s.Name, s.Files)
	}
	if s.NPTS > 0 {
		if s.NPTS < 16 {
			return fmt.Errorf("synth: event %s record size %d is below the simulator minimum of 16", s.Name, s.NPTS)
		}
	} else {
		if s.TotalPoints <= 0 {
			return fmt.Errorf("synth: event %s has %d total points, want > 0", s.Name, s.TotalPoints)
		}
		if avg := s.TotalPoints / s.Files; avg < 16 {
			return fmt.Errorf("synth: event %s average record size %d is below the simulator minimum of 16", s.Name, avg)
		}
	}
	if s.Magnitude < 1 || s.Magnitude > 9.5 {
		return fmt.Errorf("synth: event %s magnitude %g outside [1, 9.5]", s.Name, s.Magnitude)
	}
	return nil
}

// Per-record data point bounds reported in the paper's experimental setup.
const (
	MinRecordPoints = 7300
	MaxRecordPoints = 35000
)

// Event generates the full synthetic event: Files station records whose
// per-component sample counts vary pseudo-randomly around the mean but sum
// exactly to TotalPoints (clamped to the paper's per-file range).  Station
// distances spread from 10 to 120 km so amplitudes and arrival times differ
// across the network.
func Event(spec EventSpec) (seismic.Event, error) {
	if err := spec.Validate(); err != nil {
		return seismic.Event{}, err
	}
	dt := spec.DT
	if dt == 0 {
		dt = 0.01
	}
	noise := spec.NoiseFloor
	if noise == 0 {
		noise = 0.02
	}
	sizes := recordSizes(spec)
	ev := seismic.Event{Name: spec.Name}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))
	for i := 0; i < spec.Files; i++ {
		p := Params{
			Station:    fmt.Sprintf("SS%02d", i+1),
			Seed:       spec.Seed*131 + int64(i),
			DT:         dt,
			Samples:    sizes[i],
			Magnitude:  spec.Magnitude,
			Distance:   10 + 110*rng.Float64(),
			NoiseFloor: noise,
		}
		rec, err := Record(p)
		if err != nil {
			return seismic.Event{}, fmt.Errorf("synth: event %s station %d: %w", spec.Name, i, err)
		}
		ev.Records = append(ev.Records, rec)
	}
	if err := ev.Validate(); err != nil {
		return seismic.Event{}, err
	}
	return ev, nil
}

// recordSizes splits TotalPoints into Files sizes inside the allowed range,
// summing exactly to TotalPoints, deterministically from the seed.  An NPTS
// override pins every record to the same exact length instead.  At the
// paper's workload sizes the per-file bounds are the published 7,300-35,000
// range; for scaled-down workloads the bounds relax proportionally around
// the mean so the split stays satisfiable.
func recordSizes(spec EventSpec) []int {
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x51de5))
	n := spec.Files
	sizes := make([]int, n)
	if spec.NPTS > 0 {
		for i := range sizes {
			sizes[i] = spec.NPTS
		}
		return sizes
	}
	mean := spec.TotalPoints / n
	lo, hi := MinRecordPoints, MaxRecordPoints
	if mean < lo {
		lo = (mean + 1) / 2
		if lo < 16 {
			lo = 16
		}
	}
	if mean > hi {
		hi = 2 * mean
	}
	remaining := spec.TotalPoints
	for i := 0; i < n; i++ {
		left := n - i
		if left == 1 {
			sizes[i] = remaining
			break
		}
		// Jitter ±25% around the mean, clamped so the remainder stays
		// satisfiable within the global bounds.
		jitter := int(float64(mean) * 0.25 * (2*rng.Float64() - 1))
		size := mean + jitter
		// Remaining records must each fit in [lo, hi].
		minRest := (left - 1) * lo
		maxRest := (left - 1) * hi
		if size < remaining-maxRest {
			size = remaining - maxRest
		}
		if size > remaining-minRest {
			size = remaining - minRest
		}
		if size < lo {
			size = lo
		}
		if size > hi {
			size = hi
		}
		sizes[i] = size
		remaining -= size
	}
	return sizes
}

// PaperEvents returns the six event presets of the paper's Table I, with
// file counts and total data points copied from the paper.  Magnitudes are
// representative values (the paper does not report them); seeds are fixed
// so every run processes identical data.
func PaperEvents() []EventSpec {
	return []EventSpec{
		{Name: "Nov-24-2018", Files: 5, TotalPoints: 56000, Magnitude: 4.6, Seed: 2018_11_24},
		{Name: "Apr-02-2018", Files: 5, TotalPoints: 115000, Magnitude: 5.0, Seed: 2018_04_02},
		{Name: "Jul-10-2019", Files: 9, TotalPoints: 145000, Magnitude: 5.2, Seed: 2019_07_10},
		{Name: "Apr-10-2017", Files: 15, TotalPoints: 309000, Magnitude: 5.8, Seed: 2017_04_10},
		{Name: "May-30-2019", Files: 18, TotalPoints: 361000, Magnitude: 6.0, Seed: 2019_05_30},
		{Name: "Jul-31-2019", Files: 19, TotalPoints: 384000, Magnitude: 6.1, Seed: 2019_07_31},
	}
}

// MegaEvent returns the streaming-plane stress scenario: a handful of
// million-point records, nearly 30x the paper's largest raw file.  The
// materialized execution path holds whole traces (and their velocity and
// displacement integrals) per record; the streaming plane processes the same
// event in fixed-size chunks, which is what the memory ablation measures.
func MegaEvent() EventSpec {
	return EventSpec{
		Name: "megaevent", Files: 3, NPTS: 1_000_000, Magnitude: 6.5, Seed: 1_000_000,
	}
}

// Scale returns a copy of the spec with TotalPoints scaled by f (file count
// unchanged), used to run the paper's workload shape at reduced size.  An
// NPTS override scales the same way.  The result keeps at least 16 samples
// per file so records stay generatable.
func (s EventSpec) Scale(f float64) EventSpec {
	out := s
	out.TotalPoints = int(float64(s.TotalPoints) * f)
	if out.TotalPoints < 16*out.Files {
		out.TotalPoints = 16 * out.Files
	}
	if s.NPTS > 0 {
		out.NPTS = int(float64(s.NPTS) * f)
		if out.NPTS < 16 {
			out.NPTS = 16
		}
	}
	return out
}
