// Package synth generates synthetic strong-motion accelerograms.
//
// The paper evaluates on 71 proprietary V1 files recorded by the Salvadoran
// strong-motion network.  That data is not publicly available, so this
// package provides the substitute required for the reproduction: a
// stochastic ground-motion simulator in the spirit of Boore's point-source
// method.  Band-limited Gaussian noise is shaped in the time domain by a
// Saragoni-Hart envelope and in the frequency domain by an omega-squared
// source spectrum with anelastic attenuation and a site kappa filter.
//
// The simulator is fully deterministic for a given Params (including Seed),
// so pipeline results are reproducible run to run.  What matters for the
// reproduction is preserved: record sizes (sample counts per file), three
// components per station, realistic spectral shape (so the Fourier-analysis
// stage finds meaningful FPL/FSL corner frequencies), and realistic
// long-period noise (so the band-pass correction has actual work to do).
package synth

import (
	"fmt"
	"math"
	"math/rand"

	"accelproc/internal/dsp"
	"accelproc/internal/seismic"
)

// Params configures the stochastic simulation of one station record.
type Params struct {
	Station string  // station code for the generated record
	Seed    int64   // RNG seed; records with equal Params are identical
	DT      float64 // sample interval in seconds
	Samples int     // samples per component

	Magnitude float64 // moment magnitude of the scenario event
	Distance  float64 // hypocentral distance in km

	// CornerFreq is the omega-squared source corner frequency in Hz.
	// Zero selects a magnitude-dependent default.
	CornerFreq float64
	// Kappa is the site high-frequency decay parameter in seconds.
	// Zero selects the common rock-site value 0.04 s.
	Kappa float64
	// NoiseFloor adds broadband instrument noise with this amplitude as a
	// fraction of the signal's RMS (e.g. 0.02).  Pre- and post-event noise
	// plus long-period drift make the baseline-correction stages of the
	// pipeline meaningful.
	NoiseFloor float64
}

// Validate reports parameter combinations the simulator cannot honor.
func (p Params) Validate() error {
	if p.Station == "" {
		return fmt.Errorf("synth: empty station code")
	}
	if p.DT <= 0 {
		return fmt.Errorf("synth: non-positive sample interval %g", p.DT)
	}
	if p.Samples < 16 {
		return fmt.Errorf("synth: %d samples is below the minimum of 16", p.Samples)
	}
	if p.Magnitude < 1 || p.Magnitude > 9.5 {
		return fmt.Errorf("synth: magnitude %g outside [1, 9.5]", p.Magnitude)
	}
	if p.Distance <= 0 {
		return fmt.Errorf("synth: non-positive distance %g km", p.Distance)
	}
	return nil
}

// defaults fills derived default parameters.
func (p Params) defaults() Params {
	if p.CornerFreq == 0 {
		// Brune corner frequency for a 100-bar stress drop, beta=3.5 km/s:
		// fc = 4.9e6 * beta * (dSigma/M0)^(1/3), M0 from Hanks-Kanamori.
		m0 := math.Pow(10, 1.5*p.Magnitude+16.05) // dyne-cm
		p.CornerFreq = 4.9e6 * 3.5 * math.Cbrt(100/m0)
	}
	if p.Kappa == 0 {
		p.Kappa = 0.04
	}
	return p
}

// Record simulates a full three-component record for one station.  The
// three components are independent realizations with component-specific
// sub-seeds; the vertical component is scaled to two thirds of the
// horizontal amplitude, the usual engineering rule of thumb.
func Record(p Params) (seismic.Record, error) {
	if err := p.Validate(); err != nil {
		return seismic.Record{}, err
	}
	p = p.defaults()
	var rec seismic.Record
	rec.Station = p.Station
	for ci, comp := range seismic.Components {
		scale := 1.0
		if comp == seismic.Vertical {
			scale = 2.0 / 3.0
		}
		data := simulateComponent(p, int64(ci))
		for i := range data {
			data[i] *= scale
		}
		rec.Accel[ci] = seismic.Trace{DT: p.DT, Data: data}
	}
	if err := rec.Validate(); err != nil {
		return seismic.Record{}, fmt.Errorf("synth: generated invalid record: %w", err)
	}
	return rec, nil
}

// simulateComponent produces one acceleration trace in gal.
func simulateComponent(p Params, sub int64) []float64 {
	rng := rand.New(rand.NewSource(p.Seed*1000003 + sub*7919 + 1))
	n := p.Samples

	// 1. White Gaussian noise over the strong-shaking window.
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}

	// 2. Saragoni-Hart style envelope across the full record with a short
	// pre-event quiet segment and exponential coda decay.
	env := Envelope(n, p.DT, p.Magnitude, p.Distance)
	dsp.ApplyWindow(x, env)

	// 3. Frequency-domain shaping on a power-of-two grid.
	m := dsp.NextPow2(n)
	buf := make([]complex128, m)
	for i := 0; i < n; i++ {
		buf[i] = complex(x[i], 0)
	}
	spec := dsp.FFT(buf)
	df := 1 / (float64(m) * p.DT)
	for k := 0; k <= m/2; k++ {
		f := float64(k) * df
		g := complex(SourceSpectrum(f, p.CornerFreq, p.Distance, p.Kappa), 0)
		spec[k] *= g
		if k > 0 && k < m/2 {
			spec[m-k] *= g
		}
	}
	shaped := dsp.IFFT(spec)
	for i := 0; i < n; i++ {
		x[i] = real(shaped[i])
	}

	// 4. Re-apply a light envelope so spectral shaping does not smear
	// energy into the pre-event window, then normalize to a target PGA.
	for i := range x {
		x[i] *= math.Sqrt(env[i])
	}
	peak, _ := dsp.AbsMax(x)
	if peak > 0 {
		target := TargetPGA(p.Magnitude, p.Distance)
		s := target / peak
		for i := range x {
			x[i] *= s
		}
	}

	// 5. Instrument noise and a small long-period drift (uncorrected
	// baseline error), which the correction stages must remove.
	if p.NoiseFloor > 0 {
		var rms float64
		for _, v := range x {
			rms += v * v
		}
		rms = math.Sqrt(rms / float64(n))
		amp := p.NoiseFloor * rms
		driftA := amp * (0.5 + rng.Float64())
		driftF := 0.02 + 0.03*rng.Float64() // 0.02-0.05 Hz, below any FSL
		phase := rng.Float64() * 2 * math.Pi
		for i := range x {
			ti := float64(i) * p.DT
			x[i] += amp*rng.NormFloat64() + driftA*math.Sin(2*math.Pi*driftF*ti+phase)
		}
	}
	return x
}

// SourceSpectrum evaluates the omega-squared acceleration spectral shape at
// frequency f (Hz): the Brune source times anelastic attenuation along the
// path and the near-site kappa filter.  The result is a relative shape (the
// absolute level is set separately from the target PGA).
func SourceSpectrum(f, fc, distKM, kappa float64) float64 {
	if f <= 0 {
		return 0 // remove DC: accelerograms have zero mean
	}
	source := (f * f) / (1 + (f/fc)*(f/fc))
	// Anelastic attenuation exp(-pi f R / (Q beta)) with Q=600, beta=3.5.
	path := math.Exp(-math.Pi * f * distKM / (600 * 3.5))
	site := math.Exp(-math.Pi * kappa * f)
	return source * path * site
}

// Envelope returns the n-sample Saragoni-Hart style amplitude envelope:
// a rapid rise after the P-wave arrival, a flat strong-shaking plateau whose
// length grows with magnitude, and an exponential coda decay.
func Envelope(n int, dt, magnitude, distKM float64) []float64 {
	env := make([]float64, n)
	total := float64(n-1) * dt
	if total <= 0 {
		for i := range env {
			env[i] = 1
		}
		return env
	}
	// Arrival delay grows with distance (S-wave at ~3.5 km/s), capped to
	// the first 20% of the record.
	tArr := math.Min(distKM/3.5/4, 0.2*total)
	rise := math.Max(0.5, 0.05*total)           // rise time
	plateau := math.Max(1.0, (magnitude-3)*1.5) // strong shaking duration
	plateau = math.Min(plateau, 0.4*total)      // keep a coda
	decay := math.Max(2.0, 0.25*total)          // coda e-folding time
	t1 := tArr                                  // envelope start
	t2 := tArr + rise                           // plateau start
	t3 := tArr + rise + plateau                 // decay start
	for i := range env {
		ti := float64(i) * dt
		switch {
		case ti < t1:
			env[i] = 0.01 // pre-event noise level
		case ti < t2:
			u := (ti - t1) / (t2 - t1)
			env[i] = 0.01 + 0.99*u*u // quadratic rise
		case ti < t3:
			env[i] = 1
		default:
			env[i] = math.Exp(-(ti - t3) / decay)
		}
	}
	return env
}

// TargetPGA returns a rough peak ground acceleration in gal from a
// simplified attenuation relation, used only to set realistic amplitude
// levels in the synthetic records.
func TargetPGA(magnitude, distKM float64) float64 {
	// ln PGA(g) = -3.5 + 0.85*M - 1.1*ln(R + 10), a generic functional form.
	lnPGA := -3.5 + 0.85*magnitude - 1.1*math.Log(distKM+10)
	return math.Exp(lnPGA) * seismic.GravityGal
}
