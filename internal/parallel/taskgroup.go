package parallel

import (
	"sync"
	"time"
)

// TaskGroup runs independently spawned tasks on a bounded set of workers,
// mirroring the OpenMP idiom used throughout the paper:
//
//	#pragma omp parallel
//	#pragma omp single
//	{
//	    #pragma omp task  f();
//	    #pragma omp task  g();
//	    #pragma omp taskwait
//	}
//
// Go(...) corresponds to "#pragma omp task" and Wait to
// "#pragma omp taskwait".  The zero value is not usable; construct groups
// with NewTaskGroup.  A TaskGroup may be reused for several rounds of
// Go/Wait, matching consecutive taskwait barriers inside one parallel
// region (e.g. the paper's Stage I followed by Stage II).
type TaskGroup struct {
	sem      chan struct{}
	mon      Monitor
	wg       sync.WaitGroup
	mu       sync.Mutex
	firstErr error
}

// NewTaskGroup returns a TaskGroup that runs at most workers tasks
// concurrently; workers <= 0 means all available processors.  The paper's
// Stage I/II region pins the team to between 2 and 4 processors — callers
// reproduce that by passing the explicit bound.
func NewTaskGroup(workers int) *TaskGroup {
	return NewTaskGroupMonitored(workers, nil)
}

// NewTaskGroupMonitored is NewTaskGroup with a Monitor receiving one
// WorkerSpan per task (worker -1, idle = time the spawn waited for a free
// slot) and, if mon is also a WaitMonitor, the per-task queue wait.
func NewTaskGroupMonitored(workers int, mon Monitor) *TaskGroup {
	return &TaskGroup{sem: make(chan struct{}, Workers(workers)), mon: mon}
}

// Go spawns task as soon as a worker slot is free.  The first error returned
// by any task is retained and reported by Wait; later errors are dropped,
// like a single shared error flag in an OpenMP region — except that a real
// error displaces a retained cancellation error, so a group cancelled by a
// failing task reports the failure, not "context canceled".
func (g *TaskGroup) Go(task func() error) {
	g.wg.Add(1)
	var spawned time.Time
	if g.mon != nil {
		spawned = time.Now()
	}
	g.sem <- struct{}{}
	var wait time.Duration
	if g.mon != nil {
		wait = time.Since(spawned)
		if wm, ok := g.mon.(WaitMonitor); ok {
			wm.TaskWait(wait)
		}
	}
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		var started time.Time
		if g.mon != nil {
			started = time.Now()
		}
		err := task()
		if g.mon != nil {
			g.mon.WorkerSpan(-1, time.Since(started), wait, 1)
		}
		if err != nil {
			g.mu.Lock()
			if g.firstErr == nil || (isCancellation(g.firstErr) && !isCancellation(err)) {
				g.firstErr = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every task spawned so far has finished and returns the
// first retained error.  The group may be reused afterwards; the error state
// is NOT reset, so a failed group keeps reporting its first failure (callers
// that want a fresh group create one).
func (g *TaskGroup) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// RunTasks is a convenience wrapper that spawns every task on a fresh group
// of the given width and waits for completion — the shape of a whole
// parallel/single/task/taskwait region in one call.
func RunTasks(workers int, tasks ...func() error) error {
	return RunTasksMonitored(workers, nil, tasks...)
}

// RunTasksMonitored is RunTasks with worker accounting (see
// NewTaskGroupMonitored).
func RunTasksMonitored(workers int, mon Monitor, tasks ...func() error) error {
	g := NewTaskGroupMonitored(workers, mon)
	for _, t := range tasks {
		g.Go(t)
	}
	return g.Wait()
}
