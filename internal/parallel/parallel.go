// Package parallel provides the shared-memory parallel runtime used by the
// accelerographic processing pipeline.
//
// The original system described in the paper uses OpenMP pragmas from C++
// and Fortran: parallel for-loops with static or dynamic scheduling, and
// explicit task parallelism with taskwait barriers.  This package offers the
// same three primitives on top of goroutines:
//
//   - ParallelFor / ParallelForChunked: fork-join loops over an index range,
//     equivalent to "#pragma omp parallel for".
//   - TaskGroup: explicit task spawning with a Wait barrier, equivalent to
//     "#pragma omp task" + "#pragma omp taskwait".
//   - Pool: a reusable fixed-size worker pool for callers that want to
//     amortize goroutine startup across many loops.
//
// All primitives accept an explicit worker count so that experiments can
// sweep thread counts the same way the paper sweeps OpenMP threads; a count
// of zero (or DefaultWorkers) means "use all available processors", matching
// the paper's use of omp_get_max_threads().
package parallel

import (
	"fmt"
	"runtime"
)

// DefaultWorkers selects runtime.GOMAXPROCS(0) workers, mirroring OpenMP's
// default team size of omp_get_max_threads().
const DefaultWorkers = 0

// Workers normalizes a requested worker count: values <= 0 map to
// runtime.GOMAXPROCS(0), everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Schedule selects how loop iterations are assigned to workers, mirroring
// the OpenMP schedule() clause.
type Schedule int

const (
	// ScheduleStatic divides the iteration space into one contiguous block
	// per worker, like schedule(static).  Best when iterations cost roughly
	// the same.
	ScheduleStatic Schedule = iota
	// ScheduleDynamic hands out chunks of iterations on demand from a shared
	// counter, like schedule(dynamic, chunk).  Best when iteration costs are
	// uneven, e.g. V1 files with very different sample counts.
	ScheduleDynamic
	// ScheduleGuided hands out exponentially shrinking chunks — each claim
	// takes remaining/workers iterations, never fewer than the chunk size —
	// like schedule(guided, chunk).  It keeps the low scheduling overhead of
	// big chunks early while leaving small chunks at the end to smooth out
	// stragglers, the right default for loops over records spanning 56K-384K
	// data points.
	ScheduleGuided
)

// String returns the OpenMP-style name of the schedule.
func (s Schedule) String() string {
	switch s {
	case ScheduleStatic:
		return "static"
	case ScheduleDynamic:
		return "dynamic"
	case ScheduleGuided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}
