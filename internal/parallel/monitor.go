package parallel

import "time"

// Monitor observes worker activity inside the parallel primitives, feeding
// the observability layer's occupancy metrics (busy vs idle time is the
// paper's practical measure of how well a stage's iterations balance).
//
// WorkerSpan is called once per worker when a construct finishes: busy is
// the time the worker spent executing bodies, idle the remainder of its
// participation (startup, waiting at the join barrier behind slower
// workers, or — for task groups — waiting for a slot), and tasks the number
// of iterations or tasks it executed.  Implementations must be safe for
// concurrent use; obs.WorkerMonitor satisfies this interface.
type Monitor interface {
	WorkerSpan(worker int, busy, idle time.Duration, tasks int)
}

// WaitMonitor optionally extends Monitor with per-task queue-wait
// latencies (time between submitting a task and a worker starting it).
type WaitMonitor interface {
	TaskWait(d time.Duration)
}

// monitoredBody wraps body so each call's duration accumulates into *busy
// and *tasks.  Only used when a Monitor is attached, so the unobserved hot
// path pays no timing overhead.
func monitoredBody(body func(i int) error, busy *time.Duration, tasks *int) func(i int) error {
	return func(i int) error {
		t0 := time.Now()
		err := body(i)
		*busy += time.Since(t0)
		*tasks++
		return err
	}
}
