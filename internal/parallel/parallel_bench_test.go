package parallel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkParallelForOverhead measures fork-join cost for trivially cheap
// bodies, across worker counts and schedules — the constant the pipeline
// pays per parallel region.
func BenchmarkParallelForOverhead(b *testing.B) {
	const n = 1024
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("static/w=%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ParallelFor(n, workers, func(j int) error {
					sink.Add(int64(j))
					return nil
				})
			}
		})
		b.Run(fmt.Sprintf("dynamic/w=%d", workers), func(b *testing.B) {
			var sink atomic.Int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = ParallelForDynamic(n, workers, 16, func(j int) error {
					sink.Add(int64(j))
					return nil
				})
			}
		})
	}
}

// BenchmarkTaskGroup measures task spawn + wait cost.
func BenchmarkTaskGroup(b *testing.B) {
	for _, tasks := range []int{4, 16, 64} {
		tasks := tasks
		b.Run(fmt.Sprintf("tasks=%d", tasks), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := NewTaskGroup(4)
				for t := 0; t < tasks; t++ {
					g.Go(func() error { return nil })
				}
				if err := g.Wait(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPoolSubmit measures amortized submission on a persistent pool.
func BenchmarkPoolSubmit(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join, err := p.Submit(func() {})
		if err != nil {
			b.Fatal(err)
		}
		join()
	}
}
